package repro

import (
	"time"

	"repro/internal/ringpaxos"
	"repro/internal/wal"
)

// ReplicatedLog is a convenience wrapper: a U-Ring Paxos ring over a
// realtime Cluster in which every node proposes and learns. It is the
// quickest way to embed a totally ordered, fault-tolerant log in an
// application (U-Ring Paxos because plain sockets have no ip-multicast,
// §3.3.3).
type ReplicatedLog struct {
	cluster *Cluster
	agents  map[NodeID]*URingAgent
}

// LogConfig configures a ReplicatedLog.
type LogConfig struct {
	// Nodes lists the ring members in ring order; all are learners.
	Nodes []NodeID
	// Deliver is invoked on each node, in the agreed total order.
	Deliver func(node NodeID, inst int64, v Value)
	// BatchDelay bounds how long small values wait for batching.
	BatchDelay time.Duration
	// GCInterval is the learner-version garbage collection period
	// (§3.3.7): every node periodically reports its applied instance and
	// vote-log entries below every node's report are trimmed, so a
	// long-lived log holds a bounded window of instances instead of
	// leaking one vote per append forever. Zero resolves to the U-Ring
	// default (garbage collection is ON by default); a negative value
	// disables it — the pre-plumbing behavior, kept only as an explicit
	// escape hatch.
	GCInterval time.Duration
	// WALDir, when non-empty, turns on write-ahead logging
	// (ringpaxos.DurWAL): every acceptor appends its promises and votes
	// to an in-memory wal.Log before acting on them, and the cluster
	// backs those durable writes with real O_SYNC files under this
	// directory (one node-<id>.wal per ring member) so each append pays
	// true fsync latency. Empty keeps the legacy in-memory behavior.
	WALDir string
}

// NewReplicatedLog adds the ring to the cluster. Call before
// Cluster.Start. With WALDir set it also enables the cluster's
// file-backed durable writes; an unusable directory surfaces through
// Cluster.WALError after the first append.
func NewReplicatedLog(c *Cluster, cfg LogConfig) *ReplicatedLog {
	l := &ReplicatedLog{cluster: c, agents: make(map[NodeID]*URingAgent)}
	ucfg := ringpaxos.UConfig{
		Ring:       cfg.Nodes,
		Learners:   cfg.Nodes,
		BatchDelay: cfg.BatchDelay,
		GCInterval: cfg.GCInterval,
	}
	if cfg.WALDir != "" {
		ucfg.Durability = ringpaxos.DurWAL
		if err := c.EnableWAL(cfg.WALDir); err != nil {
			c.noteWALErr(err)
		}
	}
	for _, id := range cfg.Nodes {
		id := id
		a := &URingAgent{Cfg: ucfg}
		if cfg.WALDir != "" {
			a.Log = &wal.Log{}
		}
		if cfg.Deliver != nil {
			a.Deliver = func(inst int64, v Value) { cfg.Deliver(id, inst, v) }
		}
		l.agents[id] = a
		c.AddNode(id, a)
	}
	return l
}

// Propose submits v from the given ring node.
func (l *ReplicatedLog) Propose(from NodeID, v Value) {
	if a, ok := l.agents[from]; ok {
		l.cluster.Node(from).enqueue(func() { a.Propose(v) })
	}
}

// Agent exposes a node's underlying U-Ring Paxos agent.
func (l *ReplicatedLog) Agent(id NodeID) *URingAgent { return l.agents[id] }
