package repro

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/proto"
)

// Cluster is the realtime runtime: it drives the same protocol actors the
// simulator runs, but with goroutines, channels and wall-clock timers, for
// in-process replicated applications and the runnable examples.
//
// Each node owns one goroutine that serializes every callback (message
// receipt, timers, Work and DiskWrite completions), preserving the actor
// model's single-threaded contract. ip-multicast is implemented as sender
// fan-out, which keeps the semantics (every subscriber receives the
// message) even though in-process transport has no real switch.
type Cluster struct {
	mu     sync.Mutex
	nodes  map[proto.NodeID]*ClusterNode
	groups map[proto.GroupID]map[proto.NodeID]bool
	start  time.Time
	seed   int64
	closed bool
	wg     sync.WaitGroup
	// walDir, when non-empty, backs every node's DiskWrite with a real
	// synchronous append to dir/node-<id>.wal (see EnableWAL). walErr
	// records the first file error; writes degrade to in-memory after it.
	walDir string
	walErr error
}

// NewCluster returns an empty realtime cluster.
func NewCluster(seed int64) *Cluster {
	return &Cluster{
		nodes:  make(map[proto.NodeID]*ClusterNode),
		groups: make(map[proto.GroupID]map[proto.NodeID]bool),
		seed:   seed,
	}
}

// event is one unit of work for a node's loop.
type event func()

// ClusterNode is one realtime process; it implements Env for its handler.
type ClusterNode struct {
	id      proto.NodeID
	c       *Cluster
	handler proto.Handler
	inbox   chan event
	quit    chan struct{}
	rng     *rand.Rand
	// wal is the node's durable-write file, opened lazily on the node's
	// own loop at the first DiskWrite after EnableWAL. Accessed only from
	// the loop goroutine.
	wal *os.File
}

var (
	_ proto.Env          = (*ClusterNode)(nil)
	_ proto.FreeTimerEnv = (*ClusterNode)(nil)
)

// AddNode installs a handler on a new node. Call before Start.
func (c *Cluster) AddNode(id NodeID, h Handler) *ClusterNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := &ClusterNode{
		id:      id,
		c:       c,
		handler: h,
		inbox:   make(chan event, 4096),
		quit:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(c.seed + int64(id))),
	}
	c.nodes[id] = n
	return n
}

// Subscribe adds node id to multicast group g. Call before Start.
func (c *Cluster) Subscribe(g GroupID, id NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := c.groups[g]
	if set == nil {
		set = make(map[proto.NodeID]bool)
		c.groups[g] = set
	}
	set[id] = true
}

// Start launches every node's loop and invokes the handlers' Start
// callbacks on their own goroutines.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.start = time.Now()
	for _, n := range c.nodes {
		n := n
		c.wg.Add(1)
		go n.loop(&c.wg)
		n.enqueue(func() { n.handler.Start(n) })
	}
}

// Stop terminates all node loops and waits for them to exit.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	nodes := make([]*ClusterNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		close(n.quit)
	}
	c.wg.Wait()
	// Loops have exited; their WAL files can be closed off-loop safely.
	for _, n := range nodes {
		if n.wal != nil {
			n.wal.Close()
		}
	}
}

// Node returns the node with the given id, or nil.
func (c *Cluster) Node(id NodeID) *ClusterNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

func (n *ClusterNode) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-n.quit:
			return
		case ev := <-n.inbox:
			ev()
		}
	}
}

// enqueue delivers an event to this node's loop, dropping it if the node
// has stopped.
func (n *ClusterNode) enqueue(ev event) {
	select {
	case n.inbox <- ev:
	case <-n.quit:
	}
}

// ID implements Env.
func (n *ClusterNode) ID() NodeID { return n.id }

// Now implements Env: elapsed wall time since Start.
func (n *ClusterNode) Now() time.Duration { return time.Since(n.c.start) }

// Rand implements Env. It must only be used from the node's own callbacks.
func (n *ClusterNode) Rand() *rand.Rand { return n.rng }

// Send implements Env: in-process channels are reliable and FIFO.
func (n *ClusterNode) Send(to NodeID, m Message) {
	n.c.mu.Lock()
	dst := n.c.nodes[to]
	n.c.mu.Unlock()
	if dst == nil {
		return
	}
	from := n.id
	dst.enqueue(func() { dst.handler.Receive(from, m) })
}

// SendUDP implements Env. In-process transport does not lose messages; the
// datagram semantics (no backpressure guarantee) are preserved by dropping
// when the destination's inbox is full.
func (n *ClusterNode) SendUDP(to NodeID, m Message) {
	n.c.mu.Lock()
	dst := n.c.nodes[to]
	n.c.mu.Unlock()
	if dst == nil {
		return
	}
	from := n.id
	select {
	case dst.inbox <- func() { dst.handler.Receive(from, m) }:
	default: // buffer full: datagram dropped
	}
}

// Multicast implements Env by fanning out to every subscriber.
func (n *ClusterNode) Multicast(g GroupID, m Message) {
	n.c.mu.Lock()
	var dsts []*ClusterNode
	for id := range n.c.groups[g] {
		if d := n.c.nodes[id]; d != nil {
			dsts = append(dsts, d)
		}
	}
	n.c.mu.Unlock()
	from := n.id
	for _, dst := range dsts {
		dst := dst
		select {
		case dst.inbox <- func() { dst.handler.Receive(from, m) }:
		default:
		}
	}
}

// rtTimer adapts time.Timer to proto.Timer.
type rtTimer struct {
	t *time.Timer
}

// Cancel implements Timer.
func (t rtTimer) Cancel() { t.t.Stop() }

// After implements Env.
func (n *ClusterNode) After(d time.Duration, fn func()) Timer {
	t := time.AfterFunc(d, func() { n.enqueue(fn) })
	return rtTimer{t: t}
}

// AfterFree implements proto.FreeTimerEnv. The realtime runtime has no
// allocation-free scheduling path, so this is After without the handle.
func (n *ClusterNode) AfterFree(d time.Duration, fn func()) {
	time.AfterFunc(d, func() { n.enqueue(fn) })
}

// AfterFreeArg implements proto.FreeTimerEnv.
func (n *ClusterNode) AfterFreeArg(d time.Duration, fn func(int64), arg int64) {
	time.AfterFunc(d, func() { n.enqueue(func() { fn(arg) }) })
}

// Work implements Env: realtime has no modeled CPU, so fn runs after d of
// wall time (0 means immediately, still serialized through the loop).
func (n *ClusterNode) Work(d time.Duration, fn func()) {
	if d <= 0 {
		n.enqueue(fn)
		return
	}
	time.AfterFunc(d, func() { n.enqueue(fn) })
}

// EnableWAL backs every node's DiskWrite with a real synchronous file:
// each node appends its durable writes to dir/node-<id>.wal, opened with
// O_SYNC, so a protocol's write-ahead logging (ringpaxos.DurWAL) pays
// true fsync latency instead of completing instantly. The files carry
// the modeled byte volume, not a parseable record encoding — the logical
// records live in the protocol's wal.Log; the file is the timing and
// durability substrate. Call before Start. The first file error is
// remembered (WALError) and subsequent writes degrade to in-memory.
func (c *Cluster) EnableWAL(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c.mu.Lock()
	c.walDir = dir
	c.mu.Unlock()
	return nil
}

// WALError returns the first write-ahead file error since EnableWAL, or
// nil. Writes after an error complete in-memory, so a full disk degrades
// durability, never liveness.
func (c *Cluster) WALError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.walErr
}

func (c *Cluster) noteWALErr(err error) {
	c.mu.Lock()
	if c.walErr == nil {
		c.walErr = err
	}
	c.mu.Unlock()
}

// walZeros is the shared source buffer for modeled durable writes.
var walZeros [4096]byte

// diskAppend appends size bytes to the node's WAL file, opening it on
// first use. Runs on the node's loop goroutine, so the synchronous write
// blocks the actor exactly like a real single-spindle commit would.
func (n *ClusterNode) diskAppend(size int) {
	if n.wal == nil {
		path := filepath.Join(n.c.walDir, fmt.Sprintf("node-%d.wal", n.id))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND|os.O_SYNC, 0o644)
		if err != nil {
			n.c.noteWALErr(err)
			return
		}
		n.wal = f
	}
	for size > 0 {
		chunk := size
		if chunk > len(walZeros) {
			chunk = len(walZeros)
		}
		if _, err := n.wal.Write(walZeros[:chunk]); err != nil {
			n.c.noteWALErr(err)
			return
		}
		size -= chunk
	}
}

// DiskWrite implements Env. The in-memory runtime completes immediately;
// with EnableWAL the bytes hit a real O_SYNC file first, on the node's
// own loop, before the completion runs.
func (n *ClusterNode) DiskWrite(size int, fn func()) {
	n.c.mu.Lock()
	backed := n.c.walDir != "" && n.c.walErr == nil
	n.c.mu.Unlock()
	if !backed {
		n.enqueue(fn)
		return
	}
	n.enqueue(func() {
		n.diskAppend(size)
		fn()
	})
}
