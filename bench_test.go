package repro

// One testing.B target per table and figure of the dissertation's
// evaluation sections. Each benchmark regenerates its artifact on the
// simulated cluster and prints the measured series (first iteration only;
// repeat iterations, if the benchmark framework requests them, run
// silently). `go test -bench=. -benchmem` therefore reproduces the whole
// evaluation; cmd/repro runs individual experiments.

import (
	"io"
	"os"
	"testing"

	"repro/internal/bench"
)

func benchExp(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		w := io.Writer(io.Discard)
		if i == 0 {
			w = os.Stdout
		}
		e.Run(w)
	}
}

func BenchmarkTab3_1(b *testing.B)  { benchExp(b, "tab3.1") }
func BenchmarkFig3_2(b *testing.B)  { benchExp(b, "fig3.2") }
func BenchmarkFig3_3(b *testing.B)  { benchExp(b, "fig3.3") }
func BenchmarkFig3_4(b *testing.B)  { benchExp(b, "fig3.4") }
func BenchmarkFig3_7(b *testing.B)  { benchExp(b, "fig3.7") }
func BenchmarkTab3_2(b *testing.B)  { benchExp(b, "tab3.2") }
func BenchmarkFig3_8(b *testing.B)  { benchExp(b, "fig3.8") }
func BenchmarkFig3_9(b *testing.B)  { benchExp(b, "fig3.9") }
func BenchmarkFig3_10(b *testing.B) { benchExp(b, "fig3.10") }
func BenchmarkFig3_11(b *testing.B) { benchExp(b, "fig3.11") }
func BenchmarkFig3_12(b *testing.B) { benchExp(b, "fig3.12") }
func BenchmarkFig3_13(b *testing.B) { benchExp(b, "fig3.13") }
func BenchmarkFig3_14(b *testing.B) { benchExp(b, "fig3.14") }
func BenchmarkTab3_3(b *testing.B)  { benchExp(b, "tab3.3") }
func BenchmarkTab3_4(b *testing.B)  { benchExp(b, "tab3.4") }

func BenchmarkFig4_3(b *testing.B)  { benchExp(b, "fig4.3") }
func BenchmarkFig4_4(b *testing.B)  { benchExp(b, "fig4.4") }
func BenchmarkFig4_5(b *testing.B)  { benchExp(b, "fig4.5") }
func BenchmarkFig4_6(b *testing.B)  { benchExp(b, "fig4.6") }
func BenchmarkFig4_7(b *testing.B)  { benchExp(b, "fig4.7") }
func BenchmarkFig4_8(b *testing.B)  { benchExp(b, "fig4.8") }
func BenchmarkFig4_9(b *testing.B)  { benchExp(b, "fig4.9") }
func BenchmarkFig4_10(b *testing.B) { benchExp(b, "fig4.10") }

func BenchmarkFig5_1(b *testing.B)  { benchExp(b, "fig5.1") }
func BenchmarkFig5_2(b *testing.B)  { benchExp(b, "fig5.2") }
func BenchmarkFig5_4(b *testing.B)  { benchExp(b, "fig5.4") }
func BenchmarkFig5_5(b *testing.B)  { benchExp(b, "fig5.5") }
func BenchmarkFig5_6(b *testing.B)  { benchExp(b, "fig5.6") }
func BenchmarkFig5_7(b *testing.B)  { benchExp(b, "fig5.7") }
func BenchmarkFig5_8(b *testing.B)  { benchExp(b, "fig5.8") }
func BenchmarkFig5_9(b *testing.B)  { benchExp(b, "fig5.9") }
func BenchmarkFig5_10(b *testing.B) { benchExp(b, "fig5.10") }
func BenchmarkFig5_11(b *testing.B) { benchExp(b, "fig5.11") }

func BenchmarkFig6_3(b *testing.B) { benchExp(b, "fig6.3") }
func BenchmarkFig6_4(b *testing.B) { benchExp(b, "fig6.4") }
func BenchmarkFig6_5(b *testing.B) { benchExp(b, "fig6.5") }
func BenchmarkFig6_6(b *testing.B) { benchExp(b, "fig6.6") }
func BenchmarkFig6_7(b *testing.B) { benchExp(b, "fig6.7") }
func BenchmarkTab6_1(b *testing.B) { benchExp(b, "tab6.1") }

func BenchmarkFig7_2(b *testing.B) { benchExp(b, "fig7.2") }
func BenchmarkFig7_3(b *testing.B) { benchExp(b, "fig7.3") }
func BenchmarkFig7_4(b *testing.B) { benchExp(b, "fig7.4") }
func BenchmarkFig7_5(b *testing.B) { benchExp(b, "fig7.5") }
func BenchmarkFig7_6(b *testing.B) { benchExp(b, "fig7.6") }
func BenchmarkFig7_7(b *testing.B) { benchExp(b, "fig7.7") }
