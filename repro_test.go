package repro

import (
	"sync"
	"testing"
	"time"
)

// TestRealtimeReplicatedLog runs U-Ring Paxos on the realtime runtime:
// three in-process nodes must deliver the same totally ordered sequence.
func TestRealtimeReplicatedLog(t *testing.T) {
	c := NewCluster(1)
	var mu sync.Mutex
	deliv := map[NodeID][]ValueID{}
	log := NewReplicatedLog(c, LogConfig{
		Nodes: []NodeID{1, 2, 3},
		Deliver: func(node NodeID, _ int64, v Value) {
			mu.Lock()
			deliv[node] = append(deliv[node], v.ID)
			mu.Unlock()
		},
		BatchDelay: time.Millisecond,
	})
	c.Start()
	defer c.Stop()

	const n = 60
	for i := 0; i < n; i++ {
		log.Propose(NodeID(i%3+1), Value{ID: ValueID(i + 1), Bytes: 64})
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		done := len(deliv[1]) == n && len(deliv[2]) == n && len(deliv[3]) == n
		mu.Unlock()
		if done {
			break
		}
		select {
		case <-deadline:
			mu.Lock()
			t.Fatalf("timeout: delivered %d/%d/%d of %d",
				len(deliv[1]), len(deliv[2]), len(deliv[3]), n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if deliv[1][i] != deliv[2][i] || deliv[2][i] != deliv[3][i] {
			t.Fatalf("order diverges at %d: %d/%d/%d", i, deliv[1][i], deliv[2][i], deliv[3][i])
		}
	}
}

// TestRealtimeMRing runs M-Ring Paxos on the realtime runtime with fan-out
// multicast.
func TestRealtimeMRing(t *testing.T) {
	c := NewCluster(2)
	cfg := MRingConfig{
		Ring:     []NodeID{1, 2},
		Learners: []NodeID{10, 11},
		Group:    7,
	}
	var mu sync.Mutex
	deliv := map[NodeID][]ValueID{}
	agents := map[NodeID]*MRingAgent{}
	for _, id := range []NodeID{1, 2, 10, 11} {
		id := id
		a := &MRingAgent{Cfg: cfg}
		a.Deliver = func(_ int64, v Value) {
			mu.Lock()
			deliv[id] = append(deliv[id], v.ID)
			mu.Unlock()
		}
		agents[id] = a
		c.AddNode(id, a)
		c.Subscribe(7, id)
	}
	prop := &MRingAgent{Cfg: cfg}
	pn := c.AddNode(100, prop)
	c.Start()
	defer c.Stop()

	const n = 40
	for i := 0; i < n; i++ {
		v := Value{ID: ValueID(i + 1), Bytes: 64}
		pn.enqueue(func() { prop.Propose(v) })
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		done := len(deliv[10]) == n && len(deliv[11]) == n
		mu.Unlock()
		if done {
			break
		}
		select {
		case <-deadline:
			mu.Lock()
			t.Fatalf("timeout: %d/%d of %d", len(deliv[10]), len(deliv[11]), n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if deliv[10][i] != deliv[11][i] {
			t.Fatalf("learner order diverges at %d", i)
		}
	}
}

// TestFacadeSimDeploy smoke-tests the exported simulator API end to end.
func TestFacadeSimDeploy(t *testing.T) {
	d := DeploySMR(SMRDeployConfig{
		Clients:          2,
		Replicas:         2,
		KeysPerPartition: 10_000,
		Workload: func(int) SMRWorkload {
			return SMRQueryWorkload{KeySpace: 10_000, Span: 100}
		},
	}, DefaultSimConfig(), 1)
	tput, lat := d.Measure(100*time.Millisecond, 500*time.Millisecond)
	if tput == 0 || lat == 0 {
		t.Fatalf("facade deployment produced no traffic: %f %v", tput, lat)
	}
}
