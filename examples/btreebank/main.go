// Command btreebank reproduces the DSN 2011 scenario end to end on the
// simulated cluster: a replicated B+-tree service (think: an account-range
// lookup service) under the paper's three deployment strategies —
//
//  1. classic state-machine replication,
//  2. SMR with speculative execution (§4.2.1),
//  3. SMR with state partitioning (§4.2.2),
//
// and prints the throughput/latency comparison the paper's Chapter 4
// evaluation builds its figures from.
package main

import (
	"fmt"
	"time"

	"repro"
)

func run(name string, cfg repro.SMRDeployConfig) {
	d := repro.DeploySMR(cfg, repro.DefaultSimConfig(), 42)
	tput, lat := d.Measure(300*time.Millisecond, time.Second)
	fmt.Printf("%-28s %10.0f req/s %12v\n", name, tput, lat.Round(10*time.Microsecond))
}

func main() {
	const keys = 200_000
	queries := func(int) repro.SMRWorkload {
		return repro.SMRQueryWorkload{KeySpace: keys, Span: 1000}
	}
	fmt.Println("replicated B+-tree, 1000-key range queries, 96 closed-loop clients")
	fmt.Println("------------------------------------------------------------------")
	run("client-server (baseline)", repro.SMRDeployConfig{
		CS: true, Clients: 96, KeysPerPartition: keys, Workload: queries,
	})
	run("SMR, 2 replicas", repro.SMRDeployConfig{
		Clients: 96, Replicas: 2, KeysPerPartition: keys, Workload: queries,
	})
	run("SMR + speculation", repro.SMRDeployConfig{
		Clients: 96, Replicas: 2, Speculative: true, KeysPerPartition: keys, Workload: queries,
	})
	run("SMR + 2 partitions", repro.SMRDeployConfig{
		Clients: 96, Replicas: 2, Partitions: 2, KeysPerPartition: keys / 2,
		Workload: func(int) repro.SMRWorkload {
			return repro.SMRCrossPartitionWorkload{
				Partitions: 2, PartitionSpan: keys / 2, Span: 1000,
			}
		},
	})
	run("SMR + 4 partitions", repro.SMRDeployConfig{
		Clients: 96, Replicas: 2, Partitions: 4, KeysPerPartition: keys / 4,
		Workload: func(int) repro.SMRWorkload {
			return repro.SMRCrossPartitionWorkload{
				Partitions: 4, PartitionSpan: keys / 4, Span: 1000,
			}
		},
	})
	fmt.Println()
	fmt.Println("expected shape (paper, Fig 4.3/4.7): replication adds latency over")
	fmt.Println("client-server; speculation trims it; partitioning multiplies")
	fmt.Println("throughput roughly by the partition count.")
}
