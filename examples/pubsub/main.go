// Command pubsub uses Multi-Ring Paxos as an atomic multicast bus on the
// realtime runtime: two topics (groups), each backed by its own M-Ring
// Paxos ring, with subscribers that listen to one topic or both. The
// subscriber of both topics merges them deterministically — two such
// subscribers always observe the same interleaving, the uniform partial
// order that makes atomic multicast stronger than per-topic ordering.
package main

import (
	"fmt"
	"sync"
	"time"

	"repro"
	"repro/internal/ringpaxos"
)

const (
	topicSports = 0
	topicNews   = 1
)

func main() {
	cluster := repro.NewCluster(7)

	ringCfg := func(topic int) repro.MRingConfig {
		return repro.MRingConfig{
			Ring:     []repro.NodeID{repro.NodeID(10 + topic*2), repro.NodeID(11 + topic*2)},
			Learners: []repro.NodeID{20, 21, 22},
			Group:    repro.GroupID(topic + 1),
		}
	}

	// Acceptor nodes, one per ring role.
	for topic := 0; topic < 2; topic++ {
		cfg := ringCfg(topic)
		for _, id := range cfg.Ring {
			n := repro.NewMultiRingNode()
			a := &repro.MRingAgent{Cfg: cfg}
			n.AddRing(topic, a)
			if id == cfg.Ring[len(cfg.Ring)-1] {
				n.AddPacer(&repro.MultiRingPacer{Agent: a, Lambda: 2000, Delta: 5 * time.Millisecond})
			}
			cluster.AddNode(id, n)
			cluster.Subscribe(cfg.Group, id)
		}
	}

	// Subscribers: 20 and 21 take both topics (merged), 22 sports only.
	var mu sync.Mutex
	feeds := map[repro.NodeID][]string{}
	addSubscriber := func(id repro.NodeID, topics []int) {
		n := repro.NewMultiRingNode()
		for _, tp := range topics {
			n.AddRing(tp, &repro.MRingAgent{Cfg: ringCfg(tp)})
			cluster.Subscribe(repro.GroupID(tp+1), id)
		}
		m := repro.NewMultiRingMerger(topics, 1)
		m.Deliver = func(_ int64, v repro.Value) {
			mu.Lock()
			feeds[id] = append(feeds[id], v.Payload.(string))
			mu.Unlock()
		}
		n.SetMerger(m)
		cluster.AddNode(id, n)
	}
	addSubscriber(20, []int{topicSports, topicNews})
	addSubscriber(21, []int{topicSports, topicNews})
	addSubscriber(22, []int{topicSports})

	// Publisher node with a proposer agent per topic.
	pub := repro.NewMultiRingNode()
	pubAgents := map[int]*repro.MRingAgent{}
	for topic := 0; topic < 2; topic++ {
		pubAgents[topic] = &repro.MRingAgent{Cfg: ringCfg(topic)}
		pub.AddRing(topic, pubAgents[topic])
	}
	pubNode := cluster.AddNode(30, pub)

	cluster.Start()
	defer cluster.Stop()

	headlines := []struct {
		topic int
		text  string
	}{
		{topicSports, "[sports] home team wins"},
		{topicNews, "[news] election called"},
		{topicSports, "[sports] record broken"},
		{topicNews, "[news] markets rally"},
		{topicSports, "[sports] transfer rumor"},
	}
	_ = ringpaxos.MConfig{} // keep explicit the substrate in use
	for i, h := range headlines {
		h := h
		i := i
		// Publish from the publisher node's own goroutine context.
		pubNode.After(time.Duration(i*3)*time.Millisecond, func() {
			pubAgents[h.topic].Propose(repro.Value{
				ID: repro.ValueID(i + 1), Bytes: len(h.text), Payload: h.text,
			})
		})
	}

	want := map[repro.NodeID]int{20: 5, 21: 5, 22: 3}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		ok := true
		for id, n := range want {
			if len(feeds[id]) < n {
				ok = false
			}
		}
		mu.Unlock()
		if ok || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, id := range []repro.NodeID{20, 21, 22} {
		fmt.Printf("subscriber %d feed:\n", id)
		for _, s := range feeds[id] {
			fmt.Printf("  %s\n", s)
		}
	}
	same := len(feeds[20]) == len(feeds[21])
	for i := 0; same && i < len(feeds[20]); i++ {
		same = feeds[20][i] == feeds[21][i]
	}
	if same {
		fmt.Println("subscribers 20 and 21 agree on the merged order ✓")
	} else {
		fmt.Println("MERGE DIVERGENCE — this should never happen")
	}
}
