// Command quickstart embeds a replicated, totally ordered log in an
// application using the public API: three in-process U-Ring Paxos nodes
// each maintain a key-value map, apply commands in the agreed order, and
// end up byte-identical — the state-machine replication contract.
package main

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro"
)

// putCmd is the application command carried opaquely through the log.
type putCmd struct {
	Key, Val string
}

func main() {
	cluster := repro.NewCluster(1)

	// Each node applies delivered commands to its own map.
	var mu sync.Mutex
	states := map[repro.NodeID]map[string]string{
		1: {}, 2: {}, 3: {},
	}
	applied := map[repro.NodeID]int{}

	log := repro.NewReplicatedLog(cluster, repro.LogConfig{
		Nodes: []repro.NodeID{1, 2, 3},
		Deliver: func(node repro.NodeID, _ int64, v repro.Value) {
			cmd := v.Payload.(putCmd)
			mu.Lock()
			states[node][cmd.Key] = cmd.Val
			applied[node]++
			mu.Unlock()
		},
		BatchDelay: time.Millisecond,
	})
	cluster.Start()
	defer cluster.Stop()

	// Propose interleaved writes from different nodes; the log decides one
	// total order, so "last writer" is the same everywhere.
	cmds := []struct {
		from repro.NodeID
		cmd  putCmd
	}{
		{1, putCmd{"color", "red"}},
		{2, putCmd{"color", "green"}},
		{3, putCmd{"shape", "circle"}},
		{1, putCmd{"shape", "square"}},
		{2, putCmd{"size", "large"}},
		{3, putCmd{"color", "blue"}},
	}
	for i, c := range cmds {
		log.Propose(c.from, repro.Value{
			ID:      repro.ValueID(i + 1),
			Bytes:   64,
			Payload: c.cmd,
		})
	}

	// Wait until every node applied every command.
	for {
		mu.Lock()
		done := applied[1] == len(cmds) && applied[2] == len(cmds) && applied[3] == len(cmds)
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, node := range []repro.NodeID{1, 2, 3} {
		var keys []string
		for k := range states[node] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%s", k, states[node][k]))
		}
		fmt.Printf("node %d: %s\n", node, strings.Join(parts, " "))
	}
	if fmt.Sprint(states[1]) == fmt.Sprint(states[2]) && fmt.Sprint(states[2]) == fmt.Sprint(states[3]) {
		fmt.Println("all replicas converged ✓")
	} else {
		fmt.Println("DIVERGENCE — this should never happen")
	}
}
