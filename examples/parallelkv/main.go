// Command parallelkv demonstrates Parallel State-Machine Replication
// (Chapter 6) on the simulated cluster: the same key-value workload runs
// under the four execution models the dissertation compares, at 1–4 worker
// threads, printing the scalability table behind Figures 6.3 and 6.6.
package main

import (
	"fmt"
	"time"

	"repro"
)

func measure(mode repro.PSMRMode, workers, depPct int) float64 {
	d := repro.DeployPSMR(repro.PSMRDeployConfig{
		Mode:         mode,
		Workers:      workers,
		Clients:      120,
		DependentPct: depPct,
	}, repro.DefaultSimConfig(), 9)
	tput, _ := d.Measure(300*time.Millisecond, time.Second)
	return tput
}

func main() {
	fmt.Println("key-value store, 120 closed-loop clients, 20µs commands")
	fmt.Println()
	fmt.Println("independent commands (Figure 6.3 shape):")
	fmt.Printf("  %-16s", "workers:")
	for _, w := range []int{1, 2, 4} {
		fmt.Printf("%10d", w)
	}
	fmt.Println()
	for _, mode := range []repro.PSMRMode{repro.ModeSequential, repro.ModePipelined, repro.ModeSDPE, repro.ModePSMR} {
		fmt.Printf("  %-16s", mode)
		for _, w := range []int{1, 2, 4} {
			fmt.Printf("%10.0f", measure(mode, w, 0))
		}
		fmt.Println(" req/s")
	}
	fmt.Println()
	fmt.Println("mixed workload, 4 workers (Figure 6.5 shape):")
	fmt.Printf("  %-16s", "dependent %:")
	for _, p := range []int{0, 25, 50, 100} {
		fmt.Printf("%10d", p)
	}
	fmt.Println()
	fmt.Printf("  %-16s", "P-SMR")
	for _, p := range []int{0, 25, 50, 100} {
		fmt.Printf("%10.0f", measure(repro.ModePSMR, 4, p))
	}
	fmt.Println(" req/s")
	fmt.Println()
	fmt.Println("expected shape: P-SMR scales with workers on independent commands")
	fmt.Println("and degrades toward sequential as the dependent fraction grows.")
}
