package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRealtimeLogWALBacksDiskWrites covers the WALDir plumbing end to
// end: a ReplicatedLog with a WAL directory appends promises and votes
// through the write-ahead log, the cluster backs every append with a
// real O_SYNC file per ring member, and the files grow with the modeled
// byte volume. Wall-clock timing is noisy, so assertions check growth
// and wiring, never absolute sizes.
func TestRealtimeLogWALBacksDiskWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("drives ~1s of wall-clock cluster time with synchronous file writes")
	}
	dir := t.TempDir()
	c := NewCluster(7)
	var probe int
	log := NewReplicatedLog(c, LogConfig{
		Nodes:      []NodeID{1, 2, 3},
		BatchDelay: time.Millisecond,
		WALDir:     dir,
		Deliver: func(node NodeID, _ int64, _ Value) {
			if node == 1 {
				probe++
			}
		},
	})
	c.Start()
	deadline := time.Now().Add(500 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		log.Propose(NodeID(i%3+1), Value{ID: ValueID(i + 1), Bytes: 64})
		time.Sleep(time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	c.Stop()
	if err := c.WALError(); err != nil {
		t.Fatalf("WAL write error: %v", err)
	}
	if probe == 0 {
		t.Fatal("no deliveries: the log never made progress")
	}
	var appends, bytes int64
	for _, id := range []NodeID{1, 2, 3} {
		l := log.Agent(id).Log
		appends += l.Appends()
		bytes += l.Bytes()
	}
	if appends == 0 || bytes == 0 {
		t.Fatalf("write-ahead logs saw no appends (appends=%d bytes=%d)", appends, bytes)
	}
	var fileBytes int64
	for _, id := range []NodeID{1, 2, 3} {
		st, err := os.Stat(filepath.Join(dir, fmt.Sprintf("node-%d.wal", id)))
		if err != nil {
			t.Fatalf("ring member %d has no WAL file: %v", id, err)
		}
		if st.Size() == 0 {
			t.Fatalf("node-%d.wal is empty", id)
		}
		fileBytes += st.Size()
	}
	// Every modeled append was backed by a real write of the same size.
	if fileBytes != bytes {
		t.Fatalf("files hold %d bytes, logs modeled %d", fileBytes, bytes)
	}
}
