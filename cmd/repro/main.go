// Command repro regenerates the dissertation's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	repro -list                  list experiment ids
//	repro -exp fig3.7            run one experiment
//	repro -all                   run everything on a worker pool
//	repro -all -jobs 1           force the sequential path
//	repro -all -json             machine-readable per-experiment summary
//	repro -update-golden         re-pin the golden hashes (output + delivery + safety)
//	repro -verify-golden         check every experiment's output hash pin
//	repro -verify-deliv          check every experiment's delivery-sequence pin
//	repro -verify-safety         check the fault experiments' safety-verdict pins
//	repro -allocs fig4.3         alloc-profile experiments sequentially
//	repro -check-allocs ci/budgets.json  enforce allocation/heap ceilings
//
// The budget files under ci/ gate different nondeterministic dimensions:
// budgets.json (figure mallocs), soak-budgets.json (heap + live-log
// ceilings), recovery-budgets.json (WAL bytes + worst recovery gap) and
// client-budgets.json (exactly-once session retries + retry wire bytes).
//
// Experiment text goes to stdout in registry order (byte-identical for any
// -jobs value); per-experiment wall-clock and the run summary go to stderr
// so timing never perturbs the deterministic output stream.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonResult is the machine-readable per-experiment record emitted by
// -json.
type jsonResult struct {
	ID           string  `json:"id"`
	Title        string  `json:"title"`
	SHA256       string  `json:"sha256,omitempty"`
	DelivSHA256  string  `json:"deliv_sha256,omitempty"`
	SafetySHA256 string  `json:"safety_sha256,omitempty"`
	Bytes        int     `json:"bytes"`
	WallMS       float64 `json:"wall_ms"`
	Par          int     `json:"par,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// jsonExperiment is the machine-readable record emitted by -list -json.
// RepinnedNote carries the audit trail of the most recent deliberate
// output-golden re-pin, so reviewers can tell re-pinned artifacts apart
// from untouched ones without archaeology.
type jsonExperiment struct {
	ID           string `json:"id"`
	Title        string `json:"title"`
	Volatile     bool   `json:"volatile,omitempty"`
	Repinned     bool   `json:"repinned,omitempty"`
	RepinnedNote string `json:"repinned_note,omitempty"`
	Added        bool   `json:"added,omitempty"`
	AddedNote    string `json:"added_note,omitempty"`
}

type jsonSummary struct {
	Experiments int          `json:"experiments"`
	Failed      int          `json:"failed"`
	Jobs        int          `json:"jobs"`
	WallMS      float64      `json:"wall_ms"`
	AggregateMS float64      `json:"aggregate_ms"`
	Speedup     float64      `json:"speedup"`
	Results     []jsonResult `json:"results"`
}

// run is main with injectable streams and an exit code, so the CLI is
// testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list experiments")
	exp := fs.String("exp", "", "experiment id to run (e.g. fig3.7)")
	all := fs.Bool("all", false, "run every experiment")
	jobs := fs.Int("jobs", runtime.GOMAXPROCS(0), "worker pool size for -all and golden runs (<1 means GOMAXPROCS)")
	par := fs.Int("par", 1, "logical processes per experiment (conservative-lookahead PDES; results are byte-identical to -par 1)")
	jsonOut := fs.Bool("json", false, "with -all: emit a JSON run summary on stdout instead of experiment text")
	updateGolden := fs.Bool("update-golden", false, "regenerate the golden hashes (output, delivery AND safety) for all deterministic experiments")
	verifyGolden := fs.Bool("verify-golden", false, "run all deterministic experiments and compare against the golden output hashes")
	verifyDeliv := fs.Bool("verify-deliv", false, "run all deterministic experiments and compare against the delivery-sequence pins (combines with -verify-golden)")
	verifySafety := fs.Bool("verify-safety", false, "run all deterministic experiments and compare against the safety-verdict pins (combines with the other verify flags)")
	goldenDir := fs.String("golden-dir", bench.DefaultGoldenDir, "golden hash directory (relative to the repository root)")
	allocs := fs.String("allocs", "", "comma-separated experiment ids to alloc-profile sequentially (JSON on stdout)")
	checkAllocs := fs.String("check-allocs", "", "budget file (e.g. ci/budgets.json): alloc-profile each budgeted experiment and fail on any exceeded ceiling")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *jsonOut && !*all && !*list {
		fmt.Fprintln(stderr, "-json only applies to -all or -list")
		return 2
	}
	bench.SetPar(*par)

	switch {
	case *checkAllocs != "":
		return runCheckAllocs(stdout, stderr, *checkAllocs)
	case *allocs != "":
		return runAllocs(stdout, stderr, *allocs)
	case *list:
		return runList(stdout, stderr, *jsonOut)
	case *updateGolden, *verifyGolden, *verifyDeliv, *verifySafety:
		exps := bench.GoldenExperiments()
		if *exp != "" {
			// Re-pin or check a single experiment after a targeted change.
			e, ok := bench.Get(*exp)
			if !ok {
				fmt.Fprintf(stderr, "unknown experiment %q; use -list\n", *exp)
				return 1
			}
			if e.Volatile {
				fmt.Fprintf(stderr, "experiment %q is volatile: it has no golden pin\n", *exp)
				return 1
			}
			exps = []bench.Experiment{e}
		}
		return goldenRun(stdout, stderr, bench.ResolveGoldenDir(*goldenDir), *jobs, *updateGolden, *verifyGolden, *verifyDeliv, *verifySafety, exps)
	case *all:
		return runAll(stdout, stderr, *jobs, *jsonOut)
	case *exp != "":
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q; use -list\n", *exp)
			return 1
		}
		return runSingle(e, stdout, stderr)
	default:
		fs.Usage()
		return 2
	}
}

// runSingle runs one experiment streaming its text to stdout as it is
// produced (bannerless, as -exp always was) — no pool, no buffering —
// while still reporting the output hash and containing panics.
func runSingle(e bench.Experiment, stdout, stderr io.Writer) (code int) {
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(stderr, "experiment %s panicked: %v\n", e.ID, p)
			code = 1
		}
	}()
	h := e.Hash(stdout)
	fmt.Fprintf(stderr, "done %s in %s (sha256 %s)\n",
		e.ID, time.Since(start).Round(time.Millisecond), h[:12])
	return 0
}

// runPool runs exps with the given parallelism, streaming each
// experiment's banner and text to stdout in registry order and its
// wall-clock to stderr.
func runPool(exps []bench.Experiment, jobs int, stdout, stderr io.Writer) []bench.Result {
	return bench.Run(exps, bench.Options{
		Jobs: jobs,
		OnResult: func(r bench.Result) {
			fmt.Fprintf(stdout, "\n########## %s — %s ##########\n", r.ID, r.Title)
			stdout.Write(r.Output)
			if r.Err != nil {
				fmt.Fprintf(stderr, "FAIL %s: %v\n", r.ID, r.Err)
				return
			}
			fmt.Fprintf(stderr, "done %-8s %8s  %6d bytes  %s\n",
				r.ID, r.Wall.Round(time.Millisecond), r.Bytes, r.SHA256[:12])
		},
	})
}

func runAll(stdout, stderr io.Writer, jobs int, jsonOut bool) int {
	exps := bench.All()
	start := time.Now()
	var results []bench.Result
	if jsonOut {
		// JSON mode: experiment text is summarized by its hash, so capture
		// quietly and emit one document at the end.
		results = bench.Run(exps, bench.Options{Jobs: jobs, OnResult: func(r bench.Result) {
			if r.Err != nil {
				fmt.Fprintf(stderr, "FAIL %s: %v\n", r.ID, r.Err)
			}
		}})
	} else {
		results = runPool(exps, jobs, stdout, stderr)
	}
	sum := bench.Summarize(results, jobs, time.Since(start))
	if jsonOut {
		out := jsonSummary{
			Experiments: sum.Experiments,
			Failed:      sum.Failed,
			Jobs:        sum.Jobs,
			WallMS:      float64(sum.Wall) / 1e6,
			AggregateMS: float64(sum.CPUTime) / 1e6,
			Speedup:     sum.Speedup(),
		}
		for _, r := range results {
			jr := jsonResult{ID: r.ID, Title: r.Title, SHA256: r.SHA256,
				DelivSHA256: r.DelivSHA256, SafetySHA256: r.SafetySHA256,
				Bytes: r.Bytes, WallMS: float64(r.Wall) / 1e6, Par: r.Par}
			if r.Err != nil {
				jr.Error = r.Err.Error()
			}
			out.Results = append(out.Results, jr)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	sum.Fprint(stderr)
	if sum.Failed > 0 {
		return 1
	}
	return 0
}

// runAllocs profiles the named experiments' heap allocations one at a
// time (MemStats is process-global, so the worker pool would pollute the
// numbers) and emits one JSON document on stdout.
func runAllocs(stdout, stderr io.Writer, ids string) int {
	var results []bench.AllocResult
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		e, ok := bench.Get(id)
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q; use -list\n", id)
			return 1
		}
		r := bench.ProfileAllocs(e)
		fmt.Fprintf(stderr, "done %-8s %8.0fms  %d mallocs  %d bytes\n",
			r.ID, r.WallMS, r.Mallocs, r.TotalAlloc)
		results = append(results, r)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// runCheckAllocs is CI's allocation gate: it profiles every experiment
// named in the budget file sequentially and fails when any ceiling —
// malloc count for the figure reproductions, live-heap peak or live-log
// span for the soak workloads — is exceeded. The profiles are emitted as
// JSON on stdout so a failing run leaves the numbers behind.
func runCheckAllocs(stdout, stderr io.Writer, path string) int {
	budgets, err := bench.ReadBudgets(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	results, bad := bench.CheckAllocs(budgets, stderr)
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(stderr, "BUDGET EXCEEDED: "+b)
		}
		return 1
	}
	fmt.Fprintf(stderr, "all %d budgets hold\n", len(budgets))
	return 0
}

// runList prints the experiment registry; with jsonOut it emits one JSON
// record per experiment including re-pin provenance notes.
func runList(stdout, stderr io.Writer, jsonOut bool) int {
	if jsonOut {
		var out []jsonExperiment
		for _, e := range bench.All() {
			je := jsonExperiment{ID: e.ID, Title: e.Title, Volatile: e.Volatile}
			if note, ok := bench.RepinNote(e.ID); ok {
				je.Repinned, je.RepinnedNote = true, note
			}
			if note, ok := bench.AddedNote(e.ID); ok {
				je.Added, je.AddedNote = true, note
			}
			out = append(out, je)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	for _, e := range bench.All() {
		mark := ""
		if note, ok := bench.RepinNote(e.ID); ok {
			mark = "  [re-pinned: " + note + "]"
		}
		if note, ok := bench.AddedNote(e.ID); ok {
			mark += "  [new: " + note + "]"
		}
		fmt.Fprintf(stdout, "%-10s %s%s\n", e.ID, e.Title, mark)
	}
	return 0
}

// goldenRun regenerates (update=true) or verifies the golden hashes for
// the given experiments. verifyOut checks the output-hash layer,
// verifyDeliv the delivery-sequence layer, verifySafety the
// safety-verdict layer; updates pin every layer an experiment produced,
// from the same simulation pass.
func goldenRun(stdout, stderr io.Writer, dir string, jobs int, update, verifyOut, verifyDeliv, verifySafety bool, exps []bench.Experiment) int {
	start := time.Now()
	results := bench.Run(exps, bench.Options{Jobs: jobs, OnResult: func(r bench.Result) {
		if r.Err != nil {
			fmt.Fprintf(stderr, "FAIL %s: %v\n", r.ID, r.Err)
			return
		}
		fmt.Fprintf(stderr, "done %-8s %8s  %s\n", r.ID, r.Wall.Round(time.Millisecond), r.SHA256[:12])
	}})
	sum := bench.Summarize(results, jobs, time.Since(start))
	sum.Fprint(stderr)
	if sum.Failed > 0 {
		return 1
	}
	if update {
		safetyPins := 0
		for _, r := range results {
			if err := bench.WriteGolden(dir, r.ID, r.SHA256); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			if err := bench.WriteDelivGolden(dir, r.ID, r.DelivSHA256); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			// Only fault experiments register a safety oracle; everything
			// else has no safety digest and gets no safety pin.
			if r.SafetySHA256 != "" {
				if err := bench.WriteSafetyGolden(dir, r.ID, r.SafetySHA256); err != nil {
					fmt.Fprintln(stderr, err)
					return 1
				}
				safetyPins++
			}
		}
		fmt.Fprintf(stdout, "pinned %d golden hashes (output + delivery, %d with safety) under %s\n",
			len(results), safetyPins, dir)
		return 0
	}
	var bad []string
	var gates []string
	if verifyOut {
		bad = append(bad, bench.VerifyGolden(dir, results)...)
		gates = append(gates, "output")
	}
	if verifyDeliv {
		bad = append(bad, bench.VerifyDelivGolden(dir, results)...)
		gates = append(gates, "delivery")
	}
	if verifySafety {
		bad = append(bad, bench.VerifySafetyGolden(dir, results)...)
		gates = append(gates, "safety")
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(stderr, b)
		}
		return 1
	}
	fmt.Fprintf(stdout, "all %d experiments match their golden hashes (%s)\n",
		len(results), strings.Join(gates, " + "))
	return 0
}
