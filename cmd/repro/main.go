// Command repro regenerates the dissertation's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	repro -list              list experiment ids
//	repro -exp fig3.7        run one experiment
//	repro -all               run everything (slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	exp := flag.String("exp", "", "experiment id to run (e.g. fig3.7)")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range bench.All() {
			fmt.Printf("\n########## %s — %s ##########\n", e.ID, e.Title)
			e.Run(os.Stdout)
		}
	case *exp != "":
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(1)
		}
		e.Run(os.Stdout)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
