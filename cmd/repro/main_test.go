package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, id := range []string{"fig3.2", "tab3.2", "fig5.4", "fig6.3", "fig7.7"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

func TestUnknownExperimentExits1(t *testing.T) {
	code, _, errw := runCLI(t, "-exp", "fig99.9")
	if code != 1 {
		t.Fatalf("-exp fig99.9 exit %d, want 1", code)
	}
	if !strings.Contains(errw, "unknown experiment") || !strings.Contains(errw, "fig99.9") {
		t.Errorf("stderr %q lacks diagnosis", errw)
	}
}

func TestRunOneExperiment(t *testing.T) {
	// tab3.1 is analytic (no simulation) so this stays fast.
	code, out, errw := runCLI(t, "-exp", "tab3.1")
	if code != 0 {
		t.Fatalf("-exp tab3.1 exit %d, stderr %s", code, errw)
	}
	if !strings.Contains(out, "Tab 3.1") || !strings.Contains(out, "M-Ring Paxos") {
		t.Errorf("unexpected output: %q", out)
	}
	if strings.Contains(out, "##########") {
		t.Errorf("-exp output must stay bannerless, got %q", out)
	}
	if !strings.Contains(errw, "sha256") {
		t.Errorf("stderr %q lacks the hash/timing line", errw)
	}
}

func TestJobsFlagParsing(t *testing.T) {
	// Malformed -jobs is a usage error (flag package reports it): exit 2.
	if code, _, errw := runCLI(t, "-all", "-jobs", "four"); code != 2 {
		t.Fatalf("-jobs four exit %d (stderr %s), want 2", code, errw)
	}
	// A valid -jobs value composes with -exp (it only affects pool runs).
	if code, _, _ := runCLI(t, "-jobs", "3", "-exp", "tab3.1"); code != 0 {
		t.Fatalf("-jobs 3 -exp tab3.1 exit %d, want 0", code)
	}
}

func TestJSONRequiresAllOrList(t *testing.T) {
	code, _, errw := runCLI(t, "-exp", "tab3.1", "-json")
	if code != 2 || !strings.Contains(errw, "-json only applies to -all or -list") {
		t.Fatalf("-exp -json exit %d, stderr %q; want usage error", code, errw)
	}
}

func TestListJSONCarriesProvenance(t *testing.T) {
	code, out, errw := runCLI(t, "-list", "-json")
	if code != 0 {
		t.Fatalf("-list -json exit %d, stderr %s", code, errw)
	}
	var exps []struct {
		ID           string `json:"id"`
		Title        string `json:"title"`
		Repinned     bool   `json:"repinned"`
		RepinnedNote string `json:"repinned_note"`
	}
	if err := json.Unmarshal([]byte(out), &exps); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out)
	}
	byID := map[string]bool{}
	for _, e := range exps {
		byID[e.ID] = true
		if note, ok := bench.RepinNote(e.ID); ok {
			if !e.Repinned || e.RepinnedNote != note {
				t.Errorf("%s: provenance note missing from -list -json (%+v)", e.ID, e)
			}
		} else if e.Repinned {
			t.Errorf("%s marked repinned without a note in the registry", e.ID)
		}
	}
	for _, id := range []string{"fig3.2", "soak.mring", "tab6.1"} {
		if !byID[id] {
			t.Errorf("-list -json missing %s", id)
		}
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, errw := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("-h exit %d, want 0", code)
	}
	if !strings.Contains(errw, "-update-golden") {
		t.Errorf("help text incomplete: %q", errw)
	}
}

func TestNoArgsIsUsageError(t *testing.T) {
	code, _, errw := runCLI(t)
	if code != 2 {
		t.Fatalf("no args exit %d, want 2", code)
	}
	if !strings.Contains(errw, "-exp") {
		t.Errorf("usage text missing from stderr: %q", errw)
	}
}

func TestGoldenUpdateAndVerifyRoundTrip(t *testing.T) {
	// Scoped to the analytic tab3.1 so the round trip stays fast: pin it
	// into a temp dir, verify it, then verify an unpinned experiment and
	// expect failure.
	dir := t.TempDir()
	code, out, errw := runCLI(t, "-update-golden", "-exp", "tab3.1", "-golden-dir", dir)
	if code != 0 || !strings.Contains(out, "pinned 1 golden hashes") {
		t.Fatalf("-update-golden exit %d, out %q, err %q", code, out, errw)
	}
	code, out, _ = runCLI(t, "-verify-golden", "-exp", "tab3.1", "-golden-dir", dir)
	if code != 0 || !strings.Contains(out, "match their golden hashes") {
		t.Fatalf("-verify-golden exit %d, out %q", code, out)
	}
	code, _, errw = runCLI(t, "-verify-golden", "-exp", "tab6.1", "-golden-dir", dir)
	if code != 1 || !strings.Contains(errw, "no golden file") {
		t.Fatalf("-verify-golden on unpinned experiment: exit %d, stderr %q", code, errw)
	}
}

func TestDelivGoldenUpdateAndVerifyRoundTrip(t *testing.T) {
	// -update-golden pins both layers from one run; -verify-deliv checks
	// only the delivery layer; both gates compose in one invocation.
	dir := t.TempDir()
	code, out, errw := runCLI(t, "-update-golden", "-exp", "tab3.1", "-golden-dir", dir)
	if code != 0 || !strings.Contains(out, "output + delivery") {
		t.Fatalf("-update-golden exit %d, out %q, err %q", code, out, errw)
	}
	if _, err := bench.ReadDelivGolden(dir, "tab3.1"); err != nil {
		t.Fatalf("-update-golden left no delivery pin: %v", err)
	}
	code, out, _ = runCLI(t, "-verify-deliv", "-exp", "tab3.1", "-golden-dir", dir)
	if code != 0 || !strings.Contains(out, "golden hashes (delivery)") {
		t.Fatalf("-verify-deliv exit %d, out %q", code, out)
	}
	code, out, _ = runCLI(t, "-verify-golden", "-verify-deliv", "-exp", "tab3.1", "-golden-dir", dir)
	if code != 0 || !strings.Contains(out, "(output + delivery)") {
		t.Fatalf("combined verify exit %d, out %q", code, out)
	}
	// A corrupted delivery pin must fail the delivery gate with the
	// louder delivery-specific diagnosis.
	if err := bench.WriteDelivGolden(dir, "tab3.1", strings.Repeat("0", 64)); err != nil {
		t.Fatal(err)
	}
	code, _, errw = runCLI(t, "-verify-deliv", "-exp", "tab3.1", "-golden-dir", dir)
	if code != 1 || !strings.Contains(errw, "DELIVERY SEQUENCE diverged") {
		t.Fatalf("tampered delivery pin: exit %d, stderr %q", code, errw)
	}
}

func TestAllocsFlag(t *testing.T) {
	// tab3.1 is analytic, so the alloc profile stays fast; the JSON must
	// carry the MemStats fields and the output hash.
	code, out, errw := runCLI(t, "-allocs", "tab3.1")
	if code != 0 {
		t.Fatalf("-allocs tab3.1 exit %d, stderr %s", code, errw)
	}
	var results []struct {
		ID      string `json:"id"`
		Mallocs uint64 `json:"mallocs"`
		SHA256  string `json:"sha256"`
	}
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out)
	}
	if len(results) != 1 || results[0].ID != "tab3.1" {
		t.Fatalf("unexpected results: %+v", results)
	}
	if results[0].Mallocs == 0 || len(results[0].SHA256) != 64 {
		t.Errorf("profile looks empty: %+v", results[0])
	}
}

func TestAllocsUnknownExperiment(t *testing.T) {
	code, _, errw := runCLI(t, "-allocs", "fig99.9")
	if code != 1 || !strings.Contains(errw, "unknown experiment") {
		t.Fatalf("exit %d stderr %q, want unknown-experiment failure", code, errw)
	}
}

// writeBudgets drops a budget file into a temp dir and returns its path.
func writeBudgets(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "budgets.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckAllocsWithinBudget(t *testing.T) {
	// tab3.1 is analytic; any generous malloc ceiling holds.
	path := writeBudgets(t, `[{"id": "tab3.1", "max_mallocs": 100000000}]`)
	code, out, errw := runCLI(t, "-check-allocs", path)
	if code != 0 {
		t.Fatalf("-check-allocs exit %d, stderr %s", code, errw)
	}
	if !strings.Contains(errw, "all 1 budgets hold") || !strings.Contains(errw, "ok   tab3.1") {
		t.Errorf("stderr %q lacks the verdicts", errw)
	}
	var results []struct {
		ID      string `json:"id"`
		Mallocs uint64 `json:"mallocs"`
	}
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out)
	}
	if len(results) != 1 || results[0].ID != "tab3.1" || results[0].Mallocs == 0 {
		t.Fatalf("unexpected results: %+v", results)
	}
}

func TestCheckAllocsExceededBudgetExits1(t *testing.T) {
	path := writeBudgets(t, `[{"id": "tab3.1", "max_mallocs": 1}]`)
	code, _, errw := runCLI(t, "-check-allocs", path)
	if code != 1 {
		t.Fatalf("-check-allocs exit %d with a 1-malloc budget, want 1", code)
	}
	if !strings.Contains(errw, "BUDGET EXCEEDED") || !strings.Contains(errw, "tab3.1") {
		t.Errorf("stderr %q lacks the violation", errw)
	}
}

func TestCheckAllocsBadFile(t *testing.T) {
	if code, _, _ := runCLI(t, "-check-allocs", "no/such/budgets.json"); code != 1 {
		t.Fatalf("missing budget file exit %d, want 1", code)
	}
	path := writeBudgets(t, `[{"id": "fig99.9", "max_mallocs": 5}]`)
	code, _, errw := runCLI(t, "-check-allocs", path)
	if code != 1 || !strings.Contains(errw, "unknown experiment") {
		t.Fatalf("exit %d stderr %q, want unknown-experiment failure", code, errw)
	}
}

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// TestRepoBudgetFilesParse keeps the in-repo CI budget files honest: both
// must parse and name only registered experiments (the soak file's heap
// ceilings can only be asserted by actually running 10 s soaks, which CI
// does; here we check the files' shape).
func TestRepoBudgetFilesParse(t *testing.T) {
	for _, rel := range []string{"ci/budgets.json", "ci/soak-budgets.json"} {
		path := filepath.Join(repoRoot(t), rel)
		budgets, err := bench.ReadBudgets(path)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, b := range budgets {
			if _, ok := bench.Get(b.ID); !ok {
				t.Errorf("%s names unknown experiment %q", rel, b.ID)
			}
			if b.MaxMallocs == 0 && b.MaxHeapAllocPeak == 0 && b.MaxLiveLogPeak == 0 {
				t.Errorf("%s: %s has no enforceable ceiling", rel, b.ID)
			}
		}
	}
}
