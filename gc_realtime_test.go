package repro

import (
	"testing"
	"time"
)

// replicatedLogSpan drives a 3-node realtime ReplicatedLog under
// sustained appends for roughly dur of wall time, stops the cluster, and
// returns the total live per-instance log span across all agents plus
// the probe node's delivery count. The cluster is stopped before any
// agent state is read, so the read races nothing.
func replicatedLogSpan(t *testing.T, gc time.Duration, dur time.Duration) (span int, delivered int) {
	t.Helper()
	c := NewCluster(7)
	var probe int
	log := NewReplicatedLog(c, LogConfig{
		Nodes:      []NodeID{1, 2, 3},
		BatchDelay: time.Millisecond,
		GCInterval: gc,
		Deliver: func(node NodeID, _ int64, _ Value) {
			if node == 1 {
				probe++
			}
		},
	})
	c.Start()
	deadline := time.Now().Add(dur)
	for i := 0; time.Now().Before(deadline); i++ {
		log.Propose(NodeID(i%3+1), Value{ID: ValueID(i + 1), Bytes: 64})
		time.Sleep(time.Millisecond)
	}
	// Let in-flight instances decide and (when enabled) a final few GC
	// rounds trim behind them before the snapshot.
	time.Sleep(200 * time.Millisecond)
	c.Stop()
	for _, id := range []NodeID{1, 2, 3} {
		span += log.Agent(id).LiveLogLen()
	}
	return span, probe
}

// TestRealtimeLogGCBoundsVoteLogSpan covers the realtime GCInterval
// plumbing end to end: with the zero-value (default) LogConfig the
// shared learner-version GC is on and the live vote-log span stays
// bounded under sustained appends; GCInterval -1 reproduces the old
// pre-plumbing behavior, retaining one record per instance forever.
// Wall-clock timing is inherently noisy, so the assertions compare the
// two runs against each other with generous margins rather than pinning
// absolute counts.
func TestRealtimeLogGCBoundsVoteLogSpan(t *testing.T) {
	if testing.Short() {
		t.Skip("drives ~1.5s of wall-clock cluster time; timing-sensitive under -short CI contention")
	}
	const dur = 700 * time.Millisecond
	bounded, deliveredOn := replicatedLogSpan(t, 0, dur)
	leaky, deliveredOff := replicatedLogSpan(t, -1, dur)
	if deliveredOn == 0 || deliveredOff == 0 {
		t.Fatalf("no deliveries (on=%d off=%d): the log never made progress", deliveredOn, deliveredOff)
	}
	if leaky < 60 {
		t.Fatalf("control run retained only %d records: not enough instances to judge boundedness", leaky)
	}
	if bounded > leaky/3 {
		t.Fatalf("default config retains %d live log records vs %d without GC: vote logs are not bounded", bounded, leaky)
	}
}
