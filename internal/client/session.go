// Package client implements the exactly-once client proposal layer for
// the ordering protocols in this repository.
//
// A Session stamps every proposal with its (client id, sequence number)
// identity, submits it toward the current coordinator, and retries with a
// capped exponential backoff until the command is acknowledged. Retries
// make proposals at-least-once; the learners' replicated dedup table
// (core.DedupTable) makes applications at-most-once; together the layer
// is exactly-once end to end — including across coordinator failovers,
// where the session redirects by re-reading its proposer's coordinator
// view (re-aimed by the ring-change propagation) and backs off on
// explicit NACK evidence from demoted ex-coordinators instead of timeout
// alone.
package client

import (
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// noNode marks "no coordinator known dead" (NodeID 0 is a real node).
const noNode = proto.NodeID(-1)

// retryOverheadBytes is the modeled per-retry wire overhead beyond the
// value payload (the MsgPropose header).
const retryOverheadBytes = 32

// Config parameterizes a Session.
type Config struct {
	// Submit hands a stamped value to the proposer path — typically the
	// Propose method of a ring agent composed on the same node, which
	// routes to its current coordinator view and re-aims on ring changes.
	Submit func(core.Value)
	// Coord reports the proposer's current coordinator view (the ring
	// agent's Coordinator method). The session consults it before a retry
	// so it never re-sends to a coordinator it has evidence is gone.
	Coord func() proto.NodeID
	// Bytes is the wire size of each command.
	Bytes int
	// Think is the pause between an ack and the next command (closed
	// loop; zero means issue immediately).
	Think time.Duration
	// Deadline, when positive, stops NEW commands at that sim time;
	// outstanding ones are still retried to completion, so a run's last
	// command can finish before the simulation ends.
	Deadline time.Duration
	// Retry is the base acknowledgment timeout; zero disables retries
	// (and redirects): the session issues each command once and waits
	// forever — the pre-exactly-once behavior, kept for control runs.
	Retry time.Duration
	// BackoffCap caps the exponential backoff (default 8x Retry).
	BackoffCap time.Duration
	// OnIssue/OnAck observe the session's lifecycle (first issue only,
	// not retries) — the fault rigs feed them to the safety oracle.
	OnIssue func(client, seq int64)
	OnAck   func(client, seq int64)
}

// Stats counts the session's observable behavior; the CI client budgets
// bound Retries and ExtraBytes.
type Stats struct {
	Issued  int64 // distinct commands issued
	Acked   int64 // distinct commands acknowledged
	Retries int64 // re-submissions beyond each command's first send
	Nacks   int64 // explicit coordinator rejections received
	// SkippedDead counts retry timeouts that fired while the proposer was
	// still aimed at a coordinator known dead (NACK evidence) — e.g.
	// inside the election window — and therefore sent nothing.
	SkippedDead int64
	// ExtraBytes is the wire cost of the retries (payload + header each).
	ExtraBytes int64
	// DupAcks counts acknowledgments beyond the first per command (every
	// learner acks independently; duplicates are expected and ignored).
	DupAcks int64
}

// Session is a closed-loop exactly-once client: one outstanding command
// at a time, stamped, retried and redirected until acknowledged. It is a
// proto.Handler, composed on its node (via proto.Multi) with the ring
// agent whose Propose/Coordinator it uses.
type Session struct {
	Cfg   Config
	Stats Stats

	env     proto.Env
	seq     int64
	cur     core.Value
	waiting bool
	backoff time.Duration
	// gen invalidates scheduled retry timers: every ack or reschedule
	// bumps it, so a stale timer (for an already acked command, or
	// superseded by a NACK-triggered reschedule) no-ops.
	gen int64
	// dead is the coordinator the session has evidence (a NACK) is not
	// serving; retries aimed at it are held back until the ring view
	// moves on. noNode when no evidence is held.
	dead    proto.NodeID
	retryFn func(int64)
	issueFn func()
}

var _ proto.Handler = (*Session)(nil)

// Start implements proto.Handler: the session issues its first command
// immediately.
func (s *Session) Start(env proto.Env) {
	s.env = env
	s.dead = noNode
	s.retryFn = s.retryTick
	s.issueFn = s.issue
	if s.Cfg.BackoffCap <= 0 {
		s.Cfg.BackoffCap = 8 * s.Cfg.Retry
	}
	s.issue()
}

// ID returns the session's client identity (its node id).
func (s *Session) ID() int64 { return int64(s.env.ID()) }

func (s *Session) issue() {
	if s.waiting {
		return
	}
	if s.Cfg.Deadline > 0 && s.env.Now() >= s.Cfg.Deadline {
		return
	}
	s.seq++
	s.cur = core.Value{
		ID:     core.ValueID(int64(s.env.ID())<<40 | s.seq),
		Bytes:  s.Cfg.Bytes,
		Born:   s.env.Now(),
		Client: int64(s.env.ID()),
		Seq:    s.seq,
	}
	s.waiting = true
	s.backoff = s.Cfg.Retry
	s.Stats.Issued++
	if s.Cfg.OnIssue != nil {
		s.Cfg.OnIssue(int64(s.env.ID()), s.seq)
	}
	s.Cfg.Submit(s.cur)
	s.armRetry()
}

// armRetry schedules the next acknowledgment timeout under a fresh
// generation (invalidating any previously scheduled one).
func (s *Session) armRetry() {
	if s.Cfg.Retry <= 0 {
		return
	}
	s.gen++
	proto.AfterFreeArg(s.env, s.backoff, s.retryFn, s.gen)
}

func (s *Session) retryTick(gen int64) {
	if !s.waiting || gen != s.gen {
		return
	}
	if target := s.Cfg.Coord(); target == s.dead && s.backoff < s.Cfg.BackoffCap {
		// The proposer is still aimed at a coordinator a NACK told us is
		// gone — the election window. Re-sending there would be a
		// guaranteed-wasted duplicate; keep backing off until the ring
		// view moves. Once the backoff reaches its cap the evidence is
		// old enough to distrust: probe anyway, so stale evidence (a
		// node that recovered, or was elected after all) can never stall
		// the session forever.
		s.Stats.SkippedDead++
	} else {
		s.Stats.Retries++
		s.Stats.ExtraBytes += int64(s.Cfg.Bytes + retryOverheadBytes)
		s.Cfg.Submit(s.cur)
	}
	if s.backoff *= 2; s.backoff > s.Cfg.BackoffCap {
		s.backoff = s.Cfg.BackoffCap
	}
	s.armRetry()
}

// Receive implements proto.Handler.
func (s *Session) Receive(from proto.NodeID, m proto.Message) {
	switch msg := m.(type) {
	case *proto.MsgClientAck:
		s.onAck(msg)
	case *proto.MsgProposeNack:
		s.onNack(from, msg)
	}
}

func (s *Session) onAck(m *proto.MsgClientAck) {
	if m.Client != int64(s.env.ID()) || m.Seq != s.seq || !s.waiting {
		// A later learner's ack for a command already acknowledged.
		s.Stats.DupAcks++
		proto.ClientAckPool.Put(m)
		return
	}
	s.waiting = false
	s.gen++ // invalidate the pending retry timer
	s.dead = noNode
	s.Stats.Acked++
	if s.Cfg.OnAck != nil {
		s.Cfg.OnAck(m.Client, m.Seq)
	}
	proto.ClientAckPool.Put(m)
	if s.Cfg.Think > 0 {
		proto.AfterFree(s.env, s.Cfg.Think, s.issueFn)
		return
	}
	s.issue()
}

func (s *Session) onNack(from proto.NodeID, m *proto.MsgProposeNack) {
	stale := m.Client != int64(s.env.ID()) || m.Seq != s.seq || !s.waiting
	hint := m.Coord
	proto.ProposeNackPool.Put(m)
	if stale {
		return
	}
	s.Stats.Nacks++
	if s.Cfg.Retry <= 0 {
		return // control mode: evidence noted, but no retries
	}
	if hint == from {
		// The rejecting node names ITSELF as coordinator: it is mid-
		// election (Phase 1 not yet complete) and will serve shortly.
		// Marking it dead would hold retries away from the very node
		// about to be elected; re-sending immediately would just be
		// NACKed again. Leave the timeout to retry.
		s.armRetry()
		return
	}
	// The sender is the evidence: it rejected us and points elsewhere, so
	// the node the proposer was aimed at is not serving proposals.
	s.dead = from
	if target := s.Cfg.Coord(); target != s.dead {
		// The proposer already re-aimed (ring change beat the NACK):
		// redirect immediately instead of waiting out the timeout.
		s.Stats.Retries++
		s.Stats.ExtraBytes += int64(s.Cfg.Bytes + retryOverheadBytes)
		s.Cfg.Submit(s.cur)
	}
	s.armRetry()
}
