package client

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// clockEnv is a single-node manual-clock environment: timers run in time
// order (FIFO within an instant), sends are recorded. Enough to drive a
// Session through retry/backoff/redirect schedules deterministically
// without a full LAN simulation.
type clockEnv struct {
	id     proto.NodeID
	now    time.Duration
	timers []timerEntry
	seq    int
}

type timerEntry struct {
	at  time.Duration
	ord int
	fn  func()
}

func (e *clockEnv) ID() proto.NodeID                 { return e.id }
func (e *clockEnv) Now() time.Duration               { return e.now }
func (e *clockEnv) Rand() *rand.Rand                 { return rand.New(rand.NewSource(1)) }
func (e *clockEnv) Send(proto.NodeID, proto.Message) {}
func (e *clockEnv) SendUDP(proto.NodeID, proto.Message) {
}
func (e *clockEnv) Multicast(proto.GroupID, proto.Message) {}
func (e *clockEnv) After(d time.Duration, fn func()) proto.Timer {
	e.seq++
	e.timers = append(e.timers, timerEntry{at: e.now + d, ord: e.seq, fn: fn})
	return nil
}
func (e *clockEnv) Work(d time.Duration, fn func()) { fn() }
func (e *clockEnv) DiskWrite(_ int, fn func())      { fn() }

// runUntil fires due timers in (time, insertion) order up to and
// including t, advancing the clock.
func (e *clockEnv) runUntil(t time.Duration) {
	for {
		best := -1
		for i, te := range e.timers {
			if te.at > t {
				continue
			}
			if best < 0 || te.at < e.timers[best].at ||
				(te.at == e.timers[best].at && te.ord < e.timers[best].ord) {
				best = i
			}
		}
		if best < 0 {
			e.now = t
			return
		}
		te := e.timers[best]
		e.timers = append(e.timers[:best], e.timers[best+1:]...)
		e.now = te.at
		te.fn()
	}
}

// rig wires a Session to a recording submit path with a mutable
// coordinator view.
type rig struct {
	env   *clockEnv
	s     *Session
	coord proto.NodeID
	sends []proto.NodeID // coordinator view at each Submit
}

func newRig(retry time.Duration, cfg func(*Config)) *rig {
	r := &rig{env: &clockEnv{id: 200}, coord: 2}
	c := Config{
		Bytes: 100,
		Retry: retry,
		Submit: func(v core.Value) {
			r.sends = append(r.sends, r.coord)
		},
		Coord: func() proto.NodeID { return r.coord },
	}
	if cfg != nil {
		cfg(&c)
	}
	r.s = &Session{Cfg: c}
	r.s.Start(r.env)
	return r
}

func ack(r *rig, from proto.NodeID) {
	m := proto.ClientAckPool.Get()
	m.Client, m.Seq = int64(r.env.id), r.s.seq
	r.s.Receive(from, m)
}

// nack delivers a demoted-node rejection: the hint points away from the
// sender, so the sender is evidence of a dead coordinator.
func nack(r *rig, from proto.NodeID) {
	m := proto.ProposeNackPool.Get()
	m.Client, m.Seq, m.Coord = int64(r.env.id), r.s.seq, from+100
	r.s.Receive(from, m)
}

// nackSelf delivers a mid-election rejection: the sender names itself as
// coordinator (its Phase 1 has not completed yet).
func nackSelf(r *rig, from proto.NodeID) {
	m := proto.ProposeNackPool.Get()
	m.Client, m.Seq, m.Coord = int64(r.env.id), r.s.seq, from
	r.s.Receive(from, m)
}

// TestSessionBackoffCap: with no acks, retries fire at the base timeout
// doubling per attempt until the cap, then hold at the cap.
func TestSessionBackoffCap(t *testing.T) {
	r := newRig(10*time.Millisecond, func(c *Config) { c.BackoffCap = 40 * time.Millisecond })
	r.env.runUntil(200 * time.Millisecond)
	// First send at 0, retries at 10, 30 (+20), 70 (+40, capped), 110,
	// 150, 190 ms: intervals 10, 20, 40, 40, 40, 40.
	if got := r.s.Stats.Retries; got != 6 {
		t.Fatalf("retries = %d, want 6 (sends %v)", got, r.sends)
	}
	if len(r.sends) != 7 {
		t.Fatalf("sends = %d, want 7", len(r.sends))
	}
	if r.s.Stats.ExtraBytes != 6*(100+retryOverheadBytes) {
		t.Fatalf("extra bytes = %d", r.s.Stats.ExtraBytes)
	}
}

// TestSessionNoResendToDeadCoordinator: a NACK from the coordinator the
// proposer is still aimed at (the election window: no ring change seen
// yet) must hold retries back instead of re-sending to the dead node;
// once the view moves to the new coordinator, the next timeout retries
// there.
func TestSessionNoResendToDeadCoordinator(t *testing.T) {
	r := newRig(10*time.Millisecond, nil)
	nack(r, 2) // evidence: node 2 rejected us; view still aims at 2
	r.env.runUntil(50 * time.Millisecond)
	if len(r.sends) != 1 {
		t.Fatalf("re-sent to dead coordinator: sends %v", r.sends)
	}
	if r.s.Stats.SkippedDead == 0 {
		t.Fatal("election-window timeouts not counted as skipped")
	}
	r.coord = 5 // ring change: proposer re-aims
	r.env.runUntil(200 * time.Millisecond)
	if len(r.sends) < 2 || r.sends[len(r.sends)-1] != 5 {
		t.Fatalf("no redirect to new coordinator: sends %v", r.sends)
	}
	ack(r, 100)
	if r.s.Stats.Acked != 1 || !boolSeq(r.s.seq == 2) {
		t.Fatalf("session did not move on after ack: %+v seq=%d", r.s.Stats, r.s.seq)
	}
}

func boolSeq(b bool) bool { return b }

// TestSessionNackImmediateRedirect: when the ring view already moved by
// the time the NACK arrives, the session redirects immediately instead
// of waiting out the timeout.
func TestSessionNackImmediateRedirect(t *testing.T) {
	r := newRig(time.Second, nil) // timeout far away: only the NACK can redirect
	r.coord = 5
	nack(r, 2)
	if len(r.sends) != 2 || r.sends[1] != 5 {
		t.Fatalf("no immediate redirect: sends %v", r.sends)
	}
	if r.s.Stats.Nacks != 1 {
		t.Fatalf("nacks = %d", r.s.Stats.Nacks)
	}
}

// TestSessionRedirectCoordinatorDiesAgain: the redirected-to coordinator
// dies before acking; the session must survive a second NACK and land on
// the third coordinator.
func TestSessionRedirectCoordinatorDiesAgain(t *testing.T) {
	r := newRig(10*time.Millisecond, nil)
	nack(r, 2) // first coordinator demoted
	r.coord = 5
	r.env.runUntil(15 * time.Millisecond) // timeout redirects to 5
	nack(r, 5)                            // ...which dies before acking
	r.coord = 7
	r.env.runUntil(100 * time.Millisecond)
	if r.sends[len(r.sends)-1] != 7 {
		t.Fatalf("did not reach third coordinator: sends %v", r.sends)
	}
	ack(r, 100)
	if r.s.Stats.Acked != 1 || r.s.seq != 2 {
		t.Fatalf("session stuck: %+v seq=%d", r.s.Stats, r.s.seq)
	}
}

// TestSessionDupAndStaleAcksIgnored: every learner acks independently;
// only the first ack completes the command, later ones (and acks for old
// sequences) are counted and dropped.
func TestSessionDupAndStaleAcksIgnored(t *testing.T) {
	r := newRig(0, func(c *Config) { c.Think = time.Hour }) // no retries, park after ack
	ack(r, 100)
	ack(r, 101) // second learner's ack for the same command
	if r.s.Stats.Acked != 1 || r.s.Stats.DupAcks != 1 {
		t.Fatalf("dup ack mishandled: %+v", r.s.Stats)
	}
	if r.s.Stats.Issued != 1 {
		t.Fatalf("dup ack issued a command early: %+v", r.s.Stats)
	}
}

// TestSessionDeadlineStopsNewCommands: after Deadline the session issues
// nothing new but still completes (and acks) the outstanding command.
func TestSessionDeadlineStopsNewCommands(t *testing.T) {
	r := newRig(10*time.Millisecond, func(c *Config) { c.Deadline = 5 * time.Millisecond })
	r.env.runUntil(6 * time.Millisecond)
	ack(r, 100) // outstanding command completes after the deadline
	if r.s.Stats.Issued != 1 || r.s.Stats.Acked != 1 {
		t.Fatalf("deadline mishandled: %+v", r.s.Stats)
	}
	r.env.runUntil(100 * time.Millisecond)
	if r.s.Stats.Issued != 1 {
		t.Fatalf("issued past deadline: %+v", r.s.Stats)
	}
}

// TestSessionElectionNackNotDeadEvidence: a NACK whose hint names the
// sender itself means the sender is mid-election and about to serve;
// the session must neither mark it dead nor resend immediately (that
// would just be NACKed again) — the next timeout retries normally.
func TestSessionElectionNackNotDeadEvidence(t *testing.T) {
	r := newRig(10*time.Millisecond, nil)
	nackSelf(r, 2)
	if len(r.sends) != 1 {
		t.Fatalf("immediate resend into an election: sends %v", r.sends)
	}
	r.env.runUntil(12 * time.Millisecond)
	if len(r.sends) != 2 || r.sends[1] != 2 || r.s.Stats.SkippedDead != 0 {
		t.Fatalf("timeout retry withheld from electing node: sends %v stats %+v",
			r.sends, r.s.Stats)
	}
}

// TestSessionDeadEvidenceProbedAtCap: dead-coordinator evidence expires
// once the backoff reaches its cap — the session probes the aimed-at node
// again rather than trusting stale evidence forever.
func TestSessionDeadEvidenceProbedAtCap(t *testing.T) {
	r := newRig(10*time.Millisecond, func(c *Config) { c.BackoffCap = 40 * time.Millisecond })
	nack(r, 2) // view never moves off node 2
	r.env.runUntil(80 * time.Millisecond)
	// Ticks at 10, 30 ms skip (backoff below cap); the 70 ms tick probes.
	if len(r.sends) != 2 || r.s.Stats.SkippedDead != 2 {
		t.Fatalf("stale evidence never probed: sends %v stats %+v", r.sends, r.s.Stats)
	}
}

// TestSessionControlModeNeverRetries: Retry == 0 is the control
// configuration — one send per command, no timers, no redirects, even on
// NACK evidence.
func TestSessionControlModeNeverRetries(t *testing.T) {
	r := newRig(0, nil)
	nack(r, 2)
	r.coord = 5
	r.env.runUntil(time.Second)
	if len(r.sends) != 1 || r.s.Stats.Retries != 0 {
		t.Fatalf("control session retried: sends %v stats %+v", r.sends, r.s.Stats)
	}
}
