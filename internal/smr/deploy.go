package smr

import (
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

// Node id layout used by deployments: clients get 1..N (their NodeID equals
// their client id, which routes replies), acceptors 1000+, replicas 2000+,
// the stand-alone server 3000.
const (
	acceptorBase = 1000
	replicaBase  = 2000
	csServerNode = 3000
)

// DeployConfig describes a replicated B+-tree deployment (§4.4.2).
type DeployConfig struct {
	// Clients is the number of closed-loop clients.
	Clients int
	// Workload builds each client's workload (index 0..Clients-1).
	Workload func(i int) Workload
	// Replicas is the number of replicas (full replication) or replicas
	// per partition (partitioned).
	Replicas int
	// Partitions > 1 enables state partitioning.
	Partitions int
	// RingSize is the number of ring acceptors (f+1; default 2).
	RingSize int
	// Speculative enables speculative execution at replicas.
	Speculative bool
	// KeysPerPartition is the populated tree size per partition (the paper
	// uses 12M; benchmarks scale this down — only scan width matters for
	// cost).
	KeysPerPartition int64
	// CS deploys the non-replicated client-server baseline instead.
	CS bool
	// Think is the optional client think time.
	Think time.Duration
	// GCInterval overrides the ordering ring's learner-version garbage
	// collection interval (§3.3.7); zero keeps the M-Ring default, so the
	// pinned figure reproductions are untouched. Negative disables GC.
	GCInterval time.Duration
}

// Deployment is a wired cluster ready to run.
type Deployment struct {
	LAN      *lan.LAN
	Clients  []*Client
	Replicas []*Replica
	Server   *CSServer
	Cfg      DeployConfig
}

// Deploy builds the cluster. The same builder drives Chapter 4's tests and
// benchmarks.
func Deploy(cfg DeployConfig, lc lan.Config, seed int64) *Deployment {
	if cfg.RingSize == 0 {
		cfg.RingSize = 2
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 1
	}
	if cfg.Partitions > 64 {
		// The whole partitioned design is 64-bound: core.Value.PartMask,
		// MConfig.LearnerParts and the client's sub-reply tracking are all
		// uint64 bitmasks (the paper evaluates at most 4 partitions).
		panic("smr: Partitions > 64 is not supported (partition sets are uint64 bitmasks)")
	}
	if cfg.KeysPerPartition == 0 {
		cfg.KeysPerPartition = 1 << 20
	}
	d := &Deployment{LAN: lan.New(lc, seed), Cfg: cfg}

	if cfg.CS {
		d.deployCS()
	} else {
		d.deploySMR()
	}
	d.LAN.Start()
	return d
}

func (d *Deployment) deployCS() {
	cfg := d.Cfg
	d.Server = &CSServer{Service: NewBTreeService(0, cfg.KeysPerPartition)}
	d.LAN.AddNode(csServerNode, d.Server)
	for i := 0; i < cfg.Clients; i++ {
		id := proto.NodeID(i + 1)
		cl := &Client{
			ID:       int64(id),
			Workload: cfg.Workload(i),
			Think:    cfg.Think,
		}
		node := d.LAN.AddNode(id, cl)
		cl.Submit = func(v core.Value) { node.Send(csServerNode, NewRequest(v)) }
		d.Clients = append(d.Clients, cl)
	}
}

func (d *Deployment) deploySMR() {
	cfg := d.Cfg
	// One M-Ring Paxos instance orders everything; partitioned mode uses
	// one multicast group per partition plus the decision group (§4.2.2).
	// Replicas copy commands out of delivered values synchronously (the
	// speculative path retains the Payload command slice, never the batch
	// array), so batch storage can recycle.
	mcfg := ringpaxos.MConfig{Group: 500, RecycleBatches: true, GCInterval: cfg.GCInterval}
	for i := 0; i < cfg.RingSize; i++ {
		mcfg.Ring = append(mcfg.Ring, proto.NodeID(acceptorBase+i))
	}
	nRep := cfg.Replicas * cfg.Partitions
	learnerParts := make(map[proto.NodeID]uint64)
	for i := 0; i < nRep; i++ {
		id := proto.NodeID(replicaBase + i)
		mcfg.Learners = append(mcfg.Learners, id)
		learnerParts[id] = 1 << uint(i/cfg.Replicas)
	}
	if cfg.Partitions > 1 {
		for p := 0; p < cfg.Partitions; p++ {
			mcfg.PartGroups = append(mcfg.PartGroups, proto.GroupID(600+p))
		}
		mcfg.LearnerParts = learnerParts
	}
	if cfg.Speculative {
		mcfg.Speculative = true
	}

	// Ring acceptors.
	for i := 0; i < cfg.RingSize; i++ {
		id := proto.NodeID(acceptorBase + i)
		a := &ringpaxos.MAgent{Cfg: mcfg}
		d.LAN.AddNode(id, a)
		d.LAN.Subscribe(mcfg.Group, id)
		for _, g := range mcfg.PartGroups {
			d.LAN.Subscribe(g, id) // acceptors listen on all addresses
		}
	}
	// Replicas: partition p owns keys [p*span, (p+1)*span).
	span := cfg.KeysPerPartition
	for i := 0; i < nRep; i++ {
		id := proto.NodeID(replicaBase + i)
		p := i / cfg.Replicas
		rep := &Replica{
			Agent:       &ringpaxos.MAgent{Cfg: mcfg},
			Service:     NewBTreeService(int64(p)*span, span),
			Speculative: cfg.Speculative,
			Index:       i % cfg.Replicas,
			GroupSize:   cfg.Replicas,
		}
		d.LAN.AddNode(id, rep)
		d.LAN.Subscribe(mcfg.Group, id)
		if cfg.Partitions > 1 {
			d.LAN.Subscribe(mcfg.PartGroups[p], id)
		}
		d.Replicas = append(d.Replicas, rep)
	}
	// Clients, each with a co-located proposer agent.
	for i := 0; i < cfg.Clients; i++ {
		id := proto.NodeID(i + 1)
		prop := &ringpaxos.MAgent{Cfg: mcfg}
		cl := &Client{
			ID:            int64(id),
			Workload:      cfg.Workload(i),
			Partitions:    cfg.Partitions,
			PartitionSpan: span,
			Think:         cfg.Think,
			Submit:        prop.Propose,
		}
		d.LAN.AddNode(id, proto.Multi(prop, cl))
		d.Clients = append(d.Clients, cl)
	}
}

// Run advances the deployment by d's duration.
func (dep *Deployment) Run(d time.Duration) { dep.LAN.Run(d) }

// Measure runs for warmup+dur and returns throughput in requests/second and
// the mean latency over the measured window.
func (dep *Deployment) Measure(warmup, dur time.Duration) (float64, time.Duration) {
	dep.Run(warmup)
	var c0 int64
	var l0 time.Duration
	for _, c := range dep.Clients {
		c0 += c.Completed
		l0 += c.LatencySum
	}
	dep.Run(dur)
	var c1 int64
	var l1 time.Duration
	for _, c := range dep.Clients {
		c1 += c.Completed
		l1 += c.LatencySum
	}
	n := c1 - c0
	if n == 0 {
		return 0, 0
	}
	return float64(n) / dur.Seconds(), (l1 - l0) / time.Duration(n)
}
