package smr

import (
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

const (
	// RequestBytes is the wire size of every client command (§4.4.2).
	RequestBytes = 256
	// UpdateReplyBytes is the reply size of insert/delete commands.
	UpdateReplyBytes = 256
	// QueryReplyBytes is the reply size of range queries.
	QueryReplyBytes = 8 << 10
)

// MsgReply carries a command result back to the client. Replies are pooled
// pointers: produced by the answering replica (or the stand-alone server),
// consumed and recycled by the addressed client.
type MsgReply struct {
	Client int64
	Seq    int64
	Sub    int
	Bytes  int
	Reply  Reply
}

// Size implements proto.Message.
func (m MsgReply) Size() int { return m.Bytes }

var replyPool proto.MsgPool[MsgReply]

// pendingReply parks a finished command's answer while its modeled
// execution time elapses on the CPU. Work completions on a core are FIFO
// and each carries its entry's monotonic id, so the queue pairs every
// completion with its reply without closures — and survives dropped
// completions (a crashed node discards in-flight Work): the next surviving
// completion retires any orphaned entries in front of it.
type pendingReply struct {
	id   int64
	send bool
	to   proto.NodeID
	m    *MsgReply
}

// replyQueue is the pending-reply FIFO shared by Replica and CSServer.
type replyQueue struct {
	q      core.FIFO[pendingReply]
	nextID int64
}

// add parks p and returns the id its Work completion must present.
func (rq *replyQueue) add(p pendingReply) int64 {
	rq.nextID++
	p.id = rq.nextID
	rq.q.Push(p)
	return p.id
}

// complete pops the entry with the given id, discarding (and recycling)
// entries whose completions were dropped while the node was down.
func (rq *replyQueue) complete(id int64) (pendingReply, bool) {
	for rq.q.Len() > 0 {
		p := rq.q.Pop()
		if p.id == id {
			return p, true
		}
		replyPool.Put(p.m) // orphaned by a dropped completion
	}
	return pendingReply{}, false
}

// Replica is one state-machine replica: a learner of an M-Ring Paxos
// instance that executes delivered commands against a local Service and
// replies to clients. With Speculative set it implements §4.2.1: commands
// execute at Phase 2A receipt, overlapping ordering, and reply only once
// the order is confirmed; a mismatch triggers logical rollback.
type Replica struct {
	// Agent is this node's learner agent. Replica wires its callbacks.
	Agent *ringpaxos.MAgent
	// Service is the local deterministic state machine.
	Service Service
	// Speculative selects speculative execution (requires
	// Agent.Cfg.Speculative).
	Speculative bool
	// Index and GroupSize locate this replica in its replica group, to
	// decide which replica executes queries and answers clients.
	Index     int
	GroupSize int
	// ClientNode maps a command's client id to the node to answer;
	// identity by default.
	ClientNode func(client int64) proto.NodeID
	// ExactlyOnce enables the replicated dedup table: a command whose
	// (client, seq) is already applied — a retry that won a second
	// consensus instance — is answered from the table instead of
	// re-executed. Off by default (zero cost for existing deployments).
	ExactlyOnce bool

	env proto.Env

	// ExecutedCmds counts commands this replica actually executed.
	ExecutedCmds int64
	// DiscardedCmds counts delivered commands it discarded (queries it was
	// not responsible for — the overhead that caps read scalability,
	// §4.1).
	DiscardedCmds int64
	// Rollbacks counts speculative rollbacks.
	Rollbacks int64
	// DedupHits counts commands suppressed by the exactly-once table.
	DedupHits int64

	// dedup is the per-stream last-applied-seq table (ExactlyOnce only).
	// Each client sub-query stream deduplicates independently, so the key
	// composes the client id with the sub index.
	dedup *core.DedupTable
	// lastReply caches each stream's most recent answer so a suppressed
	// retry can still be answered (the ack the client lost).
	lastReply map[int64]Reply

	// speculative bookkeeping
	specLog   []*specEntry
	confirmed int // prefix of specLog whose order is confirmed

	// non-speculative completion queue (FIFO with Work completions)
	replyQ  replyQueue
	replyFn func(int64)
}

// specEntry records one speculatively executed instance.
type specEntry struct {
	inst    int64
	cmds    []Command
	replies []Reply
	undos   []Undo
	done    bool // modeled execution time fully charged
	acked   bool // order confirmed
	replied bool
}

var _ proto.Handler = (*Replica)(nil)

// Start implements proto.Handler.
func (r *Replica) Start(env proto.Env) {
	r.env = env
	if r.GroupSize == 0 {
		r.GroupSize = 1
	}
	if r.ClientNode == nil {
		r.ClientNode = func(c int64) proto.NodeID { return proto.NodeID(c) }
	}
	if r.Speculative {
		r.Agent.Cfg.Speculative = true
		r.Agent.SpecDeliver = r.onSpecDeliver
		r.Agent.Confirm = r.onConfirm
	} else {
		r.Agent.Deliver = r.onDeliver
	}
	if r.ExactlyOnce {
		r.dedup = core.NewDedupTable()
		r.lastReply = make(map[int64]Reply)
	}
	r.replyFn = r.completeReply
	r.Agent.Start(env)
}

// dedupKey identifies one exactly-once stream: partitioned queries split a
// request into sub-values sharing (client, seq), so each sub index
// deduplicates as its own stream.
func dedupKey(c Command) int64 { return c.Client<<8 | int64(c.Sub) }

func (r *Replica) completeReply(id int64) {
	if p, ok := r.replyQ.complete(id); ok && p.send {
		r.env.Send(p.to, p.m)
	}
}

// Receive implements proto.Handler.
func (r *Replica) Receive(from proto.NodeID, m proto.Message) {
	r.Agent.Receive(from, m)
}

// responsible reports whether this replica executes/answers for the client.
func (r *Replica) responsible(c Command) bool {
	return int(c.Client)%r.GroupSize == r.Index
}

func commands(v core.Value) []Command {
	cs, _ := v.Payload.([]Command)
	return cs
}

func replyBytes(cs []Command) int {
	for _, c := range cs {
		if c.Op == OpQuery {
			return QueryReplyBytes
		}
	}
	return UpdateReplyBytes
}

// --- non-speculative path ---

func (r *Replica) onDeliver(inst int64, v core.Value) {
	cs := commands(v)
	if len(cs) == 0 {
		return
	}
	if r.ExactlyOnce && r.dedup.Dup(dedupKey(cs[0]), cs[0].Seq) {
		// A retry won a second consensus instance after the first was
		// applied: answer from the table, never re-execute (at-most-once).
		r.DedupHits += int64(len(cs))
		c0 := cs[0]
		if r.responsible(c0) {
			m := replyPool.Get()
			m.Client, m.Seq, m.Sub = c0.Client, c0.Seq, c0.Sub
			m.Bytes, m.Reply = replyBytes(cs), r.lastReply[dedupKey(c0)]
			r.env.Send(r.ClientNode(c0.Client), m)
		}
		return
	}
	resp := r.responsible(cs[0])
	if cs[0].Op == OpQuery && !resp {
		// Only one replica executes a query (§4.4.2); the rest deliver and
		// discard it.
		r.DiscardedCmds += int64(len(cs))
		return
	}
	var cost time.Duration
	var last Reply
	for _, c := range cs {
		rep := apply(r.Service, c)
		cost += r.Service.Cost(c, rep)
		last = rep
		r.ExecutedCmds++
	}
	c0 := cs[0]
	if r.ExactlyOnce {
		r.dedup.Commit(dedupKey(c0), c0.Seq, inst)
		r.lastReply[dedupKey(c0)] = last
	}
	p := pendingReply{send: resp}
	if resp {
		m := replyPool.Get()
		m.Client, m.Seq, m.Sub, m.Bytes, m.Reply = c0.Client, c0.Seq, c0.Sub, replyBytes(cs), last
		p.to, p.m = r.ClientNode(c0.Client), m
	}
	id := r.replyQ.add(p)
	proto.WorkArg(r.env, cost, r.replyFn, id)
}

// --- speculative path (§4.2.1) ---

// onSpecDeliver executes one client request (one value) as soon as its
// Phase 2A arrives. One specEntry is appended per value, in execution order.
func (r *Replica) onSpecDeliver(inst int64, v core.Value) {
	cs := commands(v)
	if len(cs) == 0 {
		return
	}
	e := r.execute(&specEntry{inst: inst}, cs)
	r.specLog = append(r.specLog, e)
}

// execute runs cs against the service, filling e and charging the modeled
// cost; e.done flips when the modeled execution time elapses.
func (r *Replica) execute(e *specEntry, cs []Command) *specEntry {
	var cost time.Duration
	for _, c := range cs {
		if c.Op == OpQuery && !r.responsible(c) {
			r.DiscardedCmds++
			e.cmds = append(e.cmds, c)
			e.replies = append(e.replies, Reply{})
			e.undos = append(e.undos, nil)
			continue
		}
		rep, undo := r.Service.Execute(c)
		cost += r.Service.Cost(c, rep)
		e.cmds = append(e.cmds, c)
		e.replies = append(e.replies, rep)
		e.undos = append(e.undos, undo)
		r.ExecutedCmds++
	}
	r.env.Work(cost, func() {
		e.done = true
		r.maybeReply(e)
	})
	return e
}

// onConfirm fires when instance inst's order is confirmed; every specEntry
// of that instance (contiguous, in value order) becomes answerable. If the
// speculative execution order diverges from the confirmed order, the
// unconfirmed suffix is rolled back and re-executed (§4.2.1).
func (r *Replica) onConfirm(inst int64) {
	if r.confirmed < len(r.specLog) && r.specLog[r.confirmed].inst == inst {
		for r.confirmed < len(r.specLog) && r.specLog[r.confirmed].inst == inst {
			e := r.specLog[r.confirmed]
			r.confirmed++
			e.acked = true
			r.maybeReply(e)
		}
		r.trim()
		return
	}
	// Mismatch (or instance never speculatively executed): roll back every
	// unconfirmed speculative execution in reverse order...
	r.Rollbacks++
	suffix := append([]*specEntry(nil), r.specLog[r.confirmed:]...)
	for i := len(suffix) - 1; i >= 0; i-- {
		for j := len(suffix[i].undos) - 1; j >= 0; j-- {
			if u := suffix[i].undos[j]; u != nil {
				u()
			}
		}
	}
	r.specLog = r.specLog[:r.confirmed]
	// ...then re-execute the confirmed instance's entries first, followed
	// by the remaining rolled-back entries in their old relative order.
	for _, e := range suffix {
		if e.inst == inst {
			ne := r.execute(&specEntry{inst: e.inst, acked: true}, e.cmds)
			r.specLog = append(r.specLog, ne)
			r.confirmed = len(r.specLog)
		}
	}
	for _, e := range suffix {
		if e.inst != inst {
			ne := r.execute(&specEntry{inst: e.inst}, e.cmds)
			r.specLog = append(r.specLog, ne)
		}
	}
}

// maybeReply answers the client once an entry is both executed and
// confirmed.
func (r *Replica) maybeReply(e *specEntry) {
	if !e.done || !e.acked || e.replied || len(e.cmds) == 0 {
		return
	}
	e.replied = true
	c0 := e.cmds[0]
	if !r.responsible(c0) {
		return
	}
	m := replyPool.Get()
	m.Client, m.Seq, m.Sub = c0.Client, c0.Seq, c0.Sub
	m.Bytes, m.Reply = replyBytes(e.cmds), e.replies[len(e.replies)-1]
	r.env.Send(r.ClientNode(c0.Client), m)
}

// trim drops fully processed prefix entries to bound memory.
func (r *Replica) trim() {
	i := 0
	for i < r.confirmed && i < len(r.specLog) && r.specLog[i].replied {
		i++
	}
	if i > 0 {
		r.specLog = r.specLog[i:]
		r.confirmed -= i
	}
}
