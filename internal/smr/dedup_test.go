package smr

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// execEnv runs Work/DiskWrite completions immediately and records replies.
type execEnv struct{ replies []*MsgReply }

func (e *execEnv) ID() proto.NodeID   { return 9 }
func (e *execEnv) Now() time.Duration { return 0 }
func (e *execEnv) Rand() *rand.Rand   { return rand.New(rand.NewSource(1)) }
func (e *execEnv) Send(_ proto.NodeID, m proto.Message) {
	if r, ok := m.(*MsgReply); ok {
		e.replies = append(e.replies, r)
	}
}
func (e *execEnv) SendUDP(proto.NodeID, proto.Message)     {}
func (e *execEnv) Multicast(proto.GroupID, proto.Message)  {}
func (e *execEnv) After(time.Duration, func()) proto.Timer { return nil }
func (e *execEnv) Work(_ time.Duration, fn func())         { fn() }
func (e *execEnv) DiskWrite(_ int, fn func())              { fn() }

// dedupReplica builds an ExactlyOnce replica wired straight to an execEnv,
// bypassing the ordering agent: tests drive onDeliver directly.
func dedupReplica(env *execEnv) *Replica {
	r := &Replica{
		Service:     NewBTreeService(0, 0),
		GroupSize:   1,
		ExactlyOnce: true,
		ClientNode:  func(c int64) proto.NodeID { return proto.NodeID(c) },
	}
	r.env = env
	r.dedup = core.NewDedupTable()
	r.lastReply = make(map[int64]Reply)
	r.replyFn = r.completeReply
	return r
}

func deliver(r *Replica, inst int64, c Command) {
	r.onDeliver(inst, core.Value{Payload: []Command{c}})
}

// TestReplicaExactlyOnceSuppressesRetry: a retried insert that won a
// second consensus instance is answered from the table with the ORIGINAL
// reply — re-executing would return Ok=false (duplicate key), which is
// exactly the observable difference at-most-once execution prevents.
func TestReplicaExactlyOnceSuppressesRetry(t *testing.T) {
	env := &execEnv{}
	r := dedupReplica(env)
	ins := Command{Op: OpInsert, Key: 42, Value: 1, Client: 7, Seq: 1}
	deliver(r, 10, ins)
	deliver(r, 11, ins) // the retry, decided again
	if r.ExecutedCmds != 1 || r.DedupHits != 1 {
		t.Fatalf("executed=%d hits=%d, want 1/1", r.ExecutedCmds, r.DedupHits)
	}
	if len(env.replies) != 2 {
		t.Fatalf("replies = %d, want 2 (original + answered retry)", len(env.replies))
	}
	for i, m := range env.replies {
		if !m.Reply.Ok {
			t.Fatalf("reply %d Ok=false: the retry was re-executed", i)
		}
	}
	// The next sequence still executes normally.
	deliver(r, 12, Command{Op: OpDelete, Key: 42, Client: 7, Seq: 2})
	if r.ExecutedCmds != 2 || !env.replies[2].Reply.Ok {
		t.Fatalf("seq 2 mis-executed: executed=%d replies=%+v", r.ExecutedCmds, env.replies)
	}
}

// TestReplicaExactlyOnceSubStreams: sub-queries of one partitioned request
// share (client, seq); each sub index must deduplicate as its own stream,
// not suppress its siblings.
func TestReplicaExactlyOnceSubStreams(t *testing.T) {
	env := &execEnv{}
	r := dedupReplica(env)
	q0 := Command{Op: OpQuery, Min: 0, Max: 10, Client: 7, Seq: 1, Sub: 0}
	q1 := Command{Op: OpQuery, Min: 10, Max: 20, Client: 7, Seq: 1, Sub: 1}
	deliver(r, 10, q0)
	deliver(r, 11, q1)
	if r.ExecutedCmds != 2 || r.DedupHits != 0 {
		t.Fatalf("sibling sub-query suppressed: executed=%d hits=%d", r.ExecutedCmds, r.DedupHits)
	}
	deliver(r, 12, q1) // retry of one sub-query only
	if r.ExecutedCmds != 2 || r.DedupHits != 1 {
		t.Fatalf("sub retry not suppressed: executed=%d hits=%d", r.ExecutedCmds, r.DedupHits)
	}
}
