// Package smr implements the DSN 2011 contribution ("High Performance
// State-Machine Replication", Chapter 4 of the dissertation): state-machine
// replication over M-Ring Paxos with two performance extensions —
//
//   - speculative execution: replicas execute a command when its Phase 2A
//     arrives, in parallel with the protocol ordering it, and reply once the
//     order is confirmed; mismatches are rolled back with logical undo;
//   - state partitioning: the service state is split into sub-states, each
//     with its own ip-multicast group; M-Ring Paxos totally orders all
//     commands but delivers each only to the partitions it accesses, so
//     partitions execute in parallel while cross-partition commands remain
//     linearizable (state-partitioning ordering, §4.2.2).
//
// The replicated service is the B+-tree of §4.4.2, storing (key, value)
// int64 pairs with insert, delete and range-query commands.
package smr

import (
	"time"

	"repro/internal/btree"
)

// Op is a service command type.
type Op uint8

// Service operations (§4.4.2).
const (
	OpInsert Op = iota + 1
	OpDelete
	OpQuery
)

// Command is one client request against the replicated B+-tree.
type Command struct {
	Op       Op
	Key      int64
	Value    int64
	Min, Max int64 // query range
	// Client and Seq identify the request for the reply path; Sub
	// distinguishes the sub-commands of a split cross-partition query.
	Client int64
	Seq    int64
	Sub    int
}

// Reply is the result of executing a Command.
type Reply struct {
	// Scanned is the number of tuples a query visited.
	Scanned int
	// Ok reports whether an update took effect.
	Ok bool
	// DeletedValue preserves the value removed by a delete so the command
	// can be rolled back (§4.4.2).
	DeletedValue int64
}

// Undo is a logical rollback action for one executed command; nil when the
// command needs no rollback (queries).
type Undo func()

// Service is a deterministic state machine with logical undo, executable
// speculatively.
type Service interface {
	// Execute applies c and returns its reply and undo action.
	Execute(c Command) (Reply, Undo)
	// Cost returns the modeled CPU time executing c consumes on a replica,
	// given the reply (a range query's cost depends on how much it
	// scanned).
	Cost(c Command, r Reply) time.Duration
}

// Applier is the optional fast path for non-speculative execution: Apply
// behaves like Execute but builds no undo action. Undo actions are
// closures, and allocating two of them for every update command that will
// never roll back was a measurable share of the replicated B+-tree
// benchmark's garbage.
type Applier interface {
	Apply(c Command) Reply
}

// apply executes c without keeping an undo, via the Applier fast path when
// the service provides one.
func apply(s Service, c Command) Reply {
	if a, ok := s.(Applier); ok {
		return a.Apply(c)
	}
	r, _ := s.Execute(c)
	return r
}

// BTreeService is the replicated B+-tree service of §4.4.2. Costs are
// calibrated so a stand-alone server saturates at a few thousand 1000-key
// range queries per second and tens of thousands of updates per second
// (Figure 4.3).
type BTreeService struct {
	Tree btree.Tree

	// UpdateCost is the modeled CPU time of one insert or delete.
	UpdateCost time.Duration
	// QueryBaseCost is the fixed part of a range query's cost.
	QueryBaseCost time.Duration
	// QueryPerKey is the per-scanned-tuple part of a range query's cost.
	QueryPerKey time.Duration
}

var _ Service = (*BTreeService)(nil)

// NewBTreeService returns a service with the calibrated default costs,
// pre-populated with n sequential (key, key) tuples starting at base.
func NewBTreeService(base, n int64) *BTreeService {
	s := &BTreeService{
		UpdateCost:    18 * time.Microsecond,
		QueryBaseCost: 30 * time.Microsecond,
		QueryPerKey:   250 * time.Nanosecond,
	}
	for i := int64(0); i < n; i++ {
		s.Tree.Insert(base+i, base+i)
	}
	return s
}

// Execute implements Service.
func (s *BTreeService) Execute(c Command) (Reply, Undo) {
	switch c.Op {
	case OpInsert:
		ok := s.Tree.Insert(c.Key, c.Value)
		var undo Undo
		if ok {
			key := c.Key
			undo = func() { s.Tree.Delete(key) }
		}
		return Reply{Ok: ok}, undo
	case OpDelete:
		v, ok := s.Tree.Delete(c.Key)
		var undo Undo
		if ok {
			key, val := c.Key, v
			undo = func() { s.Tree.Insert(key, val) }
		}
		return Reply{Ok: ok, DeletedValue: v}, undo
	case OpQuery:
		n := s.Tree.Count(c.Min, c.Max)
		return Reply{Scanned: n, Ok: true}, nil
	default:
		return Reply{}, nil
	}
}

// Apply implements Applier: Execute without materializing undo closures.
func (s *BTreeService) Apply(c Command) Reply {
	switch c.Op {
	case OpInsert:
		return Reply{Ok: s.Tree.Insert(c.Key, c.Value)}
	case OpDelete:
		v, ok := s.Tree.Delete(c.Key)
		return Reply{Ok: ok, DeletedValue: v}
	case OpQuery:
		return Reply{Scanned: s.Tree.Count(c.Min, c.Max), Ok: true}
	default:
		return Reply{}
	}
}

// Cost implements Service.
func (s *BTreeService) Cost(c Command, r Reply) time.Duration {
	if c.Op == OpQuery {
		return s.QueryBaseCost + time.Duration(r.Scanned)*s.QueryPerKey
	}
	return s.UpdateCost
}
