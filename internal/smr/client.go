package smr

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// Workload generates client commands. Implementations correspond to the
// three workloads of §4.4.2.
type Workload interface {
	// Next returns the commands of the client's next request. A request
	// with several commands (Ins/Del batch) still forms a single value.
	Next(r *rand.Rand) []Command
}

// QueryWorkload issues range queries over an interval of Span keys with
// uniformly random lower bounds in [0, KeySpace-Span).
type QueryWorkload struct {
	KeySpace int64
	Span     int64
}

// Next implements Workload.
func (w QueryWorkload) Next(r *rand.Rand) []Command {
	lo := r.Int63n(w.KeySpace - w.Span)
	return []Command{{Op: OpQuery, Min: lo, Max: lo + w.Span - 1}}
}

// UpdateWorkload issues insert/delete pairs that keep tree size constant:
// each request is PerRequest update operations (1 for Ins/Del single, 7 for
// Ins/Del batch).
type UpdateWorkload struct {
	KeySpace   int64
	PerRequest int
}

// Next implements Workload.
func (w UpdateWorkload) Next(r *rand.Rand) []Command {
	n := w.PerRequest
	if n == 0 {
		n = 1
	}
	cs := make([]Command, 0, n)
	for i := 0; i < n; i++ {
		k := r.Int63n(w.KeySpace)
		if r.Intn(2) == 0 {
			cs = append(cs, Command{Op: OpInsert, Key: k, Value: k})
		} else {
			cs = append(cs, Command{Op: OpDelete, Key: k})
		}
	}
	return cs
}

// MixedWorkload issues queries with probability QueryPct/100, updates
// otherwise.
type MixedWorkload struct {
	Query    QueryWorkload
	Update   UpdateWorkload
	QueryPct int
}

// Next implements Workload.
func (w MixedWorkload) Next(r *rand.Rand) []Command {
	if r.Intn(100) < w.QueryPct {
		return w.Query.Next(r)
	}
	return w.Update.Next(r)
}

// CrossPartitionWorkload issues range queries of which CrossPct percent
// straddle a partition boundary and therefore split into two sub-queries
// (the Figure 4.8/4.9 workload). Single-partition queries scan Span keys
// inside a random partition; cross-partition ones scan Span keys centered
// on a random internal boundary.
type CrossPartitionWorkload struct {
	Partitions    int
	PartitionSpan int64
	Span          int64
	CrossPct      int
}

// Next implements Workload.
func (w CrossPartitionWorkload) Next(r *rand.Rand) []Command {
	if w.Partitions > 1 && r.Intn(100) < w.CrossPct {
		b := int64(r.Intn(w.Partitions-1)+1) * w.PartitionSpan
		lo := b - w.Span/2
		return []Command{{Op: OpQuery, Min: lo, Max: lo + w.Span - 1}}
	}
	p := int64(r.Intn(w.Partitions))
	lo := p*w.PartitionSpan + r.Int63n(w.PartitionSpan-w.Span)
	return []Command{{Op: OpQuery, Min: lo, Max: lo + w.Span - 1}}
}

// Client is a closed-loop client: it submits one request, waits for all
// replies (one per touched partition), records the latency and submits the
// next. With Partitions > 1 it implements the client replication library of
// §4.2.2: cross-partition queries split into per-partition sub-commands and
// the responses merge at the client.
type Client struct {
	// ID must be unique; replies are routed to the node whose NodeID equals
	// ID (clients live on their own nodes).
	ID int64
	// Submit injects a request value into the ordering layer (usually a
	// co-located proposer agent's Propose).
	Submit func(v core.Value)
	// Workload generates requests.
	Workload Workload
	// Partitions is the number of state partitions (≤1 means none; at most
	// 64, the width of the partition bitmasks used throughout);
	// PartitionSpan is the key width of each partition.
	Partitions    int
	PartitionSpan int64
	// Think, when positive, pauses between completion and next request.
	Think time.Duration
	// OnComplete, if set, observes each finished request with the total
	// tuples scanned across its sub-queries.
	OnComplete func(seq int64, scanned int)

	env proto.Env

	seq     int64
	waiting int
	gotMask uint64 // replied sub-queries of the current request, by Sub bit
	started time.Duration
	scanned int
	subs    [][]Command // reusable split buffer; sub-slices escape, it doesn't
	issueFn func()

	// Completed counts finished requests; LatencySum accumulates their
	// response times.
	Completed  int64
	LatencySum time.Duration
}

var _ proto.Handler = (*Client)(nil)

// Start implements proto.Handler.
func (c *Client) Start(env proto.Env) {
	c.env = env
	c.issueFn = c.issue
	// Stagger client start to avoid a synchronized burst.
	proto.AfterFree(env, time.Duration(env.Rand().Intn(1000))*time.Microsecond, c.issueFn)
}

func (c *Client) issue() {
	cs := c.Workload.Next(c.env.Rand())
	c.seq++
	c.started = c.env.Now()
	subs := c.split(cs)
	c.waiting = len(subs)
	c.gotMask = 0
	c.scanned = 0
	for i, sub := range subs {
		for j := range sub {
			sub[j].Client = c.ID
			sub[j].Seq = c.seq
			sub[j].Sub = i
		}
		v := core.Value{
			ID:      core.ValueID(c.ID<<32 | c.seq&0xffffffff),
			Bytes:   RequestBytes,
			Payload: sub,
			Born:    c.env.Now(),
		}
		if c.Partitions > 1 {
			v.PartMask = 1 << uint(c.partitionOf(sub[0]))
		}
		c.Submit(v)
	}
}

// split breaks a request into per-partition sub-commands (§4.2.2). Updates
// touch one partition; a query spanning several partitions becomes one
// sub-query per partition. The returned outer slice is the client's
// reusable buffer — only the sub-command slices travel in values.
func (c *Client) split(cs []Command) [][]Command {
	c.subs = c.subs[:0]
	if c.Partitions <= 1 || cs[0].Op != OpQuery {
		c.subs = append(c.subs, cs)
		return c.subs
	}
	q := cs[0]
	first := int(q.Min / c.PartitionSpan)
	last := int(q.Max / c.PartitionSpan)
	if first == last {
		c.subs = append(c.subs, cs)
		return c.subs
	}
	for p := first; p <= last; p++ {
		lo, hi := q.Min, q.Max
		pLo, pHi := int64(p)*c.PartitionSpan, int64(p+1)*c.PartitionSpan-1
		if lo < pLo {
			lo = pLo
		}
		if hi > pHi {
			hi = pHi
		}
		c.subs = append(c.subs, []Command{{Op: OpQuery, Min: lo, Max: hi}})
	}
	return c.subs
}

func (c *Client) partitionOf(cmd Command) int {
	k := cmd.Key
	if cmd.Op == OpQuery {
		k = cmd.Min
	}
	p := int(k / c.PartitionSpan)
	if p >= c.Partitions {
		p = c.Partitions - 1
	}
	return p
}

// Receive implements proto.Handler. The client is each reply's single
// consumer and recycles its envelope.
func (c *Client) Receive(_ proto.NodeID, m proto.Message) {
	rep, ok := m.(*MsgReply)
	if !ok {
		return
	}
	client, seq, sub, scanned := rep.Client, rep.Seq, rep.Sub, rep.Reply.Scanned
	replyPool.Put(rep)
	if client != c.ID || seq != c.seq || c.waiting == 0 || c.gotMask&(1<<uint(sub)) != 0 {
		return
	}
	c.gotMask |= 1 << uint(sub)
	c.waiting--
	c.scanned += scanned
	if c.waiting > 0 {
		return
	}
	c.Completed++
	c.LatencySum += c.env.Now() - c.started
	if c.OnComplete != nil {
		c.OnComplete(c.seq, c.scanned)
	}
	if c.Think > 0 {
		proto.AfterFree(c.env, c.Think, c.issueFn)
		return
	}
	c.issue()
}

// AvgLatency returns the mean response time over completed requests.
func (c *Client) AvgLatency() time.Duration {
	if c.Completed == 0 {
		return 0
	}
	return c.LatencySum / time.Duration(c.Completed)
}
