package smr

import (
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// MsgRequest carries a client request directly to a stand-alone server (the
// non-replicated client-server baseline of §4.4.3). Requests are pooled
// pointers: the server is the single consumer and recycles them.
type MsgRequest struct{ V core.Value }

// Size implements proto.Message.
func (m MsgRequest) Size() int { return m.V.Bytes }

var requestPool proto.MsgPool[MsgRequest]

// NewRequest wraps v in a pooled request envelope.
func NewRequest(v core.Value) *MsgRequest {
	m := requestPool.Get()
	m.V = v
	return m
}

// CSServer is the stand-alone, non-replicated server baseline: clients send
// commands straight to it, execution is immediate (no ordering layer), and
// it answers every request itself. Replies queue behind the modeled
// execution time; Work completions are FIFO, so the pending-reply queue
// needs no per-request closures.
type CSServer struct {
	// Service is the local state machine.
	Service Service
	// ClientNode maps client ids to nodes; identity by default.
	ClientNode func(client int64) proto.NodeID

	env proto.Env

	// ExecutedCmds counts executed commands.
	ExecutedCmds int64

	replyQ  replyQueue
	replyFn func(int64)
}

var _ proto.Handler = (*CSServer)(nil)

// Start implements proto.Handler.
func (s *CSServer) Start(env proto.Env) {
	s.env = env
	if s.ClientNode == nil {
		s.ClientNode = func(c int64) proto.NodeID { return proto.NodeID(c) }
	}
	s.replyFn = s.completeReply
}

func (s *CSServer) completeReply(id int64) {
	if p, ok := s.replyQ.complete(id); ok {
		s.env.Send(p.to, p.m)
	}
}

// Receive implements proto.Handler.
func (s *CSServer) Receive(_ proto.NodeID, m proto.Message) {
	req, ok := m.(*MsgRequest)
	if !ok {
		return
	}
	cs := commands(req.V)
	requestPool.Put(req)
	if len(cs) == 0 {
		return
	}
	var cost time.Duration
	var last Reply
	for _, c := range cs {
		rep := apply(s.Service, c)
		cost += s.Service.Cost(c, rep)
		last = rep
		s.ExecutedCmds++
	}
	c0 := cs[0]
	rm := replyPool.Get()
	rm.Client, rm.Seq, rm.Sub, rm.Bytes, rm.Reply = c0.Client, c0.Seq, c0.Sub, replyBytes(cs), last
	id := s.replyQ.add(pendingReply{send: true, to: s.ClientNode(c0.Client), m: rm})
	proto.WorkArg(s.env, cost, s.replyFn, id)
}
