package smr

import (
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// MsgRequest carries a client request directly to a stand-alone server (the
// non-replicated client-server baseline of §4.4.3).
type MsgRequest struct{ V core.Value }

// Size implements proto.Message.
func (m MsgRequest) Size() int { return m.V.Bytes }

// CSServer is the stand-alone, non-replicated server baseline: clients send
// commands straight to it, execution is immediate (no ordering layer), and
// it answers every request itself.
type CSServer struct {
	// Service is the local state machine.
	Service Service
	// ClientNode maps client ids to nodes; identity by default.
	ClientNode func(client int64) proto.NodeID

	env proto.Env

	// ExecutedCmds counts executed commands.
	ExecutedCmds int64
}

var _ proto.Handler = (*CSServer)(nil)

// Start implements proto.Handler.
func (s *CSServer) Start(env proto.Env) {
	s.env = env
	if s.ClientNode == nil {
		s.ClientNode = func(c int64) proto.NodeID { return proto.NodeID(c) }
	}
}

// Receive implements proto.Handler.
func (s *CSServer) Receive(_ proto.NodeID, m proto.Message) {
	req, ok := m.(MsgRequest)
	if !ok {
		return
	}
	cs := commands(req.V)
	if len(cs) == 0 {
		return
	}
	var cost time.Duration
	var last Reply
	for _, c := range cs {
		rep, _ := s.Service.Execute(c)
		cost += s.Service.Cost(c, rep)
		last = rep
		s.ExecutedCmds++
	}
	c0 := cs[0]
	s.env.Work(cost, func() {
		s.env.Send(s.ClientNode(c0.Client), MsgReply{
			Client: c0.Client, Seq: c0.Seq, Sub: c0.Sub,
			Bytes: replyBytes(cs), Reply: last,
		})
	})
}
