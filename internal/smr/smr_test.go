package smr

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

// treeChecksum summarizes a replica's tree state for convergence checks.
func treeChecksum(s *BTreeService) (int, int64) {
	sum := int64(0)
	s.Tree.QueryFunc(-1<<62, 1<<62, func(k, v int64) bool {
		sum = sum*1099511628211 + k*31 + v
		return true
	})
	return s.Tree.Len(), sum
}

func TestCSBaselineServesQueries(t *testing.T) {
	d := Deploy(DeployConfig{
		CS:               true,
		Clients:          4,
		KeysPerPartition: 100_000,
		Workload: func(int) Workload {
			return QueryWorkload{KeySpace: 100_000, Span: 1000}
		},
	}, lan.DefaultConfig(), 1)
	tput, lat := d.Measure(200*time.Millisecond, time.Second)
	if tput < 100 {
		t.Fatalf("CS throughput %.0f req/s too low", tput)
	}
	if lat <= 0 || lat > 10*time.Millisecond {
		t.Fatalf("CS latency %v implausible", lat)
	}
	for _, c := range d.Clients {
		if c.Completed == 0 {
			t.Fatal("a client completed nothing")
		}
	}
}

func TestSMRQueryWorkload(t *testing.T) {
	d := Deploy(DeployConfig{
		Clients:          4,
		Replicas:         2,
		KeysPerPartition: 100_000,
		Workload: func(int) Workload {
			return QueryWorkload{KeySpace: 100_000, Span: 1000}
		},
	}, lan.DefaultConfig(), 1)
	tput, lat := d.Measure(200*time.Millisecond, time.Second)
	if tput < 50 {
		t.Fatalf("SMR query throughput %.0f req/s too low", tput)
	}
	if lat <= 0 {
		t.Fatal("no latency recorded")
	}
	// Every query over a fully populated tree must scan exactly 1000 keys.
	bad := false
	for _, c := range d.Clients {
		c.OnComplete = func(_ int64, scanned int) {
			if scanned != 1000 {
				bad = true
			}
		}
	}
	d.Run(200 * time.Millisecond)
	if bad {
		t.Fatal("a query scanned the wrong number of keys")
	}
}

func TestSMRReplicasConverge(t *testing.T) {
	d := Deploy(DeployConfig{
		Clients:          6,
		Replicas:         3,
		KeysPerPartition: 50_000,
		Workload: func(int) Workload {
			return UpdateWorkload{KeySpace: 50_000, PerRequest: 1}
		},
	}, lan.DefaultConfig(), 2)
	d.Run(2 * time.Second)
	// Quiesce: stop clients issuing by detaching workload? Instead just
	// compare after a drain period with no further proposals: crash the
	// clients, then let in-flight commands finish.
	for i := 0; i < d.Cfg.Clients; i++ {
		d.LAN.Node(proto.NodeID(i + 1)).SetDown(true)
	}
	d.Run(2 * time.Second)
	l0, s0 := treeChecksum(d.Replicas[0].Service.(*BTreeService))
	for i, r := range d.Replicas {
		l, s := treeChecksum(r.Service.(*BTreeService))
		if l != l0 || s != s0 {
			t.Fatalf("replica %d diverged: len %d vs %d, sum %d vs %d", i, l, l0, s, s0)
		}
		if r.ExecutedCmds == 0 {
			t.Fatalf("replica %d executed nothing", i)
		}
	}
}

func TestSpeculativeRepliesAndConvergence(t *testing.T) {
	d := Deploy(DeployConfig{
		Clients:          6,
		Replicas:         2,
		Speculative:      true,
		KeysPerPartition: 50_000,
		Workload: func(int) Workload {
			return UpdateWorkload{KeySpace: 50_000, PerRequest: 7}
		},
	}, lan.DefaultConfig(), 3)
	d.Run(2 * time.Second)
	for i := 0; i < d.Cfg.Clients; i++ {
		d.LAN.Node(proto.NodeID(i + 1)).SetDown(true)
	}
	d.Run(2 * time.Second)
	var done int64
	for _, c := range d.Clients {
		done += c.Completed
	}
	if done == 0 {
		t.Fatal("no requests completed speculatively")
	}
	l0, s0 := treeChecksum(d.Replicas[0].Service.(*BTreeService))
	l1, s1 := treeChecksum(d.Replicas[1].Service.(*BTreeService))
	if l0 != l1 || s0 != s1 {
		t.Fatalf("speculative replicas diverged: %d/%d %d/%d", l0, l1, s0, s1)
	}
	for _, r := range d.Replicas {
		if r.Rollbacks != 0 {
			t.Fatalf("unexpected rollbacks in failure-free run: %d", r.Rollbacks)
		}
	}
}

func TestSpeculativeReducesLatency(t *testing.T) {
	run := func(spec bool) time.Duration {
		d := Deploy(DeployConfig{
			Clients:          8,
			Replicas:         2,
			Speculative:      spec,
			KeysPerPartition: 100_000,
			Workload: func(int) Workload {
				return UpdateWorkload{KeySpace: 100_000, PerRequest: 7}
			},
		}, lan.DefaultConfig(), 4)
		_, lat := d.Measure(300*time.Millisecond, time.Second)
		return lat
	}
	plain, spec := run(false), run(true)
	t.Logf("latency: SMR %v, speculative %v", plain, spec)
	if spec > plain {
		t.Fatalf("speculation did not reduce latency: %v vs %v", spec, plain)
	}
}

func TestPartitionedQueriesCorrect(t *testing.T) {
	const span = 50_000
	d := Deploy(DeployConfig{
		Clients:          4,
		Replicas:         2,
		Partitions:       2,
		KeysPerPartition: span,
		Workload: func(int) Workload {
			return CrossPartitionWorkload{
				Partitions: 2, PartitionSpan: span, Span: 1000, CrossPct: 50,
			}
		},
	}, lan.DefaultConfig(), 5)
	bad := 0
	for _, c := range d.Clients {
		c.OnComplete = func(_ int64, scanned int) {
			if scanned != 1000 {
				bad++
			}
		}
	}
	d.Run(2 * time.Second)
	var done int64
	for _, c := range d.Clients {
		done += c.Completed
	}
	if done == 0 {
		t.Fatal("no partitioned requests completed")
	}
	if bad > 0 {
		t.Fatalf("%d queries returned wrong merged scan counts", bad)
	}
}

func TestPartitionedReplicasOnlySeeTheirPartition(t *testing.T) {
	const span = 50_000
	d := Deploy(DeployConfig{
		Clients:          4,
		Replicas:         1,
		Partitions:       2,
		KeysPerPartition: span,
		Workload: func(i int) Workload {
			// Updates only, uniformly over the whole key space.
			return UpdateWorkload{KeySpace: 2 * span, PerRequest: 1}
		},
	}, lan.DefaultConfig(), 6)
	d.Run(2 * time.Second)
	for i := 0; i < d.Cfg.Clients; i++ {
		d.LAN.Node(proto.NodeID(i + 1)).SetDown(true)
	}
	d.Run(time.Second)
	// Partition 0's replica must hold only keys < span, partition 1's only
	// keys >= span.
	r0 := d.Replicas[0].Service.(*BTreeService)
	r1 := d.Replicas[1].Service.(*BTreeService)
	if n := r0.Tree.Count(span, 2*span); n != 0 {
		t.Fatalf("partition-0 replica holds %d keys of partition 1", n)
	}
	if n := r1.Tree.Count(0, span-1); n != 0 {
		t.Fatalf("partition-1 replica holds %d keys of partition 0", n)
	}
	if d.Replicas[0].ExecutedCmds == 0 || d.Replicas[1].ExecutedCmds == 0 {
		t.Fatal("a partition executed nothing")
	}
}

func TestPartitioningImprovesQueryThroughput(t *testing.T) {
	run := func(parts int) float64 {
		d := Deploy(DeployConfig{
			Clients:          24,
			Replicas:         2,
			Partitions:       parts,
			KeysPerPartition: 50_000,
			Workload: func(int) Workload {
				if parts > 1 {
					return CrossPartitionWorkload{
						Partitions: parts, PartitionSpan: 50_000, Span: 1000, CrossPct: 0,
					}
				}
				return QueryWorkload{KeySpace: 50_000, Span: 1000}
			},
		}, lan.DefaultConfig(), 7)
		tput, _ := d.Measure(300*time.Millisecond, time.Second)
		return tput
	}
	smr, twoP := run(1), run(2)
	t.Logf("query throughput: SMR %.0f, 2 partitions %.0f req/s", smr, twoP)
	if twoP < smr*1.3 {
		t.Fatalf("2 partitions (%.0f) did not outscale SMR (%.0f)", twoP, smr)
	}
}

// TestSpeculativeRollback drives the rollback path directly: execute two
// instances speculatively in one order, confirm them in the other.
func TestSpeculativeRollback(t *testing.T) {
	l := lan.New(lan.DefaultConfig(), 1)
	svc := NewBTreeService(0, 0)
	rep := &Replica{
		Agent:       &ringpaxos.MAgent{Cfg: ringpaxos.MConfig{Ring: []proto.NodeID{99}, Speculative: true}},
		Service:     svc,
		Speculative: true,
		GroupSize:   1,
	}
	l.AddNode(0, rep)
	l.AddNode(5, &proto.HandlerFunc{}) // client stub to absorb replies
	l.Start()

	mk := func(id int64, cs []Command) core.Value {
		for i := range cs {
			cs[i].Client = 5
			cs[i].Seq = id
		}
		return core.Value{ID: core.ValueID(id), Bytes: RequestBytes, Payload: cs}
	}
	// Speculative order: inst 1 inserts (1,10); inst 2 deletes key 1.
	rep.Agent.SpecDeliver(1, mk(1, []Command{{Op: OpInsert, Key: 1, Value: 10}}))
	rep.Agent.SpecDeliver(2, mk(2, []Command{{Op: OpDelete, Key: 1}}))
	l.Run(10 * time.Millisecond)
	if _, ok := svc.Tree.Get(1); ok {
		t.Fatal("speculative state wrong before confirmation")
	}
	// Confirmed order is 2 then 1: delete first (no-op), insert second.
	rep.Agent.Confirm(2)
	rep.Agent.Confirm(1)
	l.Run(10 * time.Millisecond)
	if rep.Rollbacks == 0 {
		t.Fatal("rollback not triggered")
	}
	v, ok := svc.Tree.Get(1)
	if !ok || v != 10 {
		t.Fatalf("state after rollback: Get(1)=%d,%v; want 10,true", v, ok)
	}
}

func TestReplyBytes(t *testing.T) {
	if replyBytes([]Command{{Op: OpQuery}}) != QueryReplyBytes {
		t.Fatal("query reply size")
	}
	if replyBytes([]Command{{Op: OpInsert}, {Op: OpDelete}}) != UpdateReplyBytes {
		t.Fatal("update reply size")
	}
}
