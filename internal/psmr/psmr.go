// Package psmr implements Parallel State-Machine Replication (Chapter 6)
// and the execution models it is compared against in §6.2/§6.5:
//
//   - Sequential SMR: one ordering stream, single-threaded replicas.
//   - Pipelined SMR: one ordering stream; protocol handling and execution
//     run in different threads (cores), but execution stays sequential.
//   - SDPE (sequential delivery–parallel execution, e.g. CBASE): one
//     ordering stream; a scheduler thread tracks command dependencies and
//     dispatches independent commands to parallel workers — the scheduler
//     is the serial bottleneck.
//   - P-SMR: one Multi-Ring Paxos ring per worker plus a synchronization
//     ring every worker subscribes to. Independent commands are multicast
//     to a single worker's ring and execute concurrently with no replica-
//     side coordination; dependent commands go to the synchronization ring,
//     where workers rendezvous at a barrier and one of them executes
//     (Figure 6.2's concurrent and sequential execution modes).
//
// The replicated service is a key-value store whose keys are partitioned
// into one class per worker; a command's classes determine independence.
package psmr

import (
	"time"

	"repro/internal/proto"
)

// Mode selects the replication/execution architecture.
type Mode int

// Execution models of §6.2.
const (
	Sequential Mode = iota
	Pipelined
	SDPE
	PSMR
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Sequential:
		return "sequential SMR"
	case Pipelined:
		return "pipelined SMR"
	case SDPE:
		return "SDPE"
	case PSMR:
		return "P-SMR"
	default:
		return "unknown"
	}
}

// Command is one key-value request. Classes lists the worker classes whose
// state it touches: one class means independent, several mean dependent.
type Command struct {
	Classes []int
	Put     bool
	Keys    []int64
	Value   int64
	Client  int64
	Seq     int64
}

// msgReply answers the client. Replies are pooled pointers: the replica is
// the producer, the addressed client the single consumer that recycles.
type msgReply struct {
	Client int64
	Seq    int64
}

// Size implements proto.Message.
func (m msgReply) Size() int { return 64 }

var replyPool proto.MsgPool[msgReply]

// KVStore is the deterministic service: an in-memory map whose commands
// cost OpCost of CPU each.
type KVStore struct {
	data   map[int64]int64
	OpCost time.Duration
}

// NewKVStore returns an empty store with the given per-command cost.
func NewKVStore(opCost time.Duration) *KVStore {
	return &KVStore{data: make(map[int64]int64), OpCost: opCost}
}

// Execute applies c.
func (s *KVStore) Execute(c Command) {
	for _, k := range c.Keys {
		if c.Put {
			s.data[k] = c.Value
		} else {
			_ = s.data[k]
		}
	}
}

// Get reads a key directly (for tests).
func (s *KVStore) Get(k int64) (int64, bool) {
	v, ok := s.data[k]
	return v, ok
}

// Len returns the number of stored keys.
func (s *KVStore) Len() int { return len(s.data) }
