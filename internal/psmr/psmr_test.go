package psmr

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
)

func measure(t testing.TB, cfg DeployConfig, seed int64) (float64, time.Duration) {
	if cfg.Clients == 0 {
		cfg.Clients = 12
	}
	d := Deploy(cfg, lan.DefaultConfig(), seed)
	tput, lat := d.Measure(300*time.Millisecond, time.Second)
	if tput == 0 {
		t.Fatalf("%v: no completed requests", cfg.Mode)
	}
	return tput, lat
}

func TestAllModesServeRequests(t *testing.T) {
	for _, mode := range []Mode{Sequential, Pipelined, SDPE, PSMR} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			tput, lat := measure(t, DeployConfig{Mode: mode, Workers: 2, DependentPct: 10}, 1)
			t.Logf("%v: %.0f req/s, %v", mode, tput, lat)
		})
	}
}

func TestPSMRConvergenceAcrossReplicas(t *testing.T) {
	d := Deploy(DeployConfig{Mode: PSMR, Workers: 3, Replicas: 2, Clients: 8, DependentPct: 20}, lan.DefaultConfig(), 2)
	d.Run(2 * time.Second)
	// Freeze clients and drain.
	for i := 0; i < d.Cfg.Clients; i++ {
		d.LAN.Node(proto.NodeID(i + 1)).SetDown(true)
	}
	d.Run(2 * time.Second)
	a, b := d.Replicas[0].Store, d.Replicas[1].Store
	if a.Len() != b.Len() {
		t.Fatalf("store sizes diverge: %d vs %d", a.Len(), b.Len())
	}
	for k, v := range a.data {
		if bv, ok := b.Get(k); !ok || bv != v {
			t.Fatalf("key %d: %d vs %d (%v)", k, v, bv, ok)
		}
	}
	if d.Replicas[0].ExecutedCmds == 0 {
		t.Fatal("nothing executed")
	}
}

func TestPSMRIndependentCommandsScale(t *testing.T) {
	// Figure 6.3/6.6 shape: with a 100%-independent workload, P-SMR
	// throughput grows with workers while sequential SMR stays flat.
	seq1, _ := measure(t, DeployConfig{Mode: Sequential, Workers: 1, Clients: 160}, 3)
	p1, _ := measure(t, DeployConfig{Mode: PSMR, Workers: 1, Clients: 160}, 3)
	p4, _ := measure(t, DeployConfig{Mode: PSMR, Workers: 4, Clients: 160}, 3)
	t.Logf("sequential=%.0f psmr(1)=%.0f psmr(4)=%.0f req/s", seq1, p1, p4)
	if p4 < 2*seq1 {
		t.Fatalf("P-SMR with 4 workers (%.0f) should far exceed sequential (%.0f)", p4, seq1)
	}
	if p4 < 1.8*p1 {
		t.Fatalf("P-SMR did not scale with workers: %.0f -> %.0f", p1, p4)
	}
}

func TestPSMRDependentCommandsNoWorseThanSequentialShape(t *testing.T) {
	// Figure 6.4 shape: with 100% dependent commands P-SMR degrades to
	// (roughly) sequential execution — barriers serialize everything.
	p, _ := measure(t, DeployConfig{Mode: PSMR, Workers: 4, DependentPct: 100, Clients: 12}, 4)
	s, _ := measure(t, DeployConfig{Mode: Sequential, Workers: 4, DependentPct: 100, Clients: 12}, 4)
	t.Logf("100%% dependent: psmr=%.0f sequential=%.0f req/s", p, s)
	if p > 2*s {
		t.Fatalf("P-SMR on dependent commands (%.0f) should not beat sequential (%.0f) by 2x", p, s)
	}
	if p < s/4 {
		t.Fatalf("P-SMR on dependent commands collapsed: %.0f vs %.0f", p, s)
	}
}

func TestSDPESchedulerBottleneck(t *testing.T) {
	// §6.2.4: SDPE parallelizes execution but its serial scheduler caps
	// scalability below P-SMR on independent workloads.
	sdpe, _ := measure(t, DeployConfig{Mode: SDPE, Workers: 4, Clients: 320}, 5)
	psmr, _ := measure(t, DeployConfig{Mode: PSMR, Workers: 4, Clients: 320}, 5)
	t.Logf("independent: sdpe=%.0f psmr=%.0f req/s", sdpe, psmr)
	if psmr <= sdpe {
		t.Fatalf("P-SMR (%.0f) should outperform SDPE (%.0f) on independent commands", psmr, sdpe)
	}
}

func TestBarriersCounted(t *testing.T) {
	d := Deploy(DeployConfig{Mode: PSMR, Workers: 2, Clients: 6, DependentPct: 50}, lan.DefaultConfig(), 6)
	d.Run(time.Second)
	if d.Replicas[0].BarrierWaits == 0 {
		t.Fatal("dependent workload produced no barrier waits")
	}
}

func TestWorkloadClassesWellFormed(t *testing.T) {
	w := &Workload{Workers: 4, DependentPct: 30}
	d := Deploy(DeployConfig{Mode: Sequential, Workers: 1, Clients: 1}, lan.DefaultConfig(), 7)
	r := d.LAN.Sim.Rand()
	dep, ind := 0, 0
	for i := 0; i < 1000; i++ {
		c := w.Next(r)
		switch len(c.Classes) {
		case 1:
			ind++
			if c.Classes[0] < 0 || c.Classes[0] >= 4 {
				t.Fatalf("class out of range: %d", c.Classes[0])
			}
		case 4:
			dep++
		default:
			t.Fatalf("unexpected class count %d", len(c.Classes))
		}
	}
	if dep < 200 || dep > 400 {
		t.Fatalf("dependent fraction %d/1000, want ~300", dep)
	}
	if fmt.Sprint(PSMR) != "P-SMR" {
		t.Fatal("mode string")
	}
}
