package psmr

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/multiring"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

const (
	requestBytes = 128
	acceptorBase = 1000
	replicaBase  = 2000
)

// Workload generates client commands for the §6.5 experiments.
type Workload struct {
	// Workers is the number of classes.
	Workers int
	// DependentPct is the percentage of commands that touch every class
	// (executed in sequential mode by P-SMR).
	DependentPct int
	// KeysPerClass is each class's key range width.
	KeysPerClass int64
	// Zipf skews class popularity when > 1 (Figure 6.7); 0 = uniform.
	Zipf float64
	zipf *rand.Zipf
}

// Next returns one command.
func (w *Workload) Next(r *rand.Rand) Command {
	if w.KeysPerClass == 0 {
		w.KeysPerClass = 1 << 16
	}
	if r.Intn(100) < w.DependentPct {
		classes := make([]int, w.Workers)
		keys := make([]int64, w.Workers)
		for i := 0; i < w.Workers; i++ {
			classes[i] = i
			keys[i] = int64(i)*w.KeysPerClass + r.Int63n(w.KeysPerClass)
		}
		return Command{Classes: classes, Keys: keys, Put: true, Value: r.Int63()}
	}
	var cl int
	if w.Zipf > 1 {
		if w.zipf == nil {
			w.zipf = rand.NewZipf(r, w.Zipf, 1, uint64(w.Workers-1))
		}
		cl = int(w.zipf.Uint64())
	} else {
		cl = r.Intn(w.Workers)
	}
	k := int64(cl)*w.KeysPerClass + r.Int63n(w.KeysPerClass)
	return Command{Classes: []int{cl}, Keys: []int64{k}, Put: r.Intn(2) == 0, Value: r.Int63()}
}

// Client is a closed-loop P-SMR client: it maps each command to the proper
// ring (its class's ring, or the synchronization ring when dependent) and
// waits for the reply before issuing the next request.
type Client struct {
	ID       int64
	Workload *Workload
	// Submit routes a command's value to a ring; deployments wire it.
	Submit func(ring int, v core.Value)
	// Rings is the number of worker rings (the sync ring is ring Rings).
	Rings int

	env     proto.Env
	seq     int64
	started time.Duration

	// Completed counts finished requests; LatencySum their response times.
	Completed  int64
	LatencySum time.Duration
}

var _ proto.Handler = (*Client)(nil)

// Start implements proto.Handler.
func (c *Client) Start(env proto.Env) {
	c.env = env
	env.After(time.Duration(env.Rand().Intn(1000))*time.Microsecond, c.issue)
}

func (c *Client) issue() {
	cmd := c.Workload.Next(c.env.Rand())
	c.seq++
	cmd.Client = c.ID
	cmd.Seq = c.seq
	c.started = c.env.Now()
	ring := 0
	if c.Rings > 0 {
		if len(cmd.Classes) > 1 {
			ring = c.Rings // synchronization ring
		} else {
			ring = cmd.Classes[0]
		}
	}
	c.Submit(ring, core.Value{
		ID:      core.ValueID(c.ID<<32 | c.seq&0xffffffff),
		Bytes:   requestBytes,
		Payload: cmd,
	})
}

// Receive implements proto.Handler. The client is the reply's single
// consumer, so the envelope goes back to the pool either way.
func (c *Client) Receive(_ proto.NodeID, m proto.Message) {
	rep, ok := m.(*msgReply)
	if !ok {
		return
	}
	match := rep.Client == c.ID && rep.Seq == c.seq
	replyPool.Put(rep)
	if !match {
		return
	}
	c.Completed++
	c.LatencySum += c.env.Now() - c.started
	c.issue()
}

// DeployConfig describes a §6.5 experiment.
type DeployConfig struct {
	Mode     Mode
	Workers  int
	Replicas int
	Clients  int
	// OpCost is the per-command execution cost.
	OpCost time.Duration
	// DependentPct and Zipf parameterize the workload.
	DependentPct int
	Zipf         float64
	// GCInterval overrides the ordering rings' learner-version garbage
	// collection interval (§3.3.7); zero keeps the M-Ring default, so the
	// pinned figure reproductions are untouched. Negative disables GC.
	GCInterval time.Duration
	// Trace, when non-nil, supplies a delivery-equivalence trace for
	// replica i's learner agent on ring r (r is always 0 in the
	// single-ring modes). The bench harness wires it to pin per-learner
	// delivered command sequences.
	Trace func(replica, ring int) *core.DelivTrace
	// Par requests parallel-within-experiment execution with this many
	// logical processes (conservative-lookahead PDES; see lan.Partition).
	// Ordering rings spread over LPs 1..Par-1; replicas and clients share
	// LP 0. Results are byte-identical to sequential; <= 1 disables.
	Par int
}

// Deployment is a wired P-SMR (or baseline) cluster.
type Deployment struct {
	LAN      *lan.LAN
	Clients  []*Client
	Replicas []*Replica
	Cfg      DeployConfig
}

// Deploy builds the cluster for one execution model.
func Deploy(cfg DeployConfig, lc lan.Config, seed int64) *Deployment {
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.OpCost == 0 {
		cfg.OpCost = 20 * time.Microsecond
	}
	d := &Deployment{LAN: lan.New(lc, seed), Cfg: cfg}
	if cfg.Mode == PSMR {
		d.deployMultiRing()
	} else {
		d.deploySingleRing()
	}
	if cfg.Par > 1 {
		d.LAN.Partition(cfg.Par, d.lpOf)
	}
	d.LAN.Start()
	return d
}

// lpOf assigns nodes to logical processes for partitioned runs: each
// ordering ring's acceptors form (round-robin) an LP of their own — rings
// are the near-independent components the paper's design isolates — while
// replicas, clients and the mergers they host stay together on LP 0.
func (d *Deployment) lpOf(id proto.NodeID) int {
	if id < acceptorBase || id >= replicaBase {
		return 0
	}
	if d.Cfg.Mode != PSMR {
		return 1 // one ring: all acceptors in LP 1
	}
	r := int(id-acceptorBase) / 10
	return 1 + r%(d.Cfg.Par-1)
}

// newReplica builds the execution engine for one replica index.
func (d *Deployment) newReplica(i int) *Replica {
	cfg := d.Cfg
	return &Replica{
		Mode:      cfg.Mode,
		Workers:   cfg.Workers,
		Store:     NewKVStore(cfg.OpCost),
		Index:     i,
		GroupSize: cfg.Replicas,
	}
}

// deploySingleRing wires Sequential, Pipelined and SDPE: one M-Ring Paxos
// instance carries every command in a single total order.
func (d *Deployment) deploySingleRing() {
	cfg := d.Cfg
	// Single-ring replicas consume each value synchronously in OnValue, so
	// batch arrays can recycle; the multi-ring deployment must not (its
	// mergers buffer batches unboundedly when a ring outruns λ).
	mcfg := ringpaxos.MConfig{
		Ring:           []proto.NodeID{acceptorBase, acceptorBase + 1},
		Group:          500,
		RecycleBatches: true,
		GCInterval:     cfg.GCInterval,
	}
	for i := 0; i < cfg.Replicas; i++ {
		mcfg.Learners = append(mcfg.Learners, proto.NodeID(replicaBase+i))
	}
	for _, id := range mcfg.Ring {
		d.LAN.AddNode(id, &ringpaxos.MAgent{Cfg: mcfg})
		d.LAN.Subscribe(mcfg.Group, id)
	}
	for i := 0; i < cfg.Replicas; i++ {
		id := proto.NodeID(replicaBase + i)
		rep := d.newReplica(i)
		agent := &ringpaxos.MAgent{Cfg: mcfg}
		agent.Deliver = func(_ int64, v core.Value) { rep.OnValue(0, v) }
		if cfg.Trace != nil {
			agent.Trace = cfg.Trace(i, 0)
		}
		d.LAN.AddNodeWithConfig(id, proto.Multi(agent, rep),
			lan.NodeConfig{Cores: cfg.Workers + 1})
		d.LAN.Subscribe(mcfg.Group, id)
		d.Replicas = append(d.Replicas, rep)
	}
	for i := 0; i < cfg.Clients; i++ {
		id := proto.NodeID(i + 1)
		prop := &ringpaxos.MAgent{Cfg: mcfg}
		cl := &Client{
			ID:       int64(id),
			Workload: &Workload{Workers: cfg.Workers, DependentPct: cfg.DependentPct, Zipf: cfg.Zipf},
			Submit:   func(_ int, v core.Value) { prop.Propose(v) },
		}
		d.LAN.AddNode(id, proto.Multi(prop, cl))
		d.Clients = append(d.Clients, cl)
	}
}

// deployMultiRing wires P-SMR: one ring per worker plus the synchronization
// ring; every replica worker merges its own ring with the sync ring.
func (d *Deployment) deployMultiRing() {
	cfg := d.Cfg
	nRings := cfg.Workers + 1 // ring cfg.Workers is the sync ring
	ringCfgs := make([]ringpaxos.MConfig, nRings)
	for r := 0; r < nRings; r++ {
		ringCfgs[r] = ringpaxos.MConfig{
			Ring: []proto.NodeID{
				proto.NodeID(acceptorBase + r*10),
				proto.NodeID(acceptorBase + r*10 + 1),
			},
			Group:      proto.GroupID(500 + r),
			GCInterval: cfg.GCInterval,
		}
		for i := 0; i < cfg.Replicas; i++ {
			ringCfgs[r].Learners = append(ringCfgs[r].Learners, proto.NodeID(replicaBase+i))
		}
	}
	// Acceptor nodes, one multiring.Node each, with a pacer on coordinators.
	for r := 0; r < nRings; r++ {
		for j := 0; j < 2; j++ {
			id := proto.NodeID(acceptorBase + r*10 + j)
			n := multiring.NewNode()
			a := &ringpaxos.MAgent{Cfg: ringCfgs[r]}
			n.AddRing(r, a)
			if j == 1 { // coordinator (last ring position)
				n.AddPacer(&multiring.Pacer{Agent: a, Lambda: 20000, Delta: 500 * time.Microsecond})
			}
			d.LAN.AddNode(id, n)
			d.LAN.Subscribe(ringCfgs[r].Group, id)
		}
	}
	// Replicas: learner agents for every ring; per-worker mergers.
	for i := 0; i < cfg.Replicas; i++ {
		id := proto.NodeID(replicaBase + i)
		rep := d.newReplica(i)
		node := multiring.NewNode()
		agents := make([]*ringpaxos.MAgent, nRings)
		for r := 0; r < nRings; r++ {
			agents[r] = &ringpaxos.MAgent{Cfg: ringCfgs[r]}
			if cfg.Trace != nil {
				agents[r].Trace = cfg.Trace(i, r)
			}
			node.AddRing(r, agents[r])
			d.LAN.Subscribe(ringCfgs[r].Group, id)
		}
		// Wire merges: worker w merges {ring w, sync ring}; the sync ring's
		// decisions fan out to every worker's merger.
		starter := &proto.HandlerFunc{OnStart: func(env proto.Env) {
			rep.Start(env)
			mergers := make([]*multiring.Merger, cfg.Workers)
			for w := 0; w < cfg.Workers; w++ {
				mergers[w] = rep.mergerFor(w)
				mergers[w].Start(env)
			}
			for w := 0; w < cfg.Workers; w++ {
				w := w
				agents[w].DeliverBatch = func(_ int64, b core.Batch) {
					mergers[w].Push(w, b)
				}
			}
			agents[cfg.Workers].DeliverBatch = func(_ int64, b core.Batch) {
				for w := 0; w < cfg.Workers; w++ {
					mergers[w].Push(cfg.Workers, b)
				}
			}
		}}
		d.LAN.AddNodeWithConfig(id, proto.Multi(starter, node),
			lan.NodeConfig{Cores: cfg.Workers + 1})
		d.Replicas = append(d.Replicas, rep)
	}
	// Clients with one proposer agent per ring.
	for i := 0; i < cfg.Clients; i++ {
		id := proto.NodeID(i + 1)
		node := multiring.NewNode()
		props := make([]*ringpaxos.MAgent, nRings)
		for r := 0; r < nRings; r++ {
			props[r] = &ringpaxos.MAgent{Cfg: ringCfgs[r]}
			node.AddRing(r, props[r])
		}
		cl := &Client{
			ID:       int64(id),
			Workload: &Workload{Workers: cfg.Workers, DependentPct: cfg.DependentPct, Zipf: cfg.Zipf},
			Rings:    cfg.Workers,
			Submit:   func(r int, v core.Value) { props[r].Propose(v) },
		}
		d.LAN.AddNode(id, proto.Multi(node, cl))
		d.Clients = append(d.Clients, cl)
	}
}

// Run advances the deployment.
func (d *Deployment) Run(dur time.Duration) { d.LAN.Run(dur) }

// Measure runs warmup+dur and returns request throughput and mean latency.
func (d *Deployment) Measure(warmup, dur time.Duration) (float64, time.Duration) {
	d.Run(warmup)
	var c0 int64
	var l0 time.Duration
	for _, c := range d.Clients {
		c0 += c.Completed
		l0 += c.LatencySum
	}
	d.Run(dur)
	var c1 int64
	var l1 time.Duration
	for _, c := range d.Clients {
		c1 += c.Completed
		l1 += c.LatencySum
	}
	n := c1 - c0
	if n == 0 {
		return 0, 0
	}
	return float64(n) / dur.Seconds(), (l1 - l0) / time.Duration(n)
}
