package psmr

import (
	"time"

	"repro/internal/core"
	"repro/internal/multiring"
	"repro/internal/proto"
)

// Replica executes ordered commands under one of the four execution models.
// Cores: core 0 handles protocol messages and (for SDPE) the scheduler;
// workers run on cores 1..Workers.
type Replica struct {
	// Mode is the execution model.
	Mode Mode
	// Workers is the execution parallelism (ignored by Sequential and
	// Pipelined, which always execute on one thread).
	Workers int
	// Store is the service state (shared by workers; the execution models
	// guarantee conflict-free concurrent access).
	Store *KVStore
	// SchedCost is SDPE's per-command scheduler overhead on core 0.
	SchedCost time.Duration
	// Index/GroupSize pick which replica answers which client.
	Index     int
	GroupSize int
	// ClientNode maps client ids to nodes; identity by default.
	ClientNode func(client int64) proto.NodeID

	env proto.Env

	// ExecutedCmds counts executed commands; BarrierWaits counts worker
	// stalls at dependent-command barriers (P-SMR).
	ExecutedCmds int64
	BarrierWaits int64

	// P-SMR per-worker streams.
	workers []*workerState
	// SDPE scheduler state: per class, FIFO of pending commands.
	classQ  map[int][]*sdpeCmd
	running int

	// Sequential/Pipelined serial lane bookkeeping.
	serialBusy  bool
	serialQueue []Command
}

// workerState is one P-SMR worker's merged stream and barrier status.
type workerState struct {
	queue   []Command
	busy    bool
	atSync  bool // parked at the head sync command
	syncSeq int64
	syncCli int64
}

// sdpeCmd is one scheduled SDPE command.
type sdpeCmd struct {
	cmd     Command
	started bool
}

// OnValue feeds one ordered value into the replica's execution engine. The
// deployment wires it to the ordering layer's delivery callbacks: for
// Sequential/Pipelined/SDPE a single totally ordered stream (worker = 0);
// for P-SMR each worker's deterministically merged stream (worker = w).
func (r *Replica) OnValue(worker int, v core.Value) {
	c, ok := v.Payload.(Command)
	if !ok {
		return
	}
	switch r.Mode {
	case Sequential, Pipelined:
		r.serialQueue = append(r.serialQueue, c)
		r.pumpSerial()
	case SDPE:
		// The scheduler examines every command serially on core 0 before
		// workers may run it — SDPE's structural bottleneck (§6.2.4).
		r.env.Work(r.SchedCost, func() { r.sdpeAdmit(c) })
	case PSMR:
		w := r.workers[worker]
		w.queue = append(w.queue, c)
		r.pumpWorker(worker)
	}
}

var _ proto.Handler = (*Replica)(nil)

// Receive implements proto.Handler; the replica consumes ordered values
// through OnValue, not network messages.
func (r *Replica) Receive(proto.NodeID, proto.Message) {}

// Start binds the replica to its node.
func (r *Replica) Start(env proto.Env) {
	r.env = env
	if r.Workers == 0 {
		r.Workers = 1
	}
	if r.GroupSize == 0 {
		r.GroupSize = 1
	}
	if r.ClientNode == nil {
		r.ClientNode = func(c int64) proto.NodeID { return proto.NodeID(c) }
	}
	if r.SchedCost == 0 {
		// Dependency analysis per command at the scheduler thread; CBASE
		// reports it roughly on par with cheap command execution (§6.2.4).
		r.SchedCost = 12 * time.Microsecond
	}
	r.workers = make([]*workerState, r.Workers)
	for i := range r.workers {
		r.workers[i] = &workerState{}
	}
	r.classQ = make(map[int][]*sdpeCmd)
}

func (r *Replica) responsible(c Command) bool {
	return int(c.Client)%r.GroupSize == r.Index
}

func (r *Replica) reply(c Command) {
	if r.responsible(c) {
		r.env.Send(r.ClientNode(c.Client), msgReply{Client: c.Client, Seq: c.Seq})
	}
}

// cost returns a command's modeled execution time.
func (r *Replica) cost(c Command) time.Duration { return r.Store.OpCost }

// --- Sequential / Pipelined ---

func (r *Replica) pumpSerial() {
	if r.serialBusy || len(r.serialQueue) == 0 {
		return
	}
	c := r.serialQueue[0]
	r.serialQueue = r.serialQueue[1:]
	r.serialBusy = true
	r.Store.Execute(c)
	core := 0
	if r.Mode == Pipelined {
		core = 1 // execution thread separate from protocol thread (§6.2.3)
	}
	proto.WorkOn(r.env, core, r.cost(c), func() {
		r.ExecutedCmds++
		r.reply(c)
		r.serialBusy = false
		r.pumpSerial()
	})
}

// --- SDPE (§6.2.4) ---

// sdpeAdmit enqueues c on every class it touches; it may start when it
// heads all of them (conflict-serializable in delivery order).
func (r *Replica) sdpeAdmit(c Command) {
	sc := &sdpeCmd{cmd: c}
	for _, cl := range c.Classes {
		r.classQ[cl] = append(r.classQ[cl], sc)
	}
	r.sdpeTryStart(sc)
}

func (r *Replica) sdpeTryStart(sc *sdpeCmd) {
	if sc.started {
		return
	}
	for _, cl := range sc.cmd.Classes {
		q := r.classQ[cl]
		if len(q) == 0 || q[0] != sc {
			return
		}
	}
	sc.started = true
	r.Store.Execute(sc.cmd)
	core := 1 + (sc.cmd.Classes[0] % r.Workers)
	proto.WorkOn(r.env, core, r.cost(sc.cmd), func() {
		r.ExecutedCmds++
		r.reply(sc.cmd)
		for _, cl := range sc.cmd.Classes {
			r.classQ[cl] = r.classQ[cl][1:]
		}
		// Newly unblocked heads may start.
		for _, cl := range sc.cmd.Classes {
			if q := r.classQ[cl]; len(q) > 0 {
				r.sdpeTryStart(q[0])
			}
		}
	})
}

// --- P-SMR (§6.3) ---

// pumpWorker advances worker w through its merged stream: independent
// commands execute concurrently on the worker's core; a dependent command
// parks the worker at a barrier until every worker reaches it, then one
// worker executes it while the others wait (Figure 6.2).
func (r *Replica) pumpWorker(wi int) {
	w := r.workers[wi]
	if w.busy || w.atSync || len(w.queue) == 0 {
		return
	}
	c := w.queue[0]
	if len(c.Classes) > 1 {
		w.atSync = true
		w.syncSeq, w.syncCli = c.Seq, c.Client
		r.BarrierWaits++
		r.tryBarrier()
		return
	}
	w.queue = w.queue[1:]
	w.busy = true
	r.Store.Execute(c)
	proto.WorkOn(r.env, 1+wi, r.cost(c), func() {
		r.ExecutedCmds++
		r.reply(c)
		w.busy = false
		r.pumpWorker(wi)
	})
}

// tryBarrier fires when every worker is parked at the same dependent
// command; worker 0's core executes it and all workers resume.
func (r *Replica) tryBarrier() {
	var ref *workerState
	for _, w := range r.workers {
		if !w.atSync || w.busy {
			return
		}
		if ref == nil {
			ref = w
			continue
		}
		if w.syncSeq != ref.syncSeq || w.syncCli != ref.syncCli {
			return
		}
	}
	c := r.workers[0].queue[0]
	r.Store.Execute(c)
	proto.WorkOn(r.env, 1, r.cost(c), func() {
		r.ExecutedCmds++
		r.reply(c)
		for wi, w := range r.workers {
			w.queue = w.queue[1:]
			w.atSync = false
			r.pumpWorker(wi)
		}
	})
}

// mergerFor builds the deterministic merge feeding worker wi: its own ring
// plus the synchronization ring (ring id = Workers).
func (r *Replica) mergerFor(wi int) *multiring.Merger {
	m := multiring.NewMerger([]int{wi, r.Workers}, 1)
	m.Deliver = func(_ int64, v core.Value) { r.OnValue(wi, v) }
	return m
}
