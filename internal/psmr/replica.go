package psmr

import (
	"time"

	"repro/internal/core"
	"repro/internal/multiring"
	"repro/internal/proto"
)

// Replica executes ordered commands under one of the four execution models.
// Cores: core 0 handles protocol messages and (for SDPE) the scheduler;
// workers run on cores 1..Workers.
//
// Execution completions are allocation-free: each lane (the serial lane,
// every P-SMR worker, the barrier, each pooled SDPE command) owns one
// pre-bound completion callback, and the command being executed is parked
// in the lane's state instead of being captured by a closure.
type Replica struct {
	// Mode is the execution model.
	Mode Mode
	// Workers is the execution parallelism (ignored by Sequential and
	// Pipelined, which always execute on one thread).
	Workers int
	// Store is the service state (shared by workers; the execution models
	// guarantee conflict-free concurrent access).
	Store *KVStore
	// SchedCost is SDPE's per-command scheduler overhead on core 0.
	SchedCost time.Duration
	// Index/GroupSize pick which replica answers which client.
	Index     int
	GroupSize int
	// ClientNode maps client ids to nodes; identity by default.
	ClientNode func(client int64) proto.NodeID
	// ExactlyOnce suppresses re-execution of commands whose (client, seq)
	// was already admitted — a retry that won a second consensus instance
	// is answered immediately instead of entering the execution engine.
	// Off by default.
	ExactlyOnce bool

	env proto.Env

	// ExecutedCmds counts executed commands; BarrierWaits counts worker
	// stalls at dependent-command barriers (P-SMR).
	ExecutedCmds int64
	BarrierWaits int64
	// DedupHits counts commands suppressed by the exactly-once table.
	DedupHits int64

	// dedup is the per-client last-admitted-seq table (ExactlyOnce only);
	// admitted counts admissions to serve as its instance axis.
	dedup    *core.DedupTable
	admitted int64

	// P-SMR per-worker streams.
	workers []*workerState
	// SDPE scheduler state: per class, FIFO of pending commands; admitQ
	// holds commands whose scheduler examination is in flight on core 0.
	classQ   map[int]*core.FIFO[*sdpeCmd]
	admitQ   core.FIFO[admission]
	admitID  int64
	sdpeFree []*sdpeCmd

	// Sequential/Pipelined serial lane bookkeeping.
	serialBusy  bool
	serialQueue core.FIFO[Command]
	serialCur   Command

	admitFn      func(int64)
	serialDoneFn func()
	barrierFn    func()
}

// workerState is one P-SMR worker's merged stream and barrier status.
type workerState struct {
	queue   core.FIFO[Command]
	busy    bool
	cur     Command // the independent command executing on this worker
	atSync  bool    // parked at the head sync command
	syncSeq int64
	syncCli int64
	doneFn  func()
}

// sdpeCmd is one scheduled SDPE command. Instances are pooled per replica;
// doneFn is bound to the instance once, so a command's whole schedule →
// execute → finish cycle allocates nothing after warm-up.
type sdpeCmd struct {
	cmd     Command
	started bool
	doneFn  func()
}

// admission is a command awaiting its SDPE scheduler examination.
type admission struct {
	id  int64
	cmd Command
}

// OnValue feeds one ordered value into the replica's execution engine. The
// deployment wires it to the ordering layer's delivery callbacks: for
// Sequential/Pipelined/SDPE a single totally ordered stream (worker = 0);
// for P-SMR each worker's deterministically merged stream (worker = w).
func (r *Replica) OnValue(worker int, v core.Value) {
	c, ok := v.Payload.(Command)
	if !ok {
		return
	}
	if r.ExactlyOnce {
		// Dedup is decided at admission, before any execution model sees
		// the command, so the suppression is identical across replicas. In
		// P-SMR each worker's merged stream carries its own copy of every
		// dependent command (the barrier needs all of them), so each
		// stream deduplicates independently; a suppressed dependent
		// command (present in every stream) is answered by worker 0 only.
		key := c.Client
		if r.Mode == PSMR {
			key = c.Client<<8 | int64(worker)
		}
		r.admitted++
		if !r.dedup.Commit(key, c.Seq, r.admitted) {
			r.DedupHits++
			if r.Mode != PSMR || worker == 0 || len(c.Classes) <= 1 {
				r.reply(c)
			}
			return
		}
	}
	switch r.Mode {
	case Sequential, Pipelined:
		r.serialQueue.Push(c)
		r.pumpSerial()
	case SDPE:
		// The scheduler examines every command serially on core 0 before
		// workers may run it — SDPE's structural bottleneck (§6.2.4).
		// Scheduler completions on core 0 are FIFO and carry a monotonic
		// id, so the admit queue pairs each completion with its command
		// without a closure and survives completions dropped while the
		// node is down.
		r.admitID++
		r.admitQ.Push(admission{id: r.admitID, cmd: c})
		proto.WorkArg(r.env, r.SchedCost, r.admitFn, r.admitID)
	case PSMR:
		r.workers[worker].queue.Push(c)
		r.pumpWorker(worker)
	}
}

var _ proto.Handler = (*Replica)(nil)

// Receive implements proto.Handler; the replica consumes ordered values
// through OnValue, not network messages.
func (r *Replica) Receive(proto.NodeID, proto.Message) {}

// Start binds the replica to its node.
func (r *Replica) Start(env proto.Env) {
	r.env = env
	if r.Workers == 0 {
		r.Workers = 1
	}
	if r.GroupSize == 0 {
		r.GroupSize = 1
	}
	if r.ClientNode == nil {
		r.ClientNode = func(c int64) proto.NodeID { return proto.NodeID(c) }
	}
	if r.SchedCost == 0 {
		// Dependency analysis per command at the scheduler thread; CBASE
		// reports it roughly on par with cheap command execution (§6.2.4).
		r.SchedCost = 12 * time.Microsecond
	}
	r.workers = make([]*workerState, r.Workers)
	for i := range r.workers {
		w := &workerState{}
		wi := i
		w.doneFn = func() { r.workerDone(wi) }
		r.workers[i] = w
	}
	if r.ExactlyOnce {
		r.dedup = core.NewDedupTable()
	}
	r.classQ = make(map[int]*core.FIFO[*sdpeCmd])
	r.admitFn = r.completeAdmit
	r.serialDoneFn = r.serialDone
	r.barrierFn = r.barrierDone
}

func (r *Replica) responsible(c Command) bool {
	return int(c.Client)%r.GroupSize == r.Index
}

func (r *Replica) reply(c Command) {
	if r.responsible(c) {
		m := replyPool.Get()
		m.Client, m.Seq = c.Client, c.Seq
		r.env.Send(r.ClientNode(c.Client), m)
	}
}

// cost returns a command's modeled execution time.
func (r *Replica) cost(c Command) time.Duration { return r.Store.OpCost }

// --- Sequential / Pipelined ---

func (r *Replica) pumpSerial() {
	if r.serialBusy || r.serialQueue.Len() == 0 {
		return
	}
	c := r.serialQueue.Pop()
	r.serialCur = c
	r.serialBusy = true
	r.Store.Execute(c)
	core := 0
	if r.Mode == Pipelined {
		core = 1 // execution thread separate from protocol thread (§6.2.3)
	}
	proto.WorkOn(r.env, core, r.cost(c), r.serialDoneFn)
}

func (r *Replica) serialDone() {
	r.ExecutedCmds++
	r.reply(r.serialCur)
	r.serialCur = Command{}
	r.serialBusy = false
	r.pumpSerial()
}

// --- SDPE (§6.2.4) ---

// getSdpeCmd takes a command record off the free list; its completion
// callback was bound at first allocation and survives recycling.
func (r *Replica) getSdpeCmd() *sdpeCmd {
	if n := len(r.sdpeFree); n > 0 {
		sc := r.sdpeFree[n-1]
		r.sdpeFree[n-1] = nil
		r.sdpeFree = r.sdpeFree[:n-1]
		return sc
	}
	sc := &sdpeCmd{}
	sc.doneFn = func() { r.sdpeFinish(sc) }
	return sc
}

func (r *Replica) classQueue(cl int) *core.FIFO[*sdpeCmd] {
	q := r.classQ[cl]
	if q == nil {
		q = &core.FIFO[*sdpeCmd]{}
		r.classQ[cl] = q
	}
	return q
}

// completeAdmit is the scheduler-examination completion: it retires
// admissions orphaned by dropped completions, then admits the one the
// completion belongs to.
func (r *Replica) completeAdmit(id int64) {
	for r.admitQ.Len() > 0 {
		a := r.admitQ.Pop()
		if a.id == id {
			r.sdpeAdmit(a.cmd)
			return
		}
	}
}

// sdpeAdmit enqueues c on every class it touches; it may start when it
// heads all of them (conflict-serializable in delivery order).
func (r *Replica) sdpeAdmit(c Command) {
	sc := r.getSdpeCmd()
	sc.cmd = c
	sc.started = false
	for _, cl := range c.Classes {
		r.classQueue(cl).Push(sc)
	}
	r.sdpeTryStart(sc)
}

func (r *Replica) sdpeTryStart(sc *sdpeCmd) {
	if sc.started {
		return
	}
	for _, cl := range sc.cmd.Classes {
		q := r.classQ[cl]
		if q.Len() == 0 || *q.Front() != sc {
			return
		}
	}
	sc.started = true
	r.Store.Execute(sc.cmd)
	core := 1 + (sc.cmd.Classes[0] % r.Workers)
	proto.WorkOn(r.env, core, r.cost(sc.cmd), sc.doneFn)
}

func (r *Replica) sdpeFinish(sc *sdpeCmd) {
	r.ExecutedCmds++
	r.reply(sc.cmd)
	for _, cl := range sc.cmd.Classes {
		r.classQ[cl].Pop()
	}
	// Newly unblocked heads may start.
	for _, cl := range sc.cmd.Classes {
		if q := r.classQ[cl]; q.Len() > 0 {
			r.sdpeTryStart(*q.Front())
		}
	}
	sc.cmd = Command{}
	r.sdpeFree = append(r.sdpeFree, sc)
}

// --- P-SMR (§6.3) ---

// pumpWorker advances worker w through its merged stream: independent
// commands execute concurrently on the worker's core; a dependent command
// parks the worker at a barrier until every worker reaches it, then one
// worker executes it while the others wait (Figure 6.2).
func (r *Replica) pumpWorker(wi int) {
	w := r.workers[wi]
	if w.busy || w.atSync || w.queue.Len() == 0 {
		return
	}
	c := *w.queue.Front()
	if len(c.Classes) > 1 {
		w.atSync = true
		w.syncSeq, w.syncCli = c.Seq, c.Client
		r.BarrierWaits++
		r.tryBarrier()
		return
	}
	w.queue.Pop()
	w.cur = c
	w.busy = true
	r.Store.Execute(c)
	proto.WorkOn(r.env, 1+wi, r.cost(c), w.doneFn)
}

func (r *Replica) workerDone(wi int) {
	w := r.workers[wi]
	r.ExecutedCmds++
	r.reply(w.cur)
	w.cur = Command{}
	w.busy = false
	r.pumpWorker(wi)
}

// tryBarrier fires when every worker is parked at the same dependent
// command; worker 0's core executes it and all workers resume. The command
// stays at every worker's queue head while it executes (workers are all
// parked, so the heads cannot move), which lets the completion re-read it
// instead of capturing it.
func (r *Replica) tryBarrier() {
	var ref *workerState
	for _, w := range r.workers {
		if !w.atSync || w.busy {
			return
		}
		if ref == nil {
			ref = w
			continue
		}
		if w.syncSeq != ref.syncSeq || w.syncCli != ref.syncCli {
			return
		}
	}
	c := *r.workers[0].queue.Front()
	r.Store.Execute(c)
	proto.WorkOn(r.env, 1, r.cost(c), r.barrierFn)
}

func (r *Replica) barrierDone() {
	c := *r.workers[0].queue.Front()
	r.ExecutedCmds++
	r.reply(c)
	for wi, w := range r.workers {
		w.queue.Pop()
		w.atSync = false
		r.pumpWorker(wi)
	}
}

// mergerFor builds the deterministic merge feeding worker wi: its own ring
// plus the synchronization ring (ring id = Workers).
func (r *Replica) mergerFor(wi int) *multiring.Merger {
	m := multiring.NewMerger([]int{wi, r.Workers}, 1)
	m.Deliver = func(_ int64, v core.Value) { r.OnValue(wi, v) }
	return m
}
