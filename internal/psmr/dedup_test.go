package psmr

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// dedupEnv runs Work completions immediately and counts replies.
type dedupEnv struct{ replies int }

func (e *dedupEnv) ID() proto.NodeID   { return 9 }
func (e *dedupEnv) Now() time.Duration { return 0 }
func (e *dedupEnv) Rand() *rand.Rand   { return rand.New(rand.NewSource(1)) }
func (e *dedupEnv) Send(_ proto.NodeID, m proto.Message) {
	if _, ok := m.(*msgReply); ok {
		e.replies++
	}
}
func (e *dedupEnv) SendUDP(proto.NodeID, proto.Message)     {}
func (e *dedupEnv) Multicast(proto.GroupID, proto.Message)  {}
func (e *dedupEnv) After(time.Duration, func()) proto.Timer { return nil }
func (e *dedupEnv) Work(_ time.Duration, fn func())         { fn() }
func (e *dedupEnv) DiskWrite(_ int, fn func())              { fn() }

func value(c Command) core.Value { return core.Value{Payload: c} }

// TestReplicaExactlyOnceSerial: in the serial modes a retried command is
// answered without re-entering the execution engine.
func TestReplicaExactlyOnceSerial(t *testing.T) {
	env := &dedupEnv{}
	r := &Replica{Mode: Sequential, Store: NewKVStore(0), ExactlyOnce: true}
	r.Start(env)
	c := Command{Classes: []int{0}, Put: true, Keys: []int64{1}, Value: 5, Client: 7, Seq: 1}
	r.OnValue(0, value(c))
	r.OnValue(0, value(c)) // retry decided again
	if r.ExecutedCmds != 1 || r.DedupHits != 1 || env.replies != 2 {
		t.Fatalf("executed=%d hits=%d replies=%d, want 1/1/2",
			r.ExecutedCmds, r.DedupHits, env.replies)
	}
}

// TestReplicaExactlyOncePSMRBarrier: a dependent command's copies exist in
// every worker stream (the barrier needs all of them). On retry every
// stream must suppress its copy — keeping the streams aligned — while the
// client is answered exactly once.
func TestReplicaExactlyOncePSMRBarrier(t *testing.T) {
	env := &dedupEnv{}
	r := &Replica{Mode: PSMR, Workers: 2, Store: NewKVStore(0), ExactlyOnce: true}
	r.Start(env)
	dep := Command{Classes: []int{0, 1}, Put: true, Keys: []int64{1}, Value: 5, Client: 7, Seq: 1}
	r.OnValue(0, value(dep))
	r.OnValue(1, value(dep))
	if r.ExecutedCmds != 1 || env.replies != 1 {
		t.Fatalf("barrier broken: executed=%d replies=%d", r.ExecutedCmds, env.replies)
	}
	r.OnValue(0, value(dep)) // retry fans out to both streams again
	r.OnValue(1, value(dep))
	if r.ExecutedCmds != 1 || r.DedupHits != 2 || env.replies != 2 {
		t.Fatalf("retry mishandled: executed=%d hits=%d replies=%d, want 1/2/2",
			r.ExecutedCmds, r.DedupHits, env.replies)
	}
	// An independent retry on a non-zero worker is answered by that worker.
	ind := Command{Classes: []int{1}, Put: true, Keys: []int64{2}, Value: 6, Client: 7, Seq: 2}
	r.OnValue(1, value(ind))
	r.OnValue(1, value(ind))
	if r.ExecutedCmds != 2 || r.DedupHits != 3 || env.replies != 4 {
		t.Fatalf("independent retry mishandled: executed=%d hits=%d replies=%d",
			r.ExecutedCmds, r.DedupHits, env.replies)
	}
	// The engine still makes progress afterwards.
	r.OnValue(0, value(Command{Classes: []int{0}, Put: true, Keys: []int64{3}, Value: 7, Client: 7, Seq: 3}))
	if r.ExecutedCmds != 3 {
		t.Fatalf("engine stalled after suppression: executed=%d", r.ExecutedCmds)
	}
}
