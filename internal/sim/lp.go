// Conservative-lookahead parallel simulation (PDES) on top of the kernel.
//
// An LP (logical process) is an independent event loop with its own clock,
// heap and slab — structurally the Simulator's engine with one addition:
// every scheduled event carries a rank, and the heap order is (fireAt, rank).
// Ranks reproduce the sequential kernel's seq tiebreak exactly: a shared
// counter assigns each scheduling call the position it would have had in the
// sequential run. Calls made outside a window (handler Start, code between
// Run calls) execute single-threaded and draw from the counter directly;
// calls made inside a window are logged and ranked at the next barrier by
// ReplayWindow, which orders every call made anywhere in the cluster during
// the window by (caller instant, caller rank, call order) — precisely the
// order the sequential kernel would have made them in.
//
// Until the barrier ranks it, an in-window event carries a provisional rank:
// the provisional bit plus its log position. Provisional ranks compare above
// every exact rank — correct, because a window-scheduled event's true seq
// exceeds that of everything scheduled before the window — and within one LP
// they compare in log order, which is the LP's own call order. Replacing a
// provisional rank with its exact seq at the barrier therefore never reorders
// a heap: the replacement is monotone.
//
// Par coordinates a set of LPs under conservative time windows. Every
// window, the floor is the minimum next-event time across LPs and every LP
// may execute all events strictly below floor+Horizon without any
// coordination: when the horizon is the minimum cross-LP communication
// latency, an event executing in the window can only cause effects at or
// beyond the window's end, so no LP can receive a message "from the past".
// Cross-LP messages accumulate in substrate-owned outboxes during the
// window and are applied — single-threaded, at their exact replay positions —
// by the Barrier callback between windows.
package sim

import (
	"sync"
	"time"
)

// provisionalBit marks a rank as "assigned this window, not yet replayed";
// the low bits are the scheduling call's position in its LP's window log.
const provisionalBit = uint64(1) << 63

// lpEntry is one LP heap element. The ordering rank lives in the slab (it is
// rewritten at barriers), so the entry is just the firing time and the slot.
type lpEntry struct {
	at  time.Duration
	idx int32
}

// lpSlot is one LP slab cell: the Simulator's slot plus the event's rank.
type lpSlot struct {
	fn   Event
	ev   TypedEvent
	rank uint64 // exact sequential seq, or provisionalBit|logIndex
	gen  uint64 // bumped on free; timers carry the gen they were issued with
	dead bool   // cancelled but not yet swept out of the heap
	next int32  // free-list link, -1 terminated
}

// callRec records one scheduling call made during a window, in LP call
// order. callerRank is exact when the calling event was ranked at an earlier
// barrier (or injected), provisional when the caller was itself scheduled
// this window — then its low bits index this same log, and the referenced
// record is always earlier (an event is scheduled before it executes).
type callRec struct {
	callerAt   time.Duration
	callerRank uint64
	child      int32 // slab slot of the scheduled event; -(x+1) for the x-th external call
	childGen   uint64
}

// LP is one logical process of a partitioned simulation: a self-contained
// event loop over a partition of the model. During a window only the LP's
// own worker touches it; between windows only the coordinator does
// (Inject/NextAt/AdvanceTo/ReplayWindow). That alternation, synchronized by
// Par, is the entire concurrency contract — the LP itself has no locks.
type LP struct {
	now      time.Duration
	curRank  uint64 // rank of the event whose callback is executing
	inWin    bool   // inside RunBefore: log calls instead of ranking directly
	heap     []lpEntry
	slab     []lpSlot
	freeHead int32
	nDead    int
	nSteps   uint64
	dispatch Dispatcher

	gseq  *uint64   // shared rank counter (all LPs of one Par share it)
	log   []callRec // scheduling calls made this window, in call order
	nX    int32     // external (substrate) calls logged this window
	seqOf []uint64  // per-log-entry assigned seq, ReplayWindow scratch
}

// NewLP returns an empty logical process with its own rank counter; LPs run
// together under one Par must share a counter via SetSeqSource.
func NewLP() *LP { return &LP{freeHead: -1, gseq: new(uint64)} }

// SetSeqSource shares the rank counter that makes ranks a single global
// sequence across LPs. Call once, before any scheduling.
func (p *LP) SetSeqSource(c *uint64) { p.gseq = c }

// SetDispatcher installs the typed-event dispatcher, as Simulator.SetDispatcher.
func (p *LP) SetDispatcher(d Dispatcher) { p.dispatch = d }

// Now returns the LP's clock: the instant of the last executed event,
// clamped up by AdvanceTo at run end.
func (p *LP) Now() time.Duration { return p.now }

// Steps reports how many events this LP has executed.
func (p *LP) Steps() uint64 { return p.nSteps }

// Pending reports scheduled events that have neither fired nor been cancelled.
func (p *LP) Pending() int { return len(p.heap) - p.nDead }

// LPTimer cancels one scheduled LP event; semantics match sim.Timer.
// The zero LPTimer is valid and cancels nothing.
type LPTimer struct {
	p   *LP
	idx int32
	gen uint64
}

// Cancel prevents the timer's event from firing; stale handles are no-ops.
func (t LPTimer) Cancel() {
	p := t.p
	if p == nil || int(t.idx) >= len(p.slab) {
		return
	}
	sl := &p.slab[t.idx]
	if sl.gen != t.gen || sl.dead {
		return
	}
	sl.dead = true
	sl.fn = nil
	sl.ev = TypedEvent{}
	p.nDead++
	if p.nDead > 64 && p.nDead*2 > len(p.heap) {
		p.compact()
	}
}

func (p *LP) allocSlot() int32 {
	if p.freeHead >= 0 {
		idx := p.freeHead
		p.freeHead = p.slab[idx].next
		return idx
	}
	if len(p.slab) > maxSlot {
		panic("sim: more than 2^24 concurrently scheduled events in one LP")
	}
	p.slab = append(p.slab, lpSlot{})
	return int32(len(p.slab) - 1)
}

func (p *LP) freeSlot(idx int32) {
	sl := &p.slab[idx]
	sl.gen++
	sl.dead = false
	sl.next = p.freeHead
	p.freeHead = idx
}

// schedule inserts a filled slot, ranking it like the sequential kernel:
// directly from the shared counter when single-threaded (outside windows),
// provisionally — to be ranked by the barrier replay — when inside one.
func (p *LP) schedule(at time.Duration, idx int32) LPTimer {
	if at < p.now {
		at = p.now
	}
	sl := &p.slab[idx]
	if p.inWin {
		sl.rank = provisionalBit | uint64(len(p.log))
		p.log = append(p.log, callRec{callerAt: p.now, callerRank: p.curRank, child: idx, childGen: sl.gen})
	} else {
		*p.gseq++
		sl.rank = *p.gseq
	}
	p.push(lpEntry{at: at, idx: idx})
	return LPTimer{p: p, idx: idx, gen: sl.gen}
}

// NoteXCall records a scheduling call the substrate performs on the event's
// behalf outside this LP (a deferred cross-partition record). Outside a
// window it returns the call's exact rank, to be carried on the record;
// inside one it logs the call at its program position and returns 0 — the
// rank is assigned by the barrier replay, which hands it to the record
// through the ReplayWindow callback.
func (p *LP) NoteXCall() uint64 {
	if !p.inWin {
		*p.gseq++
		return *p.gseq
	}
	p.nX++
	p.log = append(p.log, callRec{callerAt: p.now, callerRank: p.curRank, child: -p.nX})
	return 0
}

// At schedules fn at absolute virtual time at (clamped to now).
func (p *LP) At(at time.Duration, fn Event) LPTimer {
	idx := p.allocSlot()
	p.slab[idx].fn = fn
	return p.schedule(at, idx)
}

// After schedules fn to run d from now.
func (p *LP) After(d time.Duration, fn Event) LPTimer {
	return p.At(p.now+d, fn)
}

// AtEvent schedules a typed event at absolute virtual time at.
func (p *LP) AtEvent(at time.Duration, ev TypedEvent) LPTimer {
	idx := p.allocSlot()
	p.slab[idx].ev = ev
	return p.schedule(at, idx)
}

// AfterEvent schedules a typed event d from now.
func (p *LP) AfterEvent(d time.Duration, ev TypedEvent) LPTimer {
	return p.AtEvent(p.now+d, ev)
}

// Inject schedules a typed event sent by another LP, with the exact rank the
// barrier replay assigned its scheduling call. Coordinator-only: call
// between windows. at must be at or beyond the window bound, which
// conservative lookahead guarantees (arrival = send + latency >= bound).
func (p *LP) Inject(at time.Duration, rank uint64, ev TypedEvent) {
	idx := p.allocSlot()
	sl := &p.slab[idx]
	sl.ev = ev
	sl.rank = rank
	if at < p.now {
		at = p.now
	}
	p.push(lpEntry{at: at, idx: idx})
}

// NextAt reports the firing time of the earliest pending event. Dead
// entries reaching the top are swept here; coordinator-only between windows.
func (p *LP) NextAt() (time.Duration, bool) {
	for len(p.heap) > 0 {
		e := p.heap[0]
		if p.slab[e.idx].dead {
			p.popRoot()
			p.nDead--
			p.freeSlot(e.idx)
			continue
		}
		return e.at, true
	}
	return 0, false
}

// RunBefore executes every event with at < bound, advancing the clock to
// each event's instant, and reports how many events ran. The clock is NOT
// advanced to bound: it stays at the last executed event, so events
// scheduled by callbacks keep sorting by true scheduling time.
func (p *LP) RunBefore(bound time.Duration) uint64 {
	var ran uint64
	p.inWin = true
	for len(p.heap) > 0 {
		e := p.heap[0]
		sl := &p.slab[e.idx]
		if sl.dead {
			p.popRoot()
			p.nDead--
			p.freeSlot(e.idx)
			continue
		}
		if e.at >= bound {
			break
		}
		p.popRoot()
		p.now = e.at
		p.curRank = sl.rank
		p.nSteps++
		ran++
		if fn := sl.fn; fn != nil {
			sl.fn = nil
			p.freeSlot(e.idx)
			fn()
		} else {
			ev := sl.ev
			sl.ev = TypedEvent{}
			p.freeSlot(e.idx)
			p.dispatch(ev)
		}
	}
	p.inWin = false
	return ran
}

// AdvanceTo clamps the clock up to t (never backward); called by the
// coordinator when a run deadline is reached, mirroring Simulator.RunUntil's
// final clock advance.
func (p *LP) AdvanceTo(t time.Duration) {
	if p.now < t {
		p.now = t
	}
}

// ReplayWindow is the heart of exact-order partitioning. Between windows,
// single-threaded, it replays every scheduling call the cluster made during
// the window in the order the sequential kernel would have made them —
// by (caller instant, caller rank, per-caller call order) — drawing each
// call's rank from the shared counter. Local calls have the rank written
// into their event's slab slot (monotone, so heap invariants survive);
// external calls are handed to applyX with their rank, at their exact
// position in the global order, so the substrate applies cross-partition
// records with the same relative order and resource arithmetic as the
// sequential run.
//
// Resolution within one instant: a call whose caller was itself scheduled at
// that instant must wait until the caller's own scheduling call is ranked —
// the dependency always points earlier in the same LP's log, so a minimal
// resolvable call always exists. Instant groups are tiny (a handful of
// calls), so the quadratic scan beats a heap.
func ReplayWindow(lps []*LP, applyX func(lp, x int, rank uint64)) {
	n := len(lps)
	cur := make([]int, n)
	type item struct {
		lp, j int
	}
	var group []item
	for _, p := range lps {
		if cap(p.seqOf) < len(p.log) {
			p.seqOf = make([]uint64, len(p.log))
		} else {
			p.seqOf = p.seqOf[:len(p.log)]
			for i := range p.seqOf {
				p.seqOf[i] = 0
			}
		}
	}
	for {
		var t time.Duration
		found := false
		for i, p := range lps {
			if cur[i] < len(p.log) {
				if at := p.log[cur[i]].callerAt; !found || at < t {
					t, found = at, true
				}
			}
		}
		if !found {
			break
		}
		group = group[:0]
		for i, p := range lps {
			j := cur[i]
			for j < len(p.log) && p.log[j].callerAt == t {
				group = append(group, item{lp: i, j: j})
				j++
			}
			cur[i] = j
		}
		for remaining := len(group); remaining > 0; remaining-- {
			best := -1
			var bestRank uint64
			var bestJ int
			for gi := range group {
				it := group[gi]
				if it.lp < 0 {
					continue
				}
				p := lps[it.lp]
				cr := p.log[it.j].callerRank
				if cr&provisionalBit != 0 {
					// Caller scheduled this window: wait for its own call's
					// rank (same LP, earlier log index, same instant group).
					s := p.seqOf[cr&^provisionalBit]
					if s == 0 {
						continue
					}
					cr = s
				}
				// Ranks are unique across events; equal caller ranks mean the
				// same caller, ordered by its own call order (= log order).
				if best < 0 || cr < bestRank || (cr == bestRank && it.j < bestJ) {
					best, bestRank, bestJ = gi, cr, it.j
				}
			}
			if best < 0 {
				panic("sim: unresolvable scheduling-call order in window replay")
			}
			it := group[best]
			group[best].lp = -1
			p := lps[it.lp]
			rec := &p.log[it.j]
			*p.gseq++
			s := *p.gseq
			p.seqOf[it.j] = s
			if rec.child >= 0 {
				sl := &p.slab[rec.child]
				if sl.gen == rec.childGen {
					sl.rank = s
				}
			} else {
				applyX(it.lp, int(-rec.child)-1, s)
			}
		}
	}
	for _, p := range lps {
		p.log = p.log[:0]
		p.nX = 0
	}
}

// lpLess orders heap entries by (fire time, rank). Ranks are unique — exact
// ranks globally, provisional ranks within the LP and window — so the order
// is total.
func (p *LP) lpLess(a, b lpEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return p.slab[a.idx].rank < p.slab[b.idx].rank
}

// push appends e and restores the heap invariant.
func (p *LP) push(e lpEntry) {
	h := append(p.heap, e)
	i := len(h) - 1
	for i > 0 {
		pa := (i - 1) >> 1
		if !p.lpLess(e, h[pa]) {
			break
		}
		h[i] = h[pa]
		i = pa
	}
	h[i] = e
	p.heap = h
}

// popRoot removes the minimum entry (bottom-up hole technique, as Simulator).
func (p *LP) popRoot() {
	h := p.heap
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	p.heap = h
	if n == 0 {
		return
	}
	i := 0
	for {
		c := i<<1 + 1
		if c >= n {
			break
		}
		if c+1 < n && p.lpLess(h[c+1], h[c]) {
			c++
		}
		h[i] = h[c]
		i = c
	}
	for i > 0 {
		pa := (i - 1) >> 1
		if !p.lpLess(last, h[pa]) {
			break
		}
		h[i] = h[pa]
		i = pa
	}
	h[i] = last
}

func (p *LP) siftDown(i int) {
	h := p.heap
	n := len(h)
	e := h[i]
	for {
		c := i<<1 + 1
		if c >= n {
			break
		}
		if c+1 < n && p.lpLess(h[c+1], h[c]) {
			c++
		}
		if !p.lpLess(h[c], e) {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = e
}

// compact rebuilds the heap without dead entries (see Simulator.compact).
func (p *LP) compact() {
	live := p.heap[:0]
	for _, e := range p.heap {
		if p.slab[e.idx].dead {
			p.freeSlot(e.idx)
		} else {
			live = append(live, e)
		}
	}
	p.heap = live
	p.nDead = 0
	for i := (len(live) - 2) >> 1; i >= 0; i-- {
		p.siftDown(i)
	}
}

// Par runs a set of LPs under conservative time-window synchronization.
//
// Each RunUntil call spawns one worker goroutine per LP and joins them all
// before returning, so no goroutines outlive the call and callers may touch
// model state freely between calls. Within the call the schedule is:
//
//	barrier -> floor = min next-event -> every LP runs events < floor+Horizon
//	(in parallel) -> repeat
//
// The Barrier callback (single-threaded) replays the previous window's
// scheduling calls and applies cross-LP messages into the destination LPs'
// heaps; because every cross-LP effect is at least Horizon after its cause,
// injected events always land at or beyond the window that produced them.
type Par struct {
	LPs     []*LP
	Horizon time.Duration
	// Barrier applies cross-LP traffic between windows; may be nil.
	Barrier func()

	// Window statistics, maintained by RunUntil: Windows counts
	// synchronization windows, ActiveSum accumulates the number of LPs that
	// executed at least one event per window, EventSum the events executed.
	// ActiveSum/Windows is the mean concurrency the partitioning exposes —
	// the speedup bound a multi-core host could realize.
	Windows   uint64
	ActiveSum uint64
	EventSum  uint64
}

// Overlap returns the mean number of LPs active per synchronization window
// (0 when no window has run).
func (p *Par) Overlap() float64 {
	if p.Windows == 0 {
		return 0
	}
	return float64(p.ActiveSum) / float64(p.Windows)
}

// minNext returns the earliest pending event time across LPs.
func (p *Par) minNext() (time.Duration, bool) {
	var floor time.Duration
	ok := false
	for _, lp := range p.LPs {
		if at, live := lp.NextAt(); live && (!ok || at < floor) {
			floor, ok = at, true
		}
	}
	return floor, ok
}

// RunUntil executes all events with timestamps <= deadline across every LP,
// then advances every LP clock to deadline. It is the partitioned
// equivalent of Simulator.RunUntil.
func (p *Par) RunUntil(deadline time.Duration) {
	if p.Horizon <= 0 {
		// A zero horizon yields empty windows and an infinite loop; the
		// partitioning layer must fall back to sequential execution instead.
		panic("sim: Par requires a positive Horizon")
	}
	n := len(p.LPs)
	starts := make([]chan time.Duration, n)
	counts := make([]uint64, n)
	var step, join sync.WaitGroup
	for i := range starts {
		starts[i] = make(chan time.Duration, 1)
	}
	for i := 0; i < n; i++ {
		join.Add(1)
		go func(i int) {
			defer join.Done()
			lp := p.LPs[i]
			for bound := range starts[i] {
				counts[i] = lp.RunBefore(bound)
				step.Done()
			}
		}(i)
	}
	for {
		// Run the barrier first: the previous window's scheduling calls must
		// be replayed and its cross-LP sends injected before the floor is
		// measured (and before the final floor > deadline exit, so
		// post-deadline traffic stays queued for the next RunUntil call,
		// exactly like the sequential kernel).
		if p.Barrier != nil {
			p.Barrier()
		}
		floor, ok := p.minNext()
		if !ok || floor > deadline {
			break
		}
		bound := floor + p.Horizon
		// The final nanosecond: sequential RunUntil executes events AT the
		// deadline, and RunBefore is strict, so the last window's bound is
		// one past it.
		if lim := deadline + 1; bound > lim {
			bound = lim
		}
		step.Add(n)
		for i := range starts {
			starts[i] <- bound
		}
		step.Wait()
		p.Windows++
		for _, c := range counts {
			p.EventSum += c
			if c > 0 {
				p.ActiveSum++
			}
		}
	}
	for i := range starts {
		close(starts[i])
	}
	join.Wait()
	for _, lp := range p.LPs {
		lp.AdvanceTo(deadline)
	}
}
