package sim

import (
	"sort"
	"testing"
	"time"
)

// TestCancelAfterFire: cancelling a timer whose event already ran must be a
// no-op, even though the slab slot has been recycled for a newer event.
func TestCancelAfterFire(t *testing.T) {
	s := New(1)
	fired := 0
	t1 := s.After(1, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("fired=%d, want 1", fired)
	}
	// The slot freed by t1's firing is the next one allocated: t2 reuses it.
	var fired2 bool
	t2 := s.After(1, func() { fired2 = true })
	t1.Cancel() // stale handle: generation mismatch, must not touch t2
	s.Run()
	if !fired2 {
		t.Fatal("stale Cancel killed an unrelated timer occupying the reused slot")
	}
	_ = t2
}

// TestCancelTwice: double-cancel must be a no-op and must not corrupt the
// dead-event accounting that drives compaction.
func TestCancelTwice(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(5, func() { fired = true })
	other := s.After(6, func() {})
	tm.Cancel()
	tm.Cancel()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending=%d after double cancel, want 1", got)
	}
	// The cancelled slot is recycled; a stale third Cancel must not kill the
	// new occupant either.
	replacement := s.After(7, func() {})
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	_, _ = other, replacement
}

// TestCancelZeroTimer: the zero Timer cancels nothing and must not panic.
func TestCancelZeroTimer(t *testing.T) {
	var tm Timer
	tm.Cancel()
}

// TestPendingExcludesCancelled: Pending reports live events only; cancelled
// timers must not leak into the count no matter how many accumulate.
func TestPendingExcludesCancelled(t *testing.T) {
	s := New(1)
	var timers []Timer
	for i := 0; i < 1000; i++ {
		timers = append(timers, s.After(time.Duration(i+1), func() {}))
	}
	keep := s.After(2000, func() {})
	for _, tm := range timers {
		tm.Cancel()
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending=%d with 1 live event, want 1", got)
	}
	// Mass cancellation triggers compaction; the survivor must still fire at
	// its scheduled instant.
	if got := len(s.heap); got >= 500 {
		t.Fatalf("compaction did not sweep: %d heap entries for 1 live event", got)
	}
	s.Run()
	if s.Now() != 2000 {
		t.Fatalf("survivor fired at %v, want 2000", s.Now())
	}
	_ = keep
}

// TestCancelledSlotsAreReused: steady schedule/cancel churn must not grow
// the slab (the free-list recycles cancelled slots after they are swept).
func TestCancelledSlotsAreReused(t *testing.T) {
	s := New(1)
	for i := 0; i < 100_000; i++ {
		tm := s.After(5, func() {})
		s.After(1, func() {})
		tm.Cancel()
		s.Step()
	}
	if got := len(s.slab); got > 4096 {
		t.Fatalf("slab grew to %d slots under schedule/cancel churn", got)
	}
}

// TestCompactionPreservesOrder: sweeping dead entries rebuilds the heap; the
// surviving events must still fire in exact (time, seq) order.
func TestCompactionPreservesOrder(t *testing.T) {
	s := New(3)
	var got, want []int
	type sched struct {
		at time.Duration
		id int
	}
	var keepers []sched
	var cancels []Timer
	// Interleave keepers and victims across shuffled instants, same-instant
	// collisions included.
	for i := 0; i < 500; i++ {
		at := time.Duration(s.Rand().Intn(50))
		if i%3 == 0 {
			i := i
			keepers = append(keepers, sched{at, i})
			s.At(at, func() { got = append(got, i) })
		} else {
			cancels = append(cancels, s.At(at, func() { t.Error("cancelled event fired") }))
		}
	}
	for _, tm := range cancels {
		tm.Cancel() // bulk cancel forces at least one compaction
	}
	// Expected order: by instant, then scheduling order (ids were issued in
	// seq order, so a stable sort by time is exactly (time, seq)).
	sort.SliceStable(keepers, func(i, j int) bool { return keepers[i].at < keepers[j].at })
	for _, k := range keepers {
		want = append(want, k.id)
	}
	s.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d keepers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order diverges at %d: got %d want %d", i, got[i], want[i])
		}
	}
}
