// Package sim provides a deterministic discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order, which makes every
// run fully deterministic for a fixed seed and schedule. All protocol
// benchmarks in this repository execute on top of this kernel so that the
// reproduced figures are stable across machines and runs.
//
// # Hot-path design
//
// The kernel is allocation-free in steady state. Scheduled events live in a
// value-typed slab indexed by a free-list; the priority queue is a binary
// min-heap of 16-byte (time, seq|slab-index) entries popped with the
// bottom-up hole technique, which benchmarked ahead of both the pointer
// heap it replaced (2.2x) and a 4-ary layout on this workload. Cancelling a
// timer marks its slab slot dead in O(1); dead entries are dropped when
// they reach the top of the heap, and a lazy compaction pass sweeps them
// out whenever they outnumber live events, so cancelled timers cost
// amortized O(1) and never accumulate.
//
// Events come in two flavors: closures (Event) for protocol code, and
// TypedEvents for substrates like internal/lan that schedule millions of
// homogeneous events and cannot afford one closure allocation per message.
// Both flavors share the same (time, seq) total order, so mixing them cannot
// perturb determinism.
package sim

import (
	"math/rand"
	"time"
)

// Event is a callback executed at a virtual instant.
type Event func()

// TypedEvent is a pre-boxed event payload dispatched through the Simulator's
// Dispatcher instead of a closure. Substrates define their own Kind values
// and pack whatever the handler needs into the scalar and interface fields;
// scheduling one performs no allocation because the payload is copied into
// the kernel's slab by value.
type TypedEvent struct {
	// Kind selects the dispatcher's handling; 0 is reserved for closures.
	Kind uint8
	// A, B, D are scalar payload fields (ids, sizes, ...).
	A, B, D int64
	// P1, P2 are reference payload fields (a message, a connection, ...).
	// Storing an existing interface value or pointer here does not allocate.
	P1, P2 any
}

// Dispatcher executes typed events. Install one with SetDispatcher before
// scheduling any TypedEvent.
type Dispatcher func(TypedEvent)

// slot is one slab cell: the payload of a scheduled event plus bookkeeping.
// Ordering keys (time, seq) live in the heap entries, not here, so heap
// operations never touch the slab.
type slot struct {
	fn  Event
	ev  TypedEvent
	gen uint64 // bumped on free; timers carry the gen they were issued with
	//         (64-bit so it cannot wrap and re-validate a stale Timer)
	dead bool  // cancelled but not yet swept out of the heap
	next int32 // free-list link, -1 terminated
}

// entry is one heap element, ordered by (at, seq). It is exactly 16 bytes —
// seq and the slab index share one word — so four entries fit per cache
// line and sift operations move small values instead of chasing pointers.
// seq lives in the high 40 bits, so comparing sx values compares seq: the
// index bits below never matter because seq is unique.
type entry struct {
	at time.Duration
	sx uint64 // seq<<idxBits | slab index
}

const (
	// idxBits caps concurrently scheduled events at 16M and the per-Simulator
	// event count at 2^40 (~1 trillion); schedule panics past either, rather
	// than silently corrupting the event order.
	idxBits = 24
	maxSlot = 1<<idxBits - 1
	maxSeq  = 1<<(64-idxBits) - 1
)

func (e entry) idx() int32 { return int32(e.sx & maxSlot) }

// Timer identifies a scheduled event so it can be cancelled. The zero Timer
// is valid and cancels nothing.
type Timer struct {
	s   *Simulator
	idx int32
	gen uint64
}

// Cancel prevents the timer's event from firing. Cancelling an already-fired
// or already-cancelled timer is a no-op: the slab slot's generation counter
// is bumped on every reuse, so a stale Timer can never cancel an unrelated
// event that happens to occupy the same slot.
func (t Timer) Cancel() {
	s := t.s
	if s == nil || int(t.idx) >= len(s.slab) {
		return
	}
	sl := &s.slab[t.idx]
	if sl.gen != t.gen || sl.dead {
		return
	}
	sl.dead = true
	sl.fn = nil
	sl.ev = TypedEvent{} // release references now, not at sweep time
	s.nDead++
	// Lazy compaction: once dead entries outnumber live ones (and are worth
	// the sweep), rebuild the heap without them. Each swept entry was paid
	// for by its own Cancel, so the cost is amortized O(1).
	if s.nDead > 64 && s.nDead*2 > len(s.heap) {
		s.compact()
	}
}

// Simulator is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with New.
type Simulator struct {
	now      time.Duration
	heap     []entry
	slab     []slot
	freeHead int32 // head of the slab free-list, -1 when empty
	nDead    int   // cancelled events still occupying heap entries
	seq      uint64
	rng      *rand.Rand
	nSteps   uint64
	dispatch Dispatcher
}

// New returns a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed)), freeHead: -1}
}

// SetDispatcher installs the typed-event dispatcher. Call once, before
// scheduling TypedEvents; closure events do not need one.
func (s *Simulator) SetDispatcher(d Dispatcher) { s.dispatch = d }

// Now returns the current virtual time (elapsed since simulation start).
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have been executed so far.
func (s *Simulator) Steps() uint64 { return s.nSteps }

// allocSlot takes a slab cell from the free-list, growing the slab only when
// the list is empty (i.e. only while the live-event population is at a new
// high-water mark).
func (s *Simulator) allocSlot() int32 {
	if s.freeHead >= 0 {
		idx := s.freeHead
		s.freeHead = s.slab[idx].next
		return idx
	}
	if len(s.slab) > maxSlot {
		panic("sim: more than 2^24 concurrently scheduled events")
	}
	s.slab = append(s.slab, slot{})
	return int32(len(s.slab) - 1)
}

// freeSlot returns a cell to the free-list and invalidates outstanding
// Timers for it by bumping the generation. The caller has already cleared
// the payload (fn/ev), either on cancel or on fire.
func (s *Simulator) freeSlot(idx int32) {
	sl := &s.slab[idx]
	sl.gen++
	sl.dead = false
	sl.next = s.freeHead
	s.freeHead = idx
}

// schedule inserts a filled slot into the heap and returns its Timer.
func (s *Simulator) schedule(at time.Duration, idx int32) Timer {
	if at < s.now {
		at = s.now
	}
	s.seq++
	if s.seq > maxSeq {
		panic("sim: more than 2^40 events scheduled in one Simulator")
	}
	s.push(entry{at: at, sx: s.seq<<idxBits | uint64(idx)})
	return Timer{s: s, idx: idx, gen: s.slab[idx].gen}
}

// At schedules fn to run at absolute virtual time at. Times in the past are
// clamped to the current instant.
func (s *Simulator) At(at time.Duration, fn Event) Timer {
	idx := s.allocSlot()
	s.slab[idx].fn = fn
	return s.schedule(at, idx)
}

// After schedules fn to run d from now. Negative delays run "now".
func (s *Simulator) After(d time.Duration, fn Event) Timer {
	return s.At(s.now+d, fn)
}

// AtEvent schedules a typed event at absolute virtual time at. It shares the
// (time, seq) order with At, and allocates nothing once the slab is warm.
func (s *Simulator) AtEvent(at time.Duration, ev TypedEvent) Timer {
	idx := s.allocSlot()
	s.slab[idx].ev = ev
	return s.schedule(at, idx)
}

// AfterEvent schedules a typed event d from now.
func (s *Simulator) AfterEvent(d time.Duration, ev TypedEvent) Timer {
	return s.AtEvent(s.now+d, ev)
}

// less orders entries by (time, seq): earlier instants first, scheduling
// order within an instant. seq is unique, so the order is total.
func less(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.sx < b.sx
}

// push appends e and restores the heap invariant.
func (s *Simulator) push(e entry) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 1
		if !less(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.heap = h
}

// popRoot removes the minimum entry and restores the heap invariant using
// the bottom-up technique: pull the min-child path up into the root hole
// without comparing against the displaced last leaf (it almost always
// belongs back at the bottom anyway), then sift the leaf up the same path.
// This saves one comparison per level on the common path.
func (s *Simulator) popRoot() {
	h := s.heap
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	s.heap = h
	if n == 0 {
		return
	}
	i := 0
	for {
		c := i<<1 + 1
		if c >= n {
			break
		}
		if c+1 < n && less(h[c+1], h[c]) {
			c++
		}
		h[i] = h[c]
		i = c
	}
	for i > 0 {
		p := (i - 1) >> 1
		if !less(last, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = last
}

// siftDown moves h[i] toward the leaves until the heap invariant holds.
func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		c := i<<1 + 1
		if c >= n {
			break
		}
		if c+1 < n && less(h[c+1], h[c]) {
			c++
		}
		if !less(h[c], e) {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = e
}

// compact rebuilds the heap without dead entries, freeing their slots. The
// heap property only depends on the (at, seq) keys, which are untouched, so
// re-heapifying the filtered array preserves the exact pop order.
func (s *Simulator) compact() {
	live := s.heap[:0]
	for _, e := range s.heap {
		if s.slab[e.idx()].dead {
			s.freeSlot(e.idx())
		} else {
			live = append(live, e)
		}
	}
	s.heap = live
	s.nDead = 0
	for i := (len(live) - 2) >> 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// Step executes the next pending event, advancing the clock to its instant.
// It reports whether an event was executed.
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		e := s.heap[0]
		s.popRoot()
		sl := &s.slab[e.idx()]
		if sl.dead {
			s.nDead--
			s.freeSlot(e.idx())
			continue
		}
		// Free before running: the callback may schedule new events into
		// this very slot, and the generation bump makes cancel-after-fire on
		// the old Timer a guaranteed no-op. A slot holds either fn or ev,
		// never both, so only the populated payload needs clearing.
		s.now = e.at
		s.nSteps++
		if fn := sl.fn; fn != nil {
			sl.fn = nil
			s.freeSlot(e.idx())
			fn()
		} else {
			ev := sl.ev
			sl.ev = TypedEvent{}
			s.freeSlot(e.idx())
			s.dispatch(ev)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to deadline. Events scheduled later remain queued.
func (s *Simulator) RunUntil(deadline time.Duration) {
	for len(s.heap) > 0 {
		// Peek at the earliest entry; discard dead ones without touching
		// the clock.
		e := s.heap[0]
		if s.slab[e.idx()].dead {
			s.popRoot()
			s.nDead--
			s.freeSlot(e.idx())
			continue
		}
		if e.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of scheduled events that have neither fired nor
// been cancelled.
func (s *Simulator) Pending() int { return len(s.heap) - s.nDead }
