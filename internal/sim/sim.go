// Package sim provides a deterministic discrete-event simulation kernel.
//
// A Simulator owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order, which makes every
// run fully deterministic for a fixed seed and schedule. All protocol
// benchmarks in this repository execute on top of this kernel so that the
// reproduced figures are stable across machines and runs.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Event is a callback executed at a virtual instant.
type Event func()

// item is a scheduled event in the queue.
type item struct {
	at    time.Duration
	seq   uint64
	fn    Event
	index int
	dead  bool
}

// eventQueue orders items by (time, sequence number).
type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}

// Timer identifies a scheduled event so it can be cancelled.
type Timer struct{ it *item }

// Cancel prevents the timer's event from firing. Cancelling an already-fired
// or already-cancelled timer is a no-op.
func (t Timer) Cancel() {
	if t.it != nil {
		t.it.dead = true
	}
}

// Simulator is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with New.
type Simulator struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	nSteps uint64
}

// New returns a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (elapsed since simulation start).
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have been executed so far.
func (s *Simulator) Steps() uint64 { return s.nSteps }

// At schedules fn to run at absolute virtual time at. Times in the past are
// clamped to the current instant.
func (s *Simulator) At(at time.Duration, fn Event) Timer {
	if at < s.now {
		at = s.now
	}
	s.seq++
	it := &item{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.queue, it)
	return Timer{it: it}
}

// After schedules fn to run d from now. Negative delays run "now".
func (s *Simulator) After(d time.Duration, fn Event) Timer {
	return s.At(s.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its instant.
// It reports whether an event was executed.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		it := heap.Pop(&s.queue).(*item)
		if it.dead {
			continue
		}
		s.now = it.at
		s.nSteps++
		it.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to deadline. Events scheduled later remain queued.
func (s *Simulator) RunUntil(deadline time.Duration) {
	for len(s.queue) > 0 {
		// Peek at the earliest live event.
		top := s.queue[0]
		if top.dead {
			heap.Pop(&s.queue)
			continue
		}
		if top.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of queued (possibly cancelled) events.
func (s *Simulator) Pending() int { return len(s.queue) }
