package sim

import (
	"fmt"
	"testing"
	"time"
)

// trace records (instant, label) execution points for equivalence checks.
type trace struct{ got []string }

func (tr *trace) hit(now time.Duration, label string) {
	tr.got = append(tr.got, fmt.Sprintf("%v %s", now, label))
}

// buildChain schedules, through the given scheduling primitives, a workload
// whose callbacks themselves schedule: a chain that re-arms itself plus
// same-instant siblings, exercising the (fireAt, rank) tiebreak.
func buildChain(tr *trace, now func() time.Duration, after func(time.Duration, Event)) {
	var step func()
	n := 0
	step = func() {
		tr.hit(now(), fmt.Sprintf("step%d", n))
		n++
		if n < 5 {
			// Two children at the same instant: scheduling order must be
			// execution order.
			after(30*time.Microsecond, func() { tr.hit(now(), "a") })
			after(30*time.Microsecond, func() { tr.hit(now(), "b") })
			after(30*time.Microsecond, step)
		}
	}
	after(0, step)
}

// TestParSingleLPMatchesSimulator drives the same workload through the
// sequential Simulator and through a one-LP Par and requires byte-identical
// execution traces: the degenerate partitioning must be exactly the
// sequential kernel.
func TestParSingleLPMatchesSimulator(t *testing.T) {
	seq := &trace{}
	s := New(1)
	buildChain(seq, s.Now, func(d time.Duration, fn Event) { s.After(d, fn) })
	s.RunUntil(time.Millisecond)

	par := &trace{}
	lp := NewLP()
	buildChain(par, lp.Now, func(d time.Duration, fn Event) { lp.After(d, fn) })
	p := &Par{LPs: []*LP{lp}, Horizon: 50 * time.Microsecond,
		Barrier: func() { ReplayWindow([]*LP{lp}, nil) }}
	p.RunUntil(time.Millisecond)

	if len(seq.got) != len(par.got) {
		t.Fatalf("trace lengths differ: sequential %d, partitioned %d", len(seq.got), len(par.got))
	}
	for i := range seq.got {
		if seq.got[i] != par.got[i] {
			t.Fatalf("trace diverges at %d: sequential %q, partitioned %q", i, seq.got[i], par.got[i])
		}
	}
	if lp.Now() != time.Millisecond {
		t.Fatalf("LP clock not advanced to deadline: %v", lp.Now())
	}
}

// TestParHorizonBoundary pins the strictness of the window bound: an event
// exactly at floor+Horizon must not execute in the window that computed that
// bound (its LP could still receive an earlier cross-LP message), and must
// execute — at the right instant — in a later window.
func TestParHorizonBoundary(t *testing.T) {
	const horizon = 50 * time.Microsecond
	lpA, lpB := NewLP(), NewLP()
	var c uint64
	lpA.SetSeqSource(&c)
	lpB.SetSeqSource(&c)
	tr := &trace{}
	lpA.At(0, func() { tr.hit(lpA.Now(), "floor") })
	lpB.At(horizon, func() { tr.hit(lpB.Now(), "boundary") }) // exactly at bound
	lps := []*LP{lpA, lpB}
	p := &Par{LPs: lps, Horizon: horizon,
		Barrier: func() { ReplayWindow(lps, nil) }}
	p.RunUntil(time.Millisecond)
	want := []string{"0s floor", "50µs boundary"}
	if len(tr.got) != 2 || tr.got[0] != want[0] || tr.got[1] != want[1] {
		t.Fatalf("got trace %v, want %v", tr.got, want)
	}
	if p.Windows != 2 {
		t.Fatalf("boundary event must fall past the first window: ran %d windows, want 2", p.Windows)
	}
}

// TestParZeroHorizonPanics pins the zero-lookahead guard: a Par with no
// horizon would spin on empty windows, so RunUntil must refuse loudly (the
// partitioning layer falls back to sequential execution instead, see
// lan.Partition).
func TestParZeroHorizonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil with Horizon=0 did not panic")
		}
	}()
	(&Par{LPs: []*LP{NewLP()}}).RunUntil(time.Millisecond)
}

// TestInjectRankOrder pins the injection contract: same-instant events
// execute in rank order regardless of insertion order, because the rank is
// the sequential kernel's seq.
func TestInjectRankOrder(t *testing.T) {
	lp := NewLP()
	lp.SetDispatcher(func(ev TypedEvent) { ev.P1.(func())() })
	var got []string
	at := 100 * time.Microsecond
	lp.Inject(at, 9, TypedEvent{P1: func() { got = append(got, "late") }})
	lp.Inject(at, 3, TypedEvent{P1: func() { got = append(got, "early") }})
	lp.RunBefore(time.Millisecond)
	if len(got) != 2 || got[0] != "early" || got[1] != "late" {
		t.Fatalf("injection order not rank order: %v", got)
	}
}

// TestReplayWindowRanksCrossLP pins the replay's core ordering rule: calls
// made during a window are ranked by (caller instant, caller rank, call
// order) across LPs, so a child scheduled by an earlier-ranked caller sorts
// first even when its LP logged it later in wall time.
func TestReplayWindowRanksCrossLP(t *testing.T) {
	lpA, lpB := NewLP(), NewLP()
	var c uint64
	lpA.SetSeqSource(&c)
	lpB.SetSeqSource(&c)
	at := 10 * time.Microsecond
	// Direct-mode scheduling (outside a window) ranks immediately: B's
	// event first (rank 1), then A's (rank 2) — both firing at the same
	// instant, each making one external call from inside the window.
	lpB.At(at, func() { lpB.NoteXCall() })
	lpA.At(at, func() { lpA.NoteXCall() })
	var order []int
	lps := []*LP{lpA, lpB}
	(&Par{LPs: lps, Horizon: 30 * time.Microsecond,
		Barrier: func() {
			ReplayWindow(lps, func(lp, x int, rank uint64) { order = append(order, lp) })
		}}).RunUntil(time.Millisecond)
	// The replay must order the same-instant calls by their callers' ranks
	// (B before A), not by LP index.
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("replay rank order wrong: %v (want [1 0])", order)
	}
}
