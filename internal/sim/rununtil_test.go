package sim

import (
	"testing"
	"time"
)

// TestRunUntilDeadlineInclusive: an event scheduled exactly at the deadline
// fires, and the clock lands on the deadline, not past it.
func TestRunUntilDeadlineInclusive(t *testing.T) {
	s := New(1)
	var atDeadline, after bool
	s.At(10, func() { atDeadline = true })
	s.At(11, func() { after = true })
	s.RunUntil(10)
	if !atDeadline {
		t.Fatal("event at the deadline instant did not fire")
	}
	if after {
		t.Fatal("event past the deadline fired")
	}
	if s.Now() != 10 {
		t.Fatalf("clock at %v, want 10", s.Now())
	}
	s.Run()
	if !after {
		t.Fatal("post-deadline event lost")
	}
}

// TestRunUntilDeadHeadBeforeDeadline: cancelled events at the queue head are
// discarded without firing and without disturbing the clock.
func TestRunUntilDeadHeadBeforeDeadline(t *testing.T) {
	s := New(1)
	tm1 := s.At(1, func() { t.Error("cancelled event fired") })
	tm2 := s.At(2, func() { t.Error("cancelled event fired") })
	fired := false
	s.At(5, func() { fired = true })
	tm1.Cancel()
	tm2.Cancel()
	s.RunUntil(10)
	if !fired {
		t.Fatal("live event behind dead head did not fire")
	}
	if s.Now() != 10 {
		t.Fatalf("clock at %v, want 10", s.Now())
	}
}

// TestRunUntilDeadHeadPastDeadline: a dead event beyond the deadline must
// not stop the clock from advancing to the deadline, and must stay dead.
func TestRunUntilDeadHeadPastDeadline(t *testing.T) {
	s := New(1)
	tm := s.At(50, func() { t.Error("cancelled event fired") })
	tm.Cancel()
	s.RunUntil(10)
	if s.Now() != 10 {
		t.Fatalf("clock at %v, want 10", s.Now())
	}
	s.Run()
	if s.Now() != 10 {
		t.Fatalf("dead event advanced the clock to %v", s.Now())
	}
}

// TestRunUntilSameInstantScheduling: events that schedule follow-ups at the
// current instant run them within the same RunUntil, in scheduling order,
// with a monotone clock throughout.
func TestRunUntilSameInstantScheduling(t *testing.T) {
	s := New(1)
	var order []int
	var clocks []time.Duration
	s.At(10, func() {
		order = append(order, 1)
		clocks = append(clocks, s.Now())
		s.At(10, func() { // same instant as the deadline
			order = append(order, 3)
			clocks = append(clocks, s.Now())
		})
	})
	s.At(10, func() {
		order = append(order, 2)
		clocks = append(clocks, s.Now())
	})
	s.RunUntil(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("same-instant order %v, want [1 2 3]", order)
	}
	for i, c := range clocks {
		if c != 10 {
			t.Fatalf("event %d saw clock %v, want 10", i, c)
		}
	}
}

// TestRunUntilClockMonotone: repeated RunUntil calls never move the clock
// backwards, including deadlines in the past.
func TestRunUntilClockMonotone(t *testing.T) {
	s := New(1)
	s.At(3, func() {})
	s.RunUntil(5)
	if s.Now() != 5 {
		t.Fatalf("clock at %v, want 5", s.Now())
	}
	s.RunUntil(2) // past deadline: no-op
	if s.Now() != 5 {
		t.Fatalf("past deadline rewound clock to %v", s.Now())
	}
	s.RunUntil(5) // same deadline: no-op
	if s.Now() != 5 {
		t.Fatalf("clock moved to %v on same-deadline call", s.Now())
	}
}

// TestRunUntilEmptyQueueAdvancesClock: with nothing scheduled the clock
// still advances to the deadline.
func TestRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	s := New(1)
	s.RunUntil(7)
	if s.Now() != 7 {
		t.Fatalf("clock at %v, want 7", s.Now())
	}
}
