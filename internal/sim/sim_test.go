package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New(1)
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 5} {
		d := d
		s.After(d, func() { got = append(got, s.Now()) })
	}
	s.Run()
	want := []time.Duration{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(7, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of scheduling order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(5, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	// Cancelling twice must be harmless.
	tm.Cancel()
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var seq []string
	s.After(1, func() {
		seq = append(seq, "a")
		s.After(1, func() { seq = append(seq, "c") })
	})
	s.After(2, func() { seq = append(seq, "b") })
	s.Run()
	// Events at t=2: "b" was scheduled first, then "c" nested.
	if len(seq) != 3 || seq[0] != "a" || seq[1] != "b" || seq[2] != "c" {
		t.Fatalf("got sequence %v", seq)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d
		s.After(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(12) fired %v", fired)
	}
	if s.Now() != 12 {
		t.Fatalf("clock is %v, want 12", s.Now())
	}
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestPastEventClampsToNow(t *testing.T) {
	s := New(1)
	var at time.Duration = -1
	s.After(10, func() {
		s.At(3, func() { at = s.Now() }) // in the past
	})
	s.Run()
	if at != 10 {
		t.Fatalf("past event fired at %v, want clamped to 10", at)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		s := New(42)
		var trace []int
		var rec func(depth int)
		rec = func(depth int) {
			if depth > 4 {
				return
			}
			n := s.Rand().Intn(3) + 1
			for i := 0; i < n; i++ {
				i := i
				s.After(time.Duration(s.Rand().Intn(100)), func() {
					trace = append(trace, depth*100+i)
					rec(depth + 1)
				})
			}
		}
		rec(0)
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock never goes backwards.
func TestQuickMonotoneClock(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		var times []time.Duration
		for _, d := range delays {
			s.After(time.Duration(d), func() { times = append(times, s.Now()) })
		}
		s.Run()
		if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
			return false
		}
		want := make([]time.Duration, len(delays))
		for i, d := range delays {
			want[i] = time.Duration(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if times[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStepsCounter(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.After(time.Duration(i), func() {})
	}
	s.Run()
	if s.Steps() != 5 {
		t.Fatalf("Steps=%d, want 5", s.Steps())
	}
}
