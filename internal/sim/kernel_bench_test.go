package sim

import (
	"testing"
	"time"
)

// BenchmarkKernelSteadyState measures the scheduler hot loop: a fixed
// population of self-rescheduling timers, one event executed per iteration.
// This is the workload shape of every LAN model run (timer fires, handler
// schedules the next), so events/sec here is the throughput ceiling for all
// figure reproductions. The closures are created once, before the timer
// starts: steady-state allocations are the kernel's own.
func BenchmarkKernelSteadyState(b *testing.B) {
	s := New(1)
	const width = 64
	for i := 0; i < width; i++ {
		d := time.Duration(1 + i%7)
		var fn Event
		fn = func() { s.After(d, fn) }
		s.After(d, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for n := 0; n < b.N; n++ {
		s.Step()
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "events/s")
}

// BenchmarkKernelScheduleCancel measures the schedule+cancel path: protocols
// arm retransmit/failure timers that almost always get cancelled, so cancelled
// timers must be cheap and must not accumulate in the queue.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	s := New(1)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		t := s.After(5, nop) // armed, then dropped: the common timer fate
		s.After(1, nop)
		t.Cancel()
		s.Step()
	}
}

// BenchmarkKernelFanOut measures bursty scheduling: each executed event
// schedules a batch (a multicast fan-out shape), and the loop drains them.
func BenchmarkKernelFanOut(b *testing.B) {
	s := New(1)
	const fan = 16
	var burst Event
	nop := func() {}
	burst = func() {
		for i := 0; i < fan-1; i++ {
			s.After(time.Duration(1+i), nop)
		}
		s.After(fan, burst)
	}
	s.After(1, burst)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s.Step()
	}
}
