package lan

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/proto"
)

// pdesTrace runs a two-node TCP ping-pong plus a multicast fan-out, with the
// cluster optionally partitioned, and returns each node's delivery trace.
// Traces are per node — a node's deliveries happen on its own LP, so each
// slice has a single writer — and each is deterministic in both modes.
// Nodes 1 and 2 volley over a reliable channel; node 3 multicasts to a group
// spanning both partitions every 200µs.
func pdesTrace(nLP int) map[proto.NodeID][]string {
	l := New(DefaultConfig(), 1)
	got := make(map[proto.NodeID]*[]string)
	envs := make(map[proto.NodeID]proto.Env)
	mk := func(id proto.NodeID, onStart func(proto.Env), onRecv func(proto.Env, proto.NodeID, proto.Message)) {
		lines := &[]string{}
		got[id] = lines
		h := &proto.HandlerFunc{}
		h.OnStart = func(env proto.Env) {
			envs[id] = env
			if onStart != nil {
				onStart(env)
			}
		}
		h.OnReceive = func(from proto.NodeID, m proto.Message) {
			*lines = append(*lines, fmt.Sprintf("got %d from n%d at %v",
				m.(proto.Raw).Tag, from, envs[id].Now()))
			if onRecv != nil {
				onRecv(envs[id], from, m)
			}
		}
		l.AddNode(id, h)
	}
	mk(1, func(env proto.Env) { env.Send(2, proto.Raw{Bytes: 100, Tag: 0}) },
		func(env proto.Env, _ proto.NodeID, m proto.Message) {
			if r := m.(proto.Raw); r.Tag < 20 {
				env.Send(2, proto.Raw{Bytes: 100, Tag: r.Tag + 1})
			}
		})
	mk(2, nil, func(env proto.Env, from proto.NodeID, m proto.Message) {
		env.Send(from, m)
	})
	mk(3, func(env proto.Env) {
		var tick func()
		tag := int64(100)
		tick = func() {
			env.Multicast(7, proto.Raw{Bytes: 300, Tag: tag})
			tag++
			if tag < 110 {
				env.After(200*time.Microsecond, tick)
			}
		}
		env.After(50*time.Microsecond, tick)
	}, nil)
	mk(4, nil, nil)
	for _, id := range []proto.NodeID{1, 2, 4} {
		l.Subscribe(7, id)
	}
	if nLP > 0 {
		if !l.Partition(nLP, func(id proto.NodeID) int { return int(id) % nLP }) {
			panic("partition declined")
		}
	}
	l.Start()
	// Two Run calls: traffic queued across the deadline must stay queued,
	// exactly like the sequential kernel.
	l.Run(2 * time.Millisecond)
	l.Run(3 * time.Millisecond)
	out := make(map[proto.NodeID][]string, len(got))
	for id, lines := range got {
		out[id] = *lines
	}
	return out
}

// TestPartitionEquivalence requires the partitioned cluster to produce
// byte-identical per-node delivery traces to the sequential one, for several
// LP counts, across both the reliable-channel and multicast paths.
func TestPartitionEquivalence(t *testing.T) {
	want := pdesTrace(0)
	total := 0
	for _, lines := range want {
		total += len(lines)
	}
	if total == 0 {
		t.Fatal("sequential run delivered nothing")
	}
	for _, nLP := range []int{2, 3, 4} {
		gotAll := pdesTrace(nLP)
		for id, w := range want {
			g := gotAll[id]
			if len(g) != len(w) {
				t.Fatalf("nLP=%d node %d: %d deliveries, sequential had %d", nLP, id, len(g), len(w))
			}
			for i := range w {
				if g[i] != w[i] {
					t.Fatalf("nLP=%d node %d diverges at %d: got %q, want %q", nLP, id, i, g[i], w[i])
				}
			}
		}
	}
}

// TestPartitionDeclines pins the refusal cases: partitioning must decline —
// and the cluster run sequentially, not corrupt itself — when there is no
// lookahead (Latency <= 0) or when fewer than two LPs are requested.
// Lossy configurations are accepted: LossRate draws from per-node RNG
// streams, so parallel runs replay them exactly.
func TestPartitionDeclines(t *testing.T) {
	mk := func(mut func(*Config)) *LAN {
		cfg := DefaultConfig()
		if mut != nil {
			mut(&cfg)
		}
		l := New(cfg, 1)
		l.AddNode(1, &proto.HandlerFunc{})
		return l
	}
	if mk(func(c *Config) { c.Latency = 0 }).Partition(4, nil) {
		t.Error("Partition accepted Latency=0 (zero lookahead)")
	}
	if !mk(func(c *Config) { c.LossRate = 0.1 }).Partition(4, nil) {
		t.Error("Partition declined LossRate>0 (loss draws are per-node now)")
	}
	if mk(nil).Partition(1, nil) {
		t.Error("Partition accepted nLP=1")
	}
	if l := mk(nil); !l.Partition(2, nil) {
		t.Error("Partition declined a valid configuration")
	} else if l.Partitions() != 2 {
		t.Errorf("Partitions() = %d, want 2", l.Partitions())
	}
}
