package lan

import (
	"testing"
	"time"

	"repro/internal/proto"
)

// benchTicker multicasts (or unicasts over TCP) one pre-built message per
// tick. The tick closure and the message are created once in Start so that
// steady-state allocations measured by the benchmarks are the substrate's
// own, not the traffic generator's.
type benchTicker struct {
	group    proto.GroupID
	to       proto.NodeID
	useMcast bool
	size     int
	interval time.Duration
}

func (t *benchTicker) Start(env proto.Env) {
	var msg proto.Message = proto.Raw{Bytes: t.size}
	var tick func()
	tick = func() {
		if t.useMcast {
			env.Multicast(t.group, msg)
		} else {
			env.Send(t.to, msg)
		}
		env.After(t.interval, tick)
	}
	tick()
}

func (t *benchTicker) Receive(proto.NodeID, proto.Message) {}

// runSteadyState advances the simulation in 1 ms virtual slices for b.N
// iterations and reports simulated events per wall-clock second.
func runSteadyState(b *testing.B, l *LAN) {
	b.Helper()
	l.Start()
	l.Run(50 * time.Millisecond) // warm up pools, buffers and windows
	b.ReportAllocs()
	b.ResetTimer()
	s0 := l.Sim.Steps()
	start := time.Now()
	for n := 0; n < b.N; n++ {
		l.Run(time.Millisecond)
	}
	b.ReportMetric(float64(l.Sim.Steps()-s0)/time.Since(start).Seconds(), "events/s")
}

// BenchmarkMulticastSteadyState is the fig3.x hot path: one sender
// saturating a multicast group of 8 receivers with 8 KB datagrams.
func BenchmarkMulticastSteadyState(b *testing.B) {
	l := New(DefaultConfig(), 1)
	for i := 1; i <= 8; i++ {
		l.AddNode(proto.NodeID(i), &sink{})
		l.Subscribe(1, proto.NodeID(i))
	}
	l.AddNode(0, &benchTicker{useMcast: true, group: 1, size: 8 << 10, interval: 80 * time.Microsecond})
	runSteadyState(b, l)
}

// BenchmarkTCPSteadyState is the uring/pipeline hot path: a windowed
// reliable stream (transmit, deliver, ack per message).
func BenchmarkTCPSteadyState(b *testing.B) {
	l := New(DefaultConfig(), 1)
	l.AddNode(1, &sink{})
	l.AddNode(0, &benchTicker{to: 1, size: 8 << 10, interval: 70 * time.Microsecond})
	runSteadyState(b, l)
}

// BenchmarkUDPSteadyState is the datagram path without switch replication.
func BenchmarkUDPSteadyState(b *testing.B) {
	l := New(DefaultConfig(), 1)
	l.AddNode(1, &sink{})
	t := &benchTicker{to: 1, size: 8 << 10, interval: 70 * time.Microsecond}
	h := &proto.HandlerFunc{OnStart: func(env proto.Env) {
		var msg proto.Message = proto.Raw{Bytes: t.size}
		var tick func()
		tick = func() {
			env.SendUDP(t.to, msg)
			env.After(t.interval, tick)
		}
		tick()
	}}
	l.AddNode(0, h)
	runSteadyState(b, l)
}
