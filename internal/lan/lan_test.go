package lan

import (
	"testing"
	"time"

	"repro/internal/proto"
)

// sink counts received messages and bytes.
type sink struct {
	msgs  int
	bytes int
}

func (s *sink) Start(proto.Env) {}
func (s *sink) Receive(_ proto.NodeID, m proto.Message) {
	s.msgs++
	s.bytes += m.Size()
}

// sender pushes packets of a given size at a fixed interval.
type sender struct {
	env      proto.Env
	to       []proto.NodeID
	group    proto.GroupID
	useMcast bool
	size     int
	interval time.Duration
	stop     time.Duration
}

func (s *sender) Start(env proto.Env) {
	s.env = env
	s.tick()
}

func (s *sender) tick() {
	if s.env.Now() >= s.stop {
		return
	}
	m := proto.Raw{Bytes: s.size}
	if s.useMcast {
		s.env.Multicast(s.group, m)
	} else {
		for _, to := range s.to {
			s.env.SendUDP(to, m)
		}
	}
	s.env.After(s.interval, s.tick)
}

func (s *sender) Receive(proto.NodeID, proto.Message) {}

func TestUnicastSharesOutgoingBandwidth(t *testing.T) {
	// One sender saturating its 1 Gbps out-link toward 4 receivers via
	// unicast: each receiver should see ~1/4 of the wire.
	cfg := DefaultConfig()
	l := New(cfg, 1)
	const nRecv = 4
	recvs := make([]*sink, nRecv)
	var ids []proto.NodeID
	for i := 0; i < nRecv; i++ {
		recvs[i] = &sink{}
		id := proto.NodeID(i + 1)
		l.AddNode(id, recvs[i])
		ids = append(ids, id)
	}
	// 8 KB every 64 µs per receiver would be 1 Gbps per receiver; the
	// out-link forces them to share.
	l.AddNode(0, &sender{to: ids, size: 8192, interval: 64 * time.Microsecond, stop: time.Second})
	l.Start()
	l.Run(time.Second)

	for i, r := range recvs {
		gbps := float64(r.bytes) * 8 / 1e9
		if gbps < 0.15 || gbps > 0.30 {
			t.Errorf("receiver %d got %.3f Gbps, want ~0.25", i, gbps)
		}
	}
}

func TestMulticastConstantPerReceiver(t *testing.T) {
	cfg := DefaultConfig()
	for _, nRecv := range []int{2, 8, 16} {
		l := New(cfg, 1)
		recvs := make([]*sink, nRecv)
		for i := 0; i < nRecv; i++ {
			recvs[i] = &sink{}
			id := proto.NodeID(i + 1)
			l.AddNode(id, recvs[i])
			l.Subscribe(1, id)
		}
		// 8 KB every 80 µs = ~820 Mbps offered.
		l.AddNode(0, &sender{useMcast: true, group: 1, size: 8192, interval: 80 * time.Microsecond, stop: time.Second})
		l.Start()
		l.Run(time.Second)
		for i, r := range recvs {
			mbps := float64(r.bytes) * 8 / 1e6
			if mbps < 700 {
				t.Errorf("n=%d receiver %d got %.0f Mbps, want ~800", nRecv, i, mbps)
			}
		}
	}
}

func TestDatagramBufferOverflowDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UDPBuf = 16 << 10 // tiny buffer
	l := New(cfg, 1)
	r := &sink{}
	// Receiver CPU far too slow to drain the offered load.
	l.AddNodeWithConfig(1, r, NodeConfig{CPUScale: 0.01, BandwidthScale: 1})
	l.AddNode(0, &sender{to: []proto.NodeID{1}, size: 8192, interval: 70 * time.Microsecond, stop: 100 * time.Millisecond})
	l.Start()
	l.Run(200 * time.Millisecond)
	if l.Node(1).Stats().MsgsDropped == 0 {
		t.Fatal("expected drops with overloaded tiny buffer, got none")
	}
}

// tcpSender floods a peer over the reliable channel.
type tcpSender struct {
	env   proto.Env
	to    proto.NodeID
	size  int
	count int
}

func (s *tcpSender) Start(env proto.Env) {
	s.env = env
	for i := 0; i < s.count; i++ {
		env.Send(s.to, proto.Raw{Bytes: s.size})
	}
}
func (s *tcpSender) Receive(proto.NodeID, proto.Message) {}

func TestTCPNoLossAndFIFO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TCPBuf = 64 << 10
	l := New(cfg, 1)
	var got []int64
	r := &proto.HandlerFunc{OnReceive: func(_ proto.NodeID, m proto.Message) {
		got = append(got, m.(proto.Raw).Tag)
	}}
	l.AddNode(1, r)
	snd := l.AddNode(0, &proto.HandlerFunc{OnStart: func(env proto.Env) {
		for i := 0; i < 500; i++ {
			env.Send(1, proto.Raw{Bytes: 8192, Tag: int64(i)})
		}
	}})
	l.Start()
	l.Run(5 * time.Second)
	if len(got) != 500 {
		t.Fatalf("received %d of 500 reliable messages", len(got))
	}
	for i, tag := range got {
		if tag != int64(i) {
			t.Fatalf("FIFO violated at %d: tag %d", i, tag)
		}
	}
	if snd.Stats().MsgsDropped != 0 || l.Node(1).Stats().MsgsDropped != 0 {
		t.Fatal("reliable channel dropped messages")
	}
}

func TestTCPWindowLimitsThroughput(t *testing.T) {
	// With a small window, throughput ~ window/RTT << bandwidth.
	run := func(window int) float64 {
		cfg := DefaultConfig()
		cfg.TCPBuf = window
		l := New(cfg, 1)
		r := &sink{}
		l.AddNode(1, r)
		l.AddNode(0, &tcpSender{to: 1, size: 8 << 10, count: 20000})
		l.Start()
		l.Run(time.Second)
		return float64(r.bytes) * 8 / 1e6 // Mbps over 1s
	}
	small := run(8 << 10)
	big := run(16 << 20)
	if small >= big/2 {
		t.Fatalf("small window %f Mbps not much slower than big %f Mbps", small, big)
	}
	if big < 700 {
		t.Fatalf("big window only reached %f Mbps", big)
	}
}

func TestDiskSerializesWrites(t *testing.T) {
	cfg := DefaultConfig()
	l := New(cfg, 1)
	var done []time.Duration
	n := l.AddNode(0, &proto.HandlerFunc{OnStart: func(env proto.Env) {
		for i := 0; i < 10; i++ {
			env.DiskWrite(32<<10, func() { done = append(done, env.Now()) })
		}
	}})
	l.Start()
	l.Run(time.Second)
	if len(done) != 10 {
		t.Fatalf("%d of 10 writes completed", len(done))
	}
	per := cfg.DiskLatency + txTime(32<<10, cfg.DiskBandwidth)
	want := 10 * per
	if got := done[9]; got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("10 serialized writes finished at %v, want ~%v", got, want)
	}
	if n.Stats().DiskWrites != 10 {
		t.Fatalf("DiskWrites=%d", n.Stats().DiskWrites)
	}
}

func TestDownNodeDropsTraffic(t *testing.T) {
	l := New(DefaultConfig(), 1)
	r := &sink{}
	l.AddNode(1, r)
	l.AddNode(0, &sender{to: []proto.NodeID{1}, size: 1024, interval: time.Millisecond, stop: 100 * time.Millisecond})
	l.Start()
	l.Run(20 * time.Millisecond)
	atCrash := r.msgs
	l.Node(1).SetDown(true)
	l.Run(80 * time.Millisecond)
	if r.msgs != atCrash {
		t.Fatalf("down node delivered %d extra messages", r.msgs-atCrash)
	}
	if atCrash == 0 {
		t.Fatal("sanity: nothing delivered before crash")
	}
}

func TestWorkOccupiesCPU(t *testing.T) {
	l := New(DefaultConfig(), 1)
	var t1, t2 time.Duration
	n := l.AddNode(0, &proto.HandlerFunc{OnStart: func(env proto.Env) {
		env.Work(10*time.Millisecond, func() { t1 = env.Now() })
		env.Work(5*time.Millisecond, func() { t2 = env.Now() })
	}})
	l.Start()
	l.Run(time.Second)
	if t1 != 10*time.Millisecond || t2 != 15*time.Millisecond {
		t.Fatalf("work completions at %v, %v; want 10ms, 15ms", t1, t2)
	}
	if n.CPUBusy() != 15*time.Millisecond {
		t.Fatalf("CPUBusy=%v, want 15ms", n.CPUBusy())
	}
}

func TestCPUScaleSlowsNode(t *testing.T) {
	l := New(DefaultConfig(), 1)
	var slow, fast time.Duration
	l.AddNodeWithConfig(0, &proto.HandlerFunc{OnStart: func(env proto.Env) {
		env.Work(10*time.Millisecond, func() { slow = env.Now() })
	}}, NodeConfig{CPUScale: 0.5, BandwidthScale: 1})
	l.AddNode(1, &proto.HandlerFunc{OnStart: func(env proto.Env) {
		env.Work(10*time.Millisecond, func() { fast = env.Now() })
	}})
	l.Start()
	l.Run(time.Second)
	if fast != 10*time.Millisecond || slow != 20*time.Millisecond {
		t.Fatalf("fast=%v slow=%v", fast, slow)
	}
}

func TestMulticastSelfDelivery(t *testing.T) {
	l := New(DefaultConfig(), 1)
	got := 0
	l.AddNode(0, &proto.HandlerFunc{
		OnStart:   func(env proto.Env) { env.Multicast(1, proto.Raw{Bytes: 100}) },
		OnReceive: func(proto.NodeID, proto.Message) { got++ },
	})
	l.Subscribe(1, 0)
	l.Start()
	l.Run(time.Second)
	if got != 1 {
		t.Fatalf("self multicast delivered %d times", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		l := New(DefaultConfig(), 99)
		s1 := &sink{}
		s2 := &sink{}
		l.AddNode(1, s1)
		l.AddNode(2, s2)
		l.Subscribe(5, 1)
		l.Subscribe(5, 2)
		l.AddNode(0, &sender{useMcast: true, group: 5, size: 4096, interval: 40 * time.Microsecond, stop: 300 * time.Millisecond})
		l.Start()
		l.Run(400 * time.Millisecond)
		return l.Node(1).Stats().BytesRecv, l.Node(2).Stats().BytesRecv
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a1, a2, b1, b2)
	}
}
