// Package lan is a discrete-event model of the paper's experimental testbed:
// a cluster of commodity servers on a gigabit Ethernet switch.
//
// The model captures the four resources that shape every result in the
// paper's evaluation sections:
//
//   - link bandwidth: each NIC is full-duplex with separate in/out
//     serialization queues; ip-multicast is replicated by the switch, so a
//     multicast sender pays the frame once while a unicast one-to-many
//     sender pays it once per receiver;
//   - socket buffers: datagrams arriving at a full receive buffer are
//     dropped (packet loss); TCP-like channels instead apply backpressure
//     through a bounded in-flight window;
//   - CPU: each node processes sends and receives serially at a configurable
//     per-message + per-byte cost, which is what saturates a Paxos
//     coordinator before the wire does;
//   - disk: synchronous stable-storage writes are bounded by a sequential
//     device bandwidth.
//
// Defaults are calibrated to the paper's hardware (1 Gbps, 0.1 ms RTT,
// ~270 Mbps effective synchronous write bandwidth).
package lan

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/fault"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Config holds cluster-wide resource parameters. The zero value is not
// useful; start from DefaultConfig.
type Config struct {
	// Bandwidth is the NIC capacity in bits per second, per direction.
	Bandwidth float64
	// Latency is the one-way wire propagation delay (RTT/2).
	Latency time.Duration
	// UDPBuf is the per-node datagram receive buffer in bytes. Frames
	// arriving while the buffer is full are dropped.
	UDPBuf int
	// TCPBuf is the per-connection window in bytes for reliable channels.
	TCPBuf int
	// CPUPerMsg is the fixed processing cost charged for each message sent
	// or received (system call + protocol handling).
	CPUPerMsg time.Duration
	// CPUPerByte is the variable processing cost per payload byte.
	CPUPerByte time.Duration
	// DiskBandwidth is the sequential synchronous write bandwidth in bits
	// per second.
	DiskBandwidth float64
	// DiskLatency is the fixed per-write latency (command overhead).
	DiskLatency time.Duration
	// LossRate is an additional random drop probability applied to every
	// datagram (UDP/multicast) delivery, on top of buffer-overflow drops.
	// Each draw comes from the receiving node's own seeded RNG stream, so
	// lossy configurations replay byte-identically under Partition too.
	// Used by failure-injection tests; 0 in calibrated benchmarks.
	LossRate float64
}

// DefaultConfig returns parameters calibrated to the dissertation's testbed:
// Dell SC1435 nodes on a gigabit HP ProCurve switch with 0.1 ms RTT and
// OCZ-VERTEX3 SSDs that sustain roughly 270 Mbps of synchronous writes.
func DefaultConfig() Config {
	return Config{
		Bandwidth:     1e9,
		Latency:       50 * time.Microsecond,
		UDPBuf:        16 << 20,
		TCPBuf:        32 << 20,
		CPUPerMsg:     2 * time.Microsecond,
		CPUPerByte:    1 * time.Nanosecond,
		DiskBandwidth: 270e6,
		DiskLatency:   60 * time.Microsecond,
	}
}

// NodeConfig scales one node's resources relative to the cluster Config,
// which is how the Chapter 7 heterogeneous (cloud) deployments are modeled.
type NodeConfig struct {
	// CPUScale multiplies the node's processing speed (0.5 = half as fast).
	CPUScale float64
	// BandwidthScale multiplies the node's NIC capacity.
	BandwidthScale float64
	// Cores is the number of CPU cores (default 1). Message handling runs
	// on core 0; WorkOn schedules execution work on a chosen core, which
	// is how P-SMR's parallel workers are modeled (Chapter 6).
	Cores int
}

// Stats aggregates a node's traffic counters. Congestion drops and
// injected losses are counted separately: MsgsDropped/BytesDropped are
// datagrams the receive buffer overflowed on (the congestion signal the
// throughput figures report), while MsgsLost/BytesLost are frames the
// fault layer destroyed — LossRate draws, scheduled drops, partition
// cuts, and traffic into dead nodes. Lost frames are counted at the
// node that detected the loss: the sender for partition/schedule drops,
// the receiver for LossRate and dead-process losses.
type Stats struct {
	MsgsSent     int64
	BytesSent    int64
	MsgsRecv     int64
	BytesRecv    int64
	MsgsDropped  int64
	BytesDropped int64
	MsgsLost     int64
	BytesLost    int64
	DiskBytes    int64
	DiskWrites   int64
}

// LAN is a simulated cluster. Create one with New, add nodes, subscribe
// multicast groups, then Start and Run. Optionally call Partition between
// the last Subscribe and Start to execute the cluster as parallel logical
// processes under conservative lookahead (see Partition).
type LAN struct {
	Sim     *sim.Simulator
	cfg     Config
	seed    int64
	nodes   map[proto.NodeID]*Node
	groups  map[proto.GroupID]map[proto.NodeID]bool
	members map[proto.GroupID][]proto.NodeID // sorted, invalidated on (un)subscribe
	par     *par                             // non-nil once Partition engaged

	faults     *fault.Schedule // non-nil once InstallFaults armed the fault layer
	faultNetOn bool            // faults.Net has active datagram rules
}

// New creates an empty cluster with the given parameters and seed.
func New(cfg Config, seed int64) *LAN {
	l := &LAN{
		Sim:     sim.New(seed),
		cfg:     cfg,
		seed:    seed,
		nodes:   make(map[proto.NodeID]*Node),
		groups:  make(map[proto.GroupID]map[proto.NodeID]bool),
		members: make(map[proto.GroupID][]proto.NodeID),
	}
	l.Sim.SetDispatcher(l.dispatch)
	return l
}

// Typed-event kinds for the simulation kernel. Every per-message callback in
// the hot path (transmit -> receive -> ack, datagram arrival and delivery,
// work and disk completions) is one of these, so steady-state traffic
// schedules no closures at all.
const (
	evTCPArrive    uint8 = iota + 1 // frame cleared dst's in-link: P1=msg, P2=conn, D=size
	evTCPDeliver                    // rx CPU done, hand to handler + ack: P1=msg, P2=conn, D=size
	evTCPAck                        // ack reached sender, window opens: P2=conn, D=size
	evUDPArrive                     // datagram cleared in-link: P1=msg, P2=dst node, A=src id, D=size
	evUDPDeliver                    // rx CPU done, drain buffer + hand over: P1=msg, P2=node, A=src id, D=size
	evNodeDeliver                   // loopback delivery: P1=msg, P2=node, A=src id
	evNodeFunc                      // down-gated completion (Work/DiskWrite): P1=func(), P2=node
	evNodeTimer                     // fire-and-forget protocol timer: P1=func()
	evNodeTimerArg                  // fire-and-forget timer with argument: P1=func(int64), A=arg
	evNodeFuncArg                   // down-gated Work completion with argument: P1=func(int64), P2=node, A=arg
	evFaultCrash                    // fault schedule: take the node down: P2=node, A=mode
	evFaultRestart                  // fault schedule: bring the node back: P2=node
	evFaultPart                     // fault schedule: install partition view: P1=sides map, P2=node
	evFaultHeal                     // fault schedule: clear partition view + re-pump: P2=node
)

// dispatch executes one typed event. It runs inside the kernel loop at the
// event's instant, so sim.Now() is the scheduled time.
func (l *LAN) dispatch(ev sim.TypedEvent) {
	switch ev.Kind {
	case evTCPArrive:
		ev.P2.(*conn).arrive(ev.P1.(proto.Message), int(ev.D))
	case evTCPDeliver:
		ev.P2.(*conn).deliver(ev.P1.(proto.Message), int(ev.D))
	case evTCPAck:
		ev.P2.(*conn).ack(int(ev.D))
	case evUDPArrive:
		ev.P2.(*Node).datagramArrive(proto.NodeID(ev.A), ev.P1.(proto.Message), int(ev.D))
	case evUDPDeliver:
		n := ev.P2.(*Node)
		n.udpQueued -= int(ev.D)
		if n.down {
			if n.lan.faults != nil {
				n.stats.MsgsLost++
				n.stats.BytesLost += ev.D
			}
			return
		}
		n.handler.Receive(proto.NodeID(ev.A), ev.P1.(proto.Message))
	case evNodeDeliver:
		n := ev.P2.(*Node)
		if n.down {
			return
		}
		n.handler.Receive(proto.NodeID(ev.A), ev.P1.(proto.Message))
	case evNodeFunc:
		if ev.P2.(*Node).down {
			return
		}
		ev.P1.(func())()
	case evNodeTimer:
		// Like After, timers keep firing while the node is down (I/O is
		// suppressed at the Send/Receive gates instead).
		ev.P1.(func())()
	case evNodeTimerArg:
		ev.P1.(func(int64))(ev.A)
	case evNodeFuncArg:
		if ev.P2.(*Node).down {
			return
		}
		ev.P1.(func(int64))(ev.A)
	case evFaultCrash:
		ev.P2.(*Node).crash(fault.Mode(ev.A))
	case evFaultRestart:
		ev.P2.(*Node).SetDown(false)
	case evFaultPart:
		n := ev.P2.(*Node)
		n.partSides = ev.P1.(map[proto.NodeID]int)
		n.partSide = n.partSides[n.id]
	case evFaultHeal:
		n := ev.P2.(*Node)
		n.partSides = nil
		n.partSide = 0
		n.repumpAll()
	}
}

// Config returns the cluster-wide parameters.
func (l *LAN) Config() Config { return l.cfg }

// kern is the event kernel a node schedules into: the shared sequential
// Simulator by default, or the node's own logical process once the cluster
// is partitioned. The indirection is the whole node-side cost of PDES —
// every scheduling call site is otherwise identical in both modes.
type kern interface {
	now() time.Duration
	// xcall accounts for a scheduling call the substrate defers as a
	// cross-partition record: the LP kernel logs it at its program position
	// (or, outside a window, returns its exact rank); the sequential kernel
	// never defers, so its implementation is unreachable.
	xcall() uint64
	atEvent(at time.Duration, ev sim.TypedEvent)
	afterEvent(d time.Duration, ev sim.TypedEvent)
	after(d time.Duration, fn func()) proto.Timer
}

type simKern struct{ s *sim.Simulator }

func (k simKern) now() time.Duration                            { return k.s.Now() }
func (k simKern) xcall() uint64                                 { return 0 }
func (k simKern) atEvent(at time.Duration, ev sim.TypedEvent)   { k.s.AtEvent(at, ev) }
func (k simKern) afterEvent(d time.Duration, ev sim.TypedEvent) { k.s.AfterEvent(d, ev) }
func (k simKern) after(d time.Duration, fn func()) proto.Timer {
	return timerAdapter{k.s.After(d, fn)}
}

type lpKern struct{ p *sim.LP }

func (k lpKern) now() time.Duration                            { return k.p.Now() }
func (k lpKern) xcall() uint64                                 { return k.p.NoteXCall() }
func (k lpKern) atEvent(at time.Duration, ev sim.TypedEvent)   { k.p.AtEvent(at, ev) }
func (k lpKern) afterEvent(d time.Duration, ev sim.TypedEvent) { k.p.AfterEvent(d, ev) }
func (k lpKern) after(d time.Duration, fn func()) proto.Timer {
	return lpTimerAdapter{k.p.After(d, fn)}
}

// Cross-partition record kinds.
const (
	xTCP uint8 = iota + 1 // reliable-channel frame awaiting in-link admission
	xUDP                  // datagram frame awaiting in-link admission
	xAck                  // TCP ack returning to the sender's partition
)

// xrec is one deferred inter-node interaction. In partitioned mode a send
// charges only sender-owned resources inline; the receiver-side half —
// in-link admission and scheduling into the destination's heap — is
// deferred as an xrec and applied at the next window barrier, at the exact
// position the window replay assigns its scheduling call (see
// sim.ReplayWindow), which reproduces the sequential kernel's global send
// order and in-link arithmetic.
type xrec struct {
	at time.Duration // arrival at dst's in-link (xTCP/xUDP) or ack firing time (xAck)
	// rank is the call's exact sequential position when the send happened
	// outside a window (handler Start, code between runs); 0 for in-window
	// sends, whose position the barrier replay determines.
	rank uint64
	size int
	kind uint8
	src  proto.NodeID // xUDP: sending node (delivered to the handler)
	dst  *Node        // xUDP: receiving node
	c    *conn        // xTCP/xAck: the channel
	msg  proto.Message
}

// par is the partitioned-execution state of a LAN.
type par struct {
	p   *sim.Par
	lps []*sim.LP
	seq uint64   // shared rank counter: the sequential kernel's seq, replayed
	out [][]xrec // per-source-LP outboxes, in LP call order
	off []int    // per-LP index of the first in-window record, per barrier
}

// Partition splits the cluster into nLP logical processes executed in
// parallel under conservative lookahead: every window, each LP executes all
// events below min(next event across LPs) + Latency on its own goroutine,
// and inter-node traffic is exchanged at window barriers. lpOf maps a node
// id to its LP in [0, nLP); out-of-range (or nil lpOf) means LP 0.
//
// Call after every AddNode/Subscribe and before Start. Determinism matches
// the sequential kernel — outputs are byte-identical — because the one-way
// wire latency lower-bounds every inter-node effect, so barrier-injected
// events always land beyond the window that sent them, ordered by their
// send instant.
//
// Partition reports whether partitioning engaged. It declines (and the
// cluster runs sequentially, with identical results) when nLP < 2 or
// when the configuration has no lookahead (Latency <= 0). Lossy and
// faulted configurations partition fine: LossRate and the fault layer's
// drop/dup/delay rules draw from per-node RNG streams whose consumption
// order is identical in sequential and parallel runs.
func (l *LAN) Partition(nLP int, lpOf func(proto.NodeID) int) bool {
	if l.par != nil {
		panic("lan: Partition called twice")
	}
	if nLP < 2 || l.cfg.Latency <= 0 {
		return false
	}
	pr := &par{
		lps: make([]*sim.LP, nLP),
		out: make([][]xrec, nLP),
		off: make([]int, nLP),
	}
	for i := range pr.lps {
		pr.lps[i] = sim.NewLP()
		pr.lps[i].SetDispatcher(l.dispatch)
		pr.lps[i].SetSeqSource(&pr.seq)
	}
	for id, n := range l.nodes {
		lp := 0
		if lpOf != nil {
			lp = lpOf(id)
		}
		if lp < 0 || lp >= nLP {
			lp = 0
		}
		n.lp = lp
		n.k = lpKern{pr.lps[lp]}
	}
	l.par = pr
	pr.p = &sim.Par{LPs: pr.lps, Horizon: l.cfg.Latency, Barrier: l.drainOutboxes}
	return true
}

// Partitions reports the number of logical processes the cluster runs as
// (0 when sequential).
func (l *LAN) Partitions() int {
	if l.par == nil {
		return 0
	}
	return len(l.par.lps)
}

// Overlap reports the mean number of LPs that executed events per
// synchronization window — the concurrency the partitioning exposes, and
// the speedup bound on a multi-core host. 0 when sequential.
func (l *LAN) Overlap() float64 {
	if l.par == nil {
		return 0
	}
	return l.par.p.Overlap()
}

// ParStats reports (windows, activeLPsSummed, eventsExecuted) accumulated
// across partitioned runs; zeros when sequential.
func (l *LAN) ParStats() (windows, activeSum, eventSum uint64) {
	if l.par == nil {
		return 0, 0, 0
	}
	return l.par.p.Windows, l.par.p.ActiveSum, l.par.p.EventSum
}

// drainOutboxes is the Par barrier: single-threaded between windows, it
// applies every partition's deferred inter-node records in their exact
// sequential positions. Records produced outside a window (handler Start,
// code between runs) carry pre-assigned ranks and always form a prefix of
// their outbox — the previous window's records were consumed by the previous
// barrier — so they apply first, in rank order. In-window records then apply
// at the positions the window replay assigns them, interleaved with the
// ranking of every LP-local scheduling call. In-link admissions therefore
// happen in the sequential kernel's global order, reproducing its
// reservation arithmetic, and each injected event carries its exact rank.
func (l *LAN) drainOutboxes() {
	pr := l.par
	var pre []*xrec
	for i := range pr.out {
		n := 0
		for j := range pr.out[i] {
			if pr.out[i][j].rank == 0 {
				break
			}
			pre = append(pre, &pr.out[i][j])
			n++
		}
		pr.off[i] = n
	}
	if len(pre) > 0 {
		sort.Slice(pre, func(i, j int) bool { return pre[i].rank < pre[j].rank })
		for _, r := range pre {
			l.applyXrec(r, r.rank)
		}
	}
	sim.ReplayWindow(pr.lps, func(lp, x int, rank uint64) {
		l.applyXrec(&pr.out[lp][pr.off[lp]+x], rank)
	})
	for i := range pr.out {
		s := pr.out[i]
		for j := range s {
			s[j] = xrec{} // drop message/conn references before reuse
		}
		pr.out[i] = s[:0]
	}
}

// applyXrec performs the receiver-side half of one deferred interaction, at
// its replay position: in-link admission (arrival records) and injection
// into the destination LP with the call's exact rank.
func (l *LAN) applyXrec(r *xrec, rank uint64) {
	pr := l.par
	switch r.kind {
	case xTCP:
		dst := r.c.to
		rxEnd := admit(dst, r.at, r.size)
		pr.lps[dst.lp].Inject(rxEnd, rank,
			sim.TypedEvent{Kind: evTCPArrive, D: int64(r.size), P1: r.msg, P2: r.c})
	case xUDP:
		rxEnd := admit(r.dst, r.at, r.size)
		pr.lps[r.dst.lp].Inject(rxEnd, rank,
			sim.TypedEvent{Kind: evUDPArrive, A: int64(r.src), D: int64(r.size), P1: r.msg, P2: r.dst})
	case xAck:
		pr.lps[r.c.from.lp].Inject(r.at, rank,
			sim.TypedEvent{Kind: evTCPAck, D: int64(r.size), P2: r.c})
	}
}

// InstallFaults arms the fault layer: the schedule's events fire during
// Run (event times are absolute simulated instants), its Net rules
// apply to every datagram, and the LAN switches from the legacy crash
// model to the faithful one — a frozen node holds TCP frames in its
// socket buffer and delivers them at recovery, a dead node resets
// connections (frames lost, window credit returned) and sheds volatile
// handler state via proto.VolatileLoser, and recovery re-pumps stalled
// connections. Call between the last AddNode/Subscribe/Partition and
// Start; installing an empty schedule enables the faithful semantics
// with no injected faults. With no schedule installed the fault layer
// is inert and the LAN behaves exactly as it always has.
func (l *LAN) InstallFaults(s *fault.Schedule) {
	if s == nil {
		return
	}
	if l.faults != nil {
		panic("lan: InstallFaults called twice")
	}
	l.faults = s
	l.faultNetOn = s.Net.Enabled()
}

// Faulted reports whether a fault schedule is installed.
func (l *LAN) Faulted() bool { return l.faults != nil }

// scheduleFaults schedules every fault event on its target node's own
// kernel, so in partitioned mode each event fires on the LP that owns
// the state it mutates. Partition and heal events fan out to every node
// (ascending id), each updating its own connectivity view at the same
// instant. Call events ride the ordinary down-gated completion event,
// so a call aimed at a crashed node is silently skipped.
func (l *LAN) scheduleFaults() {
	ids := make([]proto.NodeID, 0, len(l.nodes))
	for id := range l.nodes {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	for _, ev := range l.faults.Events() {
		switch ev.Kind {
		case fault.CrashEvent:
			if n := l.nodes[ev.Node]; n != nil {
				n.k.atEvent(ev.At, sim.TypedEvent{Kind: evFaultCrash, A: int64(ev.Mode), P2: n})
			}
		case fault.RestartEvent:
			if n := l.nodes[ev.Node]; n != nil {
				n.k.atEvent(ev.At, sim.TypedEvent{Kind: evFaultRestart, P2: n})
			}
		case fault.PartitionEvent:
			for _, id := range ids {
				n := l.nodes[id]
				n.k.atEvent(ev.At, sim.TypedEvent{Kind: evFaultPart, P1: ev.Sides, P2: n})
			}
		case fault.HealEvent:
			for _, id := range ids {
				n := l.nodes[id]
				n.k.atEvent(ev.At, sim.TypedEvent{Kind: evFaultHeal, P2: n})
			}
		case fault.CallEvent:
			if n := l.nodes[ev.Node]; n != nil && ev.Fn != nil {
				n.k.atEvent(ev.At, sim.TypedEvent{Kind: evNodeFunc, P1: ev.Fn, P2: n})
			}
		}
	}
}

// AddNode installs handler h on a new node. It panics if id already exists
// (a configuration bug, not a runtime condition).
func (l *LAN) AddNode(id proto.NodeID, h proto.Handler) *Node {
	return l.AddNodeWithConfig(id, h, NodeConfig{CPUScale: 1, BandwidthScale: 1})
}

// AddNodeWithConfig installs handler h on a new node with scaled resources.
func (l *LAN) AddNodeWithConfig(id proto.NodeID, h proto.Handler, nc NodeConfig) *Node {
	if _, ok := l.nodes[id]; ok {
		panic(fmt.Sprintf("lan: duplicate node %d", id))
	}
	if nc.CPUScale <= 0 {
		nc.CPUScale = 1
	}
	if nc.BandwidthScale <= 0 {
		nc.BandwidthScale = 1
	}
	if nc.Cores <= 0 {
		nc.Cores = 1
	}
	n := &Node{
		id:       id,
		lan:      l,
		handler:  h,
		nc:       nc,
		k:        simKern{l.Sim},
		coreFree: make([]time.Duration, nc.Cores),
		conns:    make(map[proto.NodeID]*conn),
		// Per-node RNG stream for LossRate and injected datagram faults:
		// draws happen on the node's own LP, so lossy and faulted runs
		// replay byte-identically under Partition.
		rng: rand.New(rand.NewSource(l.seed ^ int64(uint64(id+1)*0x9E3779B97F4A7C15))),
	}
	l.nodes[id] = n
	return n
}

// Node returns the node with the given id, or nil.
func (l *LAN) Node(id proto.NodeID) *Node { return l.nodes[id] }

// Nodes returns the number of nodes.
func (l *LAN) Nodes() int { return len(l.nodes) }

// Subscribe adds node id to multicast group g.
func (l *LAN) Subscribe(g proto.GroupID, id proto.NodeID) {
	set := l.groups[g]
	if set == nil {
		set = make(map[proto.NodeID]bool)
		l.groups[g] = set
	}
	set[id] = true
	delete(l.members, g) // invalidate the sorted-member cache
}

// Unsubscribe removes node id from multicast group g.
func (l *LAN) Unsubscribe(g proto.GroupID, id proto.NodeID) {
	delete(l.groups[g], id)
	delete(l.members, g)
}

// sortNodeIDs orders ids ascending; every deterministic iteration over node
// sets (multicast fan-out, Start order) funnels through it.
func sortNodeIDs(ids []proto.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// groupMembers returns group g's subscribers in ascending id order, so
// multicast fan-out is deterministic. The sorted slice is cached until the
// group's membership changes; callers must not retain or mutate it.
func (l *LAN) groupMembers(g proto.GroupID) []proto.NodeID {
	if ids, ok := l.members[g]; ok {
		return ids
	}
	if l.par != nil {
		// Partitioned mode: the cache was sealed at Start and is read from
		// LP goroutines; a group missing from it has no subscribers. Never
		// mutate the shared map here.
		return nil
	}
	set := l.groups[g]
	ids := make([]proto.NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	l.members[g] = ids
	return ids
}

// Start invokes every handler's Start callback. Call once, before Run.
func (l *LAN) Start() {
	if l.par != nil {
		// Seal the sorted-member cache: multicast fan-out runs on LP
		// goroutines and must never write the shared map. Populate it
		// directly — groupMembers itself refuses to mutate once l.par is
		// set, so the seal must bypass its miss path.
		for g, set := range l.groups {
			ids := make([]proto.NodeID, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
			sortNodeIDs(ids)
			l.members[g] = ids
		}
	}
	// Fault events are scheduled before any handler starts, so their
	// kernel ranks precede all protocol traffic deterministically.
	if l.faults != nil {
		l.scheduleFaults()
	}
	// Deterministic order: ascending node id.
	ids := make([]proto.NodeID, 0, len(l.nodes))
	for id := range l.nodes {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	for _, id := range ids {
		n := l.nodes[id]
		n.handler.Start(n)
	}
}

// Run advances the simulation by d of virtual time.
func (l *LAN) Run(d time.Duration) {
	deadline := l.Sim.Now() + d
	if l.par != nil {
		l.par.p.RunUntil(deadline)
	}
	// Sequential execution — and, in partitioned mode, keeping the shared
	// clock (the Now/Rand anchor read between runs) in step; the shared
	// heap is empty then, since every node schedules into its LP.
	l.Sim.RunUntil(deadline)
}

// Node is one simulated machine. It implements proto.Env for its handler.
type Node struct {
	id      proto.NodeID
	lan     *LAN
	handler proto.Handler
	nc      NodeConfig

	k  kern // event kernel: the shared Simulator, or this node's LP
	lp int  // logical-process index; 0 in sequential mode

	down bool

	// Fault-layer state, meaningful only once InstallFaults armed it.
	frozen       bool                 // down as a paused process: TCP frames held, not lost
	lostVolatile bool                 // down as a dead process: reset + VolatileLoser on restart
	partSides    map[proto.NodeID]int // current partition view (nil = fully connected)
	partSide     int                  // this node's side in partSides
	held         []heldFrame          // TCP frames parked while frozen, in arrival order
	rng          *rand.Rand           // per-node stream: LossRate + injected datagram faults

	outFree  time.Duration   // instant the out-link becomes idle
	inFree   time.Duration   // instant the in-link becomes idle
	coreFree []time.Duration // instant each CPU core becomes idle
	cpuBusy  time.Duration   // accumulated CPU busy time, all cores
	diskFree time.Duration   // instant the disk becomes idle

	udpQueued    int // bytes in the datagram receive buffer
	udpQueuedMax int

	conns map[proto.NodeID]*conn

	stats Stats
}

var (
	_ proto.Env          = (*Node)(nil)
	_ proto.FreeTimerEnv = (*Node)(nil)
	_ proto.FreeWorkEnv  = (*Node)(nil)
	_ proto.GroupSizer   = (*Node)(nil)
)

// conn models one reliable FIFO channel with a bounded in-flight window.
// The send queue is a power-of-two ring buffer: popping advances head
// instead of re-slicing, so the backing array is reused forever and drained
// messages are released immediately.
type conn struct {
	from, to   *Node
	buf        []proto.Message // ring storage, len is a power of two
	head, tail uint32          // pop/push cursors; tail-head = queued count
	inflight   int
}

// heldFrame is one TCP frame parked in a frozen node's socket buffer,
// waiting for the process to thaw. delivered records which leg the
// freeze interrupted: false means the frame had just cleared the
// in-link (resume with receive accounting + CPU), true means receive
// CPU was already booked (resume straight at the handler + ack).
type heldFrame struct {
	c         *conn
	m         proto.Message
	size      int
	delivered bool
}

func (c *conn) queued() int { return int(c.tail - c.head) }

func (c *conn) push(m proto.Message) {
	if c.queued() == len(c.buf) {
		c.grow()
	}
	c.buf[c.tail&uint32(len(c.buf)-1)] = m
	c.tail++
}

func (c *conn) pop() proto.Message {
	i := c.head & uint32(len(c.buf)-1)
	m := c.buf[i]
	c.buf[i] = nil // release the reference as soon as it is on the wire
	c.head++
	return m
}

func (c *conn) grow() {
	n := len(c.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]proto.Message, n)
	for i, cnt := uint32(0), uint32(c.queued()); i < cnt; i++ {
		nb[i] = c.buf[(c.head+i)&uint32(len(c.buf)-1)]
	}
	c.tail = c.tail - c.head
	c.head = 0
	c.buf = nb
}

// ID implements proto.Env.
func (n *Node) ID() proto.NodeID { return n.id }

// Now implements proto.Env. In partitioned mode this is the node's LP
// clock, which trails the global window by less than the lookahead horizon.
func (n *Node) Now() time.Duration { return n.k.now() }

// GroupSize implements proto.GroupSizer: the number of subscribers of g.
func (n *Node) GroupSize(g proto.GroupID) int { return len(n.lan.groupMembers(g)) }

// Rand implements proto.Env.
func (n *Node) Rand() *rand.Rand { return n.lan.Sim.Rand() }

// Stats returns a copy of the node's traffic counters.
func (n *Node) Stats() Stats { return n.stats }

// CPUBusy returns total CPU busy time accumulated so far.
func (n *Node) CPUBusy() time.Duration { return n.cpuBusy }

// BufferPeak returns the high-water mark of the datagram receive buffer.
func (n *Node) BufferPeak() int { return n.udpQueuedMax }

// BufferQueued returns the bytes currently queued in the datagram buffer.
func (n *Node) BufferQueued() int { return n.udpQueued }

// SetDown marks the node crashed (true) or recovered (false).
//
// With no fault schedule installed (the legacy model, which every
// pre-fault golden pins) a down node sends nothing and silently
// discards everything addressed to it — including the window credit of
// TCP frames in flight — and recovery does not restart stalled pumps.
//
// With a schedule installed (InstallFaults), SetDown(true) freezes the
// process: TCP frames addressed to it are held like a paused process's
// socket buffer (senders stall on window backpressure, losslessly), and
// SetDown(false) delivers the held frames in arrival order and re-pumps
// every connection with queued messages. Crashes that destroy volatile
// state (connection resets, proto.VolatileLoser) are expressed as
// fault.Lose events in the schedule, not through SetDown.
func (n *Node) SetDown(down bool) {
	if down {
		n.down = true
		if n.lan.faults != nil {
			n.frozen = true
		}
		return
	}
	n.down = false
	if n.lan.faults != nil {
		if n.lostVolatile {
			n.restartLose()
		} else {
			n.thaw()
		}
	}
	n.frozen = false
}

// crash takes the node down in the given fault mode (the evFaultCrash
// dispatch target).
func (n *Node) crash(m fault.Mode) {
	n.down = true
	if m == fault.Lose {
		n.frozen = false
		n.lostVolatile = true
	} else {
		n.frozen = true
	}
}

// thaw is the freeze-recovery path: frames the frozen process's socket
// buffer held are resumed in arrival order — frames still before their
// receive-CPU booking go through the normal arrive accounting, frames
// the freeze caught between CPU completion and hand-over go straight to
// the handler with their ack — then stalled connections re-pump.
func (n *Node) thaw() {
	held := n.held
	n.held = nil
	for i := range held {
		f := &held[i]
		if f.delivered {
			n.handler.Receive(f.c.from.id, f.m)
			f.c.sendAck(f.size)
		} else {
			n.stats.MsgsRecv++
			n.stats.BytesRecv += int64(f.size)
			done := n.reserveCPU(n.k.now(), n.cpuCost(f.size))
			n.k.atEvent(done, sim.TypedEvent{Kind: evTCPDeliver, D: int64(f.size), P1: f.m, P2: f.c})
		}
		held[i] = heldFrame{}
	}
	n.repumpAll()
}

// restartLose is the dead-process recovery path: connections to the
// node were reset while it was down (anything a preceding freeze held
// is discarded now, returning its window credit), its own queued-but-
// unsent messages are gone, and the handler sheds volatile soft state
// via proto.VolatileLoser if it implements it.
func (n *Node) restartLose() {
	n.lostVolatile = false
	held := n.held
	n.held = nil
	for i := range held {
		f := &held[i]
		n.stats.MsgsLost++
		n.stats.BytesLost += int64(f.size)
		f.c.sendAck(f.size)
		held[i] = heldFrame{}
	}
	for _, id := range n.sortedConnIDs() {
		c := n.conns[id]
		for c.queued() > 0 {
			m := c.pop()
			n.stats.MsgsLost++
			n.stats.BytesLost += int64(m.Size())
		}
	}
	if vl, ok := n.handler.(proto.VolatileLoser); ok {
		vl.LoseVolatile()
	}
}

// repumpAll restarts transmission on every connection with queued
// messages, in ascending destination order — the recovery half of the
// faithful crash model (conn.ack deliberately skips pumping while the
// sender is down; this is what resumes the queues afterwards).
func (n *Node) repumpAll() {
	for _, id := range n.sortedConnIDs() {
		if c := n.conns[id]; c.queued() > 0 {
			n.pump(c)
		}
	}
}

// sortedConnIDs returns the destinations this node has connections to,
// ascending, so recovery-time iteration is deterministic.
func (n *Node) sortedConnIDs() []proto.NodeID {
	if len(n.conns) == 0 {
		return nil
	}
	ids := make([]proto.NodeID, 0, len(n.conns))
	for id := range n.conns {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	return ids
}

// reachable reports whether traffic from this node to `to` crosses the
// current partition view (trivially true when no partition is active).
func (n *Node) reachable(to proto.NodeID) bool {
	return n.partSides == nil || n.partSides[to] == n.partSide
}

// netFault draws one datagram's injected fate — drop, duplicate, extra
// delay — from the sender's own RNG stream. The draw order is fixed
// (drop first, short-circuiting the rest) so schedules replay
// identically in sequential and partitioned runs.
func (n *Node) netFault() (drop, dup bool, delay time.Duration) {
	nf := &n.lan.faults.Net
	if nf.DropRate > 0 && n.rng.Float64() < nf.DropRate {
		return true, false, 0
	}
	if nf.DupRate > 0 && n.rng.Float64() < nf.DupRate {
		dup = true
	}
	if nf.DelayRate > 0 && nf.DelayMax > 0 && n.rng.Float64() < nf.DelayRate {
		delay = time.Duration(n.rng.Int63n(int64(nf.DelayMax)))
	}
	return false, dup, delay
}

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down }

// Handler returns the installed protocol actor.
func (n *Node) Handler() proto.Handler { return n.handler }

func (n *Node) bandwidth() float64 {
	return n.lan.cfg.Bandwidth * n.nc.BandwidthScale
}

// cpuCost returns the processing cost of a message of the given size on
// this node's CPU.
func (n *Node) cpuCost(size int) time.Duration {
	c := n.lan.cfg.CPUPerMsg + time.Duration(size)*n.lan.cfg.CPUPerByte
	return time.Duration(float64(c) / n.nc.CPUScale)
}

// reserveCPU books d of CPU on core 0 (the message-handling core) starting
// no earlier than from, and returns the instant the booking completes.
func (n *Node) reserveCPU(from, d time.Duration) time.Duration {
	return n.reserveCore(0, from, d)
}

// reserveCore books d of CPU on the given core.
func (n *Node) reserveCore(core int, from, d time.Duration) time.Duration {
	if core < 0 || core >= len(n.coreFree) {
		core = 0
	}
	start := max(from, n.coreFree[core])
	n.coreFree[core] = start + d
	n.cpuBusy += d
	return n.coreFree[core]
}

// txTime returns the serialization delay of size bytes on a link of bw bits/s.
func txTime(size int, bw float64) time.Duration {
	return time.Duration(float64(size) * 8 / bw * float64(time.Second))
}

// sendOut charges the sender-owned half of a transmission — sending CPU and
// the out-link serialization — and returns the instant the frame's last bit
// reaches the receiver's in-link (propagation included). Multicast calls it
// once per group; unicast once per message. Only n's own state is touched,
// so it is safe inside a partition window.
func (n *Node) sendOut(size int) time.Duration {
	now := n.k.now()
	cpuDone := n.reserveCPU(now, n.cpuCost(size))
	start := max(cpuDone, n.outFree)
	n.outFree = start + txTime(size, n.bandwidth())
	return n.outFree + n.lan.cfg.Latency
}

// admit reserves dst's in-link for a frame arriving at arrive and returns
// the instant its last bit clears the link. This is the one receiver-side
// coupling of a send: sequentially it runs inline after sendOut; in
// partitioned mode it is deferred to the window barrier, where the merged
// order across partitions reproduces the sequential reservation order.
func admit(dst *Node, arrive time.Duration, size int) time.Duration {
	rxStart := max(arrive, dst.inFree)
	dst.inFree = rxStart + txTime(size, dst.bandwidth())
	return dst.inFree
}

// Send implements proto.Env: reliable FIFO channel with windowed
// backpressure (TCP).
func (n *Node) Send(to proto.NodeID, m proto.Message) {
	if n.down {
		return
	}
	dst := n.lan.nodes[to]
	if dst == nil {
		return
	}
	if dst == n {
		n.deliverLocal(m)
		return
	}
	c := n.conns[to]
	if c == nil {
		c = &conn{from: n, to: dst}
		n.conns[to] = c
	}
	c.push(m)
	n.pump(c)
}

// pump transmits queued messages on c while window space is available. The
// whole transmit -> receive -> ack chain runs on typed events: no closures
// are allocated per message.
func (n *Node) pump(c *conn) {
	if !n.reachable(c.to.id) {
		return // partition: frames hold at the sender, re-pumped on heal
	}
	for c.queued() > 0 {
		m := c.buf[c.head&uint32(len(c.buf)-1)]
		size := m.Size()
		if c.inflight > 0 && c.inflight+size > n.lan.cfg.TCPBuf {
			return // window full; resumes on ack
		}
		c.pop()
		c.inflight += size
		n.stats.MsgsSent++
		n.stats.BytesSent += int64(size)
		arrive := n.sendOut(size)
		if pr := n.lan.par; pr != nil {
			pr.out[n.lp] = append(pr.out[n.lp],
				xrec{kind: xTCP, at: arrive, rank: n.k.xcall(), size: size, c: c, msg: m})
		} else {
			rxEnd := admit(c.to, arrive, size)
			n.k.atEvent(rxEnd, sim.TypedEvent{Kind: evTCPArrive, D: int64(size), P1: m, P2: c})
		}
	}
}

// arrive runs when a frame's last bit clears the receiver's in-link.
func (c *conn) arrive(m proto.Message, size int) {
	dst := c.to
	if dst.down {
		if dst.lan.faults == nil {
			// Legacy model: connection to a dead peer — window space never
			// frees; messages already sent are lost.
			return
		}
		if dst.frozen {
			// Paused process: the frame sits in its socket buffer. No ack,
			// so the sender's window fills and stalls it — backpressure,
			// not loss. Delivered on thaw.
			dst.held = append(dst.held, heldFrame{c: c, m: m, size: size})
			return
		}
		// Dead process: connection reset. The frame is lost but its
		// window credit returns, so the sender's window is whole once the
		// peer recovers.
		dst.stats.MsgsLost++
		dst.stats.BytesLost += int64(size)
		c.sendAck(size)
		return
	}
	dst.stats.MsgsRecv++
	dst.stats.BytesRecv += int64(size)
	done := dst.reserveCPU(dst.k.now(), dst.cpuCost(size))
	dst.k.atEvent(done, sim.TypedEvent{Kind: evTCPDeliver, D: int64(size), P1: m, P2: c})
}

// deliver runs when the receiver's CPU finishes processing the message: it
// hands the message to the handler and sends the ack back.
func (c *conn) deliver(m proto.Message, size int) {
	dst := c.to
	if dst.down {
		if dst.lan.faults == nil {
			return
		}
		if dst.frozen {
			dst.held = append(dst.held, heldFrame{c: c, m: m, size: size, delivered: true})
			return
		}
		dst.stats.MsgsLost++
		dst.stats.BytesLost += int64(size)
		c.sendAck(size)
		return
	}
	dst.handler.Receive(c.from.id, m)
	c.sendAck(size)
}

// sendAck returns size bytes of window credit to the sender. The ack
// travels one wire latency; when the sender lives in another partition
// it crosses at the barrier (its firing time is a full latency away, so
// it always lands beyond the window).
func (c *conn) sendAck(size int) {
	dst := c.to
	ack := dst.k.now() + dst.lan.cfg.Latency
	if pr := dst.lan.par; pr != nil && c.from.lp != dst.lp {
		pr.out[dst.lp] = append(pr.out[dst.lp],
			xrec{kind: xAck, at: ack, rank: dst.k.xcall(), size: size, c: c})
	} else {
		dst.k.atEvent(ack, sim.TypedEvent{Kind: evTCPAck, D: int64(size), P2: c})
	}
}

// ack opens window space at the sender and restarts its pump.
func (c *conn) ack(size int) {
	c.inflight -= size
	if !c.from.down {
		c.from.pump(c)
	}
}

// SendUDP implements proto.Env: lossy datagram. Size is computed once and
// carried in the typed event, so the arrival leg does not recompute it.
func (n *Node) SendUDP(to proto.NodeID, m proto.Message) {
	if n.down {
		return
	}
	dst := n.lan.nodes[to]
	if dst == nil {
		return
	}
	size := m.Size()
	n.stats.MsgsSent++
	n.stats.BytesSent += int64(size)
	if dst == n {
		n.deliverLocal(m)
		return
	}
	arrive := n.sendOut(size)
	sends := 1
	if n.lan.faults != nil {
		// The out-link was charged either way — the NIC doesn't know the
		// network will eat the frame.
		if !n.reachable(to) {
			n.stats.MsgsLost++
			n.stats.BytesLost += int64(size)
			return
		}
		if n.lan.faultNetOn {
			drop, dup, delay := n.netFault()
			if drop {
				n.stats.MsgsLost++
				n.stats.BytesLost += int64(size)
				return
			}
			arrive += delay
			if dup {
				sends = 2
			}
		}
	}
	for i := 0; i < sends; i++ {
		if pr := n.lan.par; pr != nil {
			pr.out[n.lp] = append(pr.out[n.lp],
				xrec{kind: xUDP, at: arrive, rank: n.k.xcall(), size: size, src: n.id, dst: dst, msg: m})
		} else {
			rxEnd := admit(dst, arrive, size)
			n.k.atEvent(rxEnd, sim.TypedEvent{Kind: evUDPArrive, A: int64(n.id), D: int64(size), P1: m, P2: dst})
		}
	}
}

// Multicast implements proto.Env: switch-replicated datagram. The sender's
// out-link carries the frame once; each subscriber's in-link carries it.
func (n *Node) Multicast(g proto.GroupID, m proto.Message) {
	if n.down {
		return
	}
	size := m.Size()
	n.stats.MsgsSent++
	n.stats.BytesSent += int64(size)
	// The frame leaves the sender once, after CPU cost; every member shares
	// the same arrival instant at its in-link.
	arrive := n.sendOut(size)
	pr := n.lan.par
	faulted := n.lan.faults != nil
	for _, id := range n.lan.groupMembers(g) {
		dst := n.lan.nodes[id]
		if dst == nil {
			continue
		}
		if dst == n {
			n.deliverLocal(m)
			continue
		}
		at := arrive
		sends := 1
		if faulted {
			// Per-member fate: the switch replicated the frame, but each
			// receiver's copy crosses its own link. Draw order follows the
			// sorted member loop, so it is identical under -par N.
			if !n.reachable(id) {
				n.stats.MsgsLost++
				n.stats.BytesLost += int64(size)
				continue
			}
			if n.lan.faultNetOn {
				drop, dup, delay := n.netFault()
				if drop {
					n.stats.MsgsLost++
					n.stats.BytesLost += int64(size)
					continue
				}
				at += delay
				if dup {
					sends = 2
				}
			}
		}
		for i := 0; i < sends; i++ {
			if pr != nil {
				// Per-member records are appended — and their calls logged — in
				// sorted member order, so the replay admits them consecutively,
				// the same in-link reservation order as the sequential loop.
				pr.out[n.lp] = append(pr.out[n.lp],
					xrec{kind: xUDP, at: at, rank: n.k.xcall(), size: size, src: n.id, dst: dst, msg: m})
			} else {
				rxEnd := admit(dst, at, size)
				n.k.atEvent(rxEnd, sim.TypedEvent{Kind: evUDPArrive, A: int64(n.id), D: int64(size), P1: m, P2: dst})
			}
		}
	}
}

// datagramArrive applies the receive-buffer admission test and, if the frame
// is admitted, schedules handler processing on the CPU. size was computed at
// send time and rode in the typed event.
func (n *Node) datagramArrive(from proto.NodeID, m proto.Message, size int) {
	if n.down {
		if n.lan.faults != nil {
			// A dead (or frozen — we don't model its kernel buffering
			// datagrams it will never drain) process loses the frame.
			n.stats.MsgsLost++
			n.stats.BytesLost += int64(size)
		}
		return
	}
	if n.lan.cfg.LossRate > 0 && n.rng.Float64() < n.lan.cfg.LossRate {
		n.stats.MsgsLost++
		n.stats.BytesLost += int64(size)
		return
	}
	if n.udpQueued+size > n.lan.cfg.UDPBuf {
		n.stats.MsgsDropped++
		n.stats.BytesDropped += int64(size)
		return
	}
	n.stats.MsgsRecv++
	n.stats.BytesRecv += int64(size)
	n.udpQueued += size
	if n.udpQueued > n.udpQueuedMax {
		n.udpQueuedMax = n.udpQueued
	}
	done := n.reserveCPU(n.k.now(), n.cpuCost(size))
	n.k.atEvent(done, sim.TypedEvent{Kind: evUDPDeliver, A: int64(from), D: int64(size), P1: m, P2: n})
}

// deliverLocal hands a self-addressed message to the handler, paying CPU
// but no network resources (loopback).
func (n *Node) deliverLocal(m proto.Message) {
	done := n.reserveCPU(n.k.now(), n.cpuCost(m.Size()))
	n.k.atEvent(done, sim.TypedEvent{Kind: evNodeDeliver, A: int64(n.id), P1: m, P2: n})
}

// After implements proto.Env. Timer callbacks keep firing while the node is
// down — SetDown models a frozen/partitioned process whose I/O is suppressed
// (Send/Multicast/receive are all gated on down), so periodic protocol
// timers resume their work transparently at recovery.
func (n *Node) After(d time.Duration, fn func()) proto.Timer {
	return n.k.after(d, fn)
}

type timerAdapter struct{ t sim.Timer }

func (a timerAdapter) Cancel() { a.t.Cancel() }

type lpTimerAdapter struct{ t sim.LPTimer }

func (a lpTimerAdapter) Cancel() { a.t.Cancel() }

// AfterFree implements proto.FreeTimerEnv: the callback is carried in a
// typed kernel event, so scheduling performs no allocation (no closure, no
// Timer box). Like After, the timer fires even while the node is down.
func (n *Node) AfterFree(d time.Duration, fn func()) {
	n.k.afterEvent(d, sim.TypedEvent{Kind: evNodeTimer, P1: fn})
}

// AfterFreeArg implements proto.FreeTimerEnv; arg rides in the event's
// scalar field, so per-instance timers need no capturing closure.
func (n *Node) AfterFreeArg(d time.Duration, fn func(int64), arg int64) {
	n.k.afterEvent(d, sim.TypedEvent{Kind: evNodeTimerArg, P1: fn, A: arg})
}

// Work implements proto.Env: occupy core 0 for d, then run fn.
func (n *Node) Work(d time.Duration, fn func()) {
	n.WorkOn(0, d, fn)
}

// WorkOn occupies the given core for d, then runs fn. P-SMR workers each
// own a core.
func (n *Node) WorkOn(core int, d time.Duration, fn func()) {
	d = time.Duration(float64(d) / n.nc.CPUScale)
	done := n.reserveCore(core, n.k.now(), d)
	n.k.atEvent(done, sim.TypedEvent{Kind: evNodeFunc, P1: fn, P2: n})
}

// WorkArg implements proto.FreeWorkEnv: Work on core 0 with a scalar
// argument carried in the typed event — no per-call closure.
func (n *Node) WorkArg(d time.Duration, fn func(int64), arg int64) {
	d = time.Duration(float64(d) / n.nc.CPUScale)
	done := n.reserveCore(0, n.k.now(), d)
	n.k.atEvent(done, sim.TypedEvent{Kind: evNodeFuncArg, P1: fn, P2: n, A: arg})
}

// DiskWrite implements proto.Env: synchronous sequential write of size
// bytes, then fn. Writes queue behind each other on the device.
func (n *Node) DiskWrite(size int, fn func()) {
	cfg := n.lan.cfg
	d := cfg.DiskLatency + txTime(size, cfg.DiskBandwidth)
	start := max(n.k.now(), n.diskFree)
	n.diskFree = start + d
	n.stats.DiskBytes += int64(size)
	n.stats.DiskWrites++
	n.k.atEvent(n.diskFree, sim.TypedEvent{Kind: evNodeFunc, P1: fn, P2: n})
}
