// Package lan is a discrete-event model of the paper's experimental testbed:
// a cluster of commodity servers on a gigabit Ethernet switch.
//
// The model captures the four resources that shape every result in the
// paper's evaluation sections:
//
//   - link bandwidth: each NIC is full-duplex with separate in/out
//     serialization queues; ip-multicast is replicated by the switch, so a
//     multicast sender pays the frame once while a unicast one-to-many
//     sender pays it once per receiver;
//   - socket buffers: datagrams arriving at a full receive buffer are
//     dropped (packet loss); TCP-like channels instead apply backpressure
//     through a bounded in-flight window;
//   - CPU: each node processes sends and receives serially at a configurable
//     per-message + per-byte cost, which is what saturates a Paxos
//     coordinator before the wire does;
//   - disk: synchronous stable-storage writes are bounded by a sequential
//     device bandwidth.
//
// Defaults are calibrated to the paper's hardware (1 Gbps, 0.1 ms RTT,
// ~270 Mbps effective synchronous write bandwidth).
package lan

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Config holds cluster-wide resource parameters. The zero value is not
// useful; start from DefaultConfig.
type Config struct {
	// Bandwidth is the NIC capacity in bits per second, per direction.
	Bandwidth float64
	// Latency is the one-way wire propagation delay (RTT/2).
	Latency time.Duration
	// UDPBuf is the per-node datagram receive buffer in bytes. Frames
	// arriving while the buffer is full are dropped.
	UDPBuf int
	// TCPBuf is the per-connection window in bytes for reliable channels.
	TCPBuf int
	// CPUPerMsg is the fixed processing cost charged for each message sent
	// or received (system call + protocol handling).
	CPUPerMsg time.Duration
	// CPUPerByte is the variable processing cost per payload byte.
	CPUPerByte time.Duration
	// DiskBandwidth is the sequential synchronous write bandwidth in bits
	// per second.
	DiskBandwidth float64
	// DiskLatency is the fixed per-write latency (command overhead).
	DiskLatency time.Duration
	// LossRate is an additional random drop probability applied to every
	// datagram (UDP/multicast) delivery, on top of buffer-overflow drops.
	// Used by failure-injection tests; 0 in calibrated benchmarks.
	LossRate float64
}

// DefaultConfig returns parameters calibrated to the dissertation's testbed:
// Dell SC1435 nodes on a gigabit HP ProCurve switch with 0.1 ms RTT and
// OCZ-VERTEX3 SSDs that sustain roughly 270 Mbps of synchronous writes.
func DefaultConfig() Config {
	return Config{
		Bandwidth:     1e9,
		Latency:       50 * time.Microsecond,
		UDPBuf:        16 << 20,
		TCPBuf:        32 << 20,
		CPUPerMsg:     2 * time.Microsecond,
		CPUPerByte:    1 * time.Nanosecond,
		DiskBandwidth: 270e6,
		DiskLatency:   60 * time.Microsecond,
	}
}

// NodeConfig scales one node's resources relative to the cluster Config,
// which is how the Chapter 7 heterogeneous (cloud) deployments are modeled.
type NodeConfig struct {
	// CPUScale multiplies the node's processing speed (0.5 = half as fast).
	CPUScale float64
	// BandwidthScale multiplies the node's NIC capacity.
	BandwidthScale float64
	// Cores is the number of CPU cores (default 1). Message handling runs
	// on core 0; WorkOn schedules execution work on a chosen core, which
	// is how P-SMR's parallel workers are modeled (Chapter 6).
	Cores int
}

// Stats aggregates a node's traffic counters.
type Stats struct {
	MsgsSent     int64
	BytesSent    int64
	MsgsRecv     int64
	BytesRecv    int64
	MsgsDropped  int64
	BytesDropped int64
	DiskBytes    int64
	DiskWrites   int64
}

// LAN is a simulated cluster. Create one with New, add nodes, subscribe
// multicast groups, then Start and Run.
type LAN struct {
	Sim     *sim.Simulator
	cfg     Config
	nodes   map[proto.NodeID]*Node
	groups  map[proto.GroupID]map[proto.NodeID]bool
	members map[proto.GroupID][]proto.NodeID // sorted, invalidated on (un)subscribe
}

// New creates an empty cluster with the given parameters and seed.
func New(cfg Config, seed int64) *LAN {
	l := &LAN{
		Sim:     sim.New(seed),
		cfg:     cfg,
		nodes:   make(map[proto.NodeID]*Node),
		groups:  make(map[proto.GroupID]map[proto.NodeID]bool),
		members: make(map[proto.GroupID][]proto.NodeID),
	}
	l.Sim.SetDispatcher(l.dispatch)
	return l
}

// Typed-event kinds for the simulation kernel. Every per-message callback in
// the hot path (transmit -> receive -> ack, datagram arrival and delivery,
// work and disk completions) is one of these, so steady-state traffic
// schedules no closures at all.
const (
	evTCPArrive    uint8 = iota + 1 // frame cleared dst's in-link: P1=msg, P2=conn, D=size
	evTCPDeliver                    // rx CPU done, hand to handler + ack: P1=msg, P2=conn, D=size
	evTCPAck                        // ack reached sender, window opens: P2=conn, D=size
	evUDPArrive                     // datagram cleared in-link: P1=msg, P2=dst node, A=src id, D=size
	evUDPDeliver                    // rx CPU done, drain buffer + hand over: P1=msg, P2=node, A=src id, D=size
	evNodeDeliver                   // loopback delivery: P1=msg, P2=node, A=src id
	evNodeFunc                      // down-gated completion (Work/DiskWrite): P1=func(), P2=node
	evNodeTimer                     // fire-and-forget protocol timer: P1=func()
	evNodeTimerArg                  // fire-and-forget timer with argument: P1=func(int64), A=arg
	evNodeFuncArg                   // down-gated Work completion with argument: P1=func(int64), P2=node, A=arg
)

// dispatch executes one typed event. It runs inside the kernel loop at the
// event's instant, so sim.Now() is the scheduled time.
func (l *LAN) dispatch(ev sim.TypedEvent) {
	switch ev.Kind {
	case evTCPArrive:
		ev.P2.(*conn).arrive(ev.P1.(proto.Message), int(ev.D))
	case evTCPDeliver:
		ev.P2.(*conn).deliver(ev.P1.(proto.Message), int(ev.D))
	case evTCPAck:
		ev.P2.(*conn).ack(int(ev.D))
	case evUDPArrive:
		ev.P2.(*Node).datagramArrive(proto.NodeID(ev.A), ev.P1.(proto.Message), int(ev.D))
	case evUDPDeliver:
		n := ev.P2.(*Node)
		n.udpQueued -= int(ev.D)
		if n.down {
			return
		}
		n.handler.Receive(proto.NodeID(ev.A), ev.P1.(proto.Message))
	case evNodeDeliver:
		n := ev.P2.(*Node)
		if n.down {
			return
		}
		n.handler.Receive(proto.NodeID(ev.A), ev.P1.(proto.Message))
	case evNodeFunc:
		if ev.P2.(*Node).down {
			return
		}
		ev.P1.(func())()
	case evNodeTimer:
		// Like After, timers keep firing while the node is down (I/O is
		// suppressed at the Send/Receive gates instead).
		ev.P1.(func())()
	case evNodeTimerArg:
		ev.P1.(func(int64))(ev.A)
	case evNodeFuncArg:
		if ev.P2.(*Node).down {
			return
		}
		ev.P1.(func(int64))(ev.A)
	}
}

// Config returns the cluster-wide parameters.
func (l *LAN) Config() Config { return l.cfg }

// AddNode installs handler h on a new node. It panics if id already exists
// (a configuration bug, not a runtime condition).
func (l *LAN) AddNode(id proto.NodeID, h proto.Handler) *Node {
	return l.AddNodeWithConfig(id, h, NodeConfig{CPUScale: 1, BandwidthScale: 1})
}

// AddNodeWithConfig installs handler h on a new node with scaled resources.
func (l *LAN) AddNodeWithConfig(id proto.NodeID, h proto.Handler, nc NodeConfig) *Node {
	if _, ok := l.nodes[id]; ok {
		panic(fmt.Sprintf("lan: duplicate node %d", id))
	}
	if nc.CPUScale <= 0 {
		nc.CPUScale = 1
	}
	if nc.BandwidthScale <= 0 {
		nc.BandwidthScale = 1
	}
	if nc.Cores <= 0 {
		nc.Cores = 1
	}
	n := &Node{
		id:       id,
		lan:      l,
		handler:  h,
		nc:       nc,
		coreFree: make([]time.Duration, nc.Cores),
		conns:    make(map[proto.NodeID]*conn),
	}
	l.nodes[id] = n
	return n
}

// Node returns the node with the given id, or nil.
func (l *LAN) Node(id proto.NodeID) *Node { return l.nodes[id] }

// Nodes returns the number of nodes.
func (l *LAN) Nodes() int { return len(l.nodes) }

// Subscribe adds node id to multicast group g.
func (l *LAN) Subscribe(g proto.GroupID, id proto.NodeID) {
	set := l.groups[g]
	if set == nil {
		set = make(map[proto.NodeID]bool)
		l.groups[g] = set
	}
	set[id] = true
	delete(l.members, g) // invalidate the sorted-member cache
}

// Unsubscribe removes node id from multicast group g.
func (l *LAN) Unsubscribe(g proto.GroupID, id proto.NodeID) {
	delete(l.groups[g], id)
	delete(l.members, g)
}

// sortNodeIDs orders ids ascending; every deterministic iteration over node
// sets (multicast fan-out, Start order) funnels through it.
func sortNodeIDs(ids []proto.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// groupMembers returns group g's subscribers in ascending id order, so
// multicast fan-out is deterministic. The sorted slice is cached until the
// group's membership changes; callers must not retain or mutate it.
func (l *LAN) groupMembers(g proto.GroupID) []proto.NodeID {
	if ids, ok := l.members[g]; ok {
		return ids
	}
	set := l.groups[g]
	ids := make([]proto.NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	l.members[g] = ids
	return ids
}

// Start invokes every handler's Start callback. Call once, before Run.
func (l *LAN) Start() {
	// Deterministic order: ascending node id.
	ids := make([]proto.NodeID, 0, len(l.nodes))
	for id := range l.nodes {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	for _, id := range ids {
		n := l.nodes[id]
		n.handler.Start(n)
	}
}

// Run advances the simulation by d of virtual time.
func (l *LAN) Run(d time.Duration) {
	l.Sim.RunUntil(l.Sim.Now() + d)
}

// Node is one simulated machine. It implements proto.Env for its handler.
type Node struct {
	id      proto.NodeID
	lan     *LAN
	handler proto.Handler
	nc      NodeConfig

	down bool

	outFree  time.Duration   // instant the out-link becomes idle
	inFree   time.Duration   // instant the in-link becomes idle
	coreFree []time.Duration // instant each CPU core becomes idle
	cpuBusy  time.Duration   // accumulated CPU busy time, all cores
	diskFree time.Duration   // instant the disk becomes idle

	udpQueued    int // bytes in the datagram receive buffer
	udpQueuedMax int

	conns map[proto.NodeID]*conn

	stats Stats
}

var (
	_ proto.Env          = (*Node)(nil)
	_ proto.FreeTimerEnv = (*Node)(nil)
	_ proto.FreeWorkEnv  = (*Node)(nil)
)

// conn models one reliable FIFO channel with a bounded in-flight window.
// The send queue is a power-of-two ring buffer: popping advances head
// instead of re-slicing, so the backing array is reused forever and drained
// messages are released immediately.
type conn struct {
	from, to   *Node
	buf        []proto.Message // ring storage, len is a power of two
	head, tail uint32          // pop/push cursors; tail-head = queued count
	inflight   int
}

func (c *conn) queued() int { return int(c.tail - c.head) }

func (c *conn) push(m proto.Message) {
	if c.queued() == len(c.buf) {
		c.grow()
	}
	c.buf[c.tail&uint32(len(c.buf)-1)] = m
	c.tail++
}

func (c *conn) pop() proto.Message {
	i := c.head & uint32(len(c.buf)-1)
	m := c.buf[i]
	c.buf[i] = nil // release the reference as soon as it is on the wire
	c.head++
	return m
}

func (c *conn) grow() {
	n := len(c.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]proto.Message, n)
	for i, cnt := uint32(0), uint32(c.queued()); i < cnt; i++ {
		nb[i] = c.buf[(c.head+i)&uint32(len(c.buf)-1)]
	}
	c.tail = c.tail - c.head
	c.head = 0
	c.buf = nb
}

// ID implements proto.Env.
func (n *Node) ID() proto.NodeID { return n.id }

// Now implements proto.Env.
func (n *Node) Now() time.Duration { return n.lan.Sim.Now() }

// Rand implements proto.Env.
func (n *Node) Rand() *rand.Rand { return n.lan.Sim.Rand() }

// Stats returns a copy of the node's traffic counters.
func (n *Node) Stats() Stats { return n.stats }

// CPUBusy returns total CPU busy time accumulated so far.
func (n *Node) CPUBusy() time.Duration { return n.cpuBusy }

// BufferPeak returns the high-water mark of the datagram receive buffer.
func (n *Node) BufferPeak() int { return n.udpQueuedMax }

// BufferQueued returns the bytes currently queued in the datagram buffer.
func (n *Node) BufferQueued() int { return n.udpQueued }

// SetDown marks the node crashed (true) or recovered (false). A down node
// sends nothing and silently discards everything addressed to it.
func (n *Node) SetDown(down bool) { n.down = down }

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down }

// Handler returns the installed protocol actor.
func (n *Node) Handler() proto.Handler { return n.handler }

func (n *Node) bandwidth() float64 {
	return n.lan.cfg.Bandwidth * n.nc.BandwidthScale
}

// cpuCost returns the processing cost of a message of the given size on
// this node's CPU.
func (n *Node) cpuCost(size int) time.Duration {
	c := n.lan.cfg.CPUPerMsg + time.Duration(size)*n.lan.cfg.CPUPerByte
	return time.Duration(float64(c) / n.nc.CPUScale)
}

// reserveCPU books d of CPU on core 0 (the message-handling core) starting
// no earlier than from, and returns the instant the booking completes.
func (n *Node) reserveCPU(from, d time.Duration) time.Duration {
	return n.reserveCore(0, from, d)
}

// reserveCore books d of CPU on the given core.
func (n *Node) reserveCore(core int, from, d time.Duration) time.Duration {
	if core < 0 || core >= len(n.coreFree) {
		core = 0
	}
	start := max(from, n.coreFree[core])
	n.coreFree[core] = start + d
	n.cpuBusy += d
	return n.coreFree[core]
}

// txTime returns the serialization delay of size bytes on a link of bw bits/s.
func txTime(size int, bw float64) time.Duration {
	return time.Duration(float64(size) * 8 / bw * float64(time.Second))
}

// transmitTo serializes a frame from n toward dst and returns the instant
// the last bit clears dst's in-link. Sending CPU is charged on n.
// payOut controls whether n's out-link is charged (multicast pays it once
// for the whole group, before calling transmitTo per receiver).
func (n *Node) transmitTo(dst *Node, size int, payOut bool) time.Duration {
	now := n.lan.Sim.Now()
	cpuDone := n.reserveCPU(now, n.cpuCost(size))
	var outDone time.Duration
	if payOut {
		start := max(cpuDone, n.outFree)
		n.outFree = start + txTime(size, n.bandwidth())
		outDone = n.outFree
	} else {
		outDone = max(cpuDone, n.outFree)
	}
	arrive := outDone + n.lan.cfg.Latency
	rxStart := max(arrive, dst.inFree)
	dst.inFree = rxStart + txTime(size, dst.bandwidth())
	return dst.inFree
}

// Send implements proto.Env: reliable FIFO channel with windowed
// backpressure (TCP).
func (n *Node) Send(to proto.NodeID, m proto.Message) {
	if n.down {
		return
	}
	dst := n.lan.nodes[to]
	if dst == nil {
		return
	}
	if dst == n {
		n.deliverLocal(m)
		return
	}
	c := n.conns[to]
	if c == nil {
		c = &conn{from: n, to: dst}
		n.conns[to] = c
	}
	c.push(m)
	n.pump(c)
}

// pump transmits queued messages on c while window space is available. The
// whole transmit -> receive -> ack chain runs on typed events: no closures
// are allocated per message.
func (n *Node) pump(c *conn) {
	for c.queued() > 0 {
		m := c.buf[c.head&uint32(len(c.buf)-1)]
		size := m.Size()
		if c.inflight > 0 && c.inflight+size > n.lan.cfg.TCPBuf {
			return // window full; resumes on ack
		}
		c.pop()
		c.inflight += size
		n.stats.MsgsSent++
		n.stats.BytesSent += int64(size)
		rxEnd := n.transmitTo(c.to, size, true)
		n.lan.Sim.AtEvent(rxEnd, sim.TypedEvent{Kind: evTCPArrive, D: int64(size), P1: m, P2: c})
	}
}

// arrive runs when a frame's last bit clears the receiver's in-link.
func (c *conn) arrive(m proto.Message, size int) {
	dst := c.to
	if dst.down {
		// Connection to a dead peer: window space never frees; messages
		// already sent are lost.
		return
	}
	dst.stats.MsgsRecv++
	dst.stats.BytesRecv += int64(size)
	done := dst.reserveCPU(dst.lan.Sim.Now(), dst.cpuCost(size))
	dst.lan.Sim.AtEvent(done, sim.TypedEvent{Kind: evTCPDeliver, D: int64(size), P1: m, P2: c})
}

// deliver runs when the receiver's CPU finishes processing the message: it
// hands the message to the handler and sends the ack back.
func (c *conn) deliver(m proto.Message, size int) {
	dst := c.to
	if dst.down {
		return
	}
	dst.handler.Receive(c.from.id, m)
	// Ack travels back; window space frees at the sender.
	ack := dst.lan.Sim.Now() + dst.lan.cfg.Latency
	dst.lan.Sim.AtEvent(ack, sim.TypedEvent{Kind: evTCPAck, D: int64(size), P2: c})
}

// ack opens window space at the sender and restarts its pump.
func (c *conn) ack(size int) {
	c.inflight -= size
	if !c.from.down {
		c.from.pump(c)
	}
}

// SendUDP implements proto.Env: lossy datagram. Size is computed once and
// carried in the typed event, so the arrival leg does not recompute it.
func (n *Node) SendUDP(to proto.NodeID, m proto.Message) {
	if n.down {
		return
	}
	dst := n.lan.nodes[to]
	if dst == nil {
		return
	}
	size := m.Size()
	n.stats.MsgsSent++
	n.stats.BytesSent += int64(size)
	if dst == n {
		n.deliverLocal(m)
		return
	}
	rxEnd := n.transmitTo(dst, size, true)
	n.lan.Sim.AtEvent(rxEnd, sim.TypedEvent{Kind: evUDPArrive, A: int64(n.id), D: int64(size), P1: m, P2: dst})
}

// Multicast implements proto.Env: switch-replicated datagram. The sender's
// out-link carries the frame once; each subscriber's in-link carries it.
func (n *Node) Multicast(g proto.GroupID, m proto.Message) {
	if n.down {
		return
	}
	size := m.Size()
	n.stats.MsgsSent++
	n.stats.BytesSent += int64(size)
	// The frame leaves the sender once, after CPU cost.
	now := n.lan.Sim.Now()
	cpuDone := n.reserveCPU(now, n.cpuCost(size))
	start := max(cpuDone, n.outFree)
	n.outFree = start + txTime(size, n.bandwidth())
	departure := n.outFree

	for _, id := range n.lan.groupMembers(g) {
		dst := n.lan.nodes[id]
		if dst == nil {
			continue
		}
		if dst == n {
			n.deliverLocal(m)
			continue
		}
		arrive := departure + n.lan.cfg.Latency
		rxStart := max(arrive, dst.inFree)
		dst.inFree = rxStart + txTime(size, dst.bandwidth())
		rxEnd := dst.inFree
		n.lan.Sim.AtEvent(rxEnd, sim.TypedEvent{Kind: evUDPArrive, A: int64(n.id), D: int64(size), P1: m, P2: dst})
	}
}

// datagramArrive applies the receive-buffer admission test and, if the frame
// is admitted, schedules handler processing on the CPU. size was computed at
// send time and rode in the typed event.
func (n *Node) datagramArrive(from proto.NodeID, m proto.Message, size int) {
	if n.down {
		return
	}
	if n.lan.cfg.LossRate > 0 && n.lan.Sim.Rand().Float64() < n.lan.cfg.LossRate {
		n.stats.MsgsDropped++
		n.stats.BytesDropped += int64(size)
		return
	}
	if n.udpQueued+size > n.lan.cfg.UDPBuf {
		n.stats.MsgsDropped++
		n.stats.BytesDropped += int64(size)
		return
	}
	n.stats.MsgsRecv++
	n.stats.BytesRecv += int64(size)
	n.udpQueued += size
	if n.udpQueued > n.udpQueuedMax {
		n.udpQueuedMax = n.udpQueued
	}
	done := n.reserveCPU(n.lan.Sim.Now(), n.cpuCost(size))
	n.lan.Sim.AtEvent(done, sim.TypedEvent{Kind: evUDPDeliver, A: int64(from), D: int64(size), P1: m, P2: n})
}

// deliverLocal hands a self-addressed message to the handler, paying CPU
// but no network resources (loopback).
func (n *Node) deliverLocal(m proto.Message) {
	done := n.reserveCPU(n.lan.Sim.Now(), n.cpuCost(m.Size()))
	n.lan.Sim.AtEvent(done, sim.TypedEvent{Kind: evNodeDeliver, A: int64(n.id), P1: m, P2: n})
}

// After implements proto.Env. Timer callbacks keep firing while the node is
// down — SetDown models a frozen/partitioned process whose I/O is suppressed
// (Send/Multicast/receive are all gated on down), so periodic protocol
// timers resume their work transparently at recovery.
func (n *Node) After(d time.Duration, fn func()) proto.Timer {
	t := n.lan.Sim.After(d, fn)
	return timerAdapter{t}
}

type timerAdapter struct{ t sim.Timer }

func (a timerAdapter) Cancel() { a.t.Cancel() }

// AfterFree implements proto.FreeTimerEnv: the callback is carried in a
// typed kernel event, so scheduling performs no allocation (no closure, no
// Timer box). Like After, the timer fires even while the node is down.
func (n *Node) AfterFree(d time.Duration, fn func()) {
	n.lan.Sim.AfterEvent(d, sim.TypedEvent{Kind: evNodeTimer, P1: fn})
}

// AfterFreeArg implements proto.FreeTimerEnv; arg rides in the event's
// scalar field, so per-instance timers need no capturing closure.
func (n *Node) AfterFreeArg(d time.Duration, fn func(int64), arg int64) {
	n.lan.Sim.AfterEvent(d, sim.TypedEvent{Kind: evNodeTimerArg, P1: fn, A: arg})
}

// Work implements proto.Env: occupy core 0 for d, then run fn.
func (n *Node) Work(d time.Duration, fn func()) {
	n.WorkOn(0, d, fn)
}

// WorkOn occupies the given core for d, then runs fn. P-SMR workers each
// own a core.
func (n *Node) WorkOn(core int, d time.Duration, fn func()) {
	d = time.Duration(float64(d) / n.nc.CPUScale)
	done := n.reserveCore(core, n.lan.Sim.Now(), d)
	n.lan.Sim.AtEvent(done, sim.TypedEvent{Kind: evNodeFunc, P1: fn, P2: n})
}

// WorkArg implements proto.FreeWorkEnv: Work on core 0 with a scalar
// argument carried in the typed event — no per-call closure.
func (n *Node) WorkArg(d time.Duration, fn func(int64), arg int64) {
	d = time.Duration(float64(d) / n.nc.CPUScale)
	done := n.reserveCore(0, n.lan.Sim.Now(), d)
	n.lan.Sim.AtEvent(done, sim.TypedEvent{Kind: evNodeFuncArg, P1: fn, P2: n, A: arg})
}

// DiskWrite implements proto.Env: synchronous sequential write of size
// bytes, then fn. Writes queue behind each other on the device.
func (n *Node) DiskWrite(size int, fn func()) {
	cfg := n.lan.cfg
	d := cfg.DiskLatency + txTime(size, cfg.DiskBandwidth)
	start := max(n.lan.Sim.Now(), n.diskFree)
	n.diskFree = start + d
	n.stats.DiskBytes += int64(size)
	n.stats.DiskWrites++
	n.lan.Sim.AtEvent(n.diskFree, sim.TypedEvent{Kind: evNodeFunc, P1: fn, P2: n})
}
