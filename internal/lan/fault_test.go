package lan

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/proto"
)

// tagSink records received tags in order.
type tagSink struct {
	tags []int64
}

func (s *tagSink) Start(proto.Env) {}
func (s *tagSink) Receive(_ proto.NodeID, m proto.Message) {
	s.tags = append(s.tags, m.(proto.Raw).Tag)
}

// tcpPump sends `count` tagged messages over TCP at a fixed interval.
type tcpPump struct {
	env      proto.Env
	to       proto.NodeID
	size     int
	interval time.Duration
	count    int
	sent     int
}

func (p *tcpPump) Start(env proto.Env) {
	p.env = env
	p.tick()
}

func (p *tcpPump) tick() {
	if p.sent >= p.count {
		return
	}
	p.env.Send(p.to, proto.Raw{Bytes: p.size, Tag: int64(p.sent)})
	p.sent++
	p.env.After(p.interval, p.tick)
}

func (p *tcpPump) Receive(proto.NodeID, proto.Message) {}

func assertFIFO(t *testing.T, tags []int64, want int) {
	t.Helper()
	if len(tags) != want {
		t.Fatalf("received %d messages, want %d", len(tags), want)
	}
	for i, tag := range tags {
		if tag != int64(i) {
			t.Fatalf("FIFO violated at %d: tag %d", i, tag)
		}
	}
}

// Satellite 1 regression (Lose mode): crash the receiver mid-stream,
// recover, and assert the connection drains — every frame lost to the
// dead process must have returned its window credit, so the sender's
// window is whole after the peer recovers.
func TestLoseCrashReturnsWindowCredit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TCPBuf = 64 << 10 // small window so leaked credit wedges quickly
	l := New(cfg, 1)
	r := &tagSink{}
	l.AddNode(1, r)
	l.AddNode(0, &tcpPump{to: 1, size: 8192, interval: 100 * time.Microsecond, count: 300})
	l.InstallFaults(fault.New(1).CrashFor(5*time.Millisecond, 5*time.Millisecond, 1, fault.Lose))
	l.Start()
	l.Run(200 * time.Millisecond)

	c := l.Node(0).conns[1]
	if c.inflight != 0 || c.queued() != 0 {
		t.Fatalf("connection did not drain: inflight=%d queued=%d", c.inflight, c.queued())
	}
	lost := l.Node(1).Stats().MsgsLost
	if lost == 0 {
		t.Fatal("no frames hit the dead process — outage too short to exercise the reset path")
	}
	// Post-recovery traffic flows: the tail of the stream arrived.
	if got := len(r.tags); got == 0 || int64(got)+lost < 300 {
		t.Fatalf("received %d + lost %d < 300 sent", got, lost)
	}
	if r.tags[len(r.tags)-1] != 299 {
		t.Fatalf("stream tail missing: last tag %d, want 299", r.tags[len(r.tags)-1])
	}
}

// Freeze mode: same outage, but nothing is lost — the frozen process's
// socket buffer holds frames (window backpressure stalls the sender) and
// delivers them in order at thaw.
func TestFreezeHoldsFramesAndDeliversInOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TCPBuf = 64 << 10
	l := New(cfg, 1)
	r := &tagSink{}
	// Slow receiver CPU so the freeze catches frames both before and after
	// their receive-CPU booking (both heldFrame stages).
	l.AddNodeWithConfig(1, r, NodeConfig{CPUScale: 0.05, BandwidthScale: 1})
	l.AddNode(0, &tcpPump{to: 1, size: 8192, interval: 100 * time.Microsecond, count: 300})
	l.InstallFaults(fault.New(1).CrashFor(5*time.Millisecond, 10*time.Millisecond, 1, fault.Freeze))
	l.Start()
	l.Run(2 * time.Second)

	assertFIFO(t, r.tags, 300)
	st := l.Node(1).Stats()
	if st.MsgsLost != 0 || st.MsgsDropped != 0 {
		t.Fatalf("freeze lost traffic: lost=%d dropped=%d", st.MsgsLost, st.MsgsDropped)
	}
	c := l.Node(0).conns[1]
	if c.inflight != 0 || c.queued() != 0 {
		t.Fatalf("connection did not drain after thaw: inflight=%d queued=%d", c.inflight, c.queued())
	}
}

// The legacy model (no schedule installed) must keep its pinned behavior:
// frames to a down peer vanish and their window credit leaks, wedging
// the connection even after recovery.
func TestLegacyDownStillLeaksCredit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TCPBuf = 64 << 10
	l := New(cfg, 1)
	r := &tagSink{}
	l.AddNode(1, r)
	l.AddNode(0, &tcpPump{to: 1, size: 8192, interval: 100 * time.Microsecond, count: 300})
	down := l.AddNode(2, &proto.HandlerFunc{})
	_ = down
	l.Start()
	l.Run(5 * time.Millisecond)
	l.Node(1).SetDown(true)
	l.Run(10 * time.Millisecond)
	l.Node(1).SetDown(false)
	l.Run(200 * time.Millisecond)

	c := l.Node(0).conns[1]
	if c.inflight == 0 {
		t.Fatal("legacy down-path returned window credit; pinned goldens depend on the leak")
	}
	if l.Node(1).Stats().MsgsLost != 0 {
		t.Fatal("legacy path counted MsgsLost; loss accounting must be fault-mode only")
	}
}

// Satellite 2 regression: a down sender keeps receiving acks (which skip
// pump) while its queue grows; recovery must flush every conn with
// queued messages instead of waiting for the next fresh Send.
func TestRecoveryRepumpsQueuedConns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TCPBuf = 16 << 10 // two 8 KB frames in flight at most
	l := New(cfg, 1)
	r := &tagSink{}
	l.AddNode(1, r)
	sender := l.AddNode(0, &proto.HandlerFunc{})
	l.InstallFaults(fault.New(1)) // empty schedule: faithful semantics, no injected faults
	l.Start()
	env := proto.Env(sender)
	// Fill the window and queue a backlog behind it.
	for i := 0; i < 20; i++ {
		env.Send(1, proto.Raw{Bytes: 8192, Tag: int64(i)})
	}
	// Freeze the sender before the first acks return: acks drain inflight
	// while down, but pump must not run.
	sender.SetDown(true)
	l.Run(50 * time.Millisecond)
	if got := len(r.tags); got >= 20 {
		t.Fatalf("down sender transmitted its whole queue (%d msgs)", got)
	}
	c := sender.conns[1]
	if c.queued() == 0 {
		t.Fatal("test did not create a stalled queue")
	}
	sender.SetDown(false) // recovery must re-pump without a fresh Send
	l.Run(200 * time.Millisecond)
	assertFIFO(t, r.tags, 20)
}

// Satellite 5: timers keep firing while the node is down (documented at
// After), so periodic protocol logic resumes transparently at recovery.
func TestTimersFireWhileDown(t *testing.T) {
	cfg := DefaultConfig()
	l := New(cfg, 1)
	ticks := 0
	var env proto.Env
	var tick func()
	tick = func() {
		ticks++
		env.After(time.Millisecond, tick)
	}
	l.AddNode(0, &proto.HandlerFunc{OnStart: func(e proto.Env) {
		env = e
		e.After(time.Millisecond, tick)
	}})
	l.InstallFaults(fault.New(1).CrashFor(10*time.Millisecond, 30*time.Millisecond, 0, fault.Freeze))
	l.Start()
	l.Run(100 * time.Millisecond)
	if ticks < 95 {
		t.Fatalf("timer chain fired %d times in 100 ms, want ~99 (down must not stop timers)", ticks)
	}
}

// Satellite 5: a datagram in flight when the receiver goes down is lost
// (and counted); one in flight when the receiver comes back up is
// delivered. The flip happens between send and arrival in both cases.
func TestDatagramInFlightAcrossDownFlip(t *testing.T) {
	cfg := DefaultConfig() // 50 µs latency
	l := New(cfg, 1)
	r := &tagSink{}
	l.AddNode(1, r)
	var env proto.Env
	l.AddNode(0, &proto.HandlerFunc{OnStart: func(e proto.Env) {
		env = e
		// Sent while up; receiver crashes 20 µs later, before arrival.
		e.After(80*time.Microsecond, func() { env.SendUDP(1, proto.Raw{Bytes: 512, Tag: 1}) })
		// Sent while the receiver is down; it restarts before arrival.
		e.After(140*time.Microsecond, func() { env.SendUDP(1, proto.Raw{Bytes: 512, Tag: 2}) })
	}})
	l.InstallFaults(fault.New(1).
		Crash(100*time.Microsecond, 1, fault.Lose).
		Restart(160*time.Microsecond, 1))
	l.Start()
	l.Run(10 * time.Millisecond)

	if len(r.tags) != 1 || r.tags[0] != 2 {
		t.Fatalf("tags = %v, want [2] (msg 1 lost in flight, msg 2 delivered)", r.tags)
	}
	if st := l.Node(1).Stats(); st.MsgsLost != 1 {
		t.Fatalf("MsgsLost = %d, want 1", st.MsgsLost)
	}
}

// Satellite 5: multicast to a partially-down group — up members deliver,
// down members count the frame lost, the sender pays the frame once.
func TestMulticastPartiallyDownGroup(t *testing.T) {
	cfg := DefaultConfig()
	l := New(cfg, 1)
	sinks := make([]*tagSink, 4)
	for i := range sinks {
		sinks[i] = &tagSink{}
		l.AddNode(proto.NodeID(i+1), sinks[i])
		l.Subscribe(1, proto.NodeID(i+1))
	}
	var env proto.Env
	l.AddNode(0, &proto.HandlerFunc{OnStart: func(e proto.Env) {
		env = e
		e.After(time.Millisecond, func() { env.Multicast(1, proto.Raw{Bytes: 512, Tag: 7}) })
	}})
	l.InstallFaults(fault.New(1).
		Crash(500*time.Microsecond, 3, fault.Lose).
		Crash(500*time.Microsecond, 4, fault.Freeze).
		Restart(2*time.Millisecond, 3).
		Restart(2*time.Millisecond, 4))
	l.Start()
	l.Run(10 * time.Millisecond)

	for i, s := range sinks[:2] {
		if len(s.tags) != 1 {
			t.Fatalf("up member %d received %d messages, want 1", i+1, len(s.tags))
		}
	}
	// Down members lost the datagram (frozen nodes don't buffer datagrams),
	// and it stays lost after restart.
	for i, s := range sinks[2:] {
		if len(s.tags) != 0 {
			t.Fatalf("down member %d received %d messages, want 0", i+3, len(s.tags))
		}
	}
	if lost := l.Node(3).Stats().MsgsLost + l.Node(4).Stats().MsgsLost; lost != 2 {
		t.Fatalf("lost = %d, want 2 (one per down member)", lost)
	}
	if sent := l.Node(0).Stats().MsgsSent; sent != 1 {
		t.Fatalf("sender MsgsSent = %d, want 1 (multicast pays once)", sent)
	}
}

// A partition holds TCP frames at the sender (lossless) and eats
// datagrams (counted at the sender); healing re-pumps and delivers
// everything in order.
func TestPartitionHoldsTCPAndHeals(t *testing.T) {
	cfg := DefaultConfig()
	l := New(cfg, 1)
	r := &tagSink{}
	l.AddNode(1, r)
	l.AddNode(0, &tcpPump{to: 1, size: 4096, interval: 200 * time.Microsecond, count: 100})
	var env proto.Env
	udpLost := l.AddNode(2, &proto.HandlerFunc{OnStart: func(e proto.Env) {
		env = e
		e.After(10*time.Millisecond, func() { env.SendUDP(1, proto.Raw{Bytes: 512, Tag: 9}) })
	}})
	l.InstallFaults(fault.New(1).Split(5*time.Millisecond, 20*time.Millisecond, 1))
	l.Start()
	l.Run(100 * time.Millisecond)

	assertFIFO(t, r.tags, 100)
	if st := l.Node(0).Stats(); st.MsgsLost != 0 {
		t.Fatalf("TCP across partition lost %d frames; must hold at sender", st.MsgsLost)
	}
	if st := udpLost.Stats(); st.MsgsLost != 1 {
		t.Fatalf("UDP across partition: sender lost = %d, want 1", st.MsgsLost)
	}
	if len(r.tags) == 0 {
		t.Fatal("no delivery after heal")
	}
}

// volatileHandler counts LoseVolatile invocations.
type volatileHandler struct {
	proto.HandlerFunc
	lost int
}

func (h *volatileHandler) LoseVolatile() { h.lost++ }

// A Lose crash discards the node's queued-but-unsent messages and
// invokes proto.VolatileLoser at restart; a Freeze does neither.
func TestLoseCrashClearsQueueAndVolatileState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TCPBuf = 8 << 10 // one frame in flight; the rest queues
	l := New(cfg, 1)
	r := &tagSink{}
	l.AddNode(1, r)
	h := &volatileHandler{}
	sender := l.AddNode(0, h)
	l.InstallFaults(fault.New(1).
		Crash(2*time.Millisecond, 0, fault.Lose).
		Restart(5*time.Millisecond, 0))
	l.Start()
	env := proto.Env(sender)
	for i := 0; i < 10; i++ {
		env.Send(1, proto.Raw{Bytes: 8192, Tag: int64(i)})
	}
	l.Run(50 * time.Millisecond)

	if h.lost != 1 {
		t.Fatalf("LoseVolatile called %d times, want 1", h.lost)
	}
	if st := sender.Stats(); st.MsgsLost == 0 {
		t.Fatal("queued messages not counted lost on Lose restart")
	}
	// The stream has a gap (queue was dropped) but the conn is healthy.
	c := sender.conns[1]
	if c.queued() != 0 || c.inflight != 0 {
		t.Fatalf("conn not clean after Lose restart: queued=%d inflight=%d", c.queued(), c.inflight)
	}
	if len(r.tags) >= 10 {
		t.Fatalf("all %d messages delivered; Lose crash should have dropped the queue", len(r.tags))
	}
}

// Injected datagram faults: DropRate=1 loses everything (counted at the
// sender), DupRate=1 doubles deliveries, delay shifts arrival later.
func TestNetFaultDropDupDelay(t *testing.T) {
	run := func(net fault.Net) (*tagSink, Stats, Stats) {
		cfg := DefaultConfig()
		l := New(cfg, 1)
		r := &tagSink{}
		l.AddNode(1, r)
		var env proto.Env
		snd := l.AddNode(0, &proto.HandlerFunc{OnStart: func(e proto.Env) {
			env = e
			e.After(time.Millisecond, func() { env.SendUDP(1, proto.Raw{Bytes: 512, Tag: 3}) })
		}})
		l.InstallFaults(fault.New(1).WithNet(net))
		l.Start()
		l.Run(10 * time.Millisecond)
		return r, snd.Stats(), l.Node(1).Stats()
	}

	r, snd, _ := run(fault.Net{DropRate: 1})
	if len(r.tags) != 0 || snd.MsgsLost != 1 {
		t.Fatalf("DropRate=1: delivered=%d senderLost=%d", len(r.tags), snd.MsgsLost)
	}
	r, _, rcv := run(fault.Net{DupRate: 1})
	if len(r.tags) != 2 || rcv.MsgsRecv != 2 {
		t.Fatalf("DupRate=1: delivered=%d recv=%d, want 2", len(r.tags), rcv.MsgsRecv)
	}
	r, _, _ = run(fault.Net{DelayRate: 1, DelayMax: 2 * time.Millisecond})
	if len(r.tags) != 1 {
		t.Fatalf("DelayRate=1: delivered=%d, want 1", len(r.tags))
	}
}

// Same seed, same schedule: two faulted runs are byte-equivalent
// (identical delivery sequences and counters).
func TestFaultScheduleReplaysDeterministically(t *testing.T) {
	run := func() ([]int64, Stats) {
		cfg := DefaultConfig()
		cfg.LossRate = 0.1
		l := New(cfg, 7)
		r := &tagSink{}
		l.AddNode(1, r)
		l.AddNode(0, &sender{to: []proto.NodeID{1}, size: 2048, interval: 100 * time.Microsecond, stop: 50 * time.Millisecond})
		l.InstallFaults(fault.New(7).
			WithNet(fault.Net{DropRate: 0.05, DupRate: 0.02, DelayRate: 0.1, DelayMax: time.Millisecond}).
			CrashFor(10*time.Millisecond, 5*time.Millisecond, 1, fault.Lose))
		l.Start()
		l.Run(100 * time.Millisecond)
		return append([]int64(nil), r.tags...), l.Node(1).Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if len(t1) != len(t2) || s1 != s2 {
		t.Fatalf("faulted replay diverged: %d vs %d deliveries, %+v vs %+v", len(t1), len(t2), s1, s2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("delivery %d diverged", i)
		}
	}
	if s1.MsgsLost == 0 {
		t.Fatal("schedule injected no loss; test is vacuous")
	}
}

// LossRate draws come from per-node streams now, so a lossy config runs
// partitioned with results identical to its sequential run.
func TestLossyConfigPartitionEquivalence(t *testing.T) {
	run := func(nLP int) ([]int64, Stats) {
		cfg := DefaultConfig()
		cfg.LossRate = 0.2
		l := New(cfg, 3)
		r := &tagSink{}
		l.AddNode(1, r)
		l.AddNode(0, &sender{to: []proto.NodeID{1}, size: 2048, interval: 100 * time.Microsecond, stop: 20 * time.Millisecond})
		if nLP > 1 {
			if !l.Partition(nLP, func(id proto.NodeID) int { return int(id) % nLP }) {
				t.Fatalf("Partition declined lossy config at nLP=%d", nLP)
			}
		}
		l.Start()
		l.Run(50 * time.Millisecond)
		return append([]int64(nil), r.tags...), l.Node(1).Stats()
	}
	seqTags, seqStats := run(1)
	if seqStats.MsgsLost == 0 {
		t.Fatal("no loss at LossRate=0.2; test is vacuous")
	}
	for _, nLP := range []int{2, 4} {
		tags, stats := run(nLP)
		if len(tags) != len(seqTags) || stats != seqStats {
			t.Fatalf("nLP=%d diverged from sequential: %d vs %d deliveries, %+v vs %+v",
				nLP, len(tags), len(seqTags), stats, seqStats)
		}
	}
}
