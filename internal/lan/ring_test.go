package lan

import (
	"testing"
	"time"

	"repro/internal/proto"
)

// TestConnRingWraps: interleaved bursts and drains cycle the ring buffer's
// cursors through wrap-around and growth; FIFO order must survive both.
func TestConnRingWraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TCPBuf = 16 << 10 // small window keeps a standing queue
	l := New(cfg, 1)
	var got []int64
	l.AddNode(1, &proto.HandlerFunc{OnReceive: func(_ proto.NodeID, m proto.Message) {
		got = append(got, m.(proto.Raw).Tag)
	}})
	l.AddNode(0, &proto.HandlerFunc{OnStart: func(env proto.Env) {
		tag := int64(0)
		var burst func()
		burst = func() {
			for i := 0; i < 10; i++ {
				env.Send(1, proto.Raw{Bytes: 4 << 10, Tag: tag})
				tag++
			}
			if tag < 400 {
				env.After(3*time.Millisecond, burst)
			}
		}
		burst()
	}})
	l.Start()
	l.Run(5 * time.Second)
	if len(got) != 400 {
		t.Fatalf("received %d of 400", len(got))
	}
	for i, tag := range got {
		if tag != int64(i) {
			t.Fatalf("FIFO violated at %d: tag %d", i, tag)
		}
	}
	// The standing queue never exceeds one burst, so the ring must not have
	// grown past one doubling: cursors wrapped instead.
	c := l.Node(0).conns[1]
	if len(c.buf) > 32 {
		t.Fatalf("ring grew to %d slots for a 10-deep standing queue", len(c.buf))
	}
}

// TestMemberCacheInvalidation: subscribing and unsubscribing mid-run must be
// visible to the next Multicast (the sorted-member cache is invalidated).
func TestMemberCacheInvalidation(t *testing.T) {
	l := New(DefaultConfig(), 1)
	a, b := &sink{}, &sink{}
	l.AddNode(1, a)
	l.AddNode(2, b)
	l.Subscribe(7, 1)
	var env proto.Env
	l.AddNode(0, &proto.HandlerFunc{OnStart: func(e proto.Env) { env = e }})
	l.Start()

	env.Multicast(7, proto.Raw{Bytes: 100})
	l.Run(10 * time.Millisecond)
	if a.msgs != 1 || b.msgs != 0 {
		t.Fatalf("before subscribe: a=%d b=%d, want 1,0", a.msgs, b.msgs)
	}

	l.Subscribe(7, 2)
	env.Multicast(7, proto.Raw{Bytes: 100})
	l.Run(10 * time.Millisecond)
	if a.msgs != 2 || b.msgs != 1 {
		t.Fatalf("after subscribe: a=%d b=%d, want 2,1", a.msgs, b.msgs)
	}

	l.Unsubscribe(7, 1)
	env.Multicast(7, proto.Raw{Bytes: 100})
	l.Run(10 * time.Millisecond)
	if a.msgs != 2 || b.msgs != 2 {
		t.Fatalf("after unsubscribe: a=%d b=%d, want 2,2", a.msgs, b.msgs)
	}
}
