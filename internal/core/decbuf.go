package core

import (
	"sync"
	"sync/atomic"
)

// DecBuf is a shared decision-id buffer. A coordinator accumulates decided
// instance ids (and their partition masks) into one, ships it inside a
// Phase 2A or standalone decision multicast, and stamps it with the
// multicast's receiver count (proto.GroupSizer); every receiver releases
// its reference after consuming the ids, and the last one returns the
// buffer — backing arrays and all — to a pool the coordinator draws from.
// On environments without receiver counts the buffer is never armed and
// simply becomes garbage, which is always safe: recycling is a perf
// property, never a correctness dependency.
type DecBuf struct {
	Insts []int64
	Masks []uint64
	// Vids carries the chosen value id per decided instance, parallel to
	// Insts. Consensus is on value ids, so learners pair a decision with
	// the value it chose (round fencing: a stale coordinator's proposal
	// for the same instance never delivers against a newer decision).
	Vids []ValueID
	refs atomic.Int32
}

// decBufPool is shared across agents: in a partitioned (PDES) run the last
// release can happen on any logical process's goroutine, so the pool must
// be safe to feed from one goroutine and drain from another.
var decBufPool = sync.Pool{New: func() any { return new(DecBuf) }}

// GetDecBuf returns an empty buffer, recycled when one is available.
func GetDecBuf() *DecBuf { return decBufPool.Get().(*DecBuf) }

// Arm sets how many Release calls return the buffer to the pool. The count
// may overcount actual consumers (a receiver down at delivery time never
// releases), which delays recycling to the garbage collector; it must
// never undercount, which would recycle a buffer still being read.
func (b *DecBuf) Arm(receivers int) { b.refs.Store(int32(receivers)) }

// Release drops one receiver reference; the last reference resets the
// buffer and pools it. Safe on a nil buffer (unarmed sends attach none)
// and from concurrent receivers.
func (b *DecBuf) Release() {
	if b == nil {
		return
	}
	if b.refs.Add(-1) == 0 {
		b.Insts = b.Insts[:0]
		b.Masks = b.Masks[:0]
		b.Vids = b.Vids[:0]
		decBufPool.Put(b)
	}
}
