package core

import (
	"testing"
	"time"
)

func TestValueSize(t *testing.T) {
	v := Value{ID: 7, Bytes: 8192}
	if v.Size() != 8192 {
		t.Errorf("Size = %d, want 8192", v.Size())
	}
	if (Value{}).Size() != 0 {
		t.Errorf("zero value has nonzero size")
	}
}

// TestBatchSizeAccounting checks the aggregate a consensus instance
// charges to the wire is exactly the sum of its values' payloads —
// protocol throughput figures depend on this accounting.
func TestBatchSizeAccounting(t *testing.T) {
	var b Batch
	if b.Size() != 0 {
		t.Fatalf("empty batch size %d", b.Size())
	}
	want := 0
	for i := 1; i <= 10; i++ {
		b.Vals = append(b.Vals, Value{ID: ValueID(i), Bytes: i * 100})
		want += i * 100
	}
	if b.Size() != want {
		t.Errorf("batch size %d, want %d", b.Size(), want)
	}
}

// TestSkipIsEmpty: Multi-Ring Paxos relies on the skip batch carrying no
// values and no bytes.
func TestSkipIsEmpty(t *testing.T) {
	if len(Skip.Vals) != 0 || Skip.Size() != 0 {
		t.Errorf("Skip = %+v, want empty", Skip)
	}
}

// TestValueRoundTrip pushes a fully populated value through a batch and a
// DeliverFunc and checks every field survives intact (values travel
// coordinator -> acceptor -> learner by copy).
func TestValueRoundTrip(t *testing.T) {
	in := Value{
		ID:       ValueID(3<<40 | 17),
		Bytes:    200,
		Payload:  "cmd",
		Born:     1500 * time.Millisecond,
		PartMask: 0b1010,
	}
	b := Batch{Vals: []Value{in}}
	var got Value
	var gotInst int64
	var deliver DeliverFunc = func(inst int64, v Value) { gotInst, got = inst, v }
	for _, v := range b.Vals {
		deliver(42, v)
	}
	if gotInst != 42 || got != in {
		t.Errorf("delivered (%d, %+v), want (42, %+v)", gotInst, got, in)
	}
}
