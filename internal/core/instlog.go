package core

// InstLog is a ring-indexed log of per-instance protocol records. Every
// ordering protocol in this repository keeps several tables keyed by
// consensus instance (acceptor stores, coordinator open-instance windows,
// learner reorder buffers). Instances are dense — they are numbered
// 0,1,2,... by a single coordinator — and are trimmed roughly in order
// (delivery frontiers and garbage-collection floors only move forward), so
// a map is the wrong structure: it boxes every record, churns buckets at
// megahertz rates and was the protocol layer's main allocation source.
//
// InstLog instead direct-maps instance i to slot i&(len-1) of a
// power-of-two slot array. Because the live window [lowest retained,
// highest seen] is narrow, collisions are rare; when two live instances do
// collide the array doubles until the window fits, exactly like a slice
// append. All operations are O(1), amortized allocation-free, and store
// records in place — no per-entry boxing.
//
// The zero value is an empty log ready to use.
type InstLog[T any] struct {
	slots []logSlot[T]
	n     int
}

type logSlot[T any] struct {
	inst int64
	used bool
	val  T
}

const instLogMinSize = 16

// Len returns the number of live entries.
func (l *InstLog[T]) Len() int { return l.n }

// Get returns the entry for inst, or (nil, false) when absent. The pointer
// is valid until the entry is deleted (slots are recycled), so callers that
// need the record past a Delete must copy it out first.
func (l *InstLog[T]) Get(inst int64) (*T, bool) {
	if len(l.slots) == 0 {
		return nil, false
	}
	s := &l.slots[uint64(inst)&uint64(len(l.slots)-1)]
	if !s.used || s.inst != inst {
		return nil, false
	}
	return &s.val, true
}

// Has reports whether inst is present.
func (l *InstLog[T]) Has(inst int64) bool {
	_, ok := l.Get(inst)
	return ok
}

// Put returns the entry for inst, inserting a zero record if absent.
// The bool reports whether the entry already existed (mirroring map
// lookup-or-insert).
func (l *InstLog[T]) Put(inst int64) (*T, bool) {
	for {
		if len(l.slots) == 0 {
			l.grow()
			continue
		}
		s := &l.slots[uint64(inst)&uint64(len(l.slots)-1)]
		if s.used {
			if s.inst == inst {
				return &s.val, true
			}
			// A live instance from another window era occupies the slot:
			// the ring is too small for the current live span.
			l.grow()
			continue
		}
		s.inst = inst
		s.used = true
		l.n++
		return &s.val, false
	}
}

// Delete removes inst, zeroing its record so references (batch payloads,
// timers) are released immediately. It reports whether the entry existed.
func (l *InstLog[T]) Delete(inst int64) bool {
	if len(l.slots) == 0 {
		return false
	}
	s := &l.slots[uint64(inst)&uint64(len(l.slots)-1)]
	if !s.used || s.inst != inst {
		return false
	}
	var zero T
	s.val = zero
	s.used = false
	l.n--
	return true
}

// Trim deletes every entry in the inclusive instance range [lo, hi],
// invoking drop (when non-nil) on each live record just before removal so
// the owner can release or recycle what the record holds. It is the
// shared back half of the learner-version garbage collection: a
// VersionTracker.Advance range maps straight onto it.
func (l *InstLog[T]) Trim(lo, hi int64, drop func(inst int64, v *T)) {
	for inst := lo; inst <= hi; inst++ {
		if v, ok := l.Get(inst); ok {
			if drop != nil {
				drop(inst, v)
			}
			l.Delete(inst)
		}
	}
}

// Range calls f for every live entry until f returns false. Iteration
// order is slot order — deterministic for a given insertion history, unlike
// a map — but not instance order; callers that need instance order (none of
// the protocols do on their hot paths) must sort.
func (l *InstLog[T]) Range(f func(inst int64, v *T) bool) {
	for i := range l.slots {
		if l.slots[i].used {
			if !f(l.slots[i].inst, &l.slots[i].val) {
				return
			}
		}
	}
}

// grow doubles the slot array and re-places live entries. Re-placement
// cannot collide forever: doubling strictly widens the window the ring can
// hold, and the live span is finite.
func (l *InstLog[T]) grow() {
	size := len(l.slots) * 2
	if size == 0 {
		size = instLogMinSize
	}
retry:
	next := make([]logSlot[T], size)
	mask := uint64(size - 1)
	for i := range l.slots {
		if !l.slots[i].used {
			continue
		}
		d := &next[uint64(l.slots[i].inst)&mask]
		if d.used {
			size *= 2
			goto retry
		}
		*d = l.slots[i]
	}
	l.slots = next
}
