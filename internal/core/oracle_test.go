package core

import (
	"strings"
	"testing"
	"time"
)

func val(id int64, bytes int) Value { return Value{ID: ValueID(id), Bytes: bytes} }

func TestOracleConsistentLearners(t *testing.T) {
	o := NewOracle()
	a, b := o.Learner(), o.Learner()
	for i := int64(0); i < 100; i++ {
		a.Note(0, i, val(1000+i, 64))
	}
	// b lags but delivers the identical prefix.
	for i := int64(0); i < 40; i++ {
		b.Note(0, i, val(1000+i, 64))
	}
	if !o.Consistent() || o.Divergences() != 0 {
		t.Fatalf("consistent prefixes flagged divergent: %s", o.Verdict())
	}
	if o.MinPos() != 40 || o.MaxPos() != 100 {
		t.Fatalf("frontiers = %d/%d, want 40/100", o.MinPos(), o.MaxPos())
	}
	if got := o.Verdict(); got != "learners=2 divergences=0 consistent=true" {
		t.Fatalf("verdict = %q", got)
	}
}

func TestOracleDetectsDivergence(t *testing.T) {
	o := NewOracle()
	a, b := o.Learner(), o.Learner()
	a.Note(0, 0, val(7, 64))
	a.Note(0, 1, val(8, 64))
	b.Note(0, 0, val(7, 64))
	b.Note(0, 1, val(9, 64)) // different value id at position 1
	if o.Consistent() || o.Divergences() != 1 {
		t.Fatalf("divergence not flagged: %s", o.Verdict())
	}
	if !strings.Contains(o.FirstDivergence(), "learner 1 at position 1") {
		t.Fatalf("first divergence = %q", o.FirstDivergence())
	}
	// Further notes from the divergent learner don't pile up divergences
	// and don't corrupt the agreed sequence for others.
	b.Note(0, 2, val(10, 64))
	if o.Divergences() != 1 {
		t.Fatalf("divergences = %d after more notes, want 1", o.Divergences())
	}
	a.Note(0, 2, val(11, 64))
	if o.Divergences() != 1 {
		t.Fatalf("agreed learner flagged: %s", o.FirstDivergence())
	}
}

func TestOracleDetectsSizeMismatch(t *testing.T) {
	o := NewOracle()
	a, b := o.Learner(), o.Learner()
	a.Note(0, 0, val(7, 64))
	b.Note(0, 0, Value{ID: 7, Bytes: 128})
	if o.Consistent() {
		t.Fatal("size mismatch not flagged")
	}
}

func TestOracleTrimsAgreedPrefix(t *testing.T) {
	o := NewOracle()
	a, b := o.Learner(), o.Learner()
	n := int64(3 * oracleTrimAt)
	for i := int64(0); i < n; i++ {
		a.Note(0, i, val(i, 32))
		b.Note(0, i, val(i, 32))
	}
	if len(o.recs) >= oracleTrimAt {
		t.Fatalf("agreed prefix not trimmed: %d records live", len(o.recs))
	}
	if !o.Consistent() {
		t.Fatalf("trim broke consistency: %s", o.Verdict())
	}
	// A mismatch right after a trim is still caught.
	a.Note(0, n, val(n, 32))
	b.Note(0, n, val(n+999, 32))
	if o.Consistent() {
		t.Fatal("post-trim divergence not flagged")
	}
}

func TestOracleNilCursorSafe(t *testing.T) {
	var c *OracleCursor
	c.Note(0, 0, val(1, 1)) // must not panic
	if c.Pos() != 0 {
		t.Fatal("nil cursor pos")
	}
}

func TestDelivTraceChainForwardsPastWindow(t *testing.T) {
	o := NewOracle()
	tr := NewDelivTrace(10) // window closes at 10ns
	tr.Chain(o.Learner())
	tr.Note(5, 0, val(1, 8))
	tr.Note(50, 1, val(2, 8)) // past the window: hash skips it, sink must not
	if tr.Count() != 1 {
		t.Fatalf("trace count = %d, want 1 (window)", tr.Count())
	}
	if o.MaxPos() != 2 {
		t.Fatalf("oracle saw %d deliveries, want 2 (sink bypasses window)", o.MaxPos())
	}
	// Chain on a nil trace is a no-op, not a panic.
	var nilTr *DelivTrace
	nilTr.Chain(o.Learner())
	nilTr.Note(0, 0, val(1, 1))
}

func TestOracleLivenessWindow(t *testing.T) {
	o := NewOracle()
	a := o.Learner()
	a.Note(10*time.Millisecond, 0, val(1, 64))
	a.Note(20*time.Millisecond, 1, val(2, 64))
	// No window set: verdict has no liveness clause, Stalled is false.
	if o.Stalled() {
		t.Fatal("stalled without a liveness window")
	}
	if strings.Contains(o.Verdict(), "stalled") {
		t.Fatalf("verdict mentions liveness without a window: %q", o.Verdict())
	}

	o2 := NewOracle()
	b := o2.Learner()
	o2.SetLivenessWindow(50 * time.Millisecond)
	b.Note(10*time.Millisecond, 0, val(1, 64))
	b.Note(40*time.Millisecond, 1, val(2, 64))
	o2.Seal(80 * time.Millisecond)
	if o2.Stalled() {
		t.Fatalf("gaps under the window flagged as stall (maxGap=%v)", o2.MaxGap())
	}
	if got := o2.Verdict(); got != "learners=1 divergences=0 consistent=true stalled=false" {
		t.Fatalf("verdict = %q", got)
	}
}

func TestOracleLivenessTripsOnGap(t *testing.T) {
	o := NewOracle()
	a := o.Learner()
	o.SetLivenessWindow(50 * time.Millisecond)
	a.Note(10*time.Millisecond, 0, val(1, 64))
	a.Note(200*time.Millisecond, 1, val(2, 64)) // 190ms silent gap
	o.Seal(220 * time.Millisecond)
	if !o.Stalled() || o.MaxGap() != 190*time.Millisecond {
		t.Fatalf("mid-run gap missed: stalled=%v maxGap=%v", o.Stalled(), o.MaxGap())
	}
	if got := o.Verdict(); got != "learners=1 divergences=0 consistent=true stalled=true" {
		t.Fatalf("verdict = %q", got)
	}
}

func TestOracleLivenessSealCountsTrailingGap(t *testing.T) {
	// A coordinator that dies with no failover delivers nothing after the
	// crash: only Seal sees that trailing gap.
	o := NewOracle()
	a := o.Learner()
	o.SetLivenessWindow(50 * time.Millisecond)
	a.Note(10*time.Millisecond, 0, val(1, 64))
	if o.Stalled() {
		t.Fatal("stalled before Seal despite steady deliveries")
	}
	o.Seal(time.Second)
	if !o.Stalled() {
		t.Fatal("trailing delivery-free gap not counted by Seal")
	}
}

func TestOracleLivenessAnyLearnerCounts(t *testing.T) {
	// The gap is global: one live learner is enough to keep the
	// deployment "alive" even if another learner stops.
	o := NewOracle()
	a, b := o.Learner(), o.Learner()
	o.SetLivenessWindow(50 * time.Millisecond)
	for i := int64(0); i < 10; i++ {
		a.Note(time.Duration(i*30)*time.Millisecond, i, val(1+i, 64))
		if i < 2 {
			b.Note(time.Duration(i*30)*time.Millisecond, i, val(1+i, 64))
		}
	}
	o.Seal(280 * time.Millisecond)
	if o.Stalled() {
		t.Fatalf("stalled despite one learner delivering steadily (maxGap=%v)", o.MaxGap())
	}
}

// TestOracleStalledMinorityGap: the liveness gap is over deliveries at
// ANY learner, so one learner going silent (a crashed replica) while the
// rest keep delivering is a minority gap — catch-up territory for the
// snapshot path, not a deployment stall. Stalled must stay false.
func TestOracleStalledMinorityGap(t *testing.T) {
	o := NewOracle()
	o.SetLivenessWindow(10 * time.Millisecond)
	a, b := o.Learner(), o.Learner()
	ms := func(n int64) time.Duration { return time.Duration(n) * time.Millisecond }
	// b delivers instances 0..4 alongside a, then goes silent for 80 ms
	// (8x the window) while a keeps a steady 1 ms cadence.
	for i := int64(0); i < 5; i++ {
		a.Note(ms(i), i, val(100+i, 64))
		b.Note(ms(i), i, val(100+i, 64))
	}
	for i := int64(5); i < 85; i++ {
		a.Note(ms(i), i, val(100+i, 64))
	}
	o.Seal(ms(85))
	if o.Stalled() {
		t.Fatalf("minority gap tripped the stall check: maxGap=%v", o.MaxGap())
	}
	if o.MaxGap() > 2*time.Millisecond {
		t.Fatalf("maxGap = %v with a 1 ms delivery cadence", o.MaxGap())
	}
	if !o.Consistent() {
		t.Fatalf("lagging learner flagged: %s", o.Verdict())
	}
}

// TestOracleSealLateDelivery: Seal closes the observation at end-of-run;
// a delivery noted afterwards with an earlier timestamp (a sink flushed
// out of order during teardown) must neither extend the gap accounting
// nor flip the verdict.
func TestOracleSealLateDelivery(t *testing.T) {
	o := NewOracle()
	o.SetLivenessWindow(50 * time.Millisecond)
	a := o.Learner()
	a.Note(10*time.Millisecond, 0, val(1, 64))
	o.Seal(200 * time.Millisecond)
	if !o.Stalled() {
		t.Fatalf("190 ms trailing gap did not trip a 50 ms window: maxGap=%v", o.MaxGap())
	}
	gap := o.MaxGap()
	a.Note(80*time.Millisecond, 1, val(2, 64)) // late, behind the seal point
	if o.MaxGap() != gap {
		t.Fatalf("late delivery changed maxGap %v -> %v", gap, o.MaxGap())
	}
	if !o.Stalled() {
		t.Fatal("late delivery un-tripped the stall verdict")
	}
	// Sealing again at the same end is idempotent.
	o.Seal(200 * time.Millisecond)
	if o.MaxGap() != gap {
		t.Fatalf("re-seal changed maxGap %v -> %v", gap, o.MaxGap())
	}
}

// TestOracleLivenessTrimmedPrefix: compaction of the agreed prefix (once
// every cursor moves past oracleTrimAt records) must not disturb the gap
// accounting, and divergence detection must still work on post-trim
// positions.
func TestOracleLivenessTrimmedPrefix(t *testing.T) {
	o := NewOracle()
	o.SetLivenessWindow(10 * time.Millisecond)
	a, b := o.Learner(), o.Learner()
	n := int64(oracleTrimAt + 100)
	for i := int64(0); i < n; i++ {
		now := time.Duration(i) * time.Microsecond
		a.Note(now, i, val(1000+i, 64))
		b.Note(now, i, val(1000+i, 64))
	}
	if o.MinPos() != n {
		t.Fatalf("MinPos = %d, want %d", o.MinPos(), n)
	}
	// The prefix is long trimmed; a divergence at the frontier must still
	// be caught against the retained suffix.
	end := time.Duration(n) * time.Microsecond
	a.Note(end, n, val(7, 64))
	b.Note(end, n, val(8, 64))
	if o.Consistent() || o.Divergences() != 1 {
		t.Fatalf("post-trim divergence missed: %s", o.Verdict())
	}
	// Steady microsecond cadence: no gap anywhere near the window.
	o.Seal(end + 2*time.Microsecond)
	if o.Stalled() {
		t.Fatalf("trimming corrupted gap accounting: maxGap=%v", o.MaxGap())
	}
}

// TestOracleSkipCatchUp: a learner that installs a snapshot skips the
// agreed prefix below the snapshot floor without delivering it. The
// cursor lands exactly at the floor, deliveries from there verify
// against the agreed suffix, and the skip itself does not count as
// delivery progress for the liveness clock.
func TestOracleSkipCatchUp(t *testing.T) {
	o := NewOracle()
	o.SetLivenessWindow(time.Hour) // liveness on, but never tripped here
	a, b := o.Learner(), o.Learner()
	ms := func(n int64) time.Duration { return time.Duration(n) * time.Millisecond }
	for i := int64(0); i < 50; i++ {
		a.Note(ms(i), i, val(1000+i, 64))
	}
	// b delivered nothing, then installs a snapshot with floor 30.
	b.Skip(ms(60), 30)
	if b.Pos() != 30 {
		t.Fatalf("cursor after skip at %d, want 30", b.Pos())
	}
	// Skip is catch-up, not delivery: the clock still sits at a's last.
	if o.lastDeliv != ms(49) {
		t.Fatalf("skip refreshed the liveness clock: %v", o.lastDeliv)
	}
	// Resumed deliveries verify against the agreed suffix.
	for i := int64(30); i < 50; i++ {
		b.Note(ms(61+i), i, val(1000+i, 64))
	}
	if !o.Consistent() {
		t.Fatalf("post-skip deliveries flagged: %s", o.FirstDivergence())
	}
	if o.MinPos() != 50 || o.MaxPos() != 50 {
		t.Fatalf("frontiers %d/%d, want 50/50", o.MinPos(), o.MaxPos())
	}
	// A wrong value after the skip is still caught.
	a.Note(ms(200), 50, val(7, 64))
	b.Note(ms(201), 50, val(9, 64))
	if o.Consistent() {
		t.Fatal("post-skip divergence missed")
	}
}
