package core

import "testing"

func TestDecBufReleaseSemantics(t *testing.T) {
	// Nil buffers (unarmed sends) must be releasable.
	(*DecBuf)(nil).Release()

	b := GetDecBuf()
	b.Insts = append(b.Insts, 1, 2, 3)
	b.Masks = append(b.Masks, 0, 0, 7)
	b.Arm(3)
	b.Release()
	b.Release()
	if len(b.Insts) != 3 || len(b.Masks) != 3 {
		t.Fatal("buffer reset before its last receiver released it")
	}
	b.Release() // last receiver: resets and pools
	if len(b.Insts) != 0 || len(b.Masks) != 0 {
		t.Fatalf("buffer not reset by final release: %d ids, %d masks", len(b.Insts), len(b.Masks))
	}
}
