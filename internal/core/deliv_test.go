package core

import (
	"testing"
	"time"
)

func TestDelivTraceDeterministic(t *testing.T) {
	mk := func() *DelivTrace {
		tr := NewDelivTrace(0)
		for i := 0; i < 100; i++ {
			tr.Note(time.Duration(i), int64(i/3), Value{ID: ValueID(i + 1), Bytes: 64})
		}
		return tr
	}
	a, b := mk(), mk()
	if a.Sum() != b.Sum() || a.Count() != 100 {
		t.Fatalf("identical sequences hash differently: %s vs %s (n=%d)", a.Sum(), b.Sum(), a.Count())
	}
	// Any field of any delivery changes the digest.
	c := NewDelivTrace(0)
	for i := 0; i < 100; i++ {
		sz := 64
		if i == 57 {
			sz = 65
		}
		c.Note(time.Duration(i), int64(i/3), Value{ID: ValueID(i + 1), Bytes: sz})
	}
	if c.Sum() == a.Sum() {
		t.Fatal("one-byte size change did not change the digest")
	}
}

func TestDelivTraceWindow(t *testing.T) {
	full := NewDelivTrace(0)
	capped := NewDelivTrace(10 * time.Millisecond)
	prefix := NewDelivTrace(0)
	for i := 0; i < 50; i++ {
		now := time.Duration(i) * time.Millisecond
		v := Value{ID: ValueID(i + 1), Bytes: 8}
		full.Note(now, int64(i), v)
		capped.Note(now, int64(i), v)
		if now < 10*time.Millisecond {
			prefix.Note(now, int64(i), v)
		}
	}
	if capped.Count() != 10 {
		t.Fatalf("windowed trace folded %d deliveries, want 10", capped.Count())
	}
	if capped.Sum() != prefix.Sum() {
		t.Fatal("windowed trace differs from the explicit prefix")
	}
	if capped.Sum() == full.Sum() {
		t.Fatal("window had no effect")
	}
}

func TestDelivTraceNilSafe(t *testing.T) {
	var tr *DelivTrace
	tr.Note(0, 1, Value{ID: 1}) // must not panic
	if tr.Count() != 0 || tr.Sum() != "" {
		t.Fatalf("nil trace reports %d/%q", tr.Count(), tr.Sum())
	}
}

func TestDelivTraceAllocFree(t *testing.T) {
	tr := NewDelivTrace(0)
	v := Value{ID: 7, Bytes: 128}
	avg := testing.AllocsPerRun(1000, func() { tr.Note(time.Millisecond, 3, v) })
	if avg != 0 {
		t.Fatalf("Note allocates %.2f objects/delivery, want 0", avg)
	}
}
