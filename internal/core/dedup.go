package core

import "sort"

// DedupTable is the replicated half of the exactly-once client layer: a
// per-client last-applied-sequence table kept by every learner/executor.
// Client sessions stamp each proposal with (Client, Seq) and retry until
// acked, so the same command can be decided in more than one consensus
// instance; every learner consults the table before applying and
// suppresses (but still acks) a command whose Seq it has already applied.
// Because all learners run the check against the same decided prefix they
// all suppress the same instances, keeping delivered sequences — and the
// safety oracle's agreed frontier — identical across replicas.
//
// The table is O(live clients), not O(commands): only the highest applied
// Seq per client is kept (sessions issue sequences in order and never
// re-issue below an acked one). It rides the snapshot path (mSnapshot) so
// a learner that catches up past the GC trim floor stays dedup-consistent,
// and Trim evicts only clients explicitly retired — a live client's entry
// is never forgotten, even when its last activity predates the GC floor,
// because a retry may still arrive arbitrarily late.
type DedupTable struct {
	m map[int64]dedupState
}

type dedupState struct {
	seq     int64 // highest applied sequence for this client
	inst    int64 // instance whose batch applied seq
	retired bool  // explicitly marked evictable; Trim may drop it
}

// DedupEntry is the wire/snapshot form of one client's table row.
type DedupEntry struct {
	Client int64
	Seq    int64
	Inst   int64
}

// DedupEntryBytes is the modeled wire footprint of one snapshot entry.
const DedupEntryBytes = 24

// NewDedupTable returns an empty table.
func NewDedupTable() *DedupTable { return &DedupTable{m: map[int64]dedupState{}} }

// Len returns the number of clients tracked.
func (t *DedupTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.m)
}

// Dup reports whether (client, seq) was already applied: seq at or below
// the client's last applied sequence. A retried command for which Dup is
// true must be acked from the table, not re-executed.
func (t *DedupTable) Dup(client, seq int64) bool {
	if t == nil {
		return false
	}
	s, ok := t.m[client]
	return ok && seq <= s.seq
}

// Commit records that (client, seq) was applied by instance inst. It
// returns true when the sequence is new (the caller should execute and
// deliver the command) and false for a duplicate (suppress, ack from the
// table). The recorded sequence never regresses. Activity revives a
// retired client.
func (t *DedupTable) Commit(client, seq, inst int64) bool {
	s, ok := t.m[client]
	if ok && seq <= s.seq {
		return false
	}
	t.m[client] = dedupState{seq: seq, inst: inst}
	return true
}

// Seq returns the client's last applied sequence (0 if unknown).
func (t *DedupTable) Seq(client int64) int64 {
	if t == nil {
		return 0
	}
	return t.m[client].seq
}

// Retire marks a client evictable: a later Trim past its last activity
// may drop its row. Sessions that announce departure (or an external
// liveness authority) call this; Trim alone never guesses.
func (t *DedupTable) Retire(client int64) {
	if s, ok := t.m[client]; ok {
		s.retired = true
		t.m[client] = s
	}
}

// Trim drops retired clients whose last activity instance is below the GC
// floor — their acks can no longer be in flight once the log below floor
// is unreachable. Live (non-retired) clients are always kept, no matter
// how old their last activity: a session that is merely idle may still
// retry. Returns how many rows were dropped.
func (t *DedupTable) Trim(floor int64) int {
	if t == nil {
		return 0
	}
	n := 0
	for c, s := range t.m {
		if s.retired && s.inst < floor {
			delete(t.m, c)
			n++
		}
	}
	return n
}

// Snapshot serializes the table for the snapshot path, sorted by client
// so the encoding (and anything hashed over it) is deterministic.
func (t *DedupTable) Snapshot() []DedupEntry {
	if t == nil || len(t.m) == 0 {
		return nil
	}
	out := make([]DedupEntry, 0, len(t.m))
	for c, s := range t.m {
		out = append(out, DedupEntry{Client: c, Seq: s.seq, Inst: s.inst})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// Install merges a snapshot into the table. Merging never regresses a
// sequence: the receiving learner may have applied past the snapshot's
// row for some client (snapshots lag the frontier).
func (t *DedupTable) Install(entries []DedupEntry) {
	for _, e := range entries {
		if s, ok := t.m[e.Client]; ok && e.Seq <= s.seq {
			continue
		}
		t.m[e.Client] = dedupState{seq: e.Seq, inst: e.Inst}
	}
}
