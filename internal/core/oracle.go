package core

import (
	"fmt"
	"time"
)

// Oracle is a streaming cross-replica safety checker: it asserts that no
// two learners ever deliver divergent sequences (prefix consistency —
// every learner's delivered sequence is a prefix of one shared agreed
// sequence of (instance id, value id, value size) records). This is the
// invariant Ring Paxos promises to keep under coordinator failure,
// message loss, and partitions, so the fault experiments wire one oracle
// across all learners of a deployment and pin its verdict as the third
// golden layer.
//
// Each learner gets its own OracleCursor (from Learner), chained behind
// that learner's DelivTrace via DelivTrace.Chain. The first cursor to
// reach a position appends the record to the agreed sequence; every later
// cursor is checked against it. Once the slowest cursor moves past a
// prefix, those records are trimmed, so memory is bounded by the spread
// between the fastest and slowest learner, not by run length.
//
// The verdict deliberately contains only schedule-invariant facts (number
// of learners, number of divergent learners) so it is byte-identical
// across fault seeds and -par levels; per-learner progress counts are
// exposed separately for experiment tables, which ARE seed-dependent.
type Oracle struct {
	recs     []delivRec // agreed sequence, positions [base, base+len)
	base     int64      // absolute position of recs[0]
	cursors  []*OracleCursor
	firstDiv string // description of the first divergence observed

	// Liveness check (opt-in via SetLivenessWindow): the oracle tracks the
	// longest sim-time gap with no delivery at ANY learner. A gap longer
	// than the window means the deployment stalled — e.g. a dead
	// coordinator with no failover. Sealed by Seal at end of run so the
	// trailing gap (stall that never recovered) is counted too.
	liveWindow time.Duration
	lastDeliv  time.Duration
	maxGap     time.Duration

	// Exactly-once client check (opt-in via EnableClientCheck): the fourth
	// safety dimension. Tracks, per cursor, the last applied sequence of
	// every client session so a (client, seq) applied twice ON THE SAME
	// replica is flagged (prefix consistency alone cannot see it: if every
	// learner re-executes the same duplicate, the sequences still match).
	// The rig additionally feeds issued/acked proposals (NoteClientIssued /
	// NoteClientAcked) so the verdict can state whether every ack was
	// preceded by an application and how many issued proposals were never
	// acked — the lost-proposal gap a client retry layer exists to close.
	clientCheck bool
	clientRecs  map[int64]clientSeq // frontier position -> stamped identity
	appliedSeq  map[int64]int64     // client -> max seq on the agreed frontier
	issuedSeq   map[int64]int64     // client -> max seq issued by a session
	ackSeq      map[int64]int64     // client -> max seq acked to a session
	dupApplied  int                 // (client, seq) applications beyond the first, any replica
	firstDup    string
}

type clientSeq struct {
	client int64
	seq    int64
}

type delivRec struct {
	inst  int64
	vid   ValueID
	bytes int32
}

// oracleTrimAt is how far the slowest cursor may lag before the agreed
// prefix behind it is compacted away.
const oracleTrimAt = 8192

// NewOracle returns an oracle with no learners registered.
func NewOracle() *Oracle {
	return &Oracle{}
}

// OracleCursor is one learner's view into the shared agreed sequence. It
// implements DelivSink; its Note is allocation-free on the agreed path.
type OracleCursor struct {
	o         *Oracle
	idx       int   // learner ordinal, for divergence messages
	pos       int64 // absolute position of the next delivery
	divergent bool

	// clientLast is this replica's applied-sequence view per client, used
	// by the exactly-once check. Nil until the first stamped value (or
	// snapshot skip over one), so unstamped workloads pay nothing.
	clientLast map[int64]int64
}

// Learner registers a new learner and returns its cursor. Call once per
// learner, before the run starts.
func (o *Oracle) Learner() *OracleCursor {
	c := &OracleCursor{o: o, idx: len(o.cursors)}
	o.cursors = append(o.cursors, c)
	return c
}

// Note folds one delivery from this learner. now only feeds the optional
// liveness check (safety is about order, not time).
func (c *OracleCursor) Note(now time.Duration, inst int64, v Value) {
	if c == nil {
		return
	}
	o := c.o
	if o.liveWindow > 0 && now > o.lastDeliv {
		if gap := now - o.lastDeliv; gap > o.maxGap {
			o.maxGap = gap
		}
		o.lastDeliv = now
	}
	if o.clientCheck && v.Client != 0 {
		c.noteClient(v.Client, v.Seq)
	}
	rec := delivRec{inst: inst, vid: v.ID, bytes: int32(v.Bytes)}
	i := c.pos - o.base
	c.pos++
	if c.divergent {
		return // already off the agreed sequence; keep counting positions only
	}
	if i < int64(len(o.recs)) {
		if o.recs[i] != rec {
			c.divergent = true
			if o.firstDiv == "" {
				o.firstDiv = fmt.Sprintf(
					"learner %d at position %d: delivered (inst=%d vid=%d bytes=%d), agreed (inst=%d vid=%d bytes=%d)",
					c.idx, c.pos-1, rec.inst, rec.vid, rec.bytes,
					o.recs[i].inst, o.recs[i].vid, o.recs[i].bytes)
			}
		}
		o.maybeTrim()
		return
	}
	// Frontier: positions advance one at a time, so i == len(recs) here.
	if o.clientCheck && v.Client != 0 {
		o.clientRecs[o.base+i] = clientSeq{client: v.Client, seq: v.Seq}
		if v.Seq > o.appliedSeq[v.Client] {
			o.appliedSeq[v.Client] = v.Seq
		}
	}
	o.recs = append(o.recs, rec)
}

// noteClient folds one stamped application into this replica's per-client
// view; a sequence at or below the last applied one is a duplicate
// application — the exactly-once violation the dedup table exists to
// prevent.
func (c *OracleCursor) noteClient(client, seq int64) {
	if c.clientLast == nil {
		c.clientLast = map[int64]int64{}
	}
	if last, ok := c.clientLast[client]; ok && seq <= last {
		c.o.dupApplied++
		if c.o.firstDup == "" {
			c.o.firstDup = fmt.Sprintf(
				"learner %d re-applied client %d seq %d (last applied %d)",
				c.idx, client, seq, last)
		}
		return
	}
	c.clientLast[client] = seq
}

// Skip implements DelivSkipSink: the learner installed a snapshot and
// jumped its frontier to toInst without delivering the skipped values.
// The cursor advances past every agreed record below toInst unverified —
// a snapshot is state transfer, not delivery, and its correctness rests
// on the acceptors' agreed state. By the time a snapshot can be sent the
// trim floor has passed toInst, which requires every live learner to
// have reported (and therefore noted to this oracle) instances up to it,
// so the agreed sequence always already covers the skipped prefix; if
// that invariant ever breaks, the cursor's later deliveries land at the
// frontier out of order and divergence is flagged as usual. The liveness
// clock is deliberately not refreshed: a snapshot is catch-up, and only
// real deliveries should count as progress.
func (c *OracleCursor) Skip(now time.Duration, toInst int64) {
	if c == nil {
		return
	}
	o := c.o
	for {
		i := c.pos - o.base
		if i < 0 || i >= int64(len(o.recs)) || o.recs[i].inst >= toInst {
			break
		}
		// A snapshot carries the dedup table, so the catching-up replica
		// knows every client sequence applied in the skipped prefix: fold
		// them into its view, or a post-snapshot retry of one of those
		// commands would be misread as a fresh (not duplicate) application.
		if o.clientCheck {
			if cs, ok := o.clientRecs[c.pos]; ok {
				if c.clientLast == nil {
					c.clientLast = map[int64]int64{}
				}
				if cs.seq > c.clientLast[cs.client] {
					c.clientLast[cs.client] = cs.seq
				}
			}
		}
		c.pos++
	}
	o.maybeTrim()
}

// Pos returns how many deliveries this cursor has observed.
func (c *OracleCursor) Pos() int64 {
	if c == nil {
		return 0
	}
	return c.pos
}

func (o *Oracle) maybeTrim() {
	min := int64(-1)
	for _, c := range o.cursors {
		if min < 0 || c.pos < min {
			min = c.pos
		}
	}
	if keep := min - o.base; keep >= oracleTrimAt {
		n := copy(o.recs, o.recs[keep:])
		o.recs = o.recs[:n]
		o.base = min
		for p := range o.clientRecs {
			if p < o.base {
				delete(o.clientRecs, p)
			}
		}
	}
}

// Learners returns how many cursors are registered.
func (o *Oracle) Learners() int { return len(o.cursors) }

// Divergences returns how many learners have left the agreed sequence.
func (o *Oracle) Divergences() int {
	n := 0
	for _, c := range o.cursors {
		if c.divergent {
			n++
		}
	}
	return n
}

// Consistent reports whether every learner's sequence is still a prefix
// of the agreed one.
func (o *Oracle) Consistent() bool { return o.Divergences() == 0 }

// FirstDivergence describes the first mismatch observed, or "" if none.
func (o *Oracle) FirstDivergence() string { return o.firstDiv }

// MinPos and MaxPos return the slowest and fastest learner frontiers.
func (o *Oracle) MinPos() int64 {
	min := int64(0)
	for i, c := range o.cursors {
		if i == 0 || c.pos < min {
			min = c.pos
		}
	}
	return min
}

func (o *Oracle) MaxPos() int64 {
	max := int64(0)
	for _, c := range o.cursors {
		if c.pos > max {
			max = c.pos
		}
	}
	return max
}

// SetLivenessWindow enables the liveness check: after Seal, Stalled
// reports whether any delivery-free gap exceeded w. Call before the run.
func (o *Oracle) SetLivenessWindow(w time.Duration) { o.liveWindow = w }

// EnableClientCheck turns on the exactly-once client dimension: duplicate
// applications of a stamped (client, seq) on any single replica are
// counted, and the issued/acked bookkeeping fed by NoteClientIssued /
// NoteClientAcked is folded into the verdict. Opt-in so that verdicts
// (and pinned safety digests) of experiments without client sessions stay
// byte-identical. Call before the run.
func (o *Oracle) EnableClientCheck() {
	o.clientCheck = true
	if o.clientRecs == nil {
		o.clientRecs = map[int64]clientSeq{}
		o.appliedSeq = map[int64]int64{}
		o.issuedSeq = map[int64]int64{}
		o.ackSeq = map[int64]int64{}
	}
}

// NoteClientIssued records that a session issued (client, seq). Sessions
// issue sequences in order, so only the maximum is kept.
func (o *Oracle) NoteClientIssued(client, seq int64) {
	if o.clientCheck && seq > o.issuedSeq[client] {
		o.issuedSeq[client] = seq
	}
}

// NoteClientAcked records that a session received the ack for (client,
// seq) — from execution or from a learner's dedup table.
func (o *Oracle) NoteClientAcked(client, seq int64) {
	if o.clientCheck && seq > o.ackSeq[client] {
		o.ackSeq[client] = seq
	}
}

// DupApplications returns how many stamped applications were observed
// beyond the first for their (client, seq) on some replica.
func (o *Oracle) DupApplications() int { return o.dupApplied }

// FirstDuplicate describes the first duplicate application, or "".
func (o *Oracle) FirstDuplicate() string { return o.firstDup }

// ClientSessions returns how many distinct client identities the oracle
// saw (issued or applied).
func (o *Oracle) ClientSessions() int {
	n := len(o.issuedSeq)
	for c := range o.appliedSeq {
		if _, ok := o.issuedSeq[c]; !ok {
			n++
		}
	}
	return n
}

// AckGaps returns how many clients were acked a sequence that never
// reached the agreed frontier — an ack without an application.
func (o *Oracle) AckGaps() int {
	n := 0
	for c, s := range o.ackSeq {
		if s > o.appliedSeq[c] {
			n++
		}
	}
	return n
}

// Unacked returns how many issued proposals were never acked: the
// lost-proposal count a retry/redirect layer must drive to zero.
func (o *Oracle) Unacked() int {
	n := int64(0)
	for c, s := range o.issuedSeq {
		if a := o.ackSeq[c]; s > a {
			n += s - a
		}
	}
	return int(n)
}

// Seal closes the liveness observation at sim time end, folding in the
// trailing delivery-free gap. Call once, after the run.
func (o *Oracle) Seal(end time.Duration) {
	if o.liveWindow > 0 && end > o.lastDeliv {
		if gap := end - o.lastDeliv; gap > o.maxGap {
			o.maxGap = gap
		}
		o.lastDeliv = end
	}
}

// Stalled reports whether the liveness check tripped. Always false when
// no window was set.
func (o *Oracle) Stalled() bool { return o.liveWindow > 0 && o.maxGap > o.liveWindow }

// MaxGap returns the longest observed delivery-free gap. Seed-dependent:
// experiment tables may print it, verdicts must not embed its value.
func (o *Oracle) MaxGap() time.Duration { return o.maxGap }

// Verdict summarizes the safety outcome using only schedule-invariant
// facts, so the string (and any digest over it) is identical across
// fault seeds and -par levels for a given deployment shape. The liveness
// outcome is appended only when a window was set, keeping pre-liveness
// verdicts (and their pinned digests) byte-identical.
func (o *Oracle) Verdict() string {
	s := fmt.Sprintf("learners=%d divergences=%d consistent=%v",
		o.Learners(), o.Divergences(), o.Consistent())
	if o.liveWindow > 0 {
		s += fmt.Sprintf(" stalled=%v", o.Stalled())
	}
	if o.clientCheck {
		s += fmt.Sprintf(" clients=%d dups=%d ackgaps=%d unacked=%d",
			o.ClientSessions(), o.DupApplications(), o.AckGaps(), o.Unacked())
	}
	return s
}
