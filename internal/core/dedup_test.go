package core

import (
	"math/rand"
	"testing"
)

// TestDedupTableBasics covers the deterministic contract: first commit
// applies, retry suppresses, commits never regress, snapshot/install
// round-trips and merges without regressing.
func TestDedupTableBasics(t *testing.T) {
	tab := NewDedupTable()
	if tab.Dup(7, 1) {
		t.Fatal("empty table reported a duplicate")
	}
	if !tab.Commit(7, 1, 10) {
		t.Fatal("first commit reported duplicate")
	}
	if !tab.Dup(7, 1) || tab.Commit(7, 1, 99) {
		t.Fatal("retry of applied seq not suppressed")
	}
	if tab.Seq(7) != 1 {
		t.Fatalf("seq = %d, want 1", tab.Seq(7))
	}
	if !tab.Commit(7, 2, 11) || tab.Seq(7) != 2 {
		t.Fatal("next seq did not apply")
	}
	// Install never regresses; unknown clients are adopted.
	tab.Install([]DedupEntry{{Client: 7, Seq: 1, Inst: 10}, {Client: 9, Seq: 4, Inst: 12}})
	if tab.Seq(7) != 2 || tab.Seq(9) != 4 {
		t.Fatalf("install merged wrong: seq7=%d seq9=%d", tab.Seq(7), tab.Seq(9))
	}
	snap := tab.Snapshot()
	if len(snap) != 2 || snap[0].Client != 7 || snap[1].Client != 9 {
		t.Fatalf("snapshot not sorted by client: %+v", snap)
	}
	fresh := NewDedupTable()
	fresh.Install(snap)
	if fresh.Seq(7) != 2 || fresh.Seq(9) != 4 {
		t.Fatal("snapshot round-trip lost rows")
	}
}

// TestDedupTableNilSafe: a nil table (layer disabled) answers queries
// harmlessly.
func TestDedupTableNilSafe(t *testing.T) {
	var tab *DedupTable
	if tab.Dup(1, 1) || tab.Seq(1) != 0 || tab.Len() != 0 || tab.Trim(100) != 0 {
		t.Fatal("nil table misbehaved")
	}
	if tab.Snapshot() != nil {
		t.Fatal("nil table produced a snapshot")
	}
}

// TestDedupTableProperty drives random interleavings of commit / retry /
// trim / retire across a population of clients and asserts the two table
// invariants: a client's recorded sequence never regresses, and Trim
// never forgets a live (non-retired) client, even when its last activity
// instance is below the GC floor.
func TestDedupTableProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := NewDedupTable()
		const clients = 6
		next := make([]int64, clients+1)    // next seq each client will commit
		applied := make([]int64, clients+1) // model: highest applied seq
		retired := make([]bool, clients+1)
		inst := int64(0)
		floor := int64(0)
		for op := 0; op < 4000; op++ {
			c := int64(rng.Intn(clients) + 1)
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // commit the client's next sequence
				inst++
				next[c]++
				if !tab.Commit(c, next[c], inst) {
					t.Fatalf("seed %d op %d: fresh seq %d for client %d reported dup", seed, op, next[c], c)
				}
				applied[c] = next[c]
				retired[c] = false // activity revives
			case 4, 5, 6: // retry a random already-applied sequence
				// Only live clients retry: a retired client's row may have
				// been trimmed, which legitimately forfeits dedup coverage
				// (that is why Trim refuses to drop anyone NOT retired).
				if applied[c] == 0 || retired[c] {
					continue
				}
				s := rng.Int63n(applied[c]) + 1
				inst++
				if tab.Commit(c, s, inst) {
					t.Fatalf("seed %d op %d: retry of applied seq %d client %d re-applied", seed, op, s, c)
				}
				if !tab.Dup(c, s) {
					t.Fatalf("seed %d op %d: Dup(%d,%d) = false after apply", seed, op, c, s)
				}
			case 7: // retire a client (it may be revived by later commits)
				tab.Retire(c)
				if applied[c] > 0 {
					retired[c] = true
				}
			default: // advance the floor and trim
				floor += rng.Int63n(20)
				tab.Trim(floor)
			}
			// Invariants, checked after every operation.
			for cc := int64(1); cc <= clients; cc++ {
				if applied[cc] == 0 {
					continue
				}
				if got := tab.Seq(cc); got > applied[cc] {
					t.Fatalf("seed %d op %d: client %d seq %d beyond model %d", seed, op, cc, got, applied[cc])
				} else if !retired[cc] && got != applied[cc] {
					t.Fatalf("seed %d op %d: live client %d forgotten or regressed (seq %d, want %d, floor %d)",
						seed, op, cc, got, applied[cc], floor)
				}
			}
		}
	}
}
