package core

import "testing"

func TestInstLogBasics(t *testing.T) {
	var l InstLog[int]
	if l.Len() != 0 || l.Has(0) {
		t.Fatal("zero value not empty")
	}
	v, existed := l.Put(7)
	if existed || v == nil {
		t.Fatal("first Put must report absent")
	}
	*v = 42
	if got, ok := l.Get(7); !ok || *got != 42 {
		t.Fatalf("Get(7) = %v, %v", got, ok)
	}
	if v2, existed := l.Put(7); !existed || *v2 != 42 {
		t.Fatal("second Put must return the live record")
	}
	if !l.Delete(7) || l.Has(7) || l.Len() != 0 {
		t.Fatal("Delete failed")
	}
	if l.Delete(7) {
		t.Fatal("double Delete must report false")
	}
}

// TestInstLogWrapAround drives a sliding window of live instances far past
// the ring size several times over: every slot is reused with many
// different instance numbers, and stale slot contents must never surface.
func TestInstLogWrapAround(t *testing.T) {
	var l InstLog[int64]
	const window = 24 // wider than the minimum ring, forcing one growth
	for inst := int64(0); inst < 10_000; inst++ {
		v, existed := l.Put(inst)
		if existed {
			t.Fatalf("inst %d: fresh instance reported as existing", inst)
		}
		*v = inst * 3
		if inst >= window {
			trim := inst - window
			if got, ok := l.Get(trim); !ok || *got != trim*3 {
				t.Fatalf("inst %d: trim target %d corrupted: %v %v", inst, trim, got, ok)
			}
			if !l.Delete(trim) {
				t.Fatalf("Delete(%d) failed", trim)
			}
		}
		if l.Len() > window+1 {
			t.Fatalf("Len %d exceeds window", l.Len())
		}
		// An instance far outside the live window must read as absent even
		// though its slot is occupied by a live neighbor.
		if l.Has(inst + 1<<30) {
			t.Fatal("aliased instance reported present")
		}
	}
}

// TestInstLogOutOfOrderTrim deletes entries in arbitrary order (the
// coordinator's open-instance window decides out of order) and re-inserts
// later instances into the recycled slots.
func TestInstLogOutOfOrderTrim(t *testing.T) {
	var l InstLog[string]
	for inst := int64(0); inst < 64; inst++ {
		v, _ := l.Put(inst)
		*v = "v"
	}
	for _, inst := range []int64{33, 7, 63, 0, 12, 48} {
		if !l.Delete(inst) {
			t.Fatalf("Delete(%d)", inst)
		}
	}
	if l.Len() != 58 {
		t.Fatalf("Len = %d, want 58", l.Len())
	}
	for _, inst := range []int64{33, 7, 63, 0, 12, 48} {
		if l.Has(inst) {
			t.Fatalf("deleted %d still present", inst)
		}
	}
	// Recycle the freed slots with new instances one full ring later.
	for _, inst := range []int64{33, 7, 63, 0, 12, 48} {
		later := inst + 128
		v, existed := l.Put(later)
		if existed {
			t.Fatalf("Put(%d) found stale entry", later)
		}
		*v = "later"
		if got, _ := l.Get(later); *got != "later" {
			t.Fatalf("Get(%d) corrupted", later)
		}
	}
}

// TestInstLogSparseGrowth inserts two live instances far apart — the ring
// must double until both fit without evicting either.
func TestInstLogSparseGrowth(t *testing.T) {
	var l InstLog[int]
	a, _ := l.Put(3)
	*a = 1
	b, _ := l.Put(3 + 4096) // collides with 3 in any ring smaller than 8K
	*b = 2
	if got, ok := l.Get(3); !ok || *got != 1 {
		t.Fatal("low instance lost during growth")
	}
	if got, ok := l.Get(3 + 4096); !ok || *got != 2 {
		t.Fatal("high instance lost during growth")
	}
}

func TestInstLogRange(t *testing.T) {
	var l InstLog[int]
	want := map[int64]int{2: 20, 5: 50, 9: 90}
	for inst, val := range want {
		v, _ := l.Put(inst)
		*v = val
	}
	got := map[int64]int{}
	l.Range(func(inst int64, v *int) bool {
		got[inst] = *v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for inst, val := range want {
		if got[inst] != val {
			t.Fatalf("Range[%d] = %d, want %d", inst, got[inst], val)
		}
	}
	n := 0
	l.Range(func(int64, *int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop Range visited %d", n)
	}
}

func TestValueSlab(t *testing.T) {
	var s ValueSlab
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			s.Push(Value{ID: ValueID(round*100 + i)})
		}
		for i := 0; i < 100; i++ {
			if got := s.At(i).ID; got != ValueID(round*100+i) {
				t.Fatalf("round %d: At(%d) = %d", round, i, got)
			}
		}
		// Drain in two unequal steps to exercise partial pops.
		s.PopFront(37)
		if s.Len() != 63 || s.At(0).ID != ValueID(round*100+37) {
			t.Fatalf("round %d: partial pop broken", round)
		}
		s.PopFront(63)
		if s.Len() != 0 {
			t.Fatalf("round %d: slab not empty", round)
		}
	}
}

func TestBatchPoolRecycles(t *testing.T) {
	var p BatchPool
	s := p.Get(10)
	if cap(s) < 10 || len(s) != 0 {
		t.Fatalf("Get(10): len %d cap %d", len(s), cap(s))
	}
	s = append(s, Value{ID: 1, Payload: "x"})
	p.Put(s)
	s2 := p.Get(9) // same class: must reuse the recycled array
	if cap(s2) != cap(s) || &s2[:1][0] != &s[:1][0] {
		t.Fatal("pool did not recycle the array")
	}
	if s2[:1][0].Payload != nil {
		t.Fatal("recycled array not cleared")
	}
	// A bigger request must not get the small array.
	s3 := p.Get(cap(s) + 1)
	if cap(s3) < cap(s)+1 {
		t.Fatal("Get returned undersized array")
	}
}
