package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"time"
)

// DelivTrace folds one learner's delivered command sequence into a
// streaming SHA-256: for every delivered value, in delivery order, it
// hashes (consensus instance id, value id, value size). Nothing else —
// no timestamps, no message or retransmission counts — so the digest
// captures exactly the agreed delivery sequence, the invariant every
// atomic broadcast protocol in this repository is judged by, and stays
// byte-stable across changes that only reshuffle message schedules.
//
// A trace can be bounded to a prefix window of simulated time: deliveries
// at or past `until` are ignored. The reproduction harness uses a window
// that closes before the first garbage-collection version report can fire
// (see bench.DelivWindow), which is what makes the digests invariant
// under GC-interval and GC-timer changes.
//
// The trace is allocation-free per delivery (the scratch buffer lives in
// the struct), so attaching one to a protocol hot path does not perturb
// the allocation guards. All methods are safe on a nil receiver, which
// lets call sites record unconditionally.
type DelivTrace struct {
	h     hash.Hash
	until time.Duration
	buf   [20]byte
	n     int64
	sink  DelivSink
}

// DelivSink observes the same delivery stream a DelivTrace hashes.
// OracleCursor implements it, which is how the cross-replica safety
// oracle taps every learner's Trace hook without the protocol agents
// knowing about it.
type DelivSink interface {
	Note(now time.Duration, inst int64, v Value)
}

// DelivSkipSink is the optional sink extension for snapshot catch-up: a
// learner that installs a snapshot jumps its delivery frontier to toInst
// without delivering the skipped values, and a sink implementing this
// interface (OracleCursor does) is told so it can advance its own view.
type DelivSkipSink interface {
	Skip(now time.Duration, toInst int64)
}

// Chain attaches a sink that receives every delivery noted on the trace.
// The sink sees the full stream: the trace's prefix window bounds only
// its own hash, not the forwarded deliveries (a safety oracle must watch
// the whole run, not the first 45 ms). No-op on a nil trace.
func (t *DelivTrace) Chain(s DelivSink) {
	if t != nil {
		t.sink = s
	}
}

// NewDelivTrace returns an empty trace. until > 0 bounds recording to
// deliveries strictly before that simulated instant; 0 records forever.
func NewDelivTrace(until time.Duration) *DelivTrace {
	return &DelivTrace{h: sha256.New(), until: until}
}

// Note folds one delivered value. now is the learner's local time at
// delivery (used only to honor the window; it is never hashed).
func (t *DelivTrace) Note(now time.Duration, inst int64, v Value) {
	if t == nil {
		return
	}
	if t.sink != nil {
		t.sink.Note(now, inst, v)
	}
	if t.until > 0 && now >= t.until {
		return
	}
	binary.LittleEndian.PutUint64(t.buf[0:8], uint64(inst))
	binary.LittleEndian.PutUint64(t.buf[8:16], uint64(v.ID))
	binary.LittleEndian.PutUint32(t.buf[16:20], uint32(v.Bytes))
	t.h.Write(t.buf[:])
	t.n++
}

// Skip records a snapshot install: the learner's frontier jumped to
// toInst without delivering the skipped values. The jump is folded into
// the hash as a sentinel record (instance toInst, value id ~0, size ~0 —
// a shape no real delivery produces), so two learners whose only
// difference is a snapshot catch-up hash differently by construction,
// and it is forwarded to a chained DelivSkipSink. Safe on nil.
func (t *DelivTrace) Skip(now time.Duration, toInst int64) {
	if t == nil {
		return
	}
	if s, ok := t.sink.(DelivSkipSink); ok {
		s.Skip(now, toInst)
	}
	if t.until > 0 && now >= t.until {
		return
	}
	binary.LittleEndian.PutUint64(t.buf[0:8], uint64(toInst))
	binary.LittleEndian.PutUint64(t.buf[8:16], ^uint64(0))
	binary.LittleEndian.PutUint32(t.buf[16:20], ^uint32(0))
	t.h.Write(t.buf[:])
}

// Count returns how many deliveries the trace has folded.
func (t *DelivTrace) Count() int64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Sum returns the hex SHA-256 of the folded sequence so far.
func (t *DelivTrace) Sum() string {
	if t == nil {
		return ""
	}
	return hex.EncodeToString(t.h.Sum(nil))
}
