// Package core holds the value and delivery types shared by every ordering
// protocol in the repository (Paxos, Ring Paxos, Multi-Ring Paxos and the
// baseline broadcast protocols).
package core

import "time"

// ValueID uniquely identifies a proposed value. Ring Paxos runs consensus on
// value ids while payloads travel separately (dissertation §3.3.2).
type ValueID int64

// Value is an application-level message submitted to an ordering protocol.
// Bytes is its wire size; Payload is an opaque application command carried
// end-to-end (nil for synthetic benchmark traffic).
type Value struct {
	ID      ValueID
	Bytes   int
	Payload any
	// Born is the proposal time, used by harnesses to compute delivery
	// latency.
	Born time.Duration
	// PartMask is the set of service partitions this value addresses, as a
	// bitmask, for the partitioned M-Ring Paxos of Chapter 4 (DSN 2011).
	// Zero means "no partitioning": the value goes to every learner.
	PartMask uint64
	// Client and Seq form the exactly-once identity of a client proposal:
	// Client is the submitting session's node id, Seq its per-session
	// sequence number. Client == 0 (the zero value) means the value was not
	// submitted through a client session — the entire exactly-once layer
	// (learner dedup tables, acks, NACKs) is skipped for such values, so
	// protocols that never see stamped values behave byte-identically to
	// before the layer existed.
	Client int64
	Seq    int64
}

// Size returns the value's wire footprint in bytes.
func (v Value) Size() int { return v.Bytes }

// Batch is a set of values decided in a single consensus instance. Ordering
// protocols batch small application messages into fixed-size packets
// (8 KB for M-Ring Paxos, 32 KB for U-Ring Paxos).
type Batch struct {
	Vals []Value
}

// Size returns the aggregate payload size of the batch.
func (b Batch) Size() int {
	n := 0
	for _, v := range b.Vals {
		n += v.Bytes
	}
	return n
}

// DeliverFunc is invoked by a learner for every value, in delivery order.
// inst is the consensus instance that decided the value's batch.
type DeliverFunc func(inst int64, v Value)

// Skip marks a skipped (empty) consensus instance in Multi-Ring Paxos.
// A skip batch carries no values.
var Skip = Batch{}
