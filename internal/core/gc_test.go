package core

import "testing"

func TestVersionTrackerAdvance(t *testing.T) {
	var vt VersionTracker
	if _, _, ok := vt.Advance(2); ok {
		t.Fatal("advanced with no reports")
	}
	// expect == 0 with no reports must not yield the sentinel-min range.
	if _, _, ok := vt.Advance(0); ok {
		t.Fatal("advanced an empty tracker with expect 0")
	}
	vt.Report(1, 5)
	if _, _, ok := vt.Advance(2); ok {
		t.Fatal("advanced with one of two reporters")
	}
	vt.Report(2, 9)
	lo, hi, ok := vt.Advance(2)
	if !ok || lo != 0 || hi != 5 {
		t.Fatalf("Advance = (%d, %d, %v), want (0, 5, true)", lo, hi, ok)
	}
	if vt.Floor() != 6 {
		t.Fatalf("floor %d after trim to 5, want 6", vt.Floor())
	}
	// No news: min (5) is now behind the floor.
	if _, _, ok := vt.Advance(2); ok {
		t.Fatal("advanced without new reports")
	}
	// The slower consumer catches up; the floor moves to the new minimum.
	vt.Report(1, 9)
	lo, hi, ok = vt.Advance(2)
	if !ok || lo != 6 || hi != 9 || vt.Floor() != 10 {
		t.Fatalf("Advance = (%d, %d, %v) floor %d, want (6, 9, true) floor 10", lo, hi, ok, vt.Floor())
	}
}

// TestVersionTrackerStragglerHoldsFloor is the core of the straggler
// guarantee: one consumer stuck at an old version pins the floor for the
// whole group, no matter how far ahead the others run.
func TestVersionTrackerStragglerHoldsFloor(t *testing.T) {
	var vt VersionTracker
	vt.Report(1, 3)
	vt.Report(2, 1000)
	vt.Report(3, 1000000)
	if _, hi, ok := vt.Advance(3); !ok || hi != 3 {
		t.Fatalf("hi = %d, want the straggler's version 3", hi)
	}
	// Repeated fast-consumer reports must not move the floor past the
	// straggler.
	vt.Report(2, 2000)
	vt.Report(3, 2000000)
	if _, _, ok := vt.Advance(3); ok {
		t.Fatal("floor advanced past the straggler")
	}
	if vt.Floor() != 4 {
		t.Fatalf("floor %d, want 4 (straggler at 3)", vt.Floor())
	}
}

func TestVersionTrackerReportOverwrites(t *testing.T) {
	var vt VersionTracker
	vt.Report(7, 10)
	vt.Report(7, 4) // a stale circulating report may lower the record
	if v, ok := vt.Version(7); !ok || v != 4 {
		t.Fatalf("Version = (%d, %v), want (4, true)", v, ok)
	}
	if vt.Reporters() != 1 {
		t.Fatalf("Reporters = %d, want 1", vt.Reporters())
	}
	if _, ok := vt.Version(8); ok {
		t.Fatal("unknown consumer reported a version")
	}
}
