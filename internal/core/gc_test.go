package core

import (
	"testing"
	"time"
)

func TestVersionTrackerAdvance(t *testing.T) {
	var vt VersionTracker
	if _, _, ok := vt.Advance(2); ok {
		t.Fatal("advanced with no reports")
	}
	// expect == 0 with no reports must not yield the sentinel-min range.
	if _, _, ok := vt.Advance(0); ok {
		t.Fatal("advanced an empty tracker with expect 0")
	}
	vt.Report(1, 5)
	if _, _, ok := vt.Advance(2); ok {
		t.Fatal("advanced with one of two reporters")
	}
	vt.Report(2, 9)
	lo, hi, ok := vt.Advance(2)
	if !ok || lo != 0 || hi != 5 {
		t.Fatalf("Advance = (%d, %d, %v), want (0, 5, true)", lo, hi, ok)
	}
	if vt.Floor() != 6 {
		t.Fatalf("floor %d after trim to 5, want 6", vt.Floor())
	}
	// No news: min (5) is now behind the floor.
	if _, _, ok := vt.Advance(2); ok {
		t.Fatal("advanced without new reports")
	}
	// The slower consumer catches up; the floor moves to the new minimum.
	vt.Report(1, 9)
	lo, hi, ok = vt.Advance(2)
	if !ok || lo != 6 || hi != 9 || vt.Floor() != 10 {
		t.Fatalf("Advance = (%d, %d, %v) floor %d, want (6, 9, true) floor 10", lo, hi, ok, vt.Floor())
	}
}

// TestVersionTrackerStragglerHoldsFloor is the core of the straggler
// guarantee: one consumer stuck at an old version pins the floor for the
// whole group, no matter how far ahead the others run.
func TestVersionTrackerStragglerHoldsFloor(t *testing.T) {
	var vt VersionTracker
	vt.Report(1, 3)
	vt.Report(2, 1000)
	vt.Report(3, 1000000)
	if _, hi, ok := vt.Advance(3); !ok || hi != 3 {
		t.Fatalf("hi = %d, want the straggler's version 3", hi)
	}
	// Repeated fast-consumer reports must not move the floor past the
	// straggler.
	vt.Report(2, 2000)
	vt.Report(3, 2000000)
	if _, _, ok := vt.Advance(3); ok {
		t.Fatal("floor advanced past the straggler")
	}
	if vt.Floor() != 4 {
		t.Fatalf("floor %d, want 4 (straggler at 3)", vt.Floor())
	}
}

func TestVersionTrackerReportOverwrites(t *testing.T) {
	var vt VersionTracker
	vt.Report(7, 10)
	vt.Report(7, 4) // a stale circulating report may lower the record
	if v, ok := vt.Version(7); !ok || v != 4 {
		t.Fatalf("Version = (%d, %v), want (4, true)", v, ok)
	}
	if vt.Reporters() != 1 {
		t.Fatalf("Reporters = %d, want 1", vt.Reporters())
	}
	if _, ok := vt.Version(8); ok {
		t.Fatal("unknown consumer reported a version")
	}
}

func TestVersionTrackerEvictStale(t *testing.T) {
	var vt VersionTracker
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	vt.ReportAt(1, 100, ms(10))
	vt.ReportAt(2, 100, ms(10))
	vt.ReportAt(3, 5, ms(10)) // will crash and go silent
	// Fresh reports from the live pair; consumer 3 stays at t=10ms.
	vt.ReportAt(1, 200, ms(50))
	vt.ReportAt(2, 180, ms(50))
	// The silent consumer pins the floor to its last report.
	if _, hi, ok := vt.Advance(3); !ok || hi != 5 {
		t.Fatalf("Advance = (hi=%d, ok=%v), want the stale minimum 5", hi, ok)
	}
	if n := vt.EvictStale(ms(30)); n != 1 || vt.Evicted() != 1 {
		t.Fatalf("EvictStale dropped %d (evicted=%d), want 1", n, vt.Evicted())
	}
	// Eviction shrinks the expected quorum: Advance stops waiting on the
	// crashed consumer and the floor passes its frontier.
	if _, hi, ok := vt.Advance(vt.Expect(3)); !ok || hi != 180 {
		t.Fatalf("Advance after eviction = (hi=%d, ok=%v), want 180", hi, ok)
	}
	if vt.Floor() != 181 {
		t.Fatalf("floor %d, want 181", vt.Floor())
	}
	// Double eviction is a no-op: the entry is already gone.
	if n := vt.EvictStale(ms(30)); n != 0 || vt.Evicted() != 1 {
		t.Fatalf("second EvictStale dropped %d (evicted=%d), want 0 (1)", n, vt.Evicted())
	}
	// The consumer returns and reports again: re-registered, no longer
	// evicted, and its behind-the-floor report blocks trimming (it needs
	// the snapshot path, not a floor rollback).
	vt.ReportAt(3, 5, ms(90))
	if vt.Evicted() != 0 || vt.Reporters() != 3 {
		t.Fatalf("re-report left evicted=%d reporters=%d", vt.Evicted(), vt.Reporters())
	}
	if _, _, ok := vt.Advance(vt.Expect(3)); ok {
		t.Fatal("floor advanced on a minimum behind it")
	}
	if vt.Floor() != 181 {
		t.Fatalf("floor moved to %d on a stale re-report", vt.Floor())
	}
	// Once the returned consumer catches up past the floor, trimming
	// resumes with the full quorum.
	vt.ReportAt(3, 200, ms(95))
	vt.ReportAt(1, 240, ms(95))
	vt.ReportAt(2, 220, ms(95))
	if _, hi, ok := vt.Advance(vt.Expect(3)); !ok || hi != 200 {
		t.Fatalf("Advance after catch-up = (hi=%d, ok=%v), want 200", hi, ok)
	}
}
