package core

import "time"

// VersionTracker is the protocol-agnostic half of the learner-version
// garbage collection of §3.3.7: every consumer of a replicated log (a
// learner, a replica) periodically reports the highest instance it has
// applied; once every expected consumer has reported, the minimum across
// reports is a global trim floor — no process will ever again need an
// instance at or below it, so per-instance logs (acceptor vote rings,
// coordinator decision logs, learner reorder buffers) can drop that prefix
// and hand pooled batch arrays back to their BatchPool.
//
// M-Ring Paxos grew this logic privately; the tracker extracts it so
// U-Ring Paxos and basic Paxos/S-Paxos can bound their logs the same way.
// Reports are stored in a small flat slice — consumer sets are a handful of
// nodes — so tracking allocates only on first report from a new consumer
// and the minimum is computed without map iteration.
//
// The zero value is an empty tracker with floor 0, ready to use.
type VersionTracker struct {
	entries []versionEntry
	floor   int64
	// evicted lists consumers dropped by EvictStale and not heard from
	// since; Expect subtracts them so Advance stops waiting on a crashed
	// consumer, which is what lets the floor pass its frontier (and what
	// forces that consumer onto the snapshot catch-up path on return).
	evicted []int64
}

type versionEntry struct {
	id      int64
	version int64
	at      time.Duration // last report time (only stamped by ReportAt)
}

// Report records consumer id's applied version, overwriting any previous
// report (mirroring the map-store semantics the M-Ring implementation had:
// a circulating stale report may transiently lower a recorded version; the
// floor only ever moves forward regardless).
func (t *VersionTracker) Report(id, version int64) {
	t.ReportAt(id, version, 0)
}

// ReportAt is Report plus a report timestamp, feeding the staleness
// eviction of EvictStale. A report from an evicted consumer re-registers
// it (the crashed learner came back and is reporting again).
func (t *VersionTracker) ReportAt(id, version int64, now time.Duration) {
	for i, e := range t.evicted {
		if e == id {
			t.evicted = append(t.evicted[:i], t.evicted[i+1:]...)
			break
		}
	}
	for i := range t.entries {
		if t.entries[i].id == id {
			t.entries[i].version = version
			t.entries[i].at = now
			return
		}
	}
	t.entries = append(t.entries, versionEntry{id: id, version: version, at: now})
}

// EvictStale drops every consumer whose last report predates cutoff and
// returns how many were dropped in this call. Evicted consumers no longer
// hold the minimum down (see Expect), so a crashed learner stops pinning
// the trim floor forever; when it reports again it is re-registered.
// Only meaningful for trackers fed via ReportAt — plain Report leaves
// timestamps at zero, so any positive cutoff would evict everyone.
func (t *VersionTracker) EvictStale(cutoff time.Duration) int {
	n := 0
	kept := t.entries[:0]
	for _, e := range t.entries {
		if e.at < cutoff {
			t.evicted = append(t.evicted, e.id)
			n++
			continue
		}
		kept = append(kept, e)
	}
	t.entries = kept
	return n
}

// Expect adjusts a consumer count for staleness evictions: Advance
// callers pass Expect(len(consumers)) so the quorum of reporters shrinks
// with the evicted set. With no evictions it returns n unchanged.
func (t *VersionTracker) Expect(n int) int { return n - len(t.evicted) }

// Evicted returns how many consumers are currently evicted for staleness.
func (t *VersionTracker) Evicted() int { return len(t.evicted) }

// Version returns the recorded version for id.
func (t *VersionTracker) Version(id int64) (int64, bool) {
	for i := range t.entries {
		if t.entries[i].id == id {
			return t.entries[i].version, true
		}
	}
	return 0, false
}

// Reporters returns how many distinct consumers have reported.
func (t *VersionTracker) Reporters() int { return len(t.entries) }

// Floor returns the current trim floor: every instance below it has been
// trimmed (or was never retained). Instances >= Floor() are still live.
func (t *VersionTracker) Floor() int64 { return t.floor }

// SetFloor raises the trim floor to f (never lowers it). A coordinator
// taking over after a failover seeds its tracker with the highest floor
// its Phase 1 quorum reports, so it neither resurrects trimmed instances
// nor rescans the trimmed prefix on its first Advance.
func (t *VersionTracker) SetFloor(f int64) {
	if f > t.floor {
		t.floor = f
	}
}

// Advance computes the trimmable range. When at least expect consumers
// have reported and their minimum reported version min is at or past the
// floor, it returns [lo, hi] = [old floor, min] inclusive, moves the floor
// to min+1 and reports ok. Otherwise (missing reporters, or a stale
// minimum behind the floor) it returns ok=false and the floor is
// unchanged. The caller deletes instances lo..hi from its logs.
func (t *VersionTracker) Advance(expect int) (lo, hi int64, ok bool) {
	// No reports yet means no minimum to take, whatever expect says — the
	// sentinel min below would otherwise hand the caller a ~2^62-instance
	// trim range.
	if len(t.entries) == 0 || len(t.entries) < expect {
		return 0, 0, false
	}
	min := int64(1<<62 - 1)
	for i := range t.entries {
		if t.entries[i].version < min {
			min = t.entries[i].version
		}
	}
	if min < t.floor {
		return 0, 0, false
	}
	lo, hi = t.floor, min
	t.floor = min + 1
	return lo, hi, true
}
