package core

// VersionTracker is the protocol-agnostic half of the learner-version
// garbage collection of §3.3.7: every consumer of a replicated log (a
// learner, a replica) periodically reports the highest instance it has
// applied; once every expected consumer has reported, the minimum across
// reports is a global trim floor — no process will ever again need an
// instance at or below it, so per-instance logs (acceptor vote rings,
// coordinator decision logs, learner reorder buffers) can drop that prefix
// and hand pooled batch arrays back to their BatchPool.
//
// M-Ring Paxos grew this logic privately; the tracker extracts it so
// U-Ring Paxos and basic Paxos/S-Paxos can bound their logs the same way.
// Reports are stored in a small flat slice — consumer sets are a handful of
// nodes — so tracking allocates only on first report from a new consumer
// and the minimum is computed without map iteration.
//
// The zero value is an empty tracker with floor 0, ready to use.
type VersionTracker struct {
	entries []versionEntry
	floor   int64
}

type versionEntry struct {
	id      int64
	version int64
}

// Report records consumer id's applied version, overwriting any previous
// report (mirroring the map-store semantics the M-Ring implementation had:
// a circulating stale report may transiently lower a recorded version; the
// floor only ever moves forward regardless).
func (t *VersionTracker) Report(id, version int64) {
	for i := range t.entries {
		if t.entries[i].id == id {
			t.entries[i].version = version
			return
		}
	}
	t.entries = append(t.entries, versionEntry{id: id, version: version})
}

// Version returns the recorded version for id.
func (t *VersionTracker) Version(id int64) (int64, bool) {
	for i := range t.entries {
		if t.entries[i].id == id {
			return t.entries[i].version, true
		}
	}
	return 0, false
}

// Reporters returns how many distinct consumers have reported.
func (t *VersionTracker) Reporters() int { return len(t.entries) }

// Floor returns the current trim floor: every instance below it has been
// trimmed (or was never retained). Instances >= Floor() are still live.
func (t *VersionTracker) Floor() int64 { return t.floor }

// SetFloor raises the trim floor to f (never lowers it). A coordinator
// taking over after a failover seeds its tracker with the highest floor
// its Phase 1 quorum reports, so it neither resurrects trimmed instances
// nor rescans the trimmed prefix on its first Advance.
func (t *VersionTracker) SetFloor(f int64) {
	if f > t.floor {
		t.floor = f
	}
}

// Advance computes the trimmable range. When at least expect consumers
// have reported and their minimum reported version min is at or past the
// floor, it returns [lo, hi] = [old floor, min] inclusive, moves the floor
// to min+1 and reports ok. Otherwise (missing reporters, or a stale
// minimum behind the floor) it returns ok=false and the floor is
// unchanged. The caller deletes instances lo..hi from its logs.
func (t *VersionTracker) Advance(expect int) (lo, hi int64, ok bool) {
	// No reports yet means no minimum to take, whatever expect says — the
	// sentinel min below would otherwise hand the caller a ~2^62-instance
	// trim range.
	if len(t.entries) == 0 || len(t.entries) < expect {
		return 0, 0, false
	}
	min := int64(1<<62 - 1)
	for i := range t.entries {
		if t.entries[i].version < min {
			min = t.entries[i].version
		}
	}
	if min < t.floor {
		return 0, 0, false
	}
	lo, hi = t.floor, min
	t.floor = min + 1
	return lo, hi, true
}
