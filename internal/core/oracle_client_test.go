package core

import (
	"strings"
	"testing"
	"time"
)

func stamped(id ValueID, client, seq int64) Value {
	return Value{ID: id, Bytes: 100, Client: client, Seq: seq}
}

// TestOracleClientVerdictOptIn: without EnableClientCheck the verdict is
// byte-identical to the pre-client form even when stamped values flow —
// the compatibility contract every pre-existing safety pin relies on.
func TestOracleClientVerdictOptIn(t *testing.T) {
	o := NewOracle()
	c := o.Learner()
	c.Note(0, 1, stamped(1, 5, 1))
	if v := o.Verdict(); strings.Contains(v, "clients=") {
		t.Fatalf("client facts leaked into opt-out verdict: %q", v)
	}
	o2 := NewOracle()
	o2.EnableClientCheck()
	c2 := o2.Learner()
	c2.Note(0, 1, stamped(1, 5, 1))
	want := "learners=1 divergences=0 consistent=true clients=1 dups=0 ackgaps=0 unacked=0"
	if v := o2.Verdict(); v != want {
		t.Fatalf("verdict = %q, want %q", v, want)
	}
}

// TestOracleClientAckLostRetryDedups: the command committed but the ack
// was lost; the session retries and the learners suppress the duplicate
// (no second application) while re-acking from the dedup table. The
// oracle must see a clean exactly-once outcome. The contrast case — a
// learner that re-executes instead of suppressing — must be flagged.
func TestOracleClientAckLostRetryDedups(t *testing.T) {
	o := NewOracle()
	o.EnableClientCheck()
	a, b := o.Learner(), o.Learner()
	o.NoteClientIssued(5, 1)
	a.Note(0, 1, stamped(1, 5, 1))
	b.Note(0, 1, stamped(1, 5, 1))
	// Retry decided again in instance 2; both learners suppress (no Note)
	// and the table ack reaches the session.
	o.NoteClientAcked(5, 1)
	if o.DupApplications() != 0 || o.AckGaps() != 0 || o.Unacked() != 0 {
		t.Fatalf("clean retry flagged: %s", o.Verdict())
	}
	// Buggy learner: re-executes the retried command.
	b.Note(0, 2, stamped(1, 5, 1))
	if o.DupApplications() != 1 {
		t.Fatalf("re-execution not flagged: %s", o.Verdict())
	}
	if fd := o.FirstDuplicate(); !strings.Contains(fd, "client 5 seq 1") {
		t.Fatalf("FirstDuplicate = %q", fd)
	}
}

// TestOracleClientSkipFoldsDedupState: a learner that snapshot-skips past
// the trim floor must inherit the skipped prefix's client sequences (the
// snapshot carries the dedup table), so a resend racing the catch-up is
// still recognized as a duplicate — on the catching-up replica too, even
// though it never applied the original. Both replicas applying the
// duplicate keeps the prefix consistent, which is exactly why prefix
// consistency alone cannot catch this.
func TestOracleClientSkipFoldsDedupState(t *testing.T) {
	o := NewOracle()
	o.EnableClientCheck()
	a, b := o.Learner(), o.Learner()
	for seq := int64(1); seq <= 3; seq++ {
		a.Note(0, seq, stamped(ValueID(seq), 5, seq))
	}
	b.Skip(0, 4) // snapshot catch-up past instances 1..3
	// A resend of seq 2 races the catch-up and is (buggily) re-applied by
	// every replica in instance 4.
	a.Note(0, 4, stamped(2, 5, 2))
	b.Note(0, 4, stamped(2, 5, 2))
	if !o.Consistent() {
		t.Fatalf("replicas agreed, prefix check should stay silent: %s", o.FirstDivergence())
	}
	if o.DupApplications() != 2 {
		t.Fatalf("dup applications = %d, want 2 (both replicas): %s", o.DupApplications(), o.Verdict())
	}
}

// TestOracleClientStragglerDuplicate: the duplicate was suppressed on the
// up-to-date replica but a straggler re-executes it before catching up.
// Only the straggler is flagged; the prefix check stays silent because
// the straggler is merely behind, not divergent.
func TestOracleClientStragglerDuplicate(t *testing.T) {
	o := NewOracle()
	o.EnableClientCheck()
	a, b := o.Learner(), o.Learner()
	a.Note(0, 1, stamped(1, 5, 1))
	b.Note(0, 1, stamped(1, 5, 1))
	// Straggler b re-applies the retried command decided in instance 2;
	// a suppresses it (no Note).
	b.Note(0, 2, stamped(1, 5, 1))
	if o.DupApplications() != 1 {
		t.Fatalf("straggler duplicate not flagged: %s", o.Verdict())
	}
	if !o.Consistent() {
		t.Fatalf("straggler wrongly divergent: %s", o.FirstDivergence())
	}
}

// TestOracleClientLostAndGhostAcks: an issued-but-never-acked proposal is
// the lost-proposal gap (unacked > 0); an ack for a sequence that never
// reached the agreed frontier is an ack gap.
func TestOracleClientLostAndGhostAcks(t *testing.T) {
	o := NewOracle()
	o.EnableClientCheck()
	c := o.Learner()
	o.NoteClientIssued(5, 1)
	c.Note(0, 1, stamped(1, 5, 1))
	o.NoteClientAcked(5, 1)
	o.NoteClientIssued(5, 2) // dies with the coordinator, never applied
	o.Seal(time.Second)
	if o.Unacked() != 1 || o.AckGaps() != 0 {
		t.Fatalf("lost proposal not counted: %s", o.Verdict())
	}
	o.NoteClientAcked(5, 2) // ghost ack: acked without application
	if o.AckGaps() != 1 || o.Unacked() != 0 {
		t.Fatalf("ghost ack not counted: %s", o.Verdict())
	}
	if got := o.ClientSessions(); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
}
