package core

import "math/bits"

// FIFO is a reusable in-place queue: popping advances a head index, the
// backing array compacts when mostly drained, and popped slots are zeroed
// so references are released immediately. The naive `q = q[1:]` idiom
// abandons the array's prefix and re-grows forever — one amortized
// allocation per element; a FIFO keeps one backing array alive for its
// owner's lifetime, so steady-state queuing performs no allocation at all.
// Every queue on a protocol hot path (pending-value staging, merge token
// buffers, worker command streams, pending replies) is one of these.
//
// The zero value is an empty queue ready to use.
type FIFO[T any] struct {
	buf  []T
	head int
}

// Len returns the number of queued elements.
func (q *FIFO[T]) Len() int { return len(q.buf) - q.head }

// At returns the i-th queued element (0 = oldest).
func (q *FIFO[T]) At(i int) T { return q.buf[q.head+i] }

// Front returns a pointer to the oldest element, valid until the next
// Push or pop.
func (q *FIFO[T]) Front() *T { return &q.buf[q.head] }

// Push appends v at the tail.
func (q *FIFO[T]) Push(v T) {
	if q.head == len(q.buf) && q.head > 0 {
		// Empty: restart at the front of the backing array for free.
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 > cap(q.buf) {
		// Mostly-drained while non-empty: compact instead of growing.
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, v)
}

// Pop removes and returns the oldest element.
func (q *FIFO[T]) Pop() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}

// PopFront drops the n oldest elements.
func (q *FIFO[T]) PopFront(n int) {
	clear(q.buf[q.head : q.head+n])
	q.head += n
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
}

// ValueSlab is the pending-value staging buffer used by every batching
// coordinator: a FIFO of Values awaiting a consensus batch.
type ValueSlab = FIFO[Value]

// BatchPool is a free list of []Value backing arrays for consensus
// batches. Batches travel inside wire messages and are held by acceptor
// stores and learner reorder buffers, so their arrays cannot live in the
// staging slab; they come from the pool and are recycled when the protocol
// knows every holder is done with them (for M-Ring Paxos: when the
// learner-version garbage collection of §3.3.7 trims the instance, i.e.
// the batch was delivered everywhere and acked).
//
// Arrays are size-classed by power-of-two capacity. Get never returns a
// shorter array than requested; Put accepts any array and files it under
// the largest class it fully covers. The zero value is ready to use.
type BatchPool struct {
	classes [24][][]Value
}

// Get returns a zero-length array with capacity at least n.
func (p *BatchPool) Get(n int) []Value {
	c := poolClass(n)
	if c >= len(p.classes) {
		// Beyond the largest pooled class: plain allocation, exact size.
		return make([]Value, 0, n)
	}
	if list := p.classes[c]; len(list) > 0 {
		s := list[len(list)-1]
		list[len(list)-1] = nil
		p.classes[c] = list[:len(list)-1]
		return s
	}
	return make([]Value, 0, 1<<c)
}

// Put recycles an array. The contents are cleared so payload references
// are released even while the array sits in the pool.
func (p *BatchPool) Put(s []Value) {
	if cap(s) < 1 {
		return
	}
	c := bits.Len(uint(cap(s))) - 1 // floor log2: the class s can serve
	if c >= len(p.classes) {
		return
	}
	s = s[:0]
	clear(s[:cap(s)])
	p.classes[c] = append(p.classes[c], s)
}

// DrainBatch moves the next consensus batch out of a staging slab: up to
// maxBytes of the oldest staged values (always at least one), copied into
// an array drawn from pool when pooled, else freshly allocated. It
// returns the batch and its payload byte size. Every batching coordinator
// without partition-aware grouping (U-Ring, basic Paxos) builds its
// batches through this one helper, so the pooling contract lives in a
// single place.
func DrainBatch(pending *ValueSlab, pool *BatchPool, pooled bool, maxBytes int) (Batch, int) {
	n, bytes := 0, 0
	for n < pending.Len() && bytes < maxBytes {
		bytes += pending.At(n).Bytes
		n++
	}
	var vals []Value
	if pooled {
		vals = pool.Get(n)
	} else {
		vals = make([]Value, 0, n)
	}
	for i := 0; i < n; i++ {
		vals = append(vals, pending.At(i))
	}
	pending.PopFront(n)
	return Batch{Vals: vals}, bytes
}

// Recycle puts every array in q back into the pool and returns q reset to
// length zero, ready to collect the next quarantine round. It is the
// "quarantine-then-recycle" step every garbage-collecting protocol runs at
// the top of a trim pass.
func (p *BatchPool) Recycle(q [][]Value) [][]Value {
	for _, vals := range q {
		p.Put(vals)
	}
	return q[:0]
}

// poolClass returns the smallest class whose arrays hold n values.
func poolClass(n int) int {
	if n < 2 {
		return 1
	}
	return bits.Len(uint(n - 1))
}
