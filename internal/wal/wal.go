// Package wal models the write-ahead log of Recoverable Ring Paxos
// (§3.5.5): acceptors and coordinators append Phase 1 promises, Phase 2
// votes and decisions to stable storage before acting on them, so a
// process that crashes and loses its volatile state (fault.Lose) can
// rebuild its protocol state by replaying the log instead of rejoining
// amnesiac.
//
// Every append is charged to the environment's disk model through
// proto.Env.DiskWrite — the simulator prices it at the paper's ~270 Mbps
// synchronous-SSD bandwidth plus seek latency, and the realtime runtime
// backs the same call with a real O_SYNC file — and the caller's
// continuation runs only once the write is durable, which is what lets
// an acceptor gate its Phase 1B/2B replies on persistence.
//
// The Log object itself IS the modeled stable medium: it belongs to the
// deployment (the rig hands one to each durable agent, like a disk that
// outlives the process), so it survives a Lose crash that wipes the
// agent's in-memory instance logs. Replay hands the retained records
// back in append order.
package wal

import (
	"repro/internal/core"
	"repro/internal/proto"
)

// Kind tags one log record.
type Kind uint8

const (
	// KindPromise records a Phase 1 promise: the acceptor will never
	// again accept a proposal from a round below Rnd.
	KindPromise Kind = iota + 1
	// KindVote records a Phase 2 vote: (Inst, Rnd, VID) plus the voted
	// batch, so replay restores both the fencing state and the payload a
	// new coordinator's Phase 1 may need to re-propose.
	KindVote
	// KindDecision records a decided instance at the coordinator. Purely
	// an optimization for replay (decisions are recoverable from a quorum
	// of vote records via Phase 1), so appends of this kind are not gated
	// on.
	KindDecision
	// KindSnapshot records an installed snapshot's floor: replay must not
	// resurrect state below it.
	KindSnapshot
)

// recHeader is the modeled on-disk framing of one record: kind, instance,
// round, value id and partition mask, plus a length word.
const recHeader = 37

// Record is one write-ahead log entry.
type Record struct {
	Kind Kind
	Inst int64
	Rnd  int64
	VID  core.ValueID
	Mask uint64
	Val  core.Batch
}

// Size returns the record's modeled on-disk footprint in bytes.
func (r Record) Size() int { return recHeader + r.Val.Size() }

// Log is one process's write-ahead log. The zero value is an empty log
// ready to use. All methods are safe on a nil receiver (they no-op or
// return zero), so call sites may log unconditionally.
type Log struct {
	recs []Record
	// topPromise caches the highest promised round so compaction can
	// always retain it even after the promise records themselves age out.
	topPromise int64
	floor      int64
	bytes      int64 // lifetime appended bytes (the disk-write total)
	appends    int64
	replayed   int64 // records handed back by the most recent Replay
}

// Append charges one record's write to env's disk model and retains the
// record for replay. done, if non-nil, runs once the write is durable —
// the gating hook for replies that must not outrun persistence.
func (l *Log) Append(env proto.Env, r Record, done func()) {
	if l == nil {
		if done != nil {
			done()
		}
		return
	}
	if r.Kind == KindPromise && r.Rnd > l.topPromise {
		l.topPromise = r.Rnd
	}
	if r.Kind == KindSnapshot && r.Inst > l.floor {
		l.floor = r.Inst
	}
	l.recs = append(l.recs, r)
	l.bytes += int64(r.Size())
	l.appends++
	if done == nil {
		done = nop
	}
	env.DiskWrite(r.Size(), done)
}

var nop = func() {}

// Replay hands every retained record to fn in append order and returns
// how many were replayed. Records for instances below the compaction
// floor were dropped by Trim; the floor itself is replayed first as a
// synthetic KindSnapshot record so the consumer restores it before any
// vote.
func (l *Log) Replay(fn func(Record)) int {
	if l == nil {
		return 0
	}
	n := 0
	if l.floor > 0 {
		fn(Record{Kind: KindSnapshot, Inst: l.floor})
		n++
	}
	if l.topPromise > 0 {
		fn(Record{Kind: KindPromise, Rnd: l.topPromise})
		n++
	}
	for _, r := range l.recs {
		if r.Kind == KindPromise || r.Kind == KindSnapshot {
			continue // folded into the synthetic head records above
		}
		fn(r)
		n++
	}
	l.replayed = int64(n)
	return n
}

// Trim compacts the log when the garbage-collection floor advances: vote
// and decision records below floor cover globally applied instances and
// will never be replayed again. The highest promise and the floor itself
// are retained (see Replay). Trim models in-place compaction and charges
// no disk time — the modeled medium rewrites segments off the critical
// path, like any log-structured store.
func (l *Log) Trim(floor int64) {
	if l == nil || floor <= l.floor {
		return
	}
	l.floor = floor
	kept := l.recs[:0]
	for _, r := range l.recs {
		if r.Kind == KindPromise || r.Kind == KindSnapshot {
			continue // cached in topPromise / floor
		}
		if r.Inst >= floor {
			kept = append(kept, r)
		}
	}
	// Zero the tail so trimmed batches don't pin their backing arrays.
	for i := len(kept); i < len(l.recs); i++ {
		l.recs[i] = Record{}
	}
	l.recs = kept
}

// Floor returns the compaction floor: no record below it is retained.
func (l *Log) Floor() int64 {
	if l == nil {
		return 0
	}
	return l.floor
}

// Len returns how many records the log currently retains.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.recs)
}

// Bytes returns the lifetime total of bytes appended (and charged to the
// disk model), undiminished by compaction.
func (l *Log) Bytes() int64 {
	if l == nil {
		return 0
	}
	return l.bytes
}

// Appends returns the lifetime count of appended records.
func (l *Log) Appends() int64 {
	if l == nil {
		return 0
	}
	return l.appends
}

// Replayed returns how many records the most recent Replay handed back.
func (l *Log) Replayed() int64 {
	if l == nil {
		return 0
	}
	return l.replayed
}
