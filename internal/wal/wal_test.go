package wal

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// fakeEnv is a minimal proto.Env whose DiskWrite completes immediately
// and counts the charged bytes.
type fakeEnv struct {
	diskBytes  int
	diskWrites int
}

func (e *fakeEnv) ID() proto.NodeID                       { return 1 }
func (e *fakeEnv) Now() time.Duration                     { return 0 }
func (e *fakeEnv) Rand() *rand.Rand                       { return rand.New(rand.NewSource(1)) }
func (e *fakeEnv) Send(proto.NodeID, proto.Message)       {}
func (e *fakeEnv) SendUDP(proto.NodeID, proto.Message)    {}
func (e *fakeEnv) Multicast(proto.GroupID, proto.Message) {}
func (e *fakeEnv) After(d time.Duration, fn func()) proto.Timer {
	fn()
	return nil
}
func (e *fakeEnv) Work(d time.Duration, fn func()) { fn() }
func (e *fakeEnv) DiskWrite(size int, fn func()) {
	e.diskBytes += size
	e.diskWrites++
	fn()
}

func val(bytes int) core.Batch {
	return core.Batch{Vals: []core.Value{{ID: 7, Bytes: bytes}}}
}

func TestWALAppendChargesDisk(t *testing.T) {
	env := &fakeEnv{}
	l := &Log{}
	done := 0
	l.Append(env, Record{Kind: KindPromise, Rnd: 9}, func() { done++ })
	l.Append(env, Record{Kind: KindVote, Inst: 0, Rnd: 9, VID: 1, Val: val(100)}, func() { done++ })
	l.Append(env, Record{Kind: KindDecision, Inst: 0, VID: 1}, nil)
	if done != 2 {
		t.Fatalf("done callbacks = %d, want 2", done)
	}
	if env.diskWrites != 3 {
		t.Fatalf("disk writes = %d, want 3", env.diskWrites)
	}
	if int64(env.diskBytes) != l.Bytes() {
		t.Fatalf("disk bytes %d != log bytes %d", env.diskBytes, l.Bytes())
	}
	if l.Appends() != 3 || l.Len() != 3 {
		t.Fatalf("appends=%d len=%d, want 3/3", l.Appends(), l.Len())
	}
	// A vote's footprint must include its payload.
	vote := Record{Kind: KindVote, Val: val(100)}
	if vote.Size() <= recHeader {
		t.Fatalf("vote size %d does not include payload", vote.Size())
	}
}

func TestWALReplayOrderAndCounts(t *testing.T) {
	env := &fakeEnv{}
	l := &Log{}
	l.Append(env, Record{Kind: KindPromise, Rnd: 3}, nil)
	l.Append(env, Record{Kind: KindVote, Inst: 0, Rnd: 3, VID: 1, Val: val(10)}, nil)
	l.Append(env, Record{Kind: KindPromise, Rnd: 8}, nil)
	l.Append(env, Record{Kind: KindVote, Inst: 1, Rnd: 8, VID: 2, Val: val(20)}, nil)
	l.Append(env, Record{Kind: KindDecision, Inst: 0, VID: 1}, nil)

	var got []Record
	n := l.Replay(func(r Record) { got = append(got, r) })
	if n != len(got) || l.Replayed() != int64(n) {
		t.Fatalf("replay count mismatch: n=%d got=%d replayed=%d", n, len(got), l.Replayed())
	}
	// Synthetic promise head carries the HIGHEST promised round, then the
	// votes and the decision in append order.
	if got[0].Kind != KindPromise || got[0].Rnd != 8 {
		t.Fatalf("replay head = %+v, want promise rnd=8", got[0])
	}
	wantInsts := []int64{0, 1, 0}
	for i, w := range wantInsts {
		if got[1+i].Inst != w {
			t.Fatalf("replay[%d].Inst = %d, want %d", 1+i, got[1+i].Inst, w)
		}
	}
}

func TestWALTrimKeepsPromiseAndFloor(t *testing.T) {
	env := &fakeEnv{}
	l := &Log{}
	l.Append(env, Record{Kind: KindPromise, Rnd: 5}, nil)
	for i := int64(0); i < 10; i++ {
		l.Append(env, Record{Kind: KindVote, Inst: i, Rnd: 5, VID: core.ValueID(i + 1), Val: val(10)}, nil)
	}
	l.Trim(7)
	if l.Floor() != 7 {
		t.Fatalf("floor = %d, want 7", l.Floor())
	}
	if l.Len() != 3 {
		t.Fatalf("len after trim = %d, want 3 (insts 7..9)", l.Len())
	}
	var got []Record
	l.Replay(func(r Record) { got = append(got, r) })
	if got[0].Kind != KindSnapshot || got[0].Inst != 7 {
		t.Fatalf("replay head = %+v, want snapshot floor=7", got[0])
	}
	if got[1].Kind != KindPromise || got[1].Rnd != 5 {
		t.Fatalf("replay[1] = %+v, want promise rnd=5 retained across trim", got[1])
	}
	for _, r := range got[2:] {
		if r.Inst < 7 {
			t.Fatalf("trimmed instance %d replayed", r.Inst)
		}
	}
	// Lowering the floor is a no-op.
	l.Trim(3)
	if l.Floor() != 7 || l.Len() != 3 {
		t.Fatalf("backward trim mutated the log: floor=%d len=%d", l.Floor(), l.Len())
	}
}

func TestWALNilSafety(t *testing.T) {
	var l *Log
	env := &fakeEnv{}
	done := false
	l.Append(env, Record{Kind: KindVote}, func() { done = true })
	if !done {
		t.Fatal("nil log must still run the completion")
	}
	if l.Replay(func(Record) {}) != 0 || l.Len() != 0 || l.Bytes() != 0 ||
		l.Appends() != 0 || l.Replayed() != 0 || l.Floor() != 0 {
		t.Fatal("nil log accessors must return zero")
	}
	l.Trim(5)
}
