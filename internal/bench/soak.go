package bench

// Long-run soak workloads: a new experiment class that none of the paper's
// figures expresses. Each soak runs one ordering protocol for soakDur —
// roughly 10x the warmup+measure window every figure reproduction uses —
// under sustained offered load, twice: once with the shared learner-version
// garbage collection (§3.3.7) enabled and once without. At every simulated
// second it samples the total number of per-instance log records retained
// across all agents (acceptor vote logs, coordinator windows and decision
// logs, learner reorder buffers). With GC the series is flat; without it
// the series grows by one record per consensus instance forever — the
// memory leak that made long-lived deployments impossible before this
// subsystem existed.
//
// The sampled series is deterministic for a fixed seed, so soak outputs
// are golden-pinned like every figure. Heap occupancy (runtime.MemStats
// HeapAlloc), which is NOT deterministic, never appears in the text:
// it is recorded on a side channel that the sequential cmd/repro
// -allocs / -check-allocs path reads, which is how CI asserts a hard
// HeapAlloc ceiling on the GC-enabled runs.

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abcast"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/paxos"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

func init() {
	register(Experiment{ID: "soak.mring", Title: "M-Ring Paxos 10 s soak: live log records, GC on vs off", Traced: runSoakMRing})
	register(Experiment{ID: "soak.uring", Title: "U-Ring Paxos 10 s soak: live log records, GC on vs off", Traced: runSoakURing})
	register(Experiment{ID: "soak.paxos", Title: "basic Paxos 10 s soak: live log records, GC on vs off", Traced: runSoakPaxos})
	register(Experiment{ID: "soak.spaxos", Title: "S-Paxos 10 s soak: live log records, GC on vs off", Traced: runSoakSPaxos})
}

const (
	soakDur  = 10 * time.Second // ~10x the 1 s (warmup+measure) figure window
	soakStep = time.Second
)

// SoakStats is the nondeterministic half of a soak run, kept out of the
// golden-pinned text and surfaced through cmd/repro -allocs instead.
// HeapAlloc figures are sampled only while sampling is enabled (the
// sequential alloc-profiling path), after a forced GC at each checkpoint
// so they measure live bytes, not uncollected garbage.
type SoakStats struct {
	HeapAllocPeak uint64
	HeapAllocEnd  uint64
	LiveLogPeak   int
	LiveLogEnd    int
}

var (
	soakSampling atomic.Bool
	soakMu       sync.Mutex
	soakStats    = map[string]*SoakStats{}
)

// SetSoakSampling toggles heap sampling at soak checkpoints. It is enabled
// only on the sequential alloc-profiling path: under the parallel golden
// runner, concurrent experiments would attribute each other's heap.
func SetSoakSampling(on bool) { soakSampling.Store(on) }

// TakeSoakStats returns and clears the recorded stats for one soak id.
func TakeSoakStats(id string) (SoakStats, bool) {
	soakMu.Lock()
	defer soakMu.Unlock()
	s, ok := soakStats[id]
	if !ok {
		return SoakStats{}, false
	}
	delete(soakStats, id)
	return *s, true
}

// noteSoak records one checkpoint of the GC-enabled soak run.
func noteSoak(id string, live int) {
	var heap uint64
	if soakSampling.Load() {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap = ms.HeapAlloc
	}
	soakMu.Lock()
	s := soakStats[id]
	if s == nil {
		s = &SoakStats{}
		soakStats[id] = s
	}
	if heap > s.HeapAllocPeak {
		s.HeapAllocPeak = heap
	}
	s.HeapAllocEnd = heap
	if live > s.LiveLogPeak {
		s.LiveLogPeak = live
	}
	s.LiveLogEnd = live
	soakMu.Unlock()
}

// soakSample is one per-second checkpoint of a soak run.
type soakSample struct {
	live      int
	delivered int64
}

// soakRun drives one deployment for soakDur, sampling every soakStep.
// When id is non-empty the samples also feed the heap side channel (only
// the GC-enabled variant passes an id: the ceiling must assert on the
// bounded configuration, not on the deliberately leaky control).
func soakRun(l *lan.LAN, id string, live func() int, delivered func() int64) []soakSample {
	samples := make([]soakSample, 0, int(soakDur/soakStep))
	for t := soakStep; t <= soakDur; t += soakStep {
		l.Run(soakStep)
		s := soakSample{live: live(), delivered: delivered()}
		samples = append(samples, s)
		if id != "" {
			noteSoak(id, s.live)
		}
	}
	return samples
}

// soakReport prints the combined gc-on/gc-off table plus the flatness
// verdict the golden pin (and a human) checks: the GC-enabled run's final
// live-record count must not exceed twice its early peak (plus slack for
// ring-buffer granularity), while the control's final count shows what one
// log entry per instance forever looks like.
func soakReport(w io.Writer, title string, on, off []soakSample) {
	t := newTable(title, "t(s)", "gc.live", "gc.delivered", "nogc.live", "nogc.delivered")
	for i := range on {
		t.row(i+1, on[i].live, on[i].delivered, off[i].live, off[i].delivered)
	}
	earlyPeak, peak := 0, 0
	for i, s := range on {
		if i < 3 && s.live > earlyPeak {
			earlyPeak = s.live
		}
		if s.live > peak {
			peak = s.live
		}
	}
	final := on[len(on)-1].live
	offFinal := off[len(off)-1].live
	verdict := "PASS"
	if final > 2*earlyPeak+32 {
		verdict = "FAIL"
	}
	t.note("gc=on: early peak %d, overall peak %d, final %d live records", earlyPeak, peak, final)
	t.note("gc=off control: final %d live records (one per undelivered-from-log instance, growing with elapsed time)", offFinal)
	t.note("bounded-memory check: %s (final %d <= 2x early peak %d + 32)", verdict, final, earlyPeak)
	t.print(w)
}

// --- deployments ---

// soakMRing wires the same M-Ring deployment the Chapter 3 figures use
// — default Retry included: the learner timer-chain multiplication that
// once forced a tamer Retry here is fixed (one persistent version chain
// per learner, see armLearnerTimers) — and returns its sampling hooks.
func soakMRing(dep *DelivDeployment, gcInterval time.Duration) (*lan.LAN, func() int, func() int64) {
	cfg := ringpaxos.MConfig{
		Group:          1,
		GCInterval:     gcInterval,
		RecycleBatches: true,
	}
	cfg.Ring = []proto.NodeID{0, 1}
	cfg.Learners = []proto.NodeID{100, 101}
	l := lan.New(lan.DefaultConfig(), 1)
	var agents []*ringpaxos.MAgent
	for _, id := range append(append([]proto.NodeID{}, cfg.Ring...), cfg.Learners...) {
		a := &ringpaxos.MAgent{Cfg: cfg}
		agents = append(agents, a)
		l.AddNode(id, a)
		l.Subscribe(1, id)
	}
	for i, id := range cfg.Learners {
		agents[len(cfg.Ring)+i].Trace = dep.Learner(id)
	}
	prop := &ringpaxos.MAgent{Cfg: cfg}
	p := &pump{size: 1024, rate: 20e6, submit: prop.Propose}
	l.AddNode(200, proto.Multi(prop, p))
	l.Start()
	probe := agents[2]
	live := func() int {
		n := 0
		for _, a := range agents {
			n += a.LiveLogLen()
		}
		return n
	}
	return l, live, func() int64 { return probe.DeliveredMsgs }
}

func runSoakMRing(w io.Writer, rec *DelivRecorder) {
	// M-Ring GC is always on (it predates the shared subsystem); the
	// control opts out with the explicit -1 interval.
	lOn, liveOn, delOn := soakMRing(rec.Deployment(), 0) // 0 = the 50 ms default
	on := soakRun(lOn, "soak.mring", liveOn, delOn)
	lOff, liveOff, delOff := soakMRing(rec.Deployment(), -1)
	off := soakRun(lOff, "", liveOff, delOff)
	soakReport(w, "soak.mring — M-Ring Paxos, 20 Mbps of 1 KB values for 10 s", on, off)
}

func soakURing(dep *DelivDeployment, gc bool) (*lan.LAN, func() int, func() int64) {
	// gc=true exercises the on-by-default path (zero GCInterval resolves
	// to DefaultGCInterval); the control opts out with the explicit -1.
	cfg := ringpaxos.UConfig{NumAcceptors: 3}
	if gc {
		cfg.RecycleBatches = true
	} else {
		cfg.GCInterval = -1
	}
	const n = 4
	for i := 0; i < n; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	l := lan.New(lan.DefaultConfig(), 1)
	agents := make([]*ringpaxos.UAgent, n)
	for i := 0; i < n; i++ {
		agents[i] = &ringpaxos.UAgent{Cfg: cfg}
		agents[i].Trace = dep.Learner(proto.NodeID(i))
		var hs []proto.Handler
		hs = append(hs, agents[i])
		if i == 0 {
			p := &pump{size: 1024, rate: 20e6, submit: agents[i].Propose}
			hs = append(hs, p)
		}
		l.AddNode(proto.NodeID(i), proto.Multi(hs...))
	}
	l.Start()
	probe := agents[n-1]
	live := func() int {
		t := 0
		for _, a := range agents {
			t += a.LiveLogLen()
		}
		return t
	}
	return l, live, func() int64 { return probe.DeliveredMsgs }
}

func runSoakURing(w io.Writer, rec *DelivRecorder) {
	lOn, liveOn, delOn := soakURing(rec.Deployment(), true)
	on := soakRun(lOn, "soak.uring", liveOn, delOn)
	lOff, liveOff, delOff := soakURing(rec.Deployment(), false)
	off := soakRun(lOff, "", liveOff, delOff)
	soakReport(w, "soak.uring — U-Ring Paxos (3 acceptors, 4-process ring), 20 Mbps of 1 KB values for 10 s", on, off)
}

func soakPaxos(dep *DelivDeployment, gc bool) (*lan.LAN, func() int, func() int64) {
	// gc=true exercises the on-by-default path (zero GCInterval resolves
	// to DefaultGCInterval); the control opts out with the explicit -1.
	cfg := paxos.Config{Coordinator: 0}
	if gc {
		cfg.RecycleBatches = true
	} else {
		cfg.GCInterval = -1
	}
	cfg.Acceptors = []proto.NodeID{0, 1, 2}
	cfg.Learners = []proto.NodeID{100, 101}
	l := lan.New(lan.DefaultConfig(), 1)
	var agents []*paxos.Agent
	var delivered int64
	for i, id := range append(append([]proto.NodeID{}, cfg.Acceptors...), cfg.Learners...) {
		a := &paxos.Agent{Cfg: cfg}
		if i >= len(cfg.Acceptors) {
			a.Trace = dep.Learner(id)
		}
		if i == len(cfg.Acceptors) { // first learner is the probe
			a.Deliver = func(_ int64, v core.Value) { delivered++ }
		}
		agents = append(agents, a)
		l.AddNode(id, a)
	}
	prop := &paxos.Agent{Cfg: cfg}
	p := &pump{size: 512, rate: 10e6, submit: prop.Propose}
	l.AddNode(200, proto.Multi(prop, p))
	l.Start()
	live := func() int {
		n := 0
		for _, a := range agents {
			n += a.LiveLogLen()
		}
		return n
	}
	return l, live, func() int64 { return delivered }
}

func runSoakPaxos(w io.Writer, rec *DelivRecorder) {
	lOn, liveOn, delOn := soakPaxos(rec.Deployment(), true)
	on := soakRun(lOn, "soak.paxos", liveOn, delOn)
	lOff, liveOff, delOff := soakPaxos(rec.Deployment(), false)
	off := soakRun(lOff, "", liveOff, delOff)
	soakReport(w, "soak.paxos — basic Paxos (3 acceptors, 2 learners, unicast), 10 Mbps of 512 B values for 10 s", on, off)
}

func soakSPaxos(dep *DelivDeployment, gc bool) (*lan.LAN, func() int, func() int64) {
	reps := []proto.NodeID{0, 1, 2}
	l := lan.New(lan.DefaultConfig(), 1)
	agents := make([]*abcast.SPaxos, len(reps))
	for i := range reps {
		// gc=true exercises the on-by-default path (zero GCInterval
		// resolves to the inner agent's default); the control opts out
		// with the explicit -1.
		agents[i] = &abcast.SPaxos{Replicas: reps}
		agents[i].Trace = dep.Learner(reps[i])
		if !gc {
			agents[i].GCInterval = -1
		}
		p := &pump{size: 512, rate: 10e6 / float64(len(reps)), submit: agents[i].Submit}
		l.AddNode(reps[i], proto.Multi(agents[i], p))
	}
	l.Start()
	probe := agents[len(reps)-1]
	live := func() int {
		n := 0
		for _, a := range agents {
			n += a.LiveLogLen()
		}
		return n
	}
	return l, live, func() int64 { return probe.DeliveredMsgs }
}

func runSoakSPaxos(w io.Writer, rec *DelivRecorder) {
	lOn, liveOn, delOn := soakSPaxos(rec.Deployment(), true)
	on := soakRun(lOn, "soak.spaxos", liveOn, delOn)
	lOff, liveOff, delOff := soakSPaxos(rec.Deployment(), false)
	off := soakRun(lOff, "", liveOff, delOff)
	soakReport(w, "soak.spaxos — S-Paxos (3 replicas), 10 Mbps of 512 B values for 10 s", on, off)
}
