package bench

import (
	"time"

	"repro/internal/abcast"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/paxos"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

// pump offers application messages of a fixed size at a fixed bit rate
// through a submit callback (a proposer's Propose, a broadcaster's
// Broadcast, ...). Intervals are mildly jittered so concurrent pumps don't
// phase-lock.
type pump struct {
	size   int
	rate   float64 // offered load in bits per second
	submit func(core.Value)
	jitter bool

	env     proto.Env
	seq     int64
	stopped bool
	tickFn  func() // bound once: ticks fire at MHz aggregate, no per-tick closure
}

func (p *pump) Start(env proto.Env) {
	p.env = env
	p.tickFn = p.tick
	p.tick()
}

func (p *pump) Receive(proto.NodeID, proto.Message) {}

func (p *pump) Stop() { p.stopped = true }

func (p *pump) tick() {
	if p.stopped || p.rate <= 0 {
		return
	}
	p.seq++
	p.submit(core.Value{
		ID:    core.ValueID(int64(p.env.ID())<<40 | p.seq),
		Bytes: p.size,
		Born:  p.env.Now(),
	})
	interval := time.Duration(float64(p.size*8) / p.rate * float64(time.Second))
	if p.jitter {
		interval += time.Duration(p.env.Rand().Int63n(int64(interval)/4 + 1))
	}
	proto.AfterFree(p.env, interval, p.tickFn)
}

// abResult summarizes one atomic broadcast run, observed at a probe
// learner.
type abResult struct {
	Mbps     float64
	MsgsSec  float64
	InstSec  float64
	Lat      time.Duration
	Drops    int64
	CoordCPU float64 // busy fraction over the measured window
	AccCPU   float64
	LearnCPU float64
	ProbeBuf int // probe learner buffer peak (bytes)
	StoreB   int // acceptor store occupancy at end (bytes)
}

const (
	warmup  = 300 * time.Millisecond
	measure = 700 * time.Millisecond
)

// runMRing deploys M-Ring Paxos with nRing ring acceptors and nLearn
// learners, offering `offered` bits/s of msgSize messages from one
// proposer node (plus more proposers when offered exceeds one NIC).
func runMRing(rec *DelivRecorder, gc time.Duration, nRing, nLearn, msgSize int, offered float64, lc lan.Config, disk bool, dur time.Duration) abResult {
	// Learners only bump counters at delivery, so batch arrays can recycle.
	// gc is the GCInterval knob (0 = protocol default, negative = off);
	// figures pass 0, the GC delivery-equivalence test sweeps it.
	cfg := ringpaxos.MConfig{Group: 1, DiskSync: disk, RecycleBatches: true, GCInterval: gc}
	dep := rec.Deployment()
	for i := 0; i < nRing; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
	}
	for i := 0; i < nLearn; i++ {
		cfg.Learners = append(cfg.Learners, proto.NodeID(100+i))
	}
	l := lan.New(lc, 1)
	agents := map[proto.NodeID]*ringpaxos.MAgent{}
	for _, id := range append(append([]proto.NodeID{}, cfg.Ring...), cfg.Learners...) {
		a := &ringpaxos.MAgent{Cfg: cfg}
		agents[id] = a
		l.AddNode(id, a)
		l.Subscribe(1, id)
	}
	for _, id := range cfg.Learners {
		agents[id].Trace = dep.Learner(id)
	}
	// Spread offered load over enough proposers that no proposer NIC
	// saturates.
	nProp := int(offered/0.9e9) + 1
	var pumps []*pump
	for i := 0; i < nProp; i++ {
		prop := &ringpaxos.MAgent{Cfg: cfg}
		p := &pump{size: msgSize, rate: offered / float64(nProp), submit: prop.Propose}
		pumps = append(pumps, p)
		l.AddNode(proto.NodeID(200+i), proto.Multi(prop, p))
	}
	if p := Par(); p > 1 {
		// One ring: its acceptors (ids < nRing) form LP 1; learners (100+)
		// and proposers (200+) keep LP 0.
		l.Partition(p, func(id proto.NodeID) int {
			if int(id) < nRing {
				return 1
			}
			return 0
		})
	}
	l.Start()
	return measureMRing(l, agents, cfg, pumps, dur)
}

func measureMRing(l *lan.LAN, agents map[proto.NodeID]*ringpaxos.MAgent, cfg ringpaxos.MConfig, pumps []*pump, dur time.Duration) abResult {
	if dur == 0 {
		dur = measure
	}
	probe := agents[cfg.Learners[0]]
	coord := l.Node(cfg.Coordinator())
	acc := l.Node(cfg.Ring[0])
	learnNode := l.Node(cfg.Learners[0])
	l.Run(warmup)
	b0, m0, i0 := probe.DeliveredBytes, probe.DeliveredMsgs, probe.NextDeliver()
	ls0, lc0 := probe.LatencySum, probe.LatencyCount
	cc0, ac0, lc2 := coord.CPUBusy(), acc.CPUBusy(), learnNode.CPUBusy()
	drops0 := totalDrops(l, cfg.Learners)
	l.Run(dur)
	res := abResult{
		Mbps:     mbps(probe.DeliveredBytes-b0, dur),
		MsgsSec:  float64(probe.DeliveredMsgs-m0) / dur.Seconds(),
		InstSec:  float64(probe.NextDeliver()-i0) / dur.Seconds(),
		Drops:    totalDrops(l, cfg.Learners) - drops0,
		CoordCPU: float64(coord.CPUBusy()-cc0) / float64(dur),
		AccCPU:   float64(acc.CPUBusy()-ac0) / float64(dur),
		LearnCPU: float64(learnNode.CPUBusy()-lc2) / float64(dur),
		ProbeBuf: learnNode.BufferPeak(),
		StoreB:   agents[cfg.Ring[0]].StoreBytes(),
	}
	if n := probe.LatencyCount - lc0; n > 0 {
		res.Lat = (probe.LatencySum - ls0) / time.Duration(n)
	}
	for _, p := range pumps {
		p.Stop()
	}
	return res
}

func totalDrops(l *lan.LAN, learners []proto.NodeID) int64 {
	var d int64
	for _, id := range learners {
		d += l.Node(id).Stats().MsgsDropped
	}
	return d
}

// runURing deploys U-Ring Paxos with n processes (all proposer, acceptor
// and learner), every process offering offered/n bits per second.
func runURing(rec *DelivRecorder, gc time.Duration, n, msgSize int, offered float64, lc lan.Config, disk bool, dur time.Duration) abResult {
	cfg := ringpaxos.UConfig{DiskSync: disk, GCInterval: gc}
	dep := rec.Deployment()
	for i := 0; i < n; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	l := lan.New(lc, 1)
	agents := make([]*ringpaxos.UAgent, n)
	var pumps []*pump
	for i := 0; i < n; i++ {
		agents[i] = &ringpaxos.UAgent{Cfg: cfg}
		agents[i].Trace = dep.Learner(proto.NodeID(i))
		var hs []proto.Handler
		hs = append(hs, agents[i])
		if i == 0 {
			// Load enters at the coordinator (the paper's best-located
			// proposer): each value then crosses every link exactly once —
			// U-Ring Paxos's throughput economy (§3.5.4).
			p := &pump{size: msgSize, rate: offered, submit: agents[i].Propose}
			pumps = append(pumps, p)
			hs = append(hs, p)
		}
		l.AddNode(proto.NodeID(i), proto.Multi(hs...))
	}
	l.Start()
	if dur == 0 {
		dur = measure
	}
	probe := agents[n-1]
	coord := l.Node(cfg.Coordinator())
	l.Run(warmup)
	b0, m0, i0 := probe.DeliveredBytes, probe.DeliveredMsgs, probe.NextDeliver()
	ls0, lcnt0 := probe.LatencySum, probe.LatencyCount
	cc0 := coord.CPUBusy()
	l.Run(dur)
	res := abResult{
		Mbps:     mbps(probe.DeliveredBytes-b0, dur),
		MsgsSec:  float64(probe.DeliveredMsgs-m0) / dur.Seconds(),
		InstSec:  float64(probe.NextDeliver()-i0) / dur.Seconds(),
		CoordCPU: float64(coord.CPUBusy()-cc0) / float64(dur),
	}
	if n := probe.LatencyCount - lcnt0; n > 0 {
		res.Lat = (probe.LatencySum - ls0) / time.Duration(n)
	}
	for _, p := range pumps {
		p.Stop()
	}
	return res
}

// runLCR deploys LCR with n processes, all broadcasting.
func runLCR(rec *DelivRecorder, n, msgSize int, offered float64, lc lan.Config, disk bool, dur time.Duration) abResult {
	dep := rec.Deployment()
	var ring []proto.NodeID
	for i := 0; i < n; i++ {
		ring = append(ring, proto.NodeID(i))
	}
	l := lan.New(lc, 1)
	agents := make([]*abcast.LCR, n)
	var pumps []*pump
	for i := 0; i < n; i++ {
		agents[i] = &abcast.LCR{Ring: ring, DiskSync: disk}
		agents[i].Trace = dep.Learner(proto.NodeID(i))
		p := &pump{size: msgSize, rate: offered / float64(n), submit: agents[i].Broadcast}
		pumps = append(pumps, p)
		l.AddNode(proto.NodeID(i), proto.Multi(agents[i], p))
	}
	l.Start()
	if dur == 0 {
		dur = measure
	}
	probe := agents[n-1]
	l.Run(warmup)
	b0, m0 := probe.DeliveredBytes, probe.DeliveredMsgs
	ls0, lcnt0 := probe.LatencySum, probe.LatencyCount
	l.Run(dur)
	res := abResult{
		Mbps:    mbps(probe.DeliveredBytes-b0, dur),
		MsgsSec: float64(probe.DeliveredMsgs-m0) / dur.Seconds(),
	}
	if k := probe.LatencyCount - lcnt0; k > 0 {
		res.Lat = (probe.LatencySum - ls0) / time.Duration(k)
	}
	for _, p := range pumps {
		p.Stop()
	}
	return res
}

// runToken deploys the Totem-style token ring (Spread stand-in).
func runToken(rec *DelivRecorder, n, msgSize int, offered float64, lc lan.Config, dur time.Duration) abResult {
	dep := rec.Deployment()
	var ring []proto.NodeID
	for i := 0; i < n; i++ {
		ring = append(ring, proto.NodeID(i))
	}
	l := lan.New(lc, 1)
	agents := make([]*abcast.TokenRing, n)
	var pumps []*pump
	for i := 0; i < n; i++ {
		agents[i] = &abcast.TokenRing{Ring: ring, Group: 1, DaemonCost: 20 * time.Microsecond}
		agents[i].Trace = dep.Learner(proto.NodeID(i))
		p := &pump{size: msgSize, rate: offered / float64(n), submit: agents[i].Broadcast}
		pumps = append(pumps, p)
		// Spread daemons are the system's CPU bottleneck (Table 3.2: 18%
		// efficiency); model them as slower processing stacks.
		l.AddNodeWithConfig(proto.NodeID(i), proto.Multi(agents[i], p),
			lan.NodeConfig{CPUScale: 0.2, BandwidthScale: 1})
		l.Subscribe(1, proto.NodeID(i))
	}
	l.Start()
	if dur == 0 {
		dur = measure
	}
	probe := agents[n-1]
	l.Run(warmup)
	b0, m0 := probe.DeliveredBytes, probe.DeliveredMsgs
	ls0, lcnt0 := probe.LatencySum, probe.LatencyCount
	l.Run(dur)
	res := abResult{
		Mbps:    mbps(probe.DeliveredBytes-b0, dur),
		MsgsSec: float64(probe.DeliveredMsgs-m0) / dur.Seconds(),
	}
	if k := probe.LatencyCount - lcnt0; k > 0 {
		res.Lat = (probe.LatencySum - ls0) / time.Duration(k)
	}
	for _, p := range pumps {
		p.Stop()
	}
	return res
}

// runSPaxos deploys S-Paxos with n replicas; clients spread over replicas.
func runSPaxos(rec *DelivRecorder, gc time.Duration, n, msgSize int, offered float64, lc lan.Config, dur time.Duration) abResult {
	dep := rec.Deployment()
	var reps []proto.NodeID
	for i := 0; i < n; i++ {
		reps = append(reps, proto.NodeID(i))
	}
	l := lan.New(lc, 1)
	agents := make([]*abcast.SPaxos, n)
	var pumps []*pump
	for i := 0; i < n; i++ {
		agents[i] = &abcast.SPaxos{Replicas: reps, GCJitter: 2 * time.Millisecond, GCInterval: gc}
		agents[i].Trace = dep.Learner(proto.NodeID(i))
		p := &pump{size: msgSize, rate: offered / float64(n), submit: agents[i].Submit}
		pumps = append(pumps, p)
		// S-Paxos replicas are CPU-intensive (the paper measures ~270% of
		// a core across threads; Table 3.2 caps it at 31% efficiency).
		l.AddNodeWithConfig(proto.NodeID(i), proto.Multi(agents[i], p),
			lan.NodeConfig{CPUScale: 0.25, BandwidthScale: 1})
	}
	l.Start()
	if dur == 0 {
		dur = measure
	}
	probe := agents[n-1]
	l.Run(warmup)
	b0, m0 := probe.DeliveredBytes, probe.DeliveredMsgs
	ls0, lcnt0 := probe.LatencySum, probe.LatencyCount
	l.Run(dur)
	res := abResult{
		Mbps:    mbps(probe.DeliveredBytes-b0, dur),
		MsgsSec: float64(probe.DeliveredMsgs-m0) / dur.Seconds(),
	}
	if k := probe.LatencyCount - lcnt0; k > 0 {
		res.Lat = (probe.LatencySum - ls0) / time.Duration(k)
	}
	for _, p := range pumps {
		p.Stop()
	}
	return res
}

// runPaxos deploys basic Paxos: multicast wiring = Libpaxos, unicast = PFSB.
func runPaxos(rec *DelivRecorder, gc time.Duration, nAcc, nLearn, msgSize int, multicast bool, offered float64, lc lan.Config, dur time.Duration) abResult {
	cfg := paxos.Config{Coordinator: 0, Multicast: multicast, Group: 1, GCInterval: gc}
	dep := rec.Deployment()
	// The era's Libpaxos pipelines only a handful of instances, one of the
	// reasons the paper measures it at ~3% efficiency.
	cfg.Window = 4
	for i := 0; i < nAcc; i++ {
		cfg.Acceptors = append(cfg.Acceptors, proto.NodeID(i))
	}
	for i := 0; i < nLearn; i++ {
		cfg.Learners = append(cfg.Learners, proto.NodeID(100+i))
	}
	l := lan.New(lc, 1)
	var delivered int64
	var deliveredMsgs int64
	var latSum time.Duration
	var latN int64
	probeID := cfg.Learners[0]
	for i, id := range append(append([]proto.NodeID{}, cfg.Acceptors...), cfg.Learners...) {
		a := &paxos.Agent{Cfg: cfg}
		if i >= nAcc { // positions past the acceptors are the learners
			a.Trace = dep.Learner(id)
		}
		if id == probeID {
			node := id
			_ = node
			a.Deliver = func(_ int64, v core.Value) {
				delivered += int64(v.Bytes)
				deliveredMsgs++
				if v.Born != 0 {
					latSum += l.Node(probeID).Now() - v.Born
					latN++
				}
			}
		}
		l.AddNode(id, a)
		if multicast {
			l.Subscribe(1, id)
		}
	}
	prop := &paxos.Agent{Cfg: cfg}
	p := &pump{size: msgSize, rate: offered, submit: prop.Propose}
	l.AddNode(200, proto.Multi(prop, p))
	l.Start()
	if dur == 0 {
		dur = measure
	}
	coord := l.Node(0)
	l.Run(warmup)
	b0, m0 := delivered, deliveredMsgs
	ls0, ln0 := latSum, latN
	cc0 := coord.CPUBusy()
	l.Run(dur)
	res := abResult{
		Mbps:     mbps(delivered-b0, dur),
		MsgsSec:  float64(deliveredMsgs-m0) / dur.Seconds(),
		CoordCPU: float64(coord.CPUBusy()-cc0) / float64(dur),
	}
	if k := latN - ln0; k > 0 {
		res.Lat = (latSum - ls0) / time.Duration(k)
	}
	p.Stop()
	return res
}

// bestOf sweeps offered loads and returns the best delivered result.
func bestOf(levels []float64, f func(offered float64) abResult) abResult {
	var best abResult
	for _, lv := range levels {
		r := f(lv)
		if r.Mbps > best.Mbps {
			best = r
		}
	}
	return best
}
