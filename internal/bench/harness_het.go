package bench

import (
	"time"

	"repro/internal/abcast"
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/paxos"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

// slowScale is the CPU speed of a "small instance" in the Chapter 7
// heterogeneous runs.
const slowScale = 0.4

func nodeCfg(i, slow int) lan.NodeConfig {
	if i == slow {
		return lan.NodeConfig{CPUScale: slowScale, BandwidthScale: 0.5}
	}
	return lan.NodeConfig{CPUScale: 1, BandwidthScale: 1}
}

// runSPaxosHet is runSPaxos with replica `slow` on a small instance.
func runSPaxosHet(rec *DelivRecorder, n, msgSize int, offered float64, lc lan.Config, slow int) abResult {
	dep := rec.Deployment()
	var reps []proto.NodeID
	for i := 0; i < n; i++ {
		reps = append(reps, proto.NodeID(i))
	}
	l := lan.New(lc, 1)
	agents := make([]*abcast.SPaxos, n)
	for i := 0; i < n; i++ {
		agents[i] = &abcast.SPaxos{Replicas: reps}
		agents[i].Trace = dep.Learner(proto.NodeID(i))
		p := &pump{size: msgSize, rate: offered / float64(n), submit: agents[i].Submit}
		l.AddNodeWithConfig(proto.NodeID(i), proto.Multi(agents[i], p), nodeCfg(i, slow))
	}
	l.Start()
	probe := agents[n-1]
	l.Run(warmup)
	b0 := probe.DeliveredBytes
	l.Run(measure)
	return abResult{Mbps: mbps(probe.DeliveredBytes-b0, measure)}
}

// runURingHet is runURing with ring position `slow` on a small instance.
func runURingHet(rec *DelivRecorder, n, msgSize int, offered float64, lc lan.Config, slow int) abResult {
	dep := rec.Deployment()
	cfg := ringpaxos.UConfig{}
	for i := 0; i < n; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	l := lan.New(lc, 1)
	agents := make([]*ringpaxos.UAgent, n)
	for i := 0; i < n; i++ {
		agents[i] = &ringpaxos.UAgent{Cfg: cfg}
		agents[i].Trace = dep.Learner(proto.NodeID(i))
		var hs []proto.Handler
		hs = append(hs, agents[i])
		if i == 0 {
			hs = append(hs, &pump{size: msgSize, rate: offered, submit: agents[i].Propose})
		}
		l.AddNodeWithConfig(proto.NodeID(i), proto.Multi(hs...), nodeCfg(i, slow))
	}
	l.Start()
	probe := agents[n-1]
	l.Run(warmup)
	b0 := probe.DeliveredBytes
	l.Run(measure)
	return abResult{Mbps: mbps(probe.DeliveredBytes-b0, measure)}
}

// runPaxosHet is runPaxos with acceptor `slow` on a small instance
// (slow == 0 slows the leader).
func runPaxosHet(rec *DelivRecorder, nAcc, nLearn, msgSize int, multicast bool, offered float64, lc lan.Config, slow int) abResult {
	return paxosHet(rec, nAcc, nLearn, msgSize, multicast, offered, lc, slow, 0)
}

// runPaxosBatchedHet is the Libpaxos+ variant: same protocol with batching
// enabled at the coordinator (Chapter 7 proposes batching as the fix).
func runPaxosBatchedHet(rec *DelivRecorder, nAcc, nLearn, msgSize int, offered float64, lc lan.Config, slow int) abResult {
	return paxosHet(rec, nAcc, nLearn, msgSize, true, offered, lc, slow, 32<<10)
}

func paxosHet(rec *DelivRecorder, nAcc, nLearn, msgSize int, multicast bool, offered float64, lc lan.Config, slow, batch int) abResult {
	cfg := paxos.Config{Coordinator: 0, Multicast: multicast, Group: 1}
	dep := rec.Deployment()
	if batch > 0 {
		cfg.BatchBytes = batch
	} else {
		// Unbatched: one instance per client value.
		cfg.BatchBytes = 1
		cfg.BatchDelay = time.Microsecond
	}
	for i := 0; i < nAcc; i++ {
		cfg.Acceptors = append(cfg.Acceptors, proto.NodeID(i))
	}
	for i := 0; i < nLearn; i++ {
		cfg.Learners = append(cfg.Learners, proto.NodeID(100+i))
	}
	l := lan.New(lc, 1)
	var delivered int64
	probeID := cfg.Learners[0]
	for i, id := range append(append([]proto.NodeID{}, cfg.Acceptors...), cfg.Learners...) {
		a := &paxos.Agent{Cfg: cfg}
		if i >= nAcc {
			a.Trace = dep.Learner(id)
		}
		if id == probeID {
			a.Deliver = func(_ int64, v core.Value) { delivered += int64(v.Bytes) }
		}
		nc := lan.NodeConfig{CPUScale: 1, BandwidthScale: 1}
		if i < nAcc {
			nc = nodeCfg(i, slow)
		}
		l.AddNodeWithConfig(id, a, nc)
		if multicast {
			l.Subscribe(1, id)
		}
	}
	prop := &paxos.Agent{Cfg: cfg}
	p := &pump{size: msgSize, rate: offered, submit: prop.Propose}
	l.AddNode(200, proto.Multi(prop, p))
	l.Start()
	l.Run(warmup)
	b0 := delivered
	l.Run(measure)
	return abResult{Mbps: mbps(delivered-b0, measure)}
}
