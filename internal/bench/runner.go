package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"time"
)

// Result is the outcome of one experiment run by the pool.
type Result struct {
	ID     string
	Title  string
	SHA256 string
	// DelivSHA256 is the experiment-level delivery-equivalence digest
	// (see DelivRecorder), captured from the same simulation as SHA256.
	DelivSHA256 string
	// SafetySHA256 is the cross-replica safety digest (see safety.go),
	// "" for experiments that register no oracle.
	SafetySHA256 string
	Bytes        int
	Wall         time.Duration // host wall-clock for this experiment
	// Par is the parallel-within-experiment setting the run used (logical
	// processes requested per partition-capable deployment; 1 = sequential).
	Par int
	Err error // non-nil when the experiment panicked

	// Output is the experiment's full captured text. It is what SHA256
	// hashes; emitting it in registry order makes a parallel run
	// byte-identical to a sequential one.
	Output []byte
}

// Options configures a pool run.
type Options struct {
	// Jobs is the worker count. Values < 1 mean GOMAXPROCS.
	Jobs int
	// OnResult, when set, is called for every result in the order the
	// experiments were given — never completion order — as soon as each
	// result and all its predecessors are done. Workers keep running
	// while OnResult executes; only emission is serialized.
	OnResult func(Result)
}

// Run executes exps on a worker pool and returns one Result per
// experiment, in input order. Experiment output is buffered in memory, so
// workers never interleave writes; a panicking experiment is captured as
// Result.Err and does not take down the pool.
func Run(exps []Experiment, opts Options) []Result {
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(exps) {
		jobs = len(exps)
	}
	results := make([]Result, len(exps))
	if jobs <= 1 {
		// Sequential fast path: same code path per experiment, no
		// goroutines, emission as each experiment finishes.
		for i, e := range exps {
			results[i] = runOne(e)
			if opts.OnResult != nil {
				opts.OnResult(results[i])
			}
		}
		return results
	}

	idx := make(chan int)
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	for w := 0; w < jobs; w++ {
		go func() {
			for i := range idx {
				results[i] = runOne(exps[i])
				close(done[i])
			}
		}()
	}
	go func() {
		for i := range exps {
			idx <- i
		}
		close(idx)
	}()
	// Emit in input order regardless of completion order.
	for i := range exps {
		<-done[i]
		if opts.OnResult != nil {
			opts.OnResult(results[i])
		}
	}
	return results
}

// runOne executes a single experiment through the Hash capture path with
// panic containment. A panicking experiment keeps its partial output but
// never carries a hash (a hash of partial output must not reach golden
// updates) — neither the output hash nor the delivery digest.
func runOne(e Experiment) (r Result) {
	r.ID, r.Title = e.ID, e.Title
	r.Par = Par()
	var buf bytes.Buffer
	rec := &DelivRecorder{}
	start := time.Now()
	defer func() {
		r.Wall = time.Since(start)
		r.Output = buf.Bytes()
		r.Bytes = buf.Len()
		if p := recover(); p != nil {
			r.SHA256, r.DelivSHA256, r.SafetySHA256 = "", "", ""
			r.Err = fmt.Errorf("experiment %s panicked: %v\n%s", e.ID, p, debug.Stack())
		}
	}()
	r.SHA256 = e.hashTraced(&buf, rec)
	r.DelivSHA256 = rec.Digest()
	r.SafetySHA256 = rec.SafetyDigest()
	return
}

// Summary aggregates a finished run.
type Summary struct {
	Experiments int
	Failed      int
	Jobs        int
	Wall        time.Duration
	CPUTime     time.Duration // sum of per-experiment wall clocks
}

// Summarize builds a Summary from results; wall is the whole run's
// elapsed host time (the pool overlaps experiments, so wall <= CPUTime
// for any parallel run).
func Summarize(results []Result, jobs int, wall time.Duration) Summary {
	s := Summary{Experiments: len(results), Jobs: jobs, Wall: wall}
	for _, r := range results {
		s.CPUTime += r.Wall
		if r.Err != nil {
			s.Failed++
		}
	}
	return s
}

// Fprint writes the human-readable one-line run summary.
func (s Summary) Fprint(w io.Writer) {
	fmt.Fprintf(w, "ran %d experiments in %s (%d jobs, %s aggregate, %.1fx speedup), %d failed\n",
		s.Experiments, s.Wall.Round(time.Millisecond), s.Jobs,
		s.CPUTime.Round(time.Millisecond), s.Speedup(), s.Failed)
}

// Speedup is aggregate experiment time over wall time: ~1.0 sequential,
// approaching Jobs under perfect overlap.
func (s Summary) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.CPUTime) / float64(s.Wall)
}
