package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeExp builds a synthetic experiment that sleeps (host time) and then
// prints a deterministic body.
func fakeExp(id string, sleep time.Duration, onRun func()) Experiment {
	return Experiment{ID: id, Title: "fake " + id, Run: func(w io.Writer) {
		if onRun != nil {
			onRun()
		}
		time.Sleep(sleep)
		fmt.Fprintf(w, "body of %s\n", id)
	}}
}

// TestRunnerOrderedEmission forces completion order to be the reverse of
// input order (the first experiment sleeps longest) and checks that
// OnResult still fires in input order with the right outputs.
func TestRunnerOrderedEmission(t *testing.T) {
	var exps []Experiment
	const n = 6
	var started int32
	for i := 0; i < n; i++ {
		// exp0 sleeps 120ms, exp5 sleeps 20ms: with jobs=n all start
		// together and finish in reverse input order.
		exps = append(exps, fakeExp(fmt.Sprintf("exp%d", i),
			time.Duration(n-i)*20*time.Millisecond,
			func() { atomic.AddInt32(&started, 1) }))
	}
	var emitted []string
	results := Run(exps, Options{Jobs: n, OnResult: func(r Result) {
		emitted = append(emitted, r.ID)
	}})
	for i, r := range results {
		want := fmt.Sprintf("exp%d", i)
		if r.ID != want {
			t.Errorf("results[%d] = %s, want %s", i, r.ID, want)
		}
		if got := string(r.Output); got != fmt.Sprintf("body of %s\n", want) {
			t.Errorf("results[%d] output = %q", i, got)
		}
		if r.SHA256 == "" || r.Err != nil {
			t.Errorf("results[%d]: hash %q err %v", i, r.SHA256, r.Err)
		}
	}
	for i, id := range emitted {
		if want := fmt.Sprintf("exp%d", i); id != want {
			t.Fatalf("emission order %v: position %d is %s, want %s", emitted, i, id, want)
		}
	}
	if int(started) != n {
		t.Errorf("ran %d experiments, want %d", started, n)
	}
}

// TestRunnerSaturation checks the pool runs exactly `jobs` experiments
// concurrently: never more (the cap) and, with sleeping work, at some
// point all workers busy at once.
func TestRunnerSaturation(t *testing.T) {
	const jobs, n = 2, 8
	var cur, peak int32
	var exps []Experiment
	for i := 0; i < n; i++ {
		exps = append(exps, Experiment{ID: fmt.Sprintf("sat%d", i), Run: func(io.Writer) {
			c := atomic.AddInt32(&cur, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
					break
				}
			}
			time.Sleep(30 * time.Millisecond)
			atomic.AddInt32(&cur, -1)
		}})
	}
	Run(exps, Options{Jobs: jobs})
	if peak > jobs {
		t.Errorf("pool ran %d experiments at once, cap is %d", peak, jobs)
	}
	if peak < jobs {
		t.Errorf("pool never saturated: peak concurrency %d, want %d", peak, jobs)
	}
}

// TestRunnerJobs1MatchesParallel runs two real (cheap) registry
// experiments sequentially and on a pool: concatenated emitted output must
// be byte-identical, and must equal a direct sequential e.Run — the
// guarantee cmd/repro -all relies on for any -jobs value.
func TestRunnerJobs1MatchesParallel(t *testing.T) {
	var exps []Experiment
	for _, id := range []string{"tab3.1", "tab6.1"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		exps = append(exps, e)
	}
	emit := func(jobs int) string {
		var sb strings.Builder
		Run(exps, Options{Jobs: jobs, OnResult: func(r Result) { sb.Write(r.Output) }})
		return sb.String()
	}
	seq := emit(1)
	par := emit(4)
	var direct bytes.Buffer
	for _, e := range exps {
		e.Run(&direct)
	}
	if seq != direct.String() {
		t.Errorf("jobs=1 output differs from direct sequential run")
	}
	if seq != par {
		t.Errorf("jobs=4 output differs from jobs=1 output")
	}
}

// TestRunnerPanicContained verifies a panicking experiment becomes an
// error result without killing the pool or the other experiments.
func TestRunnerPanicContained(t *testing.T) {
	exps := []Experiment{
		fakeExp("ok1", 0, nil),
		{ID: "boom", Title: "panics", Run: func(w io.Writer) {
			fmt.Fprintln(w, "partial output")
			panic("kaboom")
		}},
		fakeExp("ok2", 0, nil),
	}
	results := Run(exps, Options{Jobs: 2})
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", results[1].Err)
	}
	if results[1].SHA256 != "" {
		t.Errorf("failed experiment must not carry a hash (it would poison golden updates)")
	}
	if !strings.Contains(string(results[1].Output), "partial output") {
		t.Errorf("partial output lost: %q", results[1].Output)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].SHA256 == "" {
			t.Errorf("sibling experiment %s affected by panic: %+v", results[i].ID, results[i])
		}
	}
	sum := Summarize(results, 2, time.Millisecond)
	if sum.Failed != 1 || sum.Experiments != 3 {
		t.Errorf("summary = %+v, want 1 failed of 3", sum)
	}
}

// TestRunnerSpeedup documents the pool's overlap with host-sleeping
// experiments: 4 experiments of ~60ms each must complete in well under
// the 240ms a sequential run needs. (Sleep-bound, so this holds even on
// a single-core host where CPU-bound experiments cannot overlap.)
func TestRunnerSpeedup(t *testing.T) {
	var exps []Experiment
	for i := 0; i < 4; i++ {
		exps = append(exps, fakeExp(fmt.Sprintf("sleep%d", i), 60*time.Millisecond, nil))
	}
	start := time.Now()
	results := Run(exps, Options{Jobs: 4})
	wall := time.Since(start)
	sum := Summarize(results, 4, wall)
	if sum.Speedup() < 2 {
		t.Errorf("pool speedup %.1fx over %v aggregate, want >= 2x", sum.Speedup(), sum.CPUTime)
	}
}

// TestExperimentHashTee checks Hash both returns the output hash and tees
// the text unmodified.
func TestExperimentHashTee(t *testing.T) {
	e := fakeExp("hash", 0, nil)
	var buf bytes.Buffer
	h := e.Hash(&buf)
	if buf.String() != "body of hash\n" {
		t.Fatalf("tee lost output: %q", buf.String())
	}
	sum := sha256.Sum256(buf.Bytes())
	if want := hex.EncodeToString(sum[:]); h != want {
		t.Errorf("Hash = %s, want hash of teed bytes %s", h, want)
	}
	if h2 := e.Hash(nil); h2 != h {
		t.Errorf("Hash(nil) = %s, differs from Hash(buf) = %s", h2, h)
	}
}
