package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

func init() {
	register(Experiment{ID: "fig3.2", Title: "one-to-many: unicast vs multicast vs pipeline", Traced: runFig3_2})
	register(Experiment{ID: "fig3.3", Title: "packet loss vs aggregate rate, 1/2/5 multicast senders", Traced: runFig3_3})
	register(Experiment{ID: "fig3.4", Title: "many-to-one: pipeline vs unicast across packet sizes", Traced: runFig3_4})
	register(Experiment{ID: "fig3.7", Title: "Ring Paxos vs other atomic broadcast protocols", Traced: runFig3_7})
	register(Experiment{ID: "tab3.2", Title: "protocol efficiency at 10 receivers", Traced: runTab3_2})
	register(Experiment{ID: "fig3.8", Title: "impact of processes in the ring", Traced: runFig3_8})
	register(Experiment{ID: "fig3.9", Title: "impact of synchronous disk writes", Traced: runFig3_9})
	register(Experiment{ID: "fig3.10", Title: "message size impact on M-Ring Paxos", Traced: runFig3_10})
	register(Experiment{ID: "fig3.11", Title: "message size impact on U-Ring Paxos", Traced: runFig3_11})
	register(Experiment{ID: "fig3.12", Title: "socket buffer size impact on M-Ring Paxos", Traced: runFig3_12})
	register(Experiment{ID: "fig3.13", Title: "socket buffer size impact on U-Ring Paxos", Traced: runFig3_13})
	register(Experiment{ID: "fig3.14", Title: "flow control trace with a slow learner", Traced: runFig3_14})
	register(Experiment{ID: "tab3.3", Title: "CPU and memory per role, M-Ring Paxos", Traced: runTab3_3})
	register(Experiment{ID: "tab3.4", Title: "CPU and memory per role, U-Ring Paxos", Traced: runTab3_4})
	register(Experiment{ID: "tab3.1", Title: "analytic comparison of atomic broadcast algorithms", Traced: runTab3_1})
}

// counter collects received bytes at a plain receiver.
type counter struct{ bytes int64 }

func (c *counter) Start(proto.Env) {}
func (c *counter) Receive(_ proto.NodeID, m proto.Message) {
	c.bytes += int64(m.Size())
}

// forwarder receives and forwards to a successor (pipeline pattern).
type forwarder struct {
	next  proto.NodeID
	last  bool
	bytes int64
	env   proto.Env
}

func (f *forwarder) Start(env proto.Env) { f.env = env }
func (f *forwarder) Receive(_ proto.NodeID, m proto.Message) {
	f.bytes += int64(m.Size())
	if !f.last {
		f.env.Send(f.next, m)
	}
}

func runFig3_2(w io.Writer, _ *DelivRecorder) {
	t := newTable("Fig 3.2 — one-to-many, 8 KB packets: per-receiver Mbps (sender CPU %)",
		"receivers", "unicast", "multicast", "pipeline")
	size := 8 << 10
	for _, n := range []int{1, 5, 10, 15, 20, 25} {
		row := []any{n}
		for _, pattern := range []string{"unicast", "multicast", "pipeline"} {
			l := lan.New(lan.DefaultConfig(), 1)
			var recvBytes func() int64
			switch pattern {
			case "unicast", "multicast":
				cs := make([]*counter, n)
				for i := 0; i < n; i++ {
					cs[i] = &counter{}
					l.AddNode(proto.NodeID(i+1), cs[i])
					l.Subscribe(1, proto.NodeID(i+1))
				}
				recvBytes = func() int64 { return cs[n-1].bytes }
				isM := pattern == "multicast"
				sender := &proto.HandlerFunc{}
				var env proto.Env
				sender.OnStart = func(e proto.Env) { env = e }
				l.AddNode(0, sender)
				l.Start()
				// Offer 950 Mbps aggregate from the sender; unicast
				// round-robins that budget over the receivers (the NIC is
				// the shared resource, §3.3.1).
				rr := 0
				var tick func()
				tick = func() {
					m := proto.Raw{Bytes: size}
					if isM {
						env.Multicast(1, m)
					} else {
						env.SendUDP(proto.NodeID(rr%n+1), m)
						rr++
					}
					env.After(time.Duration(float64(size*8)/950e6*1e9), tick)
				}
				tick()
			case "pipeline":
				fs := make([]*forwarder, n)
				for i := 0; i < n; i++ {
					fs[i] = &forwarder{next: proto.NodeID(i + 2), last: i == n-1}
					l.AddNode(proto.NodeID(i+1), fs[i])
				}
				recvBytes = func() int64 { return fs[n-1].bytes }
				sender := &proto.HandlerFunc{}
				var env proto.Env
				sender.OnStart = func(e proto.Env) { env = e }
				l.AddNode(0, sender)
				l.Start()
				var tick func()
				tick = func() {
					env.Send(1, proto.Raw{Bytes: size})
					env.After(time.Duration(float64(size*8)/950e6*1e9), tick)
				}
				tick()
			}
			l.Run(warmup)
			b0 := recvBytes()
			cpu0 := l.Node(0).CPUBusy()
			l.Run(measure)
			tput := mbps(recvBytes()-b0, measure)
			cpu := float64(l.Node(0).CPUBusy()-cpu0) / float64(measure) * 100
			row = append(row, fmt.Sprintf("%.0f (%.0f%%)", tput, cpu))
		}
		t.row(row...)
	}
	t.note("paper: unicast per-receiver throughput decays ~1/n; multicast and pipeline stay flat")
	t.print(w)
}

func runFig3_3(w io.Writer, _ *DelivRecorder) {
	t := newTable("Fig 3.3 — multicast loss%% vs aggregate rate (14 receivers)",
		"rate Mbps", "1 sender", "2 senders", "5 senders")
	size := 8 << 10
	for _, rate := range []float64{200e6, 400e6, 600e6, 800e6, 950e6} {
		row := []any{fmt.Sprintf("%.0f", rate/1e6)}
		for _, senders := range []int{1, 2, 5} {
			lc := lan.DefaultConfig()
			lc.UDPBuf = 64 << 10 // modest socket buffers provoke drops
			l := lan.New(lc, int64(senders))
			for i := 0; i < 14; i++ {
				// Receivers drain barely below wire speed (the paper's
				// kernel-buffer overflow regime: ~840 Mbps consumption).
				l.AddNodeWithConfig(proto.NodeID(100+i), &counter{},
					lan.NodeConfig{CPUScale: 0.13, BandwidthScale: 1})
				l.Subscribe(1, proto.NodeID(100+i))
			}
			const burst = 16
			for s := 0; s < senders; s++ {
				h := &proto.HandlerFunc{}
				per := time.Duration(float64(burst*size*8) / (rate / float64(senders)) * float64(time.Second))
				h.OnStart = func(env proto.Env) {
					var tick func()
					tick = func() {
						// Independent senders emit jittered bursts.
						for b := 0; b < burst; b++ {
							env.Multicast(1, proto.Raw{Bytes: size})
						}
						env.After(per/2+time.Duration(env.Rand().Int63n(int64(per))), tick)
					}
					tick()
				}
				l.AddNode(proto.NodeID(s), h)
			}
			l.Start()
			l.Run(warmup + measure)
			var recv, drop int64
			for i := 0; i < 14; i++ {
				st := l.Node(proto.NodeID(100 + i)).Stats()
				recv += st.MsgsRecv
				drop += st.MsgsDropped
			}
			row = append(row, pct(float64(drop), float64(drop+recv)))
		}
		t.row(row...)
	}
	t.note("paper: with more senders, loss starts at lower aggregate rates")
	t.print(w)
}

func runFig3_4(w io.Writer, _ *DelivRecorder) {
	t := newTable("Fig 3.4 — many-to-one (4 senders): receiver Mbps / receiver CPU %",
		"packet", "unicast", "pipeline")
	for _, size := range []int{512, 1 << 10, 2 << 10, 4 << 10, 8 << 10} {
		row := []any{fmt.Sprintf("%dB", size)}
		for _, pattern := range []string{"unicast", "pipeline"} {
			l := lan.New(lan.DefaultConfig(), 1)
			sink := &counter{}
			l.AddNode(0, sink)
			const rate = 220e6 // per sender: 880 Mbps aggregate
			if pattern == "unicast" {
				for s := 1; s <= 4; s++ {
					h := &proto.HandlerFunc{}
					h.OnStart = func(env proto.Env) {
						var tick func()
						tick = func() {
							env.Send(0, proto.Raw{Bytes: size})
							env.After(time.Duration(float64(size*8)/rate*float64(time.Second)), tick)
						}
						tick()
					}
					l.AddNode(proto.NodeID(s), h)
				}
			} else {
				// Pipeline: each sender appends its message to the one from
				// its predecessor (batching), so the receiver sees one big
				// packet per round.
				for s := 1; s <= 4; s++ {
					s := s
					next := proto.NodeID(0)
					if s < 4 {
						next = proto.NodeID(s + 1)
					}
					h := &proto.HandlerFunc{}
					var env proto.Env
					h.OnStart = func(e proto.Env) {
						env = e
						if s == 1 {
							var tick func()
							tick = func() {
								env.Send(next, proto.Raw{Bytes: size})
								env.After(time.Duration(float64(size*8)/rate*float64(time.Second)), tick)
							}
							tick()
						}
					}
					h.OnReceive = func(_ proto.NodeID, m proto.Message) {
						env.Send(next, proto.Raw{Bytes: m.Size() + size})
					}
					l.AddNode(proto.NodeID(s), h)
				}
			}
			l.Start()
			l.Run(warmup)
			b0 := sink.bytes
			c0 := l.Node(0).CPUBusy()
			l.Run(measure)
			tput := mbps(sink.bytes-b0, measure)
			cpu := float64(l.Node(0).CPUBusy()-c0) / float64(measure) * 100
			row = append(row, fmt.Sprintf("%.0f / %.0f%%", tput, cpu))
		}
		t.row(row...)
	}
	t.note("paper: pipeline beats unicast — batching cuts receiver CPU for small packets and balances links for large ones")
	t.print(w)
}

// tab 3.2 message sizes per protocol.
var bestMsgSize = map[string]int{
	"LCR": 32 << 10, "U-Ring Paxos": 32 << 10, "M-Ring Paxos": 8 << 10,
	"S-Paxos": 32 << 10, "Spread": 16 << 10, "PFSB": 200, "Libpaxos": 4 << 10,
}

func protoTput(rec *DelivRecorder, name string, receivers int) abResult {
	lc := lan.DefaultConfig()
	size := bestMsgSize[name]
	levels := []float64{300e6, 600e6, 900e6}
	switch name {
	case "M-Ring Paxos":
		return bestOf(levels, func(o float64) abResult {
			return runMRing(rec, 0, 3, receivers, size, o, lc, false, 0)
		})
	case "U-Ring Paxos":
		return bestOf(levels, func(o float64) abResult {
			return runURing(rec, 0, receivers, size, o, lc, false, 0)
		})
	case "LCR":
		return bestOf(levels, func(o float64) abResult {
			return runLCR(rec, receivers, size, o, lc, false, 0)
		})
	case "S-Paxos":
		return bestOf(levels, func(o float64) abResult {
			return runSPaxos(rec, 0, receivers, size, o, lc, 0)
		})
	case "Spread":
		return bestOf(levels, func(o float64) abResult {
			return runToken(rec, receivers, size, o, lc, 0)
		})
	case "Libpaxos":
		return bestOf([]float64{50e6, 100e6, 200e6}, func(o float64) abResult {
			return runPaxos(rec, 0, 3, receivers, size, true, o, lc, 0)
		})
	case "PFSB":
		return bestOf([]float64{20e6, 50e6, 100e6}, func(o float64) abResult {
			return runPaxos(rec, 0, 3, receivers, size, false, o, lc, 0)
		})
	}
	return abResult{}
}

var fig37Protocols = []string{"M-Ring Paxos", "U-Ring Paxos", "LCR", "Libpaxos", "S-Paxos", "Spread", "PFSB"}

func runFig3_7(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 3.7 — max throughput (Mbps) vs number of receivers",
		append([]string{"protocol"}, "5", "10", "20")...)
	t2 := newTable("Fig 3.7 (right) — messages/second delivered",
		append([]string{"protocol"}, "5", "10", "20")...)
	for _, p := range fig37Protocols {
		row := []any{p}
		row2 := []any{p}
		for _, n := range []int{5, 10, 20} {
			r := protoTput(rec, p, n)
			row = append(row, fmt.Sprintf("%.0f", r.Mbps))
			row2 = append(row2, fmt.Sprintf("%.0f", r.MsgsSec))
		}
		t.row(row...)
		t2.row(row2...)
	}
	t.note("paper: ring/multicast protocols stay near wire speed independent of receivers;")
	t.note("Libpaxos/PFSB/S-Paxos/Spread trail by 3x-30x")
	t.print(w)
	t2.print(w)
}

func runTab3_2(w io.Writer, rec *DelivRecorder) {
	t := newTable("Tab 3.2 — efficiency at 10 receivers (paper: LCR 91%, U-RP 90%, M-RP 90%, S-Paxos 31%, Spread 18%, PFSB 4%, Libpaxos 3%)",
		"protocol", "msg size", "Mbps", "efficiency")
	for _, p := range fig37Protocols {
		r := protoTput(rec, p, 10)
		t.row(p, fmt.Sprintf("%d", bestMsgSize[p]), fmt.Sprintf("%.0f", r.Mbps), pct(r.Mbps, 1000))
	}
	t.print(w)
}

func runFig3_8(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 3.8 — throughput (Mbps) and latency vs ring size",
		"processes", "M-RP", "U-RP", "LCR", "lat M-RP", "lat U-RP", "lat LCR")
	lc := lan.DefaultConfig()
	for _, n := range []int{3, 5, 10, 20, 30} {
		m := runMRing(rec, 0, n, 5, 8<<10, 850e6, lc, false, 0)
		u := runURing(rec, 0, n, 32<<10, 900e6, lc, false, 0)
		l := runLCR(rec, n, 32<<10, 900e6, lc, false, 0)
		t.row(n,
			fmt.Sprintf("%.0f", m.Mbps), fmt.Sprintf("%.0f", u.Mbps), fmt.Sprintf("%.0f", l.Mbps),
			m.Lat, u.Lat, l.Lat)
	}
	t.note("paper: M-Ring Paxos throughput constant; U-RP/LCR decrease slightly; latency grows with ring size, least for M-RP")
	t.print(w)
}

func runFig3_9(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 3.9 — synchronous disk writes: latency vs ring size (throughput disk-bound ~270 Mbps)",
		"processes", "M-RP Mbps", "M-RP lat", "U-RP lat", "LCR lat")
	lc := lan.DefaultConfig()
	for _, n := range []int{3, 5, 7, 9, 11} {
		m := runMRing(rec, 0, n, 3, 8<<10, 200e6, lc, true, 0)
		u := runURing(rec, 0, n, 32<<10, 200e6, lc, true, 0)
		l := runLCR(rec, n, 32<<10, 200e6, lc, true, 0)
		t.row(n, fmt.Sprintf("%.0f", m.Mbps), m.Lat, u.Lat, l.Lat)
	}
	t.note("paper: all disk-bound at ~270 Mbps; M-RP lowest latency (parallel writes), U-RP/LCR sequential along ring")
	t.print(w)
}

func runFig3_10(w io.Writer, rec *DelivRecorder) { msgSizeSweep(w, rec, true) }
func runFig3_11(w io.Writer, rec *DelivRecorder) { msgSizeSweep(w, rec, false) }

func msgSizeSweep(w io.Writer, rec *DelivRecorder, mring bool) {
	name, fig := "U-Ring Paxos", "3.11"
	sizes := []int{200, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 32 << 10}
	if mring {
		name, fig = "M-Ring Paxos", "3.10"
		sizes = sizes[:5]
	}
	t := newTable(fmt.Sprintf("Fig %s — message size impact on %s", fig, name),
		"size", "Mbps", "latency", "msgs/s", "batches/s")
	lc := lan.DefaultConfig()
	for _, s := range sizes {
		var r abResult
		if mring {
			r = runMRing(rec, 0, 3, 5, s, 900e6, lc, false, 0)
		} else {
			r = runURing(rec, 0, 3, s, 900e6, lc, false, 0)
		}
		t.row(fmt.Sprintf("%dB", s), fmt.Sprintf("%.0f", r.Mbps), r.Lat,
			fmt.Sprintf("%.0f", r.MsgsSec), fmt.Sprintf("%.0f", r.InstSec))
	}
	t.note("paper: throughput rises with message size to a knee (8 KB M-RP, 32 KB U-RP); small messages ride batches")
	t.print(w)
}

func runFig3_12(w io.Writer, rec *DelivRecorder) { bufSweep(w, rec, true) }
func runFig3_13(w io.Writer, rec *DelivRecorder) { bufSweep(w, rec, false) }

func bufSweep(w io.Writer, rec *DelivRecorder, mring bool) {
	name, fig := "U-Ring Paxos", "3.13"
	if mring {
		name, fig = "M-Ring Paxos", "3.12"
	}
	t := newTable(fmt.Sprintf("Fig %s — socket buffer size impact on %s", fig, name),
		"buffer", "Mbps", "latency")
	for _, buf := range []int{100 << 10, 1 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20} {
		lc := lan.DefaultConfig()
		var r abResult
		if mring {
			lc.UDPBuf = buf
			r = runMRing(rec, 0, 3, 5, 8<<10, 900e6, lc, false, 0)
		} else {
			lc.TCPBuf = buf
			r = runURing(rec, 0, 3, 32<<10, 900e6, lc, false, 0)
		}
		t.row(fmt.Sprintf("%dK", buf>>10), fmt.Sprintf("%.0f", r.Mbps), r.Lat)
	}
	t.note("paper: M-RP close to max even at 0.1M; U-RP needs ~1M (TCP windowing) to reach max")
	t.print(w)
}

func runFig3_14(w io.Writer, rec *DelivRecorder) {
	// Flow-control trace: a slow learner between t=2s and t=4s of a 6s run.
	cfg := ringpaxos.MConfig{
		Ring:          []proto.NodeID{0, 1},
		Learners:      []proto.NodeID{100, 101, 102},
		Group:         1,
		FlowThreshold: 16,
		ExecCost:      1 * time.Microsecond,
	}
	l := lan.New(lan.DefaultConfig(), 1)
	dep := rec.Deployment()
	agents := map[proto.NodeID]*ringpaxos.MAgent{}
	for _, id := range []proto.NodeID{0, 1, 100, 101, 102} {
		a := &ringpaxos.MAgent{Cfg: cfg}
		agents[id] = a
		l.AddNode(id, a)
		l.Subscribe(1, id)
	}
	for _, id := range cfg.Learners {
		agents[id].Trace = dep.Learner(id)
	}
	prop := &ringpaxos.MAgent{Cfg: cfg}
	p := &pump{size: 8 << 10, rate: 800e6, submit: prop.Propose}
	l.AddNode(200, proto.Multi(prop, p))
	l.Start()
	slow := agents[100]
	t := newTable("Fig 3.14 — flow control trace (slow learner 2s-4s): Mbps per second and coordinator window",
		"second", "delivery@slow", "delivery@fast", "window", "drops")
	var prevSlow, prevFast int64
	var prevDrops int64
	for sec := 0; sec < 6; sec++ {
		if sec == 2 {
			slow.Cfg.ExecCost = 120 * time.Microsecond // learner slows down
		}
		if sec == 4 {
			slow.Cfg.ExecCost = time.Microsecond // restores its rate
		}
		l.Run(time.Second)
		d := totalDrops(l, cfg.Learners)
		t.row(sec+1,
			fmt.Sprintf("%.0f", mbps(slow.DeliveredBytes-prevSlow, time.Second)),
			fmt.Sprintf("%.0f", mbps(agents[101].DeliveredBytes-prevFast, time.Second)),
			agents[1].Window(), d-prevDrops)
		prevSlow, prevFast = slow.DeliveredBytes, agents[101].DeliveredBytes
		prevDrops = d
	}
	t.note("paper: the coordinator halves its window on notifications, all learners slow together, and recovery restores the rate")
	t.print(w)
}

func runTab3_3(w io.Writer, rec *DelivRecorder) {
	lc := lan.DefaultConfig()
	cfg := ringpaxos.MConfig{Ring: []proto.NodeID{0, 1, 2}, Learners: []proto.NodeID{100}, Group: 1}
	l := lan.New(lc, 1)
	dep := rec.Deployment()
	agents := map[proto.NodeID]*ringpaxos.MAgent{}
	for _, id := range []proto.NodeID{0, 1, 2, 100} {
		a := &ringpaxos.MAgent{Cfg: cfg}
		agents[id] = a
		l.AddNode(id, a)
		l.Subscribe(1, id)
	}
	agents[100].Trace = dep.Learner(100)
	prop := &ringpaxos.MAgent{Cfg: cfg}
	p := &pump{size: 8 << 10, rate: 900e6, submit: prop.Propose}
	l.AddNode(200, proto.Multi(prop, p))
	l.Start()
	l.Run(warmup)
	base := map[proto.NodeID]time.Duration{}
	for _, id := range []proto.NodeID{0, 1, 2, 100, 200} {
		base[id] = l.Node(id).CPUBusy()
	}
	l.Run(measure)
	t := newTable("Tab 3.3 — CPU and memory per role at peak, M-Ring Paxos (paper: coord 88%, acceptor 24%, learner 21%, proposer 37%)",
		"role", "CPU", "store bytes")
	cpu := func(id proto.NodeID) string {
		return pct(float64(l.Node(id).CPUBusy()-base[id]), float64(measure))
	}
	t.row("proposer", cpu(200), "-")
	t.row("coordinator", cpu(2), agents[2].StoreBytes())
	t.row("acceptor", cpu(0), agents[0].StoreBytes())
	t.row("learner", cpu(100), "-")
	t.print(w)
}

func runTab3_4(w io.Writer, rec *DelivRecorder) {
	lc := lan.DefaultConfig()
	cfg := ringpaxos.UConfig{}
	for i := 0; i < 3; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	l := lan.New(lc, 1)
	dep := rec.Deployment()
	agents := make([]*ringpaxos.UAgent, 3)
	for i := 0; i < 3; i++ {
		agents[i] = &ringpaxos.UAgent{Cfg: cfg}
		agents[i].Trace = dep.Learner(proto.NodeID(i))
		p := &pump{size: 32 << 10, rate: 300e6, submit: agents[i].Propose}
		l.AddNode(proto.NodeID(i), proto.Multi(agents[i], p))
	}
	l.Start()
	l.Run(warmup)
	base := map[proto.NodeID]time.Duration{}
	for i := 0; i < 3; i++ {
		base[proto.NodeID(i)] = l.Node(proto.NodeID(i)).CPUBusy()
	}
	l.Run(measure)
	t := newTable("Tab 3.4 — CPU per role at peak, U-Ring Paxos (paper: ~48% per process, all roles alike)",
		"role", "CPU")
	for i := 0; i < 3; i++ {
		t.row(fmt.Sprintf("proposer-acceptor-learner %d", i),
			pct(float64(l.Node(proto.NodeID(i)).CPUBusy()-base[proto.NodeID(i)]), float64(measure)))
	}
	t.print(w)
}

func runTab3_1(w io.Writer, _ *DelivRecorder) {
	t := newTable("Tab 3.1 — analytic comparison (f = tolerated failures)",
		"algorithm", "class", "comm steps", "processes", "synchrony")
	rows := [][]string{
		{"LCR", "comm. history", "2f", "f+1", "strong"},
		{"Totem", "privilege", "4f+3", "2f+1", "weak"},
		{"Ring+FD", "privilege", "f^2+2f", "f(f+1)+1", "weak"},
		{"S-Paxos", "-", "5", "2f+1", "weak"},
		{"M-Ring Paxos", "-", "f+3", "2f+1", "weak"},
		{"U-Ring Paxos", "-", "5f", "2f+1", "weak"},
	}
	sort.SliceStable(rows, func(i, j int) bool { return false })
	for _, r := range rows {
		t.row(r[0], r[1], r[2], r[3], r[4])
	}
	t.print(w)
}
