package bench

// Allocation accounting for experiments. Unlike the worker pool in
// runner.go, alloc profiling is strictly sequential: runtime.MemStats is
// process-global, so overlapping experiments would attribute each other's
// garbage. cmd/repro exposes this through -allocs, which is how the
// BENCH_protocol.json before/after numbers are produced, and through
// -check-allocs, the CI budget gate.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// AllocResult is the allocation profile of one experiment run.
type AllocResult struct {
	ID string `json:"id"`
	// Mallocs is the number of heap objects allocated during the run.
	Mallocs uint64 `json:"mallocs"`
	// TotalAlloc is the number of heap bytes allocated during the run.
	TotalAlloc uint64 `json:"total_alloc_bytes"`
	// WallMS is the host wall-clock for the run in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// SHA256 is the output hash, so an alloc run doubles as a
	// determinism check against the golden pins.
	SHA256 string `json:"sha256"`

	// Soak experiments additionally report steady-state occupancy: the
	// peak/final live heap bytes sampled (after forced GC) at each soak
	// checkpoint of the GC-enabled run, and the peak/final count of live
	// per-instance log records (deterministic, also golden-pinned via the
	// experiment text). Zero for non-soak experiments.
	HeapAllocPeak uint64 `json:"heap_alloc_peak_bytes,omitempty"`
	HeapAllocEnd  uint64 `json:"heap_alloc_end_bytes,omitempty"`
	LiveLogPeak   int    `json:"live_log_peak,omitempty"`
	LiveLogEnd    int    `json:"live_log_end,omitempty"`

	// Recovery experiments additionally report the modeled write-ahead-log
	// bytes written across the family's runs and the worst simulated
	// delivery-free gap of a run that recovered (outage + replay +
	// catch-up, in milliseconds). Both are deterministic; the recovery CI
	// budgets gate them. Zero for non-recovery experiments.
	DiskBytes  uint64  `json:"wal_disk_bytes,omitempty"`
	RecoveryMS float64 `json:"recovery_ms,omitempty"`

	// Client experiments additionally report the sessions' re-submission
	// count and retry wire bytes summed across the family's runs — the
	// duplicate-proposal overhead the exactly-once layer is allowed to
	// spend. Deterministic; the client CI budgets gate them. Zero for
	// non-client experiments.
	ClientRetries    uint64 `json:"client_retries,omitempty"`
	ClientExtraBytes uint64 `json:"client_extra_bytes,omitempty"`
}

// ProfileAllocs runs e once and returns its allocation profile. The
// experiment's text output is discarded (only hashed). A GC runs before
// the measurement so garbage from earlier experiments is not charged to
// this one; Mallocs/TotalAlloc deltas themselves are unaffected by GC
// (both counters are monotonic). Soak experiments get per-checkpoint
// heap sampling enabled for the duration of the run.
func ProfileAllocs(e Experiment) AllocResult {
	SetSoakSampling(true)
	defer SetSoakSampling(false)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	sum := e.Hash(io.Discard)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	r := AllocResult{
		ID:         e.ID,
		Mallocs:    after.Mallocs - before.Mallocs,
		TotalAlloc: after.TotalAlloc - before.TotalAlloc,
		WallMS:     float64(wall) / 1e6,
		SHA256:     sum,
	}
	if s, ok := TakeSoakStats(e.ID); ok {
		r.HeapAllocPeak = s.HeapAllocPeak
		r.HeapAllocEnd = s.HeapAllocEnd
		r.LiveLogPeak = s.LiveLogPeak
		r.LiveLogEnd = s.LiveLogEnd
	}
	if s, ok := TakeRecoveryStats(e.ID); ok {
		r.DiskBytes = s.DiskBytes
		r.RecoveryMS = s.RecoveryMS
	}
	if s, ok := TakeClientStats(e.ID); ok {
		r.ClientRetries = s.Retries
		r.ClientExtraBytes = s.ExtraBytes
	}
	return r
}

// AllocBudget is one entry of a CI budget file (see ci/budgets.json): a
// hard ceiling on an experiment's allocation behavior. Zero-valued limits
// are not checked, so one file can mix malloc budgets for figure
// reproductions with heap ceilings for soak workloads.
type AllocBudget struct {
	ID string `json:"id"`
	// MaxMallocs bounds heap objects allocated over the whole run.
	MaxMallocs uint64 `json:"max_mallocs,omitempty"`
	// MaxHeapAllocPeak bounds the live heap (bytes, sampled after forced
	// GC at every soak checkpoint): the flat-memory assertion. A protocol
	// whose logs grow with elapsed time again blows through it.
	MaxHeapAllocPeak uint64 `json:"max_heap_alloc_peak_bytes,omitempty"`
	// MaxLiveLogPeak bounds the deterministic count of live per-instance
	// log records at any soak checkpoint.
	MaxLiveLogPeak int `json:"max_live_log_peak,omitempty"`
	// MaxDiskBytes bounds the modeled write-ahead-log bytes a recovery
	// family writes across all its runs: the durable-logging overhead
	// assertion (a WAL that starts logging redundant records blows it).
	MaxDiskBytes uint64 `json:"max_wal_disk_bytes,omitempty"`
	// MaxRecoveryMS bounds the worst simulated delivery-free gap of a
	// recovering run, in milliseconds: outage plus replay plus catch-up.
	// A replay path that stops short-circuiting or a catch-up that
	// degrades to timeout-paced retransmission blows it.
	MaxRecoveryMS float64 `json:"max_recovery_ms,omitempty"`
	// MaxClientRetries bounds the re-submissions a client family's
	// sessions make across all its runs: a session that retries into a
	// live coordinator (timeout below commit latency) or keeps hammering
	// a dead one (backoff broken) blows it.
	MaxClientRetries uint64 `json:"max_client_retries,omitempty"`
	// MaxClientExtraBytes bounds the retry wire bytes (payload + header
	// per re-submission) of a client family.
	MaxClientExtraBytes uint64 `json:"max_client_extra_bytes,omitempty"`
}

// ReadBudgets parses a budget file.
func ReadBudgets(path string) ([]AllocBudget, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var budgets []AllocBudget
	if err := json.Unmarshal(b, &budgets); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(budgets) == 0 {
		return nil, fmt.Errorf("%s: no budgets", path)
	}
	return budgets, nil
}

// CheckAllocs profiles every budgeted experiment sequentially and returns
// one line per violated ceiling (empty = all within budget). Progress and
// per-check verdicts go to logw.
func CheckAllocs(budgets []AllocBudget, logw io.Writer) ([]AllocResult, []string) {
	var results []AllocResult
	var bad []string
	for _, budget := range budgets {
		e, ok := Get(budget.ID)
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: unknown experiment", budget.ID))
			continue
		}
		r := ProfileAllocs(e)
		results = append(results, r)
		check := func(name string, got, limit uint64) {
			if limit == 0 {
				return
			}
			if got > limit {
				bad = append(bad, fmt.Sprintf("%s: %s %d exceeds budget %d", r.ID, name, got, limit))
				fmt.Fprintf(logw, "FAIL %-12s %s %d > %d\n", r.ID, name, got, limit)
				return
			}
			fmt.Fprintf(logw, "ok   %-12s %s %d (budget %d)\n", r.ID, name, got, limit)
		}
		check("mallocs", r.Mallocs, budget.MaxMallocs)
		check("heap_alloc_peak_bytes", r.HeapAllocPeak, budget.MaxHeapAllocPeak)
		check("live_log_peak", uint64(r.LiveLogPeak), uint64(budget.MaxLiveLogPeak))
		check("wal_disk_bytes", r.DiskBytes, budget.MaxDiskBytes)
		check("client_retries", r.ClientRetries, budget.MaxClientRetries)
		check("client_extra_bytes", r.ClientExtraBytes, budget.MaxClientExtraBytes)
		if budget.MaxRecoveryMS > 0 {
			if r.RecoveryMS > budget.MaxRecoveryMS {
				bad = append(bad, fmt.Sprintf("%s: recovery_ms %.1f exceeds budget %.1f", r.ID, r.RecoveryMS, budget.MaxRecoveryMS))
				fmt.Fprintf(logw, "FAIL %-12s recovery_ms %.1f > %.1f\n", r.ID, r.RecoveryMS, budget.MaxRecoveryMS)
			} else {
				fmt.Fprintf(logw, "ok   %-12s recovery_ms %.1f (budget %.1f)\n", r.ID, r.RecoveryMS, budget.MaxRecoveryMS)
			}
		}
	}
	return results, bad
}
