package bench

// Allocation accounting for experiments. Unlike the worker pool in
// runner.go, alloc profiling is strictly sequential: runtime.MemStats is
// process-global, so overlapping experiments would attribute each other's
// garbage. cmd/repro exposes this through -allocs, which is how the
// BENCH_protocol.json before/after numbers are produced.

import (
	"io"
	"runtime"
	"time"
)

// AllocResult is the allocation profile of one experiment run.
type AllocResult struct {
	ID string `json:"id"`
	// Mallocs is the number of heap objects allocated during the run.
	Mallocs uint64 `json:"mallocs"`
	// TotalAlloc is the number of heap bytes allocated during the run.
	TotalAlloc uint64 `json:"total_alloc_bytes"`
	// WallMS is the host wall-clock for the run in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// SHA256 is the output hash, so an alloc run doubles as a
	// determinism check against the golden pins.
	SHA256 string `json:"sha256"`
}

// ProfileAllocs runs e once and returns its allocation profile. The
// experiment's text output is discarded (only hashed). A GC runs before
// the measurement so garbage from earlier experiments is not charged to
// this one; Mallocs/TotalAlloc deltas themselves are unaffected by GC
// (both counters are monotonic).
func ProfileAllocs(e Experiment) AllocResult {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	sum := e.Hash(io.Discard)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return AllocResult{
		ID:         e.ID,
		Mallocs:    after.Mallocs - before.Mallocs,
		TotalAlloc: after.TotalAlloc - before.TotalAlloc,
		WallMS:     float64(wall) / 1e6,
		SHA256:     sum,
	}
}
