package bench

import (
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation sections must be present.
	want := []string{
		"tab3.1", "fig3.2", "fig3.3", "fig3.4", "fig3.7", "tab3.2",
		"fig3.8", "fig3.9", "fig3.10", "fig3.11", "fig3.12", "fig3.13",
		"fig3.14", "tab3.3", "tab3.4",
		"fig4.3", "fig4.4", "fig4.5", "fig4.6", "fig4.7", "fig4.8",
		"fig4.9", "fig4.10",
		"fig5.1", "fig5.2", "fig5.4", "fig5.5", "fig5.6", "fig5.7",
		"fig5.8", "fig5.9", "fig5.10", "fig5.11",
		"fig6.3", "fig6.4", "fig6.5", "fig6.6", "fig6.7", "tab6.1",
		"fig7.2", "fig7.3", "fig7.4", "fig7.5", "fig7.6", "fig7.7",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want at least %d", len(All()), len(want))
	}
}

func TestTablesRenderAndExperimentsRun(t *testing.T) {
	// Smoke-run the cheap analytic/qualitative experiments end to end.
	for _, id := range []string{"tab3.1", "tab6.1"} {
		e, _ := Get(id)
		var sb strings.Builder
		e.Run(&sb)
		if !strings.Contains(sb.String(), "==") {
			t.Errorf("%s produced no table", id)
		}
	}
}

func TestFlowControlExperiment(t *testing.T) {
	// fig3.14 exercises the full flow-control machinery; run it as an
	// integration test.
	e, ok := Get("fig3.14")
	if !ok {
		t.Fatal("fig3.14 missing")
	}
	var sb strings.Builder
	e.Run(&sb)
	out := sb.String()
	if !strings.Contains(out, "window") {
		t.Fatalf("unexpected fig3.14 output: %s", out)
	}
}

func TestPumpOffersConfiguredRate(t *testing.T) {
	e, ok := Get("fig5.2")
	if !ok {
		t.Fatal("fig5.2 missing")
	}
	e.Run(io.Discard)
}
