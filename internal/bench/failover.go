package bench

// Coordinator-failover workloads (fault.failover.*): each seed's schedule
// kills the coordinator PERMANENTLY (fault.Profile{Pinned, NoRestart}) and
// the same schedule is run twice — once with failover disabled (the
// control: the deployment stalls, tripping the oracle's liveness check)
// and once with the ring-neighbor detector enabled (the election
// re-establishes a coordinator and delivery resumes inside the liveness
// window). The safety digest therefore pins BOTH outcomes per seed:
// consistent=true everywhere, stalled=true for every control run and
// stalled=false for every failover run — byte-identical across fault
// seeds and -par levels like the rest of the fault family.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

func init() {
	register(Experiment{ID: "fault.failover.mring", Title: "M-Ring Paxos permanent coordinator kill: detector election + spare-refilled ring vs no-failover control", Traced: runFailoverMRing})
	register(Experiment{ID: "fault.failover.uring", Title: "U-Ring Paxos permanent coordinator kill: detector election + shrunk acceptor segment vs no-failover control", Traced: runFailoverURing})
}

// failoverDetector is the detector tuning both failover experiments use:
// suspicion plus Phase 1 completes in a few tens of simulated
// milliseconds, well inside the liveness window.
var failoverDetector = ringpaxos.Failover{Heartbeat: 5 * time.Millisecond, Suspect: 15 * time.Millisecond}

// failoverLiveWindow is the oracle's liveness window: far above the
// detector's recovery time, far below the post-kill remainder of the run,
// so the control run always trips it and the failover run never does.
const failoverLiveWindow = 120 * time.Millisecond

// failoverVariants names the two runs per seed, in run order.
var failoverVariants = []string{"none", "failover"}

// runFailoverFamily drives one protocol through every seed's permanent-
// kill schedule twice (control, then failover) and prints the per-run
// report. Positions are seed-dependent (output golden, per seed); the
// verdicts — including the stalled flag — are not (safety golden).
func runFailoverFamily(w io.Writer, rec *DelivRecorder, title string, seeds []int64,
	sched func(seed int64) *fault.Schedule,
	build func(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule, failover bool) *faultRig) {
	t := newTable(title, "seed", "variant", "events", "minpos", "maxpos", "lost", "stalled", "consistent")
	for _, seed := range seeds {
		for vi, variant := range failoverVariants {
			orc := rec.Oracle()
			orc.SetLivenessWindow(failoverLiveWindow)
			s := sched(seed)
			rig := build(rec.Deployment(), orc, s, vi == 1)
			rig.l.Run(faultDur)
			orc.Seal(faultDur)
			t.row(fmt.Sprint(seed), variant, s.Len(), orc.MinPos(), orc.MaxPos(), rig.lost(),
				fmt.Sprint(orc.Stalled()), fmt.Sprint(orc.Consistent()))
			t.note("seed %d %s: %s", seed, variant, orc.Verdict())
			if d := orc.FirstDivergence(); d != "" {
				t.note("seed %d %s FIRST DIVERGENCE: %s", seed, variant, d)
			}
		}
	}
	t.print(w)
}

// --- M-Ring Paxos ---

// mringFailoverSchedule pins the single permanent crash on the
// coordinator (last ring position, node 2) so every seed exercises an
// election; only the kill instant varies with the seed.
func mringFailoverSchedule(seed int64) *fault.Schedule {
	return fault.Generate(seed, fault.Profile{
		Window:    faultWindow,
		Crashes:   1,
		Pinned:    []proto.NodeID{2},
		NoRestart: 1,
		Mode:      fault.Lose,
		MinDown:   20 * time.Millisecond,
		MaxDown:   80 * time.Millisecond,
	})
}

// failoverMRingRig is faultMRingRig plus: a spare (node 5) that the
// election pulls into the reconfigured ring, a proposer subscribed to the
// group so it re-aims at the elected coordinator, and — in the failover
// variant — the detector config.
func failoverMRingRig(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule, failover bool) *faultRig {
	cfg := ringpaxos.MConfig{Group: 1, RecycleBatches: true}
	cfg.Ring = []proto.NodeID{0, 1, 2}
	cfg.Spares = []proto.NodeID{5}
	cfg.Learners = []proto.NodeID{100, 101}
	if failover {
		cfg.Failover = failoverDetector
	}
	l := lan.New(lan.DefaultConfig(), 1)
	rig := &faultRig{l: l}
	members := append(append([]proto.NodeID{}, cfg.Ring...), cfg.Spares...)
	for _, id := range append(members, cfg.Learners...) {
		a := &ringpaxos.MAgent{Cfg: cfg}
		for _, lid := range cfg.Learners {
			if id == lid {
				a.Trace = chainLearner(dep, orc, id)
			}
		}
		l.AddNode(id, a)
		l.Subscribe(1, id)
		rig.ids = append(rig.ids, id)
	}
	prop := &ringpaxos.MAgent{Cfg: cfg}
	p := &pump{size: 1024, rate: 20e6, submit: prop.Propose}
	l.AddNode(200, proto.Multi(prop, p))
	l.Subscribe(1, 200)
	rig.ids = append(rig.ids, 200)
	if par := Par(); par > 1 {
		// Ring acceptors AND the spare form LP 1 (the spare joins the ring
		// mid-run); learners and the proposer keep LP 0.
		l.Partition(par, func(id proto.NodeID) int {
			for _, m := range members {
				if m == id {
					return 1
				}
			}
			return 0
		})
	}
	l.InstallFaults(s)
	l.Start()
	return rig
}

func runFailoverMRing(w io.Writer, rec *DelivRecorder) {
	failoverMRingSeeds(w, rec, faultSeeds)
}

func failoverMRingSeeds(w io.Writer, rec *DelivRecorder, seeds []int64) {
	runFailoverFamily(w, rec,
		"fault.failover.mring — M-Ring Paxos (ring 3 + spare), 20 Mbps of 1 KB values, permanent coordinator kill: control vs detector failover",
		seeds, mringFailoverSchedule, failoverMRingRig)
}

// --- U-Ring Paxos ---

// uringFailoverSchedule pins the permanent crash on the U-Ring
// coordinator (FIRST ring position, node 0). Lose mode: the election is
// exactly what makes a lossy coordinator death survivable, so unlike
// fault.uring this family does not restrict itself to lossless faults.
func uringFailoverSchedule(seed int64) *fault.Schedule {
	return fault.Generate(seed, fault.Profile{
		Window:    faultWindow,
		Crashes:   1,
		Pinned:    []proto.NodeID{0},
		NoRestart: 1,
		Mode:      fault.Lose,
		MinDown:   20 * time.Millisecond,
		MaxDown:   80 * time.Millisecond,
	})
}

// failoverURingRig is faultURingRig with the pump moved to node 3 (the
// coordinator is the kill target, so the traffic source must survive it)
// and — in the failover variant — the detector config.
func failoverURingRig(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule, failover bool) *faultRig {
	cfg := ringpaxos.UConfig{NumAcceptors: 3}
	if failover {
		cfg.Failover = failoverDetector
	}
	const n = 4
	for i := 0; i < n; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	l := lan.New(lan.DefaultConfig(), 1)
	rig := &faultRig{l: l}
	for i := 0; i < n; i++ {
		a := &ringpaxos.UAgent{Cfg: cfg}
		a.Trace = chainLearner(dep, orc, proto.NodeID(i))
		var hs []proto.Handler
		hs = append(hs, a)
		if i == n-1 {
			p := &pump{size: 1024, rate: 20e6, submit: a.Propose}
			hs = append(hs, p)
		}
		l.AddNode(proto.NodeID(i), proto.Multi(hs...))
		rig.ids = append(rig.ids, proto.NodeID(i))
	}
	l.InstallFaults(s)
	l.Start()
	return rig
}

func runFailoverURing(w io.Writer, rec *DelivRecorder) {
	failoverURingSeeds(w, rec, faultSeeds)
}

func failoverURingSeeds(w io.Writer, rec *DelivRecorder, seeds []int64) {
	runFailoverFamily(w, rec,
		"fault.failover.uring — U-Ring Paxos (3 acceptors, 4-process ring), 20 Mbps of 1 KB values, permanent coordinator kill: control vs detector failover",
		seeds, uringFailoverSchedule, failoverURingRig)
}
