package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/smr"
)

func init() {
	register(Experiment{ID: "fig4.3", Title: "cost of replication: CS vs SMR across workloads", Traced: runFig4_3})
	register(Experiment{ID: "fig4.4", Title: "cost of replication: throughput vs replicas", Traced: runFig4_4})
	register(Experiment{ID: "fig4.5", Title: "speculative execution, query workload", Traced: runFig4_5})
	register(Experiment{ID: "fig4.6", Title: "speculative execution, batched updates", Traced: runFig4_6})
	register(Experiment{ID: "fig4.7", Title: "state partitioning speedup (no cross-partition)", Traced: runFig4_7})
	register(Experiment{ID: "fig4.8", Title: "cross-partition queries, 2 replicas/partition", Traced: runFig4_8})
	register(Experiment{ID: "fig4.9", Title: "cross-partition queries, 3 replicas/partition", Traced: runFig4_9})
	register(Experiment{ID: "fig4.10", Title: "speculation + partitioning combined", Traced: runFig4_10})
}

const smrKeys = 100_000

func smrWorkload(kind string, parts int) func(int) smr.Workload {
	switch kind {
	case "queries":
		space := int64(smrKeys)
		if parts > 1 {
			return func(int) smr.Workload {
				return smr.CrossPartitionWorkload{Partitions: parts, PartitionSpan: smrKeys, Span: 1000}
			}
		}
		return func(int) smr.Workload { return smr.QueryWorkload{KeySpace: space, Span: 1000} }
	case "single":
		return func(int) smr.Workload {
			return smr.UpdateWorkload{KeySpace: int64(parts) * smrKeys, PerRequest: 1}
		}
	default: // batch
		return func(int) smr.Workload {
			return smr.UpdateWorkload{KeySpace: int64(parts) * smrKeys, PerRequest: 7}
		}
	}
}

func smrRun(rec *DelivRecorder, cfg smr.DeployConfig, seed int64) (float64, time.Duration) {
	d := smr.Deploy(cfg, lan.DefaultConfig(), seed)
	attachSMRTraces(rec, d)
	return d.Measure(300*time.Millisecond, 700*time.Millisecond)
}

// attachSMRTraces registers every replica's ordering agent with the
// delivery recorder (replica index as the scope key; CS deployments have
// no replicas and record an empty scope). Safe after Deploy: deliveries
// only happen once the LAN runs.
func attachSMRTraces(rec *DelivRecorder, d *smr.Deployment) {
	dep := rec.Deployment()
	for i, r := range d.Replicas {
		r.Agent.Trace = dep.Learner(proto.NodeID(i))
	}
}

func runFig4_3(w io.Writer, rec *DelivRecorder) {
	for _, wl := range []string{"queries", "single", "batch"} {
		t := newTable(fmt.Sprintf("Fig 4.3 — CS vs SMR, %s workload: Kcps / latency vs clients", wl),
			"clients", "CS", "CS lat", "SMR", "SMR lat")
		for _, n := range []int{5, 10, 20, 40} {
			base := smr.DeployConfig{Clients: n, KeysPerPartition: smrKeys, Workload: smrWorkload(wl, 1)}
			cs := base
			cs.CS = true
			t1, l1 := smrRun(rec, cs, 1)
			rep := base
			rep.Replicas = 2
			t2, l2 := smrRun(rec, rep, 1)
			t.row(n, fmt.Sprintf("%.1f", t1/1000), l1, fmt.Sprintf("%.1f", t2/1000), l2)
		}
		t.note("paper: replication costs latency at every load; throughput parity except single updates")
		t.print(w)
	}
}

func runFig4_4(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 4.4 — throughput (Kcps) vs number of replicas, 40 clients",
		"servers", "queries", "ins/del single", "ins/del batch")
	for _, reps := range []int{0, 1, 2, 4, 8} {
		row := []any{fmt.Sprint(reps)}
		if reps == 0 {
			row[0] = "CS"
		}
		for _, wl := range []string{"queries", "single", "batch"} {
			cfg := smr.DeployConfig{Clients: 40, KeysPerPartition: smrKeys, Workload: smrWorkload(wl, 1)}
			if reps == 0 {
				cfg.CS = true
			} else {
				cfg.Replicas = reps
			}
			tput, _ := smrRun(rec, cfg, 2)
			row = append(row, fmt.Sprintf("%.1f", tput/1000))
		}
		t.row(row...)
	}
	t.note("paper: queries scale with replicas up to ~4 then flatten (delivery overhead); updates don't scale")
	t.print(w)
}

func specSweep(w io.Writer, rec *DelivRecorder, fig, wl string) {
	t := newTable(fmt.Sprintf("Fig %s — speculative execution, %s workload: Kcps / latency", fig, wl),
		"replicas", "SMR", "SMR lat", "speculative", "spec lat")
	for _, reps := range []int{1, 2, 4, 8} {
		cfg := smr.DeployConfig{Clients: 30, Replicas: reps, KeysPerPartition: smrKeys, Workload: smrWorkload(wl, 1)}
		t1, l1 := smrRun(rec, cfg, 3)
		cfg.Speculative = true
		t2, l2 := smrRun(rec, cfg, 3)
		t.row(reps, fmt.Sprintf("%.1f", t1/1000), l1, fmt.Sprintf("%.1f", t2/1000), l2)
	}
	t.note("paper: speculation trims response time (up to 16.2 percent); throughput follows by Little law")
	t.print(w)
}

func runFig4_5(w io.Writer, rec *DelivRecorder) { specSweep(w, rec, "4.5", "queries") }
func runFig4_6(w io.Writer, rec *DelivRecorder) { specSweep(w, rec, "4.6", "batch") }

func runFig4_7(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 4.7 — partitioning speedup over SMR (no cross-partition commands)",
		"config", "queries Kcps", "speedup", "batch Kcps", "speedup")
	var baseQ, baseB float64
	for _, parts := range []int{1, 2, 4} {
		name := "SMR"
		if parts > 1 {
			name = fmt.Sprintf("%d partitions", parts)
		}
		q, _ := smrRun(rec, smr.DeployConfig{
			Clients: 64, Replicas: 2, Partitions: parts, KeysPerPartition: smrKeys,
			Workload: smrWorkload("queries", parts),
		}, 4)
		b, _ := smrRun(rec, smr.DeployConfig{
			Clients: 64, Replicas: 2, Partitions: parts, KeysPerPartition: smrKeys,
			Workload: smrWorkload("batch", parts),
		}, 4)
		if parts == 1 {
			baseQ, baseB = q, b
		}
		t.row(name, fmt.Sprintf("%.1f", q/1000), fmt.Sprintf("%.1fx", q/baseQ),
			fmt.Sprintf("%.1f", b/1000), fmt.Sprintf("%.1fx", b/baseB))
	}
	t.note("paper: 2.1x / 3.9x for queries, 1.8x / 2.6x for batched updates")
	t.print(w)
}

func crossSweep(w io.Writer, rec *DelivRecorder, fig string, reps int) {
	t := newTable(fmt.Sprintf("Fig %s — cross-partition query %%%% sweep, 2 partitions x %d replicas (64 clients)", fig, reps),
		"cross %", "Kcps", "latency", "reply Mbps/replica")
	for _, cross := range []int{0, 25, 50, 75, 100} {
		d := smr.Deploy(smr.DeployConfig{
			Clients: 64, Replicas: reps, Partitions: 2, KeysPerPartition: smrKeys,
			Workload: func(int) smr.Workload {
				return smr.CrossPartitionWorkload{
					Partitions: 2, PartitionSpan: smrKeys, Span: 1000, CrossPct: cross,
				}
			},
		}, lan.DefaultConfig(), 5)
		attachSMRTraces(rec, d)
		d.Run(300 * time.Millisecond)
		rep0 := d.LAN.Node(2000)
		sent0 := rep0.Stats().BytesSent
		tput, lat := d.Measure(0, 700*time.Millisecond)
		bw := mbps(rep0.Stats().BytesSent-sent0, 700*time.Millisecond)
		t.row(fmt.Sprint(cross), fmt.Sprintf("%.1f", tput/1000), lat, fmt.Sprintf("%.0f", bw))
	}
	t.note("paper: under high load, mid cross-%% configs win (split queries are cheaper to execute);")
	t.note("reply bandwidth per replica grows with cross-%% and more replicas relieve it")
	t.print(w)
}

func runFig4_8(w io.Writer, rec *DelivRecorder) { crossSweep(w, rec, "4.8", 2) }
func runFig4_9(w io.Writer, rec *DelivRecorder) { crossSweep(w, rec, "4.9", 3) }

func runFig4_10(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 4.10 — speculation + partitioning: improvement over plain partitioned SMR",
		"cross %", "tput gain", "latency cut")
	for _, cross := range []int{0, 25, 50, 75, 100} {
		mk := func(spec bool) (float64, time.Duration) {
			return smrRun(rec, smr.DeployConfig{
				Clients: 48, Replicas: 2, Partitions: 2, Speculative: spec,
				KeysPerPartition: smrKeys,
				Workload: func(int) smr.Workload {
					return smr.CrossPartitionWorkload{
						Partitions: 2, PartitionSpan: smrKeys, Span: 1000, CrossPct: cross,
					}
				},
			}, 6)
		}
		t1, l1 := mk(false)
		t2, l2 := mk(true)
		t.row(fmt.Sprint(cross), pct(t2-t1, t1), pct(float64(l1-l2), float64(l1)))
	}
	t.note("paper: speculation keeps cutting latency, less as cross-partition share grows (narrower window)")
	t.print(w)
}
