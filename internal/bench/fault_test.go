package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// faultFamilies lists every fault experiment's seed-parameterized runner,
// so the invariance tests can re-run them under alternate seed sets.
var faultFamilies = []struct {
	id  string
	run func(w io.Writer, rec *DelivRecorder, seeds []int64)
}{
	{"fault.mring", faultMRingSeeds},
	{"fault.uring", faultURingSeeds},
	{"fault.paxos", faultPaxosSeeds},
	{"fault.spaxos", faultSPaxosSeeds},
	{"fault.failover.mring", failoverMRingSeeds},
	{"fault.failover.uring", failoverURingSeeds},
	{"fault.recovery.mring", recoveryMRingSeeds},
	{"fault.recovery.uring", recoveryURingSeeds},
	{"fault.recovery.snapshot", recoverySnapshotSeeds},
	{"fault.client.mring", clientMRingSeeds},
	{"fault.client.uring", clientURingSeeds},
}

// TestFaultSafetySeedInvariant is the property the safety layer pins:
// the safety digest depends only on the deployment shape and the
// prefix-consistency outcome, never on which faults a seed produced. A
// completely different seed set must therefore yield the identical
// digest (while the output bytes legitimately differ).
func TestFaultSafetySeedInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every fault deployment twice (seconds of simulation)")
	}
	for _, f := range faultFamilies {
		recA, recB := &DelivRecorder{}, &DelivRecorder{}
		var outA, outB bytes.Buffer
		f.run(&outA, recA, []int64{1, 2, 3})
		f.run(&outB, recB, []int64{11, 12, 13})
		dA, dB := recA.SafetyDigest(), recB.SafetyDigest()
		if dA == "" || dB == "" {
			t.Errorf("%s: empty safety digest (a=%q b=%q)", f.id, dA, dB)
			continue
		}
		if dA != dB {
			t.Errorf("%s: safety digest is seed-dependent\n seeds 1..3:   %s\n seeds 11..13: %s\n lines A: %v\n lines B: %v",
				f.id, dA, dB, recA.SafetyLines(), recB.SafetyLines())
		}
		if bytes.Equal(outA.Bytes(), outB.Bytes()) {
			t.Errorf("%s: different seed sets produced identical output — the schedules are not seed-dependent", f.id)
		}
	}
}

// TestFaultParInvariant checks the stronger PDES property on the fault
// family: with the fault schedule installed and the rig partitioned into
// logical processes, the full output bytes — not just the safety digest
// — are identical at -par 1, 2 and 4.
func TestFaultParInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every fault deployment at three par levels")
	}
	defer SetPar(Par())
	for _, f := range faultFamilies {
		var ref []byte
		var refDigest string
		for _, par := range []int{1, 2, 4} {
			SetPar(par)
			rec := &DelivRecorder{}
			var out bytes.Buffer
			f.run(&out, rec, faultSeeds)
			if par == 1 {
				ref, refDigest = out.Bytes(), rec.SafetyDigest()
				continue
			}
			if !bytes.Equal(out.Bytes(), ref) {
				t.Errorf("%s: output at -par %d diverges from sequential", f.id, par)
			}
			if d := rec.SafetyDigest(); d != refDigest {
				t.Errorf("%s: safety digest at -par %d = %s, sequential = %s", f.id, par, d, refDigest)
			}
		}
		SetPar(1)
	}
}

// TestSafetyRecorder exercises the recorder-level plumbing: nil safety,
// digest presence, and line rendering.
func TestSafetyRecorder(t *testing.T) {
	var nilRec *DelivRecorder
	if o := nilRec.Oracle(); o == nil {
		t.Fatal("nil recorder must still hand out a working oracle")
	}
	if d := nilRec.SafetyDigest(); d != "" {
		t.Errorf("nil recorder safety digest = %q, want empty", d)
	}
	rec := &DelivRecorder{}
	if d := rec.SafetyDigest(); d != "" {
		t.Errorf("oracle-less recorder safety digest = %q, want empty", d)
	}
	rec.Oracle().Learner()
	rec.Oracle()
	lines := rec.SafetyLines()
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "o0 learners=1") || !strings.HasPrefix(lines[1], "o1 learners=0") {
		t.Errorf("unexpected safety lines: %v", lines)
	}
	if d := rec.SafetyDigest(); len(d) != 64 {
		t.Errorf("safety digest = %q, want sha256 hex", d)
	}
}

// TestSafetyGoldenRoundTrip exercises the safety-pin helpers next to the
// other two layers in one directory.
func TestSafetyGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const id = "fault.fake"
	if err := WriteSafetyGolden(dir, id, "safety-hash"); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadSafetyGolden(dir, id); err != nil || got != "safety-hash" {
		t.Fatalf("ReadSafetyGolden = %q, %v", got, err)
	}
	bad := VerifySafetyGolden(dir, []Result{
		{ID: id, SafetySHA256: "safety-hash"},    // match
		{ID: id, SafetySHA256: "0000"},           // mismatch
		{ID: "absent", SafetySHA256: "1111"},     // no pin
		{ID: "no-oracle" /* empty digest */},     // skipped
		{ID: id, SafetySHA256: "x", Err: io.EOF}, // failed run skipped
	})
	if len(bad) != 2 {
		t.Fatalf("VerifySafetyGolden reported %d divergences, want 2: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0], "SAFETY VERDICT diverged") || !strings.Contains(bad[1], "no safety golden") {
		t.Errorf("unexpected divergence messages: %v", bad)
	}
}
