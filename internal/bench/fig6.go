package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/psmr"
)

func init() {
	register(Experiment{ID: "fig6.3", Title: "P-SMR: independent commands vs baselines", Traced: runFig6_3})
	register(Experiment{ID: "fig6.4", Title: "P-SMR: dependent commands", Traced: runFig6_4})
	register(Experiment{ID: "fig6.5", Title: "P-SMR: mixed workloads", Traced: runFig6_5})
	register(Experiment{ID: "fig6.6", Title: "P-SMR scalability, uniform workload", Traced: runFig6_6})
	register(Experiment{ID: "fig6.7", Title: "P-SMR scalability, skewed workload", Traced: runFig6_7})
	register(Experiment{ID: "tab6.1", Title: "comparison of SMR parallelization approaches", Traced: runTab6_1})
}

func psmrRun(rec *DelivRecorder, cfg psmr.DeployConfig, seed int64) (float64, time.Duration) {
	dep := rec.Deployment()
	if dep != nil {
		cfg.Trace = func(replica, ring int) *core.DelivTrace {
			return dep.LearnerRing(proto.NodeID(replica), ring)
		}
	}
	cfg.Par = Par()
	d := psmr.Deploy(cfg, lan.DefaultConfig(), seed)
	return d.Measure(300*time.Millisecond, 700*time.Millisecond)
}

var psmrModes = []psmr.Mode{psmr.Sequential, psmr.Pipelined, psmr.SDPE, psmr.PSMR}

func modeSweep(w io.Writer, rec *DelivRecorder, fig string, depPct int) {
	t := newTable(fmt.Sprintf("Fig %s — Kcps (latency) vs clients, 4 workers, %d%%%% dependent commands", fig, depPct),
		"mode", "40 clients", "120 clients", "240 clients")
	for _, mode := range psmrModes {
		row := []any{mode.String()}
		for _, n := range []int{40, 120, 240} {
			tput, lat := psmrRun(rec, psmr.DeployConfig{
				Mode: mode, Workers: 4, Clients: n, DependentPct: depPct,
			}, 1)
			row = append(row, fmt.Sprintf("%.1f (%v)", tput/1000, lat.Round(50*time.Microsecond)))
		}
		t.row(row...)
	}
	switch depPct {
	case 0:
		t.note("paper (Fig 6.3): P-SMR >> SDPE > pipelined ≥ sequential on independent commands")
	case 100:
		t.note("paper (Fig 6.4): with all commands dependent, P-SMR degrades to roughly sequential performance")
	}
	t.print(w)
}

func runFig6_3(w io.Writer, rec *DelivRecorder) { modeSweep(w, rec, "6.3", 0) }
func runFig6_4(w io.Writer, rec *DelivRecorder) { modeSweep(w, rec, "6.4", 100) }

func runFig6_5(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 6.5 — mixed workloads, 4 workers, 160 clients: Kcps vs dependent %",
		"mode", "0%", "5%", "20%", "50%", "100%")
	for _, mode := range []psmr.Mode{psmr.Sequential, psmr.SDPE, psmr.PSMR} {
		row := []any{mode.String()}
		for _, p := range []int{0, 5, 20, 50, 100} {
			tput, _ := psmrRun(rec, psmr.DeployConfig{Mode: mode, Workers: 4, Clients: 160, DependentPct: p}, 2)
			row = append(row, fmt.Sprintf("%.1f", tput/1000))
		}
		t.row(row...)
	}
	t.note("paper: P-SMR's advantage shrinks smoothly as the dependent fraction grows")
	t.print(w)
}

func runFig6_6(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 6.6 — scalability, uniform workload: Kcps vs workers (240 clients)",
		"workers", "P-SMR", "SDPE", "sequential")
	for _, wk := range []int{1, 2, 4, 8} {
		p, _ := psmrRun(rec, psmr.DeployConfig{Mode: psmr.PSMR, Workers: wk, Clients: 240}, 3)
		s, _ := psmrRun(rec, psmr.DeployConfig{Mode: psmr.SDPE, Workers: wk, Clients: 240}, 3)
		q, _ := psmrRun(rec, psmr.DeployConfig{Mode: psmr.Sequential, Workers: wk, Clients: 240}, 3)
		t.row(wk, fmt.Sprintf("%.1f", p/1000), fmt.Sprintf("%.1f", s/1000), fmt.Sprintf("%.1f", q/1000))
	}
	t.note("paper: P-SMR grows near-linearly with workers; SDPE flattens at the scheduler; sequential is flat")
	t.print(w)
}

func runFig6_7(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 6.7 — skewed (zipf) vs uniform class popularity: P-SMR Kcps (4 workers, 240 clients)",
		"skew", "P-SMR", "SDPE")
	for _, z := range []float64{0, 1.2, 2.0} {
		name := "uniform"
		if z > 0 {
			name = fmt.Sprintf("zipf s=%.1f", z)
		}
		p, _ := psmrRun(rec, psmr.DeployConfig{Mode: psmr.PSMR, Workers: 4, Clients: 240, Zipf: z}, 4)
		s, _ := psmrRun(rec, psmr.DeployConfig{Mode: psmr.SDPE, Workers: 4, Clients: 240, Zipf: z}, 4)
		t.row(name, fmt.Sprintf("%.1f", p/1000), fmt.Sprintf("%.1f", s/1000))
	}
	t.note("paper: skew concentrates load on one worker/ring and erodes P-SMR's scalability")
	t.print(w)
}

func runTab6_1(w io.Writer, _ *DelivRecorder) {
	t := newTable("Tab 6.1 — approaches to parallelizing SMR (qualitative, §6.2)",
		"approach", "delivery", "execution", "serial bottleneck")
	t.row("sequential SMR", "sequential", "sequential", "the single thread")
	t.row("pipelined SMR", "pipelined", "sequential", "execution thread")
	t.row("SDPE (CBASE)", "sequential", "parallel", "dependency scheduler")
	t.row("EV (Eve)", "parallel", "parallel", "verification round")
	t.row("P-SMR", "parallel", "parallel", "none for independent commands")
	t.print(w)
}
