package bench

import (
	"fmt"
	"io"

	"repro/internal/lan"
)

func init() {
	register(Experiment{ID: "fig7.2", Title: "peak performance of four Paxos libraries (cloud study)", Traced: runFig7_2})
	register(Experiment{ID: "fig7.3", Title: "S-Paxos in heterogeneous configurations", Traced: runFig7_3})
	register(Experiment{ID: "fig7.4", Title: "OpenReplica-style in heterogeneous configurations", Traced: runFig7_4})
	register(Experiment{ID: "fig7.5", Title: "U-Ring Paxos in heterogeneous configurations", Traced: runFig7_5})
	register(Experiment{ID: "fig7.6", Title: "Libpaxos in heterogeneous configurations", Traced: runFig7_6})
	register(Experiment{ID: "fig7.7", Title: "Libpaxos+ (batching) in heterogeneous configurations", Traced: runFig7_7})
}

// The Chapter 7 study runs the four open-source library architectures on
// heterogeneous (cloud-like) machines. We model EC2 instance classes with
// per-node CPU scaling: "small" nodes run at 40% speed.
//
//   - S-Paxos            -> internal/abcast.SPaxos
//   - OpenReplica        -> basic unicast Paxos, no batching (per client op)
//   - U-Ring Paxos       -> internal/ringpaxos.UAgent
//   - Libpaxos/Libpaxos+ -> basic multicast Paxos without/with batching
func runFig7_2(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 7.2 — peak throughput (Mbps) by message size, homogeneous cluster",
		"library", "200B", "4KB", "32KB")
	lc := lan.DefaultConfig()
	row := func(name string, f func(size int) abResult) {
		t.row(name,
			fmt.Sprintf("%.0f", f(200).Mbps),
			fmt.Sprintf("%.0f", f(4<<10).Mbps),
			fmt.Sprintf("%.0f", f(32<<10).Mbps))
	}
	row("S-Paxos", func(s int) abResult { return runSPaxos(rec, 0, 3, s, 400e6, lc, 0) })
	row("OpenReplica-style", func(s int) abResult {
		return bestOf([]float64{20e6, 60e6}, func(o float64) abResult {
			return runPaxos(rec, 0, 3, 3, s, false, o, lc, 0)
		})
	})
	row("U-Ring Paxos", func(s int) abResult { return runURing(rec, 0, 3, s, 900e6, lc, false, 0) })
	row("Libpaxos", func(s int) abResult {
		return bestOf([]float64{50e6, 150e6, 300e6}, func(o float64) abResult {
			return runPaxos(rec, 0, 3, 3, s, true, o, lc, 0)
		})
	})
	t.note("paper: U-Ring Paxos peaks highest; S-Paxos benefits from large messages; unbatched libraries trail")
	t.print(w)
}

// hetero runs one library with a chosen node slowed to 40% CPU and reports
// throughput relative to the homogeneous run.
func hetero(w io.Writer, fig, name string, run func(lc lan.Config, slow int) abResult) {
	t := newTable(fmt.Sprintf("Fig %s — %s with one slow (40%%%% CPU) machine", fig, name),
		"configuration", "Mbps", "vs homogeneous")
	lc := lan.DefaultConfig()
	base := run(lc, -1)
	t.row("homogeneous", fmt.Sprintf("%.0f", base.Mbps), "100%")
	// Fixed slot order: ranging over a map here would randomize row order
	// run to run and break the golden-output pins.
	for slot, label := range []string{"slow leader/coordinator", "slow acceptor/replica"} {
		r := run(lc, slot)
		t.row(label, fmt.Sprintf("%.0f", r.Mbps), pct(r.Mbps, base.Mbps))
	}
	t.print(w)
}

// slowCfg communicates the slow node index to the runners via a package
// variable consumed by lan deployment wrappers below. To stay simple the
// heterogeneous runners rebuild deployments locally.
func runFig7_3(w io.Writer, rec *DelivRecorder) {
	hetero(w, "7.3", "S-Paxos", func(lc lan.Config, slow int) abResult {
		return runSPaxosHet(rec, 3, 8<<10, 400e6, lc, slow)
	})
}

func runFig7_4(w io.Writer, rec *DelivRecorder) {
	hetero(w, "7.4", "OpenReplica-style (unicast, unbatched)", func(lc lan.Config, slow int) abResult {
		return runPaxosHet(rec, 3, 3, 4<<10, false, 60e6, lc, slow)
	})
}

func runFig7_5(w io.Writer, rec *DelivRecorder) {
	hetero(w, "7.5", "U-Ring Paxos", func(lc lan.Config, slow int) abResult {
		return runURingHet(rec, 3, 32<<10, 700e6, lc, slow)
	})
}

func runFig7_6(w io.Writer, rec *DelivRecorder) {
	hetero(w, "7.6", "Libpaxos (multicast, unbatched)", func(lc lan.Config, slow int) abResult {
		return runPaxosHet(rec, 3, 3, 4<<10, true, 150e6, lc, slow)
	})
}

func runFig7_7(w io.Writer, rec *DelivRecorder) {
	hetero(w, "7.7", "Libpaxos+ (multicast, batched)", func(lc lan.Config, slow int) abResult {
		return runPaxosBatchedHet(rec, 3, 3, 4<<10, 300e6, lc, slow)
	})
}
