package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// fig32SeedHash is the SHA-256 of the fig3.2 experiment's full text output
// under the seed kernel (pointer-heap internal/sim + closure-based
// internal/lan), captured before the allocation-free rewrite. The rewrite
// must preserve the (time, seq) total event order exactly, so the regenerated
// figure must stay byte-identical for the fixed seed.
//
// If a deliberate model change legitimately alters the figure, re-capture
// with: go test ./internal/bench -run TestFig32Determinism -v
const fig32SeedHash = "313fd52c4c14930422d4606fc4b14ae7a62205a58e0292d658e50da82773e669"

// TestFig32Determinism regenerates fig3.2 (one-to-many unicast vs multicast
// vs pipeline — it exercises SendUDP, Multicast, Send/ack windows, timers and
// CPU reservations together) and verifies the output is byte-identical to the
// pre-refactor golden hash.
func TestFig32Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	e, ok := Get("fig3.2")
	if !ok {
		t.Fatal("fig3.2 not registered")
	}
	h := sha256.New()
	e.Run(h)
	got := hex.EncodeToString(h.Sum(nil))
	t.Logf("fig3.2 output hash: %s", got)
	if got != fig32SeedHash {
		t.Fatalf("fig3.2 output diverged from the seed kernel\n got:  %s\n want: %s\n"+
			"the event kernel rewrite must preserve (time, seq) order exactly",
			got, fig32SeedHash)
	}
}
