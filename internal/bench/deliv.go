package bench

// This file holds the delivery-equivalence golden layer: a second,
// schedule-invariant regression net next to the byte-level output hashes.
//
// The output goldens pin every byte an experiment prints, which also pins
// incidental message schedules (batch boundaries, retransmission timing,
// GC version traffic). The delivery goldens pin only what the paper's
// protocols actually guarantee: the agreed delivery sequence at every
// learner. Each experiment run carries a DelivRecorder; every deployment
// the experiment builds registers its learners, and each learner folds
// its delivered (instance id, value id, value size) sequence — in
// delivery order, nothing else — into a streaming SHA-256
// (core.DelivTrace). The per-learner digests combine, in registration
// order, into one experiment-level digest pinned under
// testdata/golden/<id>.deliv.sha256.
//
// Traces stop at DelivWindow of simulated time, before the first
// garbage-collection version report can fire (protocol GC intervals are
// >= 50ms). Within that window the discrete-event schedule is provably
// unaffected by GC-interval defaults and GC-timer arming changes — extra
// timers only shift kernel sequence numbers uniformly, never the relative
// order of earlier events — so a schedule-changing fix that preserves the
// agreed delivery sequence leaves every .deliv.sha256 byte-identical
// while the output goldens move.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// DelivWindow bounds every delivery trace to the schedule-invariant
// prefix: strictly before the earliest instant at which any protocol's
// garbage-collection version reporting (interval >= 50ms) can first
// perturb the event schedule.
const DelivWindow = 45 * time.Millisecond

// DelivRecorder accumulates the per-learner delivery traces of one
// experiment run. A nil recorder is fully functional as a no-op, so
// harness code can wire traces unconditionally.
type DelivRecorder struct {
	deps   int
	scopes []delivScope
	// oracles are the cross-replica safety checkers the run registered
	// via Oracle (see safety.go) — the third golden layer's source.
	oracles []*core.Oracle
}

type delivScope struct {
	key string
	tr  *core.DelivTrace
}

// Deployment opens the next deployment scope (experiments that sweep a
// parameter build many deployments; scopes are numbered in build order,
// which is deterministic for a registered experiment).
func (r *DelivRecorder) Deployment() *DelivDeployment {
	if r == nil {
		return nil
	}
	d := &DelivDeployment{r: r, idx: r.deps}
	r.deps++
	return d
}

// DelivDeployment hands out learner traces inside one deployment scope.
type DelivDeployment struct {
	r   *DelivRecorder
	idx int
}

// Learner registers a delivery trace for the learner at node id.
func (d *DelivDeployment) Learner(id proto.NodeID) *core.DelivTrace {
	if d == nil {
		return nil
	}
	return d.add(fmt.Sprintf("d%d/L%d", d.idx, id))
}

// LearnerRing registers a trace for one of a learner's per-ring agents
// (Multi-Ring Paxos / P-SMR deployments).
func (d *DelivDeployment) LearnerRing(id proto.NodeID, ring int) *core.DelivTrace {
	if d == nil {
		return nil
	}
	return d.add(fmt.Sprintf("d%d/L%d/r%d", d.idx, id, ring))
}

func (d *DelivDeployment) add(key string) *core.DelivTrace {
	tr := core.NewDelivTrace(DelivWindow)
	d.r.scopes = append(d.r.scopes, delivScope{key: key, tr: tr})
	return tr
}

// Lines renders one "scope sha256 count" line per registered learner, in
// registration order — the preimage of Digest, exposed for debugging a
// divergence.
func (r *DelivRecorder) Lines() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.scopes))
	for i, s := range r.scopes {
		out[i] = fmt.Sprintf("%s %s %d", s.key, s.tr.Sum(), s.tr.Count())
	}
	return out
}

// Count sums the recorded deliveries across every learner.
func (r *DelivRecorder) Count() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for _, s := range r.scopes {
		n += s.tr.Count()
	}
	return n
}

// Digest combines every learner's digest into the experiment-level
// delivery-equivalence hash that .deliv.sha256 files pin. A nil recorder
// has no digest (""), which verification skips — distinct from a live
// recorder that legitimately saw no learners.
func (r *DelivRecorder) Digest() string {
	if r == nil {
		return ""
	}
	h := sha256.New()
	for _, ln := range r.Lines() {
		h.Write([]byte(ln))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
