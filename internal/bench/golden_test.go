package bench

import (
	"os"
	"strings"
	"testing"
)

const goldenDir = "testdata/golden"

// TestGoldenOutputs regenerates every deterministic experiment on the
// worker pool and verifies each one's full text output against its pinned
// SHA-256 under testdata/golden/. Any change to protocol logic, the LAN
// model or the event kernel that perturbs a single output byte fails
// here. After a deliberate model change, re-pin with:
//
//	go run ./cmd/repro -update-golden
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full evaluation (minutes of simulation)")
	}
	exps := GoldenExperiments()
	results := Run(exps, Options{})
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed: %v", r.ID, r.Err)
		}
	}
	for _, bad := range VerifyGolden(goldenDir, results) {
		t.Error(bad)
	}
}

// TestGoldenFilesMatchRegistry keeps testdata/golden and the registry in
// sync: every deterministic experiment must have a pin, and every pin
// must belong to a registered experiment (no stale files after a rename).
func TestGoldenFilesMatchRegistry(t *testing.T) {
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("golden dir missing: %v (run cmd/repro -update-golden)", err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		id, ok := strings.CutSuffix(e.Name(), ".sha256")
		if !ok {
			t.Errorf("unexpected file %s in %s", e.Name(), goldenDir)
			continue
		}
		onDisk[id] = true
	}
	for _, e := range GoldenExperiments() {
		if !onDisk[e.ID] {
			t.Errorf("experiment %s has no golden pin; run cmd/repro -update-golden", e.ID)
		}
		delete(onDisk, e.ID)
		h, err := ReadGolden(goldenDir, e.ID)
		if err != nil {
			continue
		}
		if len(h) != 64 {
			t.Errorf("golden pin for %s is not a sha256 hex digest: %q", e.ID, h)
		}
	}
	for id := range onDisk {
		t.Errorf("stale golden pin %s.sha256: no such experiment", id)
	}
}

// fig32SeedHash is the SHA-256 of fig3.2's full output under the seed
// kernel (pointer-heap internal/sim + closure-based internal/lan),
// captured before the allocation-free rewrite. The golden suite replaced
// the original one-off determinism test, but the pin must still trace
// back to the seed: re-pinning fig3.2 means the (time, seq) total event
// order changed, which needs a deliberate decision, not an -update-golden
// reflex.
const fig32SeedHash = "313fd52c4c14930422d4606fc4b14ae7a62205a58e0292d658e50da82773e669"

// TestFig32PinMatchesSeedKernel guards the provenance chain at zero
// simulation cost: the committed fig3.2 pin (verified against a live run
// by TestGoldenOutputs) must equal the seed kernel's hash.
func TestFig32PinMatchesSeedKernel(t *testing.T) {
	got, err := ReadGolden(goldenDir, "fig3.2")
	if err != nil {
		t.Fatal(err)
	}
	if got != fig32SeedHash {
		t.Fatalf("fig3.2 pin diverged from the seed kernel\n got:  %s\n want: %s\n"+
			"event-order changes need a deliberate sign-off: update this constant only on purpose",
			got, fig32SeedHash)
	}
}

// TestGoldenRoundTrip exercises the read/write helpers on a temp dir.
func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir() + "/nested/golden"
	const id, hash = "fig9.9", "deadbeef"
	if err := WriteGolden(dir, id, hash); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGolden(dir, id)
	if err != nil || got != hash {
		t.Fatalf("ReadGolden = %q, %v; want %q", got, err, hash)
	}
	if _, err := ReadGolden(dir, "absent"); !os.IsNotExist(err) {
		t.Errorf("missing pin error = %v, want not-exist", err)
	}
	bad := VerifyGolden(dir, []Result{
		{ID: id, SHA256: hash},         // match
		{ID: id, SHA256: "0000"},       // mismatch
		{ID: "absent", SHA256: "1111"}, // no pin
		{ID: "failed" /* no hash */},   // skipped
	})
	if len(bad) != 2 {
		t.Fatalf("VerifyGolden reported %d divergences, want 2: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0], "diverged") || !strings.Contains(bad[1], "no golden file") {
		t.Errorf("unexpected divergence messages: %v", bad)
	}
}
