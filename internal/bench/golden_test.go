package bench

import (
	"os"
	"strings"
	"sync"
	"testing"
)

const goldenDir = "testdata/golden"

// goldenPoolResults regenerates the full evaluation exactly once per test
// binary and shares the results between the output-hash and
// delivery-equivalence suites, so running both gates costs one simulation
// pass.
var (
	goldenPoolOnce sync.Once
	goldenPoolRes  []Result
)

func goldenPoolResults(t *testing.T) []Result {
	t.Helper()
	if testing.Short() {
		t.Skip("regenerates the full evaluation (minutes of simulation)")
	}
	goldenPoolOnce.Do(func() { goldenPoolRes = Run(GoldenExperiments(), Options{}) })
	for _, r := range goldenPoolRes {
		if r.Err != nil {
			t.Errorf("%s failed: %v", r.ID, r.Err)
		}
	}
	return goldenPoolRes
}

// TestGoldenOutputs regenerates every deterministic experiment on the
// worker pool and verifies each one's full text output against its pinned
// SHA-256 under testdata/golden/. Any change to protocol logic, the LAN
// model or the event kernel that perturbs a single output byte fails
// here. After a deliberate model change, re-pin with:
//
//	go run ./cmd/repro -update-golden
func TestGoldenOutputs(t *testing.T) {
	for _, bad := range VerifyGolden(goldenDir, goldenPoolResults(t)) {
		t.Error(bad)
	}
}

// TestDeliveryEquivalence is the schedule-invariant gate: the same run's
// per-learner delivered command sequences (instance id, value id, value
// size, in delivery order, within the schedule-invariant window) must
// match the pinned <id>.deliv.sha256 digests. Unlike the output pins,
// these digests must survive changes that only reshuffle message
// schedules — GC defaults, timer reorganizations, retransmission tuning.
// A failure here means some learner's agreed delivery sequence (or an
// experiment's deployment shape) changed; that needs explicit
// justification, never a reflexive re-pin.
func TestDeliveryEquivalence(t *testing.T) {
	for _, bad := range VerifyDelivGolden(goldenDir, goldenPoolResults(t)) {
		t.Error(bad)
	}
}

// TestSafetyGoldens is the strongest gate: every fault experiment's
// cross-replica safety digest must match its pinned <id>.safety.sha256.
// The digest is built from schedule-invariant oracle verdicts only, so
// no code change that merely reshapes schedules — or even changes which
// faults a seed produces — may move it. A failure means some learner
// delivered a sequence that is not a prefix of the agreed one.
func TestSafetyGoldens(t *testing.T) {
	results := goldenPoolResults(t)
	for _, bad := range VerifySafetyGolden(goldenDir, results) {
		t.Error(bad)
	}
	// The fault family must actually carry a digest — an experiment that
	// silently stops registering its oracle would otherwise pass by
	// vacuity.
	covered := 0
	for _, r := range results {
		if strings.HasPrefix(r.ID, "fault.") {
			if r.SafetySHA256 == "" {
				t.Errorf("%s produced no safety digest; its oracle wiring is gone", r.ID)
			}
			covered++
		}
	}
	if covered == 0 {
		t.Error("no fault.* experiments in the golden suite")
	}
}

// TestGoldenFilesMatchRegistry keeps testdata/golden and the registry in
// sync: every deterministic experiment must have both an output pin and a
// delivery pin, and every pin on disk must belong to a registered
// experiment (no stale files after a rename).
func TestGoldenFilesMatchRegistry(t *testing.T) {
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("golden dir missing: %v (run cmd/repro -update-golden)", err)
	}
	onDisk := map[string]bool{}       // output pins
	delivOnDisk := map[string]bool{}  // delivery pins
	safetyOnDisk := map[string]bool{} // safety pins (fault experiments only)
	for _, e := range entries {
		if id, ok := strings.CutSuffix(e.Name(), ".deliv.sha256"); ok {
			delivOnDisk[id] = true
			continue
		}
		if id, ok := strings.CutSuffix(e.Name(), ".safety.sha256"); ok {
			safetyOnDisk[id] = true
			continue
		}
		id, ok := strings.CutSuffix(e.Name(), ".sha256")
		if !ok {
			t.Errorf("unexpected file %s in %s", e.Name(), goldenDir)
			continue
		}
		onDisk[id] = true
	}
	for _, e := range GoldenExperiments() {
		if !onDisk[e.ID] {
			t.Errorf("experiment %s has no output golden pin; run cmd/repro -update-golden", e.ID)
		}
		if !delivOnDisk[e.ID] {
			t.Errorf("experiment %s has no delivery golden pin; run cmd/repro -update-golden", e.ID)
		}
		if strings.HasPrefix(e.ID, "fault.") && !safetyOnDisk[e.ID] {
			t.Errorf("fault experiment %s has no safety golden pin; run cmd/repro -update-golden", e.ID)
		}
		delete(onDisk, e.ID)
		delete(delivOnDisk, e.ID)
		delete(safetyOnDisk, e.ID)
		if h, err := ReadGolden(goldenDir, e.ID); err == nil && len(h) != 64 {
			t.Errorf("output pin for %s is not a sha256 hex digest: %q", e.ID, h)
		}
		if h, err := ReadDelivGolden(goldenDir, e.ID); err == nil && len(h) != 64 {
			t.Errorf("delivery pin for %s is not a sha256 hex digest: %q", e.ID, h)
		}
		if h, err := ReadSafetyGolden(goldenDir, e.ID); err == nil && len(h) != 64 {
			t.Errorf("safety pin for %s is not a sha256 hex digest: %q", e.ID, h)
		}
	}
	for id := range onDisk {
		t.Errorf("stale golden pin %s.sha256: no such experiment", id)
	}
	for id := range delivOnDisk {
		t.Errorf("stale delivery pin %s.deliv.sha256: no such experiment", id)
	}
	for id := range safetyOnDisk {
		t.Errorf("stale safety pin %s.safety.sha256: no such experiment", id)
	}
}

// fig32SeedHash is the SHA-256 of fig3.2's full output under the seed
// kernel (pointer-heap internal/sim + closure-based internal/lan),
// captured before the allocation-free rewrite. The golden suite replaced
// the original one-off determinism test, but the pin must still trace
// back to the seed: re-pinning fig3.2 means the (time, seq) total event
// order changed, which needs a deliberate decision, not an -update-golden
// reflex.
const fig32SeedHash = "313fd52c4c14930422d4606fc4b14ae7a62205a58e0292d658e50da82773e669"

// TestFig32PinMatchesSeedKernel guards the provenance chain at zero
// simulation cost: the committed fig3.2 pin (verified against a live run
// by TestGoldenOutputs) must equal the seed kernel's hash.
func TestFig32PinMatchesSeedKernel(t *testing.T) {
	got, err := ReadGolden(goldenDir, "fig3.2")
	if err != nil {
		t.Fatal(err)
	}
	if got != fig32SeedHash {
		t.Fatalf("fig3.2 pin diverged from the seed kernel\n got:  %s\n want: %s\n"+
			"event-order changes need a deliberate sign-off: update this constant only on purpose",
			got, fig32SeedHash)
	}
}

// TestGoldenRoundTrip exercises the read/write helpers on a temp dir.
func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir() + "/nested/golden"
	const id, hash = "fig9.9", "deadbeef"
	if err := WriteGolden(dir, id, hash); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGolden(dir, id)
	if err != nil || got != hash {
		t.Fatalf("ReadGolden = %q, %v; want %q", got, err, hash)
	}
	if _, err := ReadGolden(dir, "absent"); !os.IsNotExist(err) {
		t.Errorf("missing pin error = %v, want not-exist", err)
	}
	bad := VerifyGolden(dir, []Result{
		{ID: id, SHA256: hash},         // match
		{ID: id, SHA256: "0000"},       // mismatch
		{ID: "absent", SHA256: "1111"}, // no pin
		{ID: "failed" /* no hash */},   // skipped
	})
	if len(bad) != 2 {
		t.Fatalf("VerifyGolden reported %d divergences, want 2: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0], "diverged") || !strings.Contains(bad[1], "no golden file") {
		t.Errorf("unexpected divergence messages: %v", bad)
	}
}

// TestDelivGoldenRoundTrip exercises the delivery-pin helpers: the two
// layers live side by side in one directory without colliding.
func TestDelivGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const id = "fig9.9"
	if err := WriteGolden(dir, id, "out-hash"); err != nil {
		t.Fatal(err)
	}
	if err := WriteDelivGolden(dir, id, "deliv-hash"); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadDelivGolden(dir, id); err != nil || got != "deliv-hash" {
		t.Fatalf("ReadDelivGolden = %q, %v", got, err)
	}
	if got, _ := ReadGolden(dir, id); got != "out-hash" {
		t.Fatalf("output pin clobbered by delivery pin: %q", got)
	}
	bad := VerifyDelivGolden(dir, []Result{
		{ID: id, DelivSHA256: "deliv-hash"},  // match
		{ID: id, DelivSHA256: "0000"},        // mismatch
		{ID: "absent", DelivSHA256: "1111"},  // no pin
		{ID: "failed" /* no deliv digest */}, // skipped
	})
	if len(bad) != 2 {
		t.Fatalf("VerifyDelivGolden reported %d divergences, want 2: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0], "DELIVERY SEQUENCE diverged") || !strings.Contains(bad[1], "no delivery golden") {
		t.Errorf("unexpected divergence messages: %v", bad)
	}
}
