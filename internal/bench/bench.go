// Package bench is the reproduction harness: one runner per table and
// figure of the dissertation's evaluation sections. Each runner rebuilds
// the experiment's deployment on the simulated cluster, sweeps the same
// parameter the paper sweeps, and prints the same rows/series the paper
// reports together with the paper's qualitative expectation.
//
// Runners are exposed three ways: the registry here (used by cmd/repro),
// the testing.B wrappers in the repository root's bench_test.go, and
// programmatically.
package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the paper artifact name: "fig3.7", "tab3.2", ...
	ID string
	// Title describes the artifact.
	Title string
	// Run regenerates it, writing human-readable series to w. For
	// registered experiments it is synthesized from Traced with no
	// recorder, so external callers (benchmarks, smoke tests) keep the
	// one-argument shape.
	Run func(w io.Writer)
	// Traced regenerates the artifact while folding every learner's
	// delivered command sequence into rec (nil rec records nothing).
	// All registered experiments provide it; it is what the worker pool
	// runs so output and delivery hashes come from the same simulation.
	Traced func(w io.Writer, rec *DelivRecorder)
	// Volatile marks an experiment whose output is legitimately not
	// byte-stable across runs (none today: every registered experiment is
	// deterministic for a fixed seed). Volatile experiments are excluded
	// from the golden-output regression suite.
	Volatile bool
}

// Hash regenerates the experiment and returns the hex SHA-256 of its full
// text output, teeing the text to w when w is non-nil. It is the capture
// path the worker pool (and through it the golden-file suite) runs every
// experiment through: anything that changes a single output byte changes
// the hash.
func (e Experiment) Hash(w io.Writer) string { return e.hashTraced(w, nil) }

// hashTraced is Hash with a delivery recorder attached to the same run.
func (e Experiment) hashTraced(w io.Writer, rec *DelivRecorder) string {
	h := sha256.New()
	out := io.Writer(h)
	if w != nil {
		out = io.MultiWriter(h, w)
	}
	if e.Traced != nil {
		e.Traced(out, rec)
	} else {
		e.Run(out)
	}
	return hex.EncodeToString(h.Sum(nil))
}

var registry []Experiment

func register(e Experiment) {
	if e.Run == nil && e.Traced != nil {
		tr := e.Traced
		e.Run = func(w io.Writer) { tr(w, nil) }
	}
	registry = append(registry, e)
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// table accumulates and prints one aligned results table.
type table struct {
	title  string
	header []string
	rows   [][]string
	notes  []string
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header}
}

func (t *table) row(cells ...any) {
	r := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			r[i] = v
		case float64:
			r[i] = fmt.Sprintf("%.1f", v)
		case time.Duration:
			r[i] = v.Round(10 * time.Microsecond).String()
		default:
			r[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, r)
}

func (t *table) note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func (t *table) print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.title)
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// mbps converts bytes transferred over dur to megabits per second.
func mbps(bytes int64, dur time.Duration) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / dur.Seconds()
}

// pct formats a ratio as a percentage string.
func pct(num, den float64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*num/den)
}
