package bench

// outputRepins is the re-pin audit trail: one entry per experiment whose
// OUTPUT golden hash was deliberately regenerated, with the PR-scoped
// justification. cmd/repro -list surfaces these notes (text and JSON) so
// a reviewer can audit which artifacts moved in a re-pin and why, long
// after the commit that moved them. Delivery goldens have no entries
// here on purpose: they are expected to survive re-pins byte-identical,
// and a delivery change needs its own justification in the PR
// description, not a one-liner.
//
// Entries describe the most recent deliberate re-pin only; a future
// re-pin replaces the map wholesale (git history keeps the past).
//
// The current re-pin covers a single experiment: proto.Multi now
// forwards LoseVolatile to composed handlers, so fault.spaxos's Lose
// crash of a pump-sharing replica actually destroys its volatile state
// (previously the Multi wrapper silently swallowed the call and the
// crash behaved like a freeze). The replica's post-restart traffic
// shifted; the delivery and safety digests stayed byte-identical.
const repinMultiLose = "proto.Multi forwards LoseVolatile: the S-Paxos replica's Lose crash now truly loses volatile state, shifting post-restart schedules"

var outputRepins = map[string]string{
	"fault.spaxos": repinMultiLose,
}

// RepinNote returns the provenance note for an experiment whose output
// golden was re-pinned in the most recent deliberate re-pin.
func RepinNote(id string) (string, bool) {
	n, ok := outputRepins[id]
	return n, ok
}

// outputAdded is the companion audit trail for experiments whose goldens
// are NEW in the most recent PR rather than re-pinned: first-time pins
// have no previous hash to audit against, so the note records what the
// family measures and why its digests look the way they do. Like
// outputRepins, a future PR that adds experiments replaces the map
// wholesale.
const (
	addedRecovery = "new in the durability PR: crash+restart with state loss per seed, run per durability variant (volatile retirement stalls, WAL replay recovers); safety digest pins stalled=true/false pairs plus prefix consistency, seed- and -par-invariant"
	addedSnapshot = "new in the durability PR: long learner outage past the GC staleness eviction, run twice (floor-pinning retransmission control vs snapshot catch-up); safety digest pins consistent=true and stalled=false for both, seed- and -par-invariant"
)

var outputAdded = map[string]string{
	"fault.recovery.mring":    addedRecovery,
	"fault.recovery.uring":    addedRecovery,
	"fault.recovery.snapshot": addedSnapshot,
}

// AddedNote returns the provenance note for an experiment whose goldens
// were first pinned in the most recent PR.
func AddedNote(id string) (string, bool) {
	n, ok := outputAdded[id]
	return n, ok
}
