package bench

// outputRepins is the re-pin audit trail: one entry per experiment whose
// OUTPUT golden hash was deliberately regenerated, with the PR-scoped
// justification. cmd/repro -list surfaces these notes (text and JSON) so
// a reviewer can audit which artifacts moved in a re-pin and why, long
// after the commit that moved them. Delivery goldens have no entries
// here on purpose: they are expected to survive re-pins byte-identical,
// and a delivery change needs its own justification in the PR
// description, not a one-liner.
//
// Entries describe the most recent deliberate re-pin only; a future
// re-pin replaces the map wholesale (git history keeps the past).
//
// The current re-pin landed the three schedule-changing fixes the
// ROADMAP had deferred behind the delivery-equivalence golden layer:
// every .deliv.sha256 stayed byte-identical across all of them.
const (
	repinTimerChain = "M-Ring learner timer-chain collapse: one persistent version timer per learner shifted message schedules"
	repinGCDefault  = "GC on by default (U-Ring/basic Paxos/S-Paxos): version-report traffic joined the schedule"
	repinBoth       = "multi-protocol sweep: M-Ring timer-chain collapse + GC-on defaults shifted schedules"
	repinSoakMRing  = "M-Ring timer-chain collapse + removal of the Retry=100ms workaround the chains had forced"
)

var outputRepins = map[string]string{
	"fig3.7":     repinBoth,
	"tab3.2":     repinBoth,
	"fig3.8":     repinBoth,
	"fig3.9":     repinBoth,
	"fig3.10":    repinTimerChain,
	"fig3.11":    repinGCDefault,
	"fig3.12":    repinTimerChain,
	"fig3.14":    repinTimerChain,
	"tab3.3":     repinTimerChain,
	"fig4.3":     repinTimerChain,
	"fig4.4":     repinTimerChain,
	"fig4.5":     repinTimerChain,
	"fig4.6":     repinTimerChain,
	"fig4.7":     repinTimerChain,
	"fig4.8":     repinTimerChain,
	"fig4.9":     repinTimerChain,
	"fig4.10":    repinTimerChain,
	"fig5.1":     repinTimerChain,
	"fig5.8":     repinTimerChain,
	"fig5.9":     repinTimerChain,
	"fig5.10":    repinTimerChain,
	"fig6.3":     repinTimerChain,
	"fig6.4":     repinTimerChain,
	"fig6.5":     repinTimerChain,
	"fig6.6":     repinTimerChain,
	"fig6.7":     repinTimerChain,
	"fig7.2":     repinGCDefault,
	"soak.mring": repinSoakMRing,
}

// RepinNote returns the provenance note for an experiment whose output
// golden was re-pinned in the most recent deliberate re-pin.
func RepinNote(id string) (string, bool) {
	n, ok := outputRepins[id]
	return n, ok
}

// outputAdded is the companion audit trail for experiments whose goldens
// are NEW in the most recent PR rather than re-pinned: first-time pins
// have no previous hash to audit against, so the note records what the
// family measures and why its digests look the way they do. Like
// outputRepins, a future PR that adds experiments replaces the map
// wholesale.
const addedFailover = "new in the coordinator-failover PR: permanent coordinator kill per seed, run twice (no-failover control stalls, detector election recovers); safety digest pins stalled=true/false pairs plus prefix consistency, seed- and -par-invariant"

var outputAdded = map[string]string{
	"fault.failover.mring": addedFailover,
	"fault.failover.uring": addedFailover,
}

// AddedNote returns the provenance note for an experiment whose goldens
// were first pinned in the most recent PR.
func AddedNote(id string) (string, bool) {
	n, ok := outputAdded[id]
	return n, ok
}
