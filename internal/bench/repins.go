package bench

// outputRepins is the re-pin audit trail: one entry per experiment whose
// OUTPUT golden hash was deliberately regenerated, with the PR-scoped
// justification. cmd/repro -list surfaces these notes (text and JSON) so
// a reviewer can audit which artifacts moved in a re-pin and why, long
// after the commit that moved them. Delivery goldens have no entries
// here on purpose: they are expected to survive re-pins byte-identical,
// and a delivery change needs its own justification in the PR
// description, not a one-liner.
//
// Entries describe the most recent deliberate re-pin only; a future
// re-pin replaces the map wholesale (git history keeps the past).
//
// The current re-pin covers a single experiment: a U-Ring takeover now
// circulates the reconfigured ring layout BEFORE re-proposing the
// adopted instances. Previously the re-proposed decisions could reach a
// member still holding the pre-failure layout, get forwarded to the
// dead node and vanish — leaving the new coordinator's window
// permanently exhausted whenever the adopted backlog exceeded Window
// (exposed by the closed-loop exactly-once client family, whose GC lag
// piles up more un-trimmed instances than the pump workloads). The
// post-takeover message timeline shifted; the delivery and safety
// digests stayed byte-identical.
const repinURingTakeover = "U-Ring takeover circulates the ring change before re-proposing adopted instances, so their decisions cannot be forwarded to the dead node by stale-layout members"

var outputRepins = map[string]string{
	"fault.failover.uring": repinURingTakeover,
}

// RepinNote returns the provenance note for an experiment whose output
// golden was re-pinned in the most recent deliberate re-pin.
func RepinNote(id string) (string, bool) {
	n, ok := outputRepins[id]
	return n, ok
}

// outputAdded is the companion audit trail for experiments whose goldens
// are NEW in the most recent PR rather than re-pinned: first-time pins
// have no previous hash to audit against, so the note records what the
// family measures and why its digests look the way they do. Like
// outputRepins, a future PR that adds experiments replaces the map
// wholesale.
const addedClient = "new in the exactly-once client PR: permanent coordinator kill per seed, run twice (no-retry control loses exactly one command: unacked=1; retry+redirect+dedup completes every command: unacked=0 dups=0); safety digest pins both verdicts via the oracle's at-most-once extension, seed- and -par-invariant"

var outputAdded = map[string]string{
	"fault.client.mring": addedClient,
	"fault.client.uring": addedClient,
}

// AddedNote returns the provenance note for an experiment whose goldens
// were first pinned in the most recent PR.
func AddedNote(id string) (string, bool) {
	n, ok := outputAdded[id]
	return n, ok
}
