package bench

// outputRepins is the re-pin audit trail: one entry per experiment whose
// OUTPUT golden hash was deliberately regenerated, with the PR-scoped
// justification. cmd/repro -list surfaces these notes (text and JSON) so
// a reviewer can audit which artifacts moved in a re-pin and why, long
// after the commit that moved them. Delivery goldens have no entries
// here on purpose: they are expected to survive re-pins byte-identical,
// and a delivery change needs its own justification in the PR
// description, not a one-liner.
//
// Entries describe the most recent deliberate re-pin only; a future
// re-pin replaces the map wholesale (git history keeps the past).
var outputRepins = map[string]string{}

// RepinNote returns the provenance note for an experiment whose output
// golden was re-pinned in the most recent deliberate re-pin.
func RepinNote(id string) (string, bool) {
	n, ok := outputRepins[id]
	return n, ok
}
