package bench

import (
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/psmr"
)

// psmrCell runs one fig6.3-style P-SMR cell (4 workers) at the given client
// count and partitioning, returning the measured numbers, the full delivery
// trace, and the mean window overlap (0 sequential).
func psmrCell(par, clients int) (tput float64, lat time.Duration, lines []string, overlap float64) {
	SetPar(par)
	defer SetPar(1)
	rec := &DelivRecorder{}
	dep := rec.Deployment()
	cfg := psmr.DeployConfig{Mode: psmr.PSMR, Workers: 4, Clients: clients,
		Trace: func(replica, ring int) *core.DelivTrace {
			return dep.LearnerRing(proto.NodeID(replica), ring)
		}}
	cfg.Par = Par()
	d := psmr.Deploy(cfg, lan.DefaultConfig(), 1)
	tput, lat = d.Measure(300*time.Millisecond, 700*time.Millisecond)
	return tput, lat, rec.Lines(), d.LAN.Overlap()
}

// TestParPSMRCellEquivalence requires a partitioned P-SMR run — the hardest
// rig: five rings, pacer-locked coordinators, cross-ring sync — to match the
// sequential run exactly: same throughput, same latency, and a byte-identical
// delivery trace, at -par 2 and 4.
func TestParPSMRCellEquivalence(t *testing.T) {
	seqT, seqL, seqLines, _ := psmrCell(1, 120)
	if len(seqLines) == 0 {
		t.Fatal("sequential run recorded no deliveries")
	}
	for _, par := range []int{2, 4} {
		gotT, gotL, gotLines, _ := psmrCell(par, 120)
		if gotT != seqT || gotL != seqL {
			t.Errorf("par=%d measures diverge: tput %.1f vs %.1f, lat %v vs %v",
				par, gotT, seqT, gotL, seqL)
		}
		if len(gotLines) != len(seqLines) {
			t.Fatalf("par=%d: %d delivery lines, sequential had %d", par, len(gotLines), len(seqLines))
		}
		for i := range seqLines {
			if gotLines[i] != seqLines[i] {
				t.Fatalf("par=%d delivery trace diverges at line %d:\n  par: %.200s\n  seq: %.200s",
					par, i, gotLines[i], seqLines[i])
			}
		}
	}
}

// TestParOverlapGate is the concurrency acceptance gate: partitioning the
// P-SMR rig into 4 LPs must expose a mean window overlap above 1.5 active
// LPs — the speedup bound a multi-core host could realize. Below that the
// partitioning would be deterministic but pointless.
func TestParOverlapGate(t *testing.T) {
	_, _, _, overlap := psmrCell(4, 120)
	if overlap <= 1.5 {
		t.Fatalf("mean active LPs per window = %.2f, want > 1.5", overlap)
	}
	t.Logf("overlap: %.2f active LPs per window", overlap)
}

// TestParExperimentHashEquivalence re-runs a registered multi-ring
// experiment under partitioning and requires both golden layers — the full
// output hash and the delivery digest — to be byte-identical to the
// sequential run. This is the same property cmd/repro -par N -verify-golden
// checks across the whole registry; pinning one experiment here keeps the
// property under plain `go test`.
func TestParExperimentHashEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment re-run")
	}
	e, ok := Get("fig5.5")
	if !ok {
		t.Fatal("experiment fig5.5 not registered")
	}
	run := func(par int) (string, string) {
		SetPar(par)
		defer SetPar(1)
		rec := &DelivRecorder{}
		return e.hashTraced(io.Discard, rec), rec.Digest()
	}
	seqOut, seqDeliv := run(1)
	parOut, parDeliv := run(4)
	if parOut != seqOut {
		t.Errorf("output hash diverges: par %s, sequential %s", parOut, seqOut)
	}
	if parDeliv != seqDeliv {
		t.Errorf("delivery digest diverges: par %s, sequential %s", parDeliv, seqDeliv)
	}
}
