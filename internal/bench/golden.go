package bench

// This file holds the golden-output regression support. Every
// deterministic experiment's full text output is pinned by a SHA-256
// stored under internal/bench/testdata/golden/<id>.sha256. The hashes are
// verified by go test ./internal/bench (TestGoldenOutputs) and
// regenerated with cmd/repro -update-golden after a deliberate model
// change.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// DefaultGoldenDir is the golden-file directory relative to the repository
// root (cmd/repro's default) — the same directory the bench tests resolve
// relative to the package as "testdata/golden".
const DefaultGoldenDir = "internal/bench/testdata/golden"

// ResolveGoldenDir anchors a relative golden dir to the module root: if
// dir does not exist relative to the current directory, walk up toward
// the filesystem root looking for the directory next to a go.mod. This
// lets cmd/repro's golden flags work from any subdirectory instead of
// silently creating a stray tree wherever the process happens to run.
// Absolute paths and resolvable relative paths are returned unchanged.
func ResolveGoldenDir(dir string) string {
	if filepath.IsAbs(dir) {
		return dir
	}
	if _, err := os.Stat(dir); err == nil {
		return dir
	}
	at, err := os.Getwd()
	if err != nil {
		return dir
	}
	for {
		if _, err := os.Stat(filepath.Join(at, "go.mod")); err == nil {
			return filepath.Join(at, dir)
		}
		parent := filepath.Dir(at)
		if parent == at {
			return dir
		}
		at = parent
	}
}

// GoldenPath returns the golden file for one experiment id.
func GoldenPath(dir, id string) string {
	return filepath.Join(dir, id+".sha256")
}

// ReadGolden returns the pinned hash for id, or "" with os.ErrNotExist
// wrapped when no golden file exists yet.
func ReadGolden(dir, id string) (string, error) {
	b, err := os.ReadFile(GoldenPath(dir, id))
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

// WriteGolden pins hash as the golden output for id, creating dir as
// needed.
func WriteGolden(dir, id, hash string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(GoldenPath(dir, id), []byte(hash+"\n"), 0o644)
}

// GoldenExperiments returns every registered experiment that participates
// in the golden suite (all non-volatile ones), sorted by ID.
func GoldenExperiments() []Experiment {
	var out []Experiment
	for _, e := range All() {
		if !e.Volatile {
			out = append(out, e)
		}
	}
	return out
}

// VerifyGolden compares results against the golden files in dir and
// returns one line per divergence (missing file or hash mismatch).
// Volatile experiments and failed results are the caller's concern; this
// only inspects results that carry a hash.
func VerifyGolden(dir string, results []Result) []string {
	var bad []string
	for _, r := range results {
		if r.SHA256 == "" {
			continue
		}
		want, err := ReadGolden(dir, r.ID)
		switch {
		case err != nil:
			bad = append(bad, fmt.Sprintf("%s: no golden file (%v); run cmd/repro -update-golden", r.ID, err))
		case want != r.SHA256:
			bad = append(bad, fmt.Sprintf("%s: output diverged from golden\n  got:  %s\n  want: %s", r.ID, r.SHA256, want))
		}
	}
	return bad
}
