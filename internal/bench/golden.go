package bench

// This file holds the three-layer golden regression support.
//
// Layer 1 (output): every deterministic experiment's full text output is
// pinned by a SHA-256 under internal/bench/testdata/golden/<id>.sha256.
// It also pins incidental message schedules, so it moves on any event
// reordering and may be regenerated after a deliberate model change.
//
// Layer 2 (delivery): the same run's delivery-equivalence digest (see
// deliv.go) is pinned under <id>.deliv.sha256. It captures only the
// agreed per-learner delivery sequences in the schedule-invariant window,
// so it must survive schedule-only changes untouched; a delivery-pin
// change means the protocol's ordering contract (or the experiment's
// deployment shape) changed and needs explicit justification.
//
// Layer 3 (safety): fault-injection experiments additionally pin their
// cross-replica safety digest (see safety.go) under <id>.safety.sha256.
// It captures only oracle verdicts built from schedule-invariant facts,
// so it must be identical across fault seeds and -par levels; a safety
// pin change means a prefix-consistency violation (or a deliberate
// deployment-shape change) and is never re-pinned reflexively.
//
// All layers are verified by go test ./internal/bench (TestGoldenOutputs
// / TestDeliveryEquivalence / TestSafetyGoldens) and by cmd/repro
// -verify-golden / -verify-deliv / -verify-safety; -update-golden
// regenerates every layer from one run.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// DefaultGoldenDir is the golden-file directory relative to the repository
// root (cmd/repro's default) — the same directory the bench tests resolve
// relative to the package as "testdata/golden".
const DefaultGoldenDir = "internal/bench/testdata/golden"

// ResolveGoldenDir anchors a relative golden dir to the module root: if
// dir does not exist relative to the current directory, walk up toward
// the filesystem root looking for the directory next to a go.mod. This
// lets cmd/repro's golden flags work from any subdirectory instead of
// silently creating a stray tree wherever the process happens to run.
// Absolute paths and resolvable relative paths are returned unchanged.
func ResolveGoldenDir(dir string) string {
	if filepath.IsAbs(dir) {
		return dir
	}
	if _, err := os.Stat(dir); err == nil {
		return dir
	}
	at, err := os.Getwd()
	if err != nil {
		return dir
	}
	for {
		if _, err := os.Stat(filepath.Join(at, "go.mod")); err == nil {
			return filepath.Join(at, dir)
		}
		parent := filepath.Dir(at)
		if parent == at {
			return dir
		}
		at = parent
	}
}

// GoldenPath returns the output golden file for one experiment id.
func GoldenPath(dir, id string) string {
	return filepath.Join(dir, id+".sha256")
}

// DelivPath returns the delivery-equivalence golden file for one
// experiment id.
func DelivPath(dir, id string) string {
	return filepath.Join(dir, id+".deliv.sha256")
}

// SafetyPath returns the safety golden file for one experiment id.
func SafetyPath(dir, id string) string {
	return filepath.Join(dir, id+".safety.sha256")
}

func readPin(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

func writePin(dir, path, hash string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(hash+"\n"), 0o644)
}

// ReadGolden returns the pinned output hash for id, or "" with
// os.ErrNotExist wrapped when no golden file exists yet.
func ReadGolden(dir, id string) (string, error) {
	return readPin(GoldenPath(dir, id))
}

// WriteGolden pins hash as the golden output for id, creating dir as
// needed.
func WriteGolden(dir, id, hash string) error {
	return writePin(dir, GoldenPath(dir, id), hash)
}

// ReadDelivGolden returns the pinned delivery digest for id.
func ReadDelivGolden(dir, id string) (string, error) {
	return readPin(DelivPath(dir, id))
}

// WriteDelivGolden pins hash as the delivery-equivalence golden for id.
func WriteDelivGolden(dir, id, hash string) error {
	return writePin(dir, DelivPath(dir, id), hash)
}

// ReadSafetyGolden returns the pinned safety digest for id.
func ReadSafetyGolden(dir, id string) (string, error) {
	return readPin(SafetyPath(dir, id))
}

// WriteSafetyGolden pins hash as the safety golden for id.
func WriteSafetyGolden(dir, id, hash string) error {
	return writePin(dir, SafetyPath(dir, id), hash)
}

// GoldenExperiments returns every registered experiment that participates
// in the golden suite (all non-volatile ones), sorted by ID.
func GoldenExperiments() []Experiment {
	var out []Experiment
	for _, e := range All() {
		if !e.Volatile {
			out = append(out, e)
		}
	}
	return out
}

// VerifyGolden compares results against the output golden files in dir
// and returns one line per divergence (missing file or hash mismatch).
// Volatile experiments and failed results are the caller's concern; this
// only inspects results that carry a hash.
func VerifyGolden(dir string, results []Result) []string {
	var bad []string
	for _, r := range results {
		if r.SHA256 == "" {
			continue
		}
		want, err := ReadGolden(dir, r.ID)
		switch {
		case err != nil:
			bad = append(bad, fmt.Sprintf("%s: no golden file (%v); run cmd/repro -update-golden", r.ID, err))
		case want != r.SHA256:
			bad = append(bad, fmt.Sprintf("%s: output diverged from golden\n  got:  %s\n  want: %s", r.ID, r.SHA256, want))
		}
	}
	return bad
}

// VerifyDelivGolden compares results against the delivery-equivalence
// pins in dir. A divergence here is stronger than an output divergence:
// some learner's agreed delivery sequence (or an experiment's deployment
// shape) changed, which no schedule-only refactor may do silently.
func VerifyDelivGolden(dir string, results []Result) []string {
	var bad []string
	for _, r := range results {
		if r.Err != nil || r.DelivSHA256 == "" {
			continue
		}
		want, err := ReadDelivGolden(dir, r.ID)
		switch {
		case err != nil:
			bad = append(bad, fmt.Sprintf("%s: no delivery golden (%v); run cmd/repro -update-golden", r.ID, err))
		case want != r.DelivSHA256:
			bad = append(bad, fmt.Sprintf("%s: DELIVERY SEQUENCE diverged from golden\n  got:  %s\n  want: %s", r.ID, r.DelivSHA256, want))
		}
	}
	return bad
}

// VerifySafetyGolden compares results against the safety pins in dir.
// Results with no safety digest (no oracle registered) are skipped; for
// the rest a divergence is the strongest possible regression signal —
// some learner's delivered sequence stopped being a prefix of the agreed
// sequence under fault injection, or a deployment changed shape.
func VerifySafetyGolden(dir string, results []Result) []string {
	var bad []string
	for _, r := range results {
		if r.Err != nil || r.SafetySHA256 == "" {
			continue
		}
		want, err := ReadSafetyGolden(dir, r.ID)
		switch {
		case err != nil:
			bad = append(bad, fmt.Sprintf("%s: no safety golden (%v); run cmd/repro -update-golden", r.ID, err))
		case want != r.SafetySHA256:
			bad = append(bad, fmt.Sprintf("%s: SAFETY VERDICT diverged from golden\n  got:  %s\n  want: %s", r.ID, r.SafetySHA256, want))
		}
	}
	return bad
}
