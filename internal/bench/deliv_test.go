package bench

import (
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

// TestDelivRecorderDeterministic runs a real delivery-producing experiment
// twice and checks the delivery digest is reproducible and non-trivial —
// the property every .deliv.sha256 pin rests on.
func TestDelivRecorderDeterministic(t *testing.T) {
	e, ok := Get("tab3.3")
	if !ok {
		t.Fatal("tab3.3 not registered")
	}
	run := func() (string, int64, []string) {
		rec := &DelivRecorder{}
		e.Traced(io.Discard, rec)
		return rec.Digest(), rec.Count(), rec.Lines()
	}
	d1, n1, lines := run()
	d2, n2, _ := run()
	if d1 != d2 || n1 != n2 {
		t.Fatalf("delivery digest not reproducible: %s (%d) vs %s (%d)", d1, n1, d2, n2)
	}
	if n1 == 0 {
		t.Fatalf("experiment recorded no deliveries: %v", lines)
	}
}

// TestRepinNote exercises the provenance accessor with a seeded entry so
// the positive path is covered even when no re-pin is in flight.
func TestRepinNote(t *testing.T) {
	outputRepins["fig0.0-test"] = "seeded note"
	defer delete(outputRepins, "fig0.0-test")
	if note, ok := RepinNote("fig0.0-test"); !ok || note != "seeded note" {
		t.Fatalf("RepinNote = %q, %v", note, ok)
	}
	if _, ok := RepinNote("never-repinned"); ok {
		t.Fatal("RepinNote invented a note")
	}
}

// TestDelivRecorderNilSafe checks the whole recording surface is a no-op
// on a nil recorder, which is how Experiment.Run (no recorder) executes.
func TestDelivRecorderNilSafe(t *testing.T) {
	var rec *DelivRecorder
	dep := rec.Deployment()
	if tr := dep.Learner(7); tr != nil {
		t.Fatal("nil recorder handed out a live trace")
	}
	if tr := dep.LearnerRing(7, 1); tr != nil {
		t.Fatal("nil recorder handed out a live ring trace")
	}
	if rec.Count() != 0 || rec.Lines() != nil {
		t.Fatal("nil recorder reports recorded state")
	}
}

// TestGCDefaultDeliveryEquivalence is the keystone of the GC-on-by-default
// re-pin: for a representative figure-style deployment of each protocol
// whose default flipped (U-Ring, basic Paxos, S-Paxos) plus M-Ring (whose
// version-timer organization changed), the delivery trace recorded under
// the default (GC on) is line-for-line identical to the trace recorded
// with GC explicitly off (-1). Garbage collection may only reshuffle
// message schedules after the trace window closes; it must never touch
// what the learners deliver inside it.
func TestGCDefaultDeliveryEquivalence(t *testing.T) {
	// Short measured windows: the trace closes at DelivWindow anyway, the
	// run only has to reach past the first GC rounds (>= 50ms).
	const dur = 100 * time.Millisecond
	lc := lan.DefaultConfig()
	protocols := []struct {
		name   string
		deploy func(gc time.Duration, rec *DelivRecorder)
	}{
		// The exact figure deployments, via the shared harness runners,
		// with only the GC knob swept.
		{"uring", func(gc time.Duration, rec *DelivRecorder) {
			runURing(rec, gc, 3, 32<<10, 900e6, lc, false, dur) // fig3.11 shape
		}},
		{"paxos", func(gc time.Duration, rec *DelivRecorder) {
			runPaxos(rec, gc, 3, 5, 4<<10, true, 100e6, lc, dur) // Libpaxos shape
		}},
		{"spaxos", func(gc time.Duration, rec *DelivRecorder) {
			runSPaxos(rec, gc, 3, 32<<10, 400e6, lc, dur) // tab3.2 shape
		}},
		{"mring", func(gc time.Duration, rec *DelivRecorder) {
			runMRing(rec, gc, 3, 5, 8<<10, 850e6, lc, false, dur) // fig3.10 shape
		}},
	}
	for _, pr := range protocols {
		t.Run(pr.name, func(t *testing.T) {
			trace := func(gc time.Duration) ([]string, int64) {
				rec := &DelivRecorder{}
				pr.deploy(gc, rec)
				return rec.Lines(), rec.Count()
			}
			on, nOn := trace(0)    // zero-value: GC on by default
			off, nOff := trace(-1) // explicit escape hatch: GC off
			if nOn == 0 {
				t.Fatal("no deliveries recorded inside the trace window")
			}
			if nOn != nOff || !reflect.DeepEqual(on, off) {
				t.Fatalf("delivery traces diverge between GC default and GC off:\n on (%d): %v\noff (%d): %v",
					nOn, on, nOff, off)
			}
		})
	}
}

// TestDeliveryPrefixAgreement is the protocol-level invariant behind the
// delivery goldens, checked live rather than against a pin: in a uniform
// deployment (every learner subscribes to everything), all learners'
// delivered value sequences agree on their common prefix — learners may
// lag, but never disagree.
func TestDeliveryPrefixAgreement(t *testing.T) {
	cfg := ringpaxos.UConfig{}
	const n = 4
	for i := 0; i < n; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	l := lan.New(lan.DefaultConfig(), 1)
	seqs := make([][]core.ValueID, n)
	for i := 0; i < n; i++ {
		i := i
		a := &ringpaxos.UAgent{Cfg: cfg}
		a.Deliver = func(_ int64, v core.Value) { seqs[i] = append(seqs[i], v.ID) }
		var hs []proto.Handler
		hs = append(hs, a)
		if i == 0 {
			hs = append(hs, &pump{size: 1 << 10, rate: 50e6, submit: a.Propose})
		}
		l.AddNode(proto.NodeID(i), proto.Multi(hs...))
	}
	l.Start()
	l.Run(150 * time.Millisecond)
	min := len(seqs[0])
	for _, s := range seqs {
		if len(s) == 0 {
			t.Fatal("a learner delivered nothing")
		}
		if len(s) < min {
			min = len(s)
		}
	}
	for i := 1; i < n; i++ {
		for k := 0; k < min; k++ {
			if seqs[i][k] != seqs[0][k] {
				t.Fatalf("learner %d diverges from learner 0 at position %d: %d vs %d",
					i, k, seqs[i][k], seqs[0][k])
			}
		}
	}
}
