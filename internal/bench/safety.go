package bench

// This file holds the safety golden layer: the third and strongest
// regression net, above the output hashes and the delivery-equivalence
// digests.
//
// The fault experiments (fault.go) perturb runs with seeded crash,
// partition and datagram-fault schedules, so neither their output bytes
// nor their delivery sequences can be expected to survive a legitimate
// schedule change — both are pinned per seed and may be re-pinned when a
// fix moves them. What must NEVER move is safety: every learner's
// delivered sequence stays a prefix of one shared agreed sequence, no
// matter which faults fired. Each fault deployment therefore wires a
// core.Oracle across its learners (chained behind the delivery traces)
// and the recorder folds every oracle's verdict — deliberately built
// from schedule-invariant facts only (learner count, divergence count) —
// into one digest pinned under testdata/golden/<id>.safety.sha256. The
// same digest must come out of every fault seed and every -par level; a
// change means an ordering-safety violation (or a deployment-shape
// change), never an acceptable schedule drift.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
)

// Oracle registers a new cross-replica safety checker with this run and
// returns it. Experiments that build one oracle per deployment call it
// once per deployment, in build order (which is deterministic), so the
// digest preimage is stable. A nil recorder still returns a working
// oracle — the experiment's own verdict reporting stays identical — it
// just contributes to no digest.
func (r *DelivRecorder) Oracle() *core.Oracle {
	o := core.NewOracle()
	if r != nil {
		r.oracles = append(r.oracles, o)
	}
	return o
}

// SafetyLines renders one "o<ordinal> <verdict>" line per registered
// oracle, in registration order — the preimage of SafetyDigest, exposed
// for debugging a divergence.
func (r *DelivRecorder) SafetyLines() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.oracles))
	for i, o := range r.oracles {
		out[i] = fmt.Sprintf("o%d %s", i, o.Verdict())
	}
	return out
}

// SafetyDigest combines every oracle's verdict into the experiment-level
// safety hash that .safety.sha256 files pin. Experiments that register
// no oracle have no digest (""), which verification skips — the safety
// layer only covers deployments that actually wired a checker.
func (r *DelivRecorder) SafetyDigest() string {
	if r == nil || len(r.oracles) == 0 {
		return ""
	}
	h := sha256.New()
	for _, ln := range r.SafetyLines() {
		h.Write([]byte(ln))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
