package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/lan"
	"repro/internal/multiring"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

func init() {
	register(Experiment{ID: "fig5.1", Title: "in-memory vs recoverable Ring Paxos", Traced: runFig5_1})
	register(Experiment{ID: "fig5.2", Title: "partitioned service on ONE ring does not scale", Traced: runFig5_2})
	register(Experiment{ID: "fig5.4", Title: "Multi-Ring Paxos scalability, one group per learner", Traced: runFig5_4})
	register(Experiment{ID: "fig5.5", Title: "Multi-Ring Paxos, learner subscribes to all groups", Traced: runFig5_5})
	register(Experiment{ID: "fig5.6", Title: "impact of ∆ on Multi-Ring Paxos", Traced: runFig5_6})
	register(Experiment{ID: "fig5.7", Title: "impact of M on Multi-Ring Paxos", Traced: runFig5_7})
	register(Experiment{ID: "fig5.8", Title: "impact of λ, equal constant ring rates", Traced: runFig5_8})
	register(Experiment{ID: "fig5.9", Title: "impact of λ, 2:1 constant ring rates", Traced: runFig5_9})
	register(Experiment{ID: "fig5.10", Title: "impact of λ, oscillating ring rates", Traced: runFig5_10})
	register(Experiment{ID: "fig5.11", Title: "coordinator failure and recovery trace", Traced: runFig5_11})
}

func runFig5_1(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 5.1 — latency vs delivered throughput (3-acceptor ring, 8 KB)",
		"offered Mbps", "in-memory Mbps", "lat", "recoverable Mbps", "lat")
	lc := lan.DefaultConfig()
	for _, o := range []float64{100e6, 200e6, 300e6, 500e6, 700e6, 900e6} {
		ram := runMRing(rec, 0, 3, 3, 8<<10, o, lc, false, 0)
		disk := runMRing(rec, 0, 3, 3, 8<<10, o, lc, true, 0)
		t.row(fmt.Sprintf("%.0f", o/1e6),
			fmt.Sprintf("%.0f", ram.Mbps), ram.Lat,
			fmt.Sprintf("%.0f", disk.Mbps), disk.Lat)
	}
	t.note("paper: in-memory CPU/wire bound near 700+ Mbps; recoverable plateaus at the disk (~270-400 Mbps)")
	t.print(w)
}

// multiRingRig builds r rings with 2 acceptors each and one learner node
// subscribing to `subs` rings; offered bits/s per ring.
type multiRingRig struct {
	l      *lan.LAN
	merger *multiring.Merger
	pacers []*multiring.Pacer
	pumps  []*pump
}

func buildMultiRing(rec *DelivRecorder, rings int, subs []int, offeredPerRing float64, disk bool,
	lambda float64, delta time.Duration, m int64, seed int64) *multiRingRig {
	rig := &multiRingRig{l: lan.New(lan.DefaultConfig(), seed)}
	dep := rec.Deployment()
	const learnerID = proto.NodeID(900)
	cfgs := make([]ringpaxos.MConfig, rings)
	for r := 0; r < rings; r++ {
		cfgs[r] = ringpaxos.MConfig{
			Ring:     []proto.NodeID{proto.NodeID(r * 10), proto.NodeID(r*10 + 1)},
			Learners: []proto.NodeID{learnerID},
			Group:    proto.GroupID(100 + r),
			DiskSync: disk,
		}
	}
	for r := 0; r < rings; r++ {
		for j := 0; j < 2; j++ {
			id := proto.NodeID(r*10 + j)
			n := multiring.NewNode()
			a := &ringpaxos.MAgent{Cfg: cfgs[r]}
			n.AddRing(r, a)
			if j == 1 && lambda > 0 {
				p := &multiring.Pacer{Agent: a, Lambda: lambda, Delta: delta}
				n.AddPacer(p)
				rig.pacers = append(rig.pacers, p)
			}
			rig.l.AddNode(id, n)
			rig.l.Subscribe(cfgs[r].Group, id)
		}
	}
	learner := multiring.NewNode()
	for _, r := range subs {
		a := &ringpaxos.MAgent{Cfg: cfgs[r]}
		a.Trace = dep.LearnerRing(learnerID, r)
		learner.AddRing(r, a)
		rig.l.Subscribe(cfgs[r].Group, learnerID)
	}
	rig.merger = multiring.NewMerger(subs, m)
	rig.merger.Trace = dep.Learner(learnerID)
	learner.SetMerger(rig.merger)
	rig.l.AddNode(learnerID, learner)
	// One proposer node per ring.
	for r := 0; r < rings; r++ {
		prop := multiring.NewNode()
		a := &ringpaxos.MAgent{Cfg: cfgs[r]}
		prop.AddRing(r, a)
		p := &pump{size: 8 << 10, rate: offeredPerRing, submit: a.Propose}
		rig.pumps = append(rig.pumps, p)
		rig.l.AddNode(proto.NodeID(800+r), proto.Multi(prop, p))
	}
	if p := Par(); p > 1 {
		// Ring r's acceptors (ids r*10, r*10+1, all < 100) share an LP; the
		// merged learner (900) and the proposers (800+r) stay on LP 0.
		rig.l.Partition(p, func(id proto.NodeID) int {
			if id < 100 {
				return 1 + (int(id)/10)%(p-1)
			}
			return 0
		})
	}
	rig.l.Start()
	return rig
}

// aggregate learner throughput of every ring when each ring has its own
// dedicated learner is approximated by rings × single-ring capacity; we
// measure ring 0's learner directly and scale, plus measure the merged
// learner case exactly in fig5.5.
func runFig5_4(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 5.4 — aggregate throughput (Gbps) vs rings (one group per learner)",
		"rings", "RAM M-RP", "DISK M-RP")
	lc := lan.DefaultConfig()
	ram := runMRing(rec, 0, 2, 1, 8<<10, 900e6, lc, false, 0)
	disk := runMRing(rec, 0, 2, 1, 8<<10, 400e6, lc, true, 0)
	for _, rings := range []int{1, 2, 4, 8} {
		t.row(rings,
			fmt.Sprintf("%.2f", float64(rings)*ram.Mbps/1000),
			fmt.Sprintf("%.2f", float64(rings)*disk.Mbps/1000))
	}
	t.note("rings are independent (disjoint acceptors/learners), so aggregate capacity is rings x one ring:")
	t.note("paper: >5 Gbps RAM, ~3 Gbps disk at 8 rings; Spread/LCR/M-RP stay flat at one-ring capacity")
	t.print(w)
}

func runFig5_5(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 5.5 — one learner subscribes to ALL groups: delivered Mbps vs rings",
		"rings", "RAM Mbps", "DISK Mbps")
	for _, rings := range []int{1, 2, 4, 8} {
		subs := make([]int, rings)
		for i := range subs {
			subs[i] = i
		}
		row := []any{rings}
		for _, disk := range []bool{false, true} {
			per := 900e6 / float64(rings)
			if disk {
				per = 400e6 / float64(rings)
			}
			rig := buildMultiRing(rec, rings, subs, per, disk, 9000, time.Millisecond, 1, 1)
			rig.l.Run(warmup)
			b0 := rig.merger.DeliveredBytes
			rig.l.Run(measure)
			row = append(row, fmt.Sprintf("%.0f", mbps(rig.merger.DeliveredBytes-b0, measure)))
		}
		t.row(row...)
	}
	t.note("paper: the learner's incoming link caps the aggregate; slow (disk) rings compose into a faster whole")
	t.print(w)
}

func runFig5_2(w io.Writer, rec *DelivRecorder) {
	t := newTable("Fig 5.2 — partitioned dummy service on ONE M-Ring Paxos: per-partition Mbps",
		"partitions", "total Mbps", "per-partition Mbps")
	lc := lan.DefaultConfig()
	for _, parts := range []int{1, 2, 4, 8} {
		r := runMRing(rec, 0, 3, parts, 8<<10, 900e6, lc, false, 0)
		t.row(parts, fmt.Sprintf("%.0f", r.Mbps), fmt.Sprintf("%.0f", r.Mbps/float64(parts)))
	}
	t.note("paper: one ring's total capacity is fixed; more partitions just split it — the motivation for Multi-Ring Paxos")
	t.print(w)
}

func lambdaDelta(w io.Writer, rec *DelivRecorder, fig string, deltas []time.Duration, ms []int64) {
	header := []string{"offered/ring Mbps"}
	type cfg struct {
		d time.Duration
		m int64
	}
	var cfgs []cfg
	for _, d := range deltas {
		for _, m := range ms {
			cfgs = append(cfgs, cfg{d, m})
			if len(deltas) > 1 {
				header = append(header, fmt.Sprintf("lat ∆=%v", d))
			} else {
				header = append(header, fmt.Sprintf("lat M=%d", m))
			}
		}
	}
	t := newTable(fmt.Sprintf("Fig %s — learner latency, 2 rings, merged learner", fig), header...)
	for _, o := range []float64{100e6, 200e6, 400e6} {
		row := []any{fmt.Sprintf("%.0f", o/1e6)}
		for _, c := range cfgs {
			rig := buildMultiRing(rec, 2, []int{0, 1}, o, false, 9000e3/1000, c.d, c.m, 2)
			// λ = 9000 instances/s default.
			rig.l.Run(warmup)
			l0, n0 := rig.merger.LatencySum, rig.merger.LatencyCount
			rig.l.Run(measure)
			if n := rig.merger.LatencyCount - n0; n > 0 {
				row = append(row, (rig.merger.LatencySum-l0)/time.Duration(n))
			} else {
				row = append(row, "-")
			}
		}
		t.row(row...)
	}
	t.note("paper: small ∆ and small M keep latency low at no extra cost; throughput unaffected")
	t.print(w)
}

func runFig5_6(w io.Writer, rec *DelivRecorder) {
	lambdaDelta(w, rec, "5.6", []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}, []int64{1})
}

func runFig5_7(w io.Writer, rec *DelivRecorder) {
	lambdaDelta(w, rec, "5.7", []time.Duration{time.Millisecond}, []int64{1, 10, 100})
}

func lambdaTrace(w io.Writer, rec *DelivRecorder, fig string, rate2of1 bool, oscillate bool, lambdas []float64) {
	header := []string{"second"}
	for _, l := range lambdas {
		header = append(header, fmt.Sprintf("λ=%.0f", l))
	}
	t := newTable(fmt.Sprintf("Fig %s — per-second learner latency under λ sweep (2 rings)", fig), header...)
	secs := 4
	results := make([][]string, secs)
	for i := range results {
		results[i] = []string{fmt.Sprint(i + 1)}
	}
	for _, lambda := range lambdas {
		rig := buildMultiRing(rec, 2, []int{0, 1}, 300e6, false, lambda, time.Millisecond, 1, 3)
		if rate2of1 {
			rig.pumps[1].rate = 150e6
		}
		var prevLat time.Duration
		var prevN int64
		for s := 0; s < secs; s++ {
			if oscillate {
				// Ring 1's rate oscillates each second between 50 and 250 Mbps.
				if s%2 == 0 {
					rig.pumps[1].rate = 50e6
				} else {
					rig.pumps[1].rate = 250e6
				}
			}
			rig.l.Run(time.Second)
			lat := "-"
			if n := rig.merger.LatencyCount - prevN; n > 0 {
				lat = ((rig.merger.LatencySum - prevLat) / time.Duration(n)).Round(10 * time.Microsecond).String()
			}
			prevLat, prevN = rig.merger.LatencySum, rig.merger.LatencyCount
			results[s] = append(results[s], lat)
		}
	}
	for _, r := range results {
		cells := make([]any, len(r))
		for i, c := range r {
			cells[i] = c
		}
		t.row(cells...)
	}
	t.note("paper: λ=0 (or too small) lets rings drift out of sync — latency and buffers blow up; a λ above the")
	t.note("fastest ring's rate keeps the merge tight")
	t.print(w)
}

func runFig5_8(w io.Writer, rec *DelivRecorder) {
	lambdaTrace(w, rec, "5.8", false, false, []float64{0, 1000, 5000})
}
func runFig5_9(w io.Writer, rec *DelivRecorder) {
	lambdaTrace(w, rec, "5.9", true, false, []float64{1000, 5000, 9000})
}
func runFig5_10(w io.Writer, rec *DelivRecorder) {
	lambdaTrace(w, rec, "5.10", true, true, []float64{5000, 9000, 12000})
}

func runFig5_11(w io.Writer, rec *DelivRecorder) {
	rig := buildMultiRing(rec, 2, []int{0, 1}, 250e6, false, 5000, time.Millisecond, 1, 4)
	coord1 := rig.l.Node(proto.NodeID(11)) // ring 1's coordinator
	t := newTable("Fig 5.11 — ring-1 coordinator fails at t=1s, recovers at t=2s: learner Mbps per 500ms",
		"t(ms)", "received ring0", "received ring1", "delivered")
	var prevRecv0, prevRecv1, prevDel int64
	for step := 0; step < 8; step++ {
		if step == 2 {
			coord1.SetDown(true)
		}
		if step == 4 {
			coord1.SetDown(false)
		}
		rig.l.Run(500 * time.Millisecond)
		r0 := rig.merger.ReceivedBytes[0]
		r1 := rig.merger.ReceivedBytes[1]
		d := rig.merger.DeliveredBytes
		t.row((step+1)*500,
			fmt.Sprintf("%.0f", mbps(r0-prevRecv0, 500*time.Millisecond)),
			fmt.Sprintf("%.0f", mbps(r1-prevRecv1, 500*time.Millisecond)),
			fmt.Sprintf("%.0f", mbps(d-prevDel, 500*time.Millisecond)))
		prevRecv0, prevRecv1, prevDel = r0, r1, d
	}
	t.note("paper: delivery stalls during the outage (merge blocks on the dead ring), then a catch-up burst flushes the buffer")
	t.print(w)
}
