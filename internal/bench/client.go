package bench

// Exactly-once client workloads (fault.client.*): each seed's schedule
// Lose-kills the coordinator PERMANENTLY mid-run (the failover families'
// pinned schedules) with the ring-neighbor detector enabled in BOTH runs,
// so ordering always recovers — what differs is the client layer. A
// single closed-loop client session (internal/client) stamps every
// command with its (client id, seq) identity and runs the same schedule
// twice:
//
//   - control: retries disabled — the pre-exactly-once behavior. The
//     session always has exactly one command outstanding when the
//     coordinator dies (closed loop, zero think time), and that command
//     — or the next one, proposed at the not-yet-re-aimed view — is lost
//     with it. The oracle's at-most-once extension pins the gap:
//     unacked=1, for every seed.
//   - retry: capped-exponential-backoff retries plus redirect to the
//     newly elected coordinator (learned from the ring-change
//     propagation). Every issued command is eventually acknowledged and
//     the learners' replicated dedup table suppresses any command a
//     retry got decided twice: unacked=0, dups=0, and delivery stays
//     live through the election window.
//
// Both verdicts are seed- and -par-invariant and pinned by the safety
// golden layer; issued/acked/retry counts are seed-dependent and pinned
// per seed by the output golden. Retry counts and retry wire bytes
// aggregate into the client CI budgets through the same side channel the
// recovery budgets use (see TakeClientStats).

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

func init() {
	register(Experiment{ID: "fault.client.mring", Title: "M-Ring Paxos exactly-once client across a permanent coordinator kill: retry+redirect+dedup vs no-retry control", Traced: runClientMRing})
	register(Experiment{ID: "fault.client.uring", Title: "U-Ring Paxos exactly-once client across a permanent coordinator kill: retry+redirect+dedup vs no-retry control", Traced: runClientURing})
}

// clientRetry is the session's base acknowledgment timeout: well above
// the fault-free commit latency (no spurious duplicates in the steady
// state), well below the election time (the session, not the run's end,
// discovers the loss). The dupsup column counts retries that nevertheless
// raced a recovered in-flight original into a second decided instance;
// the deterministic suppression exercise lives in the ringpaxos dedup
// tests, which double-propose a stamped value outright.
const clientRetry = 20 * time.Millisecond

// clientDeadline stops NEW commands in the retry variant early enough
// that the last command's retries complete before the run seals — the
// retry verdict pins unacked=0 for every seed only because of it. The
// control variant runs without a deadline: its session hangs on the lost
// command long before any deadline could matter.
const clientDeadline = 900 * time.Millisecond

// clientVariants names the two runs per seed, in run order.
var clientVariants = []string{"control", "retry"}

// ClientStats is the nondeterministic-budget side channel of a client
// family run (mirroring RecoveryStats): Retries and ExtraBytes sum the
// sessions' re-submission counts and retry wire bytes across every run
// of the family, gated by ci/client-budgets.json.
type ClientStats struct {
	Retries    uint64
	ExtraBytes uint64
}

var (
	clientMu       sync.Mutex
	clientStatsMap = map[string]*ClientStats{}
)

// TakeClientStats returns and clears the recorded stats for one client
// experiment id.
func TakeClientStats(id string) (ClientStats, bool) {
	clientMu.Lock()
	defer clientMu.Unlock()
	s, ok := clientStatsMap[id]
	if !ok {
		return ClientStats{}, false
	}
	delete(clientStatsMap, id)
	return *s, true
}

// noteClientStats folds one run's session stats into the family's entry.
func noteClientStats(id string, st client.Stats) {
	clientMu.Lock()
	s := clientStatsMap[id]
	if s == nil {
		s = &ClientStats{}
		clientStatsMap[id] = s
	}
	s.Retries += uint64(st.Retries)
	s.ExtraBytes += uint64(st.ExtraBytes)
	clientMu.Unlock()
}

// clientRig is a faultRig plus the session under test and the learners'
// dedup-suppression counter.
type clientRig struct {
	faultRig
	session *client.Session
	dupSup  func() int64
}

// clientSession builds the session for one run: exactly-once retries in
// the retry variant, fire-and-forget in the control, both feeding the
// oracle's issued/acked ledger.
func clientSession(orc *core.Oracle, submit func(core.Value), coord func() proto.NodeID, retry bool) *client.Session {
	s := &client.Session{Cfg: client.Config{
		Submit:  submit,
		Coord:   coord,
		Bytes:   1024,
		OnIssue: orc.NoteClientIssued,
		OnAck:   orc.NoteClientAcked,
	}}
	if retry {
		s.Cfg.Retry = clientRetry
		s.Cfg.Deadline = clientDeadline
	}
	return s
}

// runClientFamily drives one protocol through every seed's permanent-
// kill schedule twice (control, then retry) and prints the per-run
// report. Counts are seed-dependent (output golden, per seed); the
// verdicts — including unacked=1 for every control run and unacked=0
// dups=0 for every retry run — are not (safety golden).
func runClientFamily(w io.Writer, rec *DelivRecorder, id, title string, seeds []int64,
	sched func(seed int64) *fault.Schedule,
	build func(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule, retry bool) *clientRig) {
	t := newTable(title, "seed", "variant", "issued", "acked", "retries", "nacks", "dupsup", "lost", "consistent")
	for _, seed := range seeds {
		for vi, variant := range clientVariants {
			orc := rec.Oracle()
			orc.EnableClientCheck()
			retry := vi == 1
			if retry {
				// The liveness window applies to the retry variant only:
				// the control session hangs at a seed-dependent instant,
				// so its post-kill silence is expected, not a stall.
				orc.SetLivenessWindow(failoverLiveWindow)
			}
			s := sched(seed)
			rig := build(rec.Deployment(), orc, s, retry)
			rig.l.Run(faultDur)
			orc.Seal(faultDur)
			st := rig.session.Stats
			t.row(fmt.Sprint(seed), variant, st.Issued, st.Acked, st.Retries, st.Nacks,
				rig.dupSup(), rig.lost(), fmt.Sprint(orc.Consistent()))
			t.note("seed %d %s: %s", seed, variant, orc.Verdict())
			if d := orc.FirstDivergence(); d != "" {
				t.note("seed %d %s FIRST DIVERGENCE: %s", seed, variant, d)
			}
			if d := orc.FirstDuplicate(); d != "" {
				t.note("seed %d %s FIRST DUPLICATE: %s", seed, variant, d)
			}
			noteClientStats(id, st)
		}
	}
	t.print(w)
}

// --- M-Ring Paxos ---

// clientMRingRig is failoverMRingRig with the pump replaced by an
// exactly-once client session composed on the proposer node; failover is
// enabled in both variants (only the client layer differs between runs).
func clientMRingRig(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule, retry bool) *clientRig {
	cfg := ringpaxos.MConfig{Group: 1, RecycleBatches: true}
	cfg.Ring = []proto.NodeID{0, 1, 2}
	cfg.Spares = []proto.NodeID{5}
	cfg.Learners = []proto.NodeID{100, 101}
	cfg.Failover = failoverDetector
	l := lan.New(lan.DefaultConfig(), 1)
	rig := &clientRig{faultRig: faultRig{l: l}}
	members := append(append([]proto.NodeID{}, cfg.Ring...), cfg.Spares...)
	var learners []*ringpaxos.MAgent
	for _, id := range append(members, cfg.Learners...) {
		a := &ringpaxos.MAgent{Cfg: cfg}
		for _, lid := range cfg.Learners {
			if id == lid {
				a.Trace = chainLearner(dep, orc, id)
				learners = append(learners, a)
			}
		}
		l.AddNode(id, a)
		l.Subscribe(1, id)
		rig.ids = append(rig.ids, id)
	}
	prop := &ringpaxos.MAgent{Cfg: cfg}
	ses := clientSession(orc, prop.Propose, prop.Coordinator, retry)
	l.AddNode(200, proto.Multi(prop, ses))
	l.Subscribe(1, 200)
	rig.ids = append(rig.ids, 200)
	rig.session = ses
	rig.dupSup = func() int64 {
		var n int64
		for _, a := range learners {
			n += a.DupSuppressed
		}
		return n
	}
	if par := Par(); par > 1 {
		// Same split as the failover rig: ring acceptors and the spare
		// form LP 1; learners and the client's node keep LP 0.
		l.Partition(par, func(id proto.NodeID) int {
			for _, m := range members {
				if m == id {
					return 1
				}
			}
			return 0
		})
	}
	l.InstallFaults(s)
	l.Start()
	return rig
}

func runClientMRing(w io.Writer, rec *DelivRecorder) {
	clientMRingSeeds(w, rec, faultSeeds)
}

func clientMRingSeeds(w io.Writer, rec *DelivRecorder, seeds []int64) {
	runClientFamily(w, rec, "fault.client.mring",
		"fault.client.mring — M-Ring Paxos (ring 3 + spare, failover on), closed-loop exactly-once client of 1 KB commands, permanent coordinator kill: no-retry control vs retry+redirect+dedup",
		seeds, mringFailoverSchedule, clientMRingRig)
}

// --- U-Ring Paxos ---

// clientURingRig is failoverURingRig with the pump replaced by an
// exactly-once session on node 3 (the coordinator is the kill target, so
// the client's process must survive it).
func clientURingRig(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule, retry bool) *clientRig {
	cfg := ringpaxos.UConfig{NumAcceptors: 3}
	cfg.Failover = failoverDetector
	const n = 4
	for i := 0; i < n; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	l := lan.New(lan.DefaultConfig(), 1)
	rig := &clientRig{faultRig: faultRig{l: l}}
	var agents []*ringpaxos.UAgent
	for i := 0; i < n; i++ {
		a := &ringpaxos.UAgent{Cfg: cfg}
		a.Trace = chainLearner(dep, orc, proto.NodeID(i))
		agents = append(agents, a)
		var hs []proto.Handler
		hs = append(hs, a)
		if i == n-1 {
			ses := clientSession(orc, a.Propose, a.Coordinator, retry)
			rig.session = ses
			hs = append(hs, ses)
		}
		l.AddNode(proto.NodeID(i), proto.Multi(hs...))
		rig.ids = append(rig.ids, proto.NodeID(i))
	}
	rig.dupSup = func() int64 {
		var sum int64
		for _, a := range agents {
			sum += a.DupSuppressed
		}
		return sum
	}
	l.InstallFaults(s)
	l.Start()
	return rig
}

func runClientURing(w io.Writer, rec *DelivRecorder) {
	clientURingSeeds(w, rec, faultSeeds)
}

func clientURingSeeds(w io.Writer, rec *DelivRecorder, seeds []int64) {
	runClientFamily(w, rec, "fault.client.uring",
		"fault.client.uring — U-Ring Paxos (3 acceptors, 4-process ring, failover on), closed-loop exactly-once client of 1 KB commands, permanent coordinator kill: no-retry control vs retry+redirect+dedup",
		seeds, uringFailoverSchedule, clientURingRig)
}
