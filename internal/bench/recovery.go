package bench

// Crash-recovery workloads (fault.recovery.*): each seed's schedule
// crashes one pinned process with fault.Lose AND restarts it, and the
// same schedule runs once per durability variant. For the mring/uring
// families the variants are DurVolatile (the honest control: the
// amnesiac process retires, classic Paxos forbids it from ever acting as
// an acceptor again, and with no failover configured the ring stalls —
// tripping the oracle's liveness window) and DurWAL (promises and votes
// were appended to a write-ahead log charged to the disk model; replay
// restores them and delivery resumes inside the window). The snapshot
// family runs DurWAL both times and varies the garbage collector
// instead: with staleness eviction the crashed learner's trim floor
// un-pins, the cluster trims past its frontier, and the learner returns
// to find its gap unrecoverable by retransmission — forcing the
// snapshot/state-transfer path; the control pins the floor and catches
// up by plain retransmission.
//
// The safety digest therefore pins, per seed, stalled=true for every
// volatile run and stalled=false for every wal run (plus prefix
// consistency everywhere) — byte-identical across fault seeds and -par
// levels like the rest of the fault family. WAL disk bytes, replay
// counts and the worst delivery-free gap are seed-dependent and pinned
// by the per-experiment output golden; their aggregates feed the
// recovery CI budgets through the same side channel soak stats use (see
// TakeRecoveryStats).

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
	"repro/internal/wal"
)

func init() {
	register(Experiment{ID: "fault.recovery.mring", Title: "M-Ring Paxos acceptor crash+restart: WAL replay recovers the m-quorum, volatile loss retires it and stalls", Traced: runRecoveryMRing})
	register(Experiment{ID: "fault.recovery.uring", Title: "U-Ring Paxos coordinator crash+restart: WAL replay resumes coordinatorship, volatile loss retires it and stalls", Traced: runRecoveryURing})
	register(Experiment{ID: "fault.recovery.snapshot", Title: "M-Ring Paxos learner outage past the GC trim floor: staleness eviction + snapshot catch-up vs floor-pinning control", Traced: runRecoverySnapshot})
}

// recoveryLiveWindow is the oracle's liveness window for the recovery
// families: far above one outage-plus-replay cycle (downtime is at most
// 80 ms), far below the post-crash remainder of the run (the generated
// crash fires by 550 ms of the 1 s run), so a volatile stall always
// trips it and a WAL recovery never does.
const recoveryLiveWindow = 250 * time.Millisecond

// recoveryVariant is one durability configuration of a recovery family.
type recoveryVariant struct {
	name  string
	dur   ringpaxos.Durability
	evict time.Duration // GC staleness eviction (snapshot family only)
}

var recoveryVariants = []recoveryVariant{
	{name: "volatile", dur: ringpaxos.DurVolatile},
	{name: "wal", dur: ringpaxos.DurWAL},
}

// snapshotVariants both run DurWAL; the control pins the trim floor on
// the crashed learner, the eviction run un-pins it and forces the
// snapshot path. 100 ms staleness against a >=300 ms outage makes
// eviction certain for every seed.
var snapshotVariants = []recoveryVariant{
	{name: "pin", dur: ringpaxos.DurWAL},
	{name: "evict", dur: ringpaxos.DurWAL, evict: 100 * time.Millisecond},
}

// RecoveryStats is the nondeterministic-budget side channel of a
// recovery family run (mirroring SoakStats): aggregates the CI recovery
// budgets gate via cmd/repro -check-allocs. DiskBytes sums the modeled
// WAL bytes appended across every run of the family; RecoveryMS is the
// worst delivery-free gap (simulated, in milliseconds) observed in any
// run that was expected to recover — outage plus replay plus catch-up.
type RecoveryStats struct {
	DiskBytes  uint64
	RecoveryMS float64
}

var (
	recoveryMu    sync.Mutex
	recoveryStats = map[string]*RecoveryStats{}
)

// TakeRecoveryStats returns and clears the recorded stats for one
// recovery experiment id.
func TakeRecoveryStats(id string) (RecoveryStats, bool) {
	recoveryMu.Lock()
	defer recoveryMu.Unlock()
	s, ok := recoveryStats[id]
	if !ok {
		return RecoveryStats{}, false
	}
	delete(recoveryStats, id)
	return *s, true
}

// noteRecovery folds one run into the family's stats entry.
func noteRecovery(id string, disk uint64, gap time.Duration, recovered bool) {
	recoveryMu.Lock()
	s := recoveryStats[id]
	if s == nil {
		s = &RecoveryStats{}
		recoveryStats[id] = s
	}
	s.DiskBytes += disk
	if ms := float64(gap) / 1e6; recovered && ms > s.RecoveryMS {
		s.RecoveryMS = ms
	}
	recoveryMu.Unlock()
}

// recoveryRig is a faultRig plus the write-ahead logs the build wired
// (nil-free: volatile variants carry no logs) and an optional snapshot
// counter probe.
type recoveryRig struct {
	faultRig
	logs  []*wal.Log
	snaps func() int64
}

func (r *recoveryRig) walBytes() int64 {
	var n int64
	for _, l := range r.logs {
		n += l.Bytes()
	}
	return n
}

func (r *recoveryRig) replayed() int64 {
	var n int64
	for _, l := range r.logs {
		n += l.Replayed()
	}
	return n
}

func (r *recoveryRig) snapCount() int64 {
	if r.snaps == nil {
		return 0
	}
	return r.snaps()
}

// runRecoveryFamily drives one protocol through every seed's
// crash+restart schedule once per variant and prints the per-run report.
// Positions, WAL bytes, replay counts and gaps are seed-dependent
// (output golden, per seed); the verdicts — including the stalled flag —
// are not (safety golden). Runs whose variant is expected to recover
// (stall=false below) feed the worst observed gap into the CI recovery
// budget side channel.
func runRecoveryFamily(w io.Writer, rec *DelivRecorder, id, title string, seeds []int64,
	variants []recoveryVariant, stall func(v recoveryVariant) bool,
	sched func(seed int64) *fault.Schedule,
	build func(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule, v recoveryVariant) *recoveryRig) {
	t := newTable(title, "seed", "variant", "events", "minpos", "maxpos", "lost", "walbytes", "replayed", "snaps", "gapms", "stalled", "consistent")
	for _, seed := range seeds {
		for _, variant := range variants {
			orc := rec.Oracle()
			orc.SetLivenessWindow(recoveryLiveWindow)
			s := sched(seed)
			rig := build(rec.Deployment(), orc, s, variant)
			rig.l.Run(faultDur)
			orc.Seal(faultDur)
			t.row(fmt.Sprint(seed), variant.name, s.Len(), orc.MinPos(), orc.MaxPos(), rig.lost(),
				rig.walBytes(), rig.replayed(), rig.snapCount(),
				fmt.Sprintf("%.1f", float64(orc.MaxGap())/1e6),
				fmt.Sprint(orc.Stalled()), fmt.Sprint(orc.Consistent()))
			t.note("seed %d %s: %s", seed, variant.name, orc.Verdict())
			if d := orc.FirstDivergence(); d != "" {
				t.note("seed %d %s FIRST DIVERGENCE: %s", seed, variant.name, d)
			}
			noteRecovery(id, uint64(rig.walBytes()), orc.MaxGap(), !stall(variant))
		}
	}
	t.print(w)
}

// --- M-Ring Paxos: mid-ring acceptor crash+restart ---

// mringRecoverySchedule pins the single crash+restart on acceptor 1
// (mid-ring: neither the coordinator nor the ring head, so the variants
// isolate pure acceptor durability); only the instant and outage length
// vary with the seed.
func mringRecoverySchedule(seed int64) *fault.Schedule {
	return fault.Generate(seed, fault.Profile{
		Window:  faultWindow,
		Crashes: 1,
		Pinned:  []proto.NodeID{1},
		Mode:    fault.Lose,
		MinDown: 20 * time.Millisecond,
		MaxDown: 80 * time.Millisecond,
	})
}

// recoveryMRingRig is faultMRingRig with the variant's durability wired:
// under DurWAL every ring member carries a write-ahead log owned by the
// rig (the modeled disk survives the process crash).
func recoveryMRingRig(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule, v recoveryVariant) *recoveryRig {
	cfg := ringpaxos.MConfig{Group: 1, RecycleBatches: true, Durability: v.dur, GCEvict: v.evict}
	cfg.Ring = []proto.NodeID{0, 1, 2}
	cfg.Learners = []proto.NodeID{100, 101}
	l := lan.New(lan.DefaultConfig(), 1)
	rig := &recoveryRig{faultRig: faultRig{l: l}}
	var learnerAgents []*ringpaxos.MAgent
	for _, id := range append(append([]proto.NodeID{}, cfg.Ring...), cfg.Learners...) {
		a := &ringpaxos.MAgent{Cfg: cfg}
		if v.dur == ringpaxos.DurWAL && int(id) < len(cfg.Ring) {
			a.Log = &wal.Log{}
			rig.logs = append(rig.logs, a.Log)
		}
		for _, lid := range cfg.Learners {
			if id == lid {
				a.Trace = chainLearner(dep, orc, id)
				learnerAgents = append(learnerAgents, a)
			}
		}
		l.AddNode(id, a)
		l.Subscribe(1, id)
		rig.ids = append(rig.ids, id)
	}
	prop := &ringpaxos.MAgent{Cfg: cfg}
	p := &pump{size: 1024, rate: 20e6, submit: prop.Propose}
	l.AddNode(200, proto.Multi(prop, p))
	rig.ids = append(rig.ids, 200)
	rig.snaps = func() int64 {
		var n int64
		for _, a := range learnerAgents {
			n += a.SnapshotsInstalled
		}
		return n
	}
	if par := Par(); par > 1 {
		// Same split as faultMRingRig: ring acceptors form LP 1, learners
		// and the proposer keep LP 0.
		l.Partition(par, func(id proto.NodeID) int {
			if int(id) < len(cfg.Ring) {
				return 1
			}
			return 0
		})
	}
	l.InstallFaults(s)
	l.Start()
	return rig
}

func runRecoveryMRing(w io.Writer, rec *DelivRecorder) {
	recoveryMRingSeeds(w, rec, faultSeeds)
}

func recoveryMRingSeeds(w io.Writer, rec *DelivRecorder, seeds []int64) {
	runRecoveryFamily(w, rec, "fault.recovery.mring",
		"fault.recovery.mring — M-Ring Paxos (ring 3), 20 Mbps of 1 KB values, acceptor crash+restart with state loss: volatile retirement vs WAL replay",
		seeds, recoveryVariants, func(v recoveryVariant) bool { return v.dur == ringpaxos.DurVolatile },
		mringRecoverySchedule, recoveryMRingRig)
}

// --- U-Ring Paxos: coordinator crash+restart ---

// uringRecoverySchedule pins the crash+restart on the U-Ring coordinator
// (FIRST ring position, node 0): the process whose durability decides
// whether the whole ring survives its return.
func uringRecoverySchedule(seed int64) *fault.Schedule {
	return fault.Generate(seed, fault.Profile{
		Window:  faultWindow,
		Crashes: 1,
		Pinned:  []proto.NodeID{0},
		Mode:    fault.Lose,
		MinDown: 20 * time.Millisecond,
		MaxDown: 80 * time.Millisecond,
	})
}

// recoveryURingRig is failoverURingRig without the detector (durability,
// not election, is under test) and with WALs on the acceptor segment in
// the wal variant.
func recoveryURingRig(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule, v recoveryVariant) *recoveryRig {
	cfg := ringpaxos.UConfig{NumAcceptors: 3, Durability: v.dur}
	const n = 4
	for i := 0; i < n; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	l := lan.New(lan.DefaultConfig(), 1)
	rig := &recoveryRig{faultRig: faultRig{l: l}}
	for i := 0; i < n; i++ {
		a := &ringpaxos.UAgent{Cfg: cfg}
		if v.dur == ringpaxos.DurWAL && i < cfg.NumAcceptors {
			a.Log = &wal.Log{}
			rig.logs = append(rig.logs, a.Log)
		}
		a.Trace = chainLearner(dep, orc, proto.NodeID(i))
		var hs []proto.Handler
		hs = append(hs, a)
		if i == n-1 {
			p := &pump{size: 1024, rate: 20e6, submit: a.Propose}
			hs = append(hs, p)
		}
		l.AddNode(proto.NodeID(i), proto.Multi(hs...))
		rig.ids = append(rig.ids, proto.NodeID(i))
	}
	l.InstallFaults(s)
	l.Start()
	return rig
}

func runRecoveryURing(w io.Writer, rec *DelivRecorder) {
	recoveryURingSeeds(w, rec, faultSeeds)
}

func recoveryURingSeeds(w io.Writer, rec *DelivRecorder, seeds []int64) {
	runRecoveryFamily(w, rec, "fault.recovery.uring",
		"fault.recovery.uring — U-Ring Paxos (3 acceptors, 4-process ring), 20 Mbps of 1 KB values, coordinator crash+restart with state loss: volatile retirement vs WAL replay",
		seeds, recoveryVariants, func(v recoveryVariant) bool { return v.dur == ringpaxos.DurVolatile },
		uringRecoverySchedule, recoveryURingRig)
}

// --- M-Ring Paxos: learner outage past the trim floor ---

// snapshotSchedule pins a long (>=300 ms) learner outage so the 100 ms
// staleness eviction of the evict variant is certain to fire while the
// learner is away; the generator's slot clamp keeps the restart inside
// the fault window.
func snapshotSchedule(seed int64) *fault.Schedule {
	return fault.Generate(seed, fault.Profile{
		Window:  faultWindow,
		Crashes: 1,
		Pinned:  []proto.NodeID{101},
		Mode:    fault.Lose,
		MinDown: 300 * time.Millisecond,
		MaxDown: 349 * time.Millisecond,
	})
}

func runRecoverySnapshot(w io.Writer, rec *DelivRecorder) {
	recoverySnapshotSeeds(w, rec, faultSeeds)
}

func recoverySnapshotSeeds(w io.Writer, rec *DelivRecorder, seeds []int64) {
	runRecoveryFamily(w, rec, "fault.recovery.snapshot",
		"fault.recovery.snapshot — M-Ring Paxos (ring 3, WAL), 20 Mbps of 1 KB values, 300 ms learner outage: floor-pinning retransmission vs staleness eviction + snapshot catch-up",
		seeds, snapshotVariants, func(v recoveryVariant) bool { return false },
		snapshotSchedule, recoveryMRingRig)
}
