package bench

// Fault-injection workloads: the third experiment class, built to flush
// out crash-path bugs rather than reproduce a paper figure. Each fault
// experiment runs one ordering protocol under several seeded fault
// schedules (internal/fault): datagram drop/dup/delay, process freezes,
// crashes that destroy volatile state, and link partitions that heal —
// all replayable from the seed, so the runs are golden-pinned like every
// figure. A cross-replica safety oracle (core.Oracle) is chained behind
// every learner's delivery trace; its verdict — prefix consistency
// across all learners — is built from schedule-invariant facts only and
// pinned as the safety golden layer (<id>.safety.sha256), byte-identical
// across fault seeds and -par levels.
//
// Schedules respect each protocol's recovery envelope:
//
//   - M-Ring Paxos retransmits on demand (learner gap recovery), so it
//     gets the full menu: volatile-state-losing learner crashes, an
//     early learner freeze, and background datagram loss + delay.
//   - U-Ring Paxos has no retransmission path — every message crosses
//     each link exactly once over TCP — so it only gets lossless faults:
//     a ring-process freeze and a partition (TCP frames are held and
//     re-pumped, never dropped).
//   - Basic Paxos (multicast wiring) self-heals through learn requests,
//     so it gets acceptor/learner crashes plus datagram loss + dup.
//   - S-Paxos keeps its dissemination tables across a crash (modeled
//     durable, see abcast.SPaxos.LoseVolatile), so it gets a replica
//     freeze, a volatile-state-losing replica crash, and a partition.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/abcast"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lan"
	"repro/internal/paxos"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

func init() {
	register(Experiment{ID: "fault.mring", Title: "M-Ring Paxos under learner crash/freeze + datagram loss/delay: safety oracle", Traced: runFaultMRing})
	register(Experiment{ID: "fault.uring", Title: "U-Ring Paxos under ring freeze + partition (lossless faults only): safety oracle", Traced: runFaultURing})
	register(Experiment{ID: "fault.paxos", Title: "basic Paxos under acceptor/learner crash + datagram loss/dup: safety oracle", Traced: runFaultPaxos})
	register(Experiment{ID: "fault.spaxos", Title: "S-Paxos under replica crash/freeze + partition: safety oracle", Traced: runFaultSPaxos})
}

// faultDur is one fault run's length; every generated schedule resolves
// its last fault well before the end so recovery is always observed.
const faultDur = time.Second

// faultSeeds are the registered experiments' schedule seeds. The safety
// digest must be identical for any other seed set (see fault_test.go).
var faultSeeds = []int64{1, 2, 3}

// faultWindow bounds generated fault activity: after early warmup,
// resolved well before the run ends.
var faultWindow = [2]time.Duration{200 * time.Millisecond, 900 * time.Millisecond}

// faultRig is one deployed protocol instance plus the bookkeeping the
// report needs.
type faultRig struct {
	l   *lan.LAN
	ids []proto.NodeID
}

// lost sums the loss counters (schedule drops, partition cuts,
// dead-process losses, LossRate draws) across every node.
func (r *faultRig) lost() int64 {
	var n int64
	for _, id := range r.ids {
		n += r.l.Node(id).Stats().MsgsLost
	}
	return n
}

// chainLearner registers a delivery trace for the learner and chains a
// cursor of the deployment's safety oracle behind it. The trace's
// 45 ms window bounds only the delivery digest; the oracle sees every
// delivery of the whole run.
func chainLearner(dep *DelivDeployment, orc *core.Oracle, id proto.NodeID) *core.DelivTrace {
	tr := dep.Learner(id)
	if tr == nil {
		// No recorder (plain Run path): a detached trace keeps the oracle
		// wiring — and therefore the printed verdicts — identical.
		tr = core.NewDelivTrace(DelivWindow)
	}
	tr.Chain(orc.Learner())
	return tr
}

// runFaultFamily drives one protocol through every seed's schedule and
// prints the per-seed report. Positions and loss counts are
// seed-dependent (pinned by the per-experiment output golden); the
// oracle verdicts are not (pinned by the safety golden).
func runFaultFamily(w io.Writer, rec *DelivRecorder, title string, seeds []int64,
	sched func(seed int64) *fault.Schedule,
	build func(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule) *faultRig) {
	t := newTable(title, "seed", "events", "minpos", "maxpos", "lost", "consistent")
	for _, seed := range seeds {
		orc := rec.Oracle()
		s := sched(seed)
		rig := build(rec.Deployment(), orc, s)
		rig.l.Run(faultDur)
		t.row(fmt.Sprint(seed), s.Len(), orc.MinPos(), orc.MaxPos(), rig.lost(), fmt.Sprint(orc.Consistent()))
		t.note("seed %d: %s", seed, orc.Verdict())
		if d := orc.FirstDivergence(); d != "" {
			t.note("seed %d FIRST DIVERGENCE: %s", seed, d)
		}
	}
	t.print(w)
}

// --- M-Ring Paxos ---

func mringFaultSchedule(seed int64) *fault.Schedule {
	s := fault.Generate(seed, fault.Profile{
		Window:     faultWindow,
		Crashes:    2,
		CrashNodes: []proto.NodeID{100},
		Mode:       fault.Lose,
		MinDown:    20 * time.Millisecond,
		MaxDown:    80 * time.Millisecond,
		Net:        fault.Net{DropRate: 0.01, DelayRate: 0.05, DelayMax: 200 * time.Microsecond},
	})
	// An early freeze of the other learner, placed before the generated
	// window so faults never overlap: it misses multicast decisions while
	// paused and catches up through gap recovery after the thaw.
	s.CrashFor(50*time.Millisecond, 70*time.Millisecond, 101, fault.Freeze)
	return s
}

func faultMRingRig(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule) *faultRig {
	cfg := ringpaxos.MConfig{Group: 1, RecycleBatches: true}
	cfg.Ring = []proto.NodeID{0, 1, 2}
	cfg.Learners = []proto.NodeID{100, 101}
	l := lan.New(lan.DefaultConfig(), 1)
	rig := &faultRig{l: l}
	for _, id := range append(append([]proto.NodeID{}, cfg.Ring...), cfg.Learners...) {
		a := &ringpaxos.MAgent{Cfg: cfg}
		for _, lid := range cfg.Learners {
			if id == lid {
				a.Trace = chainLearner(dep, orc, id)
			}
		}
		l.AddNode(id, a)
		l.Subscribe(1, id)
		rig.ids = append(rig.ids, id)
	}
	prop := &ringpaxos.MAgent{Cfg: cfg}
	p := &pump{size: 1024, rate: 20e6, submit: prop.Propose}
	l.AddNode(200, proto.Multi(prop, p))
	rig.ids = append(rig.ids, 200)
	if par := Par(); par > 1 {
		// Same split as the figure rigs: ring acceptors form LP 1,
		// learners and the proposer keep LP 0. Fault events fire on each
		// target node's own LP, so the run stays byte-identical.
		l.Partition(par, func(id proto.NodeID) int {
			if int(id) < len(cfg.Ring) {
				return 1
			}
			return 0
		})
	}
	l.InstallFaults(s)
	l.Start()
	return rig
}

func runFaultMRing(w io.Writer, rec *DelivRecorder) {
	faultMRingSeeds(w, rec, faultSeeds)
}

func faultMRingSeeds(w io.Writer, rec *DelivRecorder, seeds []int64) {
	runFaultFamily(w, rec,
		"fault.mring — M-Ring Paxos, 20 Mbps of 1 KB values under seeded learner crash/freeze + 1% loss",
		seeds, mringFaultSchedule, faultMRingRig)
}

// --- U-Ring Paxos ---

func uringFaultSchedule(seed int64) *fault.Schedule {
	// No Net rules and Freeze only: U-Ring has no retransmission path, so
	// every injected fault must be lossless (held TCP frames, healed
	// partitions) for the protocol to keep its delivery promise.
	return fault.Generate(seed, fault.Profile{
		Window:     faultWindow,
		Crashes:    1,
		CrashNodes: []proto.NodeID{2},
		Mode:       fault.Freeze,
		MinDown:    20 * time.Millisecond,
		MaxDown:    60 * time.Millisecond,
		Partitions: 1,
		Minority:   []proto.NodeID{3},
		MinPart:    20 * time.Millisecond,
		MaxPart:    60 * time.Millisecond,
	})
}

func faultURingRig(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule) *faultRig {
	cfg := ringpaxos.UConfig{NumAcceptors: 3}
	const n = 4
	for i := 0; i < n; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	l := lan.New(lan.DefaultConfig(), 1)
	rig := &faultRig{l: l}
	for i := 0; i < n; i++ {
		a := &ringpaxos.UAgent{Cfg: cfg}
		a.Trace = chainLearner(dep, orc, proto.NodeID(i))
		var hs []proto.Handler
		hs = append(hs, a)
		if i == 0 {
			p := &pump{size: 1024, rate: 20e6, submit: a.Propose}
			hs = append(hs, p)
		}
		l.AddNode(proto.NodeID(i), proto.Multi(hs...))
		rig.ids = append(rig.ids, proto.NodeID(i))
	}
	l.InstallFaults(s)
	l.Start()
	return rig
}

func runFaultURing(w io.Writer, rec *DelivRecorder) {
	faultURingSeeds(w, rec, faultSeeds)
}

func faultURingSeeds(w io.Writer, rec *DelivRecorder, seeds []int64) {
	runFaultFamily(w, rec,
		"fault.uring — U-Ring Paxos (3 acceptors, 4-process ring), 20 Mbps of 1 KB values under seeded freeze + partition",
		seeds, uringFaultSchedule, faultURingRig)
}

// --- basic Paxos (multicast wiring) ---

func paxosFaultSchedule(seed int64) *fault.Schedule {
	// Victims are drawn per-crash from {acceptor 1, learner 101}: the
	// coordinator and an acceptor majority always survive, and the
	// learner recovers through learn requests after its volatile loss.
	return fault.Generate(seed, fault.Profile{
		Window:     faultWindow,
		Crashes:    2,
		CrashNodes: []proto.NodeID{1, 101},
		Mode:       fault.Lose,
		MinDown:    20 * time.Millisecond,
		MaxDown:    80 * time.Millisecond,
		Net:        fault.Net{DropRate: 0.02, DupRate: 0.01},
	})
}

func faultPaxosRig(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule) *faultRig {
	cfg := paxos.Config{Coordinator: 0, Multicast: true, Group: 1, Window: 8}
	cfg.Acceptors = []proto.NodeID{0, 1, 2}
	cfg.Learners = []proto.NodeID{100, 101}
	l := lan.New(lan.DefaultConfig(), 1)
	rig := &faultRig{l: l}
	for i, id := range append(append([]proto.NodeID{}, cfg.Acceptors...), cfg.Learners...) {
		a := &paxos.Agent{Cfg: cfg}
		if i >= len(cfg.Acceptors) {
			a.Trace = chainLearner(dep, orc, id)
		}
		l.AddNode(id, a)
		l.Subscribe(1, id)
		rig.ids = append(rig.ids, id)
	}
	prop := &paxos.Agent{Cfg: cfg}
	p := &pump{size: 512, rate: 10e6, submit: prop.Propose}
	l.AddNode(200, proto.Multi(prop, p))
	rig.ids = append(rig.ids, 200)
	l.InstallFaults(s)
	l.Start()
	return rig
}

func runFaultPaxos(w io.Writer, rec *DelivRecorder) {
	faultPaxosSeeds(w, rec, faultSeeds)
}

func faultPaxosSeeds(w io.Writer, rec *DelivRecorder, seeds []int64) {
	runFaultFamily(w, rec,
		"fault.paxos — basic Paxos (3 acceptors, 2 learners, multicast), 10 Mbps of 512 B values under seeded crash + 2% loss / 1% dup",
		seeds, paxosFaultSchedule, faultPaxosRig)
}

// --- S-Paxos ---

func spaxosFaultSchedule(seed int64) *fault.Schedule {
	s := fault.Generate(seed, fault.Profile{
		Window:     faultWindow,
		Crashes:    1,
		CrashNodes: []proto.NodeID{2},
		Mode:       fault.Lose,
		MinDown:    20 * time.Millisecond,
		MaxDown:    60 * time.Millisecond,
		Partitions: 1,
		Minority:   []proto.NodeID{2},
		MinPart:    20 * time.Millisecond,
		MaxPart:    60 * time.Millisecond,
	})
	// An early freeze of replica 1, before the generated window: its TCP
	// dissemination traffic is held losslessly and drains at the thaw.
	s.CrashFor(50*time.Millisecond, 70*time.Millisecond, 1, fault.Freeze)
	return s
}

func faultSPaxosRig(dep *DelivDeployment, orc *core.Oracle, s *fault.Schedule) *faultRig {
	reps := []proto.NodeID{0, 1, 2}
	l := lan.New(lan.DefaultConfig(), 1)
	rig := &faultRig{l: l}
	for i := range reps {
		a := &abcast.SPaxos{Replicas: reps}
		a.Trace = chainLearner(dep, orc, reps[i])
		p := &pump{size: 512, rate: 10e6 / float64(len(reps)), submit: a.Submit}
		l.AddNode(reps[i], proto.Multi(a, p))
		rig.ids = append(rig.ids, reps[i])
	}
	l.InstallFaults(s)
	l.Start()
	return rig
}

func runFaultSPaxos(w io.Writer, rec *DelivRecorder) {
	faultSPaxosSeeds(w, rec, faultSeeds)
}

func faultSPaxosSeeds(w io.Writer, rec *DelivRecorder, seeds []int64) {
	runFaultFamily(w, rec,
		"fault.spaxos — S-Paxos (3 replicas), 10 Mbps of 512 B values under seeded replica crash/freeze + partition",
		seeds, spaxosFaultSchedule, faultSPaxosRig)
}
