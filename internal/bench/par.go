package bench

// Parallel-within-experiment setting, threaded from cmd/repro's -par flag
// into every rig that supports PDES partitioning (see lan.Partition). The
// experiment pool already parallelizes ACROSS experiments; this knob
// additionally partitions the simulation INSIDE one experiment into
// logical processes — one per ordering ring plus one for the shared
// components — whose results are byte-identical to the sequential run.

var parLPs = 1

// SetPar sets the number of logical processes partition-capable rigs
// request; n <= 1 restores sequential execution. Call before a pool run,
// not during one.
func SetPar(n int) {
	if n < 1 {
		n = 1
	}
	parLPs = n
}

// Par reports the current parallel-within-experiment setting.
func Par() int { return parLPs }
