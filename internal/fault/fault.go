// Package fault describes deterministic fault schedules for the
// simulated LAN: seeded datagram drop/dup/delay rules, process
// crash+restart events (with distinct "frozen" and
// "crashed-and-lost-volatile-state" modes), and link partitions that
// heal. A schedule is pure data — the LAN interprets it
// (lan.LAN.InstallFaults) by scheduling each event on the target node's
// own kernel, so the same schedule replays byte-identically in
// sequential and PDES (-par N) runs.
//
// Installing a schedule — even an empty one — also switches the LAN's
// crash semantics from the legacy model (frames to a down node silently
// vanish and leak their TCP window credit) to the faithful one: Freeze
// holds TCP frames at the receiver like a paused process's socket
// buffer, Lose resets connections (credit returned, queued messages
// dropped) like a dead process's RST. With no schedule installed the
// LAN behaves exactly as before, so every pre-fault golden is
// untouched.
package fault

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/proto"
)

// Mode distinguishes what a crash destroys.
type Mode uint8

const (
	// Freeze models a paused process (GC stall, SIGSTOP, VM freeze):
	// timers at the node keep firing into the void, TCP frames addressed
	// to it are held in its socket buffer (window backpressure stalls
	// senders losslessly) and delivered on restart; no state is lost.
	Freeze Mode = iota
	// Lose models a real crash: connections to the node reset (in-flight
	// frames are lost but the sender's window credit returns), the
	// node's own queued-but-unsent messages are dropped, and on restart
	// the handler's volatile soft state is discarded via
	// proto.VolatileLoser.
	Lose
)

func (m Mode) String() string {
	if m == Lose {
		return "lose"
	}
	return "freeze"
}

// Kind is the event discriminator.
type Kind uint8

const (
	// CrashEvent takes the node down in the event's Mode.
	CrashEvent Kind = iota + 1
	// RestartEvent brings the node back (delivering held frames after a
	// Freeze, discarding volatile state after a Lose).
	RestartEvent
	// PartitionEvent installs the event's Sides map on every node: a
	// node may only exchange traffic with nodes on its own side
	// (unlisted nodes are side 0). TCP frames to the far side are held
	// at the sender (lossless); datagrams are counted lost and dropped.
	PartitionEvent
	// HealEvent clears the partition and re-pumps held TCP traffic.
	HealEvent
	// CallEvent invokes Fn at the node (skipped while the node is
	// down, like any handler-facing event). Use it to drive recovery
	// actions — e.g. telling a surviving replica to take over a ring.
	CallEvent
)

func (k Kind) String() string {
	switch k {
	case CrashEvent:
		return "crash"
	case RestartEvent:
		return "restart"
	case PartitionEvent:
		return "partition"
	case HealEvent:
		return "heal"
	case CallEvent:
		return "call"
	}
	return "?"
}

// Event is one scheduled fault. Which fields matter depends on Kind:
// Node for crash/restart/call, Mode for crash, Sides for partition,
// Fn for call.
type Event struct {
	At   time.Duration
	Kind Kind
	Node proto.NodeID
	Mode Mode
	// Sides maps node id -> partition side for PartitionEvent. The map
	// is shared read-only by every node after installation; do not
	// mutate it once the run starts. Nodes absent from the map are on
	// side 0.
	Sides map[proto.NodeID]int
	Fn    func()
}

// Net holds the seeded datagram fault rules, applied per destination at
// the sender from the sender's own RNG stream (so PDES partitions draw
// identically to sequential runs). TCP traffic is never dropped or
// duplicated — it models a reliable transport; crash/partition events
// are how TCP paths fail.
type Net struct {
	DropRate  float64       // P(datagram lost) per destination
	DupRate   float64       // P(datagram duplicated) per destination
	DelayRate float64       // P(extra delay) per destination
	DelayMax  time.Duration // extra delay ~ U[0, DelayMax)
}

// Enabled reports whether any datagram fault rule is active.
func (n Net) Enabled() bool {
	return n.DropRate > 0 || n.DupRate > 0 || (n.DelayRate > 0 && n.DelayMax > 0)
}

// Schedule is an ordered set of fault events plus network fault rules.
// Build one with the fluent methods below or Generate, then hand it to
// lan.LAN.InstallFaults before Start.
type Schedule struct {
	Seed   int64
	Net    Net
	events []Event
}

// New returns an empty schedule. Installing an empty schedule enables
// the faithful crash semantics without injecting any fault.
func New(seed int64) *Schedule { return &Schedule{Seed: seed} }

// WithNet sets the datagram fault rules.
func (s *Schedule) WithNet(n Net) *Schedule {
	s.Net = n
	return s
}

// Crash schedules a crash of node in the given mode.
func (s *Schedule) Crash(at time.Duration, node proto.NodeID, mode Mode) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: CrashEvent, Node: node, Mode: mode})
	return s
}

// Restart schedules a restart of node.
func (s *Schedule) Restart(at time.Duration, node proto.NodeID) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: RestartEvent, Node: node})
	return s
}

// CrashFor schedules a crash at `at` and the matching restart after
// `down`.
func (s *Schedule) CrashFor(at, down time.Duration, node proto.NodeID, mode Mode) *Schedule {
	return s.Crash(at, node, mode).Restart(at+down, node)
}

// Partition schedules a partition with the given sides at `at`, healing
// after `dur`. Sides maps node id -> side; unlisted nodes are side 0.
func (s *Schedule) Partition(at, dur time.Duration, sides map[proto.NodeID]int) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: PartitionEvent, Sides: sides})
	s.events = append(s.events, Event{At: at + dur, Kind: HealEvent})
	return s
}

// Split is Partition with the sides map built from a minority list: the
// named nodes form side 1, everyone else stays on side 0.
func (s *Schedule) Split(at, dur time.Duration, minority ...proto.NodeID) *Schedule {
	sides := make(map[proto.NodeID]int, len(minority))
	for _, id := range minority {
		sides[id] = 1
	}
	return s.Partition(at, dur, sides)
}

// Call schedules fn to run at the node (a no-op if the node is down at
// that instant).
func (s *Schedule) Call(at time.Duration, node proto.NodeID, fn func()) *Schedule {
	s.events = append(s.events, Event{At: at, Kind: CallEvent, Node: node, Fn: fn})
	return s
}

// Events returns the schedule's events sorted by time (stable, so
// same-instant events keep insertion order).
func (s *Schedule) Events() []Event {
	out := make([]Event, len(s.events))
	copy(out, s.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len returns the number of scheduled events.
func (s *Schedule) Len() int { return len(s.events) }

// Profile parameterizes Generate: how many crashes and partitions to
// place inside a window, drawn deterministically from the seed.
type Profile struct {
	// Window bounds fault activity: every crash and partition starts at
	// or after Window[0] and is healed/restarted before Window[1].
	Window [2]time.Duration

	Crashes    int            // number of crash+restart pairs
	CrashNodes []proto.NodeID // crash victims are drawn from this set
	Mode       Mode           // crash mode for every generated crash
	MinDown    time.Duration  // outage duration ~ U[MinDown, MaxDown)
	MaxDown    time.Duration
	// Pinned targets crash i at Pinned[i] instead of a CrashNodes draw
	// (crashes beyond len(Pinned) draw as usual). Failover experiments pin
	// the coordinator so every seed exercises an election.
	Pinned []proto.NodeID
	// NoRestart is the probability that a generated crash is permanent
	// (no restart event). Draws that stay under it keep their crash+restart
	// pair, so 0 preserves prior schedules and 1 makes every crash final.
	NoRestart float64

	Partitions int            // number of partition+heal pairs
	Minority   []proto.NodeID // side-1 membership for every partition
	MinPart    time.Duration  // partition duration ~ U[MinPart, MaxPart)
	MaxPart    time.Duration

	Net Net // datagram fault rules, copied to the schedule
}

// Generate builds a schedule from a seed: the window is divided into
// equal slots, one fault per slot (crashes first, then partitions), with
// the start jittered inside the slot's first half and the duration
// clamped so the fault always resolves inside its slot — faults never
// overlap, so any prefix of recovery logic can be exercised in
// isolation. Same seed, same profile -> identical schedule.
func Generate(seed int64, p Profile) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := New(seed).WithNet(p.Net)
	total := p.Crashes + p.Partitions
	if total == 0 {
		return s
	}
	span := p.Window[1] - p.Window[0]
	slot := span / time.Duration(total)
	for i := 0; i < total; i++ {
		start := p.Window[0] + time.Duration(i)*slot
		jitter := time.Duration(rng.Int63n(int64(slot/2) + 1))
		at := start + jitter
		if i < p.Crashes {
			// Draw order is fixed (node, then duration, then — only when
			// the knob is set — the permanence coin), so profiles that
			// leave the new knobs zero generate byte-identical schedules.
			var node proto.NodeID
			if len(p.CrashNodes) > 0 {
				node = p.CrashNodes[rng.Intn(len(p.CrashNodes))]
			}
			if i < len(p.Pinned) {
				node = p.Pinned[i]
			}
			down := durBetween(rng, p.MinDown, p.MaxDown)
			down = clampDur(down, slot-jitter-time.Millisecond)
			if p.NoRestart > 0 && rng.Float64() < p.NoRestart {
				s.Crash(at, node, p.Mode)
			} else {
				s.CrashFor(at, down, node, p.Mode)
			}
		} else {
			dur := durBetween(rng, p.MinPart, p.MaxPart)
			dur = clampDur(dur, slot-jitter-time.Millisecond)
			s.Split(at, dur, p.Minority...)
		}
	}
	return s
}

func durBetween(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)))
}

func clampDur(d, max time.Duration) time.Duration {
	if max < time.Millisecond {
		max = time.Millisecond
	}
	if d > max {
		return max
	}
	return d
}
