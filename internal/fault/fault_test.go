package fault

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/proto"
)

func TestScheduleBuilderAndSort(t *testing.T) {
	s := New(1).
		Restart(500*time.Millisecond, 3).
		Crash(200*time.Millisecond, 3, Lose).
		Split(300*time.Millisecond, 100*time.Millisecond, 7)
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	order := []Kind{CrashEvent, PartitionEvent, HealEvent, RestartEvent}
	for i, k := range order {
		if evs[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, evs[i].Kind, k)
		}
	}
	if evs[1].Sides[7] != 1 || evs[1].Sides[0] != 0 {
		t.Fatalf("split sides = %v", evs[1].Sides)
	}
	// Events() returns a copy: mutating it must not corrupt the schedule.
	evs[0].Kind = HealEvent
	if s.Events()[0].Kind != CrashEvent {
		t.Fatal("Events() aliased internal slice")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{
		Window:     [2]time.Duration{300 * time.Millisecond, 900 * time.Millisecond},
		Crashes:    2,
		CrashNodes: []proto.NodeID{1, 2, 3},
		Mode:       Lose,
		MinDown:    20 * time.Millisecond,
		MaxDown:    80 * time.Millisecond,
		Partitions: 1,
		Minority:   []proto.NodeID{2},
		MinPart:    30 * time.Millisecond,
		MaxPart:    60 * time.Millisecond,
		Net:        Net{DropRate: 0.01, DupRate: 0.005, DelayRate: 0.02, DelayMax: time.Millisecond},
	}
	a, b := Generate(42, p), Generate(42, p)
	if !reflect.DeepEqual(a.Events(), b.Events()) || a.Net != b.Net {
		t.Fatal("same seed produced different schedules")
	}
	c := Generate(43, p)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestGenerateFaultsStayInWindowAndResolve(t *testing.T) {
	p := Profile{
		Window:     [2]time.Duration{300 * time.Millisecond, 900 * time.Millisecond},
		Crashes:    3,
		CrashNodes: []proto.NodeID{1, 2},
		MinDown:    10 * time.Millisecond,
		MaxDown:    500 * time.Millisecond, // deliberately bigger than a slot
		Partitions: 2,
		Minority:   []proto.NodeID{1},
		MinPart:    10 * time.Millisecond,
		MaxPart:    500 * time.Millisecond,
	}
	for seed := int64(1); seed <= 20; seed++ {
		s := Generate(seed, p)
		evs := s.Events()
		if len(evs) != 2*(p.Crashes+p.Partitions) {
			t.Fatalf("seed %d: %d events", seed, len(evs))
		}
		downAt := map[proto.NodeID]bool{}
		var parted bool
		for _, e := range evs {
			if e.At < p.Window[0] || e.At >= p.Window[1] {
				t.Fatalf("seed %d: event at %v outside window", seed, e.At)
			}
			switch e.Kind {
			case CrashEvent:
				if downAt[e.Node] {
					t.Fatalf("seed %d: node %d crashed twice without restart", seed, e.Node)
				}
				downAt[e.Node] = true
			case RestartEvent:
				if !downAt[e.Node] {
					t.Fatalf("seed %d: restart of up node %d", seed, e.Node)
				}
				downAt[e.Node] = false
			case PartitionEvent:
				if parted {
					t.Fatalf("seed %d: overlapping partitions", seed)
				}
				parted = true
			case HealEvent:
				parted = false
			}
		}
		for id, down := range downAt {
			if down {
				t.Fatalf("seed %d: node %d never restarted", seed, id)
			}
		}
		if parted {
			t.Fatalf("seed %d: partition never healed", seed)
		}
	}
}

func TestModeKindStrings(t *testing.T) {
	if Freeze.String() != "freeze" || Lose.String() != "lose" {
		t.Fatal("mode strings")
	}
	for k, want := range map[Kind]string{
		CrashEvent: "crash", RestartEvent: "restart",
		PartitionEvent: "partition", HealEvent: "heal", CallEvent: "call",
	} {
		if k.String() != want {
			t.Fatalf("kind %d string = %q", k, k.String())
		}
	}
}

func TestGeneratePinnedTargets(t *testing.T) {
	p := Profile{
		Window:     [2]time.Duration{200 * time.Millisecond, 900 * time.Millisecond},
		Crashes:    3,
		CrashNodes: []proto.NodeID{1, 2, 3},
		Pinned:     []proto.NodeID{7, 8},
		Mode:       Lose,
		MinDown:    20 * time.Millisecond,
		MaxDown:    80 * time.Millisecond,
	}
	var crashes []proto.NodeID
	for _, ev := range Generate(42, p).Events() {
		if ev.Kind == CrashEvent {
			crashes = append(crashes, ev.Node)
		}
	}
	if len(crashes) != 3 || crashes[0] != 7 || crashes[1] != 8 {
		t.Fatalf("crash targets %v, want pins 7,8 then a CrashNodes draw", crashes)
	}
	if crashes[2] != 1 && crashes[2] != 2 && crashes[2] != 3 {
		t.Fatalf("unpinned crash hit %d, outside CrashNodes", crashes[2])
	}
}

func TestGeneratePinnedOnlyProfile(t *testing.T) {
	// No CrashNodes at all: every crash must come from Pinned, without
	// panicking on the empty draw set.
	p := Profile{
		Window:  [2]time.Duration{200 * time.Millisecond, 800 * time.Millisecond},
		Crashes: 1,
		Pinned:  []proto.NodeID{4},
		Mode:    Lose,
		MinDown: 20 * time.Millisecond,
		MaxDown: 80 * time.Millisecond,
	}
	evs := Generate(7, p).Events()
	if len(evs) != 2 || evs[0].Kind != CrashEvent || evs[0].Node != 4 {
		t.Fatalf("pinned-only schedule = %+v", evs)
	}
}

func TestGenerateNoRestart(t *testing.T) {
	p := Profile{
		Window:     [2]time.Duration{200 * time.Millisecond, 900 * time.Millisecond},
		Crashes:    3,
		CrashNodes: []proto.NodeID{1, 2},
		Mode:       Lose,
		MinDown:    20 * time.Millisecond,
		MaxDown:    80 * time.Millisecond,
		NoRestart:  1,
	}
	for _, ev := range Generate(11, p).Events() {
		if ev.Kind == RestartEvent {
			t.Fatalf("NoRestart=1 schedule contains a restart: %+v", ev)
		}
	}
	if n := Generate(11, p).Len(); n != 3 {
		t.Fatalf("NoRestart=1 schedule has %d events, want 3 crashes", n)
	}
}

func TestGenerateNewKnobsPreserveDrawOrder(t *testing.T) {
	// Profiles that leave Pinned/NoRestart zero must generate schedules
	// byte-identical to what they produced before the knobs existed: the
	// permanence coin is only drawn when NoRestart is set, and pinning
	// replaces the node draw's result, not the draw itself.
	base := Profile{
		Window:     [2]time.Duration{300 * time.Millisecond, 900 * time.Millisecond},
		Crashes:    2,
		CrashNodes: []proto.NodeID{1, 2, 3},
		Mode:       Lose,
		MinDown:    20 * time.Millisecond,
		MaxDown:    80 * time.Millisecond,
		Partitions: 1,
		Minority:   []proto.NodeID{2},
		MinPart:    30 * time.Millisecond,
		MaxPart:    60 * time.Millisecond,
	}
	pinned := base
	pinned.Pinned = []proto.NodeID{3}
	a, b := Generate(42, base).Events(), Generate(42, pinned).Events()
	if len(a) != len(b) {
		t.Fatalf("pinning changed event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Kind != b[i].Kind {
			t.Fatalf("pinning moved event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Crashes beyond the pin draw the same nodes as the base profile.
	crashNode := func(evs []Event, i int) proto.NodeID {
		for _, ev := range evs {
			if ev.Kind == CrashEvent {
				if i == 0 {
					return ev.Node
				}
				i--
			}
		}
		t.Fatalf("no crash %d in %+v", i, evs)
		return 0
	}
	if an, bn := crashNode(a, 1), crashNode(b, 1); an != bn {
		t.Fatalf("unpinned draw diverged: %v vs %v", an, bn)
	}
}
