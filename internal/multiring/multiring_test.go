package multiring

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

// rig builds a two-ring deployment:
//
//	ring 0: acceptors {0,1} (coordinator 1), multicast group 100
//	ring 1: acceptors {2,3} (coordinator 3), multicast group 101
//	node 10: learner of both rings (merger), node 11: learner of ring 0 only
//	node 20: proposer for both rings
type rig struct {
	l      *lan.LAN
	nodes  map[proto.NodeID]*Node
	merged []core.ValueID // deliveries at node 10
	single []core.ValueID // deliveries at node 11
	m10    *Merger
	m11    *Merger
}

func newRig(seed int64, lambda float64, delta time.Duration, m int64) *rig {
	r := &rig{l: lan.New(lan.DefaultConfig(), seed), nodes: make(map[proto.NodeID]*Node)}

	cfg0 := ringpaxos.MConfig{
		Ring:     []proto.NodeID{0, 1},
		Learners: []proto.NodeID{10, 11},
		Group:    100,
	}
	cfg1 := ringpaxos.MConfig{
		Ring:     []proto.NodeID{2, 3},
		Learners: []proto.NodeID{10},
		Group:    101,
	}

	for _, id := range []proto.NodeID{0, 1, 2, 3, 10, 11, 20} {
		r.nodes[id] = NewNode()
	}
	// Ring 0 acceptors.
	r.nodes[0].AddRing(0, &ringpaxos.MAgent{Cfg: cfg0})
	r.nodes[1].AddRing(0, &ringpaxos.MAgent{Cfg: cfg0})
	// Ring 1 acceptors.
	r.nodes[2].AddRing(1, &ringpaxos.MAgent{Cfg: cfg1})
	r.nodes[3].AddRing(1, &ringpaxos.MAgent{Cfg: cfg1})
	// Pacers on the two coordinators.
	if lambda > 0 {
		r.nodes[1].AddPacer(&Pacer{Agent: r.nodes[1].Agent(0), Lambda: lambda, Delta: delta})
		r.nodes[3].AddPacer(&Pacer{Agent: r.nodes[3].Agent(1), Lambda: lambda, Delta: delta})
	}
	// Learner 10 subscribes to both rings and merges.
	r.nodes[10].AddRing(0, &ringpaxos.MAgent{Cfg: cfg0})
	r.nodes[10].AddRing(1, &ringpaxos.MAgent{Cfg: cfg1})
	r.m10 = NewMerger([]int{0, 1}, m)
	r.m10.Deliver = func(_ int64, v core.Value) { r.merged = append(r.merged, v.ID) }
	r.nodes[10].SetMerger(r.m10)
	// Learner 11 subscribes to ring 0 only.
	r.nodes[11].AddRing(0, &ringpaxos.MAgent{Cfg: cfg0})
	r.m11 = NewMerger([]int{0}, m)
	r.m11.Deliver = func(_ int64, v core.Value) { r.single = append(r.single, v.ID) }
	r.nodes[11].SetMerger(r.m11)
	// Proposer node knows both rings.
	r.nodes[20].AddRing(0, &ringpaxos.MAgent{Cfg: cfg0})
	r.nodes[20].AddRing(1, &ringpaxos.MAgent{Cfg: cfg1})

	for id, n := range r.nodes {
		r.l.AddNode(id, n)
	}
	// Multicast membership: ring acceptors + learners per group.
	for _, id := range []proto.NodeID{0, 1, 10, 11} {
		r.l.Subscribe(100, id)
	}
	for _, id := range []proto.NodeID{2, 3, 10} {
		r.l.Subscribe(101, id)
	}
	r.l.Start()
	return r
}

// Ring-0 values get even ids, ring-1 values odd ids.
func (r *rig) propose(ring int, id int64, bytes int) {
	r.nodes[20].Agent(ring).Propose(core.Value{ID: core.ValueID(id), Bytes: bytes})
}

func TestMultiRingPartialOrder(t *testing.T) {
	r := newRig(1, 2000, time.Millisecond, 1)
	for i := 0; i < 60; i++ {
		r.propose(0, int64(2*i+2), 512)
		r.propose(1, int64(2*i+1), 512)
	}
	r.l.Run(3 * time.Second)
	if len(r.merged) != 120 {
		t.Fatalf("merged learner delivered %d of 120", len(r.merged))
	}
	if len(r.single) != 60 {
		t.Fatalf("single-ring learner delivered %d of 60", len(r.single))
	}
	// Uniform partial order: the merged learner's ring-0 subsequence must
	// equal the single-ring learner's sequence.
	var ring0 []core.ValueID
	for _, v := range r.merged {
		if int64(v)%2 == 0 {
			ring0 = append(ring0, v)
		}
	}
	if len(ring0) != len(r.single) {
		t.Fatalf("ring-0 subsequence %d vs %d", len(ring0), len(r.single))
	}
	for i := range ring0 {
		if ring0[i] != r.single[i] {
			t.Fatalf("ring-0 order diverges at %d: %d vs %d", i, ring0[i], r.single[i])
		}
	}
}

func TestMultiRingMergeDeterminism(t *testing.T) {
	run := func() []core.ValueID {
		r := newRig(42, 2000, time.Millisecond, 1)
		for i := 0; i < 40; i++ {
			r.propose(0, int64(2*i+2), 512)
			r.propose(1, int64(2*i+1), 512)
		}
		r.l.Run(3 * time.Second)
		return r.merged
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic merge lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("merge diverges at %d", i)
		}
	}
}

func TestMultiRingSkipsUnblockIdleRing(t *testing.T) {
	// Only ring 0 carries traffic. Without skips the merged learner would
	// block forever waiting for ring 1; the pacer's skip instances let it
	// deliver everything.
	r := newRig(2, 4000, time.Millisecond, 1)
	for i := 0; i < 80; i++ {
		r.propose(0, int64(i+1), 512)
	}
	r.l.Run(3 * time.Second)
	if len(r.merged) != 80 {
		t.Fatalf("merged learner delivered %d of 80 with an idle ring", len(r.merged))
	}
}

func TestMultiRingNoSkipsBlocksMergedLearner(t *testing.T) {
	// Control for the test above: λ=0 disables pacing, so the merged
	// learner must stall while the single-ring learner proceeds.
	r := newRig(3, 0, 0, 1)
	for i := 0; i < 50; i++ {
		r.propose(0, int64(i+1), 512)
	}
	r.l.Run(2 * time.Second)
	// At most one consensus instance (one batch of up to 16 values) can
	// slip through before the merge blocks on the silent ring.
	if len(r.merged) > 16 {
		t.Fatalf("merged learner delivered %d values despite a silent ring", len(r.merged))
	}
	if len(r.single) != 50 {
		t.Fatalf("single-ring learner delivered %d of 50", len(r.single))
	}
}

func TestMultiRingLargerM(t *testing.T) {
	// M=10: merge still delivers everything, in deterministic order.
	r := newRig(4, 3000, time.Millisecond, 10)
	for i := 0; i < 60; i++ {
		r.propose(0, int64(2*i+2), 512)
		r.propose(1, int64(2*i+1), 512)
	}
	r.l.Run(3 * time.Second)
	if len(r.merged) != 120 {
		t.Fatalf("M=10 merge delivered %d of 120", len(r.merged))
	}
}

func TestMultiRingCoordinatorFailureAndRecovery(t *testing.T) {
	r := newRig(5, 3000, time.Millisecond, 1)
	stop := false
	n := 0
	env := r.l.Node(20)
	var pump func()
	pump = func() {
		if stop {
			return
		}
		n += 2
		r.propose(0, int64(n), 512)
		r.propose(1, int64(n+1), 512)
		env.After(time.Millisecond, pump)
	}
	pump()
	r.l.Run(500 * time.Millisecond)
	preCrash := len(r.merged)
	if preCrash == 0 {
		t.Fatal("nothing delivered before crash")
	}
	// Crash ring 1's coordinator: the merged learner stalls even though
	// ring 0 keeps deciding (Fig 5.11).
	r.l.Node(3).SetDown(true)
	r.l.Run(300 * time.Millisecond)
	during := len(r.merged)
	if during-preCrash > r.m10.Buffered() {
		t.Logf("deliveries during outage: %d", during-preCrash)
	}
	// Recover; the coordinator's timers resume, skips catch up, and the
	// buffered traffic flushes.
	r.l.Node(3).SetDown(false)
	r.l.Run(2 * time.Second)
	stop = true
	r.l.Run(3 * time.Second)
	post := len(r.merged)
	if post <= during {
		t.Fatalf("no recovery after coordinator restart: %d -> %d", during, post)
	}
	// Ring-0 subsequence must still match the single-ring learner's prefix.
	var ring0 []core.ValueID
	for _, v := range r.merged {
		if int64(v)%2 == 0 {
			ring0 = append(ring0, v)
		}
	}
	limit := len(ring0)
	if len(r.single) < limit {
		limit = len(r.single)
	}
	for i := 0; i < limit; i++ {
		if ring0[i] != r.single[i] {
			t.Fatalf("ring-0 order diverges at %d after recovery", i)
		}
	}
}

func TestSkipBatchRoundTrip(t *testing.T) {
	b := SkipBatch(17)
	n, ok := skipCount(b)
	if !ok || n != 17 {
		t.Fatalf("skipCount(SkipBatch(17)) = %d, %v", n, ok)
	}
	n, ok = skipCount(core.Batch{Vals: []core.Value{{ID: 1, Bytes: 10}}})
	if ok || n != 1 {
		t.Fatalf("normal batch misdetected as skip: %d, %v", n, ok)
	}
}

// failoverRig is newRig with failover enabled on ring 0, standby pacers
// on every ring-0 acceptor (inert until one of them is coordinator), the
// proposer subscribed to both groups so it hears ring changes, and a
// fault schedule installed before Start.
func failoverRig(seed int64, sched *fault.Schedule) *rig {
	r := &rig{l: lan.New(lan.DefaultConfig(), seed), nodes: make(map[proto.NodeID]*Node)}
	fo := ringpaxos.Failover{Heartbeat: 2 * time.Millisecond, Suspect: 6 * time.Millisecond}
	cfg0 := ringpaxos.MConfig{
		Ring:     []proto.NodeID{0, 1},
		Learners: []proto.NodeID{10, 11},
		Group:    100,
		Failover: fo,
	}
	cfg1 := ringpaxos.MConfig{
		Ring:     []proto.NodeID{2, 3},
		Learners: []proto.NodeID{10},
		Group:    101,
		Failover: fo,
	}
	for _, id := range []proto.NodeID{0, 1, 2, 3, 10, 11, 20} {
		r.nodes[id] = NewNode()
	}
	r.nodes[0].AddRing(0, &ringpaxos.MAgent{Cfg: cfg0})
	r.nodes[1].AddRing(0, &ringpaxos.MAgent{Cfg: cfg0})
	r.nodes[2].AddRing(1, &ringpaxos.MAgent{Cfg: cfg1})
	r.nodes[3].AddRing(1, &ringpaxos.MAgent{Cfg: cfg1})
	lambda, delta := 2000.0, time.Millisecond
	r.nodes[0].AddPacer(&Pacer{Agent: r.nodes[0].Agent(0), Lambda: lambda, Delta: delta})
	r.nodes[1].AddPacer(&Pacer{Agent: r.nodes[1].Agent(0), Lambda: lambda, Delta: delta})
	r.nodes[3].AddPacer(&Pacer{Agent: r.nodes[3].Agent(1), Lambda: lambda, Delta: delta})
	r.nodes[10].AddRing(0, &ringpaxos.MAgent{Cfg: cfg0})
	r.nodes[10].AddRing(1, &ringpaxos.MAgent{Cfg: cfg1})
	r.m10 = NewMerger([]int{0, 1}, 1)
	r.m10.Deliver = func(_ int64, v core.Value) { r.merged = append(r.merged, v.ID) }
	r.nodes[10].SetMerger(r.m10)
	r.nodes[11].AddRing(0, &ringpaxos.MAgent{Cfg: cfg0})
	r.m11 = NewMerger([]int{0}, 1)
	r.m11.Deliver = func(_ int64, v core.Value) { r.single = append(r.single, v.ID) }
	r.nodes[11].SetMerger(r.m11)
	r.nodes[20].AddRing(0, &ringpaxos.MAgent{Cfg: cfg0})
	r.nodes[20].AddRing(1, &ringpaxos.MAgent{Cfg: cfg1})
	for id, n := range r.nodes {
		r.l.AddNode(id, n)
	}
	for _, id := range []proto.NodeID{0, 1, 10, 11, 20} {
		r.l.Subscribe(100, id)
	}
	for _, id := range []proto.NodeID{2, 3, 10, 20} {
		r.l.Subscribe(101, id)
	}
	r.l.InstallFaults(sched)
	r.l.Start()
	return r
}

// TestMultiRingIndependentFailover kills ring 0's coordinator (node 1)
// permanently. Ring 0 must elect node 0 — whose standby pacer comes
// alive — while ring 1 is untouched, and the merged learner must resume
// delivering from both rings after the election.
func TestMultiRingIndependentFailover(t *testing.T) {
	sched := fault.New(1).Crash(100*time.Millisecond, 1, fault.Lose)
	r := failoverRig(6, sched)
	for i := 0; i < 30; i++ {
		r.propose(0, int64(2*i+2), 512)
		r.propose(1, int64(2*i+1), 512)
	}
	r.l.Run(time.Second)
	if !r.nodes[0].Agent(0).IsCoordinator() {
		t.Fatal("ring-0 survivor (node 0) did not take over")
	}
	if !r.nodes[3].Agent(1).IsCoordinator() || r.nodes[2].Agent(1).IsCoordinator() {
		t.Fatal("ring 1 coordinatorship disturbed by ring 0's failover")
	}
	for i := 30; i < 60; i++ {
		r.propose(0, int64(2*i+2), 512)
		r.propose(1, int64(2*i+1), 512)
	}
	r.l.Run(2 * time.Second)
	if len(r.merged) != 120 {
		t.Fatalf("merged learner delivered %d of 120 across the failover", len(r.merged))
	}
	if len(r.single) != 60 {
		t.Fatalf("single-ring learner delivered %d of 60 across the failover", len(r.single))
	}
	var ring0 []core.ValueID
	for _, v := range r.merged {
		if int64(v)%2 == 0 {
			ring0 = append(ring0, v)
		}
	}
	for i := range ring0 {
		if ring0[i] != r.single[i] {
			t.Fatalf("ring-0 order diverges at %d after failover", i)
		}
	}
}
