// Package multiring implements Multi-Ring Paxos (Chapter 5, DSN 2012): an
// atomic multicast built from independent M-Ring Paxos instances, one per
// group, coordinated by three parameters:
//
//   - λ: the maximum expected consensus rate of any ring; a ring whose rate
//     falls below λ proposes skip instances to keep pace,
//   - ∆: the sampling interval at which each coordinator compares its rate
//     µ to λ and proposes skips,
//   - M: how many consecutive consensus instances a learner consumes from
//     one ring before moving to the next during deterministic merge.
//
// Learners that subscribe to multiple groups interleave the rings'
// decisions with a deterministic round-robin merge in group-id order, which
// yields the uniform partial order of atomic multicast.
package multiring

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/ringpaxos"
)

// RingMsg wraps an M-Ring Paxos message with its ring id so several rings
// can share nodes (Chapter 5: "machines can be shared among rings"). It is
// sent as a pooled pointer: the receiving Node unwraps it and recycles the
// envelope, except for multicast copies (MC), which fan out to several
// receivers and belong to no one.
type RingMsg struct {
	Ring  int
	Inner proto.Message
	MC    bool
}

// Size implements proto.Message.
func (m RingMsg) Size() int { return 4 + m.Inner.Size() }

var ringMsgPool proto.MsgPool[RingMsg]

// skipMark is the payload of a skip batch: it stands for N consecutive
// empty consensus instances.
type skipMark struct{ N int64 }

// SkipBatch builds the batch a coordinator proposes to represent n skipped
// instances in a single consensus execution.
func SkipBatch(n int64) core.Batch {
	return core.Batch{Vals: []core.Value{{ID: -1, Bytes: 16, Payload: skipMark{N: n}}}}
}

// skipCount returns the number of virtual instances a batch stands for:
// n for a skip batch, 1 otherwise.
func skipCount(b core.Batch) (int64, bool) {
	if len(b.Vals) == 1 {
		if s, ok := b.Vals[0].Payload.(skipMark); ok {
			return s.N, true
		}
	}
	return 1, false
}

// ringEnv namespaces an agent's traffic with its ring id.
type ringEnv struct {
	proto.Env
	ring int
}

func (e ringEnv) Send(to proto.NodeID, m proto.Message) {
	w := ringMsgPool.Get()
	w.Ring, w.Inner = e.ring, m
	e.Env.Send(to, w)
}

func (e ringEnv) SendUDP(to proto.NodeID, m proto.Message) {
	w := ringMsgPool.Get()
	w.Ring, w.Inner = e.ring, m
	e.Env.SendUDP(to, w)
}

func (e ringEnv) Multicast(g proto.GroupID, m proto.Message) {
	w := ringMsgPool.Get()
	w.Ring, w.Inner, w.MC = e.ring, m, true
	e.Env.Multicast(g, w)
}

// AfterFree / AfterFreeArg forward the allocation-free timer path of the
// underlying environment (the embedded interface would otherwise hide it
// from type assertions).
func (e ringEnv) AfterFree(d time.Duration, fn func()) {
	proto.AfterFree(e.Env, d, fn)
}

func (e ringEnv) AfterFreeArg(d time.Duration, fn func(int64), arg int64) {
	proto.AfterFreeArg(e.Env, d, fn, arg)
}

// Down forwards proto.Downer so per-ring failure detectors stay quiet
// while the hosting process is crashed.
func (e ringEnv) Down() bool { return proto.EnvDown(e.Env) }

// GroupSize forwards proto.GroupSizer (0 when the underlying environment
// has none): ring agents stamp shared decision buffers with it.
func (e ringEnv) GroupSize(g proto.GroupID) int { return proto.GroupSizeOf(e.Env, g) }

// Node hosts one process's roles across all rings: any number of ring
// agents (acceptor/coordinator/learner per ring), an optional skip Pacer
// per coordinated ring, and an optional deterministic Merger when the
// process learns from one or more groups.
type Node struct {
	agents map[int]*ringpaxos.MAgent
	pacers []*Pacer
	Merger *Merger

	env proto.Env
}

var _ proto.Handler = (*Node)(nil)

// NewNode returns an empty multi-ring process.
func NewNode() *Node {
	return &Node{agents: make(map[int]*ringpaxos.MAgent)}
}

// AddRing installs this process's agent for ring id.
func (n *Node) AddRing(id int, a *ringpaxos.MAgent) {
	n.agents[id] = a
	if n.Merger != nil {
		n.Merger.attach(id, a)
	}
}

// AddPacer installs a skip pacer for a ring this node coordinates.
func (n *Node) AddPacer(p *Pacer) { n.pacers = append(n.pacers, p) }

// SetMerger installs the deterministic merge for the given subscribed ring
// ids. Call before Start, after AddRing.
func (n *Node) SetMerger(m *Merger) {
	n.Merger = m
	for _, id := range m.rings {
		if a, ok := n.agents[id]; ok {
			m.attach(id, a)
		}
	}
}

// Agent returns this node's agent for ring id, or nil.
func (n *Node) Agent(id int) *ringpaxos.MAgent { return n.agents[id] }

// Start implements proto.Handler.
func (n *Node) Start(env proto.Env) {
	n.env = env
	ids := make([]int, 0, len(n.agents))
	for id := range n.agents {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		n.agents[id].Start(ringEnv{Env: env, ring: id})
	}
	if n.Merger != nil {
		n.Merger.start(env)
	}
	for _, p := range n.pacers {
		p.start(env)
	}
}

// Receive implements proto.Handler: unwraps ring messages, dispatches, and
// recycles the unicast envelope (its final consumer is this node).
func (n *Node) Receive(from proto.NodeID, m proto.Message) {
	rm, ok := m.(*RingMsg)
	if !ok {
		return
	}
	if a, ok := n.agents[rm.Ring]; ok {
		a.Receive(from, rm.Inner)
	}
	if !rm.MC {
		ringMsgPool.Put(rm)
	}
}

// Pacer implements the coordinator side of Chapter 5, Algorithm 1 (Task 2):
// every ∆ it compares the ring's consensus rate against λ and proposes one
// batched skip instance to make up the difference.
type Pacer struct {
	// Agent is the coordinator's agent for the paced ring.
	Agent *ringpaxos.MAgent
	// Lambda is the expected consensus rate, in instances per second.
	Lambda float64
	// Delta is the sampling interval.
	Delta time.Duration

	env    proto.Env
	prevK  int64
	tickFn func()
}

func (p *Pacer) start(env proto.Env) {
	p.env = env
	if p.Delta == 0 {
		p.Delta = time.Millisecond
	}
	p.tickFn = p.tick
	p.arm()
}

func (p *Pacer) arm() { proto.AfterFree(p.env, p.Delta, p.tickFn) }

func (p *Pacer) tick() {
	if !p.Agent.IsCoordinator() {
		// Not (or no longer) this ring's coordinator — a failover may have
		// moved the role, or Phase 1 is still running. Keep sampling so a
		// later takeover resumes pacing from a fresh interval. ProposeBatch
		// no-ops in this state anyway, so the guard changes no schedule.
		p.prevK = p.Agent.InstancesStarted()
		p.arm()
		return
	}
	// µ = real instances started since the previous tick. prevK is
	// resampled after proposing the skip so the skip instance itself
	// never counts toward the next interval's rate.
	mu := p.Agent.InstancesStarted() - p.prevK
	target := int64(p.Lambda * p.Delta.Seconds())
	if mu < target {
		p.Agent.ProposeBatch(SkipBatch(target - mu))
	}
	p.prevK = p.Agent.InstancesStarted()
	p.arm()
}

// Merger performs the deterministic merge of Chapter 5, Algorithm 1
// (Task 4): in ascending group order, consume M consensus instances from
// each subscribed ring, delivering application values and skipping skip
// instances; block whenever the current ring has nothing decided yet.
type Merger struct {
	// M is the number of consecutive instances taken per ring per turn.
	M int64
	// ExecCost is the per-value processing cost at this learner.
	ExecCost time.Duration
	// Deliver receives every application value in merged order.
	Deliver core.DeliverFunc
	// Trace, if set, folds the merged delivery sequence into a
	// delivery-equivalence digest (see core.DelivTrace). Pure observation:
	// it sends nothing and consumes no simulated time.
	Trace *core.DelivTrace
	// Dedup, if set, suppresses stamped values whose (client, seq) the
	// merged sequence already delivered — a client retry that won a second
	// consensus instance, possibly on a different ring. The decision is a
	// pure function of the merged order, so every subscriber suppresses
	// the same values. Nil (the default) disables the check.
	Dedup *core.DedupTable

	rings  []int
	queues []tokenQueue // parallel to rings
	cur    int
	budget int64
	busy   bool
	seq    int64 // merged delivery counter, the Trace's instance axis

	env proto.Env

	// DeliveredBytes/DeliveredMsgs count application payload delivered.
	DeliveredBytes int64
	DeliveredMsgs  int64
	LatencySum     time.Duration
	LatencyCount   int64
	// ReceivedBytes counts payload received per ring before merging.
	ReceivedBytes map[int]int64
	// DupSuppressed counts values the Dedup table suppressed.
	DupSuppressed int64
}

type token struct {
	n   int64 // virtual instances remaining
	val core.Batch
}

// tokenQueue is the merge buffer of one subscribed ring: a reusable FIFO,
// since this is the learner buffer whose occupancy the λ experiments
// measure — it must tolerate unbounded growth without allocating per token.
type tokenQueue = core.FIFO[token]

// NewMerger creates a merger over the given subscribed ring ids.
func NewMerger(rings []int, m int64) *Merger {
	sorted := append([]int(nil), rings...)
	sort.Ints(sorted)
	if m <= 0 {
		m = 1
	}
	return &Merger{
		M:             m,
		rings:         sorted,
		queues:        make([]tokenQueue, len(sorted)),
		budget:        m,
		ReceivedBytes: make(map[int]int64),
	}
}

// queueOf returns the merge queue of ring id (rings are few; linear scan).
func (mg *Merger) queueOf(ring int) *tokenQueue {
	for i, r := range mg.rings {
		if r == ring {
			return &mg.queues[i]
		}
	}
	return nil
}

func (mg *Merger) attach(ring int, a *ringpaxos.MAgent) {
	a.DeliverBatch = func(_ int64, b core.Batch) { mg.Push(ring, b) }
}

func (mg *Merger) start(env proto.Env) { mg.env = env }

// Start binds the merger to an environment. Deployments that wire mergers
// manually (P-SMR fans one ring out to several workers) call it directly;
// Node.SetMerger does it automatically.
func (mg *Merger) Start(env proto.Env) { mg.start(env) }

// Push feeds one decided consensus instance from ring into the merge.
// Instances must be pushed in each ring's decision order.
func (mg *Merger) Push(ring int, b core.Batch) {
	n, isSkip := skipCount(b)
	if isSkip {
		b = core.Batch{}
	} else {
		mg.ReceivedBytes[ring] += int64(b.Size())
	}
	if q := mg.queueOf(ring); q != nil {
		q.Push(token{n: n, val: b})
	}
	mg.drain()
}

// Buffered returns the number of buffered (not yet merged) tokens across
// rings — the learner buffer whose overflow the λ experiments provoke.
func (mg *Merger) Buffered() int {
	n := 0
	for i := range mg.queues {
		n += mg.queues[i].Len()
	}
	return n
}

// drain advances the merge as far as possible; value-carrying tokens pass
// through the node's CPU at ExecCost per value.
func (mg *Merger) drain() {
	if mg.busy {
		return
	}
	for {
		q := &mg.queues[mg.cur]
		if q.Len() == 0 {
			return // block until the current ring makes progress
		}
		t := q.Front()
		use := t.n
		if use > mg.budget {
			use = mg.budget
		}
		t.n -= use
		mg.budget -= use
		done := t.n == 0
		val := t.val
		if done {
			q.Pop()
		}
		if mg.budget == 0 {
			mg.cur = (mg.cur + 1) % len(mg.rings)
			mg.budget = mg.M
		}
		if len(val.Vals) > 0 && done {
			if mg.ExecCost > 0 {
				mg.busy = true
				mg.env.Work(time.Duration(len(val.Vals))*mg.ExecCost, func() {
					mg.busy = false
					mg.deliverBatch(val)
					mg.drain()
				})
				return
			}
			mg.deliverBatch(val)
		}
	}
}

func (mg *Merger) deliverBatch(b core.Batch) {
	for _, v := range b.Vals {
		if mg.Dedup != nil && v.Client != 0 && !mg.Dedup.Commit(v.Client, v.Seq, mg.seq) {
			mg.DupSuppressed++
			continue
		}
		mg.DeliveredBytes += int64(v.Bytes)
		mg.DeliveredMsgs++
		if v.Born != 0 {
			mg.LatencySum += mg.env.Now() - v.Born
			mg.LatencyCount++
		}
		if mg.Trace != nil {
			mg.Trace.Note(mg.env.Now(), mg.seq, v)
		}
		mg.seq++
		if mg.Deliver != nil {
			mg.Deliver(0, v)
		}
	}
}
