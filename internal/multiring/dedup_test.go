package multiring

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// mergeEnv is the minimal environment a Merger with ExecCost 0 touches.
type mergeEnv struct{}

func (mergeEnv) ID() proto.NodeID                    { return 9 }
func (mergeEnv) Now() time.Duration                  { return 0 }
func (mergeEnv) Rand() *rand.Rand                    { return rand.New(rand.NewSource(1)) }
func (mergeEnv) Send(proto.NodeID, proto.Message)    {}
func (mergeEnv) SendUDP(proto.NodeID, proto.Message) {}
func (mergeEnv) Multicast(proto.GroupID, proto.Message) {
}
func (mergeEnv) After(time.Duration, func()) proto.Timer { return nil }
func (mergeEnv) Work(_ time.Duration, fn func())         { fn() }
func (mergeEnv) DiskWrite(_ int, fn func())              { fn() }

func stampedBatch(id core.ValueID, client, seq int64) core.Batch {
	return core.Batch{Vals: []core.Value{{ID: id, Bytes: 8, Client: client, Seq: seq}}}
}

// TestMergerDedupSuppressesCrossRingRetry: a client retry can win a second
// consensus instance on a DIFFERENT ring than the original; the merged
// sequence is the only place both copies meet, so the merger's table is
// what keeps multi-ring delivery exactly-once.
func TestMergerDedupSuppressesCrossRingRetry(t *testing.T) {
	mg := NewMerger([]int{0, 1}, 1)
	mg.Dedup = core.NewDedupTable()
	var got []core.ValueID
	mg.Deliver = func(_ int64, v core.Value) { got = append(got, v.ID) }
	mg.Start(mergeEnv{})

	mg.Push(0, stampedBatch(1, 7, 1))
	mg.Push(1, stampedBatch(2, 8, 1))
	mg.Push(0, stampedBatch(3, 7, 1)) // retry of (7,1), ordered on ring 0 again
	mg.Push(1, stampedBatch(4, 7, 1)) // straggling retry on the OTHER ring
	mg.Push(0, stampedBatch(5, 7, 2))
	mg.Push(1, stampedBatch(6, 8, 2))

	want := []core.ValueID{1, 2, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
	if mg.DupSuppressed != 2 || mg.DeliveredMsgs != 4 {
		t.Fatalf("suppressed=%d delivered=%d, want 2/4", mg.DupSuppressed, mg.DeliveredMsgs)
	}
}

// TestMergerDedupOffByDefault: a nil table passes duplicates through
// untouched (existing deployments see no behavior change).
func TestMergerDedupOffByDefault(t *testing.T) {
	mg := NewMerger([]int{0}, 1)
	n := 0
	mg.Deliver = func(_ int64, v core.Value) { n++ }
	mg.Start(mergeEnv{})
	mg.Push(0, stampedBatch(1, 7, 1))
	mg.Push(0, stampedBatch(2, 7, 1))
	if n != 2 || mg.DupSuppressed != 0 {
		t.Fatalf("delivered=%d suppressed=%d, want 2/0", n, mg.DupSuppressed)
	}
}
