package ringpaxos

// Crash+restart recovery: write-ahead-log replay for acceptors and
// coordinators, the honest DurVolatile stall, snapshot catch-up past the
// garbage-collection trim floor, and the post-restart ring-state catch-up
// that keeps a restarted node from churning a reconfigured ring. All
// schedules are deterministic fault.Schedule events on the simulated LAN.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lan"
	"repro/internal/proto"
	"repro/internal/wal"
)

// deployMDurable wires an M-Ring deployment (ring 0..nRing-1, learners
// 100/101, proposer 200) with the given durability; ring members get
// write-ahead logs when dur is DurWAL. The logs are returned keyed by
// node so tests can inspect replay counters.
func deployMDurable(t *testing.T, dur Durability, evict time.Duration, fo Failover,
	seed int64, sched *fault.Schedule) (*mDeploy, map[proto.NodeID]*wal.Log) {
	t.Helper()
	cfg := MConfig{Durability: dur, GCEvict: evict, Failover: fo}
	d := &mDeploy{
		l:      lan.New(lan.DefaultConfig(), seed),
		agents: make(map[proto.NodeID]*MAgent),
		deliv:  make(map[proto.NodeID][]core.ValueID),
		spec:   make(map[proto.NodeID][]core.ValueID),
	}
	for i := 0; i < 3; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
	}
	d.learners = []proto.NodeID{100, 101}
	cfg.Learners = d.learners
	cfg.Group = 1
	logs := make(map[proto.NodeID]*wal.Log)
	add := func(id proto.NodeID) {
		a := &MAgent{Cfg: cfg}
		if dur == DurWAL && ringContains(cfg.Ring, id) {
			logs[id] = &wal.Log{}
			a.Log = logs[id]
		}
		a.Deliver = func(inst int64, v core.Value) {
			d.deliv[id] = append(d.deliv[id], v.ID)
		}
		d.agents[id] = a
		d.l.AddNode(id, a)
		d.l.Subscribe(1, id)
	}
	for _, id := range cfg.Ring {
		add(id)
	}
	for _, id := range d.learners {
		add(id)
	}
	d.prop = &MAgent{Cfg: cfg}
	d.agents[200] = d.prop
	d.l.AddNode(200, d.prop)
	d.l.Subscribe(1, 200)
	d.l.InstallFaults(sched)
	d.l.Start()
	return d, logs
}

// pump drives a steady proposal stream from the deployment's proposer.
func pumpM(d *mDeploy, stop *bool) {
	env := d.l.Node(200)
	n := 0
	var tick func()
	tick = func() {
		if *stop {
			return
		}
		for i := 0; i < 3; i++ {
			n++
			d.prop.Propose(core.Value{ID: core.ValueID(n), Bytes: 512})
		}
		env.After(2*time.Millisecond, tick)
	}
	tick()
}

// TestMRingWALRecovery crashes a mid-ring acceptor with fault.Lose under
// DurWAL: its promises and votes come back by log replay, the ring keeps
// the m-quorum, and ordering resumes — versus DurVolatile below, where
// the same crash retires the acceptor and stalls the ring for good.
func TestMRingWALRecovery(t *testing.T) {
	sched := fault.New(1).CrashFor(100*time.Millisecond, 150*time.Millisecond, 1, fault.Lose)
	d, logs := deployMDurable(t, DurWAL, 0, Failover{}, 1, sched)
	stop := false
	pumpM(d, &stop)
	d.l.Run(time.Second)
	stop = true
	d.l.Run(200 * time.Millisecond)
	checkTotalOrder(t, d.deliv, d.learners, -1)
	if logs[1].Replayed() == 0 {
		t.Fatal("crashed acceptor replayed no WAL records")
	}
	if logs[1].Appends() == 0 || logs[1].Bytes() == 0 {
		t.Fatalf("acceptor WAL saw no appends: appends=%d bytes=%d", logs[1].Appends(), logs[1].Bytes())
	}
	// Ordering must have resumed after the restart: far more deliveries
	// than the ~150 the pre-crash window can account for.
	if n := len(d.deliv[100]); n < 400 {
		t.Fatalf("only %d deliveries; recovery did not resume ordering", n)
	}
	if d.agents[1].retired {
		t.Fatal("WAL-recovered acceptor must not retire")
	}
}

// TestMRingVolatileAcceptorStalls runs the same crash under DurVolatile:
// the restarted acceptor must retire (classic Paxos forbids an amnesiac
// acceptor), and with the m-quorum broken and no failover configured the
// ring stops deciding — honestly surfacing what losing stable storage
// costs. Safety still holds: no learner diverges.
func TestMRingVolatileAcceptorStalls(t *testing.T) {
	sched := fault.New(1).CrashFor(100*time.Millisecond, 150*time.Millisecond, 1, fault.Lose)
	d, _ := deployMDurable(t, DurVolatile, 0, Failover{}, 1, sched)
	stop := false
	pumpM(d, &stop)
	d.l.Run(time.Second)
	stop = true
	d.l.Run(200 * time.Millisecond)
	checkTotalOrder(t, d.deliv, d.learners, -1)
	if !d.agents[1].retired {
		t.Fatal("volatile acceptor did not retire after losing its state")
	}
	// Deliveries must have stopped near the crash point: the pre-crash
	// ~100 ms of traffic, nothing close to the WAL run's full second.
	if n := len(d.deliv[100]); n == 0 || n >= 400 {
		t.Fatalf("%d deliveries; want a stall after the 100 ms crash", n)
	}
}

// deployUDurable wires a U-Ring deployment (4 nodes, 3 acceptors, every
// process a learner) with the given durability; acceptors get WALs when
// dur is DurWAL.
func deployUDurable(dur Durability, seed int64, sched *fault.Schedule) (*uDeploy, map[proto.NodeID]*wal.Log) {
	cfg := UConfig{NumAcceptors: 3, Durability: dur}
	d := &uDeploy{
		l:     lan.New(lan.DefaultConfig(), seed),
		deliv: make(map[proto.NodeID][]core.ValueID),
	}
	for i := 0; i < 4; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	logs := make(map[proto.NodeID]*wal.Log)
	for i := 0; i < 4; i++ {
		id := proto.NodeID(i)
		a := &UAgent{Cfg: cfg}
		if dur == DurWAL && i < cfg.NumAcceptors {
			logs[id] = &wal.Log{}
			a.Log = logs[id]
		}
		a.Deliver = func(inst int64, v core.Value) {
			d.deliv[id] = append(d.deliv[id], v.ID)
		}
		d.agents = append(d.agents, a)
		d.l.AddNode(id, a)
	}
	d.l.InstallFaults(sched)
	d.l.Start()
	return d, logs
}

func pumpU(d *uDeploy, stop *bool) {
	env := d.l.Node(3)
	n := 0
	var tick func()
	tick = func() {
		if *stop {
			return
		}
		for i := 0; i < 3; i++ {
			n++
			d.agents[3].Propose(core.Value{ID: core.ValueID(n), Bytes: 512})
		}
		env.After(2*time.Millisecond, tick)
	}
	tick()
}

// TestURingWALCoordinatorRecovery crashes the U-Ring coordinator with
// fault.Lose under DurWAL and no failover: on restart it replays its log
// — including the promise that proves its own round — and re-enters
// Phase 1 one round above it, resuming coordinatorship. The ring, dead
// while the coordinator was down, comes back to life.
func TestURingWALCoordinatorRecovery(t *testing.T) {
	sched := fault.New(1).CrashFor(100*time.Millisecond, 150*time.Millisecond, 0, fault.Lose)
	d, logs := deployUDurable(DurWAL, 1, sched)
	stop := false
	pumpU(d, &stop)
	d.l.Run(time.Second)
	stop = true
	d.l.Run(200 * time.Millisecond)
	if !d.agents[0].IsCoordinator() {
		t.Fatal("WAL-recovered coordinator did not resume coordinatorship")
	}
	if logs[0].Replayed() == 0 {
		t.Fatal("crashed coordinator replayed no WAL records")
	}
	checkTotalOrder(t, d.deliv, []proto.NodeID{1, 2, 3}, -1)
	if n := len(d.deliv[3]); n < 400 {
		t.Fatalf("only %d deliveries; the ring did not resume after replay", n)
	}
}

// TestURingVolatileCoordinatorStalls runs the same crash under
// DurVolatile: the restarted coordinator retires, drops proposals
// addressed to the coordinatorship it cannot prove, and with no failover
// the whole ring stalls — the mexos ceiling ("does not store anything
// persistently, so cannot handle crash+restart") made measurable.
func TestURingVolatileCoordinatorStalls(t *testing.T) {
	sched := fault.New(1).CrashFor(100*time.Millisecond, 150*time.Millisecond, 0, fault.Lose)
	d, _ := deployUDurable(DurVolatile, 1, sched)
	stop := false
	pumpU(d, &stop)
	d.l.Run(time.Second)
	stop = true
	d.l.Run(200 * time.Millisecond)
	if d.agents[0].IsCoordinator() {
		t.Fatal("amnesiac coordinator resumed coordinatorship without a log")
	}
	if !d.agents[0].retired {
		t.Fatal("volatile coordinator did not retire")
	}
	checkTotalOrder(t, d.deliv, []proto.NodeID{1, 2, 3}, -1)
	if n := len(d.deliv[3]); n == 0 || n >= 400 {
		t.Fatalf("%d deliveries; want a stall after the 100 ms crash", n)
	}
}

// TestMRingSnapshotCatchUp crashes a LEARNER long enough for staleness
// eviction (GCEvict) to un-pin the trim floor: by the time the learner
// returns, the instances it needs were garbage-collected everywhere, its
// retransmission requests fall below the floor, and the acceptor answers
// with a state snapshot. The learner installs it, jumps its frontier and
// resumes ordered delivery — its post-snapshot sequence must align with
// the suffix of a healthy learner's sequence.
func TestMRingSnapshotCatchUp(t *testing.T) {
	sched := fault.New(1).CrashFor(200*time.Millisecond, 300*time.Millisecond, 101, fault.Lose)
	d, _ := deployMDurable(t, DurWAL, 100*time.Millisecond, Failover{}, 1, sched)
	stop := false
	pumpM(d, &stop)
	d.l.Run(time.Second)
	stop = true
	d.l.Run(200 * time.Millisecond)
	back := d.agents[101]
	if back.SnapshotsInstalled == 0 {
		t.Fatal("returning learner installed no snapshot")
	}
	healthy, caught := d.deliv[100], d.deliv[101]
	if len(caught) == 0 {
		t.Fatal("returning learner delivered nothing after the snapshot")
	}
	// The caught-up learner's post-crash deliveries must be a contiguous
	// slice of the healthy learner's sequence (prefix consistency modulo
	// the snapshotted gap).
	tail := caught[len(caught)-200:]
	start := -1
	for i, v := range healthy {
		if v == tail[0] {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("caught-up learner's tail head %d not in healthy sequence", tail[0])
	}
	for i, v := range tail {
		if start+i >= len(healthy) || healthy[start+i] != v {
			t.Fatalf("caught-up learner diverges at tail offset %d", i)
		}
	}
	if back.NextDeliver() <= d.agents[0].versions.Floor()-1 {
		t.Fatalf("frontier %d did not pass the trim floor %d", back.NextDeliver(), d.agents[0].versions.Floor())
	}
}

// TestMRingRestartRingStateCatchUp is the failover follow-on regression
// test: node 0 crashes and restarts AFTER the ring was reconfigured
// around a permanently dead coordinator. Without the ring-state catch-up
// the restarted node would aim its failure detector at the stale
// pre-crash layout, suspect its long-dead ex-predecessor and nominate a
// takeover of a ring that already moved on. With it, the node asks a
// live member for the current layout before arming the detector, adopts
// it, and the settled coordinator stays unchallenged.
func TestMRingRestartRingStateCatchUp(t *testing.T) {
	sched := fault.New(1).
		CrashFor(100*time.Millisecond, 300*time.Millisecond, 0, fault.Lose).
		Crash(150*time.Millisecond, 3, fault.Lose)
	cfg := MConfig{Group: 1, Failover: testFailover}
	for i := 0; i < 4; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
	}
	cfg.Learners = []proto.NodeID{100}
	d := &mDeploy{
		l:      lan.New(lan.DefaultConfig(), 1),
		agents: make(map[proto.NodeID]*MAgent),
		deliv:  make(map[proto.NodeID][]core.ValueID),
		spec:   make(map[proto.NodeID][]core.ValueID),
	}
	d.learners = cfg.Learners
	add := func(id proto.NodeID) {
		a := &MAgent{Cfg: cfg}
		a.Deliver = func(inst int64, v core.Value) {
			d.deliv[id] = append(d.deliv[id], v.ID)
		}
		d.agents[id] = a
		d.l.AddNode(id, a)
		d.l.Subscribe(1, id)
	}
	for _, id := range cfg.Ring {
		add(id)
	}
	add(100)
	d.prop = d.agents[100]
	d.l.InstallFaults(sched)
	d.l.Start()
	// Let the election settle while node 0 is still down, note the
	// winner's round, then let node 0 restart and observe for a while.
	d.l.Run(390 * time.Millisecond)
	if got := coordinators(d.agents, 1, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("coordinators before restart: %v, want [2]", got)
	}
	settled := d.agents[2].crnd
	d.l.Run(610 * time.Millisecond)
	if got := coordinators(d.agents, 0, 1, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("coordinators after restart: %v, want [2]", got)
	}
	if d.agents[2].crnd != settled {
		t.Fatalf("restarted node forced a re-election: round %d -> %d", settled, d.agents[2].crnd)
	}
	if got := d.agents[0].ring; !sameRing(got, d.agents[2].ring) {
		t.Fatalf("restarted node's ring %v, want the reconfigured %v", got, d.agents[2].ring)
	}
	if d.agents[0].fo.needRing {
		t.Fatal("ring-state catch-up never completed")
	}
}
