package ringpaxos

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
)

// mDeploy wires an M-Ring Paxos group: ring acceptors 0..nRing-1 (node
// nRing-1 is the coordinator), learners 100+i, proposer 200.
type mDeploy struct {
	l        *lan.LAN
	agents   map[proto.NodeID]*MAgent
	prop     *MAgent
	learners []proto.NodeID
	deliv    map[proto.NodeID][]core.ValueID
	spec     map[proto.NodeID][]core.ValueID
}

func deployM(t testing.TB, cfg MConfig, nRing, nLearn int, lc lan.Config, seed int64) *mDeploy {
	if t != nil {
		t.Helper()
	}
	d := &mDeploy{
		l:      lan.New(lc, seed),
		agents: make(map[proto.NodeID]*MAgent),
		deliv:  make(map[proto.NodeID][]core.ValueID),
		spec:   make(map[proto.NodeID][]core.ValueID),
	}
	for i := 0; i < nRing; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
	}
	for i := 0; i < nLearn; i++ {
		d.learners = append(d.learners, proto.NodeID(100+i))
	}
	cfg.Learners = d.learners
	cfg.Group = 1
	add := func(id proto.NodeID) *MAgent {
		a := &MAgent{Cfg: cfg}
		a.Deliver = func(inst int64, v core.Value) {
			d.deliv[id] = append(d.deliv[id], v.ID)
		}
		a.SpecDeliver = func(inst int64, v core.Value) {
			d.spec[id] = append(d.spec[id], v.ID)
		}
		d.agents[id] = a
		d.l.AddNode(id, a)
		d.l.Subscribe(1, id)
		return a
	}
	for _, id := range cfg.Ring {
		add(id)
	}
	for _, id := range d.learners {
		add(id)
	}
	d.prop = &MAgent{Cfg: cfg}
	d.agents[200] = d.prop
	d.l.AddNode(200, d.prop)
	d.l.Start()
	return d
}

func (d *mDeploy) propose(n, bytes int) {
	for i := 0; i < n; i++ {
		d.prop.Propose(core.Value{ID: core.ValueID(i + 1), Bytes: bytes})
	}
}

func checkTotalOrder(t *testing.T, deliv map[proto.NodeID][]core.ValueID, learners []proto.NodeID, want int) {
	t.Helper()
	var ref []core.ValueID
	for _, id := range learners {
		got := deliv[id]
		if want >= 0 && len(got) != want {
			t.Fatalf("learner %d delivered %d values, want %d", id, len(got), want)
		}
		seen := make(map[core.ValueID]bool)
		for _, v := range got {
			if seen[v] {
				t.Fatalf("learner %d delivered %d twice", id, v)
			}
			seen[v] = true
		}
		if ref == nil {
			ref = got
			continue
		}
		n := len(ref)
		if len(got) < n {
			n = len(got)
		}
		for i := 0; i < n; i++ {
			if got[i] != ref[i] {
				t.Fatalf("order diverges at %d: %d vs %d", i, got[i], ref[i])
			}
		}
	}
}

func TestMRingBasicAgreement(t *testing.T) {
	d := deployM(t, MConfig{}, 2, 3, lan.DefaultConfig(), 1)
	d.propose(200, 512)
	d.l.Run(2 * time.Second)
	checkTotalOrder(t, d.deliv, d.learners, 200)
}

func TestMRingLargerRing(t *testing.T) {
	d := deployM(t, MConfig{}, 5, 2, lan.DefaultConfig(), 2)
	d.propose(100, 1024)
	d.l.Run(2 * time.Second)
	checkTotalOrder(t, d.deliv, d.learners, 100)
}

func TestMRingUnderMessageLoss(t *testing.T) {
	lc := lan.DefaultConfig()
	lc.LossRate = 0.05 // 5% datagram loss
	d := deployM(t, MConfig{}, 3, 2, lc, 3)
	d.propose(150, 512)
	d.l.Run(5 * time.Second)
	checkTotalOrder(t, d.deliv, d.learners, 150)
}

func TestMRingHeavyLossStillConsistent(t *testing.T) {
	lc := lan.DefaultConfig()
	lc.LossRate = 0.25
	d := deployM(t, MConfig{}, 2, 2, lc, 4)
	d.propose(60, 512)
	d.l.Run(10 * time.Second)
	checkTotalOrder(t, d.deliv, d.learners, 60)
}

func TestMRingDiskSync(t *testing.T) {
	d := deployM(t, MConfig{DiskSync: true}, 3, 2, lan.DefaultConfig(), 1)
	d.propose(80, 512)
	d.l.Run(3 * time.Second)
	checkTotalOrder(t, d.deliv, d.learners, 80)
	for i := 0; i < 3; i++ {
		if d.l.Node(proto.NodeID(i)).Stats().DiskWrites == 0 {
			t.Fatalf("ring acceptor %d wrote nothing in DiskSync mode", i)
		}
	}
}

func TestMRingSpeculativeDelivery(t *testing.T) {
	d := deployM(t, MConfig{Speculative: true}, 2, 2, lan.DefaultConfig(), 1)
	d.propose(100, 512)
	d.l.Run(2 * time.Second)
	checkTotalOrder(t, d.deliv, d.learners, 100)
	for _, id := range d.learners {
		sp := d.spec[id]
		fin := d.deliv[id]
		if len(sp) != len(fin) {
			t.Fatalf("learner %d: %d speculative vs %d final deliveries", id, len(sp), len(fin))
		}
		// In the failure-free run the speculative order must match the
		// final order (the coordinator's order is always confirmed,
		// §4.2.1).
		for i := range sp {
			if sp[i] != fin[i] {
				t.Fatalf("speculative order diverges from final at %d", i)
			}
		}
	}
}

func TestMRingFlowControlShrinksWindow(t *testing.T) {
	cfg := MConfig{
		ExecCost:      200 * time.Microsecond, // slow learner execution
		FlowThreshold: 8,
		Window:        64,
	}
	d := deployM(t, cfg, 2, 1, lan.DefaultConfig(), 1)
	// Offer far more than the learner can process.
	stop := false
	n := 0
	env := d.l.Node(200)
	var pump func()
	pump = func() {
		if stop {
			return
		}
		for i := 0; i < 20; i++ {
			n++
			d.prop.Propose(core.Value{ID: core.ValueID(n), Bytes: 512})
		}
		env.After(time.Millisecond, pump)
	}
	pump()
	d.l.Run(2 * time.Second)
	stop = true
	coord := d.agents[proto.NodeID(1)]
	if coord.Window() >= cfg.Window {
		t.Fatalf("window never shrank: %d", coord.Window())
	}
	// Deliveries must be totally ordered regardless.
	checkTotalOrder(t, d.deliv, d.learners, -1)
	if len(d.deliv[d.learners[0]]) == 0 {
		t.Fatal("no deliveries under flow control")
	}
}

func TestMRingGarbageCollection(t *testing.T) {
	cfg := MConfig{GCInterval: 5 * time.Millisecond}
	d := deployM(t, cfg, 2, 2, lan.DefaultConfig(), 1)
	d.propose(400, 1024)
	d.l.Run(2 * time.Second)
	checkTotalOrder(t, d.deliv, d.learners, 400)
	for i := 0; i < 2; i++ {
		a := d.agents[proto.NodeID(i)]
		// ~400 KB proposed; after GC acceptors should hold far less.
		if a.StoreBytes() > 64<<10 {
			t.Fatalf("acceptor %d still stores %d bytes after GC", i, a.StoreBytes())
		}
	}
}

func TestMRingCoordinatorFailover(t *testing.T) {
	d := deployM(t, MConfig{}, 3, 2, lan.DefaultConfig(), 1)
	d.propose(50, 512)
	d.l.Run(time.Second)
	if len(d.deliv[d.learners[0]]) != 50 {
		t.Fatalf("pre-crash deliveries: %d", len(d.deliv[d.learners[0]]))
	}
	// Crash the coordinator (node 2, last in ring). Acceptor 1 takes over
	// with a ring formed from the survivors; it becomes the last element.
	d.l.Node(2).SetDown(true)
	newRing := []proto.NodeID{0, 1}
	for _, a := range d.agents {
		a.Cfg.Ring = newRing
	}
	d.agents[1].TakeOver(newRing)
	d.l.Run(200 * time.Millisecond)
	for i := 0; i < 30; i++ {
		d.agents[1].Propose(core.Value{ID: core.ValueID(1000 + i), Bytes: 512})
	}
	d.l.Run(3 * time.Second)
	checkTotalOrder(t, d.deliv, d.learners, 80)
}

func TestMRingPartitionedDelivery(t *testing.T) {
	// Two partitions; learner A subscribes to partition 0, learner B to
	// partition 1, learner C to both.
	cfg := MConfig{
		PartGroups: []proto.GroupID{10, 11},
		LearnerParts: map[proto.NodeID]uint64{
			100: 1 << 0,
			101: 1 << 1,
			102: 1<<0 | 1<<1,
		},
	}
	d := deployM(t, cfg, 2, 3, lan.DefaultConfig(), 1)
	// Wire the partition groups: acceptors listen on all addresses
	// (§4.2.2); learners only on their partitions.
	for i := 0; i < 2; i++ {
		d.l.Subscribe(10, proto.NodeID(i))
		d.l.Subscribe(11, proto.NodeID(i))
	}
	d.l.Subscribe(10, 100)
	d.l.Subscribe(11, 101)
	d.l.Subscribe(10, 102)
	d.l.Subscribe(11, 102)
	// Interleave single-partition commands; ids encode the partition.
	for i := 0; i < 120; i++ {
		p := uint64(1) << (i % 2)
		d.prop.Propose(core.Value{ID: core.ValueID(i + 1), Bytes: 512, PartMask: p})
	}
	d.l.Run(3 * time.Second)
	a, b, c := d.deliv[100], d.deliv[101], d.deliv[102]
	if len(a) != 60 || len(b) != 60 || len(c) != 120 {
		t.Fatalf("deliveries: |A|=%d |B|=%d |C|=%d, want 60/60/120", len(a), len(b), len(c))
	}
	for _, v := range a {
		if (int64(v)-1)%2 != 0 {
			t.Fatalf("learner A delivered partition-1 value %d", v)
		}
	}
	for _, v := range b {
		if (int64(v)-1)%2 != 1 {
			t.Fatalf("learner B delivered partition-0 value %d", v)
		}
	}
	// C's order restricted to each partition must match A and B (uniform
	// partial order of atomic multicast).
	var cA, cB []core.ValueID
	for _, v := range c {
		if (int64(v)-1)%2 == 0 {
			cA = append(cA, v)
		} else {
			cB = append(cB, v)
		}
	}
	for i := range a {
		if a[i] != cA[i] {
			t.Fatalf("partition-0 order diverges between A and C at %d", i)
		}
	}
	for i := range b {
		if b[i] != cB[i] {
			t.Fatalf("partition-1 order diverges between B and C at %d", i)
		}
	}
}

// Property: random loss rates, sizes and counts never break total order or
// duplicate-freedom.
func TestQuickMRingTotalOrder(t *testing.T) {
	f := func(seed int64, nVals uint8, loss uint8) bool {
		n := int(nVals%50) + 1
		lc := lan.DefaultConfig()
		lc.LossRate = float64(loss%20) / 100
		d := deployM(nil, MConfig{}, 2, 2, lc, seed)
		for i := 0; i < n; i++ {
			d.prop.Propose(core.Value{ID: core.ValueID(i + 1), Bytes: 256})
		}
		d.l.Run(8 * time.Second)
		for _, id := range d.learners {
			if len(d.deliv[id]) != n {
				return false
			}
		}
		x, y := d.deliv[d.learners[0]], d.deliv[d.learners[1]]
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMRingThroughputNearWireSpeed(t *testing.T) {
	// §3.5.3: M-Ring Paxos reaches ~90% of a gigabit network.
	d := deployM(t, MConfig{}, 3, 5, lan.DefaultConfig(), 1)
	stop := false
	n := 0
	env := d.l.Node(200)
	var pump func()
	pump = func() {
		if stop {
			return
		}
		// 16 KB per 140 µs ≈ 935 Mbps offered (just under wire speed; the
		// paper's clients likewise throttle below saturation, §3.3.6).
		for i := 0; i < 2; i++ {
			n++
			d.prop.Propose(core.Value{ID: core.ValueID(n), Bytes: 8192})
		}
		env.After(140*time.Microsecond, pump)
	}
	pump()
	d.l.Run(time.Second)
	stop = true
	mbps := float64(d.agents[d.learners[0]].DeliveredBytes) * 8 / 1e6
	t.Logf("M-Ring Paxos delivery throughput: %.0f Mbps", mbps)
	if mbps < 600 {
		t.Fatalf("throughput %.0f Mbps too low for M-Ring Paxos", mbps)
	}
}
