package ringpaxos

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/wal"
)

// UConfig configures a U-Ring Paxos deployment (Algorithm 3). All processes
// — proposers, acceptors and learners — are laid out on one directed ring
// connected by reliable FIFO channels.
type UConfig struct {
	// Ring lists every process in ring order. The coordinator is the FIRST
	// acceptor; acceptors must occupy consecutive positions starting at the
	// coordinator ("for simplicity of discussion, it is assumed that
	// acceptors are lined up one after the other in the ring", §3.3.3).
	Ring []proto.NodeID
	// NumAcceptors is how many processes, starting at ring position 0, act
	// as acceptors (2f+1).
	NumAcceptors int
	// Learners deliver decided values (typically all ring members).
	Learners []proto.NodeID

	// Window is the maximum number of simultaneously open instances
	// (§3.3.6: U-Ring Paxos limits outstanding consensus instances).
	Window int
	// BatchBytes is the packet size (paper: 32 KB for U-Ring Paxos).
	BatchBytes int
	// BatchDelay flushes a non-empty batch after this delay.
	BatchDelay time.Duration
	// Retry is the Phase 1 retransmission timeout.
	Retry time.Duration
	// DiskSync makes acceptors persist votes before forwarding Phase 2.
	// Along the ring, writes happen sequentially (§3.5.5).
	DiskSync bool
	// ExecCost is the learner-side processing cost per delivered value.
	// U-Ring Paxos flow control lets a learner process a decision BEFORE
	// forwarding it (§3.3.6), so a slow learner backpressures the ring.
	ExecCost time.Duration
	// GCInterval is the shared learner-version garbage collection period
	// (§3.3.7, extracted from M-Ring Paxos): every GCInterval each learner
	// pipelines a proto.VersionReport around the ring; once every learner
	// has reported, acceptors trim their vote logs up to the minimum
	// reported instance. Zero resolves to DefaultGCInterval — GC is ON by
	// default, so library consumers get bounded memory without opting in.
	// A negative value disables GC (the pre-default seed behavior: vote
	// logs grow by one entry per consensus instance forever).
	GCInterval time.Duration
	// RecycleBatches lets the coordinator draw batch backing arrays from
	// its free list and reclaim them when garbage collection trims the
	// instance (plus one quarantine round). Requires GCInterval > 0 and
	// learners that consume delivered batches synchronously.
	RecycleBatches bool
	// Failover enables the liveness layer: ring-neighbor heartbeats,
	// deterministic suspicion, election of the highest-id surviving
	// acceptor as coordinator, and ring reconfiguration around the dead
	// node. The Phase 1 quorum stays a majority of the ORIGINAL 2f+1
	// acceptors, so safety holds across reconfigurations. The zero value
	// disables it — no timer, no message.
	Failover Failover
	// Durability selects what a fault.Lose crash costs this process (see
	// recovery.go). The zero value, DurModeled, keeps the legacy
	// retain-votes semantics and every pre-durability golden. DurWAL
	// additionally requires the agent's Log field to be set.
	Durability Durability
}

func (c *UConfig) defaults() {
	if c.Window == 0 {
		c.Window = 64
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = 32 << 10
	}
	if c.BatchDelay == 0 {
		c.BatchDelay = 500 * time.Microsecond
	}
	if c.Retry == 0 {
		c.Retry = 20 * time.Millisecond
	}
	if c.NumAcceptors == 0 {
		c.NumAcceptors = len(c.Ring)
	}
	if c.GCInterval == 0 {
		c.GCInterval = DefaultGCInterval
	}
	if c.GCInterval < 0 {
		c.GCInterval = 0 // explicit off: no version timer is ever armed
	}
}

// Coordinator returns the first acceptor in the ring.
func (c UConfig) Coordinator() proto.NodeID { return c.Ring[0] }

// uPhase2Pool and uDecisionPool recycle the two messages that pipeline
// around the ring. Each message has exactly one holder at a time — it is
// forwarded pointer-identical from hop to hop — and is recycled by its
// final consumer (the acceptor that converts a Phase 2 into a decision;
// the hop where a decision's revolution completes).
var (
	uPhase2Pool   proto.MsgPool[uPhase2]
	uDecisionPool proto.MsgPool[uDecision]
)

// UAgent is one U-Ring Paxos process.
type UAgent struct {
	Cfg UConfig
	// Deliver is invoked on learners for every value in delivery order.
	Deliver core.DeliverFunc
	// Trace, if set, folds this learner's delivered command sequence into
	// a delivery-equivalence digest (see core.DelivTrace). Pure
	// observation: it sends nothing and consumes no simulated time.
	Trace *core.DelivTrace
	// Log is this process's write-ahead log, required when Cfg.Durability
	// is DurWAL. The deployment owns it (the rig sets it before Start):
	// it survives the agent's crash the way a disk survives a process.
	Log *wal.Log

	env proto.Env

	// coordinator state
	isCoord      bool
	phase1Done   bool
	crnd         int64
	promises     map[proto.NodeID]uPhase1B
	pending      core.ValueSlab
	pendingBytes int
	batchArmed   bool
	batchFn      func()
	next         int64
	openCount    int
	pool         core.BatchPool

	// acceptor state
	rnd   int64
	votes core.InstLog[vote]
	// retired marks a DurVolatile process that restarted after losing its
	// acceptor state: it must never promise or vote again, and it drops
	// client proposals addressed to a coordinatorship it cannot resume
	// (see LoseVolatile). The learner role is unaffected.
	retired bool

	// ring layout state: the live ring and its acceptor-segment length,
	// re-laid-out by failover reconfigurations. ringRnd dedupes circulating
	// ring-change announcements; fo is the failure detector (inert unless
	// Cfg.Failover is enabled).
	ring    []proto.NodeID
	nacc    int
	ringRnd int64
	fo      foState

	// garbage-collection state (shared subsystem, §3.3.7): every ring
	// process tracks learner versions — reports pipeline around the whole
	// ring — and trims its vote log when the floor advances.
	gc         core.VersionTracker
	quarantine [][]core.Value // trimmed pooled arrays awaiting one more GC round
	versionFn  func()

	// learner state
	learned     core.InstLog[core.Batch]
	nextDeliver int64
	// dedup is the exactly-once layer's per-client last-applied-seq table
	// (nil until the first stamped value, zero cost without client
	// sessions); dedupSup is the per-batch suppression scratch.
	dedup    *core.DedupTable
	dedupSup []bool

	// DeliveredBytes/DeliveredMsgs count application payload delivered at
	// this learner.
	DeliveredBytes int64
	DeliveredMsgs  int64
	LatencySum     time.Duration
	LatencyCount   int64
	Latencies      *[]time.Duration
	// DupSuppressed counts stamped commands acked from the dedup table
	// instead of re-executed.
	DupSuppressed int64
}

var _ proto.Handler = (*UAgent)(nil)

// Start implements proto.Handler.
func (a *UAgent) Start(env proto.Env) {
	a.env = env
	a.Cfg.defaults()
	a.ring = a.Cfg.Ring
	a.nacc = a.Cfg.NumAcceptors
	a.promises = make(map[proto.NodeID]uPhase1B)
	a.batchFn = func() { a.batchArmed = false; a.flush() }
	a.versionFn = a.versionTick
	if env.ID() == a.Cfg.Coordinator() {
		a.becomeCoordinator(1, a.Cfg.Ring, a.Cfg.NumAcceptors)
	}
	if a.Cfg.GCInterval > 0 && a.isLearner() {
		proto.AfterFree(a.env, a.Cfg.GCInterval, a.versionFn)
	}
	if a.Cfg.Failover.Enabled() && a.ringIndex() >= 0 {
		a.fo.tickFn = a.failoverTick
		proto.AfterFree(a.env, a.Cfg.Failover.Heartbeat, a.fo.tickFn)
	}
}

func (a *UAgent) ringIndex() int {
	for i, id := range a.ring {
		if id == a.env.ID() {
			return i
		}
	}
	return -1
}

func (a *UAgent) succ() proto.NodeID {
	i := a.ringIndex()
	return a.ring[(i+1)%len(a.ring)]
}

func (a *UAgent) isAcceptor() bool {
	i := a.ringIndex()
	return i >= 0 && i < a.nacc
}

// lastAcceptor reports whether this process is the f-th acceptor after the
// coordinator — the process that detects decisions (Algorithm 3, Task 4).
func (a *UAgent) lastAcceptor() bool {
	return a.ringIndex() == a.nacc-1
}

// IsCoordinator reports whether this agent currently leads the ring with
// a completed Phase 1 (failover-aware).
func (a *UAgent) IsCoordinator() bool { return a.isCoord && a.phase1Done }

// Coordinator returns this agent's current view of the ring coordinator
// (the first ring position; re-laid-out by failover reconfigurations).
func (a *UAgent) Coordinator() proto.NodeID { return a.ring[0] }

// DedupSeq returns the learner's last applied sequence for a client (0
// when unknown) — the dedup table's view, for tests and probes.
func (a *UAgent) DedupSeq(client int64) int64 { return a.dedup.Seq(client) }

func (a *UAgent) isLearner() bool {
	for _, id := range a.Cfg.Learners {
		if id == a.env.ID() {
			return true
		}
	}
	return false
}

func (a *UAgent) becomeCoordinator(minRound int64, ring []proto.NodeID, nacc int) {
	a.isCoord = true
	a.phase1Done = false
	a.promises = make(map[proto.NodeID]uPhase1B)
	a.ring, a.nacc = ring, nacc
	r := (minRound << 10) | int64(a.env.ID())
	if r <= a.crnd {
		r = (((a.crnd >> 10) + 1) << 10) | int64(a.env.ID())
	}
	a.crnd = r
	m := uPhase1A{Rnd: a.crnd}
	if a.fo.tookOver {
		// Propose the reconfigured layout with the round: the surviving
		// quorum abides by it when it promises.
		m.Ring, m.NAcc = ring, nacc
	}
	for i := 0; i < nacc; i++ {
		a.env.Send(ring[i], m)
	}
	a.env.After(a.Cfg.Retry, func() {
		if a.isCoord && !a.phase1Done {
			a.becomeCoordinator(a.crnd>>10, ring, nacc)
		}
	})
}

// Propose submits a value from this node; non-coordinators forward it along
// the ring until it reaches the coordinator (Algorithm 3, Task 1).
func (a *UAgent) Propose(v core.Value) {
	if a.isCoord {
		a.enqueue(v)
		return
	}
	m := msgProposePool.Get()
	m.V = v
	a.env.Send(a.succ(), m)
}

// Receive implements proto.Handler.
func (a *UAgent) Receive(from proto.NodeID, m proto.Message) {
	// Any traffic from the monitored ring predecessor is a sign of life
	// (one predictable branch when failover is disabled).
	if a.fo.mon && from == a.fo.pred {
		a.fo.last = a.env.Now()
	}
	switch msg := m.(type) {
	case *MsgPropose:
		if a.isCoord {
			a.enqueue(msg.V)
			msgProposePool.Put(msg)
		} else if a.retired {
			// An amnesiac ex-coordinator cannot serve the proposal and must
			// not blindly forward it either: with no live coordinator on
			// the ring it would circulate forever. Clients re-submit — and a
			// stamped proposal is rejected explicitly so its session backs
			// off on evidence instead of timeout alone.
			if msg.V.Client != 0 {
				n := proto.ProposeNackPool.Get()
				n.Client, n.Seq, n.Coord = msg.V.Client, msg.V.Seq, a.ring[0]
				a.env.Send(proto.NodeID(msg.V.Client), n)
			}
			msgProposePool.Put(msg)
		} else {
			a.env.Send(a.succ(), msg)
		}
	case uPhase1A:
		a.onPhase1A(from, msg)
	case uPhase1B:
		a.onPhase1B(from, msg)
	case *uPhase2:
		a.onPhase2(msg)
	case *uDecision:
		a.onDecision(msg)
	case proto.VersionReport:
		a.onVersionReport(msg)
	case mHeartbeat:
		// Pure liveness beacon; the prologue above already recorded it.
	case mTakeOver:
		a.onTakeOver(msg)
	case uRingChange:
		a.onRingChange(msg)
	case mRingStateReq:
		a.onRingStateReq(from)
	case mRingState:
		a.onRingState(msg)
	}
}

// LoseVolatile implements proto.VolatileLoser: a crash that destroys
// volatile state (fault.Lose) discards the staged client values awaiting
// proposal, then applies the configured Durability. Under the default
// DurModeled, votes and the learner frontier are retained (modeled
// durable; U-Ring's reliable ring has no retransmission path, so losing
// them would stall the ring forever — fault schedules for U-Ring use
// freezes and partitions, which its TCP channels survive losslessly).
// DurVolatile loses them honestly and retires the process from the
// acceptor/coordinator roles — a crashed U-Ring coordinator then stalls
// the ring for good unless failover reconfigures around it. DurWAL loses
// them and replays the write-ahead log; a recovered coordinator re-enters
// Phase 1 and the ring resumes.
func (a *UAgent) LoseVolatile() {
	a.pending.PopFront(a.pending.Len())
	a.pendingBytes = 0
	a.fo.reset()
	switch a.Cfg.Durability {
	case DurVolatile:
		a.loseUState()
		a.retired = true
	case DurWAL:
		a.loseUState()
		a.replayWAL()
	}
	if a.Cfg.Failover.Enabled() && !a.retired {
		// Learn the current ring layout from a live member before
		// re-arming the detector (the layout may have changed during the
		// outage; failoverTick holds the monitor off while needRing is set).
		a.fo.needRing = true
	}
}

// loseUState wipes everything a Lose crash destroys in a process with
// honest volatile state: promises, votes, coordinator soft state and the
// garbage-collection bookkeeping. Learner delivery state is retained in
// every mode — it models the application's own durable state.
func (a *UAgent) loseUState() {
	a.rnd = 0
	a.votes = core.InstLog[vote]{}
	a.gc = core.VersionTracker{}
	a.quarantine = nil
	a.pool = core.BatchPool{}
	a.isCoord, a.phase1Done = false, false
	a.crnd = 0
	a.promises = make(map[proto.NodeID]uPhase1B)
	a.openCount = 0
	a.next = 0
	a.fo.tookOver = false
}

// replayWAL rebuilds acceptor state from the write-ahead log after
// loseUState. A process that finds itself at its ring's coordinator
// position re-enters Phase 1 one round above its highest logged promise:
// it can prove every promise it ever made, so resuming coordinatorship
// is safe — the recovery U-Ring Paxos needs, since a dead coordinator
// otherwise stalls the whole ring.
func (a *UAgent) replayWAL() {
	a.Log.Replay(func(r wal.Record) {
		switch r.Kind {
		case wal.KindSnapshot:
			a.gc.SetFloor(r.Inst)
		case wal.KindPromise:
			if r.Rnd > a.rnd {
				a.rnd = r.Rnd
			}
		case wal.KindVote:
			if r.Inst < a.gc.Floor() {
				return
			}
			v, _ := a.votes.Put(r.Inst)
			*v = vote{rnd: r.Rnd, vid: r.VID, val: r.Val}
			if r.Inst >= a.next {
				a.next = r.Inst + 1
			}
		}
	})
	if len(a.ring) > 0 && a.ring[0] == a.env.ID() {
		a.becomeCoordinator((a.rnd>>10)+1, a.ring, a.nacc)
	}
}

// walOn reports whether this agent appends to a write-ahead log.
func (a *UAgent) walOn() bool { return a.Cfg.Durability == DurWAL && a.Log != nil }

// --- coordinator ---

func (a *UAgent) enqueue(v core.Value) {
	a.pending.Push(v)
	a.pendingBytes += v.Bytes
	if a.pendingBytes >= a.Cfg.BatchBytes {
		a.flush()
		return
	}
	if !a.batchArmed {
		a.batchArmed = true
		proto.AfterFree(a.env, a.Cfg.BatchDelay, a.batchFn)
	}
}

func (a *UAgent) flush() {
	if !a.isCoord || !a.phase1Done {
		return
	}
	for a.pending.Len() > 0 && a.openCount < a.Cfg.Window {
		pooled := a.Cfg.RecycleBatches && a.Cfg.GCInterval > 0
		b, bytes := core.DrainBatch(&a.pending, &a.pool, pooled, a.Cfg.BatchBytes)
		a.pendingBytes -= bytes
		a.startInstance(b, pooled)
	}
}

func (a *UAgent) startInstance(b core.Batch, pooled bool) {
	inst := a.next
	a.next++
	a.openCount++
	vid := core.ValueID(a.crnd<<32 | inst)
	// The coordinator votes itself and sends the combined 2A/2B onward.
	v, _ := a.votes.Put(inst)
	*v = vote{rnd: a.crnd, vid: vid, val: b, pooled: pooled}
	m := uPhase2Pool.Get()
	m.Inst, m.Rnd, m.VID, m.Val = inst, a.crnd, vid, b
	if a.walOn() {
		// The coordinator's self-vote hits the log before the 2A/2B leaves.
		a.Log.Append(a.env, wal.Record{Kind: wal.KindVote, Inst: inst, Rnd: a.crnd, VID: vid, Val: b},
			func() { a.forwardPhase2(m) })
	} else if a.Cfg.DiskSync {
		a.env.DiskWrite(b.Size()+headerBytes, func() { a.forwardPhase2(m) })
	} else {
		a.forwardPhase2(m)
	}
}

func (a *UAgent) forwardPhase2(m *uPhase2) {
	if a.nacc == 1 {
		// Degenerate single-acceptor ring: decide immediately.
		a.sendDecision(m)
		uPhase2Pool.Put(m)
		return
	}
	a.env.Send(a.succ(), m)
}

func (a *UAgent) onPhase1A(from proto.NodeID, m uPhase1A) {
	if m.Rnd <= a.rnd {
		return
	}
	if a.isCoord && m.Rnd > a.crnd {
		a.standDownU()
	}
	if len(m.Ring) > 0 {
		a.ring, a.nacc = m.Ring, m.NAcc // abide by the proposed layout
		a.fo.needRing = false
	}
	if !a.isAcceptor() || a.retired {
		// A retired process must never promise again: it cannot remember
		// what it promised before the crash.
		return
	}
	a.rnd = m.Rnd
	reply := uPhase1B{Rnd: a.rnd, Votes: make(map[int64]vote), Floor: a.gc.Floor()}
	a.votes.Range(func(inst int64, v *vote) bool {
		reply.Votes[inst] = *v
		return true
	})
	if a.walOn() {
		// The promise is binding only once durable: persist it before the
		// 1B leaves (Phase 1 is rare, so the closure is off the hot path).
		to := from
		a.Log.Append(a.env, wal.Record{Kind: wal.KindPromise, Rnd: a.rnd},
			func() { a.env.Send(to, reply) })
		return
	}
	a.env.Send(from, reply)
}

func (a *UAgent) onPhase1B(from proto.NodeID, m uPhase1B) {
	if !a.isCoord || m.Rnd != a.crnd || a.phase1Done {
		return
	}
	a.promises[from] = m
	// The quorum is a majority of the ORIGINAL 2f+1 acceptors even after a
	// reconfiguration shrank the live segment: any value chosen in an
	// earlier round reached a majority of the original set, so only an
	// original-majority intersection is guaranteed to surface it.
	if len(a.promises) < a.Cfg.NumAcceptors/2+1 {
		return
	}
	a.phase1Done = true
	// Adopt the quorum's highest trim floor first: the floor guard below
	// then filters votes for instances some acceptor already trimmed.
	for _, p := range a.promises {
		a.gc.SetFloor(p.Floor)
	}
	if f := a.gc.Floor(); f > a.next {
		// Resume numbering above the trimmed prefix: a fresh instance
		// below the floor would ghost in our own vote ring and stall
		// mid-ring at any acceptor that already trimmed it.
		a.next = f
	}
	adopt := make(map[int64]vote)
	for _, p := range a.promises {
		for inst, v := range p.Votes {
			if cur, ok := adopt[inst]; !ok || v.rnd > cur.rnd {
				adopt[inst] = v
			}
		}
	}
	if a.fo.tookOver && len(a.ring) > 1 {
		// Circulate the reconfigured layout once around the new ring BEFORE
		// re-proposing the adopted instances: their Phase 2s (and the
		// decisions the last acceptor derives from them) travel the same
		// links, and a downstream member still holding the pre-failure
		// layout would forward those decisions to the dead node. Lost
		// decisions leave the new coordinator's window permanently
		// exhausted — with more adopted instances than Window, it could
		// never open an instance again.
		a.ringRnd = a.crnd
		a.env.Send(a.succ(), uRingChange{Rnd: a.crnd, Ring: a.ring, NAcc: a.nacc})
	}
	insts := make([]int64, 0, len(adopt))
	for inst := range adopt {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		if inst < a.gc.Floor() {
			// Globally applied and trimmed: acceptors that trimmed the
			// instance drop its Phase 2 at the floor guard, so re-opening
			// it could never complete its ring pass. Instances this node
			// merely DELIVERED are still re-proposed — after a failover
			// other learners may have a gap there, and their own dedup
			// (deliverLocal) discards the duplicate.
			continue
		}
		if inst >= a.next {
			a.next = inst + 1
		}
		a.openCount++
		av := adopt[inst]
		// Keep the adopted vote's value id: consensus is on value ids, so
		// a possibly-chosen value must be re-proposed as the SAME id.
		vid := av.vid
		if vid == 0 {
			vid = core.ValueID(a.crnd<<32 | inst)
		}
		v, _ := a.votes.Put(inst)
		*v = vote{rnd: a.crnd, vid: vid, val: av.val}
		m := uPhase2Pool.Get()
		m.Inst, m.Rnd, m.VID, m.Val = inst, a.crnd, vid, av.val
		a.forwardPhase2(m)
	}
	a.flush()
}

// --- acceptor (Task 4) ---

func (a *UAgent) onPhase2(m *uPhase2) {
	if !a.isAcceptor() || a.isCoord || a.retired {
		// A retired mid-segment acceptor swallows the Phase 2 instead of
		// voting or forwarding: the honest consequence of lost state is
		// that the pipeline stalls at the amnesiac hop.
		uPhase2Pool.Put(m)
		return
	}
	if m.Rnd < a.rnd {
		uPhase2Pool.Put(m)
		return
	}
	if m.Inst < a.gc.Floor() {
		// Straggler for a trimmed (globally applied) instance: re-creating
		// its vote below the GC floor would leave a permanent ghost in the
		// instance ring, since garbage collection never looks below the
		// floor again.
		uPhase2Pool.Put(m)
		return
	}
	a.rnd = m.Rnd
	v, _ := a.votes.Put(m.Inst)
	*v = vote{rnd: m.Rnd, vid: m.VID, val: m.Val}
	if a.walOn() {
		// Votes persist sequentially along the ring (§3.5.5), with the
		// record retained for crash replay.
		a.Log.Append(a.env, wal.Record{Kind: wal.KindVote, Inst: m.Inst, Rnd: m.Rnd, VID: m.VID, Val: m.Val},
			func() { a.phase2Proceed(m) })
	} else if a.Cfg.DiskSync {
		a.env.DiskWrite(m.Val.Size()+headerBytes, func() { a.phase2Proceed(m) })
	} else {
		a.phase2Proceed(m)
	}
}

func (a *UAgent) phase2Proceed(m *uPhase2) {
	if a.lastAcceptor() {
		a.sendDecision(m)
		uPhase2Pool.Put(m)
	} else {
		a.env.Send(a.succ(), m)
	}
}

// sendDecision starts the decision's revolution around the ring (Task 5).
func (a *UAgent) sendDecision(m *uPhase2) {
	d := uDecisionPool.Get()
	d.Inst, d.VID, d.Val, d.Hops = m.Inst, m.VID, m.Val, 0
	a.deliverLocal(d)
	a.releaseWindow()
	if len(a.ring) > 1 {
		a.forwardDecision(d)
	} else {
		uDecisionPool.Put(d)
	}
}

// --- decision circulation and delivery ---

func (a *UAgent) onDecision(m *uDecision) {
	if len(m.Val.Vals) == 0 {
		// Value was stripped upstream: acceptors already hold it.
		if v, ok := a.votes.Get(m.Inst); ok && v.vid == m.VID {
			m.Val = v.val
		}
	}
	if a.retired && len(m.Val.Vals) == 0 {
		// The vote log that would restore the stripped payload died with
		// the crash: pass the decision on without consuming it locally —
		// delivering an empty batch here would silently skip the
		// instance's values and diverge this learner's sequence.
	} else {
		a.deliverLocal(m)
	}
	a.releaseWindow()
	m.Hops++
	if m.Hops >= len(a.ring)-1 {
		uDecisionPool.Put(m)
		return // full revolution complete
	}
	// A slow learner delays this forward naturally: its CPU is busy
	// executing delivered commands, so the reliable channel's window to it
	// fills and the whole ring backpressures (§3.3.6).
	a.forwardDecision(m)
}

// forwardDecision sends the decision to the successor, stripping the payload
// when the successor is an acceptor: acceptors stored the value during
// Phase 2, so re-sending it would double each link's traffic ("forwarding
// the chosen-value ends at the predecessor of the process that has proposed
// the chosen value", Task 5; the coordinator piggybacks new proposals on the
// circulating decision).
func (a *UAgent) forwardDecision(m *uDecision) {
	nextIdx := (a.ringIndex() + 1) % len(a.ring)
	if nextIdx < a.nacc {
		m.Val = core.Batch{}
	}
	a.env.Send(a.ring[nextIdx], m)
}

// releaseWindow frees coordinator window space once per decision seen.
func (a *UAgent) releaseWindow() {
	if !a.isCoord {
		return
	}
	if a.openCount > 0 {
		a.openCount--
	}
	a.flush()
}

// deliverLocal records and, in instance order, delivers a decision.
func (a *UAgent) deliverLocal(m *uDecision) {
	if !a.isLearner() {
		return
	}
	if m.Inst < a.nextDeliver {
		return
	}
	e, existed := a.learned.Put(m.Inst)
	if existed {
		return
	}
	*e = m.Val
	a.drain()
}

func (a *UAgent) drain() {
	for {
		e, ok := a.learned.Get(a.nextDeliver)
		if !ok {
			return
		}
		inst := a.nextDeliver
		b := *e
		a.learned.Delete(inst)
		a.nextDeliver++
		if a.Cfg.ExecCost > 0 && len(b.Vals) > 0 {
			a.env.Work(time.Duration(len(b.Vals))*a.Cfg.ExecCost, func() {
				a.finishBatch(inst, b)
			})
			continue
		}
		a.finishBatch(inst, b)
	}
}

func (a *UAgent) finishBatch(inst int64, b core.Batch) {
	sup := a.dedupPass(inst, b)
	if a.Trace != nil {
		now := a.env.Now()
		for i, v := range b.Vals {
			if sup != nil && sup[i] {
				continue
			}
			a.Trace.Note(now, inst, v)
		}
	}
	for i, v := range b.Vals {
		if sup != nil && sup[i] {
			continue
		}
		a.DeliveredBytes += int64(v.Bytes)
		a.DeliveredMsgs++
		if v.Born != 0 {
			lat := a.env.Now() - v.Born
			a.LatencySum += lat
			a.LatencyCount++
			if a.Latencies != nil {
				*a.Latencies = append(*a.Latencies, lat)
			}
		}
		if a.Deliver != nil {
			a.Deliver(inst, v)
		}
	}
}

// dedupPass mirrors the M-Ring learner's exactly-once check (see
// MAgent.dedupPass): first applications commit to the table and ack the
// session, duplicates are acked from the table and suppressed before
// tracing/delivery. Nil — at one compare per value — for unstamped
// batches.
func (a *UAgent) dedupPass(inst int64, b core.Batch) []bool {
	stamped := false
	for i := range b.Vals {
		if b.Vals[i].Client != 0 {
			stamped = true
			break
		}
	}
	if !stamped {
		return nil
	}
	if a.dedup == nil {
		a.dedup = core.NewDedupTable()
	}
	if cap(a.dedupSup) < len(b.Vals) {
		a.dedupSup = make([]bool, len(b.Vals))
	}
	sup := a.dedupSup[:len(b.Vals)]
	for i, v := range b.Vals {
		sup[i] = false
		if v.Client == 0 {
			continue
		}
		if !a.dedup.Commit(v.Client, v.Seq, inst) {
			sup[i] = true
			a.DupSuppressed++
		}
		m := proto.ClientAckPool.Get()
		m.Client, m.Seq = v.Client, v.Seq
		a.env.Send(proto.NodeID(v.Client), m)
	}
	return sup
}

// --- garbage collection (shared subsystem, §3.3.7) ---

// versionTick reports this learner's applied version. The report is
// recorded locally, then pipelined around the ring like every other U-Ring
// message, so each process — in particular every acceptor — sees every
// learner's version without any extra fan-out.
func (a *UAgent) versionTick() {
	v := a.nextDeliver - 1
	a.gc.Report(int64(a.env.ID()), v)
	a.trimLogs()
	if len(a.ring) > 1 {
		a.env.Send(a.succ(), proto.VersionReport{From: a.env.ID(), Inst: v})
	}
	proto.AfterFree(a.env, a.Cfg.GCInterval, a.versionFn)
}

// onVersionReport records a circulating report and forwards it until it
// has completed one revolution (the originator recorded itself at send).
func (a *UAgent) onVersionReport(m proto.VersionReport) {
	a.gc.Report(int64(m.From), m.Inst)
	a.trimLogs()
	m.Hops++
	if m.Hops < len(a.ring)-1 {
		a.env.Send(a.succ(), m)
	}
}

// trimLogs drops vote-log entries for globally applied instances once
// every learner has reported. Arrays owned by the coordinator's batch pool
// are quarantined for one GC round before reuse, exactly like M-Ring
// Paxos: a learner's deferred ExecCost completion may still be reading a
// batch it already counted as applied.
func (a *UAgent) trimLogs() {
	lo, hi, ok := a.gc.Advance(len(a.Cfg.Learners))
	if !ok {
		return
	}
	a.quarantine = a.pool.Recycle(a.quarantine)
	a.votes.Trim(lo, hi, func(_ int64, v *vote) {
		if v.pooled {
			a.quarantine = append(a.quarantine, v.val.Vals)
		}
	})
	if a.walOn() {
		// The log trims in lockstep with the vote log, bounding replay.
		a.Log.Trim(a.gc.Floor())
	}
	// The dedup table trims in concert with the GC floor (retired clients
	// only; live clients are never forgotten).
	a.dedup.Trim(a.gc.Floor())
}

// --- failover ---

// failoverTick is the periodic failure-detector beat: beacon the ring
// successor, check the predecessor's silence window. Every ring member
// participates — U-Ring has no multicast group, so a learner segment
// member may be the one that detects a dead coordinator's silence.
func (a *UAgent) failoverTick() {
	if proto.EnvDown(a.env) || a.retired {
		// A crashed process runs no failure detector: drop the monitor aim
		// so the first post-restart tick re-observes a full silence window
		// instead of acting on a timestamp from before the outage. A
		// retired process must not beacon either — peers should treat the
		// amnesiac as dead and reconfigure the ring around it.
		a.fo.mon = false
	} else if i := a.ringIndex(); i >= 0 && len(a.ring) > 1 {
		n := len(a.ring)
		a.env.Send(a.ring[(i+1)%n], mHeartbeat{Rnd: a.rnd})
		if a.fo.needRing {
			// Freshly restarted: hold the detector until a live member
			// confirms the ring layout — suspicion computed from the stale
			// pre-crash ring would churn a ring that already moved on.
			a.fo.mon = false
			a.requestRingState()
		} else {
			pred := a.ring[(i-1+n)%n]
			if a.fo.observe(pred, a.env.Now(), a.Cfg.Failover.suspectAfter()) {
				a.suspectPred(pred)
			}
		}
	} else {
		a.fo.mon = false
	}
	proto.AfterFree(a.env, a.Cfg.Failover.Heartbeat, a.fo.tickFn)
}

// requestRingState asks one ring member for the current layout, rotating
// the target each tick so a dead first choice does not stall catch-up.
func (a *UAgent) requestRingState() {
	n := len(a.ring)
	i := a.ringIndex()
	if n <= 1 || i < 0 {
		a.fo.needRing = false
		return
	}
	off := 1 + a.fo.askIdx%(n-1)
	a.fo.askIdx++
	a.env.Send(a.ring[(i+off)%n], mRingStateReq{})
}

func (a *UAgent) onRingStateReq(from proto.NodeID) {
	a.env.Send(from, mRingState{Rnd: a.rnd, Ring: a.ring, NAcc: a.nacc})
}

// onRingState adopts the layout a live member reported after this node's
// restart; see the MAgent counterpart.
func (a *UAgent) onRingState(m mRingState) {
	a.fo.needRing = false
	if len(m.Ring) == 0 || m.Rnd < a.rnd {
		return
	}
	if a.isCoord && m.Rnd > a.crnd {
		a.standDownU()
	}
	a.rnd = m.Rnd
	if m.Rnd > a.ringRnd {
		a.ringRnd = m.Rnd
	}
	a.ring, a.nacc = m.Ring, m.NAcc
}

// suspectPred declares the ring predecessor dead and nominates the
// highest-id surviving acceptor as coordinator over the re-laid-out ring.
func (a *UAgent) suspectPred(pred proto.NodeID) {
	a.fo.suspect(pred, a.rnd)
	newRing, nacc := a.electRing()
	if len(newRing) == 0 {
		return
	}
	nom := newRing[0]
	a.fo.note(nom, a.rnd, a.env.Now())
	if nom == a.env.ID() {
		a.takeOver(newRing, nacc)
		return
	}
	a.env.Send(nom, mTakeOver{Rnd: a.rnd, Ring: newRing, NAcc: nacc})
}

// electRing lays out the post-failure ring: the highest-id surviving
// acceptor moves to the coordinator (first) position, the other surviving
// acceptors keep the segment consecutive behind it, non-acceptor members
// follow in order. Deterministic in the dead set, so concurrent
// suspicions converge on one nominee.
func (a *UAgent) electRing() ([]proto.NodeID, int) {
	var accs, rest []proto.NodeID
	for i, id := range a.ring {
		if a.fo.dead[id] {
			continue
		}
		if i < a.nacc {
			accs = append(accs, id)
		} else {
			rest = append(rest, id)
		}
	}
	if len(accs) == 0 {
		return nil, 0
	}
	nom := accs[0]
	for _, id := range accs {
		if id > nom {
			nom = id
		}
	}
	out := make([]proto.NodeID, 0, len(accs)+len(rest))
	out = append(out, nom)
	for _, id := range accs {
		if id != nom {
			out = append(out, id)
		}
	}
	out = append(out, rest...)
	return out, len(accs)
}

func (a *UAgent) takeOver(ring []proto.NodeID, nacc int) {
	a.fo.tookOver = true
	a.becomeCoordinator((a.rnd>>10)+1, ring, nacc)
}

func (a *UAgent) onTakeOver(m mTakeOver) {
	if !a.Cfg.Failover.Enabled() || a.retired || len(m.Ring) == 0 || m.Ring[0] != a.env.ID() {
		return
	}
	if a.isCoord && sameRing(a.ring, m.Ring) {
		return // already coordinating (or running Phase 1 over) this layout
	}
	if m.Rnd > a.rnd {
		a.rnd = m.Rnd
	}
	a.takeOver(m.Ring, m.NAcc)
}

func (a *UAgent) onRingChange(m uRingChange) {
	if len(m.Ring) == 0 || m.Rnd <= a.ringRnd {
		return
	}
	a.ringRnd = m.Rnd
	if a.isCoord && m.Rnd > a.crnd {
		a.standDownU()
	}
	if m.Rnd > a.rnd {
		a.rnd = m.Rnd // round progress signal for the escalation check
	}
	a.ring, a.nacc = m.Ring, m.NAcc
	a.fo.needRing = false
	m.Hops++
	if m.Hops < len(m.Ring)-1 {
		a.env.Send(a.succ(), m)
	}
}

// standDownU retires a stale coordinator that observed a higher round:
// acceptors fence its Phase 2 messages, so its open instances and staged
// values can never complete — the new coordinator re-proposes anything a
// quorum saw, and clients re-submit the rest.
func (a *UAgent) standDownU() {
	if !a.isCoord {
		return
	}
	a.isCoord, a.phase1Done = false, false
	a.pending.PopFront(a.pending.Len())
	a.pendingBytes = 0
	a.openCount = 0
	a.fo.tookOver = false
}

// NextDeliver returns the learner's delivery frontier.
func (a *UAgent) NextDeliver() int64 { return a.nextDeliver }

// LiveLogLen reports how many per-instance records this agent currently
// retains (acceptor vote log plus learner reorder buffer). Soak workloads
// sample it to prove garbage collection keeps log occupancy flat.
func (a *UAgent) LiveLogLen() int { return a.votes.Len() + a.learned.Len() }
