// Package ringpaxos implements the two Ring Paxos atomic broadcast
// protocols of the dissertation's Chapter 3 (DSN 2010) plus the partitioned
// and speculative extensions of Chapter 4 (DSN 2011):
//
//   - M-Ring Paxos (Algorithm 2): payload dissemination by network-level
//     ip-multicast, ordering by a logical ring of f+1 acceptors whose last
//     process is the coordinator; consensus is on value ids.
//   - U-Ring Paxos (Algorithm 3): all communication is pipelined unicast
//     around a ring that contains every process.
//
// Both variants batch application values (8 KB / 32 KB packets), pipeline a
// window of outstanding instances, recover lost messages by retransmission,
// garbage-collect acceptor state using learner versions, and implement the
// learner-driven flow control of §3.3.6.
package ringpaxos

import (
	"math/bits"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// MConfig configures an M-Ring Paxos deployment.
type MConfig struct {
	// Ring is the m-quorum of acceptors laid out as a directed logical
	// ring. The coordinator is the LAST element (§3.3.2).
	Ring []proto.NodeID
	// Spares are acceptors outside the ring, used on reconfiguration.
	Spares []proto.NodeID
	// Learners deliver decided values.
	Learners []proto.NodeID
	// Group is the ip-multicast group; ring acceptors and learners must be
	// subscribed. In partitioned mode it is the decision group and
	// PartGroups[i] carries Phase 2A traffic of partition i.
	Group proto.GroupID
	// PartGroups enables the Chapter 4 partitioned mode when non-empty:
	// one multicast group per partition. Acceptors must subscribe to all
	// of them; each learner only to its own partitions plus Group.
	PartGroups []proto.GroupID
	// LearnerParts gives, per learner, the bitmask of partitions it
	// subscribes to (parallel to Learners; nil means every learner gets
	// everything).
	LearnerParts map[proto.NodeID]uint64

	// Window is the maximum number of simultaneously open instances.
	Window int
	// BatchBytes is the packet size (paper: 8 KB for M-Ring Paxos).
	BatchBytes int
	// BatchDelay flushes a non-empty batch after this delay.
	BatchDelay time.Duration
	// Retry is the retransmission / gap-recovery timeout.
	Retry time.Duration
	// DiskSync makes acceptors persist votes before forwarding Phase 2B
	// (Recoverable Ring Paxos). Writes happen in parallel across the ring
	// because every acceptor starts its write at 2A delivery (§3.5.5).
	DiskSync bool
	// ExecCost is the learner-side processing cost per delivered value.
	ExecCost time.Duration
	// FlowThreshold is the learner backlog (in undelivered decided
	// instances) that triggers a slow-down notification; 0 disables flow
	// control.
	FlowThreshold int
	// GCInterval is how often learners report their version (§3.3.7).
	GCInterval time.Duration
	// Speculative delivers values to learners at Phase 2A receipt, before
	// they are decided (Chapter 4 speculative execution).
	Speculative bool
}

func (c *MConfig) defaults() {
	if c.Window == 0 {
		c.Window = 64
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = 8 << 10
	}
	if c.BatchDelay == 0 {
		c.BatchDelay = 500 * time.Microsecond
	}
	if c.Retry == 0 {
		c.Retry = 20 * time.Millisecond
	}
	if c.GCInterval == 0 {
		c.GCInterval = 50 * time.Millisecond
	}
}

// Coordinator returns the coordinator (last ring position).
func (c MConfig) Coordinator() proto.NodeID { return c.Ring[len(c.Ring)-1] }

// logEntry is an acceptor/coordinator record of one instance.
type logEntry struct {
	vid     core.ValueID
	val     core.Batch
	mask    uint64
	decided bool
}

// openInst is the coordinator's bookkeeping for an in-flight instance.
type openInst struct {
	vid   core.ValueID
	val   core.Batch
	mask  uint64
	timer proto.Timer
}

// MAgent is one M-Ring Paxos process. Roles follow from the configuration:
// ring acceptors order, the last ring process coordinates, learners deliver.
// Any node (including dedicated proposer nodes) can Propose.
type MAgent struct {
	Cfg MConfig
	// Deliver is invoked on learners for every value in delivery order.
	Deliver core.DeliverFunc
	// SpecDeliver, when Cfg.Speculative, is invoked on learners at Phase 2A
	// receipt, in receipt order, before the value is decided.
	SpecDeliver core.DeliverFunc
	// Confirm is invoked on learners when a speculatively delivered
	// instance's order is confirmed.
	Confirm func(inst int64)
	// DeliverBatch, if set, is invoked on learners once per decided
	// instance, in instance order, with the instance's whole batch —
	// including empty/marker batches. Multi-Ring Paxos uses it to merge
	// rings at consensus-instance granularity.
	DeliverBatch func(inst int64, b core.Batch)

	env proto.Env

	// --- coordinator state ---
	isCoord      bool
	phase1Done   bool
	crnd         int64
	promises     map[proto.NodeID]mPhase1B
	pending      []core.Value
	pendingBytes int
	batchTimer   proto.Timer
	next         int64
	open         map[int64]*openInst
	window       int
	lastSlow     time.Duration
	decidedQ     []int64
	decidedQM    []uint64
	timersArmed  bool

	// --- acceptor state ---
	rnd       int64
	maxInst   int64
	ring      []proto.NodeID
	store     map[int64]*logEntry
	storeByte int
	pending2B map[int64]mPhase2B
	diskDone  map[int64]bool
	versions  map[proto.NodeID]int64
	gcFloor   int64

	// --- learner state ---
	values       map[int64]*logEntry
	decided      map[int64]uint64 // inst -> partition mask (decided)
	nextDeliver  int64
	maxDecided   int64
	backlog      int
	notified     bool
	askCoord     bool
	lastFrontier int64
	myParts      uint64

	// DeliveredBytes/DeliveredMsgs count application payload delivered at
	// this learner.
	DeliveredBytes int64
	DeliveredMsgs  int64
	// LatencySum accumulates propose-to-deliver latency for values whose
	// Born field is set.
	LatencySum   time.Duration
	LatencyCount int64
	// Latencies, if non-nil before Start, records each delivery latency.
	Latencies *[]time.Duration
}

var _ proto.Handler = (*MAgent)(nil)

// Start implements proto.Handler.
func (a *MAgent) Start(env proto.Env) {
	a.env = env
	a.Cfg.defaults()
	a.window = a.Cfg.Window
	a.maxInst = -1
	a.ring = a.Cfg.Ring
	a.open = make(map[int64]*openInst)
	a.store = make(map[int64]*logEntry)
	a.pending2B = make(map[int64]mPhase2B)
	a.diskDone = make(map[int64]bool)
	a.values = make(map[int64]*logEntry)
	a.decided = make(map[int64]uint64)
	a.versions = make(map[proto.NodeID]int64)
	a.promises = make(map[proto.NodeID]mPhase1B)
	a.myParts = ^uint64(0)
	if a.Cfg.LearnerParts != nil {
		if m, ok := a.Cfg.LearnerParts[env.ID()]; ok {
			a.myParts = m
		}
	}
	if env.ID() == a.Cfg.Coordinator() {
		a.becomeCoordinator(1, a.Cfg.Ring)
	}
	if a.isLearner() {
		a.armLearnerTimers()
	}
}

func (a *MAgent) isAcceptor() bool {
	for _, id := range a.ring {
		if id == a.env.ID() {
			return true
		}
	}
	return false
}

func (a *MAgent) isLearner() bool {
	for _, id := range a.Cfg.Learners {
		if id == a.env.ID() {
			return true
		}
	}
	return false
}

// ringIndex returns this node's position in the current ring, or -1.
func (a *MAgent) ringIndex() int {
	for i, id := range a.ring {
		if id == a.env.ID() {
			return i
		}
	}
	return -1
}

// successor returns the next process after position i in the ring.
func (a *MAgent) successor(i int) proto.NodeID { return a.ring[i+1] }

// preferential returns the ring acceptor assigned to learner id for
// retransmissions and version reports (load balanced round-robin, §3.3.4).
func (a *MAgent) preferential() proto.NodeID {
	idx := 0
	for i, id := range a.Cfg.Learners {
		if id == a.env.ID() {
			idx = i
			break
		}
	}
	return a.ring[idx%len(a.ring)]
}

// becomeCoordinator starts Phase 1 with a fresh round and ring layout.
func (a *MAgent) becomeCoordinator(minRound int64, ring []proto.NodeID) {
	a.isCoord = true
	a.phase1Done = false
	a.promises = make(map[proto.NodeID]mPhase1B)
	r := (minRound << 10) | int64(a.env.ID())
	if r <= a.crnd {
		r = (((a.crnd >> 10) + 1) << 10) | int64(a.env.ID())
	}
	a.crnd = r
	m := mPhase1A{Rnd: a.crnd, Ring: ring}
	for _, id := range ring {
		a.env.Send(id, m)
	}
	a.env.After(a.Cfg.Retry, func() {
		if a.isCoord && !a.phase1Done {
			a.becomeCoordinator(a.crnd>>10, a.ring)
		}
	})
}

// TakeOver promotes this agent to coordinator over newRing (failover and
// reconfiguration entry point; the last element must be this node).
func (a *MAgent) TakeOver(newRing []proto.NodeID) {
	a.becomeCoordinator((a.rnd>>10)+1, newRing)
}

// ProposeBatch opens a consensus instance for b immediately, bypassing
// batching and the flow-control window. Multi-Ring Paxos uses it for skip
// instances, which must not be delayed behind application traffic
// (Chapter 5: "the cost of executing any number of skip instances is the
// same as the cost of executing a single skip instance").
func (a *MAgent) ProposeBatch(b core.Batch) {
	if !a.isCoord || !a.phase1Done {
		return
	}
	a.startInstance(b, 0)
}

// InstancesStarted returns how many consensus instances this coordinator
// has opened (the k counter of Chapter 5, Algorithm 1).
func (a *MAgent) InstancesStarted() int64 { return a.next }

// Propose submits a value from this node.
func (a *MAgent) Propose(v core.Value) {
	if a.isCoord {
		a.enqueue(v)
		return
	}
	a.env.Send(a.Cfg.Coordinator(), MsgPropose{V: v})
}

// Receive implements proto.Handler.
func (a *MAgent) Receive(from proto.NodeID, m proto.Message) {
	switch msg := m.(type) {
	case MsgPropose:
		if a.isCoord {
			a.enqueue(msg.V)
		}
	case mPhase1A:
		a.onPhase1A(from, msg)
	case mPhase1B:
		a.onPhase1B(from, msg)
	case mPhase2A:
		a.onPhase2A(msg)
	case mPhase2B:
		a.onPhase2B(msg)
	case mDecision:
		a.onDecisions(msg.Insts, msg.Masks)
	case mRetransmitReq:
		a.onRetransmitReq(from, msg)
	case mRetransmit:
		a.onRetransmit(msg)
	case mSlowDown:
		a.onSlowDown(msg)
	case mVersion:
		a.onVersion(msg)
	}
}

// --- coordinator ---

func (a *MAgent) enqueue(v core.Value) {
	a.pending = append(a.pending, v)
	a.pendingBytes += v.Bytes
	if a.pendingBytes >= a.Cfg.BatchBytes {
		a.flush()
		return
	}
	if a.batchTimer == nil {
		a.batchTimer = a.env.After(a.Cfg.BatchDelay, func() {
			a.batchTimer = nil
			a.flush()
		})
	}
}

// flush opens instances for pending batches while the window allows. In
// partitioned mode values with different partition masks are batched
// separately so each batch travels only to the groups it concerns.
func (a *MAgent) flush() {
	if !a.isCoord || !a.phase1Done {
		return
	}
	for len(a.pending) > 0 && len(a.open) < a.window {
		mask := a.pending[0].PartMask
		var batch []core.Value
		bytes := 0
		rest := a.pending[:0]
		for _, v := range a.pending {
			if bytes < a.Cfg.BatchBytes && v.PartMask == mask {
				batch = append(batch, v)
				bytes += v.Bytes
				continue
			}
			rest = append(rest, v)
		}
		a.pending = rest
		a.pendingBytes -= bytes
		a.startInstance(core.Batch{Vals: batch}, mask)
	}
}

func (a *MAgent) startInstance(b core.Batch, mask uint64) {
	inst := a.next
	a.next++
	oi := &openInst{vid: core.ValueID(a.crnd<<32 | inst), val: b, mask: mask}
	a.open[inst] = oi
	a.sendPhase2A(inst, oi)
}

func (a *MAgent) sendPhase2A(inst int64, oi *openInst) {
	m := mPhase2A{Inst: inst, Rnd: a.crnd, VID: oi.vid, Val: oi.val,
		Decided: a.decidedQ, DecidedMasks: a.decidedQM}
	a.decidedQ, a.decidedQM = nil, nil
	if len(a.Cfg.PartGroups) == 0 || oi.mask == 0 {
		a.env.Multicast(a.Cfg.Group, m)
	} else {
		// Partitioned mode: one 2A per concerned partition group; decision
		// ids travel on the decision group (§4.2.2), so don't piggyback.
		if len(m.Decided) > 0 {
			a.env.Multicast(a.Cfg.Group, mDecision{Insts: m.Decided, Masks: m.DecidedMasks})
			m.Decided, m.DecidedMasks = nil, nil
		}
		rem := oi.mask
		for rem != 0 {
			p := bits.TrailingZeros64(rem)
			rem &^= 1 << p
			if p < len(a.Cfg.PartGroups) {
				a.env.Multicast(a.Cfg.PartGroups[p], m)
			}
		}
	}
	oi.timer = a.env.After(a.Cfg.Retry, func() {
		if cur, ok := a.open[inst]; ok {
			a.sendPhase2A(inst, cur)
		}
	})
}

func (a *MAgent) onPhase1B(from proto.NodeID, m mPhase1B) {
	if !a.isCoord || m.Rnd != a.crnd || a.phase1Done {
		return
	}
	a.promises[from] = m
	if len(a.promises) < len(a.ring) {
		return // the whole ring is the m-quorum
	}
	a.phase1Done = true
	for _, p := range a.promises {
		if p.MaxInst >= a.next {
			a.next = p.MaxInst + 1
		}
	}
	if a.maxInst >= a.next {
		a.next = a.maxInst + 1
	}
	adopt := make(map[int64]vote)
	for _, p := range a.promises {
		for inst, v := range p.Votes {
			if e, ok := a.store[inst]; ok && e.decided {
				continue
			}
			if cur, ok := adopt[inst]; !ok || v.rnd > cur.rnd {
				adopt[inst] = v
			}
		}
	}
	insts := make([]int64, 0, len(adopt))
	for inst := range adopt {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		if inst >= a.next {
			a.next = inst + 1
		}
		oi := &openInst{vid: core.ValueID(a.crnd<<32 | inst), val: adopt[inst].val}
		a.open[inst] = oi
		a.sendPhase2A(inst, oi)
	}
	a.flush()
	if !a.timersArmed {
		a.timersArmed = true
		a.armDecisionFlush()
		a.armWindowRecovery()
	}
}

// armDecisionFlush periodically multicasts pending decision ids when there
// is no Phase 2A traffic to piggyback them on.
func (a *MAgent) armDecisionFlush() {
	a.env.After(2*a.Cfg.BatchDelay, func() {
		if !a.isCoord {
			return
		}
		if len(a.decidedQ) > 0 {
			a.env.Multicast(a.Cfg.Group, mDecision{Insts: a.decidedQ, Masks: a.decidedQM})
			a.decidedQ, a.decidedQM = nil, nil
		}
		a.armDecisionFlush()
	})
}

// armWindowRecovery slowly restores the window after flow-control slowdowns
// (§3.3.6: the coordinator gradually increases its window when it stops
// receiving notifications).
func (a *MAgent) armWindowRecovery() {
	a.env.After(100*time.Millisecond, func() {
		if !a.isCoord {
			return
		}
		if a.window < a.Cfg.Window && a.env.Now()-a.lastSlow > 300*time.Millisecond {
			a.window += max(1, a.window/4)
			if a.window > a.Cfg.Window {
				a.window = a.Cfg.Window
			}
			a.flush()
		}
		a.armWindowRecovery()
	})
}

func (a *MAgent) onSlowDown(m mSlowDown) {
	if a.isCoord {
		a.window = max(1, a.window/2)
		a.lastSlow = a.env.Now()
		return
	}
	// Forward along the ring toward the coordinator.
	if i := a.ringIndex(); i >= 0 && i < len(a.ring)-1 {
		a.env.Send(a.successor(i), m)
	}
}

// decide finishes an instance at the coordinator.
func (a *MAgent) decide(inst int64) {
	oi, ok := a.open[inst]
	if !ok {
		return
	}
	if oi.timer != nil {
		oi.timer.Cancel()
	}
	delete(a.open, inst)
	e := a.ensureStore(inst)
	e.vid, e.val, e.mask, e.decided = oi.vid, oi.val, oi.mask, true
	a.decidedQ = append(a.decidedQ, inst)
	a.decidedQM = append(a.decidedQM, oi.mask)
	if a.isLearner() {
		a.learnDecision(inst, oi.mask)
	}
	a.flush()
}

// --- acceptor ---

func (a *MAgent) onPhase1A(from proto.NodeID, m mPhase1A) {
	if m.Rnd <= a.rnd {
		return
	}
	a.rnd = m.Rnd
	if len(m.Ring) > 0 {
		a.ring = m.Ring // abide by the proposed ring
	}
	if !a.isAcceptor() {
		return
	}
	reply := mPhase1B{Rnd: a.rnd, MaxInst: a.maxInst, Votes: make(map[int64]vote)}
	for inst, e := range a.store {
		if e.vid != 0 {
			reply.Votes[inst] = vote{rnd: a.rnd, vid: e.vid, val: e.val}
		}
	}
	a.env.Send(from, reply)
}

func (a *MAgent) ensureStore(inst int64) *logEntry {
	e, ok := a.store[inst]
	if !ok {
		e = &logEntry{}
		a.store[inst] = e
	}
	return e
}

func (a *MAgent) onPhase2A(m mPhase2A) {
	// Decision ids piggybacked on the 2A are processed by every role.
	if len(m.Decided) > 0 {
		a.onDecisions(m.Decided, m.DecidedMasks)
	}
	if a.isLearner() {
		a.learnValue(m.Inst, m.VID, m.Val, m.Mask())
	}
	if !a.isAcceptor() {
		return
	}
	if m.Rnd < a.rnd {
		return
	}
	a.rnd = m.Rnd
	if m.Inst > a.maxInst {
		a.maxInst = m.Inst
	}
	e := a.ensureStore(m.Inst)
	if !e.decided {
		a.storeByte += m.Val.Size() - e.val.Size()
		e.vid, e.val, e.mask = m.VID, m.Val, m.Mask()
	}
	proceed := func() {
		a.diskDone[m.Inst] = true
		idx := a.ringIndex()
		if idx == 0 {
			a.forward2B(mPhase2B{Inst: m.Inst, Rnd: m.Rnd, VID: m.VID})
		} else if p, ok := a.pending2B[m.Inst]; ok && p.VID == m.VID {
			delete(a.pending2B, m.Inst)
			a.onPhase2B(p)
		}
	}
	if a.Cfg.DiskSync {
		// All ring acceptors write in parallel at 2A delivery (§3.5.5).
		a.env.DiskWrite(m.Val.Size()+headerBytes, proceed)
	} else {
		proceed()
	}
}

// Mask returns the partition mask of a 2A (0 = unpartitioned).
func (m mPhase2A) Mask() uint64 {
	if len(m.Val.Vals) == 0 {
		return 0
	}
	return m.Val.Vals[0].PartMask
}

func (a *MAgent) forward2B(m mPhase2B) {
	idx := a.ringIndex()
	if idx < 0 {
		return
	}
	if idx == len(a.ring)-1 {
		// Coordinator: the 2B has traversed the whole m-quorum.
		a.decide(m.Inst)
		return
	}
	a.env.Send(a.successor(idx), m)
}

func (a *MAgent) onPhase2B(m mPhase2B) {
	e, ok := a.store[m.Inst]
	if !ok || e.vid != m.VID || (a.Cfg.DiskSync && !a.diskDone[m.Inst]) {
		// Haven't ip-delivered the value yet (or still persisting): hold the
		// 2B; it resumes when the 2A arrives (Task 5's v-vid check).
		a.pending2B[m.Inst] = m
		return
	}
	a.forward2B(m)
}

func (a *MAgent) onRetransmitReq(from proto.NodeID, m mRetransmitReq) {
	for _, inst := range m.Insts {
		if e, ok := a.store[inst]; ok && e.vid != 0 {
			a.env.Send(from, mRetransmit{Inst: inst, VID: e.vid, Val: e.val, Mask: e.mask, Decided: e.decided})
		}
	}
}

func (a *MAgent) onVersion(m mVersion) {
	if v, ok := a.versions[m.Learner]; ok && v >= m.Inst {
		// Stale or already-circulated report.
		if m.Hops >= len(a.ring)-1 {
			return
		}
	}
	a.versions[m.Learner] = m.Inst
	// Circulate once around the ring so every acceptor sees every version.
	if i := a.ringIndex(); i >= 0 && m.Hops < len(a.ring)-1 {
		m.Hops++
		a.env.Send(a.ring[(i+1)%len(a.ring)], m)
	}
	if len(a.versions) < len(a.Cfg.Learners) {
		return
	}
	minV := int64(1<<62 - 1)
	for _, v := range a.versions {
		if v < minV {
			minV = v
		}
	}
	for inst := a.gcFloor; inst <= minV; inst++ {
		if e, ok := a.store[inst]; ok {
			a.storeByte -= e.val.Size()
			delete(a.store, inst)
		}
		delete(a.diskDone, inst)
	}
	if minV >= a.gcFloor {
		a.gcFloor = minV + 1
	}
}

// StoreBytes reports the bytes of batch payload currently held by this
// acceptor (the circular-buffer occupancy of §3.5.2).
func (a *MAgent) StoreBytes() int { return a.storeByte }

// --- learner ---

func (a *MAgent) learnValue(inst int64, vid core.ValueID, val core.Batch, mask uint64) {
	if inst < a.nextDeliver {
		return
	}
	e, ok := a.values[inst]
	if ok && e.vid == vid {
		return
	}
	a.values[inst] = &logEntry{vid: vid, val: val, mask: mask}
	if a.Cfg.Speculative && a.SpecDeliver != nil {
		for _, v := range val.Vals {
			a.SpecDeliver(inst, v)
		}
	}
	a.tryDeliver()
}

func (a *MAgent) learnDecision(inst int64, mask uint64) {
	if inst < a.nextDeliver {
		return
	}
	if _, ok := a.decided[inst]; ok {
		return
	}
	a.decided[inst] = mask
	if inst > a.maxDecided {
		a.maxDecided = inst
	}
	a.tryDeliver()
}

func (a *MAgent) onDecisions(insts []int64, masks []uint64) {
	if !a.isLearner() && !a.isAcceptor() {
		return
	}
	for i, inst := range insts {
		var mask uint64
		if masks != nil {
			mask = masks[i]
		}
		if e, ok := a.store[inst]; ok {
			e.decided = true
			mask = e.mask
		}
		if a.isLearner() {
			if e, ok := a.values[inst]; ok {
				mask = e.mask
			}
			a.learnDecision(inst, mask)
		}
	}
}

func (a *MAgent) onRetransmit(m mRetransmit) {
	if !a.isLearner() {
		return
	}
	a.learnValue(m.Inst, m.VID, m.Val, m.Mask)
	if m.Decided {
		a.learnDecision(m.Inst, m.Mask)
	}
}

// tryDeliver advances the in-order delivery frontier. Decided instances
// whose partition mask doesn't intersect this learner's subscription are
// skipped (partitioned mode: "learners may receive decision messages for
// partitions they are not interested in, in which case they discard the
// messages").
func (a *MAgent) tryDeliver() {
	for {
		mask, dec := a.decided[a.nextDeliver]
		if !dec {
			return
		}
		e, ok := a.values[a.nextDeliver]
		if !ok {
			if mask != 0 && mask&a.myParts == 0 {
				// Not our partition: skip without a value.
				delete(a.decided, a.nextDeliver)
				a.nextDeliver++
				continue
			}
			return // value lost; gap recovery will fetch it
		}
		inst := a.nextDeliver
		delete(a.decided, inst)
		delete(a.values, inst)
		a.nextDeliver++
		a.backlog++
		a.maybeNotifySlow()
		a.process(inst, e)
	}
}

// process models command execution at the learner: each instance occupies
// the node's CPU for ExecCost per value before the next one is handled.
func (a *MAgent) process(inst int64, e *logEntry) {
	finish := func() {
		a.backlog--
		if a.Confirm != nil {
			a.Confirm(inst)
		}
		if a.DeliverBatch != nil {
			a.DeliverBatch(inst, e.val)
		}
		for _, v := range e.val.Vals {
			a.DeliveredBytes += int64(v.Bytes)
			a.DeliveredMsgs++
			if v.Born != 0 {
				lat := a.env.Now() - v.Born
				a.LatencySum += lat
				a.LatencyCount++
				if a.Latencies != nil {
					*a.Latencies = append(*a.Latencies, lat)
				}
			}
			if a.Deliver != nil {
				a.Deliver(inst, v)
			}
		}
	}
	if a.Cfg.ExecCost > 0 && len(e.val.Vals) > 0 {
		a.env.Work(time.Duration(len(e.val.Vals))*a.Cfg.ExecCost, finish)
	} else {
		finish()
	}
}

// maybeNotifySlow sends at most one in-flight flow-control notification
// when the backlog exceeds the threshold.
func (a *MAgent) maybeNotifySlow() {
	if a.Cfg.FlowThreshold <= 0 || a.backlog <= a.Cfg.FlowThreshold || a.notified {
		return
	}
	a.notified = true
	a.env.Send(a.preferential(), mSlowDown{Backlog: a.backlog})
	a.env.After(50*time.Millisecond, func() { a.notified = false })
}

// armLearnerTimers starts gap recovery and version reporting.
func (a *MAgent) armLearnerTimers() {
	a.env.After(a.Cfg.Retry, func() {
		a.requestMissing()
		a.armLearnerTimers()
	})
	a.armVersionTimer()
}

func (a *MAgent) armVersionTimer() {
	a.env.After(a.Cfg.GCInterval, func() {
		a.env.Send(a.preferential(), mVersion{Learner: a.env.ID(), Inst: a.nextDeliver - 1})
		a.armVersionTimer()
	})
}

// requestMissing asks for instances that block the delivery frontier (lost
// 2A payloads or lost decisions). It also probes a window beyond the highest
// known decision in case a whole decision announcement was lost. Requests
// alternate between the preferential acceptor and the coordinator, which
// always knows the authoritative decision state.
func (a *MAgent) requestMissing() {
	stalled := a.nextDeliver == a.lastFrontier
	a.lastFrontier = a.nextDeliver
	hi := a.maxDecided
	if stalled && hi < a.nextDeliver+8 {
		// No progress and nothing known to be pending: a whole decision
		// announcement may have been lost; probe a small window ahead.
		hi = a.nextDeliver + 8
	}
	var miss []int64
	for inst := a.nextDeliver; inst <= hi && len(miss) < 48; inst++ {
		_, dec := a.decided[inst]
		_, hasVal := a.values[inst]
		if !dec || !hasVal {
			miss = append(miss, inst)
		}
	}
	if len(miss) == 0 {
		return
	}
	to := a.preferential()
	if a.askCoord {
		to = a.Cfg.Coordinator()
	}
	a.askCoord = !a.askCoord
	a.env.Send(to, mRetransmitReq{Insts: miss})
}

// NextDeliver returns the learner's delivery frontier.
func (a *MAgent) NextDeliver() int64 { return a.nextDeliver }

// Window returns the coordinator's current flow-control window.
func (a *MAgent) Window() int { return a.window }
