// Package ringpaxos implements the two Ring Paxos atomic broadcast
// protocols of the dissertation's Chapter 3 (DSN 2010) plus the partitioned
// and speculative extensions of Chapter 4 (DSN 2011):
//
//   - M-Ring Paxos (Algorithm 2): payload dissemination by network-level
//     ip-multicast, ordering by a logical ring of f+1 acceptors whose last
//     process is the coordinator; consensus is on value ids.
//   - U-Ring Paxos (Algorithm 3): all communication is pipelined unicast
//     around a ring that contains every process.
//
// Both variants batch application values (8 KB / 32 KB packets), pipeline a
// window of outstanding instances, recover lost messages by retransmission,
// garbage-collect acceptor state using learner versions, and implement the
// learner-driven flow control of §3.3.6.
//
// # Hot-path design
//
// The steady-state data path is allocation-free: per-instance records live
// in ring-indexed instance logs (core.InstLog) instead of maps, batch
// backing arrays come from a per-agent free list (core.BatchPool) and are
// recycled when the learner-version garbage collection trims the instance,
// periodic and per-instance timers use the environment's allocation-free
// fire-and-forget path (proto.AfterFree), and the messages that travel hop
// by hop around the ring (proposals, Phase 2B) are pooled pointers
// recycled by their final consumer.
package ringpaxos

import (
	"math/bits"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/wal"
)

// DefaultGCInterval is the learner-version reporting period (§3.3.7)
// both Ring Paxos variants resolve a zero GCInterval to. Garbage
// collection is on by default everywhere; pass a negative interval for
// the explicit opt-out.
const DefaultGCInterval = 50 * time.Millisecond

// MConfig configures an M-Ring Paxos deployment.
type MConfig struct {
	// Ring is the m-quorum of acceptors laid out as a directed logical
	// ring. The coordinator is the LAST element (§3.3.2).
	Ring []proto.NodeID
	// Spares are acceptors outside the ring, used on reconfiguration.
	Spares []proto.NodeID
	// Learners deliver decided values.
	Learners []proto.NodeID
	// Group is the ip-multicast group; ring acceptors and learners must be
	// subscribed. In partitioned mode it is the decision group and
	// PartGroups[i] carries Phase 2A traffic of partition i.
	Group proto.GroupID
	// PartGroups enables the Chapter 4 partitioned mode when non-empty:
	// one multicast group per partition. Acceptors must subscribe to all
	// of them; each learner only to its own partitions plus Group.
	PartGroups []proto.GroupID
	// LearnerParts gives, per learner, the bitmask of partitions it
	// subscribes to (parallel to Learners; nil means every learner gets
	// everything).
	LearnerParts map[proto.NodeID]uint64

	// Window is the maximum number of simultaneously open instances.
	Window int
	// BatchBytes is the packet size (paper: 8 KB for M-Ring Paxos).
	BatchBytes int
	// BatchDelay flushes a non-empty batch after this delay.
	BatchDelay time.Duration
	// Retry is the retransmission / gap-recovery timeout.
	Retry time.Duration
	// DiskSync makes acceptors persist votes before forwarding Phase 2B
	// (Recoverable Ring Paxos). Writes happen in parallel across the ring
	// because every acceptor starts its write at 2A delivery (§3.5.5).
	DiskSync bool
	// ExecCost is the learner-side processing cost per delivered value.
	ExecCost time.Duration
	// FlowThreshold is the learner backlog (in undelivered decided
	// instances) that triggers a slow-down notification; 0 disables flow
	// control.
	FlowThreshold int
	// GCInterval is how often learners report their version (§3.3.7).
	// Zero resolves to DefaultGCInterval; a negative value disables
	// version reporting entirely (acceptor stores then grow by one entry
	// per instance forever — the explicit escape hatch for deployments
	// that pin GC-free schedules).
	GCInterval time.Duration
	// Speculative delivers values to learners at Phase 2A receipt, before
	// they are decided (Chapter 4 speculative execution).
	Speculative bool
	// Failover enables the liveness layer (§3.3): ring-neighbor
	// heartbeats, deterministic suspicion, coordinator election among the
	// surviving ring members (refilled from Spares) and ring-change
	// propagation. The zero value disables it — no timer, no message.
	Failover Failover
	// RecycleBatches lets the coordinator return batch backing arrays to
	// its free list once the learner-version garbage collection trims the
	// instance (plus one quarantine round). Enable it only when every
	// learner consumes delivered batches synchronously — i.e. Deliver /
	// SpecDeliver / DeliverBatch callbacks do not retain the batch's Vals
	// slice past their return. Deployments that feed a Multi-Ring Paxos
	// merger must leave it off: the deterministic merge buffers batches
	// unboundedly when a ring outruns λ (the Chapter 5 overflow regime),
	// long past any garbage-collection horizon.
	RecycleBatches bool
	// Durability selects what a fault.Lose crash costs this process (see
	// recovery.go). The zero value, DurModeled, is the legacy semantics:
	// votes survive the crash as if stable storage existed but cost
	// nothing, keeping every pre-durability golden byte-identical.
	// DurWAL additionally requires the agent's Log field to be set.
	Durability Durability
	// GCEvict, when positive, evicts a learner from the garbage-collection
	// version tracker after that much report silence, so a crashed learner
	// stops pinning the trim floor forever; an evicted learner that
	// returns after the floor passed its frontier catches up by snapshot
	// (mSnapshot). Zero keeps the floor pinned — the legacy semantics.
	GCEvict time.Duration
	// SnapshotBytes is the modeled application snapshot size for snapshot
	// catch-up transfers. Zero resolves to 64 KB.
	SnapshotBytes int
}

func (c *MConfig) defaults() {
	if c.Window == 0 {
		c.Window = 64
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = 8 << 10
	}
	if c.BatchDelay == 0 {
		c.BatchDelay = 500 * time.Microsecond
	}
	if c.Retry == 0 {
		c.Retry = 20 * time.Millisecond
	}
	if c.GCInterval == 0 {
		c.GCInterval = DefaultGCInterval
	}
	if c.GCInterval < 0 {
		c.GCInterval = 0 // explicit off: no version timer is ever armed
	}
	if c.SnapshotBytes == 0 {
		c.SnapshotBytes = 64 << 10
	}
}

// Coordinator returns the coordinator (last ring position).
func (c MConfig) Coordinator() proto.NodeID { return c.Ring[len(c.Ring)-1] }

// msgProposePool recycles proposal envelopes: a proposal is created at the
// proposing node and consumed exactly once, by the coordinator that drains
// it into a batch.
var msgProposePool proto.MsgPool[MsgPropose]

// phase2BPool recycles Phase 2B messages, which travel the ring hop by hop
// and are consumed either by the coordinator (deciding) or by an acceptor
// that holds them while its Phase 2A is outstanding.
var phase2BPool proto.MsgPool[mPhase2B]

// logEntry is an acceptor/coordinator record of one instance, stored
// in-place in the acceptor's instance log. A vid of zero means the entry
// only parks a Phase 2B (the 2A has not arrived); such entries behave as
// absent everywhere except the 2B-resume path.
type logEntry struct {
	vid     core.ValueID
	val     core.Batch
	bytes   int // cached val.Size(), so accounting never re-walks the batch
	mask    uint64
	decided bool
	pooled  bool // val.Vals came from this agent's pool; recycle on GC

	diskDone bool
	// Parked Phase 2B (Task 5's v-vid check), formerly a separate map.
	has2B  bool
	p2bRnd int64
	p2bVID core.ValueID
}

// openInst is the coordinator's bookkeeping for an in-flight instance.
// Retransmission timers are fire-and-forget: they look the instance up when
// they fire and no-op if it has decided, so no cancel handle is kept.
type openInst struct {
	vid    core.ValueID
	val    core.Batch
	mask   uint64
	pooled bool
}

// learnEntry merges the learner's value and decision tables: one record per
// undelivered instance, holding whichever halves have arrived.
type learnEntry struct {
	vid     core.ValueID
	val     core.Batch
	mask    uint64
	hasVal  bool
	decided bool
	decMask uint64
	// decVID is the value id the decision chose (zero when the decision
	// predates vid-carrying announcements, e.g. a retransmit of a trimmed
	// record). A held value only delivers when its vid matches.
	decVID core.ValueID
}

// MAgent is one M-Ring Paxos process. Roles follow from the configuration:
// ring acceptors order, the last ring process coordinates, learners deliver.
// Any node (including dedicated proposer nodes) can Propose.
type MAgent struct {
	Cfg MConfig
	// Deliver is invoked on learners for every value in delivery order.
	Deliver core.DeliverFunc
	// SpecDeliver, when Cfg.Speculative, is invoked on learners at Phase 2A
	// receipt, in receipt order, before the value is decided.
	SpecDeliver core.DeliverFunc
	// Confirm is invoked on learners when a speculatively delivered
	// instance's order is confirmed.
	Confirm func(inst int64)
	// DeliverBatch, if set, is invoked on learners once per decided
	// instance, in instance order, with the instance's whole batch —
	// including empty/marker batches. Multi-Ring Paxos uses it to merge
	// rings at consensus-instance granularity.
	DeliverBatch func(inst int64, b core.Batch)
	// Trace, if set, folds this learner's delivered command sequence into
	// a delivery-equivalence digest (see core.DelivTrace). Pure
	// observation: it sends nothing and consumes no simulated time.
	Trace *core.DelivTrace
	// Log is this process's write-ahead log, required when Cfg.Durability
	// is DurWAL. It models the stable medium, so the DEPLOYMENT owns it
	// (the rig sets it before Start): it survives the agent's crash the
	// way a disk survives a process, and replayWAL reads it on restart.
	Log *wal.Log

	env proto.Env

	// --- coordinator state ---
	isCoord      bool
	phase1Done   bool
	crnd         int64
	promises     map[proto.NodeID]mPhase1B
	pending      []core.Value
	pendingBytes int
	batchArmed   bool
	next         int64
	open         core.InstLog[openInst]
	pool         core.BatchPool
	window       int
	lastSlow     time.Duration
	// decQ accumulates decided instance ids between flushes. The buffer is
	// pooled: once multicast, the last receiver recycles it (core.DecBuf),
	// so a steady decision stream reuses the same few arrays.
	decQ        *core.DecBuf
	timersArmed bool

	// --- acceptor state ---
	rnd     int64
	maxInst int64
	ring    []proto.NodeID
	// coord is the coordinator this node currently routes proposals and
	// gap-recovery requests to; ring changes re-aim it.
	coord proto.NodeID
	// fo is the failure detector / election state (inert unless
	// Cfg.Failover is enabled).
	fo foState
	// retired marks a DurVolatile process that restarted after losing its
	// acceptor state: classic Paxos forbids it from ever promising or
	// voting again (it cannot remember what it promised), so it stays out
	// of the acceptor and coordinator roles for the rest of the run. The
	// learner role is unaffected.
	retired   bool
	store     core.InstLog[logEntry]
	storeByte int
	// versions tracks learner-reported applied instances and the trim
	// floor (§3.3.7) through the shared garbage-collection subsystem.
	versions   core.VersionTracker
	quarantine [][]core.Value // trimmed pooled arrays awaiting one more GC round

	// --- learner state ---
	insts        core.InstLog[learnEntry]
	nextDeliver  int64
	maxDecided   int64
	backlog      int
	notified     bool
	askCoord     bool
	lastFrontier int64
	myParts      uint64

	// Pre-bound timer callbacks, assigned once at Start so the periodic
	// paths schedule existing func values instead of allocating closures.
	batchFn       func()
	retryFn       func(int64)
	decFlushFn    func()
	winRecFn      func()
	learnRetryFn  func()
	versionFn     func()
	notifyResetFn func()

	// DeliveredBytes/DeliveredMsgs count application payload delivered at
	// this learner.
	DeliveredBytes int64
	DeliveredMsgs  int64
	// LatencySum accumulates propose-to-deliver latency for values whose
	// Born field is set.
	LatencySum   time.Duration
	LatencyCount int64
	// Latencies, if non-nil before Start, records each delivery latency.
	Latencies *[]time.Duration
	// SnapshotsInstalled counts snapshot catch-ups performed by this
	// learner (mSnapshot installs that actually moved the frontier).
	SnapshotsInstalled int64
	// DupSuppressed counts stamped commands that were decided again (a
	// client retry won a second instance) and were acked from the dedup
	// table instead of re-executed.
	DupSuppressed int64

	// dedup is the exactly-once layer's replicated per-client
	// last-applied-seq table (see core.DedupTable). Nil until the first
	// stamped value is seen, so deployments without client sessions never
	// allocate or consult it. Learners feed it at delivery; acceptors fold
	// decided stamped values into theirs so the snapshot path can carry
	// the table to catch-up learners.
	dedup *core.DedupTable
	// dedupSup is a reusable scratch marking which values of the batch
	// being finished are duplicates (suppressed).
	dedupSup []bool
}

var _ proto.Handler = (*MAgent)(nil)

// Start implements proto.Handler.
func (a *MAgent) Start(env proto.Env) {
	a.env = env
	a.Cfg.defaults()
	a.window = a.Cfg.Window
	a.maxInst = -1
	a.ring = a.Cfg.Ring
	a.coord = a.Cfg.Coordinator()
	a.promises = make(map[proto.NodeID]mPhase1B)
	a.batchFn = func() { a.batchArmed = false; a.flush() }
	a.retryFn = a.retryInstance
	a.decFlushFn = a.decisionFlushTick
	a.winRecFn = a.windowRecoveryTick
	a.learnRetryFn = a.learnerRetryTick
	a.versionFn = a.versionTick
	a.notifyResetFn = func() { a.notified = false }
	a.myParts = ^uint64(0)
	if a.Cfg.LearnerParts != nil {
		if m, ok := a.Cfg.LearnerParts[env.ID()]; ok {
			a.myParts = m
		}
	}
	if env.ID() == a.Cfg.Coordinator() {
		a.becomeCoordinator(1, a.Cfg.Ring)
	}
	if a.isLearner() {
		a.armLearnerTimers()
	}
	if a.Cfg.Failover.Enabled() && (a.isAcceptor() || a.isSpare()) {
		// Ring members heartbeat from the start; spares arm the same tick
		// but stay passive until a reconfiguration pulls them into the ring.
		a.fo.tickFn = a.failoverTick
		proto.AfterFree(a.env, a.Cfg.Failover.Heartbeat, a.fo.tickFn)
	}
}

func (a *MAgent) isAcceptor() bool {
	for _, id := range a.ring {
		if id == a.env.ID() {
			return true
		}
	}
	return false
}

func (a *MAgent) isLearner() bool {
	for _, id := range a.Cfg.Learners {
		if id == a.env.ID() {
			return true
		}
	}
	return false
}

func (a *MAgent) isSpare() bool { return ringContains(a.Cfg.Spares, a.env.ID()) }

// IsCoordinator reports whether this agent currently leads the ring with
// a completed Phase 1. Failover-aware callers (skip pacers, rigs) consult
// it instead of comparing against the static configuration.
func (a *MAgent) IsCoordinator() bool { return a.isCoord && a.phase1Done }

// Coordinator returns this agent's current view of the ring coordinator
// (re-aimed by ring changes after a failover). Client sessions composed
// with a proposer agent consult it to decide where a retry would go.
func (a *MAgent) Coordinator() proto.NodeID { return a.coord }

// DedupSeq returns the learner's last applied sequence for a client (0
// when unknown) — the dedup table's view, for tests and probes.
func (a *MAgent) DedupSeq(client int64) int64 { return a.dedup.Seq(client) }

// ringIndex returns this node's position in the current ring, or -1.
func (a *MAgent) ringIndex() int {
	for i, id := range a.ring {
		if id == a.env.ID() {
			return i
		}
	}
	return -1
}

// successor returns the next process after position i in the ring.
func (a *MAgent) successor(i int) proto.NodeID { return a.ring[i+1] }

// preferential returns the ring acceptor assigned to learner id for
// retransmissions and version reports (load balanced round-robin, §3.3.4).
func (a *MAgent) preferential() proto.NodeID {
	idx := 0
	for i, id := range a.Cfg.Learners {
		if id == a.env.ID() {
			idx = i
			break
		}
	}
	return a.ring[idx%len(a.ring)]
}

// becomeCoordinator starts Phase 1 with a fresh round and ring layout.
func (a *MAgent) becomeCoordinator(minRound int64, ring []proto.NodeID) {
	a.isCoord = true
	a.phase1Done = false
	a.promises = make(map[proto.NodeID]mPhase1B)
	r := (minRound << 10) | int64(a.env.ID())
	if r <= a.crnd {
		r = (((a.crnd >> 10) + 1) << 10) | int64(a.env.ID())
	}
	a.crnd = r
	m := mPhase1A{Rnd: a.crnd, Ring: ring}
	for _, id := range ring {
		a.env.Send(id, m)
	}
	a.env.After(a.Cfg.Retry, func() {
		if a.isCoord && !a.phase1Done {
			a.becomeCoordinator(a.crnd>>10, ring)
		}
	})
}

// TakeOver promotes this agent to coordinator over newRing (failover and
// reconfiguration entry point; the last element must be this node). The
// reconfigured ring is announced on the group once Phase 1 completes.
func (a *MAgent) TakeOver(newRing []proto.NodeID) {
	a.fo.tookOver = true
	a.becomeCoordinator((a.rnd>>10)+1, newRing)
}

// ProposeBatch opens a consensus instance for b immediately, bypassing
// batching and the flow-control window. Multi-Ring Paxos uses it for skip
// instances, which must not be delayed behind application traffic
// (Chapter 5: "the cost of executing any number of skip instances is the
// same as the cost of executing a single skip instance").
func (a *MAgent) ProposeBatch(b core.Batch) {
	if !a.isCoord || !a.phase1Done {
		return
	}
	a.startInstance(b, 0, false)
}

// InstancesStarted returns how many consensus instances this coordinator
// has opened (the k counter of Chapter 5, Algorithm 1).
func (a *MAgent) InstancesStarted() int64 { return a.next }

// Propose submits a value from this node.
func (a *MAgent) Propose(v core.Value) {
	if a.isCoord {
		a.enqueue(v)
		return
	}
	m := msgProposePool.Get()
	m.V = v
	a.env.Send(a.coord, m)
}

// Receive implements proto.Handler.
func (a *MAgent) Receive(from proto.NodeID, m proto.Message) {
	// Any traffic from the monitored ring predecessor is a sign of life
	// (one predictable branch when failover is disabled).
	if a.fo.mon && from == a.fo.pred {
		a.fo.last = a.env.Now()
	}
	switch msg := m.(type) {
	case *MsgPropose:
		if a.isCoord {
			a.enqueue(msg.V)
		} else if msg.V.Client != 0 {
			// A stamped proposal reached a node that cannot open an
			// instance for it — a demoted or retired ex-coordinator, via a
			// session with a stale ring view. Silence here would leave the
			// session backing off on timeout alone; reject with the current
			// coordinator view so it retries on evidence.
			n := proto.ProposeNackPool.Get()
			n.Client, n.Seq, n.Coord = msg.V.Client, msg.V.Seq, a.coord
			a.env.Send(proto.NodeID(msg.V.Client), n)
		}
		msgProposePool.Put(msg)
	case mPhase1A:
		a.onPhase1A(from, msg)
	case mPhase1B:
		a.onPhase1B(from, msg)
	case mPhase2A:
		a.onPhase2A(msg)
		msg.decBuf.Release()
	case *mPhase2B:
		a.onPhase2B(msg)
	case mDecision:
		a.onDecisions(msg.Insts, msg.Masks, msg.VIDs)
		msg.decBuf.Release()
	case mRetransmitReq:
		a.onRetransmitReq(from, msg)
	case mRetransmit:
		a.onRetransmit(msg)
	case mSlowDown:
		a.onSlowDown(msg)
	case proto.VersionReport:
		a.onVersion(msg)
	case mHeartbeat:
		// Pure liveness beacon; the prologue above already recorded it.
	case mTakeOver:
		a.onTakeOver(msg)
	case mRingChange:
		a.onRingChange(msg)
	case mSnapshot:
		a.onSnapshot(msg)
	case mRingStateReq:
		a.onRingStateReq(from)
	case mRingState:
		a.onRingState(msg)
	}
}

// LoseVolatile implements proto.VolatileLoser: a crash that destroys
// volatile state (fault.Lose) discards the staged client values awaiting
// proposal, then applies the configured Durability to the protocol state.
// Under the default DurModeled, acceptor votes, open instances and the
// learner's reorder buffer are retained — the protocol treats them as
// recoverable from stable storage that costs nothing. DurVolatile loses
// them honestly and retires the process from the acceptor/coordinator
// roles; DurWAL loses them and replays the write-ahead log. The learner's
// delivery state is retained in every mode: it models the application's
// own durable state, whose catch-up story is the snapshot path, not the
// protocol WAL.
func (a *MAgent) LoseVolatile() {
	a.pending = a.pending[:0]
	a.pendingBytes = 0
	a.fo.reset()
	switch a.Cfg.Durability {
	case DurVolatile:
		a.loseAcceptorState()
		a.retired = true
	case DurWAL:
		a.loseAcceptorState()
		a.replayWAL()
	}
	if a.Cfg.Failover.Enabled() && !a.retired {
		// The ring may have been reconfigured during the outage: learn the
		// current layout from a live member before re-arming the detector
		// (failoverTick holds the monitor off while needRing is set).
		a.fo.needRing = true
	}
}

// loseAcceptorState wipes everything a Lose crash destroys in a process
// with honest volatile state: promises, votes, the coordinator's soft
// state, and the garbage-collection bookkeeping.
func (a *MAgent) loseAcceptorState() {
	a.rnd = 0
	a.maxInst = -1
	a.store = core.InstLog[logEntry]{}
	a.storeByte = 0
	a.versions = core.VersionTracker{}
	a.quarantine = nil
	a.pool = core.BatchPool{}
	a.isCoord, a.phase1Done = false, false
	a.crnd = 0
	a.promises = make(map[proto.NodeID]mPhase1B)
	a.open = core.InstLog[openInst]{}
	a.decQ = nil
	a.timersArmed = false
	a.window = a.Cfg.Window
	a.fo.tookOver = false
}

// replayWAL rebuilds acceptor and coordinator state from the write-ahead
// log after loseAcceptorState. Replayed votes re-enter the store with
// diskDone set — the log IS the disk copy. A process that finds itself at
// its ring's coordinator position re-enters Phase 1 one round above its
// highest logged promise: unlike a volatile process it can prove every
// promise it ever made, so resuming coordinatorship is safe (the classic
// Paxos stable-storage rule that forces DurVolatile to retire instead).
func (a *MAgent) replayWAL() {
	a.Log.Replay(func(r wal.Record) {
		switch r.Kind {
		case wal.KindSnapshot:
			a.versions.SetFloor(r.Inst)
		case wal.KindPromise:
			if r.Rnd > a.rnd {
				a.rnd = r.Rnd
			}
		case wal.KindVote:
			if r.Inst < a.versions.Floor() {
				return
			}
			if r.Inst > a.maxInst {
				a.maxInst = r.Inst
			}
			size := r.Val.Size()
			e, _ := a.store.Put(r.Inst)
			a.storeByte += size - e.bytes
			e.vid, e.val, e.bytes, e.mask = r.VID, r.Val, size, r.Mask
			e.diskDone = true
		case wal.KindDecision:
			if r.Inst < a.versions.Floor() {
				return
			}
			e, _ := a.store.Put(r.Inst)
			e.decided = true
			if e.vid == 0 {
				e.vid, e.mask = r.VID, r.Mask
			} else {
				// Rebuild the acceptor-side dedup table from the replayed
				// decided batches (the table itself is volatile).
				a.foldDedup(r.Inst, e.val)
			}
		}
	})
	if n := len(a.ring); n > 0 && a.ring[n-1] == a.env.ID() {
		// Still this ring's coordinator (as far as it knows — a stale
		// layout's Phase 1 is fenced by higher-round promises, and the
		// needRing catch-up corrects the layout).
		a.becomeCoordinator((a.rnd>>10)+1, a.ring)
	}
}

// walOn reports whether this agent appends to a write-ahead log.
func (a *MAgent) walOn() bool { return a.Cfg.Durability == DurWAL && a.Log != nil }

// --- coordinator ---

func (a *MAgent) enqueue(v core.Value) {
	a.pending = append(a.pending, v)
	a.pendingBytes += v.Bytes
	if a.pendingBytes >= a.Cfg.BatchBytes {
		a.flush()
		return
	}
	if !a.batchArmed {
		a.batchArmed = true
		proto.AfterFree(a.env, a.Cfg.BatchDelay, a.batchFn)
	}
}

// flush opens instances for pending batches while the window allows. In
// partitioned mode values with different partition masks are batched
// separately so each batch travels only to the groups it concerns.
func (a *MAgent) flush() {
	if !a.isCoord || !a.phase1Done {
		return
	}
	for len(a.pending) > 0 && a.open.Len() < a.window {
		mask := a.pending[0].PartMask
		// Pre-count the batch so the pool hands out a right-sized array
		// (sizing by the whole backlog would inflate pooled arrays under
		// overload).
		n, b := 0, 0
		for _, v := range a.pending {
			if b < a.Cfg.BatchBytes && v.PartMask == mask {
				n++
				b += v.Bytes
			}
		}
		batch := a.pool.Get(n)
		bytes := 0
		rest := a.pending[:0]
		for _, v := range a.pending {
			if bytes < a.Cfg.BatchBytes && v.PartMask == mask {
				batch = append(batch, v)
				bytes += v.Bytes
				continue
			}
			rest = append(rest, v)
		}
		a.pending = rest
		a.pendingBytes -= bytes
		a.startInstance(core.Batch{Vals: batch}, mask, a.Cfg.RecycleBatches)
	}
}

// startInstance opens the next instance for b. pooled marks batches whose
// backing array belongs to this agent's pool and returns there on GC.
func (a *MAgent) startInstance(b core.Batch, mask uint64, pooled bool) {
	inst := a.next
	a.next++
	oi, _ := a.open.Put(inst)
	oi.vid = core.ValueID(a.crnd<<32 | inst)
	oi.val = b
	oi.mask = mask
	oi.pooled = pooled
	a.sendPhase2A(inst, oi)
}

func (a *MAgent) sendPhase2A(inst int64, oi *openInst) {
	m := mPhase2A{Inst: inst, Rnd: a.crnd, VID: oi.vid, Val: oi.val}
	if b := a.decQ; b != nil {
		a.decQ = nil
		m.Decided, m.DecidedMasks, m.DecidedVIDs, m.decBuf = b.Insts, b.Masks, b.Vids, a.armDecBuf(b)
	}
	if len(a.Cfg.PartGroups) == 0 || oi.mask == 0 {
		a.env.Multicast(a.Cfg.Group, m)
	} else {
		// Partitioned mode: one 2A per concerned partition group; decision
		// ids travel on the decision group (§4.2.2), so don't piggyback.
		if len(m.Decided) > 0 {
			a.env.Multicast(a.Cfg.Group, mDecision{Insts: m.Decided, Masks: m.DecidedMasks, VIDs: m.DecidedVIDs, decBuf: m.decBuf})
			m.Decided, m.DecidedMasks, m.DecidedVIDs, m.decBuf = nil, nil, nil, nil
		}
		rem := oi.mask
		for rem != 0 {
			p := bits.TrailingZeros64(rem)
			rem &^= 1 << p
			if p < len(a.Cfg.PartGroups) {
				a.env.Multicast(a.Cfg.PartGroups[p], m)
			}
		}
	}
	proto.AfterFreeArg(a.env, a.Cfg.Retry, a.retryFn, inst)
}

// armDecBuf stamps b with the decision group's subscriber count so the
// last receiver recycles it. Without a sizing environment it returns nil:
// the id arrays still travel in the message but fall to the garbage
// collector, exactly the pre-pooling behavior.
func (a *MAgent) armDecBuf(b *core.DecBuf) *core.DecBuf {
	if n := proto.GroupSizeOf(a.env, a.Cfg.Group); n > 0 {
		b.Arm(n)
		return b
	}
	return nil
}

// retryInstance is the fire-and-forget retransmission timer: it no-ops if
// the instance decided in the meantime.
func (a *MAgent) retryInstance(inst int64) {
	if oi, ok := a.open.Get(inst); ok {
		a.sendPhase2A(inst, oi)
	}
}

func (a *MAgent) onPhase1B(from proto.NodeID, m mPhase1B) {
	if !a.isCoord || m.Rnd != a.crnd || a.phase1Done {
		return
	}
	a.promises[from] = m
	if len(a.promises) < len(a.ring) {
		return // the whole ring is the m-quorum
	}
	a.phase1Done = true
	for _, p := range a.promises {
		if p.MaxInst >= a.next {
			a.next = p.MaxInst + 1
		}
	}
	if a.maxInst >= a.next {
		a.next = a.maxInst + 1
	}
	adopt := make(map[int64]vote)
	for _, p := range a.promises {
		for inst, v := range p.Votes {
			if e, ok := a.store.Get(inst); ok && e.decided {
				continue
			}
			if cur, ok := adopt[inst]; !ok || v.rnd > cur.rnd {
				adopt[inst] = v
			}
		}
	}
	insts := make([]int64, 0, len(adopt))
	for inst := range adopt {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		if inst >= a.next {
			a.next = inst + 1
		}
		oi, _ := a.open.Put(inst)
		// Keep the adopted vote's value id: consensus is on value ids, so
		// an instance the dead coordinator may already have decided at some
		// learner must be re-proposed as the SAME id, never a fresh one.
		oi.vid = adopt[inst].vid
		if oi.vid == 0 {
			oi.vid = core.ValueID(a.crnd<<32 | inst)
		}
		oi.val = adopt[inst].val
		oi.mask = 0
		oi.pooled = false
		a.sendPhase2A(inst, oi)
	}
	if a.fo.tookOver {
		// Announce the reconfigured ring to non-ring members (learners,
		// proposers never see mPhase1A): they re-aim gap recovery and
		// proposals at the new coordinator, and a stale ex-coordinator
		// that restarts observes the higher round and stands down.
		a.env.Multicast(a.Cfg.Group, mRingChange{Rnd: a.crnd, Ring: a.ring})
	}
	a.flush()
	if !a.timersArmed {
		a.timersArmed = true
		a.armDecisionFlush()
		a.armWindowRecovery()
	}
}

// armDecisionFlush periodically multicasts pending decision ids when there
// is no Phase 2A traffic to piggyback them on.
func (a *MAgent) armDecisionFlush() {
	proto.AfterFree(a.env, 2*a.Cfg.BatchDelay, a.decFlushFn)
}

func (a *MAgent) decisionFlushTick() {
	if !a.isCoord {
		return
	}
	if b := a.decQ; b != nil {
		a.decQ = nil
		a.env.Multicast(a.Cfg.Group, mDecision{Insts: b.Insts, Masks: b.Masks, VIDs: b.Vids, decBuf: a.armDecBuf(b)})
	}
	a.armDecisionFlush()
}

// armWindowRecovery slowly restores the window after flow-control slowdowns
// (§3.3.6: the coordinator gradually increases its window when it stops
// receiving notifications).
func (a *MAgent) armWindowRecovery() {
	proto.AfterFree(a.env, 100*time.Millisecond, a.winRecFn)
}

func (a *MAgent) windowRecoveryTick() {
	if !a.isCoord {
		return
	}
	if a.window < a.Cfg.Window && a.env.Now()-a.lastSlow > 300*time.Millisecond {
		a.window += max(1, a.window/4)
		if a.window > a.Cfg.Window {
			a.window = a.Cfg.Window
		}
		a.flush()
	}
	a.armWindowRecovery()
}

func (a *MAgent) onSlowDown(m mSlowDown) {
	if a.isCoord {
		a.window = max(1, a.window/2)
		a.lastSlow = a.env.Now()
		return
	}
	// Forward along the ring toward the coordinator.
	if i := a.ringIndex(); i >= 0 && i < len(a.ring)-1 {
		a.env.Send(a.successor(i), m)
	}
}

// decide finishes an instance at the coordinator.
func (a *MAgent) decide(inst int64) {
	oi, ok := a.open.Get(inst)
	if !ok {
		return
	}
	vid, val, mask, pooled := oi.vid, oi.val, oi.mask, oi.pooled
	a.open.Delete(inst)
	e, _ := a.store.Put(inst)
	e.vid, e.val, e.bytes, e.mask, e.decided = vid, val, val.Size(), mask, true
	e.pooled = pooled
	a.foldDedup(inst, val)
	if a.walOn() {
		// The decision is logged asynchronously: nothing gates on it (a
		// crashed coordinator recovers undecided instances via Phase 1
		// vote adoption; the record just shortcuts replay).
		a.Log.Append(a.env, wal.Record{Kind: wal.KindDecision, Inst: inst, VID: vid, Mask: mask}, nil)
	}
	if a.decQ == nil {
		a.decQ = core.GetDecBuf()
	}
	a.decQ.Insts = append(a.decQ.Insts, inst)
	a.decQ.Masks = append(a.decQ.Masks, mask)
	a.decQ.Vids = append(a.decQ.Vids, vid)
	if a.isLearner() {
		a.learnDecision(inst, mask, vid)
	}
	a.flush()
}

// --- acceptor ---

func (a *MAgent) onPhase1A(from proto.NodeID, m mPhase1A) {
	if m.Rnd <= a.rnd {
		return
	}
	if a.isCoord && m.Rnd > a.crnd {
		a.standDown()
	}
	a.rnd = m.Rnd
	if len(m.Ring) > 0 {
		a.ring = m.Ring // abide by the proposed ring
		a.fo.needRing = false
	}
	if !a.isAcceptor() || a.retired {
		// A retired process must never promise again: it cannot remember
		// what it promised before the crash.
		return
	}
	reply := mPhase1B{Rnd: a.rnd, MaxInst: a.maxInst, Votes: make(map[int64]vote)}
	a.store.Range(func(inst int64, e *logEntry) bool {
		if e.vid != 0 {
			reply.Votes[inst] = vote{rnd: a.rnd, vid: e.vid, val: e.val}
		}
		return true
	})
	if a.walOn() {
		// The promise is binding only once durable: persist it before the
		// 1B leaves (Phase 1 is rare, so the closure is off the hot path).
		to := from
		a.Log.Append(a.env, wal.Record{Kind: wal.KindPromise, Rnd: a.rnd},
			func() { a.env.Send(to, reply) })
		return
	}
	a.env.Send(from, reply)
}

func (a *MAgent) onPhase2A(m mPhase2A) {
	// Decision ids piggybacked on the 2A are processed by every role.
	if len(m.Decided) > 0 {
		a.onDecisions(m.Decided, m.DecidedMasks, m.DecidedVIDs)
	}
	if a.isCoord && m.Rnd > a.crnd {
		// Another coordinator with a higher round is running Phase 2: this
		// one is stale (its own 2As would be fenced everywhere) — retire.
		a.standDown()
	}
	if a.isLearner() {
		a.learnValue(m.Inst, m.VID, m.Val, m.Mask())
	}
	if !a.isAcceptor() || a.retired {
		// Retired processes never vote again (see LoseVolatile).
		return
	}
	if m.Rnd < a.rnd {
		return
	}
	a.rnd = m.Rnd
	if m.Inst < a.versions.Floor() {
		// A straggling duplicate of a trimmed instance (every learner
		// already applied it): re-creating its store entry below the GC
		// floor would leave a permanent ghost in the instance ring, since
		// garbage collection never looks below the floor again.
		return
	}
	if m.Inst > a.maxInst {
		a.maxInst = m.Inst
	}
	size := m.Val.Size()
	e, _ := a.store.Put(m.Inst)
	if !e.decided {
		a.storeByte += size - e.bytes
		e.vid, e.val, e.bytes, e.mask = m.VID, m.Val, size, m.Mask()
	}
	if a.walOn() {
		// The vote is appended to the log before the 2B may act on it —
		// the same parallel-across-the-ring write as DiskSync (§3.5.5),
		// but with the record retained for crash replay.
		inst, rnd, vid := m.Inst, m.Rnd, m.VID
		a.Log.Append(a.env,
			wal.Record{Kind: wal.KindVote, Inst: inst, Rnd: rnd, VID: vid, Mask: m.Mask(), Val: m.Val},
			func() { a.phase2AProceed(inst, rnd, vid) })
	} else if a.Cfg.DiskSync {
		// All ring acceptors write in parallel at 2A delivery (§3.5.5).
		inst, rnd, vid := m.Inst, m.Rnd, m.VID
		a.env.DiskWrite(size+headerBytes, func() { a.phase2AProceed(inst, rnd, vid) })
	} else {
		a.phase2AProceed(m.Inst, m.Rnd, m.VID)
	}
}

// phase2AProceed runs once the 2A's value is locally stable: the first ring
// position originates the 2B, later positions release a parked one.
func (a *MAgent) phase2AProceed(inst, rnd int64, vid core.ValueID) {
	if inst < a.versions.Floor() {
		return // trimmed while the disk write was in flight
	}
	e, _ := a.store.Put(inst)
	e.diskDone = true
	idx := a.ringIndex()
	if idx == 0 {
		p := phase2BPool.Get()
		p.Inst, p.Rnd, p.VID = inst, rnd, vid
		a.forward2B(p)
	} else if e.has2B && e.p2bVID == vid {
		p := phase2BPool.Get()
		p.Inst, p.Rnd, p.VID = inst, e.p2bRnd, e.p2bVID
		e.has2B = false
		a.onPhase2B(p)
	}
}

// Mask returns the partition mask of a 2A (0 = unpartitioned).
func (m mPhase2A) Mask() uint64 {
	if len(m.Val.Vals) == 0 {
		return 0
	}
	return m.Val.Vals[0].PartMask
}

func (a *MAgent) forward2B(m *mPhase2B) {
	idx := a.ringIndex()
	if idx < 0 {
		phase2BPool.Put(m)
		return
	}
	if idx == len(a.ring)-1 {
		// Coordinator: the 2B has traversed the whole m-quorum.
		inst := m.Inst
		phase2BPool.Put(m)
		a.decide(inst)
		return
	}
	a.env.Send(a.successor(idx), m)
}

func (a *MAgent) onPhase2B(m *mPhase2B) {
	if m.Inst < a.versions.Floor() {
		// Straggler for a trimmed (globally applied) instance: parking it
		// would ghost an entry below the GC floor forever.
		phase2BPool.Put(m)
		return
	}
	e, ok := a.store.Get(m.Inst)
	if !ok || e.vid == 0 || e.vid != m.VID || ((a.Cfg.DiskSync || a.walOn()) && !e.diskDone) {
		// Haven't ip-delivered the value yet (or still persisting): park the
		// 2B; it resumes when the 2A arrives (Task 5's v-vid check).
		p, _ := a.store.Put(m.Inst)
		p.has2B, p.p2bRnd, p.p2bVID = true, m.Rnd, m.VID
		phase2BPool.Put(m)
		return
	}
	a.forward2B(m)
}

func (a *MAgent) onRetransmitReq(from proto.NodeID, m mRetransmitReq) {
	snapped := false
	for _, inst := range m.Insts {
		if a.Cfg.GCEvict > 0 && inst < a.versions.Floor() {
			// The requested instance was trimmed everywhere — only possible
			// when staleness eviction let the floor pass a crashed learner's
			// frontier — so replay cannot help; transfer state instead
			// (§3.5.5). One snapshot covers every trimmed instance at once.
			if !snapped {
				snapped = true
				// The snapshot carries the dedup table (nil and zero wire
				// bytes without client sessions) so the catch-up learner
				// keeps suppressing retries of commands below the floor.
				a.env.Send(from, mSnapshot{
					Floor:      a.versions.Floor(),
					StateBytes: a.Cfg.SnapshotBytes,
					Dedup:      a.dedup.Snapshot(),
				})
			}
			continue
		}
		if e, ok := a.store.Get(inst); ok && e.vid != 0 {
			a.env.Send(from, mRetransmit{Inst: inst, VID: e.vid, Val: e.val, Mask: e.mask, Decided: e.decided})
		}
	}
}

// onSnapshot installs a state snapshot at a learner whose delivery
// frontier fell behind the trim floor: the skipped instances no longer
// exist anywhere, so the learner adopts the transferred state, jumps its
// frontier to the floor (recording the jump on its delivery trace) and
// resumes ordered delivery from there.
func (a *MAgent) onSnapshot(m mSnapshot) {
	if !a.isLearner() || m.Floor <= a.nextDeliver {
		return
	}
	for inst := a.nextDeliver; inst < m.Floor; inst++ {
		a.insts.Delete(inst)
	}
	a.Trace.Skip(a.env.Now(), m.Floor)
	a.nextDeliver = m.Floor
	if m.Floor-1 > a.maxDecided {
		a.maxDecided = m.Floor - 1
	}
	a.SnapshotsInstalled++
	if len(m.Dedup) > 0 {
		if a.dedup == nil {
			a.dedup = core.NewDedupTable()
		}
		a.dedup.Install(m.Dedup)
	}
	// Persisting the installed state is a real disk write: the learner
	// must never re-request a snapshot the application already holds.
	a.env.DiskWrite(m.StateBytes, nopFn)
	a.tryDeliver()
}

func (a *MAgent) onVersion(m proto.VersionReport) {
	if v, ok := a.versions.Version(int64(m.From)); ok && v >= m.Inst {
		// Stale or already-circulated report.
		if m.Hops >= len(a.ring)-1 {
			return
		}
	}
	a.versions.ReportAt(int64(m.From), m.Inst, a.env.Now())
	// Circulate once around the ring so every acceptor sees every version.
	if i := a.ringIndex(); i >= 0 && m.Hops < len(a.ring)-1 {
		m.Hops++
		a.env.Send(a.ring[(i+1)%len(a.ring)], m)
	}
	if a.Cfg.GCEvict > 0 && a.env.Now() > a.Cfg.GCEvict {
		// A learner silent longer than GCEvict stops pinning the trim
		// floor; it catches up by snapshot when it returns.
		a.versions.EvictStale(a.env.Now() - a.Cfg.GCEvict)
	}
	lo, hi, ok := a.versions.Advance(a.versions.Expect(len(a.Cfg.Learners)))
	if !ok {
		return
	}
	// Quarantine-then-recycle: arrays trimmed by the PREVIOUS pass go
	// back to the pool now, a full version round later. At trim time
	// every learner has reported the instance applied, but a learner
	// that hands batches to a downstream consumer (the Multi-Ring Paxos
	// merge) may still be holding the array for a short while; one
	// extra GC round (≥ GCInterval) retires that window before reuse.
	a.quarantine = a.pool.Recycle(a.quarantine)
	a.store.Trim(lo, hi, func(_ int64, e *logEntry) {
		if e.vid != 0 {
			a.storeByte -= e.bytes
		}
		if e.pooled {
			a.quarantine = append(a.quarantine, e.val.Vals)
		}
	})
	if a.walOn() {
		// The log trims in lockstep with the store, bounding replay work
		// the same way garbage collection bounds acceptor memory.
		a.Log.Trim(a.versions.Floor())
	}
	// The dedup table trims in concert with the GC floor: rows of clients
	// that announced departure (Retire) and whose last activity fell below
	// the floor are dropped; live clients are never forgotten.
	a.dedup.Trim(a.versions.Floor())
}

// StoreBytes reports the bytes of batch payload currently held by this
// acceptor (the circular-buffer occupancy of §3.5.2).
func (a *MAgent) StoreBytes() int { return a.storeByte }

// LiveLogLen reports how many per-instance records this agent currently
// retains across all of its instance logs (acceptor store, coordinator
// window, learner reorder buffer). Soak workloads sample it to prove the
// garbage collection keeps log occupancy flat over elapsed time.
func (a *MAgent) LiveLogLen() int { return a.store.Len() + a.open.Len() + a.insts.Len() }

// --- learner ---

func (a *MAgent) learnValue(inst int64, vid core.ValueID, val core.Batch, mask uint64) {
	if inst < a.nextDeliver {
		return
	}
	e, _ := a.insts.Put(inst)
	if e.hasVal && e.vid == vid {
		return
	}
	if e.decided && e.decVID != 0 && vid != e.decVID {
		// A stale coordinator's proposal for an instance whose decision
		// chose a different value id: accepting it could deliver a value
		// consensus never decided.
		return
	}
	e.vid, e.val, e.mask, e.hasVal = vid, val, mask, true
	if a.Cfg.Speculative && a.SpecDeliver != nil {
		for _, v := range val.Vals {
			a.SpecDeliver(inst, v)
		}
	}
	a.tryDeliver()
}

func (a *MAgent) learnDecision(inst int64, mask uint64, vid core.ValueID) {
	if inst < a.nextDeliver {
		return
	}
	e, _ := a.insts.Put(inst)
	if e.decided {
		return
	}
	e.decided, e.decMask, e.decVID = true, mask, vid
	if inst > a.maxDecided {
		a.maxDecided = inst
	}
	a.tryDeliver()
}

func (a *MAgent) onDecisions(insts []int64, masks []uint64, vids []core.ValueID) {
	if !a.isLearner() && !a.isAcceptor() {
		return
	}
	for i, inst := range insts {
		var mask uint64
		if masks != nil {
			mask = masks[i]
		}
		var vid core.ValueID
		if vids != nil {
			vid = vids[i]
		}
		if e, ok := a.store.Get(inst); ok && e.vid != 0 {
			if !e.decided {
				a.foldDedup(inst, e.val)
			}
			e.decided = true
			mask = e.mask
		}
		if a.isLearner() {
			if e, ok := a.insts.Get(inst); ok && e.hasVal {
				mask = e.mask
			}
			a.learnDecision(inst, mask, vid)
		}
	}
}

func (a *MAgent) onRetransmit(m mRetransmit) {
	if !a.isLearner() {
		return
	}
	a.learnValue(m.Inst, m.VID, m.Val, m.Mask)
	if m.Decided {
		a.learnDecision(m.Inst, m.Mask, m.VID)
	}
}

// tryDeliver advances the in-order delivery frontier. Decided instances
// whose partition mask doesn't intersect this learner's subscription are
// skipped (partitioned mode: "learners may receive decision messages for
// partitions they are not interested in, in which case they discard the
// messages").
func (a *MAgent) tryDeliver() {
	for {
		e, ok := a.insts.Get(a.nextDeliver)
		if !ok || !e.decided {
			return
		}
		if !e.hasVal {
			if e.decMask != 0 && e.decMask&a.myParts == 0 {
				// Not our partition: skip without a value.
				a.insts.Delete(a.nextDeliver)
				a.nextDeliver++
				continue
			}
			return // value lost; gap recovery will fetch it
		}
		if e.decVID != 0 && e.vid != e.decVID {
			// The held value is not the one the decision chose (a stale
			// pre-failover proposal won the race into the entry): drop it
			// and let gap recovery fetch the chosen value from the ring.
			e.hasVal = false
			return
		}
		inst := a.nextDeliver
		val := e.val
		a.insts.Delete(inst)
		a.nextDeliver++
		a.backlog++
		a.maybeNotifySlow()
		a.process(inst, val)
	}
}

// process models command execution at the learner: each instance occupies
// the node's CPU for ExecCost per value before the next one is handled.
// The batch is copied out of the instance log before the log slot is
// recycled, so the deferred completion reads stable data.
func (a *MAgent) process(inst int64, val core.Batch) {
	if a.Cfg.ExecCost > 0 && len(val.Vals) > 0 {
		a.env.Work(time.Duration(len(val.Vals))*a.Cfg.ExecCost, func() {
			a.finishInstance(inst, val)
		})
		return
	}
	a.finishInstance(inst, val)
}

func (a *MAgent) finishInstance(inst int64, val core.Batch) {
	a.backlog--
	sup := a.dedupPass(inst, val)
	if a.Trace != nil {
		now := a.env.Now()
		for i, v := range val.Vals {
			if sup != nil && sup[i] {
				continue
			}
			a.Trace.Note(now, inst, v)
		}
	}
	if a.Confirm != nil {
		a.Confirm(inst)
	}
	if a.DeliverBatch != nil {
		a.DeliverBatch(inst, val)
	}
	for i, v := range val.Vals {
		if sup != nil && sup[i] {
			continue
		}
		a.DeliveredBytes += int64(v.Bytes)
		a.DeliveredMsgs++
		if v.Born != 0 {
			lat := a.env.Now() - v.Born
			a.LatencySum += lat
			a.LatencyCount++
			if a.Latencies != nil {
				*a.Latencies = append(*a.Latencies, lat)
			}
		}
		if a.Deliver != nil {
			a.Deliver(inst, v)
		}
	}
}

// dedupPass runs the exactly-once check over a finished batch: the first
// application of a stamped (client, seq) commits it to the dedup table
// and acks the session; a sequence already in the table (a retry that won
// a second consensus instance) is acked FROM the table and marked for
// suppression — not traced, not delivered, not executed. The decision is
// a pure function of the decided sequence and the table it built, so
// every learner suppresses the same instances and delivered sequences
// stay replica-identical. Returns nil, at the cost of one field compare
// per value, when the batch carries no stamped values.
func (a *MAgent) dedupPass(inst int64, val core.Batch) []bool {
	stamped := false
	for i := range val.Vals {
		if val.Vals[i].Client != 0 {
			stamped = true
			break
		}
	}
	if !stamped {
		return nil
	}
	if a.dedup == nil {
		a.dedup = core.NewDedupTable()
	}
	if cap(a.dedupSup) < len(val.Vals) {
		a.dedupSup = make([]bool, len(val.Vals))
	}
	sup := a.dedupSup[:len(val.Vals)]
	for i, v := range val.Vals {
		sup[i] = false
		if v.Client == 0 {
			continue
		}
		if !a.dedup.Commit(v.Client, v.Seq, inst) {
			sup[i] = true
			a.DupSuppressed++
		}
		a.ackClient(v.Client, v.Seq)
	}
	return sup
}

// ackClient acknowledges (client, seq) to its session. Every learner acks
// independently; sessions dedup.
func (a *MAgent) ackClient(client, seq int64) {
	m := proto.ClientAckPool.Get()
	m.Client, m.Seq = client, seq
	a.env.Send(proto.NodeID(client), m)
}

// foldDedup folds a decided batch's stamped values into a NON-learner
// acceptor's dedup table, so the snapshot this acceptor may later serve
// (onRetransmitReq) carries the table and keeps a catch-up learner
// exactly-once consistent for commands below the trim floor. Gated on
// GCEvict (no snapshots can be sent otherwise) and skipped on learners,
// whose table is fed at delivery where duplicate detection must happen
// exactly once. Commit is idempotent per (client, seq), so folding the
// same decision through several paths is harmless.
func (a *MAgent) foldDedup(inst int64, val core.Batch) {
	if a.Cfg.GCEvict <= 0 {
		return
	}
	for _, v := range val.Vals {
		if v.Client == 0 {
			continue
		}
		if a.isLearner() {
			return
		}
		if a.dedup == nil {
			a.dedup = core.NewDedupTable()
		}
		a.dedup.Commit(v.Client, v.Seq, inst)
	}
}

// maybeNotifySlow sends at most one in-flight flow-control notification
// when the backlog exceeds the threshold.
func (a *MAgent) maybeNotifySlow() {
	if a.Cfg.FlowThreshold <= 0 || a.backlog <= a.Cfg.FlowThreshold || a.notified {
		return
	}
	a.notified = true
	a.env.Send(a.preferential(), mSlowDown{Backlog: a.backlog})
	proto.AfterFree(a.env, 50*time.Millisecond, a.notifyResetFn)
}

// armLearnerTimers starts the learner's two persistent periodic timers,
// once, at Start: the gap-recovery tick and — when GC is enabled — a
// SINGLE version-report chain. Each chain re-arms only itself; the old
// code re-armed the version chain from the retry tick as well, spawning a
// fresh version chain every Retry, so version traffic grew linearly with
// elapsed time (~50 chains per learner after one second at the default
// Retry).
func (a *MAgent) armLearnerTimers() {
	proto.AfterFree(a.env, a.Cfg.Retry, a.learnRetryFn)
	if a.Cfg.GCInterval > 0 {
		a.armVersionTimer()
	}
}

func (a *MAgent) learnerRetryTick() {
	a.requestMissing()
	proto.AfterFree(a.env, a.Cfg.Retry, a.learnRetryFn)
}

func (a *MAgent) armVersionTimer() {
	proto.AfterFree(a.env, a.Cfg.GCInterval, a.versionFn)
}

func (a *MAgent) versionTick() {
	a.env.Send(a.preferential(), proto.VersionReport{From: a.env.ID(), Inst: a.nextDeliver - 1})
	a.armVersionTimer()
}

// requestMissing asks for instances that block the delivery frontier (lost
// 2A payloads or lost decisions). It also probes a window beyond the highest
// known decision in case a whole decision announcement was lost. Requests
// alternate between the preferential acceptor and the coordinator, which
// always knows the authoritative decision state.
func (a *MAgent) requestMissing() {
	stalled := a.nextDeliver == a.lastFrontier
	a.lastFrontier = a.nextDeliver
	hi := a.maxDecided
	if stalled && hi < a.nextDeliver+8 {
		// No progress and nothing known to be pending: a whole decision
		// announcement may have been lost; probe a small window ahead.
		hi = a.nextDeliver + 8
	}
	var miss []int64
	for inst := a.nextDeliver; inst <= hi && len(miss) < 48; inst++ {
		e, ok := a.insts.Get(inst)
		if !ok || !e.decided || !e.hasVal || (e.decVID != 0 && e.vid != e.decVID) {
			miss = append(miss, inst)
		}
	}
	if len(miss) == 0 {
		return
	}
	to := a.preferential()
	if a.askCoord {
		to = a.coord
	}
	a.askCoord = !a.askCoord
	a.env.Send(to, mRetransmitReq{Insts: miss})
}

// NextDeliver returns the learner's delivery frontier.
func (a *MAgent) NextDeliver() int64 { return a.nextDeliver }

// Window returns the coordinator's current flow-control window.
func (a *MAgent) Window() int { return a.window }

// --- failover ---

// failoverTick is the periodic failure-detector beat: beacon the ring
// successor, check the predecessor's silence window. Spares and evicted
// ex-members keep ticking but stay passive while outside the ring.
func (a *MAgent) failoverTick() {
	if proto.EnvDown(a.env) || a.retired {
		// A crashed process runs no failure detector: drop the monitor aim
		// so the first post-restart tick re-observes a full silence window
		// instead of acting on a timestamp from before the outage. A
		// retired process must not beacon either — peers should treat the
		// amnesiac as dead and reconfigure the ring around it.
		a.fo.mon = false
	} else if i := a.ringIndex(); i >= 0 && len(a.ring) > 1 {
		n := len(a.ring)
		a.env.Send(a.ring[(i+1)%n], mHeartbeat{Rnd: a.rnd})
		if a.fo.needRing {
			// Freshly restarted: hold the detector until a live member
			// confirms the ring layout — suspicion computed from the stale
			// pre-crash ring would churn a ring that already moved on.
			a.fo.mon = false
			a.requestRingState()
		} else {
			pred := a.ring[(i-1+n)%n]
			if a.fo.observe(pred, a.env.Now(), a.Cfg.Failover.suspectAfter()) {
				a.suspectPred(pred)
			}
		}
	} else {
		a.fo.mon = false
	}
	proto.AfterFree(a.env, a.Cfg.Failover.Heartbeat, a.fo.tickFn)
}

// requestRingState asks one ring member for the current layout, rotating
// the target each tick so a dead first choice does not stall catch-up.
func (a *MAgent) requestRingState() {
	n := len(a.ring)
	i := a.ringIndex()
	if n <= 1 || i < 0 {
		a.fo.needRing = false
		return
	}
	off := 1 + a.fo.askIdx%(n-1)
	a.fo.askIdx++
	a.env.Send(a.ring[(i+off)%n], mRingStateReq{})
}

func (a *MAgent) onRingStateReq(from proto.NodeID) {
	a.env.Send(from, mRingState{Rnd: a.rnd, Ring: a.ring})
}

// onRingState adopts the layout a live member reported after this node's
// restart. Any reply clears needRing — even "your layout is current"
// arms the detector — but only a layout at or above the local round is
// adopted (a reply from a node staler than us must not rewind the ring).
func (a *MAgent) onRingState(m mRingState) {
	a.fo.needRing = false
	if len(m.Ring) == 0 || m.Rnd < a.rnd {
		return
	}
	if a.isCoord && m.Rnd > a.crnd {
		a.standDown()
	}
	a.rnd = m.Rnd
	a.ring = m.Ring
	a.coord = m.Ring[len(m.Ring)-1]
}

// suspectPred declares the ring predecessor dead, lays out a ring of the
// survivors (refilled from spares) and nominates the highest-id live
// acceptor as coordinator. If a prior nomination produced no round
// progress, foState.suspect already escalated past that nominee.
func (a *MAgent) suspectPred(pred proto.NodeID) {
	a.fo.suspect(pred, a.rnd)
	newRing := a.electRing()
	if len(newRing) == 0 {
		return
	}
	nom := newRing[len(newRing)-1]
	a.fo.note(nom, a.rnd, a.env.Now())
	if nom == a.env.ID() {
		a.TakeOver(newRing)
		return
	}
	a.env.Send(nom, mTakeOver{Rnd: a.rnd, Ring: newRing})
}

// electRing deterministically lays out the post-failure ring: the current
// ring's survivors in order, refilled from configured spares up to the
// original size, with the highest-id survivor moved to the coordinator
// (last) position. Every correct detector computes the same layout from
// the same dead set, so concurrent suspicions converge on one nominee.
func (a *MAgent) electRing() []proto.NodeID {
	var survivors []proto.NodeID
	for _, id := range a.ring {
		if !a.fo.dead[id] {
			survivors = append(survivors, id)
		}
	}
	if len(survivors) == 0 {
		return nil
	}
	nom := survivors[0]
	for _, id := range survivors {
		if id > nom {
			nom = id
		}
	}
	out := make([]proto.NodeID, 0, len(a.Cfg.Ring))
	for _, id := range survivors {
		if id != nom {
			out = append(out, id)
		}
	}
	for _, id := range a.Cfg.Spares {
		if len(out)+1 >= len(a.Cfg.Ring) {
			break
		}
		if !a.fo.dead[id] && !ringContains(a.ring, id) && !ringContains(out, id) {
			out = append(out, id)
		}
	}
	return append(out, nom)
}

func (a *MAgent) onTakeOver(m mTakeOver) {
	if !a.Cfg.Failover.Enabled() || a.retired || len(m.Ring) == 0 || m.Ring[len(m.Ring)-1] != a.env.ID() {
		return
	}
	if a.isCoord && sameRing(a.ring, m.Ring) {
		return // already coordinating (or running Phase 1 over) this layout
	}
	if m.Rnd > a.rnd {
		a.rnd = m.Rnd
	}
	a.TakeOver(m.Ring)
}

func (a *MAgent) onRingChange(m mRingChange) {
	if len(m.Ring) == 0 || m.Rnd < a.rnd {
		return
	}
	if a.isCoord && m.Rnd > a.crnd {
		a.standDown()
	}
	a.rnd = m.Rnd
	a.ring = m.Ring
	a.coord = m.Ring[len(m.Ring)-1]
	a.fo.needRing = false
}

// standDown retires a stale coordinator that observed a higher round.
// Every acceptor fences its Phase 1A/2A messages against the new round,
// so retrying its open instances could never succeed — it would only
// re-announce old-round values to learners. Queued decision ids are
// flushed first: decisions are final at any round, and their vids let
// learners fence them against re-proposals.
func (a *MAgent) standDown() {
	if !a.isCoord {
		return
	}
	if b := a.decQ; b != nil {
		a.decQ = nil
		a.env.Multicast(a.Cfg.Group, mDecision{Insts: b.Insts, Masks: b.Masks, VIDs: b.Vids, decBuf: a.armDecBuf(b)})
	}
	a.isCoord, a.phase1Done = false, false
	a.open = core.InstLog[openInst]{}
	a.pending = a.pending[:0]
	a.pendingBytes = 0
	a.timersArmed = false
	a.fo.tookOver = false
}
