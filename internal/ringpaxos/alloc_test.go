package ringpaxos

// Allocation guards and microbenchmarks for the batched hot path. The
// guards pin the allocation-free property this package advertises: once
// slabs, rings and pools are warm, staging a value into an open batch
// performs zero heap allocations, and a full propose→deliver cycle stays
// within a small per-value budget (batch arrays and wire boxing amortized
// over the batch).

import (
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
)

// benchM wires a minimal M-Ring deployment (2 acceptors, 1 learner) with
// counting-only delivery, warmed past Phase 1 and first flushes.
func benchM(batchBytes int) (*lan.LAN, *MAgent, *int) {
	cfg := MConfig{
		Ring:           []proto.NodeID{0, 1},
		Learners:       []proto.NodeID{100},
		Group:          1,
		BatchBytes:     batchBytes,
		RecycleBatches: true,
	}
	l := lan.New(lan.DefaultConfig(), 1)
	delivered := new(int)
	for _, id := range []proto.NodeID{0, 1, 100} {
		a := &MAgent{Cfg: cfg}
		if id == 100 {
			a.Deliver = func(int64, core.Value) { *delivered++ }
		}
		l.AddNode(id, a)
		l.Subscribe(1, id)
	}
	l.Start()
	l.Run(50 * time.Millisecond) // Phase 1 + timer warm-up
	coord := l.Node(cfg.Coordinator()).Handler().(*MAgent)
	return l, coord, delivered
}

// benchU wires a 3-process U-Ring, all acceptors and learners.
func benchU(batchBytes int) (*lan.LAN, *UAgent, *int) {
	cfg := UConfig{
		Ring:       []proto.NodeID{0, 1, 2},
		Learners:   []proto.NodeID{0, 1, 2},
		BatchBytes: batchBytes,
	}
	l := lan.New(lan.DefaultConfig(), 1)
	delivered := new(int)
	agents := make([]*UAgent, 3)
	for i := range agents {
		agents[i] = &UAgent{Cfg: cfg}
		l.AddNode(proto.NodeID(i), agents[i])
	}
	agents[2].Deliver = func(int64, core.Value) { *delivered++ }
	l.Start()
	l.Run(50 * time.Millisecond)
	return l, agents[0], delivered
}

// runSteadyState drives n values through propose→deliver and returns once
// the probe learner has them all.
func runSteadyState(l *lan.LAN, propose func(core.Value), delivered *int, n, size int, id0 int64) {
	want := *delivered + n
	for i := 0; i < n; i++ {
		propose(core.Value{ID: core.ValueID(id0 + int64(i)), Bytes: size})
	}
	for *delivered < want {
		l.Run(time.Millisecond)
	}
}

// TestMRingBatchStagingAllocFree pins the per-value staging path — the
// coordinator accepting a value into an open batch — at exactly zero
// allocations per value once warm.
func TestMRingBatchStagingAllocFree(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Huge batch limit: values accumulate in the slab without flushing, so
	// the measurement isolates the staging path.
	l, coord, delivered := benchM(1 << 20)
	runSteadyState(l, coord.Propose, delivered, 4096, 128, 1<<20) // warm slab + pools
	id := int64(1 << 30)
	avg := testing.AllocsPerRun(4096, func() {
		id++
		coord.Propose(core.Value{ID: core.ValueID(id), Bytes: 16})
	})
	if avg != 0 {
		t.Fatalf("batched staging path allocates %.2f objects/value, want 0", avg)
	}
}

// TestURingBatchStagingAllocFree is the U-Ring counterpart.
func TestURingBatchStagingAllocFree(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	l, coord, delivered := benchU(1 << 20)
	runSteadyState(l, coord.Propose, delivered, 4096, 128, 1<<20)
	id := int64(1 << 30)
	avg := testing.AllocsPerRun(4096, func() {
		id++
		coord.Propose(core.Value{ID: core.ValueID(id), Bytes: 16})
	})
	if avg != 0 {
		t.Fatalf("batched staging path allocates %.2f objects/value, want 0", avg)
	}
}

// TestMRingSteadyStateAllocBudget bounds the full propose→deliver cycle:
// per value, end to end, across coordinator, acceptors and learner. The
// remaining per-instance costs (decision-id queues, 2A boxing) amortize
// over ~60-value batches, so the budget is well under one object per value;
// before the slab/ring/pool rework this path cost ~10 objects per value.
func TestMRingSteadyStateAllocBudget(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	l, coord, delivered := benchM(8 << 10)
	runSteadyState(l, coord.Propose, delivered, 8192, 128, 1<<20) // warm everything
	const n = 8192
	avg := testing.AllocsPerRun(1, func() {
		runSteadyState(l, coord.Propose, delivered, n, 128, 1<<30)
	}) / n
	if avg > 1.0 {
		t.Fatalf("steady-state propose→deliver allocates %.2f objects/value, want ≤ 1.0", avg)
	}
	t.Logf("steady-state M-Ring propose→deliver: %.3f allocs/value", avg)
}

// TestURingSteadyStateAllocBudget is the U-Ring counterpart.
func TestURingSteadyStateAllocBudget(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	l, coord, delivered := benchU(32 << 10)
	runSteadyState(l, coord.Propose, delivered, 8192, 128, 1<<20)
	const n = 8192
	avg := testing.AllocsPerRun(1, func() {
		runSteadyState(l, coord.Propose, delivered, n, 128, 1<<30)
	}) / n
	if avg > 1.0 {
		t.Fatalf("steady-state propose→deliver allocates %.2f objects/value, want ≤ 1.0", avg)
	}
	t.Logf("steady-state U-Ring propose→deliver: %.3f allocs/value", avg)
}

// BenchmarkMRingProposeDeliver measures the full ordered-delivery cycle of
// M-Ring Paxos on the simulated cluster, per value.
func BenchmarkMRingProposeDeliver(b *testing.B) {
	l, coord, delivered := benchM(8 << 10)
	runSteadyState(l, coord.Propose, delivered, 4096, 128, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	runSteadyState(l, coord.Propose, delivered, b.N, 128, 1<<30)
}

// BenchmarkURingProposeDeliver is the U-Ring counterpart.
func BenchmarkURingProposeDeliver(b *testing.B) {
	l, coord, delivered := benchU(32 << 10)
	runSteadyState(l, coord.Propose, delivered, 4096, 128, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	runSteadyState(l, coord.Propose, delivered, b.N, 128, 1<<30)
}
