package ringpaxos

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
)

// ackTap stands in for a client session: it counts MsgClientAck
// deliveries per sequence number on the client's node.
type ackTap struct{ acks map[int64]int }

func (t *ackTap) Start(proto.Env) {}
func (t *ackTap) Receive(_ proto.NodeID, m proto.Message) {
	if a, ok := m.(*proto.MsgClientAck); ok {
		t.acks[a.Seq]++
	}
}

func countID(deliv []core.ValueID, id core.ValueID) int {
	n := 0
	for _, v := range deliv {
		if v == id {
			n++
		}
	}
	return n
}

// TestMRingDuplicateDecisionSuppressed double-proposes the same stamped
// value — exactly what a client session's retry submits — so it gets
// decided in TWO consensus instances, and checks the learners' replicated
// dedup table delivers it once, suppresses the second decision on every
// learner, and still acks BOTH decisions (the duplicate from the table),
// so a retrying session always hears back.
func TestMRingDuplicateDecisionSuppressed(t *testing.T) {
	cfg := MConfig{Group: 1}
	cfg.Ring = []proto.NodeID{0, 1, 2}
	cfg.Learners = []proto.NodeID{100, 101}
	l := lan.New(lan.DefaultConfig(), 1)
	deliv := make(map[proto.NodeID][]core.ValueID)
	agents := make(map[proto.NodeID]*MAgent)
	for _, id := range []proto.NodeID{0, 1, 2, 100, 101} {
		id := id
		a := &MAgent{Cfg: cfg}
		a.Deliver = func(_ int64, v core.Value) {
			deliv[id] = append(deliv[id], v.ID)
		}
		agents[id] = a
		l.AddNode(id, a)
		l.Subscribe(1, id)
	}
	prop := &MAgent{Cfg: cfg}
	tap := &ackTap{acks: make(map[int64]int)}
	l.AddNode(200, proto.Multi(prop, tap))
	l.Start()

	retried := core.Value{ID: 1, Bytes: 512, Client: 200, Seq: 1}
	prop.Propose(retried)
	l.Run(100 * time.Millisecond) // first decision commits (200,1) everywhere
	prop.Propose(retried)         // the retry: same stamp, a second instance
	prop.Propose(core.Value{ID: 2, Bytes: 512, Client: 200, Seq: 2})
	l.Run(400 * time.Millisecond)

	for _, id := range cfg.Learners {
		if got := countID(deliv[id], 1); got != 1 {
			t.Fatalf("learner %d delivered retried value %d times, want 1 (%v)", id, got, deliv[id])
		}
		if got := countID(deliv[id], 2); got != 1 {
			t.Fatalf("learner %d delivered fresh value %d times, want 1 (%v)", id, got, deliv[id])
		}
		if agents[id].DupSuppressed != 1 {
			t.Fatalf("learner %d suppressed %d, want 1", id, agents[id].DupSuppressed)
		}
		if got := agents[id].DedupSeq(200); got != 2 {
			t.Fatalf("learner %d dedup seq = %d, want 2", id, got)
		}
	}
	// Both decisions of seq 1 are acked by both learners — the second from
	// the table — while seq 2 is decided (and acked) once per learner.
	if tap.acks[1] != 4 || tap.acks[2] != 2 {
		t.Fatalf("acks = %v, want seq1:4 seq2:2", tap.acks)
	}
}

// TestURingDuplicateDecisionSuppressed is the U-Ring twin: the retry is
// proposed from a non-coordinator (forwarded along the ring), decided
// again, and suppressed by every process's delivery-side table.
func TestURingDuplicateDecisionSuppressed(t *testing.T) {
	cfg := UConfig{}
	const n = 3
	for i := 0; i < n; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	l := lan.New(lan.DefaultConfig(), 1)
	deliv := make(map[proto.NodeID][]core.ValueID)
	tap := &ackTap{acks: make(map[int64]int)}
	var agents []*UAgent
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		a := &UAgent{Cfg: cfg}
		a.Deliver = func(_ int64, v core.Value) {
			deliv[id] = append(deliv[id], v.ID)
		}
		agents = append(agents, a)
		if i == n-1 { // the client lives on the last ring node
			l.AddNode(id, proto.Multi(a, tap))
		} else {
			l.AddNode(id, a)
		}
	}
	l.Start()

	client := int64(n - 1)
	retried := core.Value{ID: 1, Bytes: 512, Client: client, Seq: 1}
	agents[n-1].Propose(retried) // forwarded around the ring to node 0
	l.Run(100 * time.Millisecond)
	agents[n-1].Propose(retried) // the retry
	agents[n-1].Propose(core.Value{ID: 2, Bytes: 512, Client: client, Seq: 2})
	l.Run(400 * time.Millisecond)

	for i, a := range agents {
		if got := countID(deliv[proto.NodeID(i)], 1); got != 1 {
			t.Fatalf("node %d delivered retried value %d times, want 1 (%v)", i, got, deliv[proto.NodeID(i)])
		}
		if got := countID(deliv[proto.NodeID(i)], 2); got != 1 {
			t.Fatalf("node %d delivered fresh value %d times, want 1 (%v)", i, got, deliv[proto.NodeID(i)])
		}
		if a.DupSuppressed != 1 {
			t.Fatalf("node %d suppressed %d, want 1", i, a.DupSuppressed)
		}
		if got := a.DedupSeq(client); got != 2 {
			t.Fatalf("node %d dedup seq = %d, want 2", i, got)
		}
	}
	// Every process is a learner: 3 acks per decision. Seq 1 is decided
	// twice (the second acked from the table), seq 2 once.
	if tap.acks[1] != 6 || tap.acks[2] != 3 {
		t.Fatalf("acks = %v, want seq1:6 seq2:3", tap.acks)
	}
}
