package ringpaxos

// Edge-case coverage for the ring-indexed instance logs that replaced the
// per-instance maps: out-of-order learning, delivery-frontier trimming,
// garbage-collection trims, and retransmission requests for instances on
// either side of the trim horizon. The map-based implementation got these
// semantics implicitly; the rings must preserve them exactly.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// fakeEnv is a minimal proto.Env that records sends for direct protocol
// unit tests (no simulated network).
type fakeEnv struct {
	id    proto.NodeID
	now   time.Duration
	rng   *rand.Rand
	sends []fakeSend
}

type fakeSend struct {
	to proto.NodeID
	m  proto.Message
}

func (e *fakeEnv) ID() proto.NodeID                      { return e.id }
func (e *fakeEnv) Now() time.Duration                    { return e.now }
func (e *fakeEnv) Rand() *rand.Rand                      { return e.rng }
func (e *fakeEnv) Send(to proto.NodeID, m proto.Message) { e.sends = append(e.sends, fakeSend{to, m}) }
func (e *fakeEnv) SendUDP(to proto.NodeID, m proto.Message) {
	e.sends = append(e.sends, fakeSend{to, m})
}
func (e *fakeEnv) Multicast(g proto.GroupID, m proto.Message) {
	e.sends = append(e.sends, fakeSend{-1, m})
}
func (e *fakeEnv) After(d time.Duration, fn func()) proto.Timer { return fakeTimer{} }
func (e *fakeEnv) Work(d time.Duration, fn func())              { fn() }
func (e *fakeEnv) DiskWrite(size int, fn func())                { fn() }

type fakeTimer struct{}

func (fakeTimer) Cancel() {}

// newLearnerAgent returns an MAgent acting purely as learner 100, plus its
// delivery record.
func newLearnerAgent() (*MAgent, *[]core.ValueID) {
	a := &MAgent{Cfg: MConfig{
		Ring:     []proto.NodeID{0, 1},
		Learners: []proto.NodeID{100},
		Group:    1,
	}}
	var got []core.ValueID
	a.Deliver = func(_ int64, v core.Value) { got = append(got, v.ID) }
	a.Start(&fakeEnv{id: 100, rng: rand.New(rand.NewSource(1))})
	return a, &got
}

func batchOf(ids ...core.ValueID) core.Batch {
	b := core.Batch{}
	for _, id := range ids {
		b.Vals = append(b.Vals, core.Value{ID: id, Bytes: 64})
	}
	return b
}

// TestLearnerOutOfOrderValues feeds values and decisions in scrambled
// instance order, decisions sometimes before values, and checks in-order
// delivery plus frontier trimming.
func TestLearnerOutOfOrderValues(t *testing.T) {
	a, got := newLearnerAgent()
	// Values arrive 3, 0, 2, 1; decisions interleave arbitrarily.
	a.learnValue(3, 103, batchOf(33), 0)
	a.learnDecision(3, 0, 0) // decided before earlier instances even have values
	a.learnValue(0, 100, batchOf(30), 0)
	a.learnDecision(1, 0, 0) // decision before its value
	a.learnDecision(0, 0, 0)
	if want := int64(1); a.NextDeliver() != want {
		t.Fatalf("frontier %d after inst 0 decided, want %d", a.NextDeliver(), want)
	}
	a.learnValue(2, 102, batchOf(32), 0)
	a.learnValue(1, 101, batchOf(31), 0) // unblocks 1; 2 still undecided
	if want := int64(2); a.NextDeliver() != want {
		t.Fatalf("frontier %d, want %d", a.NextDeliver(), want)
	}
	a.learnDecision(2, 0, 0) // unblocks 2 and then 3
	if want := int64(4); a.NextDeliver() != want {
		t.Fatalf("frontier %d, want %d", a.NextDeliver(), want)
	}
	wantOrder := []core.ValueID{30, 31, 32, 33}
	if len(*got) != len(wantOrder) {
		t.Fatalf("delivered %v, want %v", *got, wantOrder)
	}
	for i, id := range wantOrder {
		if (*got)[i] != id {
			t.Fatalf("delivered %v, want %v", *got, wantOrder)
		}
	}
	// Delivered instances are trimmed: a duplicate value or decision for
	// them must neither redeliver nor resurrect state.
	a.learnValue(1, 101, batchOf(31), 0)
	a.learnDecision(1, 0, 0)
	if len(*got) != 4 || a.insts.Len() != 0 {
		t.Fatalf("trimmed instance resurrected: %v, %d live", *got, a.insts.Len())
	}
}

// TestLearnerValueOverwrite checks that a re-proposed value (same instance,
// new vid) replaces the buffered one, as the map implementation did.
func TestLearnerValueOverwrite(t *testing.T) {
	a, got := newLearnerAgent()
	a.learnValue(0, 100, batchOf(10), 0)
	a.learnValue(0, 200, batchOf(20), 0) // new coordinator re-proposed
	a.learnDecision(0, 0, 0)
	if len(*got) != 1 || (*got)[0] != 20 {
		t.Fatalf("delivered %v, want the re-proposed value 20", *got)
	}
}

// newAcceptorAgent returns an MAgent acting as ring acceptor 0 (the 2B
// originator) with its fake environment.
func newAcceptorAgent() (*MAgent, *fakeEnv) {
	env := &fakeEnv{id: 0, rng: rand.New(rand.NewSource(1))}
	a := &MAgent{Cfg: MConfig{
		Ring:     []proto.NodeID{0, 1},
		Learners: []proto.NodeID{100, 101},
		Group:    1,
	}}
	a.Start(env)
	return a, env
}

// TestAcceptorTrimAndRetransmit garbage-collects a prefix of the acceptor
// store via learner version reports, then asks for retransmissions across
// the trim horizon: trimmed instances are silently skipped, live ones are
// served.
func TestAcceptorTrimAndRetransmit(t *testing.T) {
	a, env := newAcceptorAgent()
	for inst := int64(0); inst < 8; inst++ {
		a.onPhase2A(mPhase2A{Inst: inst, Rnd: 1 << 10, VID: core.ValueID(1000 + inst), Val: batchOf(core.ValueID(inst))})
	}
	if a.store.Len() != 8 || a.StoreBytes() == 0 {
		t.Fatalf("store %d entries, %d bytes", a.store.Len(), a.StoreBytes())
	}
	// Both learners report version 4: instances 0..4 trim.
	a.onVersion(proto.VersionReport{From: 100, Inst: 4, Hops: 1})
	a.onVersion(proto.VersionReport{From: 101, Inst: 4, Hops: 1})
	if a.store.Len() != 3 {
		t.Fatalf("store %d entries after GC, want 3", a.store.Len())
	}
	env.sends = nil
	a.onRetransmitReq(99, mRetransmitReq{Insts: []int64{2, 4, 5, 6, 7, 40}})
	var served []int64
	for _, s := range env.sends {
		served = append(served, s.m.(mRetransmit).Inst)
	}
	if len(served) != 3 || served[0] != 5 || served[1] != 6 || served[2] != 7 {
		t.Fatalf("retransmitted %v, want [5 6 7]", served)
	}
	// StoreBytes accounting survives the trim exactly: remaining entries
	// hold 3 batches of one 64-byte value.
	if a.StoreBytes() != 3*64 {
		t.Fatalf("StoreBytes = %d, want %d", a.StoreBytes(), 3*64)
	}
}

// TestAcceptorParked2BSurvivesRing checks the parked-2B path (2B ahead of
// its 2A) through the merged store entry: the 2B must resume when the
// matching 2A arrives, not before, and not for a stale vid.
func TestAcceptorParked2BSurvivesRing(t *testing.T) {
	env := &fakeEnv{id: 1, rng: rand.New(rand.NewSource(1))}
	a := &MAgent{Cfg: MConfig{
		Ring:     []proto.NodeID{0, 1, 2},
		Learners: []proto.NodeID{100},
		Group:    1,
	}}
	a.Start(env)
	// 2B arrives before the 2A: parked.
	p := phase2BPool.Get()
	p.Inst, p.Rnd, p.VID = 7, 1<<10, 1007
	a.onPhase2B(p)
	if len(env.sends) != 0 {
		t.Fatal("2B forwarded before the 2A arrived")
	}
	// A 2A with a DIFFERENT vid must not release it.
	a.onPhase2A(mPhase2A{Inst: 7, Rnd: 1 << 10, VID: 9999, Val: batchOf(1)})
	if len(env.sends) != 0 {
		t.Fatal("parked 2B released by mismatched vid")
	}
	// The matching 2A releases it to the successor (node 2).
	a.onPhase2A(mPhase2A{Inst: 7, Rnd: 1 << 10, VID: 1007, Val: batchOf(1)})
	var forwarded bool
	for _, s := range env.sends {
		if m, ok := s.m.(*mPhase2B); ok && s.to == 2 && m.Inst == 7 && m.VID == 1007 {
			forwarded = true
		}
	}
	if !forwarded {
		t.Fatalf("parked 2B not forwarded after matching 2A; sends: %v", env.sends)
	}
}
