package ringpaxos

import (
	"repro/internal/core"
	"repro/internal/proto"
)

const headerBytes = 32 // modeled fixed header of every protocol message

// Wire messages shared by M-Ring Paxos and U-Ring Paxos. The "m" prefix
// marks multicast-variant messages, "u" the unicast variant.
type (
	// MsgPropose carries a client value toward the coordinator.
	MsgPropose struct{ V core.Value }

	// mPhase1A opens round Rnd and proposes the ring layout (§3.3.2: the
	// coordinator proposes the ring before Phase 1; acceptors abide by it
	// when they reply).
	mPhase1A struct {
		Rnd  int64
		Ring []proto.NodeID
	}
	// mPhase1B is an acceptor's promise with its prior votes. MaxInst is
	// the highest instance the acceptor has ever seen, so a new coordinator
	// resumes numbering above instances whose state was garbage-collected.
	mPhase1B struct {
		Rnd     int64
		MaxInst int64
		Votes   map[int64]vote
	}
	// mPhase2A proposes batch Val with unique id VID in instance Inst.
	// Decided piggybacks decision ids of previously finished instances
	// (the Task-5-with-Task-3 overlap of §3.3.2); DecidedMasks carries the
	// matching partition masks in partitioned mode, DecidedVIDs the chosen
	// value ids (consensus is on value ids, so the vid IS the decision —
	// it travels inside the modeled 8-byte decision id, not on top of it).
	mPhase2A struct {
		Inst         int64
		Rnd          int64
		VID          core.ValueID
		Val          core.Batch
		Decided      []int64
		DecidedMasks []uint64
		DecidedVIDs  []core.ValueID
		// decBuf, when non-nil, owns the Decided/DecidedMasks/DecidedVIDs
		// arrays; each receiver releases it after consuming (see
		// core.DecBuf). Not part of the wire size.
		decBuf *core.DecBuf
	}
	// mPhase2B travels along the ring; consensus is on value ids, so it
	// carries no payload.
	mPhase2B struct {
		Inst int64
		Rnd  int64
		VID  core.ValueID
	}
	// mDecision is a standalone decision flush (used when there is no 2A
	// to piggyback on). Masks carries partition masks in partitioned mode;
	// VIDs the chosen value ids (inside the modeled decision id, like
	// mPhase2A.DecidedVIDs).
	mDecision struct {
		Insts []int64
		Masks []uint64
		VIDs  []core.ValueID
		// decBuf: see mPhase2A.
		decBuf *core.DecBuf
	}
	// mRetransmitReq asks a preferential acceptor for lost instances.
	mRetransmitReq struct{ Insts []int64 }
	// mRetransmit answers with the stored value and decision status.
	mRetransmit struct {
		Inst    int64
		VID     core.ValueID
		Val     core.Batch
		Mask    uint64
		Decided bool
	}
	// mSlowDown is a learner flow-control notification, forwarded along
	// the ring to the coordinator (§3.3.6). Learner applied-version
	// reports for garbage collection (§3.3.7) use the shared
	// proto.VersionReport message; acceptors circulate it once around the
	// ring so every acceptor sees every learner's version.
	mSlowDown struct{ Backlog int }

	// uPhase2 is the combined Phase 2A/2B message of U-Ring Paxos
	// (Algorithm 3): it travels through the acceptor segment of the ring.
	uPhase2 struct {
		Inst int64
		Rnd  int64
		VID  core.ValueID
		Val  core.Batch
	}
	// uDecision circulates the decision (and the chosen value) along the
	// remainder of the ring. Hops counts forwards so circulation stops
	// after one revolution.
	uDecision struct {
		Inst int64
		VID  core.ValueID
		Val  core.Batch
		Hops int
	}
	// uPhase1A / uPhase1B run U-Ring's (infrequent, pre-executed) Phase 1
	// over direct channels. Floor carries the acceptor's garbage-collection
	// trim floor so a new coordinator never resurrects a vote another
	// acceptor already trimmed (such an instance would stall mid-ring at
	// that acceptor's floor guard and pin a window slot forever). Ring and
	// NAcc, when set, propose a reconfigured ring layout (failover: the
	// surviving quorum abides by it when it promises); a nil Ring leaves
	// the receiver's layout untouched.
	uPhase1A struct {
		Rnd  int64
		Ring []proto.NodeID
		NAcc int
	}
	uPhase1B struct {
		Rnd   int64
		Votes map[int64]vote
		Floor int64
	}

	// mHeartbeat is the failure detector's ring-neighbor beacon: each ring
	// member sends one to its successor every Failover.Heartbeat and
	// suspects its predecessor after Failover.Suspect of silence. Only ever
	// sent when Failover is enabled, so deployments without it see zero
	// extra messages or timers.
	mHeartbeat struct{ Rnd int64 }
	// mTakeOver nominates the receiver as the new coordinator over Ring
	// (its coordinator position must be the receiver). Rnd is the
	// nominator's highest observed round, so the nominee's Phase 1 starts
	// strictly above the dead coordinator's round. NAcc carries the
	// surviving acceptor count for U-Ring reconfigurations.
	mTakeOver struct {
		Rnd  int64
		Ring []proto.NodeID
		NAcc int
	}
	// mRingChange announces a reconfigured ring on the multicast group
	// after a takeover's Phase 1 completes, so learners and proposers —
	// which are not ring members and never see mPhase1A — re-aim their
	// retransmission requests and proposals at the new coordinator.
	mRingChange struct {
		Rnd  int64
		Ring []proto.NodeID
	}
	// uRingChange circulates a reconfigured ring layout once around the
	// U-Ring (there is no multicast group to announce on): every member
	// adopts the new ring and acceptor count, re-routing succ() around the
	// dead node. Hops stops the revolution.
	uRingChange struct {
		Rnd  int64
		Ring []proto.NodeID
		NAcc int
		Hops int
	}

	// mSnapshot transfers application state up to (excluding) instance
	// Floor to a learner whose retransmission request fell below the trim
	// floor — the instances it needs no longer exist anywhere, so catch-up
	// is by state, not by replay (§3.5.5). StateBytes is the modeled
	// snapshot size; the learner charges it to its disk model on install.
	// Dedup carries the sender's per-client last-applied-seq table so the
	// catching-up learner stays exactly-once consistent for commands
	// decided below the floor (nil — and zero wire bytes — when no client
	// sessions are running).
	mSnapshot struct {
		Floor      int64
		StateBytes int
		Dedup      []core.DedupEntry
	}
	// mRingStateReq asks a ring member for the current ring layout. Sent
	// by a node restarting after a crash, before it arms its failure
	// detector: the ring may have been reconfigured while it was down, and
	// acting on the stale pre-crash layout would aim the detector at a
	// node that is no longer its predecessor (or trigger a spurious
	// takeover of a ring that already moved on).
	mRingStateReq struct{}
	// mRingState answers with the replier's current layout and round.
	// NAcc carries the acceptor count for U-Ring deployments.
	mRingState struct {
		Rnd  int64
		Ring []proto.NodeID
		NAcc int
	}
)

type vote struct {
	rnd int64
	vid core.ValueID
	val core.Batch
	// pooled marks votes whose batch backing array came from the owning
	// agent's BatchPool (only ever set by the U-Ring coordinator); the
	// array is recycled when garbage collection trims the instance.
	pooled bool
}

// Size implements proto.Message for each wire type.
func (m MsgPropose) Size() int { return headerBytes + m.V.Bytes }
func (m mPhase1A) Size() int   { return headerBytes + 4*len(m.Ring) }
func (m mPhase1B) Size() int {
	n := headerBytes
	for _, v := range m.Votes {
		n += headerBytes + v.val.Size()
	}
	return n
}
func (m mPhase2A) Size() int {
	return headerBytes + m.Val.Size() + 8*len(m.Decided) + 8*len(m.DecidedMasks)
}
func (m mPhase2B) Size() int       { return headerBytes }
func (m mDecision) Size() int      { return headerBytes + 8*len(m.Insts) + 8*len(m.Masks) }
func (m mRetransmitReq) Size() int { return headerBytes + 8*len(m.Insts) }
func (m mRetransmit) Size() int    { return headerBytes + m.Val.Size() }
func (m mSlowDown) Size() int      { return headerBytes }
func (m uPhase2) Size() int        { return headerBytes + m.Val.Size() }
func (m uDecision) Size() int {
	return headerBytes + m.Val.Size()
}
func (m uPhase1A) Size() int    { return headerBytes + 4*len(m.Ring) }
func (m mHeartbeat) Size() int  { return headerBytes }
func (m mTakeOver) Size() int   { return headerBytes + 4*len(m.Ring) }
func (m mRingChange) Size() int { return headerBytes + 4*len(m.Ring) }
func (m uRingChange) Size() int { return headerBytes + 4*len(m.Ring) }
func (m uPhase1B) Size() int {
	n := headerBytes
	for _, v := range m.Votes {
		n += headerBytes + v.val.Size()
	}
	return n
}
func (m mSnapshot) Size() int {
	return headerBytes + m.StateBytes + core.DedupEntryBytes*len(m.Dedup)
}
func (m mRingStateReq) Size() int { return headerBytes }
func (m mRingState) Size() int    { return headerBytes + 4*len(m.Ring) }
