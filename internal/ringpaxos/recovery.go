package ringpaxos

// Crash+restart durability (Recoverable Ring Paxos, §3.5.5). Both Ring
// Paxos variants model three post-crash behaviors for a process whose
// volatile state a fault.Lose crash destroyed, selected by Durability on
// the config:
//
//   - DurModeled (zero value): the legacy semantics every pre-durability
//     deployment pins — promises and votes are silently retained across
//     the crash, as if stable storage existed but cost nothing. Keeps all
//     historical goldens byte-identical.
//   - DurVolatile: honest loss. The process wipes its acceptor and
//     coordinator state and rejoins RETIRED from those roles: classic
//     Paxos forbids a process that lost its promise/vote state from ever
//     acting as an acceptor again (it may have promised a round it no
//     longer remembers), and an amnesiac coordinator cannot resume
//     coordinatorship it cannot prove. This is the mexos ceiling —
//     "does not store anything persistently, so cannot handle
//     crash+restart" — made explicit: without failover the ring stalls.
//   - DurWAL: real durability. Promises and votes were appended to the
//     agent's write-ahead log (Log field, wal.Log) before the agent acted
//     on them, each append charged to the ~270 Mbps disk model through
//     proto.Env.DiskWrite. On restart the agent wipes volatile state like
//     DurVolatile, then replays the log: promises restore the fencing
//     round, votes repopulate the store, and a logged coordinator
//     re-enters Phase 1 one round above its highest logged promise —
//     rejoining with full rights instead of retiring.
//
// Everything here is opt-in: with the zero Durability no WAL call, no
// snapshot message and no retirement branch ever runs.

// Durability selects what a fault.Lose crash does to this agent's
// protocol state. See the package comment above for the three levels.
type Durability uint8

const (
	// DurModeled retains votes across a Lose crash (legacy semantics).
	DurModeled Durability = iota
	// DurVolatile loses them honestly; the process retires from the
	// acceptor and coordinator roles.
	DurVolatile
	// DurWAL loses them, then recovers by replaying the write-ahead log.
	DurWAL
)

// nopFn is the shared no-op completion for disk writes that gate nothing.
var nopFn = func() {}
