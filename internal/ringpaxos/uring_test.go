package ringpaxos

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
)

// uDeploy wires a U-Ring Paxos ring where every process is proposer,
// acceptor and learner (the configuration of §3.5.4).
type uDeploy struct {
	l      *lan.LAN
	agents []*UAgent
	deliv  map[proto.NodeID][]core.ValueID
}

func deployU(cfg UConfig, n int, lc lan.Config, seed int64) *uDeploy {
	d := &uDeploy{
		l:     lan.New(lc, seed),
		deliv: make(map[proto.NodeID][]core.ValueID),
	}
	for i := 0; i < n; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		a := &UAgent{Cfg: cfg}
		a.Deliver = func(inst int64, v core.Value) {
			d.deliv[id] = append(d.deliv[id], v.ID)
		}
		d.agents = append(d.agents, a)
		d.l.AddNode(id, a)
	}
	d.l.Start()
	return d
}

func TestURingBasicAgreement(t *testing.T) {
	d := deployU(UConfig{}, 3, lan.DefaultConfig(), 1)
	for i := 0; i < 150; i++ {
		d.agents[0].Propose(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
	}
	d.l.Run(2 * time.Second)
	var learners []proto.NodeID
	for i := 0; i < 3; i++ {
		learners = append(learners, proto.NodeID(i))
	}
	checkTotalOrder(t, d.deliv, learners, 150)
}

func TestURingProposalsFromEveryNode(t *testing.T) {
	// Proposals forwarded along the ring reach the coordinator and get
	// ordered, wherever they originate.
	d := deployU(UConfig{}, 5, lan.DefaultConfig(), 2)
	id := 0
	for round := 0; round < 20; round++ {
		for p := 0; p < 5; p++ {
			id++
			d.agents[p].Propose(core.Value{ID: core.ValueID(id), Bytes: 512})
		}
	}
	d.l.Run(3 * time.Second)
	var learners []proto.NodeID
	for i := 0; i < 5; i++ {
		learners = append(learners, proto.NodeID(i))
	}
	checkTotalOrder(t, d.deliv, learners, 100)
}

func TestURingSubsetAcceptors(t *testing.T) {
	// 7-process ring with only 3 acceptors (positions 0..2): learners at
	// positions 3..6 still deliver everything in order.
	d := deployU(UConfig{NumAcceptors: 3}, 7, lan.DefaultConfig(), 3)
	for i := 0; i < 100; i++ {
		d.agents[4].Propose(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
	}
	d.l.Run(3 * time.Second)
	var learners []proto.NodeID
	for i := 0; i < 7; i++ {
		learners = append(learners, proto.NodeID(i))
	}
	checkTotalOrder(t, d.deliv, learners, 100)
}

func TestURingNoDatagramLoss(t *testing.T) {
	// U-Ring Paxos uses only reliable channels; datagram loss rates must
	// not affect it at all.
	lc := lan.DefaultConfig()
	lc.LossRate = 0.5
	d := deployU(UConfig{}, 3, lc, 4)
	for i := 0; i < 50; i++ {
		d.agents[1].Propose(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
	}
	d.l.Run(2 * time.Second)
	var learners []proto.NodeID
	for i := 0; i < 3; i++ {
		learners = append(learners, proto.NodeID(i))
	}
	checkTotalOrder(t, d.deliv, learners, 50)
}

func TestURingDiskSync(t *testing.T) {
	d := deployU(UConfig{DiskSync: true}, 3, lan.DefaultConfig(), 1)
	for i := 0; i < 60; i++ {
		d.agents[0].Propose(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
	}
	d.l.Run(3 * time.Second)
	var learners []proto.NodeID
	for i := 0; i < 3; i++ {
		learners = append(learners, proto.NodeID(i))
	}
	checkTotalOrder(t, d.deliv, learners, 60)
	for i := 0; i < 3; i++ {
		if d.l.Node(proto.NodeID(i)).Stats().DiskWrites == 0 {
			t.Fatalf("acceptor %d wrote nothing", i)
		}
	}
}

func TestURingThroughputNearWireSpeed(t *testing.T) {
	// §3.5.3 / Table 3.2: U-Ring Paxos reaches ~90% efficiency.
	d := deployU(UConfig{}, 3, lan.DefaultConfig(), 1)
	stop := false
	n := 0
	env := d.l.Node(0)
	var pump func()
	pump = func() {
		if stop {
			return
		}
		for i := 0; i < 4; i++ {
			n++
			d.agents[0].Propose(core.Value{ID: core.ValueID(n), Bytes: 8192})
		}
		env.After(270*time.Microsecond, pump) // ~970 Mbps offered
	}
	pump()
	d.l.Run(time.Second)
	stop = true
	mbps := float64(d.agents[2].DeliveredBytes) * 8 / 1e6
	t.Logf("U-Ring Paxos delivery throughput: %.0f Mbps", mbps)
	if mbps < 600 {
		t.Fatalf("throughput %.0f Mbps too low for U-Ring Paxos", mbps)
	}
}

func TestURingLatencyGrowsWithRingSize(t *testing.T) {
	lat := func(n int) time.Duration {
		d := deployU(UConfig{}, n, lan.DefaultConfig(), 1)
		var lats []time.Duration
		d.agents[0].Latencies = &lats
		env := d.l.Node(0)
		stop := false
		var pump func()
		pump = func() {
			if stop {
				return
			}
			d.agents[0].Propose(core.Value{ID: 1, Bytes: 1024, Born: env.Now()})
			env.After(2*time.Millisecond, pump)
		}
		pump()
		d.l.Run(500 * time.Millisecond)
		stop = true
		if d.agents[0].LatencyCount == 0 {
			t.Fatal("no latency samples")
		}
		return d.agents[0].LatencySum / time.Duration(d.agents[0].LatencyCount)
	}
	small, big := lat(3), lat(11)
	if big <= small {
		t.Fatalf("latency did not grow with ring size: %v (n=3) vs %v (n=11)", small, big)
	}
}

func TestURingSlowLearnerBackpressure(t *testing.T) {
	// One slow node on the ring bounds the whole ring's delivery rate but
	// never causes loss (TCP flow control, §3.3.6).
	cfg := UConfig{ExecCost: 100 * time.Microsecond}
	d := deployU(cfg, 3, lan.DefaultConfig(), 1)
	stop := false
	n := 0
	env := d.l.Node(0)
	var pump func()
	pump = func() {
		if stop {
			return
		}
		for i := 0; i < 8; i++ {
			n++
			d.agents[0].Propose(core.Value{ID: core.ValueID(n), Bytes: 512})
		}
		env.After(time.Millisecond, pump)
	}
	pump()
	d.l.Run(2 * time.Second)
	stop = true
	d.l.Run(8 * time.Second) // drain
	var learners []proto.NodeID
	for i := 0; i < 3; i++ {
		learners = append(learners, proto.NodeID(i))
	}
	checkTotalOrder(t, d.deliv, learners, n)
	for i := 0; i < 3; i++ {
		if drops := d.l.Node(proto.NodeID(i)).Stats().MsgsDropped; drops != 0 {
			t.Fatalf("node %d dropped %d messages on reliable channels", i, drops)
		}
	}
}
