package ringpaxos

// Coordinator failover (§3.3): a ring-neighbor failure detector,
// coordinator election within the ring, and ring reconfiguration that
// excludes dead members. The machinery is shared between M-Ring and
// U-Ring Paxos; each agent owns a foState and plugs in its own ring
// layout rules (M-Ring: coordinator last, refill from spares; U-Ring:
// coordinator first, acceptor segment shrinks).
//
// Everything here is opt-in via Failover on the config. With the zero
// value the agents arm no detector timer and send no extra message, so
// deployments that predate failover stay byte-identical.

import (
	"time"

	"repro/internal/proto"
)

// Failover configures the liveness layer. The zero value disables it
// entirely: no heartbeat timer is armed, no detector state is kept, and
// no failover message is ever sent.
type Failover struct {
	// Heartbeat is the detector period: every Heartbeat each ring member
	// sends a beacon to its ring successor and checks how long its
	// predecessor has been silent. Zero disables failover.
	Heartbeat time.Duration
	// Suspect is the silence window after which the predecessor is
	// declared dead. Zero resolves to 3*Heartbeat. Any message from the
	// predecessor — data traffic or heartbeat — refreshes the window, so
	// a loaded ring never false-suspects.
	Suspect time.Duration
}

// Enabled reports whether the failover layer is active.
func (f Failover) Enabled() bool { return f.Heartbeat > 0 }

func (f Failover) suspectAfter() time.Duration {
	if f.Suspect > 0 {
		return f.Suspect
	}
	return 3 * f.Heartbeat
}

// foState is the per-agent failure detector and election bookkeeping.
type foState struct {
	tickFn func()
	// mon is true while pred names the ring predecessor under watch; last
	// is the sim time of its most recent sign of life.
	mon  bool
	pred proto.NodeID
	last time.Duration
	// dead accumulates locally observed permanent failures; elections lay
	// out the new ring from the survivors.
	dead map[proto.NodeID]bool
	// nominated/nominee/nomRnd remember the last takeover nomination, so
	// a second suspicion with no round progress escalates past a nominee
	// that died before taking over (double failover).
	nominated bool
	nominee   proto.NodeID
	nomRnd    int64
	// tookOver marks coordinatorship gained by election rather than by
	// initial configuration: only then is the reconfigured ring
	// propagated to non-ring members after Phase 1.
	tookOver bool
	// needRing is set when the node restarts after a crash: before arming
	// the detector it must learn the current ring layout from a live
	// member (the ring may have been reconfigured during the outage).
	// askIdx rotates the member asked, so a dead first choice does not
	// stall the catch-up. Cleared by any layout-bearing reply.
	needRing bool
	askIdx   int
}

// observe re-aims the monitor at pred, resetting the silence window when
// the target changes (ring reconfigurations rewire neighbors). It
// returns true when the currently monitored predecessor has been silent
// longer than the suspicion window.
func (f *foState) observe(pred proto.NodeID, now time.Duration, window time.Duration) bool {
	if !f.mon || pred != f.pred {
		f.mon, f.pred, f.last = true, pred, now
		return false
	}
	return now-f.last > window
}

// suspect folds one suspicion of pred into the dead set. When pred was
// already declared dead and no round progress happened since the last
// nomination, the nominee itself is presumed dead too and joins the set
// (the caller re-elects past it).
func (f *foState) suspect(pred proto.NodeID, rnd int64) {
	if f.dead == nil {
		f.dead = make(map[proto.NodeID]bool)
	}
	if f.dead[pred] && f.nominated && rnd == f.nomRnd {
		f.dead[f.nominee] = true
	}
	f.dead[pred] = true
}

// reset discards the detector's volatile observations: the monitor aim
// (and with it the pre-crash "last heard" timestamp), the suspicion
// memory, and any pending nomination. A node restarting after a Lose
// crash calls this so it re-observes a full silence window before
// suspecting anyone, instead of acting on a timestamp from before its
// own outage.
func (f *foState) reset() {
	f.mon = false
	f.dead = nil
	f.nominated = false
}

// note records a nomination and grants the nominee one fresh suspicion
// window before escalation.
func (f *foState) note(nominee proto.NodeID, rnd int64, now time.Duration) {
	f.nominated, f.nominee, f.nomRnd = true, nominee, rnd
	f.last = now
}

// ringContains reports whether ring includes id.
func ringContains(ring []proto.NodeID, id proto.NodeID) bool {
	for _, r := range ring {
		if r == id {
			return true
		}
	}
	return false
}

// sameRing reports element-wise equality.
func sameRing(a, b []proto.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
