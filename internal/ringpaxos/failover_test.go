package ringpaxos

// Failover edge cases: permanent coordinator crashes, elections racing
// Phase 1, double failures with spare refill, stale restarted
// coordinators, and elections across healing partitions. All schedules
// are deterministic fault.Schedule events on the simulated LAN.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lan"
	"repro/internal/proto"
)

// testFailover is the detector tuning every failover test uses: fast
// enough that elections finish in a few simulated milliseconds.
var testFailover = Failover{Heartbeat: 2 * time.Millisecond, Suspect: 6 * time.Millisecond}

// foDeploy wires an M-Ring deployment with failover enabled: ring
// acceptors 0..nRing-1 (nRing-1 coordinates), optional spares, learners
// 100/101, proposer 200. Unlike deployM, the proposer subscribes to the
// group so it hears mRingChange and re-aims proposals after an election.
type foDeploy struct {
	l        *lan.LAN
	agents   map[proto.NodeID]*MAgent
	prop     *MAgent
	learners []proto.NodeID
	deliv    map[proto.NodeID][]core.ValueID
}

func deployMFailover(t *testing.T, nRing int, spares []proto.NodeID, seed int64, sched *fault.Schedule) *foDeploy {
	t.Helper()
	cfg := MConfig{Group: 1, Spares: spares, Failover: testFailover}
	for i := 0; i < nRing; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
	}
	cfg.Learners = []proto.NodeID{100, 101}
	d := &foDeploy{
		l:        lan.New(lan.DefaultConfig(), seed),
		agents:   make(map[proto.NodeID]*MAgent),
		learners: cfg.Learners,
		deliv:    make(map[proto.NodeID][]core.ValueID),
	}
	add := func(id proto.NodeID) {
		a := &MAgent{Cfg: cfg}
		a.Deliver = func(inst int64, v core.Value) {
			d.deliv[id] = append(d.deliv[id], v.ID)
		}
		d.agents[id] = a
		d.l.AddNode(id, a)
		d.l.Subscribe(1, id)
	}
	for _, id := range cfg.Ring {
		add(id)
	}
	for _, id := range spares {
		add(id)
	}
	for _, id := range cfg.Learners {
		add(id)
	}
	d.prop = &MAgent{Cfg: cfg}
	d.agents[200] = d.prop
	d.l.AddNode(200, d.prop)
	d.l.Subscribe(1, 200)
	d.l.InstallFaults(sched)
	d.l.Start()
	return d
}

func (d *foDeploy) propose(base, n int) {
	for i := 0; i < n; i++ {
		d.prop.Propose(core.Value{ID: core.ValueID(base + i), Bytes: 512})
	}
}

// coordinators returns which of the given agents currently claim an
// established coordinatorship.
func coordinators(agents map[proto.NodeID]*MAgent, ids ...proto.NodeID) []proto.NodeID {
	var out []proto.NodeID
	for _, id := range ids {
		if agents[id].IsCoordinator() {
			out = append(out, id)
		}
	}
	return out
}

// TestMRingFailoverPermanentCrash kills the coordinator with no restart:
// the highest-id survivor (1) must take over via ring-neighbor suspicion,
// re-run Phase 1, announce the shrunk ring, and order new proposals.
func TestMRingFailoverPermanentCrash(t *testing.T) {
	sched := fault.New(1).Crash(100*time.Millisecond, 2, fault.Lose)
	d := deployMFailover(t, 3, nil, 1, sched)
	d.propose(1, 50)
	d.l.Run(time.Second)
	if got := coordinators(d.agents, 0, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("coordinators after failover: %v, want [1]", got)
	}
	d.propose(1001, 30)
	d.l.Run(time.Second)
	checkTotalOrder(t, d.deliv, d.learners, 80)
}

// TestMRingFailoverKillDuringPhase1 crashes the coordinator microseconds
// into the run, while its initial Phase 1 messages are still in flight.
func TestMRingFailoverKillDuringPhase1(t *testing.T) {
	sched := fault.New(1).Crash(30*time.Microsecond, 2, fault.Lose)
	d := deployMFailover(t, 3, nil, 2, sched)
	d.l.Run(500 * time.Millisecond)
	if got := coordinators(d.agents, 0, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("coordinators after mid-Phase-1 kill: %v, want [1]", got)
	}
	d.propose(1, 40)
	d.l.Run(time.Second)
	checkTotalOrder(t, d.deliv, d.learners, 40)
}

// TestMRingFailoverDoubleWithSpare kills the coordinator AND its elected
// successor: the detector escalates past the dead nominee, and the new
// ring refills from the configured spare (5) to keep its size.
func TestMRingFailoverDoubleWithSpare(t *testing.T) {
	sched := fault.New(1).
		Crash(50*time.Millisecond, 2, fault.Lose).
		Crash(52*time.Millisecond, 1, fault.Lose)
	d := deployMFailover(t, 3, []proto.NodeID{5}, 3, sched)
	d.propose(1, 30)
	d.l.Run(2 * time.Second)
	if got := coordinators(d.agents, 0, 5); len(got) != 1 || got[0] != 0 {
		t.Fatalf("coordinators after double failover: %v, want [0]", got)
	}
	a := d.agents[0]
	if !ringContains(a.ring, 5) || ringContains(a.ring, 1) || ringContains(a.ring, 2) {
		t.Fatalf("reconfigured ring %v, want spare 5 in, dead 1/2 out", a.ring)
	}
	d.propose(1001, 30)
	d.l.Run(time.Second)
	checkTotalOrder(t, d.deliv, d.learners, 60)
}

// TestMRingFailoverStaleCoordinatorFenced crashes the coordinator with
// Lose and restarts it after the election: the restarted node still
// believes it coordinates round r, but the first higher-round message it
// sees forces it to stand down, and its stale proposals can never fence
// past the acceptors' round.
func TestMRingFailoverStaleCoordinatorFenced(t *testing.T) {
	sched := fault.New(1).CrashFor(50*time.Millisecond, 200*time.Millisecond, 2, fault.Lose)
	d := deployMFailover(t, 3, nil, 4, sched)
	// Continuous traffic keeps the new coordinator's 2As flowing past the
	// restarted node, so its detector stays fed and fencing is immediate.
	stop := false
	n := 0
	env := d.l.Node(200)
	var pump func()
	pump = func() {
		if stop {
			return
		}
		for i := 0; i < 5; i++ {
			n++
			d.prop.Propose(core.Value{ID: core.ValueID(n), Bytes: 512})
		}
		env.After(2*time.Millisecond, pump)
	}
	pump()
	d.l.Run(time.Second)
	stop = true
	if got := coordinators(d.agents, 0, 1, 2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("coordinators after restart of stale coordinator: %v, want [1]", got)
	}
	d.l.Run(500 * time.Millisecond)
	checkTotalOrder(t, d.deliv, d.learners, -1)
	if len(d.deliv[100]) == 0 {
		t.Fatal("no deliveries across the failover")
	}
}

// TestMRingFailoverDuringPartitionHeal partitions the coordinator away
// instead of killing it: the majority side elects a replacement, the
// isolated coordinator suspects everyone else, and after the heal the
// round order picks exactly one winner while every learner stays on one
// agreed sequence.
func TestMRingFailoverDuringPartitionHeal(t *testing.T) {
	sched := fault.New(1).Split(100*time.Millisecond, 150*time.Millisecond, 2)
	d := deployMFailover(t, 3, nil, 5, sched)
	stop := false
	n := 0
	env := d.l.Node(200)
	var pump func()
	pump = func() {
		if stop {
			return
		}
		for i := 0; i < 5; i++ {
			n++
			d.prop.Propose(core.Value{ID: core.ValueID(n), Bytes: 512})
		}
		env.After(2*time.Millisecond, pump)
	}
	pump()
	d.l.Run(100 * time.Millisecond)
	pre := len(d.deliv[100])
	d.l.Run(1900 * time.Millisecond)
	stop = true
	if got := coordinators(d.agents, 0, 1, 2); len(got) != 1 {
		t.Fatalf("coordinators after heal: %v, want exactly one", got)
	}
	checkTotalOrder(t, d.deliv, d.learners, -1)
	if post := len(d.deliv[100]); post <= pre {
		t.Fatalf("no delivery progress across partition+heal: %d -> %d", pre, post)
	}
}

// deployUFailover wires a U-Ring deployment (every process a learner)
// with failover enabled and a fault schedule installed before Start.
func deployUFailover(n, nacc int, seed int64, sched *fault.Schedule) *uDeploy {
	cfg := UConfig{NumAcceptors: nacc, Failover: testFailover}
	d := &uDeploy{
		l:     lan.New(lan.DefaultConfig(), seed),
		deliv: make(map[proto.NodeID][]core.ValueID),
	}
	for i := 0; i < n; i++ {
		cfg.Ring = append(cfg.Ring, proto.NodeID(i))
		cfg.Learners = append(cfg.Learners, proto.NodeID(i))
	}
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		a := &UAgent{Cfg: cfg}
		a.Deliver = func(inst int64, v core.Value) {
			d.deliv[id] = append(d.deliv[id], v.ID)
		}
		d.agents = append(d.agents, a)
		d.l.AddNode(id, a)
	}
	d.l.InstallFaults(sched)
	d.l.Start()
	return d
}

// TestURingFailoverPermanentCrash kills the U-Ring coordinator (first
// ring position) permanently: the highest-id surviving acceptor (2)
// takes over at the head of a re-laid-out ring, the acceptor segment
// shrinks to the survivors, and the ring change re-routes proposal
// forwarding around the dead node.
func TestURingFailoverPermanentCrash(t *testing.T) {
	sched := fault.New(1).Crash(100*time.Millisecond, 0, fault.Lose)
	d := deployUFailover(4, 3, 6, sched)
	for i := 0; i < 50; i++ {
		d.agents[3].Propose(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
	}
	d.l.Run(time.Second)
	if !d.agents[2].IsCoordinator() {
		t.Fatal("highest-id surviving acceptor (2) did not take over")
	}
	for i := 0; i < 30; i++ {
		d.agents[3].Propose(core.Value{ID: core.ValueID(1001 + i), Bytes: 512})
	}
	d.l.Run(time.Second)
	checkTotalOrder(t, d.deliv, []proto.NodeID{1, 2, 3}, 80)
}

// TestURingFailoverQuorumLoss kills two of the three original acceptors.
// The Phase 1 quorum stays a majority of the ORIGINAL acceptor set, so
// the second election can never complete — the ring correctly prefers
// stalling to serving from a non-intersecting quorum.
func TestURingFailoverQuorumLoss(t *testing.T) {
	sched := fault.New(1).
		Crash(50*time.Millisecond, 0, fault.Lose).
		Crash(150*time.Millisecond, 2, fault.Lose)
	d := deployUFailover(4, 3, 7, sched)
	for i := 0; i < 30; i++ {
		d.agents[3].Propose(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
	}
	d.l.Run(time.Second)
	if d.agents[1].IsCoordinator() {
		t.Fatal("acceptor 1 established coordinatorship without an original-majority quorum")
	}
	checkTotalOrder(t, d.deliv, []proto.NodeID{1, 3}, 30)
}
