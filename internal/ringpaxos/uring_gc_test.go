package ringpaxos

// Garbage-collection edge cases for U-Ring Paxos, mirroring the M-Ring
// coverage in instlog_edge_test.go: vote logs must trim once every learner
// reports an instance applied, a straggler learner must pin the trim floor
// for the whole ring, and a straggling message for a trimmed instance must
// not resurrect state below the floor.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
)

// TestURingGCBoundsVoteLogs runs the same deployment twice — with and
// without GC — and checks that GC keeps every process's vote log bounded
// without perturbing what is delivered.
func TestURingGCBoundsVoteLogs(t *testing.T) {
	run := func(cfg UConfig) *uDeploy {
		d := deployU(cfg, 4, lan.DefaultConfig(), 1)
		for i := 0; i < 200; i++ {
			d.agents[0].Propose(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
		}
		d.l.Run(2 * time.Second)
		return d
	}
	gc := run(UConfig{GCInterval: 10 * time.Millisecond, RecycleBatches: true})
	plain := run(UConfig{GCInterval: -1}) // explicit off: zero now resolves to the default
	for i, a := range gc.agents {
		if n := a.votes.Len(); n != 0 {
			t.Errorf("agent %d retains %d votes after quiescent GC, want 0", i, n)
		}
	}
	leaked := false
	for _, a := range plain.agents {
		if a.votes.Len() > 0 {
			leaked = true
		}
	}
	if !leaked {
		t.Fatal("control run leaked nothing: the GC assertion above is vacuous")
	}
	for i := range gc.agents {
		id := proto.NodeID(i)
		got, want := gc.deliv[id], plain.deliv[id]
		if len(got) != len(want) {
			t.Fatalf("learner %d delivered %d values with GC, %d without", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("learner %d order diverged at %d: %d vs %d", i, j, got[j], want[j])
			}
		}
	}
}

// newUAcceptor returns a non-coordinator U-Ring acceptor (ring position 1
// of a 4-process ring with 3 acceptors) on a fake environment.
func newUAcceptor() (*UAgent, *fakeEnv) {
	env := &fakeEnv{id: 1, rng: rand.New(rand.NewSource(1))}
	a := &UAgent{Cfg: UConfig{
		Ring:         []proto.NodeID{0, 1, 2, 3},
		NumAcceptors: 3,
		Learners:     []proto.NodeID{0, 1, 2, 3},
		GCInterval:   50 * time.Millisecond,
	}}
	a.Start(env)
	return a, env
}

func uPhase2Of(inst int64) *uPhase2 {
	m := uPhase2Pool.Get()
	m.Inst, m.Rnd, m.VID = inst, 1<<10, core.ValueID(1000+inst)
	m.Val = batchOf(core.ValueID(inst))
	return m
}

// TestURingStragglerLearnerHoldsFloor checks that the trim floor never
// passes the slowest learner: three fast learners reporting far ahead trim
// nothing beyond the straggler's version, and once the straggler catches
// up the log empties.
func TestURingStragglerLearnerHoldsFloor(t *testing.T) {
	a, _ := newUAcceptor()
	for inst := int64(0); inst < 10; inst++ {
		a.onPhase2(uPhase2Of(inst))
	}
	if a.votes.Len() != 10 {
		t.Fatalf("vote log %d entries, want 10", a.votes.Len())
	}
	a.onVersionReport(proto.VersionReport{From: 0, Inst: 9})
	a.onVersionReport(proto.VersionReport{From: 1, Inst: 9})
	a.onVersionReport(proto.VersionReport{From: 2, Inst: 9})
	if a.votes.Len() != 10 {
		t.Fatalf("trimmed with a learner unreported: %d entries", a.votes.Len())
	}
	a.onVersionReport(proto.VersionReport{From: 3, Inst: 2}) // the straggler
	if a.votes.Len() != 7 {
		t.Fatalf("vote log %d entries after straggler at 2, want 7 (3..9 live)", a.votes.Len())
	}
	// Fast learners run further ahead; the floor must not move.
	a.onVersionReport(proto.VersionReport{From: 0, Inst: 20})
	a.onVersionReport(proto.VersionReport{From: 1, Inst: 20})
	if a.votes.Len() != 7 {
		t.Fatalf("floor passed the straggler: %d entries", a.votes.Len())
	}
	// Straggler catches up: everything trims.
	a.onVersionReport(proto.VersionReport{From: 3, Inst: 9})
	if a.votes.Len() != 0 {
		t.Fatalf("vote log %d entries after full catch-up, want 0", a.votes.Len())
	}
}

// TestURingQuiescentFailoverResumesAboveFloor mirrors the basic-Paxos
// case: a coordinator taking over a quiescent, already-trimmed ring (the
// quorum's promises carry a floor but no votes) must resume instance
// numbering at the floor, not at 0 — a below-floor instance would ghost
// in its own vote ring and stall mid-ring at any trimmed acceptor.
func TestURingQuiescentFailoverResumesAboveFloor(t *testing.T) {
	env := &fakeEnv{id: 0, rng: rand.New(rand.NewSource(1))}
	a := &UAgent{Cfg: UConfig{
		Ring:         []proto.NodeID{0, 1, 2, 3},
		NumAcceptors: 3,
		Learners:     []proto.NodeID{0, 1, 2, 3},
		GCInterval:   50 * time.Millisecond,
	}}
	a.Start(env) // node 0 is the coordinator; Phase 1 starts immediately
	a.onPhase1B(1, uPhase1B{Rnd: a.crnd, Floor: 7, Votes: map[int64]vote{}})
	a.onPhase1B(2, uPhase1B{Rnd: a.crnd, Floor: 7, Votes: map[int64]vote{}})
	if !a.phase1Done {
		t.Fatal("phase 1 incomplete with a quorum of promises")
	}
	env.sends = nil
	a.Propose(core.Value{ID: 1, Bytes: 64})
	a.flush()
	var opened []int64
	for _, s := range env.sends {
		if m, ok := s.m.(*uPhase2); ok {
			opened = append(opened, m.Inst)
		}
	}
	if len(opened) == 0 || opened[0] != 7 {
		t.Fatalf("first post-failover instance opened at %v, want 7 (the adopted floor)", opened)
	}
	if a.votes.Has(0) {
		t.Fatal("coordinator voted below its own floor")
	}
}

// TestURingTrimmedInstanceStragglerNoGhost feeds a straggling Phase 2 for
// an already-trimmed instance: it must be dropped, not re-stored (a ghost
// below the floor would survive forever, since GC never looks back), and
// must not be forwarded along the ring.
func TestURingTrimmedInstanceStragglerNoGhost(t *testing.T) {
	a, env := newUAcceptor()
	for inst := int64(0); inst < 5; inst++ {
		a.onPhase2(uPhase2Of(inst))
	}
	for _, learner := range []proto.NodeID{0, 1, 2, 3} {
		a.onVersionReport(proto.VersionReport{From: learner, Inst: 4})
	}
	if a.votes.Len() != 0 {
		t.Fatalf("vote log %d entries after trim, want 0", a.votes.Len())
	}
	env.sends = nil
	a.onPhase2(uPhase2Of(2)) // retransmit of a trimmed instance
	if a.votes.Len() != 0 {
		t.Fatal("straggler Phase 2 resurrected a trimmed instance")
	}
	for _, s := range env.sends {
		if _, ok := s.m.(*uPhase2); ok {
			t.Fatal("straggler Phase 2 forwarded along the ring")
		}
	}
	// A live instance above the floor still works normally.
	a.onPhase2(uPhase2Of(7))
	if !a.votes.Has(7) {
		t.Fatal("live instance above the floor rejected")
	}
}
