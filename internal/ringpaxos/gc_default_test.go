package ringpaxos

import (
	"testing"
	"time"

	"repro/internal/lan"
	"repro/internal/proto"
)

// TestGCIntervalDefaultsOn pins the on-by-default contract for both Ring
// Paxos variants: a zero-value config resolves to the nonzero default
// interval, and only the explicit negative opts out.
func TestGCIntervalDefaultsOn(t *testing.T) {
	var mc MConfig
	mc.defaults()
	if mc.GCInterval != DefaultGCInterval {
		t.Errorf("zero MConfig.GCInterval resolved to %v, want %v", mc.GCInterval, DefaultGCInterval)
	}
	mc = MConfig{GCInterval: -1}
	mc.defaults()
	if mc.GCInterval != 0 {
		t.Errorf("negative MConfig.GCInterval resolved to %v, want 0 (off)", mc.GCInterval)
	}

	var uc UConfig
	uc.defaults()
	if uc.GCInterval != DefaultGCInterval {
		t.Errorf("zero UConfig.GCInterval resolved to %v, want %v", uc.GCInterval, DefaultGCInterval)
	}
	uc = UConfig{GCInterval: -time.Second}
	uc.defaults()
	if uc.GCInterval != 0 {
		t.Errorf("negative UConfig.GCInterval resolved to %v, want 0 (off)", uc.GCInterval)
	}
}

// versionCounter counts proto.VersionReport receipts at the node it
// wraps (both fresh reports and ring-circulated copies).
type versionCounter struct{ n *int64 }

func (versionCounter) Start(proto.Env) {}
func (c versionCounter) Receive(_ proto.NodeID, m proto.Message) {
	if _, ok := m.(proto.VersionReport); ok {
		*c.n++
	}
}

// TestMRingVersionTrafficConstant pins the timer-chain collapse: version
// traffic per unit time must be constant over an idle run. Before the
// fix, armLearnerTimers re-armed a NEW version chain from every
// gap-recovery tick (every Retry = 20ms), so each elapsed second
// multiplied the number of live chains and the per-second VersionReport
// count grew linearly (second 2 carried roughly 3x second 1). After the
// collapse each learner owns exactly one persistent chain.
func TestMRingVersionTrafficConstant(t *testing.T) {
	cfg := MConfig{
		Ring:     []proto.NodeID{0, 1},
		Learners: []proto.NodeID{100, 101},
		Group:    1,
	}
	var reports int64
	l := lan.New(lan.DefaultConfig(), 1)
	for _, id := range []proto.NodeID{0, 1, 100, 101} {
		a := &MAgent{Cfg: cfg}
		l.AddNode(id, proto.Multi(a, versionCounter{n: &reports}))
		l.Subscribe(1, id)
	}
	l.Start()
	l.Run(time.Second)
	first := reports
	l.Run(time.Second)
	second := reports - first

	// 2 learners x 20 ticks/s, each report received by its preferential
	// acceptor and circulated one hop around the 2-acceptor ring: 80/s.
	if first == 0 {
		t.Fatal("no version reports at all: GC is not running")
	}
	if second > first+first/10 {
		t.Fatalf("version traffic grows with elapsed time: %d reports in second 1, %d in second 2 (timer chains are multiplying again)",
			first, second)
	}
	perLearnerPerSec := int64(time.Second / DefaultGCInterval)
	if ceiling := 2 * perLearnerPerSec * int64(len(cfg.Ring)); second > ceiling {
		t.Fatalf("second-second version traffic %d exceeds the one-chain-per-learner ceiling %d", second, ceiling)
	}
}
