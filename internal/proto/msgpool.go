package proto

import "sync"

// MsgPool is a typed free list for pointer-shaped wire messages.
//
// A value-typed message costs one heap allocation every time it is boxed
// into the Message interface — once per Send, and once per hop for
// messages that are forwarded along a ring. Pointer-typed messages box for
// free, travel through any number of forwards without reallocation, and —
// when the protocol knows which process consumes the message last — can be
// recycled here for the next send.
//
// The contract: exactly one process owns a message at a time. Whoever
// calls Put must be the message's final consumer (the coordinator draining
// a proposal, the last hop of a decision's ring revolution, the client
// reading its reply) and must not touch it afterward. Messages that fan
// out to several receivers (multicast) must never be Put — receivers
// cannot tell who is last — and are simply dropped for the GC, which is
// what makes a lost or down-node message safe too: the pool is an
// optimization, never an obligation.
//
// MsgPool is backed by sync.Pool so the parallel experiment runner can
// share one pool per message type across concurrently running simulations.
type MsgPool[T any] struct {
	p sync.Pool
}

// Get returns a zeroed *T, recycled when possible.
func (p *MsgPool[T]) Get() *T {
	if v := p.p.Get(); v != nil {
		return v.(*T)
	}
	return new(T)
}

// Put recycles m, zeroing it so payload references are released while it
// sits in the pool. Put(nil) is a no-op.
func (p *MsgPool[T]) Put(m *T) {
	if m == nil {
		return
	}
	var zero T
	*m = zero
	p.p.Put(m)
}
