package proto

import (
	"math/rand"
	"testing"
	"time"
)

// stubEnv records the calls a handler makes, for contract tests.
type stubEnv struct {
	workD time.Duration
	calls []string
}

func (s *stubEnv) ID() NodeID              { return 1 }
func (s *stubEnv) Now() time.Duration      { return 0 }
func (s *stubEnv) Rand() *rand.Rand        { return rand.New(rand.NewSource(1)) }
func (s *stubEnv) Send(NodeID, Message)    { s.calls = append(s.calls, "send") }
func (s *stubEnv) SendUDP(NodeID, Message) { s.calls = append(s.calls, "udp") }
func (s *stubEnv) Multicast(GroupID, Message) {
	s.calls = append(s.calls, "mcast")
}
func (s *stubEnv) After(time.Duration, func()) Timer {
	s.calls = append(s.calls, "after")
	return nil
}
func (s *stubEnv) Work(d time.Duration, fn func()) {
	s.workD = d
	s.calls = append(s.calls, "work")
	fn()
}
func (s *stubEnv) DiskWrite(int, func()) { s.calls = append(s.calls, "disk") }

// multiCoreEnv additionally implements MultiCore.
type multiCoreEnv struct {
	stubEnv
	core int
}

func (m *multiCoreEnv) WorkOn(core int, d time.Duration, fn func()) {
	m.core = core
	m.calls = append(m.calls, "workon")
	fn()
}

// TestWorkOnDispatch: WorkOn must use the env's multi-core path when the
// env offers one and fall back to single-CPU Work otherwise — P-SMR's
// parallel execution depends on the former, every other protocol on the
// latter.
func TestWorkOnDispatch(t *testing.T) {
	ran := 0
	single := &stubEnv{}
	WorkOn(single, 3, time.Millisecond, func() { ran++ })
	if single.workD != time.Millisecond || len(single.calls) != 1 || single.calls[0] != "work" {
		t.Errorf("single-core fallback: calls %v, d %v", single.calls, single.workD)
	}
	multi := &multiCoreEnv{}
	WorkOn(multi, 3, time.Millisecond, func() { ran++ })
	if multi.core != 3 || len(multi.calls) != 1 || multi.calls[0] != "workon" {
		t.Errorf("multi-core dispatch: calls %v, core %d", multi.calls, multi.core)
	}
	if ran != 2 {
		t.Errorf("callback ran %d times, want 2", ran)
	}
}

// TestRawSize: substrates charge bandwidth and buffers off Message.Size;
// Raw must report exactly its configured payload.
func TestRawSize(t *testing.T) {
	for _, n := range []int{0, 1, 200, 8 << 10} {
		if got := (Raw{Bytes: n, Tag: 9}).Size(); got != n {
			t.Errorf("Raw{%d}.Size() = %d", n, got)
		}
	}
}

// TestHandlerFuncNilSafe: a HandlerFunc with unset callbacks must be a
// no-op, not a nil dereference (probes often set only one of the two).
func TestHandlerFuncNilSafe(t *testing.T) {
	h := &HandlerFunc{}
	h.Start(&stubEnv{})
	h.Receive(1, Raw{Bytes: 1})

	started, received := 0, 0
	h = &HandlerFunc{
		OnStart:   func(Env) { started++ },
		OnReceive: func(NodeID, Message) { received++ },
	}
	h.Start(&stubEnv{})
	h.Receive(2, Raw{Bytes: 1})
	if started != 1 || received != 1 {
		t.Errorf("callbacks ran %d/%d times, want 1/1", started, received)
	}
}

// TestMultiFanOutOrder: Multi must deliver Start and Receive to each
// component in composition order — harnesses co-locate an agent and its
// traffic pump on one node and rely on the agent seeing events first.
func TestMultiFanOutOrder(t *testing.T) {
	var order []string
	mk := func(name string) Handler {
		return &HandlerFunc{
			OnStart:   func(Env) { order = append(order, name+".start") },
			OnReceive: func(NodeID, Message) { order = append(order, name+".recv") },
		}
	}
	m := Multi(mk("a"), mk("b"), mk("c"))
	m.Start(&stubEnv{})
	m.Receive(1, Raw{Bytes: 4})
	want := []string{"a.start", "b.start", "c.start", "a.recv", "b.recv", "c.recv"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}
