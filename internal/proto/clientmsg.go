package proto

// Client-session wire messages, shared by every ordering protocol so the
// exactly-once client layer (internal/client) never has to import a
// protocol package. Both are small fixed-size control messages.

// clientMsgBytes is the modeled wire footprint of the client control
// messages: header plus the (client, seq) identity and a node hint.
const clientMsgBytes = 32

// MsgClientAck acknowledges a stamped proposal (Client, Seq) back to its
// session: the command was applied — or had already been applied and was
// suppressed by the learner's dedup table, in which case the ack is
// served from the table. Sessions must tolerate duplicate acks (every
// learner acks independently) and stale ones (from retries of an already
// acked sequence).
type MsgClientAck struct {
	Client int64
	Seq    int64
}

// Size implements Message.
func (m *MsgClientAck) Size() int { return clientMsgBytes }

// ClientAckPool recycles acks; the receiving session is the final
// consumer (unicast, one owner).
var ClientAckPool MsgPool[MsgClientAck]

// MsgProposeNack rejects a stamped proposal: the receiver is not (or is
// no longer) the coordinator that can open an instance for it — a demoted
// or retired ex-coordinator after a failover, typically reached by a
// session with a stale ring view. Coord is the rejecting node's own view
// of the current coordinator (which may be stale too; sessions treat the
// NACK's sender, not the hint, as the evidence of who NOT to retry). The
// point of the NACK is that the session backs off on evidence instead of
// timeout alone.
type MsgProposeNack struct {
	Client int64
	Seq    int64
	// Coord is the rejecting node's current coordinator view.
	Coord NodeID
}

// Size implements Message.
func (m *MsgProposeNack) Size() int { return clientMsgBytes }

// ProposeNackPool recycles NACKs; the receiving session is the final
// consumer.
var ProposeNackPool MsgPool[MsgProposeNack]
