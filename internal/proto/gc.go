package proto

// Shared garbage-collection wire messages (§3.3.7). Every ordering
// protocol that bounds its per-instance logs speaks the same two-message
// trim-floor protocol:
//
//   - VersionReport: a log consumer (learner, replica) announces the
//     highest instance it has applied. How the report travels is the
//     protocol's business — M-Ring sends it to a preferential acceptor and
//     circulates it around the acceptor ring, U-Ring pipelines it around
//     the process ring, basic Paxos sends it straight to the coordinator.
//   - TrimFloor: a process that has computed the global minimum (via
//     core.VersionTracker) tells log holders that cannot compute it
//     themselves — basic Paxos acceptors, which never see learner reports
//     — that instances up to Inst are globally applied and may be dropped.
//
// Both messages are header-sized: garbage collection must not compete
// with application traffic for bandwidth.

const gcHeaderBytes = 32 // same modeled fixed header as every protocol message

// VersionReport announces that consumer From has applied every instance
// up to and including Inst. Hops counts forwards for protocols that
// circulate the report along a ring, so circulation stops after one
// revolution.
type VersionReport struct {
	From NodeID
	Inst int64
	Hops int
}

// Size implements Message.
func (m VersionReport) Size() int { return gcHeaderBytes }

// TrimFloor instructs a log holder to drop instances at or below Inst:
// every consumer has reported them applied, so no retransmission or
// recovery will ever ask for them again.
type TrimFloor struct {
	Inst int64
}

// Size implements Message.
func (m TrimFloor) Size() int { return gcHeaderBytes }
