// Package proto defines the node/message/environment contracts shared by
// every protocol in this repository.
//
// Protocols are written as deterministic event-driven actors: a Handler
// reacts to messages and timers through single-threaded callbacks and talks
// to the outside world only through its Env. The same protocol code runs on
// the discrete-event simulated cluster (internal/lan), used by all paper
// reproductions, and on the realtime goroutine runtime (package runtime),
// used by the examples and by library consumers.
package proto

import (
	"math/rand"
	"time"
)

// NodeID identifies a process in the system.
type NodeID int

// GroupID identifies an ip-multicast group.
type GroupID int

// Message is anything a protocol puts on the wire. Size is the payload size
// in bytes; the substrates charge bandwidth, buffers and CPU based on it.
type Message interface {
	Size() int
}

// Timer is a cancellable scheduled callback. Cancel is idempotent and safe
// at any point in the timer's life: cancelling a timer that already fired,
// or was already cancelled, is a guaranteed no-op — substrates that recycle
// timer storage must ensure a stale handle can never cancel an unrelated,
// newer timer (the simulated kernel uses a generation counter for this).
// Protocols therefore never need to track whether a timer is still live
// before cancelling it.
type Timer interface {
	Cancel()
}

// Env is the world as seen by one protocol actor. All callbacks delivered
// through an Env (message receipt, timers, Work/DiskWrite completions) are
// serialized: a handler never runs concurrently with itself.
type Env interface {
	// ID returns the node this actor runs on.
	ID() NodeID
	// Now returns elapsed time since the run began.
	Now() time.Duration
	// Rand returns a deterministic per-run random source.
	Rand() *rand.Rand

	// Send transmits m to node `to` over a reliable FIFO channel (TCP-like:
	// no loss, backpressure through a bounded window).
	Send(to NodeID, m Message)
	// SendUDP transmits m as an unreliable datagram; it may be dropped when
	// the receiver's socket buffer is full.
	SendUDP(to NodeID, m Message)
	// Multicast transmits m to every subscriber of group g with
	// network-level replication: the sender pays the transmission once.
	// Delivery is unreliable, like SendUDP.
	Multicast(g GroupID, m Message)

	// After schedules fn to run on this actor after d. Callbacks scheduled
	// for the same instant run in scheduling order (FIFO), which is part of
	// the determinism contract every figure reproduction relies on.
	After(d time.Duration, fn func()) Timer
	// Work occupies this node's CPU for d, then runs fn. Use it to model
	// command-execution cost.
	Work(d time.Duration, fn func())
	// DiskWrite synchronously writes size bytes to stable storage, then
	// runs fn.
	DiskWrite(size int, fn func())
}

// FreeTimerEnv is the optional interface for allocation-free fire-and-forget
// timers. Env.After costs two small heap objects per call (the callback
// closure and the Timer box) — irrelevant for rare protocol timers, but
// steady-state ticks (batch flush, retransmission scans, traffic-generator
// pacing) fire at megahertz rates in aggregate. AfterFree schedules a
// pre-existing func value without returning a handle, and AfterFreeArg
// additionally passes a scalar argument so per-instance timers need no
// capturing closure. Callers hold the func in a field assigned once at
// Start; passing a method value inline would allocate the very closure the
// interface exists to avoid.
type FreeTimerEnv interface {
	AfterFree(d time.Duration, fn func())
	AfterFreeArg(d time.Duration, fn func(int64), arg int64)
}

// AfterFree schedules fn to run on env's actor after d, without a cancel
// handle. On environments implementing FreeTimerEnv it allocates nothing;
// elsewhere it falls back to After.
func AfterFree(env Env, d time.Duration, fn func()) {
	if fe, ok := env.(FreeTimerEnv); ok {
		fe.AfterFree(d, fn)
		return
	}
	env.After(d, fn)
}

// AfterFreeArg schedules fn(arg) to run on env's actor after d. See
// AfterFree.
func AfterFreeArg(env Env, d time.Duration, fn func(int64), arg int64) {
	if fe, ok := env.(FreeTimerEnv); ok {
		fe.AfterFreeArg(d, fn, arg)
		return
	}
	env.After(d, func() { fn(arg) })
}

// FreeWorkEnv is the optional interface for allocation-free Work
// completions carrying a scalar argument. Beyond avoiding the per-call
// closure, the argument lets callers that pair queued state with
// completions (pending replies, scheduler admissions) tag each completion
// with a monotonic id — which keeps the pairing correct even if a
// completion is dropped (the substrate discards completions addressed to a
// crashed node): the next surviving completion identifies and retires the
// orphaned entries.
type FreeWorkEnv interface {
	WorkArg(d time.Duration, fn func(int64), arg int64)
}

// WorkArg occupies env's CPU for d, then runs fn(arg). On environments
// implementing FreeWorkEnv it allocates nothing; elsewhere it falls back
// to Work with a capturing closure.
func WorkArg(env Env, d time.Duration, fn func(int64), arg int64) {
	if we, ok := env.(FreeWorkEnv); ok {
		we.WorkArg(d, fn, arg)
		return
	}
	env.Work(d, func() { fn(arg) })
}

// GroupSizer is the optional interface for environments that can report how
// many nodes subscribe to a multicast group. Protocols that share one
// payload buffer across a multicast's receivers use it to stamp the buffer
// with a receiver count so the last consumer can recycle it; on
// environments without it the buffer simply falls back to garbage
// collection. The count may only shrink through failures after the send
// (a crashed receiver never consumes), so a GroupSize taken at send time
// can overcount actual consumers — which delays recycling — but never
// undercounts, which would recycle a buffer still in use.
type GroupSizer interface {
	GroupSize(g GroupID) int
}

// GroupSizeOf returns env's subscriber count for g, or 0 when env cannot
// report one (senders then skip buffer stamping and let the garbage
// collector reclaim the payload). Wrapper environments forward it so the
// capability of the underlying network is not hidden by embedding.
func GroupSizeOf(env Env, g GroupID) int {
	if gs, ok := env.(GroupSizer); ok {
		return gs.GroupSize(g)
	}
	return 0
}

// MultiCore is the optional interface environments with multiple CPU cores
// implement; core 0 also handles messages. Protocols that exploit
// parallelism (P-SMR) type-assert for it and fall back to Work.
type MultiCore interface {
	WorkOn(core int, d time.Duration, fn func())
}

// WorkOn schedules work on a specific core when env supports it, else on
// the env's single CPU.
func WorkOn(env Env, core int, d time.Duration, fn func()) {
	if mc, ok := env.(MultiCore); ok {
		mc.WorkOn(core, d, fn)
		return
	}
	env.Work(d, fn)
}

// Downer is the optional interface environments implement to report
// whether their own process is currently crashed. Protocol timers fire
// "into the void" while a node is down (their sends are suppressed);
// most ticks are harmless then, but code that acts on the *absence* of
// traffic — failure detectors — must not observe silence or suspect
// peers while its own process is the silent one. Environments without
// the interface report never-down.
type Downer interface {
	Down() bool
}

// EnvDown reports whether env's process is down, defaulting to false on
// environments that cannot say.
func EnvDown(env Env) bool {
	if d, ok := env.(Downer); ok {
		return d.Down()
	}
	return false
}

// VolatileLoser is the optional interface handlers implement to model a
// crash that destroys volatile state (fault.Lose). LoseVolatile is
// called on restart, before any post-recovery message is delivered: the
// handler discards soft state a real process keeps only in memory —
// staged client values awaiting proposal, half-built batches — and then
// applies its configured durability model to the protocol state. The
// Ring Paxos agents offer three (see ringpaxos.Durability): retain
// promises and votes as free modeled stable storage (the legacy
// default), lose them honestly and retire from the acceptor role, or
// lose them and replay a write-ahead log whose appends were charged to
// the disk model via Env.DiskWrite. Handlers that do not implement the
// interface lose nothing on restart (equivalent to a freeze at the
// protocol layer).
type VolatileLoser interface {
	LoseVolatile()
}

// Handler is the protocol actor installed on a node.
type Handler interface {
	// Start is called exactly once, before any message is delivered.
	Start(env Env)
	// Receive is called for every message delivered to this node.
	Receive(from NodeID, m Message)
}

// HandlerFunc adapts plain functions to Handler for tests and probes.
type HandlerFunc struct {
	OnStart   func(env Env)
	OnReceive func(from NodeID, m Message)
}

// Start implements Handler.
func (h *HandlerFunc) Start(env Env) {
	if h.OnStart != nil {
		h.OnStart(env)
	}
}

// Receive implements Handler.
func (h *HandlerFunc) Receive(from NodeID, m Message) {
	if h.OnReceive != nil {
		h.OnReceive(from, m)
	}
}

// Multi composes several handlers on one node: Start and Receive fan out to
// each in order. Handlers must ignore messages that are not theirs (the
// convention throughout this repository: Receive type-switches and drops
// unknown types).
func Multi(hs ...Handler) Handler { return multiHandler(hs) }

type multiHandler []Handler

// Start implements Handler.
func (m multiHandler) Start(env Env) {
	for _, h := range m {
		h.Start(env)
	}
}

// Receive implements Handler.
func (m multiHandler) Receive(from NodeID, msg Message) {
	for _, h := range m {
		h.Receive(from, msg)
	}
}

// LoseVolatile implements VolatileLoser by forwarding to every composed
// handler that models volatile loss. Without this a protocol agent
// sharing its node with a traffic pump would silently keep state across
// a fault.Lose restart that a bare agent loses.
func (m multiHandler) LoseVolatile() {
	for _, h := range m {
		if vl, ok := h.(VolatileLoser); ok {
			vl.LoseVolatile()
		}
	}
}

// Raw is a plain payload message of a given size, used by substrates' own
// tests and by traffic generators.
type Raw struct {
	Bytes int
	Tag   int64
}

// Size implements Message.
func (r Raw) Size() int { return r.Bytes }
