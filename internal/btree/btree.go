// Package btree is the in-memory B+-tree service the dissertation's
// Chapter 4 (DSN 2011) evaluates state-machine replication with: it stores
// (key, value) pairs of 8-byte integers and supports insert(key, value),
// delete(key) and query(key_min, key_max).
//
// Operations return logical undo actions so a speculative replica can roll
// back out-of-order executions: the rollback of an insert is a delete, the
// rollback of a delete re-inserts the deleted value (§4.4.2).
package btree

// degree is the maximum number of children of an internal node; leaves hold
// up to degree-1 keys.
const degree = 64

// Tree is an in-memory B+-tree mapping int64 keys to int64 values.
// The zero value is an empty tree ready to use.
type Tree struct {
	root *node
	size int
}

// node is either internal (children non-nil) or a leaf (vals non-nil).
// Leaves are chained through next for range scans.
type node struct {
	keys     []int64
	children []*node
	vals     []int64
	next     *node
}

func (n *node) leaf() bool { return n.children == nil }

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return t.size }

// findLeaf descends to the leaf that would hold key.
func (t *Tree) findLeaf(key int64) *node {
	n := t.root
	for n != nil && !n.leaf() {
		i := upperBound(n.keys, key)
		n = n.children[i]
	}
	return n
}

// upperBound returns the index of the first element > key.
func upperBound(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the index of the first element >= key.
func lowerBound(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key.
func (t *Tree) Get(key int64) (int64, bool) {
	n := t.findLeaf(key)
	if n == nil {
		return 0, false
	}
	i := lowerBound(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return 0, false
}

// Insert stores (key, value) if key is absent and reports whether it
// inserted.
func (t *Tree) Insert(key, value int64) bool {
	if t.root == nil {
		t.root = &node{keys: []int64{key}, vals: []int64{value}}
		t.size = 1
		return true
	}
	split, sepKey, ok := t.insert(t.root, key, value)
	if !ok {
		return false
	}
	if split != nil {
		t.root = &node{
			keys:     []int64{sepKey},
			children: []*node{t.root, split},
		}
	}
	t.size++
	return true
}

// insert adds (key, value) under n. If n splits, it returns the new right
// sibling and the separator key to push up.
func (t *Tree) insert(n *node, key, value int64) (*node, int64, bool) {
	if n.leaf() {
		i := lowerBound(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			return nil, 0, false // duplicate
		}
		n.keys = insertAt(n.keys, i, key)
		n.vals = insertAt(n.vals, i, value)
		if len(n.keys) < degree {
			return nil, 0, true
		}
		// Split leaf.
		mid := len(n.keys) / 2
		right := &node{
			keys: append([]int64(nil), n.keys[mid:]...),
			vals: append([]int64(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right, right.keys[0], true
	}
	i := upperBound(n.keys, key)
	split, sepKey, ok := t.insert(n.children[i], key, value)
	if !ok {
		return nil, 0, false
	}
	if split == nil {
		return nil, 0, true
	}
	n.keys = insertAt(n.keys, i, sepKey)
	n.children = insertChildAt(n.children, i+1, split)
	if len(n.children) <= degree {
		return nil, 0, true
	}
	// Split internal node.
	mid := len(n.keys) / 2
	up := n.keys[mid]
	right := &node{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, up, true
}

func insertAt(s []int64, i int, v int64) []int64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertChildAt(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Delete removes key, returning the deleted value and whether it existed.
// Leaves are allowed to underflow (lazy deletion): range scans skip empty
// leaves, and the tree's depth is bounded by the insertion history. This
// matches the service's workloads, which keep tree size constant (§4.4.2).
func (t *Tree) Delete(key int64) (int64, bool) {
	n := t.findLeaf(key)
	if n == nil {
		return 0, false
	}
	i := lowerBound(n.keys, key)
	if i >= len(n.keys) || n.keys[i] != key {
		return 0, false
	}
	v := n.vals[i]
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size--
	return v, true
}

// Query returns the values of all keys in [min, max], in key order.
func (t *Tree) Query(min, max int64) []int64 {
	var out []int64
	t.QueryFunc(min, max, func(_, v int64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// QueryFunc visits all (key, value) pairs with min <= key <= max in key
// order until fn returns false.
func (t *Tree) QueryFunc(min, max int64, fn func(k, v int64) bool) {
	n := t.findLeaf(min)
	for n != nil {
		i := lowerBound(n.keys, min)
		for ; i < len(n.keys); i++ {
			if n.keys[i] > max {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Count returns how many keys lie in [min, max].
func (t *Tree) Count(min, max int64) int {
	n := 0
	t.QueryFunc(min, max, func(_, _ int64) bool {
		n++
		return true
	})
	return n
}

// Depth returns the height of the tree (0 when empty).
func (t *Tree) Depth() int {
	d := 0
	for n := t.root; n != nil; {
		d++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return d
}
