// Package btree is the in-memory B+-tree service the dissertation's
// Chapter 4 (DSN 2011) evaluates state-machine replication with: it stores
// (key, value) pairs of 8-byte integers and supports insert(key, value),
// delete(key) and query(key_min, key_max).
//
// Operations return logical undo actions so a speculative replica can roll
// back out-of-order executions: the rollback of an insert is a delete, the
// rollback of a delete re-inserts the deleted value (§4.4.2).
package btree

// degree is the maximum number of children of an internal node; leaves hold
// up to degree-1 keys.
const degree = 64

// Minimum occupancy: half-full nodes, the classic B+-tree bound. A node
// that drops below it after a delete borrows from or merges with a sibling,
// so the tree never accumulates near-empty leaves — and every merge feeds a
// node into the tree's free-lists, where the next split reuses it (node and
// slice capacity both), eliminating steady-state node churn in workloads
// that delete as much as they insert.
const (
	minLeafKeys = (degree - 1) / 2
	minChildren = degree / 2
)

// Tree is an in-memory B+-tree mapping int64 keys to int64 values.
// The zero value is an empty tree ready to use.
type Tree struct {
	root *node
	size int
	// Merge-fed free-lists, chained through next: nodes recovered by
	// delete-side merges, reused by insert-side splits.
	freeLeaf     *node
	freeInternal *node
}

// node is either internal (children non-nil) or a leaf (vals non-nil).
// Leaves are chained through next for range scans; free-listed nodes reuse
// next as the free-list link.
type node struct {
	keys     []int64
	children []*node
	vals     []int64
	next     *node
}

func (n *node) leaf() bool { return n.children == nil }

// newLeaf takes a leaf off the free-list, or allocates one with full slice
// capacity so its whole lifetime of splits and merges reallocates nothing.
func (t *Tree) newLeaf() *node {
	if n := t.freeLeaf; n != nil {
		t.freeLeaf = n.next
		n.next = nil
		return n
	}
	return &node{keys: make([]int64, 0, degree), vals: make([]int64, 0, degree)}
}

// newInternal is newLeaf for internal nodes.
func (t *Tree) newInternal() *node {
	if n := t.freeInternal; n != nil {
		t.freeInternal = n.next
		n.next = nil
		return n
	}
	return &node{keys: make([]int64, 0, degree), children: make([]*node, 0, degree+1)}
}

// freeNode empties n and pushes it on its free-list. Child pointers are
// cleared so a free-listed node never retains a subtree.
func (t *Tree) freeNode(n *node) {
	n.keys = n.keys[:0]
	if n.leaf() {
		n.vals = n.vals[:0]
		n.next = t.freeLeaf
		t.freeLeaf = n
		return
	}
	for i := range n.children {
		n.children[i] = nil
	}
	n.children = n.children[:0]
	n.next = t.freeInternal
	t.freeInternal = n
}

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return t.size }

// findLeaf descends to the leaf that would hold key.
func (t *Tree) findLeaf(key int64) *node {
	n := t.root
	for n != nil && !n.leaf() {
		i := upperBound(n.keys, key)
		n = n.children[i]
	}
	return n
}

// upperBound returns the index of the first element > key.
func upperBound(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the index of the first element >= key.
func lowerBound(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key.
func (t *Tree) Get(key int64) (int64, bool) {
	n := t.findLeaf(key)
	if n == nil {
		return 0, false
	}
	i := lowerBound(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return 0, false
}

// Insert stores (key, value) if key is absent and reports whether it
// inserted.
func (t *Tree) Insert(key, value int64) bool {
	if t.root == nil {
		r := t.newLeaf()
		r.keys = append(r.keys, key)
		r.vals = append(r.vals, value)
		t.root = r
		t.size = 1
		return true
	}
	split, sepKey, ok := t.insert(t.root, key, value)
	if !ok {
		return false
	}
	if split != nil {
		r := t.newInternal()
		r.keys = append(r.keys, sepKey)
		r.children = append(r.children, t.root, split)
		t.root = r
	}
	t.size++
	return true
}

// insert adds (key, value) under n. If n splits, it returns the new right
// sibling and the separator key to push up.
func (t *Tree) insert(n *node, key, value int64) (*node, int64, bool) {
	if n.leaf() {
		i := lowerBound(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			return nil, 0, false // duplicate
		}
		n.keys = insertAt(n.keys, i, key)
		n.vals = insertAt(n.vals, i, value)
		if len(n.keys) < degree {
			return nil, 0, true
		}
		// Split leaf, reusing a merged-away node when one is free.
		mid := len(n.keys) / 2
		right := t.newLeaf()
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		right.next = n.next
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right, right.keys[0], true
	}
	i := upperBound(n.keys, key)
	split, sepKey, ok := t.insert(n.children[i], key, value)
	if !ok {
		return nil, 0, false
	}
	if split == nil {
		return nil, 0, true
	}
	n.keys = insertAt(n.keys, i, sepKey)
	n.children = insertChildAt(n.children, i+1, split)
	if len(n.children) <= degree {
		return nil, 0, true
	}
	// Split internal node, reusing a merged-away node when one is free.
	mid := len(n.keys) / 2
	up := n.keys[mid]
	right := t.newInternal()
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	for j := mid + 1; j < len(n.children); j++ {
		n.children[j] = nil // do not retain moved subtrees in the left node
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, up, true
}

func insertAt(s []int64, i int, v int64) []int64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertChildAt(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Delete removes key, returning the deleted value and whether it existed.
// Underflowing nodes borrow from or merge with a sibling on the way back up
// the recursion; merged-away nodes land on the free-lists that feed splits,
// so workloads that keep tree size constant (§4.4.2) recycle nodes instead
// of churning the allocator.
func (t *Tree) Delete(key int64) (int64, bool) {
	if t.root == nil {
		return 0, false
	}
	v, ok := t.del(t.root, key)
	if !ok {
		return 0, false
	}
	// Collapse the root: an internal root with one child hands it the tree;
	// an emptied leaf root leaves the tree empty.
	if r := t.root; r.leaf() {
		if len(r.keys) == 0 {
			t.root = nil
			t.freeNode(r)
		}
	} else if len(r.children) == 1 {
		t.root = r.children[0]
		t.freeNode(r)
	}
	t.size--
	return v, true
}

// del removes key under n. A child left under minimum occupancy is repaired
// by its parent here, so only the root may underflow (handled by Delete).
func (t *Tree) del(n *node, key int64) (int64, bool) {
	if n.leaf() {
		i := lowerBound(n.keys, key)
		if i >= len(n.keys) || n.keys[i] != key {
			return 0, false
		}
		v := n.vals[i]
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return v, true
	}
	i := upperBound(n.keys, key)
	v, ok := t.del(n.children[i], key)
	if !ok {
		return 0, false
	}
	t.rebalance(n, i)
	return v, true
}

// rebalance repairs n.children[i] after a delete beneath it: nothing when
// it still meets minimum occupancy, a borrow when an adjacent sibling has
// spare keys, a merge (freeing one node) otherwise.
func (t *Tree) rebalance(n *node, i int) {
	c := n.children[i]
	if c.leaf() {
		if len(c.keys) >= minLeafKeys {
			return
		}
	} else if len(c.children) >= minChildren {
		return
	}
	if i > 0 {
		left := n.children[i-1]
		if spare(left) {
			t.borrowFromLeft(n, i, left, c)
		} else {
			t.merge(n, i-1, left, c)
		}
		return
	}
	right := n.children[i+1]
	if spare(right) {
		t.borrowFromRight(n, i, c, right)
	} else {
		t.merge(n, i, c, right)
	}
}

// spare reports whether n can give up a key without underflowing.
func spare(n *node) bool {
	if n.leaf() {
		return len(n.keys) > minLeafKeys
	}
	return len(n.children) > minChildren
}

// borrowFromLeft moves left's last key into the front of c (children[i]);
// the separator n.keys[i-1] updates (leaves) or rotates (internals).
func (t *Tree) borrowFromLeft(n *node, i int, left, c *node) {
	last := len(left.keys) - 1
	if c.leaf() {
		c.keys = insertAt(c.keys, 0, left.keys[last])
		c.vals = insertAt(c.vals, 0, left.vals[last])
		left.keys = left.keys[:last]
		left.vals = left.vals[:last]
		n.keys[i-1] = c.keys[0]
		return
	}
	c.keys = insertAt(c.keys, 0, n.keys[i-1])
	lc := len(left.children) - 1
	c.children = insertChildAt(c.children, 0, left.children[lc])
	n.keys[i-1] = left.keys[last]
	left.keys = left.keys[:last]
	left.children[lc] = nil
	left.children = left.children[:lc]
}

// borrowFromRight moves right's first key onto the end of c (children[i]).
func (t *Tree) borrowFromRight(n *node, i int, c, right *node) {
	if c.leaf() {
		c.keys = append(c.keys, right.keys[0])
		c.vals = append(c.vals, right.vals[0])
		right.keys = append(right.keys[:0], right.keys[1:]...)
		right.vals = append(right.vals[:0], right.vals[1:]...)
		n.keys[i] = right.keys[0]
		return
	}
	c.keys = append(c.keys, n.keys[i])
	c.children = append(c.children, right.children[0])
	n.keys[i] = right.keys[0]
	right.keys = append(right.keys[:0], right.keys[1:]...)
	copy(right.children, right.children[1:])
	right.children[len(right.children)-1] = nil
	right.children = right.children[:len(right.children)-1]
}

// merge folds n.children[i+1] (right) into n.children[i] (left), removes
// the separator n.keys[i], and free-lists the emptied right node.
func (t *Tree) merge(n *node, i int, left, right *node) {
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	copy(n.children[i+1:], n.children[i+2:])
	n.children[len(n.children)-1] = nil
	n.children = n.children[:len(n.children)-1]
	t.freeNode(right)
}

// Query returns the values of all keys in [min, max], in key order.
func (t *Tree) Query(min, max int64) []int64 {
	var out []int64
	t.QueryFunc(min, max, func(_, v int64) bool {
		out = append(out, v)
		return true
	})
	return out
}

// QueryFunc visits all (key, value) pairs with min <= key <= max in key
// order until fn returns false.
func (t *Tree) QueryFunc(min, max int64, fn func(k, v int64) bool) {
	n := t.findLeaf(min)
	for n != nil {
		i := lowerBound(n.keys, min)
		for ; i < len(n.keys); i++ {
			if n.keys[i] > max {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Count returns how many keys lie in [min, max].
func (t *Tree) Count(min, max int64) int {
	n := 0
	t.QueryFunc(min, max, func(_, _ int64) bool {
		n++
		return true
	})
	return n
}

// Depth returns the height of the tree (0 when empty).
func (t *Tree) Depth() int {
	d := 0
	for n := t.root; n != nil; {
		d++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return d
}
