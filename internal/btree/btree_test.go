package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertGet(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 1000; i++ {
		if !tr.Insert(i*7%1000, i) {
			t.Fatalf("insert %d failed", i*7%1000)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i := int64(0); i < 1000; i++ {
		k := i * 7 % 1000
		v, ok := tr.Get(k)
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		if v*7%1000 != k {
			t.Fatalf("key %d has value %d", k, v)
		}
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	var tr Tree
	if !tr.Insert(5, 1) || tr.Insert(5, 2) {
		t.Fatal("duplicate insert accepted")
	}
	if v, _ := tr.Get(5); v != 1 {
		t.Fatalf("value overwritten: %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 500; i++ {
		tr.Insert(i, i*10)
	}
	for i := int64(0); i < 500; i += 2 {
		v, ok := tr.Delete(i)
		if !ok || v != i*10 {
			t.Fatalf("delete %d: %d %v", i, v, ok)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i := int64(0); i < 500; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d)=%v, want %v", i, ok, want)
		}
	}
	if _, ok := tr.Delete(1000); ok {
		t.Fatal("deleted a missing key")
	}
}

func TestQueryRange(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 2000; i += 2 {
		tr.Insert(i, i+1)
	}
	got := tr.Query(100, 120)
	want := []int64{101, 103, 105, 107, 109, 111, 113, 115, 117, 119, 121}
	if len(got) != len(want) {
		t.Fatalf("Query(100,120) returned %d values: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Query[%d]=%d, want %d", i, got[i], want[i])
		}
	}
	if n := tr.Count(0, 1999); n != 1000 {
		t.Fatalf("Count=%d", n)
	}
	if got := tr.Query(5000, 6000); len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
}

func TestQueryAfterDeletions(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i, i)
	}
	// Empty out a whole region so some leaves underflow.
	for i := int64(200); i < 400; i++ {
		tr.Delete(i)
	}
	got := tr.Query(150, 450)
	var want []int64
	for i := int64(150); i < 200; i++ {
		want = append(want, i)
	}
	for i := int64(400); i <= 450; i++ {
		want = append(want, i)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("at %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestDepthLogarithmic(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 100000; i++ {
		tr.Insert(i, i)
	}
	if d := tr.Depth(); d > 5 {
		t.Fatalf("depth %d for 100k sequential inserts (degree %d)", d, degree)
	}
}

// Model-based property test: a random sequence of inserts, deletes and
// queries behaves exactly like a map + sort.
func TestQuickAgainstModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  int16
		Val  int64
	}
	f := func(ops []op) bool {
		var tr Tree
		model := make(map[int64]int64)
		for _, o := range ops {
			k := int64(o.Key)
			switch o.Kind % 3 {
			case 0: // insert
				_, exists := model[k]
				if tr.Insert(k, o.Val) == exists {
					return false
				}
				if !exists {
					model[k] = o.Val
				}
			case 1: // delete
				want, exists := model[k]
				v, ok := tr.Delete(k)
				if ok != exists || (ok && v != want) {
					return false
				}
				delete(model, k)
			case 2: // range query around k
				lo, hi := k-64, k+64
				got := tr.Query(lo, hi)
				var keys []int64
				for mk := range model {
					if mk >= lo && mk <= hi {
						keys = append(keys, mk)
					}
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				if len(got) != len(keys) {
					return false
				}
				for i, mk := range keys {
					if got[i] != model[mk] {
						return false
					}
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(11)),
		Values:   nil,
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQueryFuncEarlyStop(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 100; i++ {
		tr.Insert(i, i)
	}
	n := 0
	tr.QueryFunc(0, 99, func(_, _ int64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("visited %d, want 10", n)
	}
}

func BenchmarkInsert(b *testing.B) {
	var tr Tree
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i*2654435761)%1000000, int64(i))
	}
}

func BenchmarkQuery1000(b *testing.B) {
	var tr Tree
	for i := int64(0); i < 1_000_000; i++ {
		tr.Insert(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i*7919) % 999000
		tr.Count(k, k+1000)
	}
}
