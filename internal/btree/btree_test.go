package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertGet(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 1000; i++ {
		if !tr.Insert(i*7%1000, i) {
			t.Fatalf("insert %d failed", i*7%1000)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i := int64(0); i < 1000; i++ {
		k := i * 7 % 1000
		v, ok := tr.Get(k)
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		if v*7%1000 != k {
			t.Fatalf("key %d has value %d", k, v)
		}
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	var tr Tree
	if !tr.Insert(5, 1) || tr.Insert(5, 2) {
		t.Fatal("duplicate insert accepted")
	}
	if v, _ := tr.Get(5); v != 1 {
		t.Fatalf("value overwritten: %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 500; i++ {
		tr.Insert(i, i*10)
	}
	for i := int64(0); i < 500; i += 2 {
		v, ok := tr.Delete(i)
		if !ok || v != i*10 {
			t.Fatalf("delete %d: %d %v", i, v, ok)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i := int64(0); i < 500; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d)=%v, want %v", i, ok, want)
		}
	}
	if _, ok := tr.Delete(1000); ok {
		t.Fatal("deleted a missing key")
	}
}

func TestQueryRange(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 2000; i += 2 {
		tr.Insert(i, i+1)
	}
	got := tr.Query(100, 120)
	want := []int64{101, 103, 105, 107, 109, 111, 113, 115, 117, 119, 121}
	if len(got) != len(want) {
		t.Fatalf("Query(100,120) returned %d values: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Query[%d]=%d, want %d", i, got[i], want[i])
		}
	}
	if n := tr.Count(0, 1999); n != 1000 {
		t.Fatalf("Count=%d", n)
	}
	if got := tr.Query(5000, 6000); len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
}

func TestQueryAfterDeletions(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i, i)
	}
	// Empty out a whole region so some leaves underflow.
	for i := int64(200); i < 400; i++ {
		tr.Delete(i)
	}
	got := tr.Query(150, 450)
	var want []int64
	for i := int64(150); i < 200; i++ {
		want = append(want, i)
	}
	for i := int64(400); i <= 450; i++ {
		want = append(want, i)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("at %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestDepthLogarithmic(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 100000; i++ {
		tr.Insert(i, i)
	}
	if d := tr.Depth(); d > 5 {
		t.Fatalf("depth %d for 100k sequential inserts (degree %d)", d, degree)
	}
}

// Model-based property test: a random sequence of inserts, deletes and
// queries behaves exactly like a map + sort.
func TestQuickAgainstModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  int16
		Val  int64
	}
	f := func(ops []op) bool {
		var tr Tree
		model := make(map[int64]int64)
		for _, o := range ops {
			k := int64(o.Key)
			switch o.Kind % 3 {
			case 0: // insert
				_, exists := model[k]
				if tr.Insert(k, o.Val) == exists {
					return false
				}
				if !exists {
					model[k] = o.Val
				}
			case 1: // delete
				want, exists := model[k]
				v, ok := tr.Delete(k)
				if ok != exists || (ok && v != want) {
					return false
				}
				delete(model, k)
			case 2: // range query around k
				lo, hi := k-64, k+64
				got := tr.Query(lo, hi)
				var keys []int64
				for mk := range model {
					if mk >= lo && mk <= hi {
						keys = append(keys, mk)
					}
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				if len(got) != len(keys) {
					return false
				}
				for i, mk := range keys {
					if got[i] != model[mk] {
						return false
					}
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(11)),
		Values:   nil,
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQueryFuncEarlyStop(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 100; i++ {
		tr.Insert(i, i)
	}
	n := 0
	tr.QueryFunc(0, 99, func(_, _ int64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("visited %d, want 10", n)
	}
}

func BenchmarkInsert(b *testing.B) {
	var tr Tree
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i*2654435761)%1000000, int64(i))
	}
}

func BenchmarkQuery1000(b *testing.B) {
	var tr Tree
	for i := int64(0); i < 1_000_000; i++ {
		tr.Insert(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i*7919) % 999000
		tr.Count(k, k+1000)
	}
}

// check walks the tree verifying the structural invariants the rebalancing
// delete must maintain: sorted keys, separator bounds, half-full minimum
// occupancy below the root, uniform leaf depth, and a complete leaf chain.
func check(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.root == nil {
		return
	}
	var leaves []*node
	leafDepth := -1
	var walk func(n *node, lo, hi int64, depth int, isRoot bool)
	walk = func(n *node, lo, hi int64, depth int, isRoot bool) {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				t.Fatalf("unsorted keys at depth %d: %v", depth, n.keys)
			}
		}
		for _, k := range n.keys {
			if k < lo || k >= hi {
				t.Fatalf("key %d outside separator bounds [%d,%d)", k, lo, hi)
			}
		}
		if n.leaf() {
			if !isRoot && len(n.keys) < minLeafKeys {
				t.Fatalf("leaf underflow: %d keys < %d", len(n.keys), minLeafKeys)
			}
			if len(n.keys) >= degree {
				t.Fatalf("leaf overflow: %d keys", len(n.keys))
			}
			if len(n.keys) != len(n.vals) {
				t.Fatalf("leaf keys/vals mismatch: %d vs %d", len(n.keys), len(n.vals))
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf at depth %d, expected %d", depth, leafDepth)
			}
			leaves = append(leaves, n)
			return
		}
		if len(n.children) != len(n.keys)+1 {
			t.Fatalf("internal fanout mismatch: %d children, %d keys", len(n.children), len(n.keys))
		}
		min := minChildren
		if isRoot {
			min = 2
		}
		if len(n.children) < min {
			t.Fatalf("internal underflow: %d children < %d", len(n.children), min)
		}
		if len(n.children) > degree {
			t.Fatalf("internal overflow: %d children", len(n.children))
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			walk(c, clo, chi, depth+1, false)
		}
	}
	const inf = int64(1) << 62
	walk(tr.root, -inf, inf, 0, true)
	// The next-chain must visit exactly the in-order leaves.
	i := 0
	for n := tr.leftmost(); n != nil; n = n.next {
		if i >= len(leaves) || n != leaves[i] {
			t.Fatalf("leaf chain diverges from in-order walk at leaf %d", i)
		}
		i++
	}
	if i != len(leaves) {
		t.Fatalf("leaf chain has %d leaves, walk found %d", i, len(leaves))
	}
}

// TestDeleteInvariants hammers the tree through churn phases — grow, random
// delete half, regrow, drain to empty — validating every invariant after
// each phase and spot-checking during them.
func TestDeleteInvariants(t *testing.T) {
	var tr Tree
	rng := rand.New(rand.NewSource(42))
	keys := rng.Perm(20000)
	for _, k := range keys {
		tr.Insert(int64(k), int64(k)*3)
	}
	check(t, &tr)
	for i, k := range keys[:10000] {
		if v, ok := tr.Delete(int64(k)); !ok || v != int64(k)*3 {
			t.Fatalf("delete %d: %d %v", k, v, ok)
		}
		if i%997 == 0 {
			check(t, &tr)
		}
	}
	check(t, &tr)
	if tr.Len() != 10000 {
		t.Fatalf("Len=%d after churn", tr.Len())
	}
	for _, k := range keys[:10000] {
		tr.Insert(int64(k), int64(k)*5)
	}
	check(t, &tr)
	for i, k := range keys {
		if _, ok := tr.Delete(int64(k)); !ok {
			t.Fatalf("drain: key %d missing", k)
		}
		if i%1499 == 0 {
			check(t, &tr)
		}
	}
	if tr.Len() != 0 || tr.root != nil {
		t.Fatalf("tree not empty after drain: Len=%d root=%v", tr.Len(), tr.root)
	}
}

// leftmost returns the head of the leaf chain (test helper for check).
func (t *Tree) leftmost() *node {
	n := t.root
	for n != nil && !n.leaf() {
		n = n.children[0]
	}
	return n
}

// freeLen counts the nodes on a free-list.
func freeLen(head *node) int {
	n := 0
	for ; head != nil; head = head.next {
		n++
	}
	return n
}

// TestFreeListRecycling pins the mechanism the satellite exists for: merges
// feed nodes into the free-lists, and subsequent splits consume them instead
// of allocating. (The end-to-end allocation reduction is gated by the fig4.3
// malloc budget in ci/budgets.json.)
func TestFreeListRecycling(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 50000; i++ {
		tr.Insert(i, i)
	}
	if freeLen(tr.freeLeaf) != 0 || freeLen(tr.freeInternal) != 0 {
		t.Fatal("free-lists non-empty before any delete")
	}
	// Drain a contiguous region: ascending deletes drive borrow-then-merge
	// cascades, so merged-away leaves (and some internals) hit the lists.
	for i := int64(10000); i < 30000; i++ {
		tr.Delete(i)
	}
	leaves, internals := freeLen(tr.freeLeaf), freeLen(tr.freeInternal)
	if leaves == 0 {
		t.Fatal("20k contiguous deletes fed no leaves to the free-list")
	}
	if internals == 0 {
		t.Fatal("20k contiguous deletes fed no internal nodes to the free-list")
	}
	// Refill: the splits must draw from the free-lists before allocating.
	for i := int64(10000); i < 30000; i++ {
		tr.Insert(i, i)
	}
	if got := freeLen(tr.freeLeaf); got >= leaves {
		t.Fatalf("refill splits consumed no free leaves: %d before, %d after", leaves, got)
	}
	check(t, &tr)
	if tr.Len() != 50000 {
		t.Fatalf("Len=%d after churn cycle", tr.Len())
	}
}
