// Package paxos implements the basic (multi-instance, optimized) Paxos
// protocol of the dissertation's Chapter 3, Algorithm 1 and Figure 3.1.
//
// The coordinator pre-executes Phase 1 for all instances, pipelines a
// window of simultaneously open instances, and batches small application
// values into fixed-size packets, as the dissertation's implementations do.
// Two wire configurations are supported:
//
//   - Multicast: Phase 2A and Decision messages use network-level
//     ip-multicast while Phase 2B messages are unicast datagrams back to the
//     coordinator. This is the "Libpaxos" architecture evaluated in §3.5.3:
//     dissemination is cheap but the coordinator receives one 2B per
//     acceptor per instance and becomes CPU-bound.
//   - Unicast: every message is a direct reliable channel, the "PFSB"
//     architecture of [10].
//
// The package also serves as the consensus substrate reused by the SMR and
// baseline packages; Ring Paxos has its own package (internal/ringpaxos).
//
// Like internal/ringpaxos, the hot path stores per-instance state in
// ring-indexed instance logs rather than maps, stages values in a reusable
// slab, tracks Phase 2B quorums as bitmasks over the acceptor list, and
// uses pooled pointer messages plus fire-and-forget timers, so the
// steady-state data path performs no per-value allocation.
package paxos

import (
	"math/bits"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// Config describes one Paxos deployment.
type Config struct {
	// Coordinator is the node running the coordinator role (it is also an
	// acceptor if listed in Acceptors).
	Coordinator proto.NodeID
	// Acceptors is the acceptor set; a majority quorum must stay alive.
	Acceptors []proto.NodeID
	// Learners receive Decision messages.
	Learners []proto.NodeID
	// Multicast selects the ip-multicast wire configuration; Group is the
	// multicast group to which acceptors and learners must be subscribed.
	Multicast bool
	Group     proto.GroupID
	// Window is the maximum number of simultaneously open instances.
	Window int
	// BatchBytes closes a batch once this many payload bytes accumulate.
	BatchBytes int
	// BatchDelay closes a non-empty batch after this delay even if not full.
	BatchDelay time.Duration
	// Retry is the retransmission timeout for unacknowledged Phase 2A and
	// for learner gap recovery.
	Retry time.Duration
	// DiskSync makes acceptors persist their vote to stable storage before
	// answering Phase 2A (Recoverable mode, §3.5.5).
	DiskSync bool
	// GCInterval is the shared learner-version garbage collection period
	// (§3.3.7, extracted from M-Ring Paxos): every GCInterval each learner
	// sends a proto.VersionReport to the coordinator; once every learner
	// has reported, the coordinator trims its decision log up to the
	// minimum reported instance and broadcasts a proto.TrimFloor so
	// acceptors trim their vote logs too. Zero resolves to
	// DefaultGCInterval — GC is ON by default, so library consumers get
	// bounded memory without opting in. A negative value disables GC (the
	// pre-default seed behavior: both logs grow by one entry per
	// consensus instance forever).
	GCInterval time.Duration
	// RecycleBatches lets the coordinator draw batch backing arrays from
	// its free list and reclaim them when garbage collection trims the
	// instance (plus one quarantine round). Requires GCInterval > 0 and
	// learners that consume delivered batches synchronously.
	RecycleBatches bool
}

// DefaultGCInterval is the learner-version reporting period a zero
// GCInterval resolves to; negative disables GC.
const DefaultGCInterval = 50 * time.Millisecond

func (c *Config) defaults() {
	if c.Window == 0 {
		c.Window = 32
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = 4 << 10
	}
	if c.BatchDelay == 0 {
		c.BatchDelay = 500 * time.Microsecond
	}
	if c.Retry == 0 {
		c.Retry = 20 * time.Millisecond
	}
	if c.GCInterval == 0 {
		c.GCInterval = DefaultGCInterval
	}
	if c.GCInterval < 0 {
		c.GCInterval = 0 // explicit off: no version timer is ever armed
	}
}

// Quorum returns the majority quorum size for the acceptor set.
func (c Config) Quorum() int { return len(c.Acceptors)/2 + 1 }

const headerBytes = 32 // modeled fixed header size of every protocol message

// Wire messages.
type (
	// MsgPropose carries a client value to the coordinator.
	MsgPropose struct{ V core.Value }
	// msgPhase1A opens round Rnd on all instances.
	msgPhase1A struct{ Rnd int64 }
	// msgPhase1B is an acceptor's promise, carrying its votes for all
	// undecided instances. Floor is the acceptor's garbage-collection trim
	// floor: a new coordinator must not resurrect votes below the highest
	// floor its quorum reports, because acceptors that already trimmed an
	// instance drop its Phase 2A forever (the below-floor ghost guard), so
	// a resurrected instance could retry without ever reaching quorum.
	msgPhase1B struct {
		Rnd   int64
		Votes map[int64]vote
		Floor int64
	}
	// msgPhase2A proposes Val in instance Inst at round Rnd. It is sent
	// as a pointer: the unicast configuration sends one message to every
	// acceptor, and a pointer boxes once instead of once per receiver.
	msgPhase2A struct {
		Inst int64
		Rnd  int64
		Val  core.Batch
	}
	// msgPhase2B is an acceptor's vote, pooled and recycled by the
	// coordinator that consumes it.
	msgPhase2B struct {
		Inst int64
		Rnd  int64
	}
	// msgDecision announces the decided batch of Inst. Shared marks copies
	// with more than one receiver (multicast, or unicast fan-out to the
	// learner set), which must not be recycled by any one of them; only
	// single-receiver gap-recovery retransmissions are pooled.
	msgDecision struct {
		Inst   int64
		Val    core.Batch
		Shared bool
	}
	// msgLearnReq asks the coordinator to retransmit decisions from
	// instance From on (learner gap recovery).
	msgLearnReq struct{ From int64 }
)

// Size implements proto.Message.
func (m MsgPropose) Size() int { return headerBytes + m.V.Bytes }
func (m msgPhase1A) Size() int { return headerBytes }
func (m msgPhase1B) Size() int {
	n := headerBytes
	for _, v := range m.Votes {
		n += headerBytes + v.val.Size()
	}
	return n
}
func (m msgPhase2A) Size() int  { return headerBytes + m.Val.Size() }
func (m msgPhase2B) Size() int  { return headerBytes }
func (m msgDecision) Size() int { return headerBytes + m.Val.Size() }
func (m msgLearnReq) Size() int { return headerBytes }

var (
	msgProposePool proto.MsgPool[MsgPropose]
	phase2BPool    proto.MsgPool[msgPhase2B]
	decisionPool   proto.MsgPool[msgDecision]
)

type vote struct {
	rnd int64
	val core.Batch
}

// coordInst is the coordinator's bookkeeping for one open instance. The 2B
// quorum is a bitmask over Cfg.Acceptors; retransmission timers are
// fire-and-forget and validate the instance when they fire.
type coordInst struct {
	rnd     int64
	val     core.Batch
	votes   uint64
	decided bool
	pooled  bool // val.Vals came from this agent's pool; recycle on GC
}

// logRec is one decided instance retained by the coordinator for learner
// gap recovery, until garbage collection proves every learner applied it.
type logRec struct {
	val    core.Batch
	pooled bool
}

// Agent is one Paxos process. Its roles follow from the Config: it acts as
// coordinator if its node id equals Coordinator, as acceptor if listed in
// Acceptors, and as learner if listed in Learners. Application values are
// delivered, in instance order, through the Deliver callback.
type Agent struct {
	Cfg     Config
	Deliver core.DeliverFunc
	// Trace, if set, folds this learner's delivered command sequence into
	// a delivery-equivalence digest (see core.DelivTrace). Pure
	// observation: it sends nothing and consumes no simulated time.
	Trace *core.DelivTrace
	// OnDecide, if set, is invoked on the coordinator when an instance
	// decides (used by harnesses).
	OnDecide func(inst int64)

	env proto.Env

	// coordinator state
	isCoord      bool
	phase1Done   bool
	crnd         int64
	pending      core.ValueSlab
	pendingBytes int
	batchArmed   bool
	next         int64
	open         core.InstLog[coordInst]
	log          core.InstLog[logRec] // decided batches, for retransmission
	promises     map[proto.NodeID]msgPhase1B
	pool         core.BatchPool

	// garbage-collection state (shared subsystem, §3.3.7): the coordinator
	// tracks learner versions and owns the trim floor; acceptors follow the
	// TrimFloor messages it broadcasts.
	gc         core.VersionTracker
	quarantine [][]core.Value // trimmed pooled arrays awaiting one more GC round

	// acceptor state
	rnd      int64
	votes    core.InstLog[vote]
	accFloor int64 // instances below it are trimmed from the vote log

	// learner state
	learned     core.InstLog[core.Batch]
	nextDeliver int64
	// coordHint is where learner-side requests (gap recovery, version
	// reports) go: the static Cfg.Coordinator until a decision arrives
	// from somewhere else. Only the active coordinator sends decisions, so
	// the sender doubles as a liveness hint — after a failover, reports
	// follow the new coordinator instead of chasing the dead one (which
	// would quietly disable garbage collection forever).
	coordHint proto.NodeID

	batchFn    func()
	retryFn    func(int64)
	gapTimerFn func()
	versionFn  func()
}

var _ proto.Handler = (*Agent)(nil)

// Start implements proto.Handler.
func (a *Agent) Start(env proto.Env) {
	a.env = env
	a.Cfg.defaults()
	a.promises = make(map[proto.NodeID]msgPhase1B)
	a.batchFn = func() { a.batchArmed = false; a.flush() }
	a.retryFn = a.retryInstance
	a.gapTimerFn = a.gapTick
	a.versionFn = a.versionTick
	a.coordHint = a.Cfg.Coordinator
	if env.ID() == a.Cfg.Coordinator {
		a.BecomeCoordinator(1)
	}
	if a.isLearner() {
		a.armGapTimer()
		if a.Cfg.GCInterval > 0 {
			proto.AfterFree(a.env, a.Cfg.GCInterval, a.versionFn)
		}
	}
}

func (a *Agent) isAcceptor() bool {
	for _, id := range a.Cfg.Acceptors {
		if id == a.env.ID() {
			return true
		}
	}
	return false
}

func (a *Agent) isLearner() bool {
	for _, id := range a.Cfg.Learners {
		if id == a.env.ID() {
			return true
		}
	}
	return false
}

// acceptorBit returns the quorum-bitmask bit of acceptor id, or 0.
func (a *Agent) acceptorBit(id proto.NodeID) uint64 {
	for i, acc := range a.Cfg.Acceptors {
		if acc == id {
			return 1 << uint(i)
		}
	}
	return 0
}

// BecomeCoordinator makes this agent start Phase 1 with a round number
// unique to it and at least minRound. It is called automatically on the
// configured coordinator and manually by failover logic and tests.
func (a *Agent) BecomeCoordinator(minRound int64) {
	a.isCoord = true
	a.phase1Done = false
	a.promises = make(map[proto.NodeID]msgPhase1B)
	// Rounds are made globally unique by embedding the node id in the low
	// bits.
	r := (minRound << 10) | int64(a.env.ID())
	if r <= a.crnd {
		r = (((a.crnd >> 10) + 1) << 10) | int64(a.env.ID())
	}
	a.crnd = r
	m := msgPhase1A{Rnd: a.crnd}
	for _, id := range a.Cfg.Acceptors {
		a.env.Send(id, m)
	}
	a.env.After(a.Cfg.Retry, func() {
		if a.isCoord && !a.phase1Done {
			a.BecomeCoordinator(a.crnd >> 10)
		}
	})
}

// Propose submits a value from this node. On the coordinator it enqueues
// directly; on any other node it forwards to the coordinator.
func (a *Agent) Propose(v core.Value) {
	if a.isCoord {
		a.enqueue(v)
		return
	}
	m := msgProposePool.Get()
	m.V = v
	a.env.Send(a.Cfg.Coordinator, m)
}

// Receive implements proto.Handler.
func (a *Agent) Receive(from proto.NodeID, m proto.Message) {
	switch msg := m.(type) {
	case *MsgPropose:
		if a.isCoord {
			a.enqueue(msg.V)
		}
		msgProposePool.Put(msg)
	case msgPhase1A:
		a.onPhase1A(from, msg)
	case msgPhase1B:
		a.onPhase1B(from, msg)
	case *msgPhase2A:
		a.onPhase2A(from, msg)
	case *msgPhase2B:
		a.onPhase2B(from, msg)
	case *msgDecision:
		a.coordHint = from
		a.onDecision(msg)
		if !msg.Shared {
			decisionPool.Put(msg)
		}
	case msgLearnReq:
		a.onLearnReq(from, msg)
	case proto.VersionReport:
		a.onVersionReport(msg)
	case proto.TrimFloor:
		a.onTrimFloor(msg)
	}
}

// LoseVolatile implements proto.VolatileLoser: a crash that destroys
// volatile state (fault.Lose) discards the staged client values awaiting
// proposal. Promises, votes, the decision log and the delivered frontier
// are retained — the protocol treats them as recoverable from stable
// storage (the write-ahead-log roadmap item makes that real).
func (a *Agent) LoseVolatile() {
	a.pending.PopFront(a.pending.Len())
	a.pendingBytes = 0
}

// --- coordinator ---

func (a *Agent) enqueue(v core.Value) {
	a.pending.Push(v)
	a.pendingBytes += v.Bytes
	if a.pendingBytes >= a.Cfg.BatchBytes {
		a.flush()
		return
	}
	if !a.batchArmed {
		a.batchArmed = true
		proto.AfterFree(a.env, a.Cfg.BatchDelay, a.batchFn)
	}
}

// flush opens new instances for pending batches while the window allows.
func (a *Agent) flush() {
	if !a.isCoord || !a.phase1Done {
		return
	}
	for a.pending.Len() > 0 && a.open.Len() < a.Cfg.Window {
		pooled := a.Cfg.RecycleBatches && a.Cfg.GCInterval > 0
		b, bytes := core.DrainBatch(&a.pending, &a.pool, pooled, a.Cfg.BatchBytes)
		a.pendingBytes -= bytes
		a.startInstance(b, pooled)
	}
}

func (a *Agent) startInstance(b core.Batch, pooled bool) {
	inst := a.next
	a.next++
	ci, _ := a.open.Put(inst)
	*ci = coordInst{rnd: a.crnd, val: b, pooled: pooled}
	a.sendPhase2A(inst, ci)
}

func (a *Agent) sendPhase2A(inst int64, ci *coordInst) {
	m := &msgPhase2A{Inst: inst, Rnd: ci.rnd, Val: ci.val}
	if a.Cfg.Multicast {
		// Acceptors and learners are subscribed; learners buffer the value
		// until the decision arrives.
		a.env.Multicast(a.Cfg.Group, m)
	} else {
		for _, id := range a.Cfg.Acceptors {
			a.env.Send(id, m)
		}
	}
	proto.AfterFreeArg(a.env, a.Cfg.Retry, a.retryFn, inst)
}

// retryInstance re-sends an instance's 2A if it is still undecided.
func (a *Agent) retryInstance(inst int64) {
	if ci, ok := a.open.Get(inst); ok && !ci.decided {
		a.sendPhase2A(inst, ci)
	}
}

func (a *Agent) onPhase1B(from proto.NodeID, m msgPhase1B) {
	if !a.isCoord || m.Rnd != a.crnd || a.phase1Done {
		return
	}
	a.promises[from] = m
	if len(a.promises) < a.Cfg.Quorum() {
		return
	}
	a.phase1Done = true
	// Adopt the highest-round vote per undecided instance; re-propose it.
	// Votes below the quorum's highest trim floor (or our own) belong to
	// instances every learner has applied; acceptors that trimmed them
	// drop below-floor 2As without replying, so re-opening such an
	// instance could spin in retryInstance forever, pinning a window slot.
	floor := a.accFloor
	for _, p := range a.promises {
		if p.Floor > floor {
			floor = p.Floor
		}
	}
	a.gc.SetFloor(floor)
	if floor > a.next {
		// Trimmed instances leave no votes behind: without this, a
		// quiescent failover (no surviving votes at or past the floor)
		// would restart numbering below the floor, where acceptors drop
		// every 2A — fresh instances could never decide.
		a.next = floor
	}
	adopt := make(map[int64]vote)
	for _, p := range a.promises {
		for inst, v := range p.Votes {
			if inst < floor || a.log.Has(inst) {
				continue
			}
			if cur, ok := adopt[inst]; !ok || v.rnd > cur.rnd {
				adopt[inst] = v
			}
		}
	}
	insts := make([]int64, 0, len(adopt))
	for inst := range adopt {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		if inst >= a.next {
			a.next = inst + 1
		}
		ci, _ := a.open.Put(inst)
		*ci = coordInst{rnd: a.crnd, val: adopt[inst].val}
		a.sendPhase2A(inst, ci)
	}
	a.flush()
}

func (a *Agent) onPhase2B(from proto.NodeID, m *msgPhase2B) {
	inst, rnd := m.Inst, m.Rnd
	phase2BPool.Put(m)
	if !a.isCoord {
		return
	}
	ci, ok := a.open.Get(inst)
	if !ok || ci.decided || rnd != ci.rnd {
		return
	}
	bit := a.acceptorBit(from)
	if ci.votes&bit != 0 {
		return
	}
	ci.votes |= bit
	if bits.OnesCount64(ci.votes) < a.Cfg.Quorum() {
		return
	}
	ci.decided = true
	val := ci.val
	le, _ := a.log.Put(inst)
	*le = logRec{val: val, pooled: ci.pooled}
	a.open.Delete(inst)
	dec := decisionPool.Get()
	dec.Inst, dec.Val, dec.Shared = inst, val, true
	if a.Cfg.Multicast {
		a.env.Multicast(a.Cfg.Group, dec)
	} else {
		for _, id := range a.Cfg.Learners {
			if id == a.env.ID() {
				continue
			}
			a.env.Send(id, dec)
		}
	}
	if a.isLearner() {
		a.onDecision(dec)
	}
	if a.OnDecide != nil {
		a.OnDecide(inst)
	}
	a.flush()
}

func (a *Agent) onLearnReq(from proto.NodeID, m msgLearnReq) {
	if !a.isCoord {
		return
	}
	// Retransmit up to a handful of decisions per request to bound load.
	// Trimmed instances are never requested: the trim floor only advances
	// past an instance after every learner has reported it applied.
	for inst, sent := m.From, 0; sent < 64; inst, sent = inst+1, sent+1 {
		b, ok := a.log.Get(inst)
		if !ok {
			break
		}
		dec := decisionPool.Get()
		dec.Inst, dec.Val = inst, b.val
		a.env.Send(from, dec)
	}
}

// --- acceptor ---

func (a *Agent) onPhase1A(from proto.NodeID, m msgPhase1A) {
	if !a.isAcceptor() {
		return
	}
	if m.Rnd <= a.rnd {
		return
	}
	a.rnd = m.Rnd
	reply := msgPhase1B{Rnd: a.rnd, Votes: make(map[int64]vote, a.votes.Len()), Floor: a.accFloor}
	a.votes.Range(func(inst int64, v *vote) bool {
		reply.Votes[inst] = *v
		return true
	})
	a.env.Send(from, reply)
}

func (a *Agent) onPhase2A(from proto.NodeID, m *msgPhase2A) {
	if !a.isAcceptor() {
		return
	}
	if m.Rnd < a.rnd {
		return
	}
	if m.Inst < a.accFloor {
		// Straggler for a trimmed (globally applied) instance: re-creating
		// its vote below the trim floor would leave a permanent ghost in
		// the instance ring, since TrimFloor never looks below it again.
		return
	}
	a.rnd = m.Rnd
	v, _ := a.votes.Put(m.Inst)
	*v = vote{rnd: m.Rnd, val: m.Val}
	if a.Cfg.DiskSync {
		inst, rnd := m.Inst, m.Rnd
		a.env.DiskWrite(m.Val.Size()+headerBytes, func() { a.sendPhase2B(from, inst, rnd) })
	} else {
		a.sendPhase2B(from, m.Inst, m.Rnd)
	}
}

func (a *Agent) sendPhase2B(to proto.NodeID, inst, rnd int64) {
	mb := phase2BPool.Get()
	mb.Inst, mb.Rnd = inst, rnd
	if a.Cfg.Multicast {
		a.env.SendUDP(to, mb)
	} else {
		a.env.Send(to, mb)
	}
}

// --- learner ---

func (a *Agent) onDecision(m *msgDecision) {
	if !a.isLearner() {
		return
	}
	if m.Inst < a.nextDeliver {
		return // duplicate
	}
	e, existed := a.learned.Put(m.Inst)
	if existed {
		return
	}
	*e = m.Val
	for {
		b, ok := a.learned.Get(a.nextDeliver)
		if !ok {
			break
		}
		val := *b
		a.learned.Delete(a.nextDeliver)
		if a.Trace != nil {
			now := a.env.Now()
			for _, v := range val.Vals {
				a.Trace.Note(now, a.nextDeliver, v)
			}
		}
		if a.Deliver != nil {
			for _, v := range val.Vals {
				a.Deliver(a.nextDeliver, v)
			}
		}
		a.nextDeliver++
	}
}

// armGapTimer periodically asks the coordinator for missing decisions.
func (a *Agent) armGapTimer() {
	proto.AfterFree(a.env, a.Cfg.Retry, a.gapTimerFn)
}

func (a *Agent) gapTick() {
	if a.learned.Len() > 0 || a.stalled() {
		a.env.Send(a.coordHint, msgLearnReq{From: a.nextDeliver})
	}
	a.armGapTimer()
}

// stalled reports whether this learner might be missing decisions: it is
// heuristic (a retransmission request for an instance that never existed is
// simply ignored).
func (a *Agent) stalled() bool { return true }

// --- garbage collection (shared subsystem, §3.3.7) ---

// versionTick reports this learner's applied version to the coordinator,
// which owns the trim floor.
func (a *Agent) versionTick() {
	m := proto.VersionReport{From: a.env.ID(), Inst: a.nextDeliver - 1}
	if a.isCoord {
		a.onVersionReport(m)
	} else {
		a.env.Send(a.coordHint, m)
	}
	proto.AfterFree(a.env, a.Cfg.GCInterval, a.versionFn)
}

// onVersionReport runs on the coordinator: once every learner has
// reported, it trims its decision log up to the minimum applied instance
// and tells acceptors to trim their vote logs. Arrays owned by the batch
// pool are quarantined for one GC round before reuse, exactly like M-Ring
// Paxos: retransmitted decisions already in flight may still reference a
// batch the log no longer needs.
func (a *Agent) onVersionReport(m proto.VersionReport) {
	if !a.isCoord {
		return
	}
	a.gc.Report(int64(m.From), m.Inst)
	lo, hi, ok := a.gc.Advance(len(a.Cfg.Learners))
	if !ok {
		return
	}
	a.quarantine = a.pool.Recycle(a.quarantine)
	a.log.Trim(lo, hi, func(_ int64, b *logRec) {
		if b.pooled {
			a.quarantine = append(a.quarantine, b.val.Vals)
		}
	})
	tf := proto.TrimFloor{Inst: hi}
	for _, id := range a.Cfg.Acceptors {
		if id == a.env.ID() {
			a.onTrimFloor(tf)
			continue
		}
		a.env.Send(id, tf)
	}
}

// onTrimFloor runs on acceptors: every consumer has applied instances up
// to m.Inst, so the votes backing them can never be needed again.
func (a *Agent) onTrimFloor(m proto.TrimFloor) {
	if !a.isAcceptor() {
		return
	}
	a.votes.Trim(a.accFloor, m.Inst, nil)
	if m.Inst >= a.accFloor {
		a.accFloor = m.Inst + 1
	}
}

// NextDeliver returns the next undelivered instance (learner progress).
func (a *Agent) NextDeliver() int64 { return a.nextDeliver }

// LiveLogLen reports how many per-instance records this agent currently
// retains across all of its instance logs (coordinator window and decision
// log, acceptor vote log, learner reorder buffer). Soak workloads sample
// it to prove garbage collection keeps log occupancy flat.
func (a *Agent) LiveLogLen() int {
	return a.open.Len() + a.log.Len() + a.votes.Len() + a.learned.Len()
}
