package paxos

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
)

// deployment wires a Paxos group onto a simulated LAN:
// node 0: coordinator+acceptor, nodes 1..nAcc-1: acceptors,
// nodes 100+i: learners, node 200: client/proposer.
type deployment struct {
	l        *lan.LAN
	agents   map[proto.NodeID]*Agent
	client   *Agent
	cfg      Config
	learners []proto.NodeID
	deliv    map[proto.NodeID][]core.ValueID
}

func deploy(t testing.TB, nAcc, nLearn int, multicast bool, seed int64) *deployment {
	t.Helper()
	d := &deployment{
		l:      lan.New(lan.DefaultConfig(), seed),
		agents: make(map[proto.NodeID]*Agent),
		deliv:  make(map[proto.NodeID][]core.ValueID),
	}
	var accs []proto.NodeID
	for i := 0; i < nAcc; i++ {
		accs = append(accs, proto.NodeID(i))
	}
	for i := 0; i < nLearn; i++ {
		d.learners = append(d.learners, proto.NodeID(100+i))
	}
	d.cfg = Config{
		Coordinator: 0,
		Acceptors:   accs,
		Learners:    d.learners,
		Multicast:   multicast,
		Group:       1,
	}
	add := func(id proto.NodeID) *Agent {
		a := &Agent{Cfg: d.cfg}
		a.Deliver = func(inst int64, v core.Value) {
			d.deliv[id] = append(d.deliv[id], v.ID)
		}
		d.agents[id] = a
		d.l.AddNode(id, a)
		if multicast {
			d.l.Subscribe(1, id)
		}
		return a
	}
	for _, id := range accs {
		add(id)
	}
	for _, id := range d.learners {
		add(id)
	}
	d.client = &Agent{Cfg: d.cfg}
	d.agents[200] = d.client
	d.l.AddNode(200, d.client)
	d.l.Start()
	return d
}

func (d *deployment) propose(n int) {
	for i := 0; i < n; i++ {
		d.client.Propose(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
	}
}

func checkLearners(t *testing.T, d *deployment, want int) {
	t.Helper()
	var ref []core.ValueID
	for _, id := range d.learners {
		got := d.deliv[id]
		if len(got) != want {
			t.Fatalf("learner %d delivered %d values, want %d", id, len(got), want)
		}
		seen := make(map[core.ValueID]bool)
		for _, v := range got {
			if seen[v] {
				t.Fatalf("learner %d delivered value %d twice", id, v)
			}
			seen[v] = true
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("total order violated at position %d: learner %d has %d, reference has %d",
					i, id, got[i], ref[i])
			}
		}
	}
}

func TestUnicastBasicAgreement(t *testing.T) {
	d := deploy(t, 3, 2, false, 1)
	d.propose(100)
	d.l.Run(2 * time.Second)
	checkLearners(t, d, 100)
}

func TestMulticastBasicAgreement(t *testing.T) {
	d := deploy(t, 3, 3, true, 1)
	d.propose(100)
	d.l.Run(2 * time.Second)
	checkLearners(t, d, 100)
}

func TestAgreementWithFiveAcceptors(t *testing.T) {
	d := deploy(t, 5, 2, true, 3)
	d.propose(250)
	d.l.Run(3 * time.Second)
	checkLearners(t, d, 250)
}

func TestAcceptorCrashMajorityAlive(t *testing.T) {
	d := deploy(t, 3, 2, false, 1)
	d.propose(50)
	d.l.Run(200 * time.Millisecond)
	// Crash one acceptor (not the coordinator); majority of 2 remains.
	d.l.Node(2).SetDown(true)
	for i := 0; i < 50; i++ {
		d.client.Propose(core.Value{ID: core.ValueID(1000 + i), Bytes: 512})
	}
	d.l.Run(3 * time.Second)
	checkLearners(t, d, 100)
}

func TestCoordinatorFailover(t *testing.T) {
	d := deploy(t, 3, 2, false, 1)
	d.propose(30)
	d.l.Run(500 * time.Millisecond)
	before := len(d.deliv[d.learners[0]])
	if before != 30 {
		t.Fatalf("pre-crash: delivered %d of 30", before)
	}
	// Crash the coordinator; acceptor 1 takes over with a higher round.
	d.l.Node(0).SetDown(true)
	d.agents[1].BecomeCoordinator(100)
	for i := 0; i < 20; i++ {
		d.agents[1].Propose(core.Value{ID: core.ValueID(2000 + i), Bytes: 512})
	}
	d.l.Run(3 * time.Second)
	// Learners keep their order; new values appended. Gap recovery talks to
	// the old coordinator which is down, so learners must have gotten
	// decisions via the direct path.
	for _, id := range d.learners {
		if got := len(d.deliv[id]); got != 50 {
			t.Fatalf("learner %d delivered %d, want 50 after failover", id, got)
		}
	}
	checkLearners(t, d, 50)
}

func TestNewCoordinatorAdoptsPriorVotes(t *testing.T) {
	// A value voted by a quorum must survive a coordinator change: run with
	// two acceptors voting, crash coordinator before decision spreads, let
	// a new coordinator finish the instance.
	d := deploy(t, 3, 2, false, 7)
	d.propose(10)
	// Stop the world mid-protocol (very short run).
	d.l.Run(2 * time.Millisecond)
	d.l.Node(0).SetDown(true)
	d.agents[1].BecomeCoordinator(50)
	d.l.Run(3 * time.Second)
	// Whatever was decided must be consistent across learners; values may
	// or may not have survived, but no divergence and no duplicates.
	n := len(d.deliv[d.learners[0]])
	checkLearners(t, d, n)
}

func TestDiskSyncStillDecides(t *testing.T) {
	d := deploy(t, 3, 2, false, 1)
	for id := range d.agents {
		d.agents[id].Cfg.DiskSync = true
	}
	// Note: Cfg copied at deploy; mutate before Start would be better, but
	// acceptors read Cfg.DiskSync at Phase2A time, so this works.
	d.propose(40)
	d.l.Run(3 * time.Second)
	checkLearners(t, d, 40)
	if d.l.Node(1).Stats().DiskWrites == 0 {
		t.Fatal("disk sync mode performed no writes")
	}
}

// Property: under random workload sizes and seeds, all learners deliver the
// same sequence with no duplicates (uniform total order + integrity).
func TestQuickTotalOrder(t *testing.T) {
	f := func(seed int64, nVals uint8, multicast bool) bool {
		n := int(nVals%64) + 1
		d := deploy(t, 3, 2, multicast, seed)
		for i := 0; i < n; i++ {
			d.client.Propose(core.Value{
				ID:    core.ValueID(i + 1),
				Bytes: 64 + int(seed%7)*100,
			})
		}
		d.l.Run(3 * time.Second)
		for _, id := range d.learners {
			if len(d.deliv[id]) != n {
				return false
			}
		}
		a, b := d.deliv[d.learners[0]], d.deliv[d.learners[1]]
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputSanity(t *testing.T) {
	// Libpaxos-style multicast Paxos should order thousands of small
	// messages per second but stay well below wire speed (coordinator
	// CPU-bound; §3.5.3 reports ~3% efficiency).
	d := deploy(t, 3, 10, true, 1)
	stop := false
	var sent int
	var pump func()
	pump = func() {
		if stop {
			return
		}
		for i := 0; i < 8; i++ {
			sent++
			d.client.Propose(core.Value{ID: core.ValueID(sent), Bytes: 4096})
		}
		// Client offers ~32 KB/ms = 262 Mbps.
		d.clientEnv().After(time.Millisecond, pump)
	}
	d.clientEnv() // ensure started
	pump()
	d.l.Run(1 * time.Second)
	stop = true
	got := len(d.deliv[d.learners[0]])
	if got == 0 {
		t.Fatal("no deliveries")
	}
	mbps := float64(got) * 4096 * 8 / 1e6
	t.Logf("libpaxos-style throughput: %d msgs/s = %.0f Mbps", got, mbps)
	if mbps < 10 {
		t.Fatalf("implausibly low throughput %.1f Mbps", mbps)
	}
}

func (d *deployment) clientEnv() proto.Env { return d.l.Node(200) }

func TestMessageSizes(t *testing.T) {
	b := core.Batch{Vals: []core.Value{{Bytes: 100}, {Bytes: 200}}}
	cases := []struct {
		m    proto.Message
		want int
	}{
		{MsgPropose{V: core.Value{Bytes: 64}}, headerBytes + 64},
		{msgPhase1A{}, headerBytes},
		{msgPhase2A{Val: b}, headerBytes + 300},
		{msgPhase2B{}, headerBytes},
		{msgDecision{Val: b}, headerBytes + 300},
		{msgLearnReq{}, headerBytes},
	}
	for i, c := range cases {
		if got := c.m.Size(); got != c.want {
			t.Errorf("case %d (%T): size %d, want %d", i, c.m, got, c.want)
		}
	}
}

func TestQuorum(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 7: 4} {
		cfg := Config{Acceptors: make([]proto.NodeID, n)}
		if got := cfg.Quorum(); got != want {
			t.Errorf("quorum(%d)=%d, want %d", n, got, want)
		}
	}
}

func ExampleAgent() {
	fmt.Println("see package tests for deployment wiring")
	// Output: see package tests for deployment wiring
}
