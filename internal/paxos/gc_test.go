package paxos

// Garbage-collection edge cases for basic Paxos, mirroring the M-Ring and
// U-Ring coverage: the coordinator's decision log and the acceptors' vote
// logs must trim once every learner reports an instance applied, a
// straggler learner must pin the trim floor, and straggling messages or
// retransmission requests for trimmed instances must neither resurrect
// state nor serve garbage.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/proto"
)

// fakeEnv is a minimal proto.Env recording sends for direct unit tests.
type fakeEnv struct {
	id    proto.NodeID
	now   time.Duration
	rng   *rand.Rand
	sends []fakeSend
}

type fakeSend struct {
	to proto.NodeID
	m  proto.Message
}

func (e *fakeEnv) ID() proto.NodeID                      { return e.id }
func (e *fakeEnv) Now() time.Duration                    { return e.now }
func (e *fakeEnv) Rand() *rand.Rand                      { return e.rng }
func (e *fakeEnv) Send(to proto.NodeID, m proto.Message) { e.sends = append(e.sends, fakeSend{to, m}) }
func (e *fakeEnv) SendUDP(to proto.NodeID, m proto.Message) {
	e.sends = append(e.sends, fakeSend{to, m})
}
func (e *fakeEnv) Multicast(g proto.GroupID, m proto.Message) {
	e.sends = append(e.sends, fakeSend{-1, m})
}
func (e *fakeEnv) After(d time.Duration, fn func()) proto.Timer { return fakeTimer{} }
func (e *fakeEnv) Work(d time.Duration, fn func())              { fn() }
func (e *fakeEnv) DiskWrite(size int, fn func())                { fn() }

type fakeTimer struct{}

func (fakeTimer) Cancel() {}

// TestGCIntervalDefaultsOn pins the on-by-default contract: a zero-value
// Config resolves to the nonzero default interval, and only the explicit
// negative opts out.
func TestGCIntervalDefaultsOn(t *testing.T) {
	var c Config
	c.defaults()
	if c.GCInterval != DefaultGCInterval {
		t.Errorf("zero Config.GCInterval resolved to %v, want %v", c.GCInterval, DefaultGCInterval)
	}
	c = Config{GCInterval: -1}
	c.defaults()
	if c.GCInterval != 0 {
		t.Errorf("negative Config.GCInterval resolved to %v, want 0 (off)", c.GCInterval)
	}
}

// deployGC wires the standard test deployment with the given GC interval.
func deployGC(t testing.TB, gcInterval time.Duration, seed int64) *deployment {
	t.Helper()
	d := &deployment{
		l:      lan.New(lan.DefaultConfig(), seed),
		agents: make(map[proto.NodeID]*Agent),
		deliv:  make(map[proto.NodeID][]core.ValueID),
	}
	for i := 0; i < 3; i++ {
		d.cfg.Acceptors = append(d.cfg.Acceptors, proto.NodeID(i))
	}
	for i := 0; i < 2; i++ {
		d.learners = append(d.learners, proto.NodeID(100+i))
	}
	d.cfg.Coordinator = 0
	d.cfg.Learners = d.learners
	d.cfg.GCInterval = gcInterval
	d.cfg.RecycleBatches = gcInterval > 0
	for _, id := range append(append([]proto.NodeID{}, d.cfg.Acceptors...), d.learners...) {
		node := id
		a := &Agent{Cfg: d.cfg}
		a.Deliver = func(inst int64, v core.Value) {
			d.deliv[node] = append(d.deliv[node], v.ID)
		}
		d.agents[id] = a
		d.l.AddNode(id, a)
	}
	d.client = &Agent{Cfg: d.cfg}
	d.agents[200] = d.client
	d.l.AddNode(200, d.client)
	d.l.Start()
	return d
}

// TestPaxosGCBoundsLogs runs the same deployment with and without GC:
// with it, the coordinator's decision log and every vote log drain once
// the learners have applied and reported; without it they retain one
// entry per instance. Delivery must be identical either way.
func TestPaxosGCBoundsLogs(t *testing.T) {
	run := func(gcInterval time.Duration) *deployment {
		d := deployGC(t, gcInterval, 1)
		d.propose(200)
		d.l.Run(2 * time.Second)
		return d
	}
	gc := run(10 * time.Millisecond)
	plain := run(-1) // explicit off: zero now resolves to the on-by-default interval
	coord := gc.agents[0]
	if n := coord.log.Len(); n != 0 {
		t.Errorf("coordinator retains %d decision-log entries after quiescent GC, want 0", n)
	}
	for _, id := range gc.cfg.Acceptors {
		if n := gc.agents[id].votes.Len(); n != 0 {
			t.Errorf("acceptor %d retains %d votes after quiescent GC, want 0", id, n)
		}
	}
	if plain.agents[0].log.Len() == 0 || plain.agents[1].votes.Len() == 0 {
		t.Fatal("control run leaked nothing: the GC assertions above are vacuous")
	}
	for _, id := range gc.learners {
		got, want := gc.deliv[id], plain.deliv[id]
		if len(got) != len(want) || len(got) == 0 {
			t.Fatalf("learner %d delivered %d values with GC, %d without", id, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("learner %d order diverged at %d: %d vs %d", id, j, got[j], want[j])
			}
		}
	}
}

// newCoordinator returns a phase-1-complete coordinator on a fake
// environment, with decided instances 0..n-1 in its retransmission log.
func newCoordinator(n int64) (*Agent, *fakeEnv) {
	env := &fakeEnv{id: 0, rng: rand.New(rand.NewSource(1))}
	a := &Agent{Cfg: Config{
		Coordinator: 0,
		Acceptors:   []proto.NodeID{0, 1, 2},
		Learners:    []proto.NodeID{100, 101},
		GCInterval:  50 * time.Millisecond,
	}}
	a.Start(env)
	for inst := int64(0); inst < n; inst++ {
		le, _ := a.log.Put(inst)
		*le = logRec{val: core.Batch{Vals: []core.Value{{ID: core.ValueID(inst), Bytes: 64}}}}
	}
	env.sends = nil
	return a, env
}

// TestPaxosStragglerLearnerHoldsFloor checks the coordinator-side floor:
// one learner stuck at an old version pins the decision log, and no
// TrimFloor is broadcast past it.
func TestPaxosStragglerLearnerHoldsFloor(t *testing.T) {
	a, env := newCoordinator(10)
	a.onVersionReport(proto.VersionReport{From: 100, Inst: 9})
	if a.log.Len() != 10 || len(env.sends) != 0 {
		t.Fatalf("trimmed with a learner unreported: %d entries, %d sends", a.log.Len(), len(env.sends))
	}
	a.onVersionReport(proto.VersionReport{From: 101, Inst: 2}) // the straggler
	if a.log.Len() != 7 {
		t.Fatalf("log %d entries after straggler at 2, want 7 (3..9 live)", a.log.Len())
	}
	var floors []int64
	for _, s := range env.sends {
		if tf, ok := s.m.(proto.TrimFloor); ok {
			floors = append(floors, tf.Inst)
		}
	}
	if len(floors) != 2 || floors[0] != 2 || floors[1] != 2 {
		t.Fatalf("TrimFloor(2) should reach both peer acceptors, got %v", floors)
	}
	// The fast learner running further ahead must not move the floor.
	env.sends = nil
	a.onVersionReport(proto.VersionReport{From: 100, Inst: 50})
	if a.log.Len() != 7 || len(env.sends) != 0 {
		t.Fatalf("floor passed the straggler: %d entries, %d sends", a.log.Len(), len(env.sends))
	}
	// Straggler catches up.
	a.onVersionReport(proto.VersionReport{From: 101, Inst: 9})
	if a.log.Len() != 0 {
		t.Fatalf("log %d entries after full catch-up, want 0", a.log.Len())
	}
}

// TestPaxosLearnReqAcrossTrimHorizon asks the coordinator to retransmit
// from below and from above the floor: trimmed instances serve nothing
// (the floor proves every learner already applied them), live ones are
// served in order.
func TestPaxosLearnReqAcrossTrimHorizon(t *testing.T) {
	a, env := newCoordinator(10)
	a.onVersionReport(proto.VersionReport{From: 100, Inst: 4})
	a.onVersionReport(proto.VersionReport{From: 101, Inst: 4})
	env.sends = nil
	a.onLearnReq(100, msgLearnReq{From: 2}) // entirely below the floor
	if len(env.sends) != 0 {
		t.Fatalf("served %d decisions from below the trim floor", len(env.sends))
	}
	a.onLearnReq(100, msgLearnReq{From: 7})
	var served []int64
	for _, s := range env.sends {
		if d, ok := s.m.(*msgDecision); ok {
			served = append(served, d.Inst)
		}
	}
	if len(served) != 3 || served[0] != 7 || served[1] != 8 || served[2] != 9 {
		t.Fatalf("served %v, want [7 8 9]", served)
	}
}

// TestPaxosVersionReportFollowsCoordinator checks that learner-side GC
// survives a coordinator change: version reports (and gap requests) go to
// whichever node most recently sent a decision, not to the static config
// entry — otherwise a failover would silently disable trimming forever.
func TestPaxosVersionReportFollowsCoordinator(t *testing.T) {
	env := &fakeEnv{id: 100, rng: rand.New(rand.NewSource(1))}
	a := &Agent{Cfg: Config{
		Coordinator: 0,
		Acceptors:   []proto.NodeID{0, 1, 2},
		Learners:    []proto.NodeID{100},
		GCInterval:  50 * time.Millisecond,
	}}
	a.Start(env)
	env.sends = nil
	a.versionTick()
	if len(env.sends) != 1 || env.sends[0].to != 0 {
		t.Fatalf("initial report went to %+v, want node 0", env.sends)
	}
	// Node 1 took over and is now the one sending decisions.
	a.Receive(1, &msgDecision{Inst: 0, Shared: true,
		Val: core.Batch{Vals: []core.Value{{ID: 1, Bytes: 64}}}})
	env.sends = nil
	a.versionTick()
	if len(env.sends) != 1 || env.sends[0].to != 1 {
		t.Fatalf("post-failover report went to %+v, want node 1", env.sends)
	}
	env.sends = nil
	a.gapTick()
	if len(env.sends) != 1 || env.sends[0].to != 1 {
		t.Fatalf("post-failover gap request went to %+v, want node 1", env.sends)
	}
}

// TestPaxosFailoverSkipsTrimmedVotes covers the failover-after-trim race:
// a new coordinator whose Phase 1 quorum still holds votes for trimmed
// instances (its TrimFloor raced the coordinator change) must not
// resurrect them — acceptors that trimmed an instance drop its 2A without
// replying, so a resurrected instance would retry forever and pin a
// window slot. The promise's Floor field is the filter.
func TestPaxosFailoverSkipsTrimmedVotes(t *testing.T) {
	env := &fakeEnv{id: 1, rng: rand.New(rand.NewSource(1))}
	a := &Agent{Cfg: Config{
		Coordinator: 0, // node 1 takes over manually
		Acceptors:   []proto.NodeID{0, 1, 2},
		Learners:    []proto.NodeID{100, 101},
		GCInterval:  50 * time.Millisecond,
	}}
	a.Start(env)
	a.BecomeCoordinator(2)
	env.sends = nil
	vote5 := vote{rnd: 1 << 10, val: core.Batch{Vals: []core.Value{{ID: 5, Bytes: 64}}}}
	vote9 := vote{rnd: 1 << 10, val: core.Batch{Vals: []core.Value{{ID: 9, Bytes: 64}}}}
	// Acceptor 0 already trimmed through instance 7; acceptor 2 has not
	// processed the TrimFloor yet and still promises a vote for 5.
	a.onPhase1B(0, msgPhase1B{Rnd: a.crnd, Floor: 8, Votes: map[int64]vote{9: vote9}})
	a.onPhase1B(2, msgPhase1B{Rnd: a.crnd, Floor: 0, Votes: map[int64]vote{5: vote5, 9: vote9}})
	var reopened []int64
	for _, s := range env.sends {
		if m, ok := s.m.(*msgPhase2A); ok {
			reopened = append(reopened, m.Inst)
		}
	}
	if len(reopened) == 0 {
		t.Fatal("the live vote (instance 9) was not re-proposed")
	}
	for _, inst := range reopened {
		if inst < 8 {
			t.Fatalf("trimmed instance %d resurrected after failover (2As for %v)", inst, reopened)
		}
	}
	if a.open.Has(5) {
		t.Fatal("trimmed instance 5 occupies a window slot")
	}
	if !a.open.Has(9) {
		t.Fatal("live instance 9 not re-opened")
	}
	if a.gc.Floor() != 8 {
		t.Fatalf("new coordinator floor %d, want the quorum's highest floor 8", a.gc.Floor())
	}
}

// TestPaxosQuiescentFailoverResumesAboveFloor covers the harder failover
// case: the quorum reports a trim floor but holds NO surviving votes (the
// system was quiescent when the coordinator died). The new coordinator
// must resume instance numbering at the floor — numbering from 0 would
// propose instances every acceptor silently drops, livelocking fresh
// traffic forever.
func TestPaxosQuiescentFailoverResumesAboveFloor(t *testing.T) {
	env := &fakeEnv{id: 0, rng: rand.New(rand.NewSource(1))}
	a := &Agent{Cfg: Config{
		Coordinator: 0,
		Acceptors:   []proto.NodeID{0, 1, 2},
		Learners:    []proto.NodeID{100},
		GCInterval:  50 * time.Millisecond,
	}}
	a.Start(env)
	a.onPhase1B(1, msgPhase1B{Rnd: a.crnd, Floor: 7, Votes: map[int64]vote{}})
	a.onPhase1B(2, msgPhase1B{Rnd: a.crnd, Floor: 7, Votes: map[int64]vote{}})
	if !a.phase1Done {
		t.Fatal("phase 1 incomplete with a quorum of promises")
	}
	env.sends = nil
	a.Propose(core.Value{ID: 1, Bytes: 64})
	a.flush()
	var opened []int64
	for _, s := range env.sends {
		if m, ok := s.m.(*msgPhase2A); ok {
			opened = append(opened, m.Inst)
		}
	}
	if len(opened) == 0 || opened[0] != 7 {
		t.Fatalf("first post-failover instance opened at %v, want 7 (the adopted floor)", opened)
	}
}

// TestPaxosTrimmedInstanceStragglerNoGhost delivers a straggling Phase 2A
// for a trimmed instance to an acceptor: it must not re-create a vote
// below the floor (a permanent ghost) and must not answer with a 2B.
func TestPaxosTrimmedInstanceStragglerNoGhost(t *testing.T) {
	env := &fakeEnv{id: 1, rng: rand.New(rand.NewSource(1))}
	a := &Agent{Cfg: Config{
		Coordinator: 0,
		Acceptors:   []proto.NodeID{0, 1, 2},
		Learners:    []proto.NodeID{100},
		GCInterval:  50 * time.Millisecond,
	}}
	a.Start(env)
	for inst := int64(0); inst < 5; inst++ {
		a.onPhase2A(0, &msgPhase2A{Inst: inst, Rnd: 1 << 10,
			Val: core.Batch{Vals: []core.Value{{ID: core.ValueID(inst), Bytes: 64}}}})
	}
	if a.votes.Len() != 5 {
		t.Fatalf("vote log %d entries, want 5", a.votes.Len())
	}
	a.onTrimFloor(proto.TrimFloor{Inst: 4})
	if a.votes.Len() != 0 {
		t.Fatalf("vote log %d entries after TrimFloor(4), want 0", a.votes.Len())
	}
	env.sends = nil
	a.onPhase2A(0, &msgPhase2A{Inst: 2, Rnd: 1 << 10,
		Val: core.Batch{Vals: []core.Value{{ID: 2, Bytes: 64}}}})
	if a.votes.Len() != 0 {
		t.Fatal("straggler 2A resurrected a trimmed instance")
	}
	if len(env.sends) != 0 {
		t.Fatalf("straggler 2A for a trimmed instance answered with %d sends", len(env.sends))
	}
	// A live instance above the floor still votes normally.
	a.onPhase2A(0, &msgPhase2A{Inst: 7, Rnd: 1 << 10,
		Val: core.Batch{Vals: []core.Value{{ID: 7, Bytes: 64}}}})
	if !a.votes.Has(7) || len(env.sends) != 1 {
		t.Fatal("live instance above the floor rejected")
	}
}
