package abcast

import (
	"math/bits"
	"time"

	"repro/internal/core"
	"repro/internal/paxos"
	"repro/internal/proto"
)

// SPaxos models S-Paxos [32] (§3.4): request dissemination and reception are
// spread over all replicas. A client submits a request to any replica; that
// replica forwards it to all others; every replica acknowledges to all
// others; once f+1 acks are seen the request is stable. The leader orders
// request *ids* with plain Paxos. A replica delivers a request when its id
// is ordered and the request is stable locally.
//
// The all-to-all dissemination (n² messages per request) is what makes
// S-Paxos CPU-intensive and keeps its efficiency near 30% (Table 3.2).
type SPaxos struct {
	// Replicas lists all replica nodes; Replicas[0] is the Paxos leader.
	Replicas []proto.NodeID
	// BatchBytes groups client requests forwarded together (paper: 32 KB).
	BatchBytes int
	// BatchDelay flushes a non-empty forward batch after this delay.
	BatchDelay time.Duration
	// GCJitter, when positive, injects random pauses that model the JVM
	// garbage-collection variability observed in §3.5.4.
	GCJitter time.Duration
	// GCInterval is the shared learner-version log GC period (§3.3.7) of
	// the inner Paxos agent that orders request ids: replicas report
	// applied instances, the leader trims its decision log and acceptor
	// vote logs. Zero resolves to the inner agent's default — GC is ON by
	// default; a negative value disables it (the pre-default seed
	// behavior: the inner logs grow forever).
	GCInterval time.Duration
	// Deliver is invoked for every value in delivery order.
	Deliver core.DeliverFunc
	// Trace, if set, folds this replica's delivered command sequence into
	// a delivery-equivalence digest (see core.DelivTrace). Pure
	// observation: it sends nothing and consumes no simulated time.
	Trace *core.DelivTrace

	env   proto.Env
	inner *paxos.Agent

	pending      core.ValueSlab
	pendingBytes int
	batchArmed   bool
	batchFn      func()

	reqs    map[core.ValueID]core.Value // disseminated request payloads
	acks    map[core.ValueID]uint64     // acked replicas, as a bitmask over Replicas
	stable  map[core.ValueID]bool
	ordered core.FIFO[core.ValueID] // ids ordered by Paxos, pending stability
	seq     int64

	// DeliveredBytes/DeliveredMsgs count delivered application payload.
	DeliveredBytes int64
	DeliveredMsgs  int64
	LatencySum     time.Duration
	LatencyCount   int64
}

var _ proto.Handler = (*SPaxos)(nil)

// spForward disseminates a batch of client requests to all replicas.
type spForward struct{ Vals []core.Value }

// spAck acknowledges receipt of the forwarded requests.
type spAck struct{ IDs []core.ValueID }

func (m spForward) Size() int {
	n := headerBytes
	for _, v := range m.Vals {
		n += v.Bytes
	}
	return n
}
func (m spAck) Size() int { return headerBytes + 8*len(m.IDs) }

// Start implements proto.Handler.
func (s *SPaxos) Start(env proto.Env) {
	s.env = env
	if s.BatchBytes == 0 {
		s.BatchBytes = 32 << 10
	}
	if s.BatchDelay == 0 {
		s.BatchDelay = 500 * time.Microsecond
	}
	s.reqs = make(map[core.ValueID]core.Value)
	s.acks = make(map[core.ValueID]uint64)
	s.stable = make(map[core.ValueID]bool)
	s.batchFn = func() { s.batchArmed = false; s.flush() }
	// Inner Paxos orders ids only: replicas are acceptors and learners.
	s.inner = &paxos.Agent{
		Cfg: paxos.Config{
			Coordinator: s.Replicas[0],
			Acceptors:   s.Replicas,
			Learners:    s.Replicas,
			GCInterval:  s.GCInterval,
		},
		Deliver: func(_ int64, v core.Value) { s.onOrdered(core.ValueID(v.ID)) },
	}
	s.inner.Start(env)
}

// Submit accepts a client request at this replica.
func (s *SPaxos) Submit(v core.Value) {
	s.pending.Push(v)
	s.pendingBytes += v.Bytes
	if s.pendingBytes >= s.BatchBytes {
		s.flush()
		return
	}
	if !s.batchArmed {
		s.batchArmed = true
		proto.AfterFree(s.env, s.BatchDelay, s.batchFn)
	}
}

// LoseVolatile implements proto.VolatileLoser: a crash that destroys
// volatile state (fault.Lose) discards the staged client requests not
// yet disseminated, and forwards to the inner Paxos agent. The
// dissemination tables (reqs/acks/stable) and the ordered-id queue are
// retained — a replica that lost the payload of an already-ordered id
// has no re-request path, so they are modeled as part of the durable
// request log (the write-ahead-log roadmap item makes that real).
func (s *SPaxos) LoseVolatile() {
	s.pending.PopFront(s.pending.Len())
	s.pendingBytes = 0
	if s.inner != nil {
		s.inner.LoseVolatile()
	}
}

func (s *SPaxos) flush() {
	n := s.pending.Len()
	if n == 0 {
		return
	}
	vals := make([]core.Value, n)
	for i := range vals {
		vals[i] = s.pending.At(i)
	}
	s.pending.PopFront(n)
	s.pendingBytes = 0
	fwd := spForward{Vals: vals}
	s.onForward(s.env.ID(), fwd)
	for _, r := range s.Replicas {
		if r != s.env.ID() {
			s.env.Send(r, fwd)
		}
	}
}

// Receive implements proto.Handler; non-S-Paxos messages belong to the inner
// Paxos agent ordering ids.
func (s *SPaxos) Receive(from proto.NodeID, msg proto.Message) {
	switch m := msg.(type) {
	case spForward:
		s.onForward(from, m)
	case spAck:
		s.onAck(from, m)
	default:
		s.inner.Receive(from, msg)
	}
}

func (s *SPaxos) onForward(from proto.NodeID, m spForward) {
	ids := make([]core.ValueID, 0, len(m.Vals))
	for _, v := range m.Vals {
		if _, ok := s.reqs[v.ID]; !ok {
			s.reqs[v.ID] = v
		}
		ids = append(ids, v.ID)
	}
	ackAndPropose := func() {
		// Acknowledge to all replicas (including self, locally).
		ack := spAck{IDs: ids}
		s.onAck(s.env.ID(), ack)
		for _, r := range s.Replicas {
			if r != s.env.ID() {
				s.env.Send(r, ack)
			}
		}
		// The leader proposes ids for ordering once it has seen the request.
		if s.env.ID() == s.Replicas[0] {
			for _, id := range ids {
				s.inner.Propose(core.Value{ID: id, Bytes: 16})
			}
		}
	}
	if s.GCJitter > 0 && s.env.Rand().Intn(50) == 0 {
		// Occasional JVM garbage-collection pause (§3.5.4) delays this
		// replica's acknowledgements and therefore request stability.
		s.env.Work(time.Duration(s.env.Rand().Int63n(int64(s.GCJitter))), ackAndPropose)
		return
	}
	ackAndPropose()
}

// replicaBit returns from's bit in the ack mask, or 0 for a non-replica.
func (s *SPaxos) replicaBit(from proto.NodeID) uint64 {
	for i, r := range s.Replicas {
		if r == from {
			return 1 << uint(i)
		}
	}
	return 0
}

func (s *SPaxos) onAck(from proto.NodeID, m spAck) {
	f := (len(s.Replicas) - 1) / 2
	bit := s.replicaBit(from)
	for _, id := range m.IDs {
		set := s.acks[id] | bit
		s.acks[id] = set
		if bits.OnesCount64(set) >= f+1 && !s.stable[id] {
			s.stable[id] = true
		}
	}
	s.drain()
}

func (s *SPaxos) onOrdered(id core.ValueID) {
	s.ordered.Push(id)
	s.drain()
}

// drain delivers ordered ids whose payloads are stable, in order.
func (s *SPaxos) drain() {
	for s.ordered.Len() > 0 {
		id := s.ordered.At(0)
		if !s.stable[id] {
			return
		}
		v, ok := s.reqs[id]
		if !ok {
			return
		}
		s.ordered.PopFront(1)
		delete(s.reqs, id)
		delete(s.acks, id)
		delete(s.stable, id)
		s.DeliveredBytes += int64(v.Bytes)
		s.DeliveredMsgs++
		if v.Born != 0 {
			s.LatencySum += s.env.Now() - v.Born
			s.LatencyCount++
		}
		if s.Trace != nil {
			s.Trace.Note(s.env.Now(), s.seq, v)
		}
		if s.Deliver != nil {
			s.Deliver(s.seq, v)
		}
		s.seq++
	}
}

// GCIntervalEffective returns the garbage-collection period the inner
// ordering agent resolved at Start: the nonzero default for a zero
// config, 0 when explicitly disabled with a negative interval. Before
// Start nothing is resolved yet and it returns the raw configured value.
func (s *SPaxos) GCIntervalEffective() time.Duration {
	if s.inner == nil {
		return s.GCInterval
	}
	return s.inner.Cfg.GCInterval
}

// LiveLogLen reports how many per-request and per-instance records this
// replica currently retains: the inner Paxos logs plus the dissemination
// tables (request payloads, ack masks, stability flags, the ordered-id
// queue). Soak workloads sample it to prove memory stays flat.
func (s *SPaxos) LiveLogLen() int {
	return s.inner.LiveLogLen() + len(s.reqs) + len(s.acks) + len(s.stable) + s.ordered.Len()
}
