// Package abcast implements the comparison atomic broadcast protocols of the
// dissertation's §3.4/§3.5.3: LCR, a Totem-style token ring (the Spread
// stand-in) and S-Paxos. The Libpaxos and PFSB baselines are the multicast
// and unicast configurations of internal/paxos.
//
// These are baselines: they reproduce each protocol's communication pattern
// and cost structure (which is what the paper's comparison measures), not
// the full engineering of the original codebases.
package abcast

import (
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

const headerBytes = 32

// LCR reproduces the LCR protocol of [12]: processes form a ring, every
// process broadcasts, message payloads travel the ring once and are
// delivered after a second (acknowledgement) revolution, giving uniform
// total order under perfect failure detection. Sequencing happens on-ring:
// ring position 0 stamps global sequence numbers as payloads pass, which
// preserves LCR's cost structure (two revolutions per message, all links
// equally loaded, every process broadcasting).
type LCR struct {
	// Ring lists all processes in ring order; all are broadcasters and
	// receivers.
	Ring []proto.NodeID
	// BatchBytes groups small application messages (paper: 32 KB).
	BatchBytes int
	// BatchDelay flushes a non-empty batch after this delay.
	BatchDelay time.Duration
	// DiskSync persists each batch before forwarding it (Fig 3.9 mode).
	// Writes happen sequentially along the ring.
	DiskSync bool
	// Deliver is invoked for every value in delivery order.
	Deliver core.DeliverFunc
	// Trace, if set, folds this process's delivered command sequence into
	// a delivery-equivalence digest (see core.DelivTrace). Pure
	// observation: it sends nothing and consumes no simulated time.
	Trace *core.DelivTrace

	env proto.Env

	pending      core.ValueSlab
	pendingBytes int
	batchArmed   bool
	batchFn      func()

	seq       int64 // stamping counter (ring position 0 only)
	localSeq  int64 // per-origin message counter
	next      int64 // next global sequence to deliver
	learned   core.InstLog[lcrEntry]
	unstamped map[lcrKey]core.Batch

	// DeliveredBytes/DeliveredMsgs count delivered application payload.
	DeliveredBytes int64
	DeliveredMsgs  int64
	LatencySum     time.Duration
	LatencyCount   int64
}

var _ proto.Handler = (*LCR)(nil)

// lcrData is a payload batch circulating the ring from its origin all the
// way around and back to the origin. Seq is -1 until stamped by position 0;
// (Origin, Local) identifies the message before it is stamped.
type lcrData struct {
	Origin proto.NodeID
	Local  int64
	Seq    int64
	Val    core.Batch
	Hops   int
}

// lcrAck announces that Seq completed its payload revolution; receiving the
// ack makes the message stable (deliverable) — the second revolution. It
// also carries the (Origin, Local) → Seq binding for processes that saw the
// payload before it was stamped.
type lcrAck struct {
	Origin proto.NodeID
	Local  int64
	Seq    int64
	Hops   int
}

func (m lcrData) Size() int { return headerBytes + m.Val.Size() }
func (m lcrAck) Size() int  { return headerBytes }

// lcrEntry merges the payload and stability tables: one ring-indexed record
// per undelivered global sequence.
type lcrEntry struct {
	val    core.Batch
	has    bool
	stable bool
}

// Start implements proto.Handler.
func (l *LCR) Start(env proto.Env) {
	l.env = env
	if l.BatchBytes == 0 {
		l.BatchBytes = 32 << 10
	}
	if l.BatchDelay == 0 {
		l.BatchDelay = 500 * time.Microsecond
	}
	l.unstamped = make(map[lcrKey]core.Batch)
	l.batchFn = func() { l.batchArmed = false; l.flush() }
}

// lcrKey identifies a message before position 0 stamps it.
type lcrKey struct {
	origin proto.NodeID
	local  int64
}

func (l *LCR) index() int {
	for i, id := range l.Ring {
		if id == l.env.ID() {
			return i
		}
	}
	return -1
}

func (l *LCR) succ() proto.NodeID {
	return l.Ring[(l.index()+1)%len(l.Ring)]
}

// Broadcast submits a value at this process.
func (l *LCR) Broadcast(v core.Value) {
	l.pending.Push(v)
	l.pendingBytes += v.Bytes
	if l.pendingBytes >= l.BatchBytes {
		l.flush()
		return
	}
	if !l.batchArmed {
		l.batchArmed = true
		proto.AfterFree(l.env, l.BatchDelay, l.batchFn)
	}
}

func (l *LCR) flush() {
	for l.pending.Len() > 0 {
		n, bytes := 0, 0
		for n < l.pending.Len() && bytes < l.BatchBytes {
			bytes += l.pending.At(n).Bytes
			n++
		}
		vals := make([]core.Value, n)
		for i := range vals {
			vals[i] = l.pending.At(i)
		}
		l.pending.PopFront(n)
		l.localSeq++
		m := lcrData{Origin: l.env.ID(), Local: l.localSeq, Seq: -1, Val: core.Batch{Vals: vals}}
		if l.index() == 0 {
			m.Seq = l.seq
			l.seq++
		}
		l.forward(m)
	}
	l.pendingBytes = 0
}

// forward sends m to the successor, after the optional synchronous write.
func (l *LCR) forward(m lcrData) {
	if l.DiskSync {
		l.env.DiskWrite(m.Val.Size()+headerBytes, func() { l.env.Send(l.succ(), m) })
		return
	}
	l.env.Send(l.succ(), m)
}

// Receive implements proto.Handler.
func (l *LCR) Receive(_ proto.NodeID, msg proto.Message) {
	switch m := msg.(type) {
	case lcrData:
		l.onData(m)
	case lcrAck:
		l.onAck(m)
	}
}

func (l *LCR) onData(m lcrData) {
	if m.Origin == l.env.ID() && m.Hops > 0 {
		// The payload completed its revolution: everyone (including us)
		// holds it now; start the acknowledgement revolution.
		l.store(m)
		ack := lcrAck{Origin: m.Origin, Local: m.Local, Seq: m.Seq}
		l.applyAck(ack)
		l.env.Send(l.succ(), ack)
		return
	}
	if l.index() == 0 && m.Seq < 0 {
		m.Seq = l.seq
		l.seq++
	}
	l.store(m)
	m.Hops++
	l.forward(m)
}

func (l *LCR) store(m lcrData) {
	if m.Seq < 0 {
		l.unstamped[lcrKey{m.Origin, m.Local}] = m.Val
		return
	}
	if m.Seq < l.next {
		return
	}
	e, _ := l.learned.Put(m.Seq)
	if !e.has {
		e.val, e.has = m.Val, true
	}
	l.drain()
}

func (l *LCR) onAck(m lcrAck) {
	l.applyAck(m)
	m.Hops++
	if m.Hops < len(l.Ring)-1 {
		l.env.Send(l.succ(), m)
	}
}

// applyAck re-keys a payload seen before stamping and marks Seq stable.
// Acks for already-delivered sequences are ignored (the map-based version
// kept a dead stability record; drain never read it).
func (l *LCR) applyAck(m lcrAck) {
	k := lcrKey{m.Origin, m.Local}
	b, reKey := l.unstamped[k]
	if reKey {
		delete(l.unstamped, k)
	}
	if m.Seq >= l.next {
		e, _ := l.learned.Put(m.Seq)
		if reKey && !e.has {
			e.val, e.has = b, true
		}
		e.stable = true
	}
	l.drain()
}

// drain delivers stable messages in global sequence order.
func (l *LCR) drain() {
	for {
		e, ok := l.learned.Get(l.next)
		if !ok || !e.stable {
			return
		}
		if !e.has {
			return // payload still in flight
		}
		b := e.val
		l.learned.Delete(l.next)
		if l.Trace != nil {
			now := l.env.Now()
			for _, v := range b.Vals {
				l.Trace.Note(now, l.next, v)
			}
		}
		for _, v := range b.Vals {
			l.DeliveredBytes += int64(v.Bytes)
			l.DeliveredMsgs++
			if v.Born != 0 {
				l.LatencySum += l.env.Now() - v.Born
				l.LatencyCount++
			}
			if l.Deliver != nil {
				l.Deliver(l.next, v)
			}
		}
		l.next++
	}
}
