package abcast

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/paxos"
	"repro/internal/proto"
)

func checkSameOrder(t *testing.T, deliv map[proto.NodeID][]core.ValueID, nodes []proto.NodeID, want int) {
	t.Helper()
	var ref []core.ValueID
	for _, id := range nodes {
		got := deliv[id]
		if want >= 0 && len(got) != want {
			t.Fatalf("node %d delivered %d values, want %d", id, len(got), want)
		}
		seen := make(map[core.ValueID]bool)
		for _, v := range got {
			if seen[v] {
				t.Fatalf("node %d delivered %d twice", id, v)
			}
			seen[v] = true
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if i < len(got) && got[i] != ref[i] {
				t.Fatalf("order diverges at %d: %d vs %d", i, got[i], ref[i])
			}
		}
	}
}

// --- LCR ---

type lcrRig struct {
	l     *lan.LAN
	nodes []*LCR
	ids   []proto.NodeID
	deliv map[proto.NodeID][]core.ValueID
}

func newLCR(n int, disk bool, seed int64) *lcrRig {
	r := &lcrRig{l: lan.New(lan.DefaultConfig(), seed), deliv: make(map[proto.NodeID][]core.ValueID)}
	for i := 0; i < n; i++ {
		r.ids = append(r.ids, proto.NodeID(i))
	}
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		a := &LCR{Ring: r.ids, DiskSync: disk}
		a.Deliver = func(_ int64, v core.Value) { r.deliv[id] = append(r.deliv[id], v.ID) }
		r.nodes = append(r.nodes, a)
		r.l.AddNode(id, a)
	}
	r.l.Start()
	return r
}

func TestLCRTotalOrderSingleBroadcaster(t *testing.T) {
	r := newLCR(4, false, 1)
	for i := 0; i < 100; i++ {
		r.nodes[1].Broadcast(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
	}
	r.l.Run(2 * time.Second)
	checkSameOrder(t, r.deliv, r.ids, 100)
}

func TestLCRAllNodesBroadcast(t *testing.T) {
	r := newLCR(5, false, 2)
	id := 0
	for round := 0; round < 30; round++ {
		for p := 0; p < 5; p++ {
			id++
			r.nodes[p].Broadcast(core.Value{ID: core.ValueID(id), Bytes: 512})
		}
	}
	r.l.Run(3 * time.Second)
	checkSameOrder(t, r.deliv, r.ids, 150)
}

func TestLCRDiskSync(t *testing.T) {
	r := newLCR(3, true, 3)
	for i := 0; i < 40; i++ {
		r.nodes[0].Broadcast(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
	}
	r.l.Run(3 * time.Second)
	checkSameOrder(t, r.deliv, r.ids, 40)
	if r.l.Node(1).Stats().DiskWrites == 0 {
		t.Fatal("no disk writes in DiskSync mode")
	}
}

func TestLCRHighThroughput(t *testing.T) {
	// Table 3.2: LCR reaches ~91% efficiency when every node broadcasts.
	r := newLCR(4, false, 1)
	stop := false
	n := 0
	env := r.l.Node(0)
	var pump func()
	pump = func() {
		if stop {
			return
		}
		for p := 0; p < 4; p++ {
			n++
			r.nodes[p].Broadcast(core.Value{ID: core.ValueID(n), Bytes: 8192})
		}
		env.After(290*time.Microsecond, pump) // ~900 Mbps aggregate
	}
	pump()
	r.l.Run(time.Second)
	stop = true
	mbps := float64(r.nodes[2].DeliveredBytes) * 8 / 1e6
	t.Logf("LCR delivery throughput: %.0f Mbps", mbps)
	if mbps < 600 {
		t.Fatalf("LCR throughput %.0f Mbps too low", mbps)
	}
}

// --- TokenRing ---

type tokenRig struct {
	l     *lan.LAN
	nodes []*TokenRing
	ids   []proto.NodeID
	deliv map[proto.NodeID][]core.ValueID
}

func newToken(n int, seed int64) *tokenRig {
	r := &tokenRig{l: lan.New(lan.DefaultConfig(), seed), deliv: make(map[proto.NodeID][]core.ValueID)}
	for i := 0; i < n; i++ {
		r.ids = append(r.ids, proto.NodeID(i))
	}
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		a := &TokenRing{Ring: r.ids, Group: 1, DaemonCost: 5 * time.Microsecond}
		a.Deliver = func(_ int64, v core.Value) { r.deliv[id] = append(r.deliv[id], v.ID) }
		r.nodes = append(r.nodes, a)
		r.l.AddNode(id, a)
		r.l.Subscribe(1, id)
	}
	r.l.Start()
	return r
}

func TestTokenRingTotalOrder(t *testing.T) {
	r := newToken(4, 1)
	id := 0
	for round := 0; round < 25; round++ {
		for p := 0; p < 4; p++ {
			id++
			r.nodes[p].Broadcast(core.Value{ID: core.ValueID(id), Bytes: 512})
		}
	}
	r.l.Run(3 * time.Second)
	checkSameOrder(t, r.deliv, r.ids, 100)
}

func TestTokenRingSafeDeliveryLatency(t *testing.T) {
	// Safe delivery needs the token to revolve: latency >> one-way delay.
	r := newToken(5, 2)
	var lat time.Duration
	done := false
	env := r.l.Node(0)
	born := env.Now()
	r.nodes[0].Deliver = func(_ int64, v core.Value) {
		if !done {
			lat = env.Now() - born
			done = true
		}
	}
	r.nodes[0].Broadcast(core.Value{ID: 1, Bytes: 512})
	r.l.Run(time.Second)
	if !done {
		t.Fatal("message never safe-delivered")
	}
	if lat < 500*time.Microsecond {
		t.Fatalf("safe delivery latency %v implausibly small for a token ring", lat)
	}
}

func TestTokenRingSurvivesMulticastLoss(t *testing.T) {
	lc := lan.DefaultConfig()
	lc.LossRate = 0.05
	r := &tokenRig{l: lan.New(lc, 3), deliv: make(map[proto.NodeID][]core.ValueID)}
	for i := 0; i < 3; i++ {
		r.ids = append(r.ids, proto.NodeID(i))
	}
	for i := 0; i < 3; i++ {
		id := proto.NodeID(i)
		a := &TokenRing{Ring: r.ids, Group: 1}
		a.Deliver = func(_ int64, v core.Value) { r.deliv[id] = append(r.deliv[id], v.ID) }
		r.nodes = append(r.nodes, a)
		r.l.AddNode(id, a)
		r.l.Subscribe(1, id)
	}
	r.l.Start()
	for i := 0; i < 50; i++ {
		r.nodes[i%3].Broadcast(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
	}
	r.l.Run(5 * time.Second)
	// The token itself travels unicast (reliable); data losses are repaired
	// by retransmission. Everything must eventually deliver in order.
	checkSameOrder(t, r.deliv, r.ids, 50)
}

// --- S-Paxos ---

type spRig struct {
	l     *lan.LAN
	nodes []*SPaxos
	ids   []proto.NodeID
	deliv map[proto.NodeID][]core.ValueID
}

func newSP(n int, seed int64) *spRig {
	r := &spRig{l: lan.New(lan.DefaultConfig(), seed), deliv: make(map[proto.NodeID][]core.ValueID)}
	for i := 0; i < n; i++ {
		r.ids = append(r.ids, proto.NodeID(i))
	}
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		a := &SPaxos{Replicas: r.ids}
		a.Deliver = func(_ int64, v core.Value) { r.deliv[id] = append(r.deliv[id], v.ID) }
		r.nodes = append(r.nodes, a)
		r.l.AddNode(id, a)
	}
	r.l.Start()
	return r
}

// TestSPaxosGCDefaultsOn pins the on-by-default contract end to end: a
// zero-value SPaxos resolves its inner ordering agent to the nonzero
// default GC interval; only the explicit negative opts out. The bounded
// inner log under the default is covered by the soak.spaxos workload.
func TestSPaxosGCDefaultsOn(t *testing.T) {
	r := newSP(3, 1)
	if got := r.nodes[0].GCIntervalEffective(); got != paxos.DefaultGCInterval {
		t.Errorf("zero-value SPaxos resolved inner GCInterval to %v, want %v", got, paxos.DefaultGCInterval)
	}
	l := lan.New(lan.DefaultConfig(), 1)
	off := &SPaxos{Replicas: []proto.NodeID{0, 1, 2}, GCInterval: -1}
	l.AddNode(0, off)
	l.Start()
	if got := off.GCIntervalEffective(); got != 0 {
		t.Errorf("GCInterval -1 resolved to %v, want 0 (off)", got)
	}
}

func TestSPaxosTotalOrder(t *testing.T) {
	r := newSP(3, 1)
	// Clients spread submissions over all replicas (the S-Paxos design).
	for i := 0; i < 90; i++ {
		r.nodes[i%3].Submit(core.Value{ID: core.ValueID(i + 1), Bytes: 512})
	}
	r.l.Run(3 * time.Second)
	checkSameOrder(t, r.deliv, r.ids, 90)
}

func TestSPaxosFiveReplicas(t *testing.T) {
	r := newSP(5, 2)
	for i := 0; i < 100; i++ {
		r.nodes[i%5].Submit(core.Value{ID: core.ValueID(i + 1), Bytes: 1024})
	}
	r.l.Run(3 * time.Second)
	checkSameOrder(t, r.deliv, r.ids, 100)
}

func TestSPaxosModestEfficiency(t *testing.T) {
	// Table 3.2: S-Paxos delivers ~31% of wire speed — far below the ring
	// protocols — because of its n² dissemination pattern.
	r := newSP(3, 1)
	stop := false
	n := 0
	env := r.l.Node(0)
	var pump func()
	pump = func() {
		if stop {
			return
		}
		for p := 0; p < 3; p++ {
			n++
			r.nodes[p].Submit(core.Value{ID: core.ValueID(n), Bytes: 8192})
		}
		env.After(400*time.Microsecond, pump)
	}
	pump()
	r.l.Run(time.Second)
	stop = true
	mbps := float64(r.nodes[1].DeliveredBytes) * 8 / 1e6
	t.Logf("S-Paxos delivery throughput: %.0f Mbps", mbps)
	if mbps < 50 {
		t.Fatalf("S-Paxos throughput %.0f Mbps implausibly low", mbps)
	}
	if mbps > 700 {
		t.Fatalf("S-Paxos throughput %.0f Mbps implausibly high (should trail ring protocols)", mbps)
	}
}
