package abcast

import (
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// TokenRing models a Totem-style privilege-based protocol [31] — the
// architecture behind Spread's daemons. A token circulates the ring; only
// the token holder broadcasts, stamping messages with sequence numbers taken
// from the token. A message is safe-delivered (uniform agreement) once the
// token has completed a further revolution, confirming every daemon received
// it — which is why privilege-based protocols pay high latency (§3.4).
type TokenRing struct {
	// Ring lists the daemons in token order.
	Ring []proto.NodeID
	// Group is the ip-multicast group all daemons subscribe to (Totem uses
	// network broadcast for data).
	Group proto.GroupID
	// BatchBytes groups application messages (Spread tuned: 16 KB).
	BatchBytes int
	// MaxPerToken bounds messages broadcast per token visit.
	MaxPerToken int
	// DaemonCost is extra per-message CPU charged at every daemon,
	// modeling Spread's daemon layer (client-daemon hops, group logic).
	DaemonCost time.Duration
	// Deliver is invoked for every value in delivery order.
	Deliver core.DeliverFunc
	// Trace, if set, folds this process's delivered command sequence into
	// a delivery-equivalence digest (see core.DelivTrace). Pure
	// observation: it sends nothing and consumes no simulated time.
	Trace *core.DelivTrace

	env proto.Env

	pending      core.ValueSlab
	pendingBytes int

	learned core.InstLog[core.Batch]
	next    int64
	safe    int64 // sequences < safe are stable

	// DeliveredBytes/DeliveredMsgs count delivered application payload.
	DeliveredBytes int64
	DeliveredMsgs  int64
	LatencySum     time.Duration
	LatencyCount   int64
}

var _ proto.Handler = (*TokenRing)(nil)

// tokenMsg is the circulating privilege token. Seq is the next sequence
// number to stamp; AllRecv is the highest sequence every daemon had received
// when the token last completed a revolution (the safe horizon).
type tokenMsg struct {
	Seq     int64
	MinRecv int64 // min over daemons this revolution
	AllRecv int64 // safe horizon from the previous revolution
	Round   int
}

// tokenData is a stamped broadcast batch.
type tokenData struct {
	Seq int64
	Val core.Batch
}

// tokenRetransmitReq asks the predecessor for lost payloads (Totem recovers
// losses through token-driven retransmission).
type tokenRetransmitReq struct{ Seqs []int64 }

func (m tokenMsg) Size() int           { return headerBytes }
func (m tokenData) Size() int          { return headerBytes + m.Val.Size() }
func (m tokenRetransmitReq) Size() int { return headerBytes + 8*len(m.Seqs) }

// Start implements proto.Handler: ring position 0 injects the token.
func (t *TokenRing) Start(env proto.Env) {
	t.env = env
	if t.BatchBytes == 0 {
		t.BatchBytes = 16 << 10
	}
	if t.MaxPerToken == 0 {
		t.MaxPerToken = 4
	}
	if t.index() == 0 {
		env.After(time.Millisecond, func() {
			t.onToken(tokenMsg{MinRecv: 1<<62 - 1})
		})
	}
}

func (t *TokenRing) index() int {
	for i, id := range t.Ring {
		if id == t.env.ID() {
			return i
		}
	}
	return -1
}

func (t *TokenRing) succ() proto.NodeID {
	return t.Ring[(t.index()+1)%len(t.Ring)]
}

// Broadcast submits a value at this daemon; it is sent at the next token
// visit.
func (t *TokenRing) Broadcast(v core.Value) {
	t.pending.Push(v)
	t.pendingBytes += v.Bytes
}

// Receive implements proto.Handler.
func (t *TokenRing) Receive(from proto.NodeID, msg proto.Message) {
	switch m := msg.(type) {
	case tokenMsg:
		t.onToken(m)
	case tokenData:
		t.onData(m)
	case tokenRetransmitReq:
		for _, seq := range m.Seqs {
			if b, ok := t.learned.Get(seq); ok {
				t.env.Send(from, tokenData{Seq: seq, Val: *b})
			}
		}
	}
}

// received returns the highest sequence below which this daemon has all
// payloads.
func (t *TokenRing) received() int64 {
	r := t.next
	for t.learned.Has(r) {
		r++
	}
	return r
}

func (t *TokenRing) onToken(m tokenMsg) {
	work := t.DaemonCost
	// Broadcast pending batches while holding the token.
	sent := 0
	for t.pending.Len() > 0 && sent < t.MaxPerToken {
		n, bytes := 0, 0
		for n < t.pending.Len() && bytes < t.BatchBytes {
			bytes += t.pending.At(n).Bytes
			n++
		}
		vals := make([]core.Value, n)
		for i := range vals {
			vals[i] = t.pending.At(i)
		}
		t.pending.PopFront(n)
		t.pendingBytes -= bytes
		d := tokenData{Seq: m.Seq, Val: core.Batch{Vals: vals}}
		m.Seq++
		sent++
		t.onData(d) // local copy
		t.env.Multicast(t.Group, d)
	}
	if r := t.received(); r < m.MinRecv {
		m.MinRecv = r
	}
	// Token-driven loss recovery: ask the predecessor for gaps.
	if r := t.received(); r < m.Seq {
		var miss []int64
		for s := r; s < m.Seq && len(miss) < 16; s++ {
			if !t.learned.Has(s) {
				miss = append(miss, s)
			}
		}
		if len(miss) > 0 {
			pred := t.Ring[(t.index()+len(t.Ring)-1)%len(t.Ring)]
			t.env.Send(pred, tokenRetransmitReq{Seqs: miss})
		}
	}
	fwd := m
	if t.index() == len(t.Ring)-1 {
		// Revolution completes at the last daemon: everything every daemon
		// had received becomes safe next round.
		fwd.AllRecv = m.MinRecv
		fwd.MinRecv = 1<<62 - 1
		fwd.Round = m.Round + 1
	}
	if fwd.AllRecv > t.safe {
		t.safe = fwd.AllRecv
		t.drain()
	}
	send := func() { t.env.Send(t.succ(), fwd) }
	if work > 0 {
		t.env.Work(work, send)
	} else {
		send()
	}
}

func (t *TokenRing) onData(m tokenData) {
	if m.Seq < t.next {
		return
	}
	e, existed := t.learned.Put(m.Seq)
	if !existed {
		*e = m.Val
	}
	t.drain()
}

func (t *TokenRing) drain() {
	for t.next < t.safe {
		e, ok := t.learned.Get(t.next)
		if !ok {
			return
		}
		b := *e
		// Keep a bounded history for token-driven retransmission.
		t.learned.Delete(t.next - 1024)
		if t.Trace != nil {
			now := t.env.Now()
			for _, v := range b.Vals {
				t.Trace.Note(now, t.next, v)
			}
		}
		for _, v := range b.Vals {
			t.DeliveredBytes += int64(v.Bytes)
			t.DeliveredMsgs++
			if v.Born != 0 {
				t.LatencySum += t.env.Now() - v.Born
				t.LatencyCount++
			}
			if t.Deliver != nil {
				t.Deliver(t.next, v)
			}
		}
		t.next++
	}
}
