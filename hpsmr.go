// Package repro is a Go reproduction of "High Performance State-Machine
// Replication" (Marandi, Primi, Pedone — DSN 2011) and the surrounding
// system stack from the dissertation it belongs to: the Ring Paxos atomic
// broadcast protocols (DSN 2010), Multi-Ring Paxos atomic multicast
// (DSN 2012) and Parallel State-Machine Replication (P-SMR).
//
// The package is a facade: protocol implementations live in internal
// packages and are exported here through aliases, so downstream users get
// the full library surface while the reproduction harness keeps its layout.
//
// Protocols are event-driven actors (Handler) bound to an environment
// (Env). Two environments exist:
//
//   - the realtime Cluster in this package: goroutines and channels, for
//     applications and the runnable examples;
//   - the simulated cluster (lan.LAN, exported below): a deterministic
//     discrete-event model of the paper's gigabit testbed, used by every
//     benchmark that regenerates a figure or table.
package repro

import (
	"repro/internal/core"
	"repro/internal/lan"
	"repro/internal/multiring"
	"repro/internal/proto"
	"repro/internal/psmr"
	"repro/internal/ringpaxos"
	"repro/internal/smr"
)

// Core message/identity types.
type (
	// Value is an application message submitted to an ordering protocol.
	Value = core.Value
	// ValueID identifies a value; Ring Paxos runs consensus on ids.
	ValueID = core.ValueID
	// Batch is the set of values decided by one consensus instance.
	Batch = core.Batch
	// DeliverFunc observes delivered values in order.
	DeliverFunc = core.DeliverFunc
	// NodeID identifies a process.
	NodeID = proto.NodeID
	// GroupID identifies an ip-multicast group.
	GroupID = proto.GroupID
	// Message is anything that travels on the wire.
	Message = proto.Message
	// Env is the world as seen by a protocol actor.
	Env = proto.Env
	// Handler is a protocol actor.
	Handler = proto.Handler
	// Timer is a cancellable scheduled callback.
	Timer = proto.Timer
)

// Ring Paxos (Chapter 3, DSN 2010).
type (
	// MRingConfig configures multicast-based Ring Paxos.
	MRingConfig = ringpaxos.MConfig
	// MRingAgent is one M-Ring Paxos process.
	MRingAgent = ringpaxos.MAgent
	// URingConfig configures unicast-based Ring Paxos.
	URingConfig = ringpaxos.UConfig
	// URingAgent is one U-Ring Paxos process.
	URingAgent = ringpaxos.UAgent
)

// Multi-Ring Paxos (Chapter 5, DSN 2012).
type (
	// MultiRingNode hosts one process's roles across rings.
	MultiRingNode = multiring.Node
	// MultiRingMerger is the learner-side deterministic merge.
	MultiRingMerger = multiring.Merger
	// MultiRingPacer paces a ring with skip instances (λ, ∆).
	MultiRingPacer = multiring.Pacer
)

// NewMultiRingNode returns an empty multi-ring process.
func NewMultiRingNode() *MultiRingNode { return multiring.NewNode() }

// NewMultiRingMerger creates a deterministic merge over ring ids with
// parameter M.
func NewMultiRingMerger(rings []int, m int64) *MultiRingMerger {
	return multiring.NewMerger(rings, m)
}

// State-machine replication with speculation and partitioning
// (Chapter 4, DSN 2011 — the paper's primary contribution).
type (
	// SMRCommand is a B+-tree service command.
	SMRCommand = smr.Command
	// SMRReply is a command result.
	SMRReply = smr.Reply
	// SMRService is a deterministic state machine with logical undo.
	SMRService = smr.Service
	// SMRReplica is a (possibly speculative) replica.
	SMRReplica = smr.Replica
	// SMRClient is a closed-loop client with cross-partition splitting.
	SMRClient = smr.Client
	// SMRDeployConfig describes a replicated B+-tree deployment.
	SMRDeployConfig = smr.DeployConfig
	// SMRDeployment is a wired deployment on the simulated cluster.
	SMRDeployment = smr.Deployment
	// BTreeService is the replicated B+-tree service of §4.4.2.
	BTreeService = smr.BTreeService
	// SMRWorkload generates client commands.
	SMRWorkload = smr.Workload
	// SMRQueryWorkload issues 1000-key range queries.
	SMRQueryWorkload = smr.QueryWorkload
	// SMRUpdateWorkload issues insert/delete requests.
	SMRUpdateWorkload = smr.UpdateWorkload
	// SMRCrossPartitionWorkload issues queries over a partitioned key
	// space, a configurable share of which straddle partition boundaries.
	SMRCrossPartitionWorkload = smr.CrossPartitionWorkload
)

// SMR command operations.
const (
	OpInsert = smr.OpInsert
	OpDelete = smr.OpDelete
	OpQuery  = smr.OpQuery
)

// NewBTreeService returns a B+-tree service pre-populated with n tuples
// starting at base.
func NewBTreeService(base, n int64) *BTreeService { return smr.NewBTreeService(base, n) }

// DeploySMR wires a Chapter 4 deployment on the simulated cluster.
func DeploySMR(cfg SMRDeployConfig, lc SimConfig, seed int64) *SMRDeployment {
	return smr.Deploy(cfg, lc, seed)
}

// Parallel SMR (Chapter 6).
type (
	// PSMRMode selects an execution model (sequential, pipelined, SDPE,
	// P-SMR).
	PSMRMode = psmr.Mode
	// PSMRDeployConfig describes a §6.5 experiment.
	PSMRDeployConfig = psmr.DeployConfig
	// PSMRDeployment is a wired deployment.
	PSMRDeployment = psmr.Deployment
)

// P-SMR execution models.
const (
	ModeSequential = psmr.Sequential
	ModePipelined  = psmr.Pipelined
	ModeSDPE       = psmr.SDPE
	ModePSMR       = psmr.PSMR
)

// DeployPSMR wires a Chapter 6 deployment on the simulated cluster.
func DeployPSMR(cfg PSMRDeployConfig, lc SimConfig, seed int64) *PSMRDeployment {
	return psmr.Deploy(cfg, lc, seed)
}

// Simulated cluster (the paper's testbed model).
type (
	// Sim is the discrete-event cluster.
	Sim = lan.LAN
	// SimConfig holds the cluster's resource parameters.
	SimConfig = lan.Config
	// SimNodeConfig scales one node's resources.
	SimNodeConfig = lan.NodeConfig
)

// NewSim creates a simulated cluster.
func NewSim(cfg SimConfig, seed int64) *Sim { return lan.New(cfg, seed) }

// DefaultSimConfig returns the calibrated testbed parameters (1 Gbps,
// 0.1 ms RTT, ~270 Mbps synchronous disk writes).
func DefaultSimConfig() SimConfig { return lan.DefaultConfig() }
